package cpu

import "testing"

func TestPrefetcherCoversUnitStride(t *testing.T) {
	c := New(DefaultConfig())
	c.EnablePrefetcher(DefaultPrefetcherConfig())
	base := uint64(0x100000)
	for i := uint64(0); i < 10000; i++ {
		c.Load(base + i*8)
	}
	st := c.Prefetch()
	if st.Issued == 0 {
		t.Fatal("no prefetches issued on a unit-stride stream")
	}
	if st.UsefulHit == 0 {
		t.Fatal("no demand accesses were covered")
	}
	// Compare against an identical machine without the prefetcher.
	plain := New(DefaultConfig())
	for i := uint64(0); i < 10000; i++ {
		plain.Load(base + i*8)
	}
	if c.Stats.Cycles >= plain.Stats.Cycles {
		t.Errorf("prefetcher did not help: %d vs %d cycles", c.Stats.Cycles, plain.Stats.Cycles)
	}
}

func TestPrefetcherIgnoresRandomStream(t *testing.T) {
	c := New(DefaultConfig())
	c.EnablePrefetcher(DefaultPrefetcherConfig())
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 10000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		c.Load(0x100000 + (x % (1 << 24) &^ 7))
	}
	st := c.Prefetch()
	// Random strides should not train to confidence often.
	if st.Trained > 1000 {
		t.Errorf("random stream trained the stride table %d times", st.Trained)
	}
}

func TestPrefetcherLargeStride(t *testing.T) {
	c := New(DefaultConfig())
	c.EnablePrefetcher(DefaultPrefetcherConfig())
	// Stride of 256 bytes: still a fixed stride, should train.
	for i := uint64(0); i < 5000; i++ {
		c.Load(0x200000 + i*256)
	}
	if c.Prefetch().UsefulHit == 0 {
		t.Error("fixed large stride not covered")
	}
}

func TestPrefetchStatsZeroWhenDisabled(t *testing.T) {
	c := New(DefaultConfig())
	c.Load(0x1000)
	if st := c.Prefetch(); st != (PrefetchStats{}) {
		t.Errorf("disabled prefetcher reported %+v", st)
	}
}
