package cpu

// branchPredictor is a gshare-style predictor: a table of 2-bit saturating
// counters indexed by the branch site hashed with recent global history.
// Destructive aliasing between the workload's own branches and the dynamic
// checks the SW scheme inserts is what drives the misprediction blow-up the
// paper's Figure 13 reports, so the mechanism is modelled rather than
// assumed.
type branchPredictor struct {
	counters []uint8
	history  uint64
	histBits uint
	Stats    BranchStats
}

// BranchStats counts predictor outcomes.
type BranchStats struct {
	Branches    uint64
	Mispredicts uint64
}

// MispredictRate returns Mispredicts/Branches, and 0 (not NaN) when no
// branches executed.
func (s BranchStats) MispredictRate() float64 {
	if s.Branches > 0 {
		return float64(s.Mispredicts) / float64(s.Branches)
	}
	return 0
}

func newBranchPredictor(tableBits, histBits uint) *branchPredictor {
	return &branchPredictor{
		counters: make([]uint8, 1<<tableBits),
		histBits: histBits,
	}
}

// predict consumes one conditional branch at the given site with the given
// outcome and reports whether the predictor mispredicted it.
func (b *branchPredictor) predict(site uint64, taken bool) bool {
	mask := uint64(len(b.counters) - 1)
	idx := (site ^ b.history) & mask
	ctr := b.counters[idx]
	predictedTaken := ctr >= 2

	if taken && ctr < 3 {
		b.counters[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		b.counters[idx] = ctr - 1
	}
	b.history = ((b.history << 1) | boolBit(taken)) & ((1 << b.histBits) - 1)

	b.Stats.Branches++
	mispredicted := predictedTaken != taken
	if mispredicted {
		b.Stats.Mispredicts++
	}
	return mispredicted
}

func boolBit(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
