// Package cpu is the interval-based timing model standing in for the
// paper's Snipersim setup. It models the Table IV machine: a single
// Gainestown-class core with L1/L2/L3 caches, a two-level TLB, a branch
// predictor with an 8-cycle misprediction penalty, 120-cycle DRAM and
// 240-cycle NVM, and the added POLB/VALB translation latencies.
//
// The model is event driven: the runtime layer replays each executed
// instruction, memory access, and branch, and the model accumulates cycles
// — base CPI 1 plus stalls from cache misses, TLB walks, mispredictions,
// and pointer-format translations.
package cpu

// CacheConfig describes one set-associative cache level.
type CacheConfig struct {
	Sets     int
	Ways     int
	LineSize uint64
	// Latency is the added stall in cycles when an access is satisfied at
	// this level (beyond the pipelined L1 hit, which stalls 0 cycles).
	Latency uint64
}

// CacheStats counts per-level outcomes.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns total lookups.
func (s CacheStats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns Hits/Accesses, and 0 (not NaN) for an untouched cache so
// formatted reports stay numeric.
func (s CacheStats) HitRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Hits) / float64(a)
	}
	return 0
}

// cache is one level of set-associative cache with true-LRU replacement.
type cache struct {
	cfg   CacheConfig
	tags  [][]uint64 // [set][way], MRU first; 0 means invalid
	Stats CacheStats
}

func newCache(cfg CacheConfig) *cache {
	tags := make([][]uint64, cfg.Sets)
	for i := range tags {
		tags[i] = make([]uint64, 0, cfg.Ways)
	}
	return &cache{cfg: cfg, tags: tags}
}

// access checks whether the line holding va is resident, updating LRU order
// and filling on miss. It reports hit or miss.
func (c *cache) access(va uint64) bool {
	line := va / c.cfg.LineSize
	set := line % uint64(c.cfg.Sets)
	// Tag 0 would be ambiguous with invalid; bias by +1.
	tag := line/uint64(c.cfg.Sets) + 1
	ways := c.tags[set]
	for i, t := range ways {
		if t == tag {
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			c.Stats.Hits++
			return true
		}
	}
	c.Stats.Misses++
	if len(ways) < c.cfg.Ways {
		ways = append(ways, 0)
		c.tags[set] = ways
	}
	copy(ways[1:], ways[:len(ways)-1])
	ways[0] = tag
	return false
}

// flush invalidates the whole cache.
func (c *cache) flush() {
	for i := range c.tags {
		c.tags[i] = c.tags[i][:0]
	}
}
