package cpu

// A virtual-address stride prefetcher, for reproducing the paper's
// Section VI discussion: physical-address prefetchers are unaffected by
// the proposal (data placement in physical memory does not change), but
// *virtual-address* stride prefetchers can lose effectiveness when a
// workload's data is spread over persistent memory pools mapped at
// distributed virtual addresses — a consequence of the pool programming
// model, not of user-transparent references.
//
// The model is a classic reference-prediction table: entries tagged by a
// hash of the accessing context (here the page of the access, standing in
// for the PC), each tracking the last address, the last observed stride,
// and a 2-bit confidence counter. On a confident match the next line is
// considered prefetched; a subsequent demand access to a prefetched line
// hits regardless of cache state.

// PrefetcherConfig sizes the stride table.
type PrefetcherConfig struct {
	TableEntries int
	// Degree is how many strides ahead are prefetched on confidence.
	Degree int
}

// DefaultPrefetcherConfig is a 64-entry, degree-2 stride prefetcher.
func DefaultPrefetcherConfig() PrefetcherConfig {
	return PrefetcherConfig{TableEntries: 64, Degree: 2}
}

// PrefetchStats counts prefetcher outcomes.
type PrefetchStats struct {
	Trained   uint64 // accesses that matched a confident stride
	Issued    uint64 // prefetches issued
	UsefulHit uint64 // demand accesses covered by a prior prefetch
}

type strideEntry struct {
	tag      uint64
	lastAddr uint64
	stride   int64
	conf     uint8
}

// prefetcher is the stride predictor plus a small window of outstanding
// prefetched lines.
type prefetcher struct {
	cfg   PrefetcherConfig
	table []strideEntry
	// issued holds recently prefetched line addresses (line granularity).
	issued map[uint64]struct{}
	order  []uint64
	Stats  PrefetchStats
}

const prefetchWindow = 256

func newPrefetcher(cfg PrefetcherConfig) *prefetcher {
	return &prefetcher{
		cfg:    cfg,
		table:  make([]strideEntry, cfg.TableEntries),
		issued: make(map[uint64]struct{}),
	}
}

// covered reports whether the line holding va was prefetched, consuming
// the prefetch (a line prefetch covers one demand miss).
func (p *prefetcher) covered(va uint64) bool {
	line := va &^ 63
	if _, ok := p.issued[line]; ok {
		delete(p.issued, line)
		p.Stats.UsefulHit++
		return true
	}
	return false
}

// observe trains the table on a demand access and issues prefetches on a
// confident stride match.
func (p *prefetcher) observe(va uint64) {
	// Tag by the 16KB region of the access: a stand-in for the accessing
	// instruction, adequate for streaming kernels.
	tag := va >> 14
	idx := tag % uint64(len(p.table))
	e := &p.table[idx]

	if e.tag == tag {
		stride := int64(va) - int64(e.lastAddr)
		if stride == e.stride && stride != 0 {
			if e.conf < 3 {
				e.conf++
			}
		} else {
			if e.conf > 0 {
				e.conf--
			}
			e.stride = stride
		}
		e.lastAddr = va
		if e.conf >= 2 && e.stride != 0 {
			p.Stats.Trained++
			for d := 1; d <= p.cfg.Degree; d++ {
				next := uint64(int64(va) + e.stride*int64(d))
				p.issue(next &^ 63)
			}
		}
		return
	}
	// Replace.
	*e = strideEntry{tag: tag, lastAddr: va}
}

func (p *prefetcher) issue(line uint64) {
	if _, ok := p.issued[line]; ok {
		return
	}
	p.Stats.Issued++
	p.issued[line] = struct{}{}
	p.order = append(p.order, line)
	if len(p.order) > prefetchWindow {
		old := p.order[0]
		p.order = p.order[1:]
		delete(p.issued, old)
	}
}
