package cpu

import "nvref/internal/mem"

// Config carries the machine parameters of the paper's Table IV.
type Config struct {
	L1  CacheConfig
	L2  CacheConfig
	L3  CacheConfig
	TLB TLBConfig

	// DRAMLatency and NVMLatency are main-memory stalls in cycles; the NVM
	// half of the address space (bit 47 set) pays NVMLatency.
	DRAMLatency uint64
	NVMLatency  uint64

	// MispredictPenalty is the branch misprediction stall.
	MispredictPenalty uint64

	// Branch predictor geometry.
	PredictorBits uint
	HistoryBits   uint
}

// TLBConfig describes the two-level TLB.
type TLBConfig struct {
	L1Sets, L1Ways int
	L2Sets, L2Ways int
	PageSize       uint64
	// L2HitLatency stalls when the L1 TLB misses but L2 hits; WalkLatency
	// stalls on a full miss (page walk).
	L2HitLatency uint64
	WalkLatency  uint64
}

// DefaultConfig returns the paper's Table IV machine: 64B lines; 32KB
// 8-way L1 (4 cycles, hidden by the pipeline); 256KB 8-way L2 (12 cycles);
// 2MB 8-way L3 (40 cycles); 120-cycle DRAM and 240-cycle NVM; 64-entry
// 4-way L1 TLB; 1536-entry 4-way L2 TLB (7-cycle hit, 30-cycle walk);
// 8-cycle branch misprediction penalty.
func DefaultConfig() Config {
	return Config{
		L1: CacheConfig{Sets: 64, Ways: 8, LineSize: 64, Latency: 0},
		L2: CacheConfig{Sets: 512, Ways: 8, LineSize: 64, Latency: 12},
		L3: CacheConfig{Sets: 4096, Ways: 8, LineSize: 64, Latency: 40},
		TLB: TLBConfig{
			L1Sets: 16, L1Ways: 4,
			L2Sets: 384, L2Ways: 4,
			PageSize:     4096,
			L2HitLatency: 7,
			WalkLatency:  30,
		},
		DRAMLatency:       120,
		NVMLatency:        240,
		MispredictPenalty: 8,
		PredictorBits:     10,
		HistoryBits:       8,
	}
}

// Stats aggregates everything the experiments report.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64

	L1  CacheStats
	L2  CacheStats
	L3  CacheStats
	TLB TLBStats

	Branch BranchStats

	DRAMAccesses uint64
	NVMAccesses  uint64

	// TranslationCycles are stalls contributed by POLB/VALB/walkers,
	// credited via AddTranslationCycles.
	TranslationCycles uint64
}

// MemoryAccesses is the total number of loads and stores.
func (s Stats) MemoryAccesses() uint64 { return s.Loads + s.Stores }

// TLBStats counts TLB outcomes.
type TLBStats struct {
	L1Hits uint64
	L2Hits uint64
	Walks  uint64
}

// Accesses returns total translations.
func (s TLBStats) Accesses() uint64 { return s.L1Hits + s.L2Hits + s.Walks }

// HitRate returns the fraction of translations served without a page walk,
// and 0 (not NaN) when no translations happened.
func (s TLBStats) HitRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.L1Hits+s.L2Hits) / float64(a)
	}
	return 0
}

// CPU is the single-core timing model.
type CPU struct {
	cfg   Config
	l1    *cache
	l2    *cache
	l3    *cache
	tlbL1 *cache
	tlbL2 *cache
	bp    *branchPredictor
	pf    *prefetcher // nil unless EnablePrefetcher is called

	Stats Stats
}

// New returns a CPU with cold caches.
func New(cfg Config) *CPU {
	return &CPU{
		cfg: cfg,
		l1:  newCache(cfg.L1),
		l2:  newCache(cfg.L2),
		l3:  newCache(cfg.L3),
		tlbL1: newCache(CacheConfig{
			Sets: cfg.TLB.L1Sets, Ways: cfg.TLB.L1Ways, LineSize: cfg.TLB.PageSize,
		}),
		tlbL2: newCache(CacheConfig{
			Sets: cfg.TLB.L2Sets, Ways: cfg.TLB.L2Ways, LineSize: cfg.TLB.PageSize,
		}),
		bp: newBranchPredictor(cfg.PredictorBits, cfg.HistoryBits),
	}
}

// Config returns the machine parameters.
func (c *CPU) Config() Config { return c.cfg }

// EnablePrefetcher attaches a virtual-address stride prefetcher (the
// Section VI discussion); the default machine runs without one, as the
// paper's does.
func (c *CPU) EnablePrefetcher(cfg PrefetcherConfig) {
	c.pf = newPrefetcher(cfg)
}

// Prefetch returns the prefetcher statistics (zero value when disabled).
func (c *CPU) Prefetch() PrefetchStats {
	if c.pf == nil {
		return PrefetchStats{}
	}
	return c.pf.Stats
}

// Exec retires n non-memory instructions at CPI 1.
func (c *CPU) Exec(n uint64) {
	c.Stats.Instructions += n
	c.Stats.Cycles += n
}

// Load replays one data load at va.
func (c *CPU) Load(va uint64) {
	c.Stats.Loads++
	c.memAccess(va)
}

// Store replays one data store at va.
func (c *CPU) Store(va uint64) {
	c.Stats.Stores++
	c.memAccess(va)
}

func (c *CPU) memAccess(va uint64) {
	c.Stats.Instructions++
	c.Stats.Cycles++ // the access instruction itself

	covered := false
	if c.pf != nil {
		covered = c.pf.covered(va)
		c.pf.observe(va)
	}

	// Address translation.
	if c.tlbL1.access(va) {
		c.Stats.TLB.L1Hits++
	} else if c.tlbL2.access(va) {
		c.Stats.TLB.L2Hits++
		c.Stats.Cycles += c.cfg.TLB.L2HitLatency
	} else {
		c.Stats.TLB.Walks++
		c.Stats.Cycles += c.cfg.TLB.WalkLatency
	}

	// Cache hierarchy. A line covered by an in-flight prefetch costs a
	// hit regardless of where it would otherwise have been found.
	switch {
	case c.l1.access(va):
		c.Stats.Cycles += c.cfg.L1.Latency
	case c.l2.access(va):
		if !covered {
			c.Stats.Cycles += c.cfg.L2.Latency
		}
	case c.l3.access(va):
		if !covered {
			c.Stats.Cycles += c.cfg.L3.Latency
		}
	default:
		if mem.IsNVM(va) {
			c.Stats.NVMAccesses++
			if !covered {
				c.Stats.Cycles += c.cfg.NVMLatency
			}
		} else {
			c.Stats.DRAMAccesses++
			if !covered {
				c.Stats.Cycles += c.cfg.DRAMLatency
			}
		}
	}
	c.Stats.L1 = c.l1.Stats
	c.Stats.L2 = c.l2.Stats
	c.Stats.L3 = c.l3.Stats
}

// Branch replays one conditional branch identified by its static site.
func (c *CPU) Branch(site uint64, taken bool) {
	c.Stats.Instructions++
	c.Stats.Cycles++
	if c.bp.predict(site, taken) {
		c.Stats.Cycles += c.cfg.MispredictPenalty
	}
	c.Stats.Branch = c.bp.Stats
}

// AddTranslationCycles credits stalls from the POLB/VALB structures.
func (c *CPU) AddTranslationCycles(n uint64) {
	c.Stats.Cycles += n
	c.Stats.TranslationCycles += n
}

// FlushCaches empties the caches and TLBs (used between benchmark phases).
func (c *CPU) FlushCaches() {
	c.l1.flush()
	c.l2.flush()
	c.l3.flush()
	c.tlbL1.flush()
	c.tlbL2.flush()
}
