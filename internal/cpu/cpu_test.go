package cpu

import (
	"testing"
	"testing/quick"
)

func TestExecRetiresAtCPI1(t *testing.T) {
	c := New(DefaultConfig())
	c.Exec(100)
	if c.Stats.Cycles != 100 || c.Stats.Instructions != 100 {
		t.Errorf("stats after Exec(100): %+v", c.Stats)
	}
}

func TestCacheHierarchyLatencies(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	va := uint64(0x10000)

	c.Load(va) // cold: TLB walk + memory
	cold := c.Stats.Cycles
	wantCold := uint64(1) + cfg.TLB.WalkLatency + cfg.DRAMLatency
	if cold != wantCold {
		t.Errorf("cold DRAM load = %d cycles, want %d", cold, wantCold)
	}

	c.Load(va) // warm: everything hits
	warm := c.Stats.Cycles - cold
	if warm != 1 {
		t.Errorf("warm load = %d cycles, want 1", warm)
	}
}

func TestNVMCostsMoreThanDRAM(t *testing.T) {
	cfg := DefaultConfig()
	nvmVA := uint64(1)<<47 | 0x10000

	cd := New(cfg)
	cd.Load(0x10000)
	cn := New(cfg)
	cn.Load(nvmVA)
	if cn.Stats.Cycles-cd.Stats.Cycles != cfg.NVMLatency-cfg.DRAMLatency {
		t.Errorf("NVM cold load = %d, DRAM = %d; delta should be %d",
			cn.Stats.Cycles, cd.Stats.Cycles, cfg.NVMLatency-cfg.DRAMLatency)
	}
	if cn.Stats.NVMAccesses != 1 || cd.Stats.DRAMAccesses != 1 {
		t.Error("memory access accounting wrong")
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	// Touch enough distinct lines mapping to one L1 set to evict:
	// stride = sets*lineSize so all map to set 0; ways+1 lines.
	stride := uint64(cfg.L1.Sets) * cfg.L1.LineSize
	n := cfg.L1.Ways + 1
	for i := 0; i < n; i++ {
		c.Load(uint64(i) * stride)
	}
	// The first line is evicted from L1 but resident in L2.
	before := c.Stats.Cycles
	c.Load(0)
	delta := c.Stats.Cycles - before
	if delta != 1+cfg.L2.Latency {
		t.Errorf("L2 hit = %d cycles, want %d", delta, 1+cfg.L2.Latency)
	}
}

func TestBranchPredictorLearnsBias(t *testing.T) {
	c := New(DefaultConfig())
	site := uint64(0x400123)
	for i := 0; i < 1000; i++ {
		c.Branch(site, true)
	}
	if c.Stats.Branch.Mispredicts > 10 {
		t.Errorf("biased branch mispredicted %d/1000 times", c.Stats.Branch.Mispredicts)
	}
}

func TestBranchPredictorStrugglesWithRandomPattern(t *testing.T) {
	c := New(DefaultConfig())
	site := uint64(0x400123)
	// A pseudo-random pattern should mispredict far more often than a
	// biased one.
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 2000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		c.Branch(site, x&1 == 0)
	}
	if c.Stats.Branch.Mispredicts < 200 {
		t.Errorf("random branch mispredicted only %d/2000 times", c.Stats.Branch.Mispredicts)
	}
}

func TestMispredictPenaltyApplied(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	// Alternate a single site: the 2-bit counter mispredicts heavily.
	for i := 0; i < 100; i++ {
		c.Branch(1, i%2 == 0)
	}
	minCycles := uint64(100) + c.Stats.Branch.Mispredicts*cfg.MispredictPenalty
	if c.Stats.Cycles != minCycles {
		t.Errorf("cycles = %d, want %d (mispredicts=%d)",
			c.Stats.Cycles, minCycles, c.Stats.Branch.Mispredicts)
	}
}

func TestAddTranslationCycles(t *testing.T) {
	c := New(DefaultConfig())
	c.AddTranslationCycles(17)
	if c.Stats.Cycles != 17 || c.Stats.TranslationCycles != 17 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestFlushCaches(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	c.Load(0x10000)
	c.FlushCaches()
	before := c.Stats.Cycles
	c.Load(0x10000)
	delta := c.Stats.Cycles - before
	want := uint64(1) + cfg.TLB.WalkLatency + cfg.DRAMLatency
	if delta != want {
		t.Errorf("post-flush load = %d cycles, want %d", delta, want)
	}
}

func TestTLBTwoLevels(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	// Touch more pages than L1 TLB entries within one L1 TLB set: stride
	// by L1Sets pages so all map to one set.
	pageStride := uint64(cfg.TLB.L1Sets) * cfg.TLB.PageSize
	for i := 0; i < cfg.TLB.L1Ways+1; i++ {
		c.Load(uint64(i) * pageStride)
	}
	if c.Stats.TLB.Walks != uint64(cfg.TLB.L1Ways+1) {
		t.Fatalf("cold walks = %d", c.Stats.TLB.Walks)
	}
	// First page evicted from L1 TLB but resident in L2 TLB.
	c.Load(0)
	if c.Stats.TLB.L2Hits != 1 {
		t.Errorf("L2 TLB hits = %d, want 1", c.Stats.TLB.L2Hits)
	}
}

// Property: cycles grow monotonically with every event.
func TestQuickCyclesMonotone(t *testing.T) {
	c := New(DefaultConfig())
	prev := uint64(0)
	f := func(kind uint8, addr uint32, taken bool) bool {
		switch kind % 4 {
		case 0:
			c.Exec(1)
		case 1:
			c.Load(uint64(addr))
		case 2:
			c.Store(uint64(addr))
		case 3:
			c.Branch(uint64(addr), taken)
		}
		ok := c.Stats.Cycles > prev
		prev = c.Stats.Cycles
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: L1 stats partition accesses (hits+misses == loads+stores).
func TestQuickL1AccountingPartitions(t *testing.T) {
	c := New(DefaultConfig())
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			if a%2 == 0 {
				c.Load(uint64(a))
			} else {
				c.Store(uint64(a))
			}
		}
		return c.Stats.L1.Hits+c.Stats.L1.Misses == c.Stats.MemoryAccesses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
