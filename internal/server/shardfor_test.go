package server

import "testing"

// TestShardForRange: the shard index is always in [0, n).
func TestShardForRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 17} {
		for key := uint64(0); key < 1000; key++ {
			if s := ShardFor(key, n); s < 0 || s >= n {
				t.Fatalf("ShardFor(%d, %d) = %d", key, n, s)
			}
		}
	}
}

// TestShardForStable: the mapping is a pure function — replicas and
// clients must agree on key placement with no shared state.
func TestShardForStable(t *testing.T) {
	for key := uint64(0); key < 100; key++ {
		if ShardFor(key, 8) != ShardFor(key, 8) {
			t.Fatalf("ShardFor(%d, 8) unstable", key)
		}
	}
}

// TestShardForDistribution: a chi-squared goodness-of-fit test over 1e5
// sequential keys for n ∈ {1, 2, 4, 8}. Sequential keys are the
// adversarial input for a weak spreader (the bench workloads use them), so
// uniformity here means the per-shard queues stay balanced. The critical
// values are chi-squared at p = 0.001 for n-1 degrees of freedom — a
// mixer this far off uniform is broken, not unlucky.
func TestShardForDistribution(t *testing.T) {
	const keys = 100_000
	// df → critical value at p = 0.001: df 1: 10.83, df 3: 16.27, df 7: 24.32.
	critical := map[int]float64{1: 0, 2: 10.83, 4: 16.27, 8: 24.32}
	for _, n := range []int{1, 2, 4, 8} {
		counts := make([]int, n)
		for key := uint64(0); key < keys; key++ {
			counts[ShardFor(key, n)]++
		}
		if n == 1 {
			if counts[0] != keys {
				t.Fatalf("n=1: %d keys landed", counts[0])
			}
			continue
		}
		expected := float64(keys) / float64(n)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		if limit := critical[n]; chi2 > limit {
			t.Errorf("n=%d: chi-squared %.2f exceeds %.2f (counts %v)", n, chi2, limit, counts)
		}
	}
}
