package server

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"nvref/internal/fault"
)

// RetryPolicy parameterizes ResilientClient: how many attempts an
// operation gets, how backoff grows between them, and the deadlines each
// attempt carries.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per operation, the first
	// included (default 8).
	MaxAttempts int
	// BaseBackoff is the backoff before the first retry; it doubles per
	// retry (default 2ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the grown backoff (default 250ms).
	MaxBackoff time.Duration
	// Timeout is the per-attempt I/O deadline on the underlying
	// connection (default 2s).
	Timeout time.Duration
	// TTLms, when nonzero, attaches a deadline envelope to every request
	// so the server fails queued work fast instead of executing it late.
	TTLms uint32
	// TraceSample, when > 0, makes each underlying connection attach a
	// sampled trace envelope to roughly that fraction of requests (see
	// Client.SetTraceSample). Traces survive redials and failovers: the
	// sampler lives on the policy's seed, not the connection.
	TraceSample float64
	// Seed drives the backoff jitter deterministically (default 1).
	Seed uint64
}

func (p *RetryPolicy) fillDefaults() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	if p.Timeout <= 0 {
		p.Timeout = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// backoff returns the sleep before retry number retry (1-based):
// exponential growth capped at MaxBackoff, with equal jitter (half fixed,
// half uniform) so synchronized clients spread out instead of retrying in
// lockstep.
func (p *RetryPolicy) backoff(retry int, rng *fault.Rand) time.Duration {
	d := p.BaseBackoff << uint(retry-1)
	if d <= 0 || d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Intn(int(half)))
}

// ResilientClient wraps Client with the client half of the self-healing
// tier: per-attempt I/O deadlines, retry with exponential backoff and
// jitter for the retryable failures (shed, unavailable, deadline, and
// transport errors — every protocol operation is idempotent), and
// automatic re-dial when the connection itself breaks. Given several
// endpoints (DialResilientList) it also fails over: a dead, unavailable,
// or read-only endpoint rotates the client to the next one, which is how
// writers find the promoted replica after a primary dies. Like Client it
// is not safe for concurrent use; open one per goroutine.
type ResilientClient struct {
	addrs    []string
	cur      int
	policy   RetryPolicy
	dialConn func(addr string) (net.Conn, error)
	c        *Client
	rng      *fault.Rand

	// Read-your-writes state: the newest write sequence seen per shard,
	// stamped onto GetRYW reads, and the shard count learned lazily.
	tokens     map[uint32]uint64
	shardCount int

	retries   atomic.Uint64
	redials   atomic.Uint64
	failovers atomic.Uint64
}

// DialResilient connects a ResilientClient to an nvserved instance. The
// initial dial is itself retried under the policy.
func DialResilient(addr string, policy RetryPolicy) (*ResilientClient, error) {
	return DialResilientFunc(addr, policy, func(addr string) (net.Conn, error) {
		return net.Dial("tcp", addr)
	})
}

// DialResilientFunc is DialResilient with a custom transport — the hook
// the flaky-network injector plugs into.
func DialResilientFunc(addr string, policy RetryPolicy, dialConn func(addr string) (net.Conn, error)) (*ResilientClient, error) {
	return DialResilientList([]string{addr}, policy, dialConn)
}

// DialResilientList is DialResilientFunc over a failover list: operations
// use the current endpoint and rotate to the next on dial failure,
// transport failure, or an endpoint that answers UNAVAILABLE, READONLY,
// or LAGGING. A nil dialConn uses plain TCP.
func DialResilientList(addrs []string, policy RetryPolicy, dialConn func(addr string) (net.Conn, error)) (*ResilientClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("server: no endpoints")
	}
	if dialConn == nil {
		dialConn = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	policy.fillDefaults()
	r := &ResilientClient{
		addrs:    addrs,
		policy:   policy,
		dialConn: dialConn,
		rng:      fault.NewRand(policy.Seed),
		tokens:   make(map[uint32]uint64),
	}
	if _, err := r.client(); err != nil {
		// With one endpoint, failing fast surfaces config errors; with a
		// failover list, the first operation's retry loop keeps rotating.
		if len(addrs) == 1 {
			return nil, err
		}
		r.rotate()
	}
	return r, nil
}

// Retries returns how many operation attempts were retried.
func (r *ResilientClient) Retries() uint64 { return r.retries.Load() }

// Redials returns how many replacement connections were dialed (the first
// dial excluded).
func (r *ResilientClient) Redials() uint64 { return r.redials.Load() }

// Failovers returns how many times the client rotated to another
// endpoint in its list.
func (r *ResilientClient) Failovers() uint64 { return r.failovers.Load() }

// Endpoint returns the endpoint operations currently use.
func (r *ResilientClient) Endpoint() string { return r.addrs[r.cur] }

// rotate advances to the next endpoint (a no-op with a single one).
func (r *ResilientClient) rotate() {
	if len(r.addrs) < 2 {
		return
	}
	r.dropConn()
	r.cur = (r.cur + 1) % len(r.addrs)
	r.failovers.Add(1)
}

// Close closes the current connection, if any.
func (r *ResilientClient) Close() error {
	if r.c == nil {
		return nil
	}
	err := r.c.Close()
	r.c = nil
	return err
}

func (r *ResilientClient) client() (*Client, error) {
	if r.c != nil {
		return r.c, nil
	}
	conn, err := r.dialConn(r.addrs[r.cur])
	if err != nil {
		return nil, err
	}
	c := NewClient(conn)
	c.SetTimeout(r.policy.Timeout)
	c.SetTTL(r.policy.TTLms)
	c.SetTraceSample(r.policy.TraceSample, r.policy.Seed)
	r.c = c
	return c, nil
}

// dropConn discards the connection after a transport-level failure; the
// next attempt re-dials. Status errors (shed/unavailable/deadline) keep
// the connection: a full reply frame was read, so the stream is in sync.
func (r *ResilientClient) dropConn() {
	if r.c != nil {
		_ = r.c.Close()
		r.c = nil
		r.redials.Add(1)
	}
}

// statusError reports whether err is one of the explicit fail-fast reply
// statuses (as opposed to a transport failure).
func statusError(err error) bool {
	return errors.Is(err, ErrShed) || errors.Is(err, ErrUnavailable) || errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrLagging) || errors.Is(err, ErrReadOnly)
}

// rotateError reports whether err means this endpoint is the wrong one to
// keep talking to: dead-ish (unavailable), demoted/replica (read-only),
// or behind the client's writes (lagging).
func rotateError(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrReadOnly) || errors.Is(err, ErrLagging)
}

// do runs fn under the retry policy, rotating endpoints on failures that
// implicate the endpoint rather than the request.
func (r *ResilientClient) do(fn func(c *Client) error) error {
	var last error
	for attempt := 1; attempt <= r.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			r.retries.Add(1)
			time.Sleep(r.policy.backoff(attempt-1, r.rng))
		}
		c, err := r.client()
		if err != nil {
			last = err // dial failures are always retryable
			r.rotate()
			continue
		}
		if err := fn(c); err != nil {
			last = err
			if !Retryable(err) {
				return err
			}
			if !statusError(err) {
				r.dropConn()
				r.rotate()
			} else if rotateError(err) {
				r.rotate()
			}
			continue
		}
		return nil
	}
	return fmt.Errorf("server: giving up after %d attempts: %w", r.policy.MaxAttempts, last)
}

// Get reads a key.
func (r *ResilientClient) Get(key uint64) (value uint64, found bool, err error) {
	err = r.do(func(c *Client) error {
		var e error
		value, found, e = c.Get(key)
		return e
	})
	return value, found, err
}

// Put inserts or updates a key. PUT is idempotent, so a retry after an
// ambiguous transport failure is safe: re-applying the same (key, value)
// converges to the same state.
func (r *ResilientClient) Put(key, value uint64) error {
	return r.do(func(c *Client) error { return c.Put(key, value) })
}

// Delete removes a key. Found reports presence on the attempt that
// succeeded — after a retry that raced an earlier ambiguous attempt it may
// be false even though this call performed the delete.
func (r *ResilientClient) Delete(key uint64) (found bool, err error) {
	err = r.do(func(c *Client) error {
		var e error
		found, e = c.Delete(key)
		return e
	})
	return found, err
}

// Scan reads up to limit pairs starting at the smallest key >= start.
func (r *ResilientClient) Scan(start uint64, limit int) (pairs []KV, err error) {
	err = r.do(func(c *Client) error {
		var e error
		pairs, e = c.Scan(start, limit)
		return e
	})
	return pairs, err
}

// Batch executes the sub-requests as one frame, retrying the whole batch
// while any sub-reply carries a retryable status (sub-requests are
// idempotent, so re-running already-applied ones is safe).
func (r *ResilientClient) Batch(sub []Request) (reps []Reply, err error) {
	err = r.do(func(c *Client) error {
		rs, e := c.Batch(sub)
		if e != nil {
			return e
		}
		for i := range rs {
			if se := rs[i].Err(); se != nil && Retryable(se) {
				return se
			}
		}
		reps = rs
		return nil
	})
	return reps, err
}

// PutRYW is Put keeping the read-your-writes token: the write's assigned
// sequence is remembered for its shard, and GetRYW stamps reads with it
// so a lagging replica refuses to serve older state.
func (r *ResilientClient) PutRYW(key, value uint64) (shard uint32, seq uint64, err error) {
	err = r.do(func(c *Client) error {
		var e error
		shard, seq, e = c.PutSeq(key, value)
		return e
	})
	if err == nil && seq > r.tokens[shard] {
		r.tokens[shard] = seq
	}
	return shard, seq, err
}

// GetRYW reads a key gated on the newest write token this client holds
// for the key's shard: a replica that has not applied that far answers
// LAGGING, which rotates the client toward an endpoint that has.
func (r *ResilientClient) GetRYW(key uint64) (value uint64, found bool, err error) {
	gate := r.gateFor(key)
	err = r.do(func(c *Client) error {
		var e error
		value, found, e = c.GetAt(key, gate)
		return e
	})
	return value, found, err
}

// gateFor picks the token for key's shard. The shard count (needed to map
// key → shard) is learned lazily from STATS; until it is known, the
// maximum token across shards is used — over-conservative but still a
// correct read-your-writes bound.
func (r *ResilientClient) gateFor(key uint64) uint64 {
	if len(r.tokens) == 0 {
		return 0
	}
	if r.shardCount == 0 {
		if st, err := r.Stats(); err == nil && st.Shards > 0 {
			r.shardCount = st.Shards
		}
	}
	if r.shardCount > 0 {
		return r.tokens[uint32(ShardFor(key, r.shardCount))]
	}
	var max uint64
	for _, seq := range r.tokens {
		if seq > max {
			max = seq
		}
	}
	return max
}

// Stats fetches the server's statistics document.
func (r *ResilientClient) Stats() (st *Stats, err error) {
	err = r.do(func(c *Client) error {
		var e error
		st, e = c.Stats()
		return e
	})
	return st, err
}

// Checkpoint forces a synchronous durability barrier on every shard.
func (r *ResilientClient) Checkpoint() error {
	return r.do(func(c *Client) error { return c.Checkpoint() })
}
