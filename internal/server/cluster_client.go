package server

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"nvref/internal/cluster"
	"nvref/internal/fault"
)

// ClusterClient is the cluster-routing client: it caches a cluster map,
// routes each key to its slot's owner through a per-node ResilientClient
// (which handles transport retries, redials, and backoff), and treats
// StatusMoved as a routing signal — refresh the map and re-route — rather
// than a failure. During a migration's fence window a slot's writes
// bounce MOVED between donor and acceptor; the routing loop rides that
// out with backoff until the handover commits and a refresh observes the
// new epoch. Like Client it is not safe for concurrent use; open one per
// goroutine.
type ClusterClient struct {
	seeds  []string
	policy RetryPolicy
	dial   func(addr string) (net.Conn, error)
	m      *cluster.Map
	nodes  map[string]*ResilientClient
	rng    *fault.Rand

	movedSeen  atomic.Uint64 // MOVED redirects taken
	refreshes  atomic.Uint64 // map refresh rounds run
	mapLoads   atomic.Uint64 // strictly newer maps adopted
	mapFetches atomic.Uint64 // map images fetched over the wire
}

// DialCluster builds a routing client from any reachable seed node's map.
// dial, when non-nil, replaces the TCP dialer (the flaky-network hook);
// it is shared by every per-node connection.
func DialCluster(seeds []string, policy RetryPolicy, dial func(addr string) (net.Conn, error)) (*ClusterClient, error) {
	if len(seeds) == 0 {
		return nil, errors.New("server: no cluster seeds")
	}
	policy.fillDefaults()
	cc := &ClusterClient{
		seeds:  seeds,
		policy: policy,
		dial:   clusterDial(dial),
		nodes:  make(map[string]*ResilientClient),
		rng:    fault.NewRand(policy.Seed),
	}
	if err := cc.refresh(""); err != nil {
		return nil, err
	}
	return cc, nil
}

// Map returns the client's cached cluster map.
func (cc *ClusterClient) Map() *cluster.Map { return cc.m }

// MovedSeen returns how many MOVED redirects the client followed.
func (cc *ClusterClient) MovedSeen() uint64 { return cc.movedSeen.Load() }

// MapRefreshes returns how many map refresh rounds ran.
func (cc *ClusterClient) MapRefreshes() uint64 { return cc.refreshes.Load() }

// MapLoads returns how many strictly newer maps the client adopted.
func (cc *ClusterClient) MapLoads() uint64 { return cc.mapLoads.Load() }

// Close closes every per-node connection.
func (cc *ClusterClient) Close() error {
	var first error
	for _, rc := range cc.nodes {
		if err := rc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// node returns (dialing lazily) the resilient client for one node.
func (cc *ClusterClient) node(addr string) (*ResilientClient, error) {
	if rc := cc.nodes[addr]; rc != nil {
		return rc, nil
	}
	rc, err := DialResilientFunc(addr, cc.policy, cc.dial)
	if err != nil {
		return nil, err
	}
	cc.nodes[addr] = rc
	return rc, nil
}

// refresh fetches map images — from the redirect hint first, then every
// node of the cached map, then the seeds — and adopts the newest epoch
// seen. It succeeds if the client ends up holding any map at all.
func (cc *ClusterClient) refresh(hint string) error {
	cc.refreshes.Add(1)
	tried := make(map[string]bool)
	fetch := func(addr string) {
		if addr == "" || tried[addr] {
			return
		}
		tried[addr] = true
		rc, err := cc.node(addr)
		if err != nil {
			return
		}
		img, err := rc.ClusterMap()
		if err != nil {
			return
		}
		cc.mapFetches.Add(1)
		m, err := cluster.Decode(img)
		if err != nil {
			return
		}
		if cc.m == nil || m.Epoch > cc.m.Epoch {
			cc.m = m
			cc.mapLoads.Add(1)
		}
	}
	fetch(hint)
	if cc.m != nil {
		for _, addr := range cc.m.Nodes {
			// Stop early once something newer than the hint turned up; the
			// point is progress, not a census.
			if hint != "" && cc.mapLoads.Load() > 0 && tried[hint] && len(tried) > 1 {
				break
			}
			fetch(addr)
		}
	}
	for _, addr := range cc.seeds {
		if cc.m != nil {
			break
		}
		fetch(addr)
	}
	if cc.m == nil {
		return errors.New("server: no seed served a cluster map")
	}
	return nil
}

// route runs fn against the owner of key's slot, following MOVED
// redirects with map refreshes and backoff up to the policy's attempts.
func (cc *ClusterClient) route(key uint64, fn func(rc *ResilientClient) error) error {
	var last error
	for attempt := 1; attempt <= cc.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			time.Sleep(cc.policy.backoff(attempt-1, cc.rng))
		}
		if cc.m == nil {
			if err := cc.refresh(""); err != nil {
				last = err
				continue
			}
		}
		owner := cc.m.OwnerOf(cluster.SlotFor(key, cc.m.Slots))
		rc, err := cc.node(owner)
		if err != nil {
			last = err
			_ = cc.refresh("")
			continue
		}
		if err := fn(rc); err != nil {
			last = err
			var mv *MovedError
			if errors.As(err, &mv) {
				// The routing signal: refresh toward the hint and re-route.
				// During a fence window both sides answer MOVED; backoff
				// rides it out until the handover commits.
				cc.movedSeen.Add(1)
				_ = cc.refresh(mv.Addr)
				continue
			}
			if !Retryable(err) {
				return err
			}
			// The node-level client exhausted its own retries; the node may
			// be gone for good, so refresh before routing again.
			_ = cc.refresh("")
			continue
		}
		return nil
	}
	return fmt.Errorf("server: giving up after %d routing attempts: %w", cc.policy.MaxAttempts, last)
}

// Get reads a key from its slot's owner.
func (cc *ClusterClient) Get(key uint64) (value uint64, found bool, err error) {
	err = cc.route(key, func(rc *ResilientClient) error {
		var e error
		value, found, e = rc.Get(key)
		return e
	})
	return value, found, err
}

// Put writes a key on its slot's owner.
func (cc *ClusterClient) Put(key, value uint64) error {
	return cc.route(key, func(rc *ResilientClient) error { return rc.Put(key, value) })
}

// Delete removes a key on its slot's owner.
func (cc *ClusterClient) Delete(key uint64) (found bool, err error) {
	err = cc.route(key, func(rc *ResilientClient) error {
		var e error
		found, e = rc.Delete(key)
		return e
	})
	return found, err
}

// Scan reads up to limit pairs in ascending key order across the whole
// cluster: every node is scanned (keys are hash-placed, so any node may
// hold part of the range) and each pair is kept only if the cached map
// assigns its slot to the node that served it — migrated keys awaiting
// the donor's purge would otherwise surface twice.
func (cc *ClusterClient) Scan(start uint64, limit int) ([]KV, error) {
	if cc.m == nil {
		if err := cc.refresh(""); err != nil {
			return nil, err
		}
	}
	m := cc.m
	merged := make(map[uint64]uint64)
	for _, addr := range m.Nodes {
		if m.Owned(addr) == 0 {
			continue
		}
		rc, err := cc.node(addr)
		if err != nil {
			return nil, err
		}
		pairs, err := rc.Scan(start, limit)
		if err != nil {
			return nil, err
		}
		for _, kv := range pairs {
			if m.OwnerOf(cluster.SlotFor(kv.Key, m.Slots)) == addr {
				merged[kv.Key] = kv.Value
			}
		}
	}
	out := make([]KV, 0, len(merged))
	for k, v := range merged {
		out = append(out, KV{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// ClusterMap exposes the map fetch on ResilientClient for the routing
// tier (and anyone needing the raw image with retries).
func (r *ResilientClient) ClusterMap() (img []byte, err error) {
	err = r.do(func(c *Client) error {
		var e error
		img, e = c.ClusterMap()
		return e
	})
	return img, err
}
