package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"nvref/internal/cluster"
	"nvref/internal/repl"
)

// fuzzSeeds are the valid frames (length prefix included) seeding the
// corpus — one per op, a deadline-enveloped request, and a batch.
func fuzzSeeds(f *testing.F) {
	reqs := []*Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: 1, Value: 2},
		{Op: OpDelete, Key: ^uint64(0)},
		{Op: OpScan, Key: 7, Limit: 100},
		{Op: OpStats},
		{Op: OpCheckpoint},
		{Op: OpPut, Key: 9, Value: 10, TTLms: 250},
		{Op: OpGet, Key: 8, Gate: 12345},
		{Op: OpGet, Key: 8, TTLms: 20, Gate: 1},
		{Op: OpReplicate, Shard: 1, Seq: 5, Limit: 128},
		{Op: OpReplAck, Shard: 3, Seq: 999},
		{Op: OpBatch, TTLms: 50, Sub: []Request{
			{Op: OpGet, Key: 1},
			{Op: OpPut, Key: 2, Value: 3},
			{Op: OpScan, Key: 5, Limit: 6},
		}},
		{Op: OpGet, Key: 8, Trace: 0xDEADBEEF, Sampled: true},
		{Op: OpPut, Key: 1, Value: 2, Trace: 5},
		{Op: OpGet, Key: 8, TTLms: 20, Trace: 9, Sampled: true, Gate: 1},
		{Op: OpBatch, Trace: 3, Sampled: true, Sub: []Request{
			{Op: OpGet, Key: 1},
			{Op: OpPut, Key: 2, Value: 3},
		}},
		{Op: OpClusterMap},
		{Op: OpMapUpdate, Blob: fuzzMapImage()},
		{Op: OpMigSnapshot, Shard: 1, Slot: 3, Key: 42, Limit: 16},
		{Op: OpMigSnapshot, Slot: SlotAll, Limit: MaxScanLimit},
		{Op: OpMigPull, Shard: 1, Slot: 2, Seq: 7, Limit: 64},
		{Op: OpMigPull, Shard: 0, Slot: SlotAll, Seq: 0, Limit: MaxReplBatch},
		{Op: OpMigFence, Slot: 5, Addr: "127.0.0.1:9"},
	}
	for _, req := range reqs {
		body, err := AppendRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, body); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Hostile seeds: oversized length prefix, huge batch count, huge scan
	// limit, truncated header.
	big := make([]byte, 4)
	binary.LittleEndian.PutUint32(big, MaxFrame+1)
	f.Add(big)
	f.Add([]byte{5, 0, 0, 0, OpBatch, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{13, 0, 0, 0, OpScan, 1, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{1, 0})
	// Hostile trace envelopes: zero ID, unknown flags, truncated envelope,
	// and a trace inside a batch sub-request.
	f.Add([]byte{19, 0, 0, 0, OpTrace, 0, 0, 0, 0, 0, 0, 0, 0, 0, OpGet, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{19, 0, 0, 0, OpTrace, 1, 0, 0, 0, 0, 0, 0, 0, 0xFF, OpGet, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{4, 0, 0, 0, OpTrace, 1, 0, 0})
	f.Add([]byte{24, 0, 0, 0, OpBatch, 1, 0, 0, 0, OpTrace, 1, 0, 0, 0, 0, 0, 0, 0, 1, OpGet, 1, 0, 0, 0, 0, 0, 0, 0})
	// Hostile cluster seeds: map update claiming a 4 GiB image, fence with
	// an addr length past the body, snapshot with an oversized chunk limit,
	// and a cluster op smuggled into a batch.
	f.Add([]byte{5, 0, 0, 0, OpMapUpdate, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{7, 0, 0, 0, OpMigFence, 5, 0, 0, 0, 0xFF, 0xFF})
	f.Add([]byte{21, 0, 0, 0, OpMigSnapshot, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{6, 0, 0, 0, OpBatch, 1, 0, 0, 0, OpClusterMap})
}

// fuzzMapImage is a small valid encoded cluster map for the corpus.
func fuzzMapImage() []byte {
	m, err := cluster.New(4, []string{"127.0.0.1:1", "127.0.0.1:2"})
	if err != nil {
		panic(err)
	}
	return m.Encode()
}

// FuzzDecodeFrame feeds arbitrary byte streams through the exact framing
// and decoding path handleConn runs: ReadFrame must bound every
// allocation, DecodeRequest must reject malformed payloads with ErrProto
// (never panic), and anything it accepts must re-encode and re-decode to
// the identical request (the codec is a bijection on valid frames).
func FuzzDecodeFrame(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // short or oversized frame: rejected before allocation
		}
		if len(body) > MaxFrame {
			t.Fatalf("ReadFrame returned %d bytes, beyond MaxFrame", len(body))
		}
		req, err := DecodeRequest(body)
		if err != nil {
			if !errors.Is(err, ErrProto) {
				t.Fatalf("DecodeRequest rejected with non-protocol error %v", err)
			}
			return
		}
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request %+v does not re-encode: %v", req, err)
		}
		again, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded request %+v does not re-decode: %v", req, err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip diverged: %+v vs %+v", req, again)
		}
	})
}

// replyFuzzReq maps a fuzzed op byte to the request shape DecodeReply
// parses against. Batch uses a fixed two-element shape so the reply's
// count field has something to disagree with. The high bit selects a
// traced request, so the fuzzer also drives the reply-echo decode path.
func replyFuzzReq(op byte) *Request {
	var trace uint64
	if op&0x80 != 0 {
		op &^= 0x80
		trace = 7
	}
	if op == OpBatch {
		return &Request{Op: OpBatch, Trace: trace, Sub: []Request{{Op: OpGet, Key: 1}, {Op: OpPut, Key: 2, Value: 3}}}
	}
	return &Request{Op: op, Limit: 16, Trace: trace}
}

// FuzzDecodeReply is FuzzDecodeFrame's mirror for the client half:
// arbitrary reply bodies against every request shape must be rejected
// with ErrProto (never panic, never over-allocate), and any accepted
// reply must survive an encode/decode round trip unchanged.
func FuzzDecodeReply(f *testing.F) {
	seedReps := []struct {
		op  byte
		rep Reply
	}{
		{OpGet, Reply{Status: StatusOK, Found: true, Value: 77}},
		{OpGet, Reply{Status: StatusOK}},
		{OpGet, Reply{Status: StatusLagging}},
		{OpPut, Reply{Status: StatusOK, Shard: 2, Seq: 41}},
		{OpPut, Reply{Status: StatusReadOnly}},
		{OpDelete, Reply{Status: StatusOK, Found: true, Shard: 1, Seq: 9}},
		{OpScan, Reply{Status: StatusOK, Pairs: []KV{{Key: 1, Value: 2}, {Key: 3, Value: 4}}}},
		{OpStats, Reply{Status: StatusOK, Blob: []byte(`{"shards":2}`)}},
		{OpCheckpoint, Reply{Status: StatusOK}},
		{OpReplAck, Reply{Status: StatusOK}},
		{OpReplicate, Reply{Status: StatusOK, Seq: 12, Recs: []repl.Record{
			{Seq: 11, Key: 5, Value: 6, Op: repl.RecPut},
			{Seq: 12, Key: 5, Op: repl.RecDelete},
		}}},
		{OpGet, Reply{Status: StatusShed}},
		{OpPut, Reply{Status: StatusInternal}},
		{OpGet, Reply{Status: StatusMoved, Epoch: 3, Addr: "127.0.0.1:7"}},
		{OpPut, Reply{Status: StatusMoved, Epoch: 1, Addr: "x"}},
		{OpMapUpdate, Reply{Status: StatusWrongEpoch}},
		{OpClusterMap, Reply{Status: StatusOK, Blob: fuzzMapImage()}},
		{OpMigSnapshot, Reply{Status: StatusOK, Found: true, Seq: 99, Pairs: []KV{{Key: 1, Value: 2}}}},
		{OpMigPull, Reply{Status: StatusOK, Found: true, Seq: 12, Value: 15, Recs: []repl.Record{
			{Seq: 11, Key: 5, Value: 6, Op: repl.RecPut},
		}}},
		{OpMigFence, Reply{Status: StatusOK, Seqs: []uint64{3, 9}}},
		{OpMigFence, Reply{Status: StatusUnavailable}},
	}
	for _, s := range seedReps {
		f.Add(s.op, AppendReply(nil, s.op, &s.rep))
	}
	batchRep := Reply{Status: StatusOK, Sub: []Reply{
		{Status: StatusOK, Found: true, Value: 10},
		{Status: StatusOK, Shard: 0, Seq: 3},
	}}
	f.Add(OpBatch, AppendBatchReply(nil, replyFuzzReq(OpBatch), &batchRep))
	// Traced shapes: the echo prefix on a value reply, an error reply, and
	// a batch (high bit of the op selects the traced request shape).
	tracedGet := Reply{Status: StatusOK, Found: true, Value: 5, Trace: 7}
	f.Add(OpGet|0x80, AppendReply(nil, OpGet, &tracedGet))
	tracedShed := Reply{Status: StatusShed, Trace: 7}
	f.Add(OpPut|0x80, AppendReply(nil, OpPut, &tracedShed))
	tracedBatch := Reply{Status: StatusOK, Trace: 7, Sub: []Reply{
		{Status: StatusOK, Found: true, Value: 10, Trace: 7},
		{Status: StatusOK, Seq: 3, Trace: 7},
	}}
	f.Add(OpBatch|0x80, AppendBatchReply(nil, replyFuzzReq(OpBatch|0x80), &tracedBatch))
	// Traced request whose reply lacks the echo: must be rejected.
	f.Add(OpGet|0x80, []byte{StatusOK, 1, 77, 0, 0, 0, 0, 0, 0, 0})
	// Hostile seeds: replicate reply claiming MaxReplBatch records with no
	// bytes, scan reply with a huge count, batch count mismatch.
	f.Add(OpReplicate, []byte{StatusOK, 9, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0, 0})
	f.Add(OpScan, []byte{StatusOK, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(OpBatch, []byte{StatusOK, 7, 0, 0, 0})
	// Hostile cluster replies: MOVED with an addr length past the body, a
	// map image claiming 4 GiB, and a fence reply claiming 4 G watermarks.
	f.Add(OpGet, []byte{StatusMoved, 1, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF})
	f.Add(OpClusterMap, []byte{StatusOK, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(OpMigFence, []byte{StatusOK, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, op byte, data []byte) {
		req := replyFuzzReq(op)
		rep, err := DecodeReply(req, data)
		if err != nil {
			if !errors.Is(err, ErrProto) {
				t.Fatalf("DecodeReply rejected with non-protocol error %v", err)
			}
			return
		}
		if len(rep.Recs) > MaxReplBatch || len(rep.Pairs) > MaxScanLimit {
			t.Fatalf("decoded reply exceeds protocol bounds: %d recs, %d pairs", len(rep.Recs), len(rep.Pairs))
		}
		if len(rep.Seqs) > MaxFenceShards || len(rep.Blob) > MaxFrame {
			t.Fatalf("decoded reply exceeds protocol bounds: %d seqs, %d blob bytes", len(rep.Seqs), len(rep.Blob))
		}
		var enc []byte
		if req.Op == OpBatch {
			enc = AppendBatchReply(nil, req, rep)
		} else {
			enc = AppendReply(nil, req.Op, rep)
		}
		again, err := DecodeReply(req, enc)
		if err != nil {
			t.Fatalf("accepted reply %+v does not re-decode: %v", rep, err)
		}
		if !reflect.DeepEqual(rep, again) {
			t.Fatalf("reply round trip diverged: %+v vs %+v", rep, again)
		}
	})
}

// TestReplProtoRoundTrip pins the replication ops' wire rules: request and
// reply round trips, the seq-gate envelope's validation, and the bounds on
// pull sizes.
func TestReplProtoRoundTrip(t *testing.T) {
	for _, req := range []*Request{
		{Op: OpReplicate, Shard: 3, Seq: 77, Limit: MaxReplBatch},
		{Op: OpReplAck, Shard: 0, Seq: 1},
		{Op: OpGet, Key: 5, Gate: 99},
		{Op: OpGet, Key: 5, TTLms: 10, Gate: 99},
	} {
		if got := roundTripRequest(t, req); !reflect.DeepEqual(got, req) {
			t.Errorf("round trip: got %+v, want %+v", got, req)
		}
	}

	// Gate envelope rules: GET-only, nonzero, top-level only.
	if _, err := AppendRequest(nil, &Request{Op: OpPut, Key: 1, Gate: 5}); !errors.Is(err, ErrProto) {
		t.Errorf("gate on PUT: %v", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpBatch, Sub: []Request{{Op: OpGet, Gate: 5}}}); !errors.Is(err, ErrProto) {
		t.Errorf("gate in batch: %v", err)
	}
	bad := map[string][]byte{
		"zero gate":    {OpSeqGate, 0, 0, 0, 0, 0, 0, 0, 0, OpGet, 1, 0, 0, 0, 0, 0, 0, 0},
		"gate on put":  {OpSeqGate, 5, 0, 0, 0, 0, 0, 0, 0, OpPut, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0},
		"bare gate":    {OpSeqGate, 5, 0, 0, 0, 0, 0, 0, 0},
		"double gate":  {OpSeqGate, 5, 0, 0, 0, 0, 0, 0, 0, OpSeqGate, 5, 0, 0, 0, 0, 0, 0, 0, OpGet, 1, 0, 0, 0, 0, 0, 0, 0},
		"pull limit 0": {OpReplicate, 1, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, body := range bad {
		if _, err := DecodeRequest(body); !errors.Is(err, ErrProto) {
			t.Errorf("%s: err = %v, want ErrProto", name, err)
		}
	}

	// Pull limit above MaxReplBatch on either side of the wire.
	if _, err := AppendRequest(nil, &Request{Op: OpReplicate, Limit: MaxReplBatch + 1}); !errors.Is(err, ErrProto) {
		t.Errorf("encode oversized pull: %v", err)
	}
	// Replication ops are forbidden inside batches.
	for _, op := range []byte{OpReplicate, OpReplAck} {
		if _, err := AppendRequest(nil, &Request{Op: OpBatch, Sub: []Request{{Op: op, Limit: 1}}}); !errors.Is(err, ErrProto) {
			t.Errorf("op %d in batch: %v", op, err)
		}
	}
}

// TestDeadlineEnvelope covers the envelope's decode rules directly: TTL
// round trip, zero/oversized TTL rejection, and envelope-inside-batch
// rejection.
func TestDeadlineEnvelope(t *testing.T) {
	got := roundTripRequest(t, &Request{Op: OpPut, Key: 3, Value: 4, TTLms: 1500})
	if got.TTLms != 1500 {
		t.Fatalf("TTL round trip: got %d, want 1500", got.TTLms)
	}

	bad := map[string][]byte{
		"zero ttl":      {OpDeadline, 0, 0, 0, 0, OpStats},
		"oversized ttl": {OpDeadline, 0xFF, 0xFF, 0xFF, 0xFF, OpStats},
		"bare envelope": {OpDeadline, 10, 0, 0, 0},
		"double envelope": {OpDeadline, 10, 0, 0, 0,
			OpDeadline, 10, 0, 0, 0, OpStats},
		"envelope in batch": {OpBatch, 1, 0, 0, 0, OpDeadline, 10, 0, 0, 0, OpGet, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, body := range bad {
		if _, err := DecodeRequest(body); !errors.Is(err, ErrProto) {
			t.Errorf("%s: err = %v, want ErrProto", name, err)
		}
	}
	if _, err := AppendRequest(nil, &Request{Op: OpPut, TTLms: MaxTTLms + 1}); !errors.Is(err, ErrProto) {
		t.Errorf("encode oversized ttl: err = %v, want ErrProto", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpBatch, Sub: []Request{{Op: OpGet, TTLms: 5}}}); !errors.Is(err, ErrProto) {
		t.Errorf("encode ttl in batch: err = %v, want ErrProto", err)
	}
}

// TestDecodeBoundsCounts proves the decoder validates count prefixes
// against the remaining bytes before allocating: a tiny frame claiming the
// maximum counts must be rejected, not trusted.
func TestDecodeBoundsCounts(t *testing.T) {
	batch := []byte{OpBatch, 0, 4, 0, 0} // 1024 subs claimed, 0 bytes follow
	if _, err := DecodeRequest(batch); !errors.Is(err, ErrProto) {
		t.Errorf("undersized batch: err = %v, want ErrProto", err)
	}
	// Scan reply claiming MaxScanLimit pairs with an empty body.
	scanRep := []byte{StatusOK, 0, 16, 0, 0}
	if _, err := DecodeReply(&Request{Op: OpScan, Limit: 10}, scanRep); !errors.Is(err, ErrProto) {
		t.Errorf("undersized scan reply: err = %v, want ErrProto", err)
	}
}

// TestRetryable pins the retry classification: fail-fast statuses and
// transport failures retry; protocol and internal errors do not.
func TestRetryable(t *testing.T) {
	for _, err := range []error{ErrShed, ErrUnavailable, ErrDeadline, ErrLagging, ErrReadOnly} {
		if !Retryable(err) {
			t.Errorf("%v must be retryable", err)
		}
	}
	internal := (&Reply{Status: StatusInternal}).Err()
	for _, err := range []error{nil, ErrProto, internal} {
		if Retryable(err) {
			t.Errorf("%v must not be retryable", err)
		}
	}
	if !Retryable((&Reply{Status: StatusShed}).Err()) {
		t.Error("shed reply error must be retryable")
	}
}
