package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// fuzzSeeds are the valid frames (length prefix included) seeding the
// corpus — one per op, a deadline-enveloped request, and a batch.
func fuzzSeeds(f *testing.F) {
	reqs := []*Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: 1, Value: 2},
		{Op: OpDelete, Key: ^uint64(0)},
		{Op: OpScan, Key: 7, Limit: 100},
		{Op: OpStats},
		{Op: OpCheckpoint},
		{Op: OpPut, Key: 9, Value: 10, TTLms: 250},
		{Op: OpBatch, TTLms: 50, Sub: []Request{
			{Op: OpGet, Key: 1},
			{Op: OpPut, Key: 2, Value: 3},
			{Op: OpScan, Key: 5, Limit: 6},
		}},
	}
	for _, req := range reqs {
		body, err := AppendRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, body); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Hostile seeds: oversized length prefix, huge batch count, huge scan
	// limit, truncated header.
	big := make([]byte, 4)
	binary.LittleEndian.PutUint32(big, MaxFrame+1)
	f.Add(big)
	f.Add([]byte{5, 0, 0, 0, OpBatch, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{13, 0, 0, 0, OpScan, 1, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{1, 0})
}

// FuzzDecodeFrame feeds arbitrary byte streams through the exact framing
// and decoding path handleConn runs: ReadFrame must bound every
// allocation, DecodeRequest must reject malformed payloads with ErrProto
// (never panic), and anything it accepts must re-encode and re-decode to
// the identical request (the codec is a bijection on valid frames).
func FuzzDecodeFrame(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		body, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // short or oversized frame: rejected before allocation
		}
		if len(body) > MaxFrame {
			t.Fatalf("ReadFrame returned %d bytes, beyond MaxFrame", len(body))
		}
		req, err := DecodeRequest(body)
		if err != nil {
			if !errors.Is(err, ErrProto) {
				t.Fatalf("DecodeRequest rejected with non-protocol error %v", err)
			}
			return
		}
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request %+v does not re-encode: %v", req, err)
		}
		again, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded request %+v does not re-decode: %v", req, err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip diverged: %+v vs %+v", req, again)
		}
	})
}

// TestDeadlineEnvelope covers the envelope's decode rules directly: TTL
// round trip, zero/oversized TTL rejection, and envelope-inside-batch
// rejection.
func TestDeadlineEnvelope(t *testing.T) {
	got := roundTripRequest(t, &Request{Op: OpPut, Key: 3, Value: 4, TTLms: 1500})
	if got.TTLms != 1500 {
		t.Fatalf("TTL round trip: got %d, want 1500", got.TTLms)
	}

	bad := map[string][]byte{
		"zero ttl":      {OpDeadline, 0, 0, 0, 0, OpStats},
		"oversized ttl": {OpDeadline, 0xFF, 0xFF, 0xFF, 0xFF, OpStats},
		"bare envelope": {OpDeadline, 10, 0, 0, 0},
		"double envelope": {OpDeadline, 10, 0, 0, 0,
			OpDeadline, 10, 0, 0, 0, OpStats},
		"envelope in batch": {OpBatch, 1, 0, 0, 0, OpDeadline, 10, 0, 0, 0, OpGet, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, body := range bad {
		if _, err := DecodeRequest(body); !errors.Is(err, ErrProto) {
			t.Errorf("%s: err = %v, want ErrProto", name, err)
		}
	}
	if _, err := AppendRequest(nil, &Request{Op: OpPut, TTLms: MaxTTLms + 1}); !errors.Is(err, ErrProto) {
		t.Errorf("encode oversized ttl: err = %v, want ErrProto", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpBatch, Sub: []Request{{Op: OpGet, TTLms: 5}}}); !errors.Is(err, ErrProto) {
		t.Errorf("encode ttl in batch: err = %v, want ErrProto", err)
	}
}

// TestDecodeBoundsCounts proves the decoder validates count prefixes
// against the remaining bytes before allocating: a tiny frame claiming the
// maximum counts must be rejected, not trusted.
func TestDecodeBoundsCounts(t *testing.T) {
	batch := []byte{OpBatch, 0, 4, 0, 0} // 1024 subs claimed, 0 bytes follow
	if _, err := DecodeRequest(batch); !errors.Is(err, ErrProto) {
		t.Errorf("undersized batch: err = %v, want ErrProto", err)
	}
	// Scan reply claiming MaxScanLimit pairs with an empty body.
	scanRep := []byte{StatusOK, 0, 16, 0, 0}
	if _, err := DecodeReply(&Request{Op: OpScan, Limit: 10}, scanRep); !errors.Is(err, ErrProto) {
		t.Errorf("undersized scan reply: err = %v, want ErrProto", err)
	}
}

// TestRetryable pins the retry classification: fail-fast statuses and
// transport failures retry; protocol and internal errors do not.
func TestRetryable(t *testing.T) {
	for _, err := range []error{ErrShed, ErrUnavailable, ErrDeadline} {
		if !Retryable(err) {
			t.Errorf("%v must be retryable", err)
		}
	}
	internal := (&Reply{Status: StatusInternal}).Err()
	for _, err := range []error{nil, ErrProto, internal} {
		if Retryable(err) {
			t.Errorf("%v must not be retryable", err)
		}
	}
	if !Retryable((&Reply{Status: StatusShed}).Err()) {
		t.Error("shed reply error must be retryable")
	}
}
