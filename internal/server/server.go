package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nvref/internal/cluster"
	"nvref/internal/fault"
	"nvref/internal/obs"
	"nvref/internal/parity"
	"nvref/internal/pmem"
	"nvref/internal/repl"
	"nvref/internal/rt"
)

// Config parameterizes a Server.
type Config struct {
	// Shards is the number of independent engine shards (default 4).
	Shards int
	// Mode is the reference model every shard runs under (default rt.HW).
	// rt.Volatile stores absolute pointers, which cannot survive the pool
	// relocation that recovery performs, so the serving tier promotes it to
	// rt.HW.
	Mode rt.Mode
	// PoolSize is each shard's pool size (default 32 MiB). Checkpoints
	// snapshot the whole pool, so serving pools are far smaller than the
	// benchmark default.
	PoolSize uint64
	// QueueDepth bounds each shard's request queue (default 128); a full
	// queue applies backpressure to connection readers up to AdmitWait,
	// then sheds.
	QueueDepth int
	// CheckpointEvery checkpoints a shard after that many operations
	// (default 8192; negative means only at explicit barriers and graceful
	// shutdown).
	CheckpointEvery int
	// AdmitWait bounds how long admission waits for space in a full shard
	// queue before answering StatusShed (default 50ms; negative sheds
	// immediately on a full queue).
	AdmitWait time.Duration
	// WedgeTimeout is how long a shard may hold queued work without making
	// progress before the watchdog declares it wedged and opens its
	// circuit breaker (default 2s; negative disables the watchdog).
	WedgeTimeout time.Duration
	// BreakerCooldown is how long an open shard breaker fails fast before
	// admitting a half-open probe (default 100ms).
	BreakerCooldown time.Duration
	// ScrubEvery, when positive, runs the background scrubber: idle
	// healthy shards are fsck-checked (and repaired if needed) at this
	// period, Pangolin-style. Zero disables scrubbing.
	ScrubEvery time.Duration
	// Parity, when enabled, arms the media-fault-tolerance layer on every
	// shard pool: checkpoints maintain per-page CRC32s plus an XOR parity
	// sidecar, crash recovery repairs corrupt pool images in place from
	// parity, and the background scrubber upgrades from detect-only to
	// scrub-and-repair over the stored images (see internal/parity).
	Parity parity.Policy
	// StoreFor supplies each shard's backing store. Nil stores every shard
	// in a fresh MemStore (persistent across crashes injected into this
	// server, not across processes).
	StoreFor func(shard int) pmem.Store
	// SchedFor, when non-nil, arms a per-shard fault scheduler; the shard
	// worker evaluates it at CrashPointOp before every data operation.
	SchedFor func(shard int) fault.Scheduler
	// Reg, when non-nil, receives the server's metrics: per-shard queue
	// depth gauges, op counters and latency histograms, supervisor and
	// breaker counters, plus connection and request counts. Reuse it with
	// obs.Mux to serve /metrics.
	Reg *obs.Registry
	// Logf, when non-nil, receives supervisor, watchdog, and scrubber
	// events (one line each).
	Logf func(format string, args ...any)
	// Clock is the time source for every correctness window the server
	// keeps: request deadlines, held-ack expiry, replica liveness, fencing,
	// promotion-by-silence, breaker cooldowns, and the watchdog's wedge
	// window. Nil uses the wall clock; the deterministic simulator
	// (internal/sim) passes a virtual clock so those windows open and close
	// at exactly reproducible points. Purely mechanical cadences — socket
	// deadlines, dial timeouts, follower poll sleeps — stay on the wall
	// clock regardless, since they pace real goroutines and sockets.
	Clock fault.Clock

	// TraceSample, when positive, is the fraction of untraced requests the
	// server itself samples for span recording (clients may also request
	// sampling per request via the trace envelope). Setting any tracing
	// option attaches the tracing plane; leaving them all zero keeps the
	// hot path free of it.
	TraceSample float64
	// SlowOp, when positive, notes every operation slower than this
	// (end to end, admission to reply hand-off) into the flight recorder
	// as a wide event carrying its per-stage breakdown — sampled or not.
	SlowOp time.Duration
	// FlightDir is where flight-recorder triggers dump their JSONL
	// snapshots (empty: the incident ring stays in memory only).
	FlightDir string
	// Spans, when non-nil, receives the per-stage spans of sampled
	// requests. Defaults to a fresh recorder (over Reg) when any tracing
	// option is set.
	Spans *obs.SpanRecorder
	// Flight, when non-nil, is the incident flight recorder. Defaults to a
	// fresh recorder over FlightDir when the tracing plane is attached.
	Flight *obs.FlightRecorder

	// Role selects the replication role (default RoleStandalone: no
	// operation log, pre-replication behavior). A primary logs every write
	// and holds write acks for replica acknowledgment while a replica is
	// live; a replica follows a primary and rejects plain writes.
	Role int32
	// FollowAddr is the primary a replica pulls from (required for
	// RoleReplica).
	FollowAddr string
	// FollowDial, when non-nil, replaces the follower's dialer — the hook
	// fault injectors and in-process tests plug into.
	FollowDial func(addr string) (net.Conn, error)
	// FollowPoll is the follower's idle poll interval (default 2ms).
	FollowPoll time.Duration
	// ReplBatch bounds the records per pull (default 1024, max MaxReplBatch).
	ReplBatch int
	// ReplWindow is the follower's in-flight window: how many shard pulls
	// are pipelined per round group (default 4).
	ReplWindow int
	// AckTimeout bounds how long a primary holds a write ack waiting for
	// replica acknowledgment before failing it UNAVAILABLE (default 5s).
	AckTimeout time.Duration
	// ReplLiveWindow is how recently a replica must have pulled for the
	// primary to hold write acks for it (default 1s); with no recent pull,
	// writes are acked immediately and counted as degraded.
	ReplLiveWindow time.Duration
	// PromoteAfter, when positive, auto-promotes a replica whose primary
	// has been unreachable that long. Zero means promotion is manual
	// (Promote or the operator).
	PromoteAfter time.Duration
	// FenceAfter, when positive, makes a primary that has ever seen a
	// replica refuse writes (READONLY) once the replica has been silent
	// that long — the fencing side of silence-based promotion. Set it
	// below the replica's PromoteAfter so a partitioned primary stops
	// accepting writes before the replica can have taken over; failover
	// clients then rotate to the promoted replica. Zero disables fencing,
	// accepting the documented split-brain window under partition.
	FenceAfter time.Duration
	// LogStoreFor supplies each shard's operation-log store (replicated
	// roles only). Nil keeps the logs in memory — crash recovery then
	// replays nothing, but log shipping still works.
	LogStoreFor func(shard int) pmem.Store
	// LogFlushEvery flushes a shard's log image every that many appends
	// (default 64; negative flushes only at checkpoints).
	LogFlushEvery int
	// NoAutoReseed disables the follower's automatic re-seed: on a log
	// divergence it falls back to logging the incident and halting the
	// shard's replication (the pre-cluster behavior) instead of wiping the
	// shard and re-seeding from a primary snapshot.
	NoAutoReseed bool

	// ClusterSelf, when set, turns the cluster tier on: the address this
	// node is known by in the cluster map (what clients redirect to). A
	// clustered node runs RolePrimary (Standalone is promoted; Replica is
	// refused — a replica follows its primary, not the map).
	ClusterSelf string
	// ClusterMap is the bootstrap map (typically cluster.New over the
	// initial peer list — identical on every founding node). A persisted
	// map of a higher epoch in ClusterStore wins over it. Nil with
	// ClusterSelf set means the node joins empty (JoinCluster).
	ClusterMap *cluster.Map
	// ClusterStore, when non-nil, persists the installed map (CRC-checked
	// image) so a restarted node rejoins at its last known epoch.
	ClusterStore pmem.Store
}

func (c *Config) fillDefaults() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Mode == rt.Volatile {
		c.Mode = rt.HW
	}
	if c.PoolSize == 0 {
		c.PoolSize = 32 << 20
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8192
	}
	if c.AdmitWait == 0 {
		c.AdmitWait = 50 * time.Millisecond
	}
	if c.AdmitWait < 0 {
		c.AdmitWait = 0
	}
	if c.WedgeTimeout == 0 {
		c.WedgeTimeout = 2 * time.Second
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 100 * time.Millisecond
	}
	if c.FollowPoll <= 0 {
		c.FollowPoll = 2 * time.Millisecond
	}
	if c.ReplBatch <= 0 || c.ReplBatch > MaxReplBatch {
		c.ReplBatch = 1024
	}
	if c.ReplWindow <= 0 {
		c.ReplWindow = 4
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.ReplLiveWindow <= 0 {
		c.ReplLiveWindow = time.Second
	}
	if c.LogFlushEvery == 0 {
		c.LogFlushEvery = 64
	}
	c.Clock = fault.OrWall(c.Clock)
}

// latencyBounds are the microsecond buckets of the per-shard latency
// histograms (queue wait + service time, measured at the worker).
var latencyBounds = []uint64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000}

// Server is the sharded persistent KV service.
type Server struct {
	cfg    Config
	shards []*shard

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup // connection handlers + acceptor

	bgStop   chan struct{} // watchdog + scrubber
	bgWG     sync.WaitGroup
	stopOnce sync.Once

	// Migration gate: MigrateIn registers with migWG so shutdown can
	// interrupt (migStop) and drain in-flight slot migrations before
	// the shard queues close — an undrained migration would send to a
	// closed queue.
	migMu       sync.Mutex
	migClosing  bool
	migWG       sync.WaitGroup
	migStop     chan struct{}
	migStopOnce sync.Once

	connCount atomic.Int64
	requests  atomic.Uint64
	errored   atomic.Uint64
	started   time.Time

	// The tracing plane (nil when no tracing option is configured).
	spans   *obs.SpanRecorder
	flight  *obs.FlightRecorder
	sampler *traceSampler
	// fencedTrip de-bounces the fencing trigger: one flight dump per
	// fenced episode, re-armed when the replica makes contact again.
	fencedTrip atomic.Bool

	repl    replState
	cluster clusterState
}

// New builds the server and opens every shard, recovering any pool image
// its store already holds (the restart path: pmem.Open + Fsck per shard).
// The shard workers start immediately under their supervisors; Serve only
// adds the network front.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if cfg.Role == RoleReplica && cfg.FollowAddr == "" {
		return nil, errors.New("server: role replica requires a primary address to follow")
	}
	if cfg.ClusterSelf != "" {
		if cfg.Role == RoleReplica {
			return nil, errors.New("server: a replica cannot join a cluster map (it follows its primary)")
		}
		if len(cfg.ClusterSelf) > cluster.MaxNodeAddr {
			return nil, fmt.Errorf("server: cluster address longer than %d bytes", cluster.MaxNodeAddr)
		}
		// A clustered node logs every write: migration catch-up tails the
		// op log, so the cluster tier implies at least RolePrimary.
		if cfg.Role == RoleStandalone {
			cfg.Role = RolePrimary
		}
	}
	if cfg.Spans == nil && (cfg.TraceSample > 0 || cfg.SlowOp > 0 || cfg.FlightDir != "" || cfg.Flight != nil) {
		cfg.Spans = obs.NewSpanRecorder(0, cfg.Reg)
	}
	if cfg.Flight == nil && cfg.Spans != nil {
		cfg.Flight = obs.NewFlightRecorder(0, cfg.FlightDir, cfg.Spans)
	}
	s := &Server{
		cfg:     cfg,
		conns:   make(map[net.Conn]struct{}),
		bgStop:  make(chan struct{}),
		migStop: make(chan struct{}),
		started: time.Now(),
		spans:   cfg.Spans,
		flight:  cfg.Flight,
	}
	if cfg.Spans != nil {
		s.sampler = newTraceSampler(cfg.TraceSample, uint64(time.Now().UnixNano())|1)
	}
	s.repl.role.Store(cfg.Role)
	if cfg.ClusterSelf != "" {
		s.cluster.self = cfg.ClusterSelf
		s.cluster.fenced = make(map[int]*fenceInfo)
		s.cluster.cmap = cfg.ClusterMap
		if cfg.ClusterStore != nil {
			persisted, err := cluster.Load(cfg.ClusterStore)
			if err != nil {
				return nil, fmt.Errorf("server: persisted cluster map: %w", err)
			}
			// The newest epoch wins: a restarted node must not regress to
			// the bootstrap map after a handover moved its slots.
			if persisted != nil && (s.cluster.cmap == nil || persisted.Epoch > s.cluster.cmap.Epoch) {
				s.cluster.cmap = persisted
				s.logf("cluster: restored persisted map: epoch %d, %d/%d slots owned",
					persisted.Epoch, persisted.Owned(cfg.ClusterSelf), persisted.Slots)
			}
		}
	}
	// One repair-latency histogram shared by every shard: media repairs
	// are rare incidents, and the obs.Histogram is atomic.
	var repairHist *obs.Histogram
	if cfg.Reg != nil && cfg.Parity.Enabled {
		repairHist = cfg.Reg.Histogram("repair_latency_us",
			"media-repair pass latency (detect + reconstruct + heal), microseconds",
			latencyBounds)
	}
	for i := 0; i < cfg.Shards; i++ {
		sc := shardConfig{
			id:              i,
			mode:            cfg.Mode,
			poolSize:        cfg.PoolSize,
			queueDepth:      cfg.QueueDepth,
			checkpointEvery: cfg.CheckpointEvery,
			admitWait:       cfg.AdmitWait,
			clock:           cfg.Clock,
			logf:            cfg.Logf,
			spans:           cfg.Spans,
			flight:          cfg.Flight,
			slowOp:          cfg.SlowOp,
			parity:          cfg.Parity,
			repairLatency:   repairHist,
		}
		if cfg.Flight != nil {
			sc.trigger = s.shardTrigger
		}
		if cfg.StoreFor != nil {
			sc.store = cfg.StoreFor(i)
		} else {
			sc.store = pmem.NewMemStore()
		}
		if cfg.Role != RoleStandalone {
			var logStore pmem.Store
			if cfg.LogStoreFor != nil {
				logStore = cfg.LogStoreFor(i)
			}
			oplog, err := repl.OpenLog(logStore, fmt.Sprintf("oplog-%d", i), cfg.LogFlushEvery)
			if err != nil {
				for _, prev := range s.shards {
					close(prev.queue)
					<-prev.done
				}
				return nil, fmt.Errorf("server: shard %d: %w", i, err)
			}
			sc.oplog = oplog
			sc.role = &s.repl.role
			sc.replicaLive = s.replicaLive
			sc.fenced = s.writeFenced
			sc.ackTimeout = cfg.AckTimeout
		}
		if cfg.ClusterSelf != "" {
			sc.owns = s.slotCheck
		}
		if cfg.SchedFor != nil {
			sc.sched = cfg.SchedFor(i)
		}
		if cfg.Reg != nil {
			sc.latency = cfg.Reg.Histogram(
				fmt.Sprintf("server_shard%d_latency_us", i),
				fmt.Sprintf("shard %d request latency (queue wait + service), microseconds", i),
				latencyBounds)
		}
		sh, err := newShard(sc, newBreaker(cfg.BreakerCooldown, cfg.Clock))
		if err != nil {
			// Unwind the shards already running.
			for _, prev := range s.shards {
				close(prev.queue)
				<-prev.done
			}
			return nil, err
		}
		s.shards = append(s.shards, sh)
		go sh.supervise()
	}
	if cfg.WedgeTimeout > 0 {
		s.bgWG.Add(1)
		go s.watchdog()
	}
	if cfg.ScrubEvery > 0 {
		s.bgWG.Add(1)
		go s.scrubber()
	}
	if cfg.Role != RoleStandalone {
		s.bgWG.Add(1)
		go s.ackSweeper()
	}
	if cfg.Role == RoleReplica {
		s.repl.follower = newFollower(s, &cfg)
		go s.repl.follower.run()
	}
	if cfg.Reg != nil {
		s.registerMetrics(cfg.Reg)
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// trigger fires the incident flight recorder (freeze + dump) and logs the
// outcome. Safe to call with no recorder attached.
func (s *Server) trigger(kind, detail string) {
	if s.flight == nil {
		return
	}
	path, err := s.flight.Trigger(kind, detail)
	switch {
	case err != nil:
		s.logf("flight recorder: %s trigger: %v", kind, err)
	case path != "":
		s.logf("flight recorder: %s: dumped %s", kind, path)
	}
}

// shardTrigger routes shard-worker triggers, de-bouncing fencing: the first
// refused write of a fenced episode dumps, the rest are the same incident
// (markReplContact re-arms the trip when the replica returns).
func (s *Server) shardTrigger(kind, detail string) {
	if kind == TriggerFencing && !s.fencedTrip.CompareAndSwap(false, true) {
		return
	}
	s.trigger(kind, detail)
}

// watchdog detects wedged workers: a shard that holds queued work but has
// not advanced its heartbeat across a full WedgeTimeout window is declared
// wedged, its breaker opens (new requests fail fast with UNAVAILABLE), and
// the worker heals itself — resetting state and breaker — the moment it
// serves a request again.
func (s *Server) watchdog() {
	defer s.bgWG.Done()
	tick := s.cfg.WedgeTimeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	lastBeat := make([]int64, len(s.shards))
	stuckSince := make([]time.Time, len(s.shards))
	for i, sh := range s.shards {
		lastBeat[i] = sh.heartbeat.Load()
	}
	for {
		select {
		case <-s.bgStop:
			return
		case now := <-s.cfg.Clock.After(tick):
			for i, sh := range s.shards {
				hb := sh.heartbeat.Load()
				if len(sh.queue) == 0 || hb != lastBeat[i] {
					// Idle, or making progress: not stuck.
					lastBeat[i] = hb
					stuckSince[i] = time.Time{}
					continue
				}
				if stuckSince[i].IsZero() {
					stuckSince[i] = now
					continue
				}
				if now.Sub(stuckSince[i]) >= s.cfg.WedgeTimeout && sh.state.Load() == stateHealthy {
					sh.state.Store(stateWedged)
					sh.breaker.ForceOpen()
					sh.wedges.Add(1)
					s.logf("shard %d: wedged (no progress for %v with %d queued); breaker open",
						i, now.Sub(stuckSince[i]).Round(time.Millisecond), len(sh.queue))
					s.trigger(TriggerBreakerOpen,
						fmt.Sprintf("shard %d wedged: no progress for %v with %d queued",
							i, now.Sub(stuckSince[i]).Round(time.Millisecond), len(sh.queue)))
				}
			}
		}
	}
}

// scrubber periodically fscks idle healthy shards in the background (the
// Pangolin-style online scrub): crash residue is repaired before it can
// compound, without stalling foreground traffic — busy or unhealthy shards
// are skipped and retried next period.
func (s *Server) scrubber() {
	defer s.bgWG.Done()
	for {
		select {
		case <-s.bgStop:
			return
		case <-s.cfg.Clock.After(s.cfg.ScrubEvery):
			for _, sh := range s.shards {
				if sh.state.Load() != stateHealthy || len(sh.queue) > 0 {
					continue
				}
				resp := make(chan Reply, 1)
				select {
				case sh.queue <- &request{ctl: ctlScrub, resp: resp}:
					<-resp
				default:
					// Shard got busy between the check and the send; skip.
				}
			}
		}
	}
}

// registerMetrics exports the serving-plane series. Every collector reads
// only atomics (or channel lengths), so scraping never races the workers.
func (s *Server) registerMetrics(reg *obs.Registry) {
	reg.GaugeFunc("server_connections", "open client connections", func() int64 { return s.connCount.Load() })
	reg.CounterFunc("server_requests_total", "requests received across all connections", func() uint64 { return s.requests.Load() })
	reg.CounterFunc("server_errors_total", "requests answered with a non-OK status", func() uint64 { return s.errored.Load() })
	reg.GaugeFunc("server_shards", "configured shard count", func() int64 { return int64(len(s.shards)) })
	for i, sh := range s.shards {
		i, sh := i, sh
		pfx := fmt.Sprintf("server_shard%d_", i)
		reg.GaugeFunc(pfx+"queue_depth", "requests waiting in the shard queue", func() int64 { return int64(len(sh.queue)) })
		reg.GaugeFunc(pfx+"state", "supervision state (0 healthy, 1 recovering, 2 wedged)", func() int64 { return int64(sh.state.Load()) })
		reg.GaugeFunc(pfx+"breaker_state", "circuit breaker state (0 closed, 1 open, 2 half-open)", func() int64 { return int64(sh.breaker.State()) })
		reg.CounterFunc(pfx+"ops_total", "operations executed by the shard worker", func() uint64 { return sh.ops.Load() })
		reg.CounterFunc(pfx+"gets_total", "GET operations", func() uint64 { return sh.gets.Load() })
		reg.CounterFunc(pfx+"puts_total", "PUT operations", func() uint64 { return sh.puts.Load() })
		reg.CounterFunc(pfx+"deletes_total", "DELETE operations", func() uint64 { return sh.dels.Load() })
		reg.CounterFunc(pfx+"scans_total", "SCAN operations", func() uint64 { return sh.scans.Load() })
		reg.GaugeFunc(pfx+"keys", "live keys in the shard index", func() int64 { return int64(sh.keys.Load()) })
		reg.CounterFunc(pfx+"cycles_total", "simulated cycles consumed by the shard engine", func() uint64 { return sh.cycles.Load() })
		reg.CounterFunc(pfx+"checkpoints_total", "pool checkpoints written", func() uint64 { return sh.checkpoints.Load() })
		reg.CounterFunc(pfx+"crashes_total", "injected power-loss crashes", func() uint64 { return sh.crashes.Load() })
		reg.CounterFunc(pfx+"recoveries_total", "successful crash recoveries", func() uint64 { return sh.recoveries.Load() })
		reg.CounterFunc(pfx+"panics_total", "worker panics caught by the supervisor", func() uint64 { return sh.panics.Load() })
		reg.CounterFunc(pfx+"restarts_total", "worker restarts by the supervisor", func() uint64 { return sh.restarts.Load() })
		reg.CounterFunc(pfx+"salvages_total", "software-crash recoveries that preserved state", func() uint64 { return sh.salvages.Load() })
		reg.CounterFunc(pfx+"rollbacks_total", "software-crash recoveries that fell back to checkpoint rollback", func() uint64 { return sh.rollbacks.Load() })
		reg.CounterFunc(pfx+"wedges_total", "times the watchdog declared the worker wedged", func() uint64 { return sh.wedges.Load() })
		reg.CounterFunc(pfx+"shed_total", "requests shed by bounded-queue admission", func() uint64 { return sh.sheds.Load() })
		reg.CounterFunc(pfx+"unavailable_total", "requests refused while the breaker was open", func() uint64 { return sh.unavail.Load() })
		reg.CounterFunc(pfx+"deadline_drops_total", "queued requests dropped at their deadline", func() uint64 { return sh.deadlineDrops.Load() })
		reg.CounterFunc(pfx+"scrubs_total", "background fsck scrubs", func() uint64 { return sh.scrubs.Load() })
		reg.CounterFunc(pfx+"scrub_issues_total", "issues found by fsck during scrub/salvage", func() uint64 { return sh.scrubIssues.Load() })
		reg.CounterFunc(pfx+"breaker_opens_total", "times the circuit breaker tripped", func() uint64 { return sh.breaker.Opens() })
		reg.CounterFunc(pfx+"fsck_errors_total", "fsck errors found at open/recovery", func() uint64 { return sh.fsckErrors.Load() })
		reg.CounterFunc(pfx+"repairs_total", "pool repairs performed", func() uint64 { return sh.repairs.Load() })
		if s.cfg.Parity.Enabled {
			reg.CounterFunc(pfx+"media_scrubs_total", "media scrub passes over the shard's stored images", func() uint64 { return sh.mediaScrubs.Load() })
			reg.CounterFunc(pfx+"pages_repaired_total", "data pages reconstructed from parity", func() uint64 { return sh.pagesRepaired.Load() })
			reg.CounterFunc(pfx+"parity_rebuilds_total", "parity sidecars rebuilt", func() uint64 { return sh.parityRebuilds.Load() })
			reg.CounterFunc(pfx+"media_unrecoverable_total", "rangelets with damage beyond parity's reach", func() uint64 { return sh.mediaUnrecoverable.Load() })
			reg.GaugeFunc(pfx+"parity_pages", "parity pages maintained for the shard's pools", func() int64 { return int64(sh.parityPages.Load()) })
		}
		if sh.cfg.oplog != nil {
			sh := sh
			reg.GaugeFunc(pfx+"applied_seq", "newest applied operation-log sequence", func() int64 { return int64(sh.applied.Load()) })
			reg.GaugeFunc(pfx+"repl_ack_seq", "newest replica-acknowledged sequence", func() int64 { return int64(sh.replAck.Load()) })
			reg.GaugeFunc(pfx+"oplog_records", "retained operation-log records", func() int64 { return int64(sh.cfg.oplog.Len()) })
			reg.GaugeFunc(pfx+"oplog_bytes", "retained operation-log bytes", func() int64 { return int64(sh.cfg.oplog.Bytes()) })
			reg.GaugeFunc(pfx+"oplog_flushed_seq", "newest operation-log sequence flushed to the durable image", func() int64 { return int64(sh.cfg.oplog.FlushedSeq()) })
			reg.GaugeFunc(pfx+"oplog_unflushed_records", "appended records the durable image does not yet cover", func() int64 { return int64(sh.cfg.oplog.Unflushed()) })
			reg.CounterFunc(pfx+"degraded_acks_total", "writes acked without replica durability (replica not live)", func() uint64 { return sh.degradedAcks.Load() })
		}
	}
	if s.cfg.Parity.Enabled {
		// Aggregate media-fault series (the repair_latency_us histogram is
		// registered at construction, shared across shards).
		sum := func(f func(*shard) uint64) func() uint64 {
			return func() uint64 {
				var n uint64
				for _, sh := range s.shards {
					n += f(sh)
				}
				return n
			}
		}
		reg.GaugeFunc("parity_pages", "parity pages maintained across all shards", func() int64 {
			var n uint64
			for _, sh := range s.shards {
				n += sh.parityPages.Load()
			}
			return int64(n)
		})
		reg.CounterFunc("scrub_passes_total", "media scrub passes across all shards",
			sum(func(sh *shard) uint64 { return sh.mediaScrubs.Load() }))
		reg.CounterFunc("pages_repaired_total", "data pages reconstructed from parity across all shards",
			sum(func(sh *shard) uint64 { return sh.pagesRepaired.Load() }))
		reg.CounterFunc("unrecoverable_total", "rangelets with damage beyond parity's reach across all shards",
			sum(func(sh *shard) uint64 { return sh.mediaUnrecoverable.Load() }))
	}
	if s.cfg.Role != RoleStandalone {
		s.registerReplMetrics(reg)
	}
	if s.clusterOn() {
		s.registerClusterMetrics(reg)
	}
}

// Shards returns the configured shard count.
func (s *Server) Shards() int { return len(s.shards) }

// ShardCycles returns each shard's simulated cycle counter — the serving
// tier's notion of per-core time, used by the bench to compute makespan.
func (s *Server) ShardCycles() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.cycles.Load()
	}
	return out
}

// ListenAndServe listens on addr and serves until Close or Abort.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Start listens on addr and serves in the background, returning the bound
// address (use ":0" to pick a free port).
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.Serve(l)
	}()
	return l.Addr(), nil
}

// Serve accepts connections on l until the server closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("server: closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn reads frames, dispatches them to shards, and writes replies
// in request order. A writer goroutine consumes a FIFO of pending reply
// channels, so many requests can be in flight per connection (pipelining).
func (s *Server) handleConn(conn net.Conn) {
	s.connCount.Add(1)
	defer s.connCount.Add(-1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	type pending struct {
		req     *Request
		resp    chan Reply
		trace   uint64
		sampled bool
	}
	// fifo carries in-flight requests to the writer in arrival order.
	fifo := make(chan pending, s.cfg.QueueDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(conn)
		buf := make([]byte, 0, 512)
		for p := range fifo {
			rep := <-p.resp
			if rep.Status != StatusOK {
				s.errored.Add(1)
			}
			// A traced request's reply — and every batch sub-reply — echoes
			// the wire trace ID, whatever the status. Server-sampled traces
			// stay server-side: the client never asked, so the echo stays
			// off the wire.
			if p.req.Trace != 0 {
				rep.Trace = p.req.Trace
				for i := range rep.Sub {
					rep.Sub[i].Trace = p.req.Trace
				}
			}
			var encStart time.Time
			if p.sampled {
				encStart = time.Now()
			}
			buf = buf[:0]
			if p.req.Op == OpBatch {
				buf = AppendBatchReply(buf, p.req, &rep)
			} else {
				buf = AppendReply(buf, p.req.Op, &rep)
			}
			if err := WriteFrame(bw, buf); err != nil {
				return
			}
			// Flush only when no reply is immediately ready: coalesces
			// pipelined replies into fewer writes.
			if len(fifo) == 0 {
				if err := bw.Flush(); err != nil {
					return
				}
			}
			if p.sampled {
				s.spans.RecordTimed(p.trace, StageReplyEncode, -1, opName(p.req.Op), p.req.Key, encStart, time.Since(encStart))
			}
		}
		bw.Flush()
	}()

	// badFrame answers a protocol violation with a clean error frame (so
	// the peer learns why) before the connection is dropped.
	badFrame := func() {
		resp := make(chan Reply, 1)
		resp <- Reply{Status: StatusBadRequest}
		fifo <- pending{req: &Request{Op: OpPut}, resp: resp}
	}

	br := bufio.NewReader(conn)
	traceOn := s.spans != nil
	for {
		body, err := ReadFrame(br)
		if err != nil {
			if errors.Is(err, ErrProto) {
				// Oversized length prefix: refuse it explicitly instead of
				// silently hanging up (the body was never read, so the
				// stream cannot be resynchronized — drop after answering).
				badFrame()
			}
			break
		}
		var decStart time.Time
		if traceOn {
			decStart = time.Now()
		}
		req, err := DecodeRequest(body)
		if err != nil {
			// Malformed payload: answer and drop the connection.
			badFrame()
			break
		}
		s.requests.Add(1)
		// The effective trace: the client's envelope, or a server-sampled
		// ID for a fraction of untraced requests (spans only — the reply
		// echo stays tied to the wire envelope).
		trace, sampled := req.Trace, req.Sampled
		if trace == 0 {
			if id, ok := s.sampler.next(); ok {
				trace, sampled = id, true
			}
		}
		sampled = sampled && traceOn
		if sampled {
			s.spans.RecordTimed(trace, StageDecode, -1, opName(req.Op), req.Key, decStart, time.Since(decStart))
		}
		resp := s.dispatch(req, trace, sampled)
		fifo <- pending{req: req, resp: resp, trace: trace, sampled: sampled}
	}
	close(fifo)
	<-writerDone
}

// dispatch routes a request and returns the channel its single reply will
// arrive on. The reply channel is buffered so workers never block on a
// slow connection. A request carrying a deadline envelope gets its
// absolute deadline stamped here; admission and the worker both honor it.
// trace and sampled carry the effective trace identity into the shard
// workers so every hop stamps spans under the same ID.
func (s *Server) dispatch(req *Request, trace uint64, sampled bool) chan Reply {
	resp := make(chan Reply, 1)
	now := s.cfg.Clock.Now()
	var deadline time.Time
	if req.TTLms > 0 {
		deadline = now.Add(time.Duration(req.TTLms) * time.Millisecond)
	}
	switch req.Op {
	case OpGet, OpPut, OpDelete:
		sh := s.shards[ShardFor(req.Key, len(s.shards))]
		sh.submit(&request{op: req.Op, key: req.Key, value: req.Value, gate: req.Gate,
			trace: trace, sampled: sampled, start: now, deadline: deadline, resp: resp})
	case OpReplicate:
		resp <- s.replicateReply(req)
	case OpReplAck:
		resp <- s.replAckReply(req)
	case OpClusterMap:
		resp <- s.clusterMapReply()
	case OpMapUpdate:
		// In a goroutine: the donor-side install audits and purges released
		// slots through the shard queues before answering.
		go func() { resp <- s.mapUpdateReply(req) }()
	case OpMigSnapshot:
		go func() { resp <- s.migSnapshotReply(req) }()
	case OpMigPull:
		resp <- s.migPullReply(req)
	case OpMigFence:
		// In a goroutine: the fence barriers every shard queue.
		go func() { resp <- s.migFenceReply(req) }()
	case OpScan:
		go func() { resp <- s.scatterScan(req.Key, req.Limit, deadline, trace, sampled) }()
	case OpBatch:
		go func() { resp <- s.batch(req, deadline, trace, sampled) }()
	case OpStats:
		go func() { resp <- s.statsReply() }()
	case OpCheckpoint:
		go func() {
			if err := s.Checkpoint(); err != nil {
				resp <- Reply{Status: StatusInternal}
				return
			}
			resp <- Reply{Status: StatusOK}
		}()
	default:
		resp <- Reply{Status: StatusBadRequest}
	}
	return resp
}

// scatterScan runs the range read on every shard (keys are hash-sharded,
// so any shard may hold part of the range) and merges the ordered partial
// results down to limit pairs.
func (s *Server) scatterScan(start uint64, limit int, deadline time.Time, trace uint64, sampled bool) Reply {
	parts := make([]chan Reply, len(s.shards))
	now := s.cfg.Clock.Now()
	for i, sh := range s.shards {
		parts[i] = make(chan Reply, 1)
		sh.submit(&request{op: OpScan, key: start, limit: limit,
			trace: trace, sampled: sampled, start: now, deadline: deadline, resp: parts[i]})
	}
	var all []KV
	for _, ch := range parts {
		rep := <-ch
		if rep.Status != StatusOK {
			return Reply{Status: rep.Status}
		}
		all = append(all, rep.Pairs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	if len(all) > limit {
		all = all[:limit]
	}
	return Reply{Status: StatusOK, Pairs: all}
}

// batch scatters the sub-requests to their shards (preserving per-shard
// order), then gathers the replies back into request order — the per-shard
// request batching the protocol exists for. The frame's deadline envelope
// applies to every sub-request.
func (s *Server) batch(req *Request, deadline time.Time, trace uint64, sampled bool) Reply {
	resps := make([]chan Reply, len(req.Sub))
	now := s.cfg.Clock.Now()
	for i := range req.Sub {
		sub := &req.Sub[i]
		resps[i] = make(chan Reply, 1)
		switch sub.Op {
		case OpGet, OpPut, OpDelete:
			sh := s.shards[ShardFor(sub.Key, len(s.shards))]
			sh.submit(&request{op: sub.Op, key: sub.Key, value: sub.Value,
				trace: trace, sampled: sampled, start: now, deadline: deadline, resp: resps[i]})
		case OpScan:
			ch := resps[i]
			sub := sub
			go func() { ch <- s.scatterScan(sub.Key, sub.Limit, deadline, trace, sampled) }()
		default:
			resps[i] <- Reply{Status: StatusBadRequest}
		}
	}
	rep := Reply{Status: StatusOK, Sub: make([]Reply, len(req.Sub))}
	for i, ch := range resps {
		rep.Sub[i] = <-ch
	}
	return rep
}

// Stats is the decoded STATS document.
type Stats struct {
	Shards      int    `json:"shards"`
	Connections int64  `json:"connections"`
	Requests    uint64 `json:"requests"`
	Errors      uint64 `json:"errors"`
	UptimeMS    int64  `json:"uptime_ms"`
	// Role, Promotions, and the lag fields describe the replication tier
	// (role is "standalone" when it is off).
	Role           string         `json:"role"`
	Promotions     uint64         `json:"promotions"`
	ReplLagRecords uint64         `json:"repl_lag_records"`
	ReplLagBytes   uint64         `json:"repl_lag_bytes"`
	Follower       *FollowerStats `json:"follower,omitempty"`
	// Cluster describes the cluster tier (nil when it is off).
	Cluster  *ClusterStats `json:"cluster,omitempty"`
	PerShard []ShardStats  `json:"per_shard"`
}

// CollectStats assembles the server's statistics from published counters.
func (s *Server) CollectStats() Stats {
	lag := s.replLagRecords()
	st := Stats{
		Shards:         len(s.shards),
		Connections:    s.connCount.Load(),
		Requests:       s.requests.Load(),
		Errors:         s.errored.Load(),
		UptimeMS:       time.Since(s.started).Milliseconds(),
		Role:           roleName(s.repl.role.Load()),
		Promotions:     s.repl.promotions.Load(),
		ReplLagRecords: lag,
		ReplLagBytes:   lag * repl.RecordSize,
	}
	if f := s.repl.follower; f != nil {
		st.Follower = f.stats()
	}
	st.Cluster = s.clusterStats()
	for _, sh := range s.shards {
		st.PerShard = append(st.PerShard, sh.stats())
	}
	return st
}

func (s *Server) statsReply() Reply {
	blob, err := json.Marshal(s.CollectStats())
	if err != nil {
		return Reply{Status: StatusInternal}
	}
	return Reply{Status: StatusOK, Blob: blob}
}

// Checkpoint forces every shard to publish its root and snapshot its pool
// to the backing store, synchronously. This is the durability barrier
// clients can request (the CHECKPOINT op). Control requests bypass
// admission control: they block until the shard takes them.
func (s *Server) Checkpoint() error {
	resps := make([]chan Reply, len(s.shards))
	for i, sh := range s.shards {
		resps[i] = make(chan Reply, 1)
		sh.queue <- &request{ctl: ctlCheckpoint, resp: resps[i]}
	}
	for _, ch := range resps {
		if rep := <-ch; rep.Status != StatusOK {
			return errors.New("server: checkpoint failed")
		}
	}
	return nil
}

// InjectCrash makes one shard lose power and recover from its last
// checkpoint, synchronously, while every other shard keeps serving. It is
// the server-level fault-injection hook the crash tests drive.
func (s *Server) InjectCrash(shardID int) error {
	if shardID < 0 || shardID >= len(s.shards) {
		return fmt.Errorf("server: no shard %d", shardID)
	}
	resp := make(chan Reply, 1)
	s.shards[shardID].queue <- &request{ctl: ctlCrash, resp: resp}
	if rep := <-resp; rep.Status != StatusOK {
		return errors.New("server: injected crash failed to recover")
	}
	return nil
}

// InjectPanic kills one shard's worker goroutine mid-stream (a software
// crash, distinct from InjectCrash's power loss) and waits for the
// supervisor to repair the pool and restart the worker. Acknowledged
// writes survive: the pool's memory outlives the goroutine, so recovery
// salvages state instead of rolling back.
func (s *Server) InjectPanic(shardID int) error {
	if shardID < 0 || shardID >= len(s.shards) {
		return fmt.Errorf("server: no shard %d", shardID)
	}
	sh := s.shards[shardID]
	gen := sh.restarts.Load()
	resp := make(chan Reply, 1)
	sh.queue <- &request{ctl: ctlPanic, resp: resp}
	<-resp // the supervisor fails the doomed request with UNAVAILABLE
	deadline := time.Now().Add(5 * time.Second)
	for sh.restarts.Load() == gen {
		if time.Now().After(deadline) {
			return fmt.Errorf("server: shard %d was not restarted by its supervisor", shardID)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// InjectWedge makes one shard's worker sleep for d mid-stream and returns
// when it wakes — run it from a separate goroutine to observe the watchdog
// declaring the shard wedged while requests are queued behind the sleep.
func (s *Server) InjectWedge(shardID int, d time.Duration) error {
	if shardID < 0 || shardID >= len(s.shards) {
		return fmt.Errorf("server: no shard %d", shardID)
	}
	resp := make(chan Reply, 1)
	s.shards[shardID].queue <- &request{ctl: ctlWedge, wedge: d, resp: resp}
	if rep := <-resp; rep.Status != StatusOK && rep.Status != StatusUnavailable {
		return fmt.Errorf("server: wedge injection answered status %d", rep.Status)
	}
	return nil
}

// Scrub synchronously fscks every healthy shard once (the scrubber's
// on-demand form).
func (s *Server) Scrub() {
	for _, sh := range s.shards {
		if sh.state.Load() != stateHealthy {
			continue
		}
		resp := make(chan Reply, 1)
		sh.queue <- &request{ctl: ctlScrub, resp: resp}
		<-resp
	}
}

// stopBackground stops the watchdog and scrubber (idempotent).
func (s *Server) stopBackground() {
	s.stopOnce.Do(func() { close(s.bgStop) })
	s.bgWG.Wait()
}

// migEnter registers an in-process slot migration; false means the
// server is shutting down and no migration may start.
func (s *Server) migEnter() bool {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	if s.migClosing {
		return false
	}
	s.migWG.Add(1)
	return true
}

func (s *Server) migExit() { s.migWG.Done() }

// migStopped reports whether shutdown was requested; migrations check
// it between batches so an Abort interrupts them at a batch boundary
// instead of racing the shard queues.
func (s *Server) migStopped() bool {
	select {
	case <-s.migStop:
		return true
	default:
		return false
	}
}

// stopMigrations interrupts in-flight MigrateIn calls and waits for
// them to unwind; after it returns, no in-process migration submits to
// the shard queues (idempotent).
func (s *Server) stopMigrations() {
	s.migMu.Lock()
	s.migClosing = true
	s.migMu.Unlock()
	s.migStopOnce.Do(func() { close(s.migStop) })
	s.migWG.Wait()
}

// Close shuts the server down gracefully: stop the follower, stop
// accepting, sever client connections, stop the watchdog/scrubber/sweeper,
// drain every shard queue, and checkpoint every pool (which also flushes
// and truncates the operation logs).
func (s *Server) Close() error {
	s.stopFollower()
	s.shutdownNetwork()
	s.stopBackground()
	s.stopMigrations()
	for _, sh := range s.shards {
		close(sh.queue)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
	return nil
}

// Abort is the simulated kill -9: the network and workers stop without a
// final checkpoint, so every shard rolls back to its last checkpoint when
// a new server opens the same stores.
func (s *Server) Abort() {
	s.stopFollower()
	s.shutdownNetwork()
	s.stopBackground()
	s.stopMigrations()
	for _, sh := range s.shards {
		sh.abort.Store(true)
		close(sh.queue)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
}

// stopFollower stops the replica's pull loop before the shard queues
// close (its ctlApply submissions must not race the close).
func (s *Server) stopFollower() {
	if f := s.repl.follower; f != nil {
		f.Stop()
	}
}

func (s *Server) shutdownNetwork() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Connection writers block on held write acks; fail the holds (and
	// stop new ones) before waiting for the handlers, or Wait deadlocks.
	for _, sh := range s.shards {
		if sh.waiter != nil {
			sh.waiter.shutdown()
		}
	}
	s.wg.Wait()
}
