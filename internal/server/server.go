package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nvref/internal/fault"
	"nvref/internal/obs"
	"nvref/internal/pmem"
	"nvref/internal/rt"
)

// Config parameterizes a Server.
type Config struct {
	// Shards is the number of independent engine shards (default 4).
	Shards int
	// Mode is the reference model every shard runs under (default rt.HW).
	// rt.Volatile stores absolute pointers, which cannot survive the pool
	// relocation that recovery performs, so the serving tier promotes it to
	// rt.HW.
	Mode rt.Mode
	// PoolSize is each shard's pool size (default 32 MiB). Checkpoints
	// snapshot the whole pool, so serving pools are far smaller than the
	// benchmark default.
	PoolSize uint64
	// QueueDepth bounds each shard's request queue (default 128); a full
	// queue applies backpressure to connection readers.
	QueueDepth int
	// CheckpointEvery checkpoints a shard after that many operations
	// (default 8192; negative means only at explicit barriers and graceful
	// shutdown).
	CheckpointEvery int
	// StoreFor supplies each shard's backing store. Nil stores every shard
	// in a fresh MemStore (persistent across crashes injected into this
	// server, not across processes).
	StoreFor func(shard int) pmem.Store
	// SchedFor, when non-nil, arms a per-shard fault scheduler; the shard
	// worker evaluates it at CrashPointOp before every data operation.
	SchedFor func(shard int) fault.Scheduler
	// Reg, when non-nil, receives the server's metrics: per-shard queue
	// depth gauges, op counters and latency histograms, plus connection
	// and request counts. Reuse it with obs.Mux to serve /metrics.
	Reg *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Mode == rt.Volatile {
		c.Mode = rt.HW
	}
	if c.PoolSize == 0 {
		c.PoolSize = 32 << 20
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8192
	}
}

// latencyBounds are the microsecond buckets of the per-shard latency
// histograms (queue wait + service time, measured at the worker).
var latencyBounds = []uint64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000}

// Server is the sharded persistent KV service.
type Server struct {
	cfg    Config
	shards []*shard

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup // connection handlers + acceptor

	connCount atomic.Int64
	requests  atomic.Uint64
	errored   atomic.Uint64
	started   time.Time
}

// New builds the server and opens every shard, recovering any pool image
// its store already holds (the restart path: pmem.Open + Fsck per shard).
// The shard workers start immediately; Serve only adds the network front.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{cfg: cfg, conns: make(map[net.Conn]struct{}), started: time.Now()}
	for i := 0; i < cfg.Shards; i++ {
		sc := shardConfig{
			id:              i,
			mode:            cfg.Mode,
			poolSize:        cfg.PoolSize,
			queueDepth:      cfg.QueueDepth,
			checkpointEvery: cfg.CheckpointEvery,
		}
		if cfg.StoreFor != nil {
			sc.store = cfg.StoreFor(i)
		} else {
			sc.store = pmem.NewMemStore()
		}
		if cfg.SchedFor != nil {
			sc.sched = cfg.SchedFor(i)
		}
		if cfg.Reg != nil {
			sc.latency = cfg.Reg.Histogram(
				fmt.Sprintf("server_shard%d_latency_us", i),
				fmt.Sprintf("shard %d request latency (queue wait + service), microseconds", i),
				latencyBounds)
		}
		sh, err := newShard(sc)
		if err != nil {
			// Unwind the shards already running.
			for _, prev := range s.shards {
				close(prev.queue)
				<-prev.done
			}
			return nil, err
		}
		s.shards = append(s.shards, sh)
		go sh.run()
	}
	if cfg.Reg != nil {
		s.registerMetrics(cfg.Reg)
	}
	return s, nil
}

// registerMetrics exports the serving-plane series. Every collector reads
// only atomics (or channel lengths), so scraping never races the workers.
func (s *Server) registerMetrics(reg *obs.Registry) {
	reg.GaugeFunc("server_connections", "open client connections", func() int64 { return s.connCount.Load() })
	reg.CounterFunc("server_requests_total", "requests received across all connections", func() uint64 { return s.requests.Load() })
	reg.CounterFunc("server_errors_total", "requests answered with a non-OK status", func() uint64 { return s.errored.Load() })
	reg.GaugeFunc("server_shards", "configured shard count", func() int64 { return int64(len(s.shards)) })
	for i, sh := range s.shards {
		i, sh := i, sh
		pfx := fmt.Sprintf("server_shard%d_", i)
		reg.GaugeFunc(pfx+"queue_depth", "requests waiting in the shard queue", func() int64 { return int64(len(sh.queue)) })
		reg.CounterFunc(pfx+"ops_total", "operations executed by the shard worker", func() uint64 { return sh.ops.Load() })
		reg.CounterFunc(pfx+"gets_total", "GET operations", func() uint64 { return sh.gets.Load() })
		reg.CounterFunc(pfx+"puts_total", "PUT operations", func() uint64 { return sh.puts.Load() })
		reg.CounterFunc(pfx+"deletes_total", "DELETE operations", func() uint64 { return sh.dels.Load() })
		reg.CounterFunc(pfx+"scans_total", "SCAN operations", func() uint64 { return sh.scans.Load() })
		reg.GaugeFunc(pfx+"keys", "live keys in the shard index", func() int64 { return int64(sh.keys.Load()) })
		reg.CounterFunc(pfx+"cycles_total", "simulated cycles consumed by the shard engine", func() uint64 { return sh.cycles.Load() })
		reg.CounterFunc(pfx+"checkpoints_total", "pool checkpoints written", func() uint64 { return sh.checkpoints.Load() })
		reg.CounterFunc(pfx+"crashes_total", "injected crashes", func() uint64 { return sh.crashes.Load() })
		reg.CounterFunc(pfx+"recoveries_total", "successful crash recoveries", func() uint64 { return sh.recoveries.Load() })
		reg.CounterFunc(pfx+"fsck_errors_total", "fsck errors found at open/recovery", func() uint64 { return sh.fsckErrors.Load() })
	}
}

// Shards returns the configured shard count.
func (s *Server) Shards() int { return len(s.shards) }

// ShardCycles returns each shard's simulated cycle counter — the serving
// tier's notion of per-core time, used by the bench to compute makespan.
func (s *Server) ShardCycles() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.cycles.Load()
	}
	return out
}

// ListenAndServe listens on addr and serves until Close or Abort.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Start listens on addr and serves in the background, returning the bound
// address (use ":0" to pick a free port).
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.Serve(l)
	}()
	return l.Addr(), nil
}

// Serve accepts connections on l until the server closes.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return errors.New("server: closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn reads frames, dispatches them to shards, and writes replies
// in request order. A writer goroutine consumes a FIFO of pending reply
// channels, so many requests can be in flight per connection (pipelining).
func (s *Server) handleConn(conn net.Conn) {
	s.connCount.Add(1)
	defer s.connCount.Add(-1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	type pending struct {
		req  *Request
		resp chan Reply
	}
	// fifo carries in-flight requests to the writer in arrival order.
	fifo := make(chan pending, s.cfg.QueueDepth)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(conn)
		buf := make([]byte, 0, 512)
		for p := range fifo {
			rep := <-p.resp
			if rep.Status != StatusOK {
				s.errored.Add(1)
			}
			buf = buf[:0]
			if p.req.Op == OpBatch {
				buf = AppendBatchReply(buf, p.req, &rep)
			} else {
				buf = AppendReply(buf, p.req.Op, &rep)
			}
			if err := WriteFrame(bw, buf); err != nil {
				return
			}
			// Flush only when no reply is immediately ready: coalesces
			// pipelined replies into fewer writes.
			if len(fifo) == 0 {
				if err := bw.Flush(); err != nil {
					return
				}
			}
		}
		bw.Flush()
	}()

	br := bufio.NewReader(conn)
	for {
		body, err := ReadFrame(br)
		if err != nil {
			break
		}
		req, err := DecodeRequest(body)
		if err != nil {
			// Protocol error: answer and drop the connection.
			resp := make(chan Reply, 1)
			resp <- Reply{Status: StatusBadRequest}
			fifo <- pending{req: &Request{Op: OpPut}, resp: resp}
			break
		}
		s.requests.Add(1)
		resp := s.dispatch(req)
		fifo <- pending{req: req, resp: resp}
	}
	close(fifo)
	<-writerDone
}

// dispatch routes a request and returns the channel its single reply will
// arrive on. The reply channel is buffered so workers never block on a
// slow connection.
func (s *Server) dispatch(req *Request) chan Reply {
	resp := make(chan Reply, 1)
	switch req.Op {
	case OpGet, OpPut, OpDelete:
		sh := s.shards[ShardFor(req.Key, len(s.shards))]
		sh.queue <- &request{op: req.Op, key: req.Key, value: req.Value, start: time.Now(), resp: resp}
	case OpScan:
		go func() { resp <- s.scatterScan(req.Key, req.Limit) }()
	case OpBatch:
		go func() { resp <- s.batch(req) }()
	case OpStats:
		go func() { resp <- s.statsReply() }()
	case OpCheckpoint:
		go func() {
			if err := s.Checkpoint(); err != nil {
				resp <- Reply{Status: StatusInternal}
				return
			}
			resp <- Reply{Status: StatusOK}
		}()
	default:
		resp <- Reply{Status: StatusBadRequest}
	}
	return resp
}

// scatterScan runs the range read on every shard (keys are hash-sharded,
// so any shard may hold part of the range) and merges the ordered partial
// results down to limit pairs.
func (s *Server) scatterScan(start uint64, limit int) Reply {
	parts := make([]chan Reply, len(s.shards))
	now := time.Now()
	for i, sh := range s.shards {
		parts[i] = make(chan Reply, 1)
		sh.queue <- &request{op: OpScan, key: start, limit: limit, start: now, resp: parts[i]}
	}
	var all []KV
	for _, ch := range parts {
		rep := <-ch
		if rep.Status != StatusOK {
			return Reply{Status: rep.Status}
		}
		all = append(all, rep.Pairs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	if len(all) > limit {
		all = all[:limit]
	}
	return Reply{Status: StatusOK, Pairs: all}
}

// batch scatters the sub-requests to their shards (preserving per-shard
// order), then gathers the replies back into request order — the per-shard
// request batching the protocol exists for.
func (s *Server) batch(req *Request) Reply {
	resps := make([]chan Reply, len(req.Sub))
	now := time.Now()
	for i := range req.Sub {
		sub := &req.Sub[i]
		resps[i] = make(chan Reply, 1)
		switch sub.Op {
		case OpGet, OpPut, OpDelete:
			sh := s.shards[ShardFor(sub.Key, len(s.shards))]
			sh.queue <- &request{op: sub.Op, key: sub.Key, value: sub.Value, start: now, resp: resps[i]}
		case OpScan:
			ch := resps[i]
			sub := sub
			go func() { ch <- s.scatterScan(sub.Key, sub.Limit) }()
		default:
			resps[i] <- Reply{Status: StatusBadRequest}
		}
	}
	rep := Reply{Status: StatusOK, Sub: make([]Reply, len(req.Sub))}
	for i, ch := range resps {
		rep.Sub[i] = <-ch
	}
	return rep
}

// Stats is the decoded STATS document.
type Stats struct {
	Shards      int          `json:"shards"`
	Connections int64        `json:"connections"`
	Requests    uint64       `json:"requests"`
	Errors      uint64       `json:"errors"`
	UptimeMS    int64        `json:"uptime_ms"`
	PerShard    []ShardStats `json:"per_shard"`
}

// CollectStats assembles the server's statistics from published counters.
func (s *Server) CollectStats() Stats {
	st := Stats{
		Shards:      len(s.shards),
		Connections: s.connCount.Load(),
		Requests:    s.requests.Load(),
		Errors:      s.errored.Load(),
		UptimeMS:    time.Since(s.started).Milliseconds(),
	}
	for _, sh := range s.shards {
		st.PerShard = append(st.PerShard, sh.stats())
	}
	return st
}

func (s *Server) statsReply() Reply {
	blob, err := json.Marshal(s.CollectStats())
	if err != nil {
		return Reply{Status: StatusInternal}
	}
	return Reply{Status: StatusOK, Blob: blob}
}

// Checkpoint forces every shard to publish its root and snapshot its pool
// to the backing store, synchronously. This is the durability barrier
// clients can request (the CHECKPOINT op).
func (s *Server) Checkpoint() error {
	resps := make([]chan Reply, len(s.shards))
	for i, sh := range s.shards {
		resps[i] = make(chan Reply, 1)
		sh.queue <- &request{ctl: ctlCheckpoint, resp: resps[i]}
	}
	for _, ch := range resps {
		if rep := <-ch; rep.Status != StatusOK {
			return errors.New("server: checkpoint failed")
		}
	}
	return nil
}

// InjectCrash makes one shard lose power and recover from its last
// checkpoint, synchronously, while every other shard keeps serving. It is
// the server-level fault-injection hook the crash tests drive.
func (s *Server) InjectCrash(shardID int) error {
	if shardID < 0 || shardID >= len(s.shards) {
		return fmt.Errorf("server: no shard %d", shardID)
	}
	resp := make(chan Reply, 1)
	s.shards[shardID].queue <- &request{ctl: ctlCrash, resp: resp}
	if rep := <-resp; rep.Status != StatusOK {
		return errors.New("server: injected crash failed to recover")
	}
	return nil
}

// Close shuts the server down gracefully: stop accepting, sever client
// connections, drain every shard queue, and checkpoint every pool.
func (s *Server) Close() error {
	s.shutdownNetwork()
	for _, sh := range s.shards {
		close(sh.queue)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
	return nil
}

// Abort is the simulated kill -9: the network and workers stop without a
// final checkpoint, so every shard rolls back to its last checkpoint when
// a new server opens the same stores.
func (s *Server) Abort() {
	s.shutdownNetwork()
	for _, sh := range s.shards {
		sh.abort.Store(true)
		close(sh.queue)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
}

func (s *Server) shutdownNetwork() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
