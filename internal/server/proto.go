// Package server implements nvserved: a network-facing persistent
// key-value service over the simulated runtime. The keyspace is sharded
// across N independent engine shards; each shard owns its own rt.Context,
// pmem pool, and kvstore.Store, and a single worker goroutine consumes a
// bounded request queue — so the single-threaded simulation core stays
// correct with no locking on the hot path, and shards execute truly
// independently (the simulated machine is one core per shard).
//
// The wire protocol is length-prefixed binary frames over TCP:
//
//	frame    := u32 bodyLen | body            (little-endian, bodyLen ≤ MaxFrame)
//	request  := u8 op | payload
//	reply    := u8 status | payload
//
// Operations and payloads:
//
//	GET        key u64                     → found u8, value u64
//	PUT        key u64, value u64          → shard u32, seq u64
//	DELETE     key u64                     → found u8, shard u32, seq u64
//	SCAN       start u64, limit u32        → count u32, count×(key u64, value u64)
//	BATCH      count u32, count×sub-request → count u32, count×sub-reply
//	STATS      (empty)                     → len u32, JSON bytes
//	CHECKPOINT (empty)                     → (empty)
//	REPLICATE  shard u32, after u64, max u32 → last u64, count u32, count×record
//	REPLACK    shard u32, seq u64          → (empty)
//
// PUT and DELETE replies name the shard that served the write and the
// operation-log sequence number it assigned (both zero on a shard that
// keeps no log — a standalone server). REPLICATE and REPLACK are the
// replication tier's log-shipping pull and applied-durability ack
// (repl.go); a record is repl.RecordSize bytes (internal/repl).
//
// A request may be prefixed with a deadline envelope — `u8 OpDeadline |
// u32 ttl_ms` — giving the server a time budget: requests still queued
// when the budget expires are answered with StatusDeadline instead of
// executing. Any request may additionally carry a trace envelope — `u8
// OpTrace | u64 trace_id | u8 flags` — naming the request in the tracing
// plane; the reply to a traced request is prefixed with a trace echo —
// `u8 OpTrace | u64 trace_id` — before its status byte, on every
// sub-reply of a BATCH too, so pipelined and scattered work stays
// attributable. A GET may carry a seq-gate envelope — `u8 OpSeqGate |
// u64 seq` — the read-your-writes token checked against the shard's
// applied sequence. Envelopes are only legal at the top level of a
// frame, in the order deadline, trace, gate.
//
// Besides OK, BadRequest, and Internal, replies carry the overload and
// availability statuses of the self-healing tier: StatusShed (the shard's
// bounded queue refused admission), StatusUnavailable (the shard's
// circuit breaker is open — it is recovering or wedged), and
// StatusDeadline (the request's budget expired before execution). All
// three are explicit fail-fast frames: the server answers immediately
// rather than blocking the connection, and Retryable reports which
// errors a client may safely retry for these idempotent operations.
//
// Responses are returned in request order on each connection, so clients
// may pipeline: write many frames, then read as many replies.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"nvref/internal/cluster"
	"nvref/internal/repl"
)

// Op codes of the wire protocol.
const (
	OpGet        byte = 1
	OpPut        byte = 2
	OpDelete     byte = 3
	OpScan       byte = 4
	OpBatch      byte = 5
	OpStats      byte = 6
	OpCheckpoint byte = 7
	// OpDeadline is the envelope prefix carrying a request time budget; it
	// wraps exactly one top-level request and never appears inside a batch.
	OpDeadline byte = 8
	// OpReplicate is the replication pull: a replica asks one shard's
	// primary for log records after a sequence number. Payload: shard u32,
	// after-seq u64, max u32. The reply carries the shard's newest sequence
	// number and the raw records (replication.go).
	OpReplicate byte = 9
	// OpReplAck is the replica's durability acknowledgment: every record of
	// the shard up to seq is applied and logged on the replica. Payload:
	// shard u32, seq u64. The primary releases held client write acks up to
	// seq and may truncate its log through it.
	OpReplAck byte = 10
	// OpSeqGate is the read-your-writes envelope: a GET stamped with the
	// writer's last acknowledged sequence number for the key's shard. A
	// shard whose applied sequence lags the token answers StatusLagging
	// instead of serving a stale read. Legal only at the top level, only on
	// GET, and only after any OpDeadline envelope.
	OpSeqGate byte = 11
	// OpTrace is the tracing envelope: a nonzero 8-byte trace ID plus a
	// flags byte (bit 0: sampled — the server records per-stage spans for
	// the request). Legal only at the top level, after any OpDeadline and
	// before any OpSeqGate envelope. The same byte prefixes a traced
	// request's reply (trace echo: `u8 OpTrace | u64 trace_id`, no flags),
	// including every sub-reply of a BATCH and every error-status reply.
	OpTrace byte = 12
	// OpClusterMap fetches the node's current cluster map. No payload; the
	// reply is `u32 len | map image` (internal/cluster encoding). A node
	// that has no map answers StatusBadRequest.
	OpClusterMap byte = 13
	// OpMapUpdate installs a cluster map of a strictly higher epoch.
	// Payload: `u32 len | map image`. An epoch at or below the node's
	// current map is StatusWrongEpoch; a malformed image is
	// StatusBadRequest. The reply has no payload.
	OpMapUpdate byte = 14
	// OpMigSnapshot is the migration/re-seed bulk read: scan one shard's
	// live pairs from a key cursor, optionally filtered to one cluster
	// slot. Payload: `shard u32 | slot u32 | cursor u64 | max u32` (slot
	// SlotAll disables the filter). Reply: `done u8 | next u64 | count u32
	// | count×(key u64, value u64)` — resume from next until done.
	OpMigSnapshot byte = 15
	// OpMigPull is the migration catch-up read: durable log records of one
	// shard after a sequence number, filtered to one cluster slot. Payload:
	// `shard u32 | slot u32 | after u64 | max u32`. Reply: `contiguous u8 |
	// through u64 | last u64 | count u32 | count×record` — through is the
	// highest sequence examined (the next pull's cursor; records of other
	// slots advance it without being shipped), last the shard's newest
	// logged sequence, and contiguous=0 means the log no longer retains
	// after+1 (the acceptor must restart from a snapshot).
	OpMigPull byte = 16
	// OpMigFence fences one cluster slot on its current owner: the donor
	// refuses every later data operation for the slot with StatusMoved
	// toward the acceptor address in the payload, and answers with its
	// per-shard log sequences at the fence point — the watermarks the
	// acceptor's final catch-up must reach before committing the handover.
	// Payload: `slot u32 | u16 len | acceptor addr`. Reply: `count u32 |
	// count×u64`.
	OpMigFence byte = 17
)

// SlotAll in OpMigSnapshot/OpMigPull's slot field disables slot
// filtering — the whole-shard transfer a replica re-seed uses.
const SlotAll = ^uint32(0)

// traceFlagSampled marks a traced request for span recording; all other
// flag bits are reserved and must be zero.
const traceFlagSampled byte = 1 << 0

// Reply status codes.
const (
	StatusOK         byte = 0
	StatusBadRequest byte = 1
	StatusInternal   byte = 2
	// StatusShed: the shard's bounded queue refused admission within the
	// admission wait — the server is overloaded. Retryable after backoff.
	StatusShed byte = 3
	// StatusUnavailable: the shard's circuit breaker is open (the shard is
	// recovering from a crash or wedged). Retryable after backoff.
	StatusUnavailable byte = 4
	// StatusDeadline: the request's deadline envelope expired before the
	// shard executed it; the operation was not applied.
	StatusDeadline byte = 5
	// StatusLagging: the request's seq-gate token is ahead of the shard's
	// applied sequence (a replica that has not caught up). Retryable: the
	// replica is pulling, or the client should redirect to the primary.
	StatusLagging byte = 6
	// StatusReadOnly: a write was sent to a replica. Retryable so a
	// failover client rotates to the next endpoint in its list.
	StatusReadOnly byte = 7
	// StatusMoved: the key's cluster slot is owned (or being taken over)
	// by another node. Uniquely among non-OK statuses it carries a payload
	// — `epoch u64 | u16 len | owner addr` — the redirect hint a
	// cluster-routing client refreshes its map from. Deliberately not
	// Retryable: blind retry on the same node cannot succeed.
	StatusMoved byte = 8
	// StatusWrongEpoch: an OpMapUpdate carried an epoch at or below the
	// node's current map. The sender's map is stale; refresh and redrive.
	StatusWrongEpoch byte = 9
)

// MaxFrame bounds a single frame body; anything larger is a protocol
// error and the connection is dropped.
const MaxFrame = 1 << 20

// MaxScanLimit bounds how many pairs one SCAN may return (keeps the reply
// under MaxFrame).
const MaxScanLimit = 4096

// MaxBatch bounds how many sub-requests one BATCH may carry.
const MaxBatch = 1024

// MaxReplBatch bounds how many log records one OpReplicate pull may
// request or return (128 KiB of records, comfortably inside MaxFrame).
const MaxReplBatch = 4096

// MaxTTLms bounds the deadline envelope's budget (one hour): anything
// larger is a malformed frame, not a deadline.
const MaxTTLms = 3600 * 1000

// MaxMapBytes bounds an encoded cluster map image on the wire (a
// maximal map under the cluster package's own bounds stays well inside).
const MaxMapBytes = 512 << 10

// MaxFenceShards bounds an OpMigFence reply's per-shard sequence count
// (a donor cannot have more watermarks than shards, and no deployment
// runs anywhere near this many).
const MaxFenceShards = 4096

// ErrProto reports a malformed frame or payload.
var ErrProto = errors.New("server: protocol error")

// Typed errors for the fail-fast statuses, so clients can pick a retry
// policy with errors.Is.
var (
	ErrShed        = errors.New("server: overloaded, request shed")
	ErrUnavailable = errors.New("server: shard unavailable")
	ErrDeadline    = errors.New("server: deadline exceeded")
	ErrLagging     = errors.New("server: replica lags the read's seq token")
	ErrReadOnly    = errors.New("server: replica is read-only")
	// ErrMoved matches any *MovedError with errors.Is; use errors.As to
	// reach the redirect hint.
	ErrMoved = errors.New("server: key's cluster slot moved")
	// ErrWrongEpoch reports a map install refused for carrying a stale
	// epoch.
	ErrWrongEpoch = errors.New("server: stale cluster map epoch")
)

// MovedError is the decoded StatusMoved redirect: the slot's owning (or
// fencing) node and the epoch of the map the refusing node held. It is
// deliberately not Retryable — the cluster-routing client must refresh
// its map and re-route rather than hammer the wrong node.
type MovedError struct {
	Epoch uint64
	Addr  string
}

func (e *MovedError) Error() string {
	return fmt.Sprintf("server: key's cluster slot moved to %q (epoch %d)", e.Addr, e.Epoch)
}

// Is makes errors.Is(err, ErrMoved) match.
func (e *MovedError) Is(target error) bool { return target == ErrMoved }

// Retryable reports whether err is worth retrying on the same or a fresh
// connection: the explicit fail-fast statuses (shed, unavailable,
// deadline — every protocol op is idempotent, so a deadline-expired write
// may be reissued) and transport-level failures. Protocol errors and
// internal errors are not retryable.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrShed) || errors.Is(err, ErrUnavailable) || errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrLagging) || errors.Is(err, ErrReadOnly) {
		return true
	}
	if errors.Is(err, ErrProto) || errors.Is(err, ErrMoved) || errors.Is(err, ErrWrongEpoch) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// KV is one key/value pair in a SCAN reply.
type KV struct {
	Key   uint64 `json:"key"`
	Value uint64 `json:"value"`
}

// Request is one decoded operation.
type Request struct {
	Op    byte
	Key   uint64
	Value uint64
	Limit int       // SCAN pair limit; REPLICATE max records
	Sub   []Request // BATCH only; sub-requests may not themselves batch
	// TTLms, when nonzero, is the deadline envelope's time budget in
	// milliseconds. Only legal on a top-level request.
	TTLms uint32
	// Shard addresses the replication ops (REPLICATE, REPLACK).
	Shard uint32
	// Seq is the REPLICATE after-sequence or the REPLACK applied sequence.
	Seq uint64
	// Gate, when nonzero, is the seq-gate envelope's read-your-writes
	// token. Only legal on a top-level GET.
	Gate uint64
	// Trace, when nonzero, is the trace envelope's request ID; Sampled
	// asks the server to record per-stage spans for it. Only legal on a
	// top-level request (sub-requests inherit the batch's trace).
	Trace   uint64
	Sampled bool
	// Slot addresses the cluster migration ops (OpMigSnapshot, OpMigPull,
	// OpMigFence); SlotAll disables the slot filter on the first two.
	Slot uint32
	// Blob is an OpMapUpdate's encoded cluster map image.
	Blob []byte
	// Addr is an OpMigFence's acceptor address (where the donor redirects
	// fenced-slot traffic).
	Addr string
}

// Reply is one decoded response.
type Reply struct {
	Status byte
	Found  bool
	Value  uint64
	Pairs  []KV
	Sub    []Reply
	Blob   []byte // STATS JSON; OpClusterMap's encoded map image
	// Shard and Seq report which shard served a write and the sequence
	// number it assigned (zero when the shard keeps no operation log). On a
	// REPLICATE reply, Seq is the shard's newest logged sequence.
	Shard uint32
	Seq   uint64
	// Recs are a REPLICATE reply's shipped log records.
	Recs []repl.Record
	// Trace, when nonzero, is the trace echo: the request's trace ID,
	// carried back on the reply (and on every sub-reply of a BATCH) so a
	// pipelining client can attribute each frame.
	Trace uint64
	// Epoch and Addr are a StatusMoved reply's redirect hint: the refusing
	// node's map epoch and the slot's owner (or in-flight acceptor).
	Epoch uint64
	Addr  string
	// Seqs are an OpMigFence reply's per-shard fence-point sequences.
	Seqs []uint64
}

// Err converts a non-OK status into an error (nil when Status is OK).
func (r *Reply) Err() error {
	switch r.Status {
	case StatusOK:
		return nil
	case StatusBadRequest:
		return fmt.Errorf("%w: bad request", ErrProto)
	case StatusShed:
		return ErrShed
	case StatusUnavailable:
		return ErrUnavailable
	case StatusDeadline:
		return ErrDeadline
	case StatusLagging:
		return ErrLagging
	case StatusReadOnly:
		return ErrReadOnly
	case StatusMoved:
		return &MovedError{Epoch: r.Epoch, Addr: r.Addr}
	case StatusWrongEpoch:
		return ErrWrongEpoch
	default:
		return fmt.Errorf("server: internal error (status %d)", r.Status)
	}
}

// ---- Frame I/O -----------------------------------------------------------

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: frame body %d bytes exceeds %d", ErrProto, len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame body.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: frame body %d bytes exceeds %d", ErrProto, n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// ---- Request encoding ----------------------------------------------------

// AppendRequest appends the wire form of req to buf, emitting the
// deadline envelope first when the request carries a time budget, then the
// trace envelope when it carries a trace ID, then the seq-gate envelope
// when it carries a read-your-writes token.
func AppendRequest(buf []byte, req *Request) ([]byte, error) {
	if req.TTLms > 0 {
		if req.TTLms > MaxTTLms {
			return nil, fmt.Errorf("%w: ttl %dms exceeds %dms", ErrProto, req.TTLms, MaxTTLms)
		}
		buf = append(buf, OpDeadline)
		buf = binary.LittleEndian.AppendUint32(buf, req.TTLms)
	}
	if req.Trace != 0 {
		buf = append(buf, OpTrace)
		buf = binary.LittleEndian.AppendUint64(buf, req.Trace)
		var flags byte
		if req.Sampled {
			flags |= traceFlagSampled
		}
		buf = append(buf, flags)
	} else if req.Sampled {
		return nil, fmt.Errorf("%w: sampled flag without a trace id", ErrProto)
	}
	if req.Gate > 0 {
		if req.Op != OpGet {
			return nil, fmt.Errorf("%w: seq gate on op %d (GET only)", ErrProto, req.Op)
		}
		buf = append(buf, OpSeqGate)
		buf = binary.LittleEndian.AppendUint64(buf, req.Gate)
	}
	return appendRequestBody(buf, req)
}

// appendRequestBody appends the envelope-free wire form of req.
func appendRequestBody(buf []byte, req *Request) ([]byte, error) {
	buf = append(buf, req.Op)
	switch req.Op {
	case OpGet, OpDelete:
		buf = binary.LittleEndian.AppendUint64(buf, req.Key)
	case OpPut:
		buf = binary.LittleEndian.AppendUint64(buf, req.Key)
		buf = binary.LittleEndian.AppendUint64(buf, req.Value)
	case OpScan:
		buf = binary.LittleEndian.AppendUint64(buf, req.Key)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Limit))
	case OpBatch:
		if len(req.Sub) > MaxBatch {
			return nil, fmt.Errorf("%w: batch of %d exceeds %d", ErrProto, len(req.Sub), MaxBatch)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Sub)))
		for i := range req.Sub {
			sub := &req.Sub[i]
			if sub.Op == OpBatch || sub.Op == OpStats || sub.Op == OpCheckpoint ||
				sub.Op == OpReplicate || sub.Op == OpReplAck || clusterOp(sub.Op) {
				return nil, fmt.Errorf("%w: op %d may not appear inside a batch", ErrProto, sub.Op)
			}
			if sub.TTLms != 0 {
				return nil, fmt.Errorf("%w: deadline envelope inside a batch", ErrProto)
			}
			if sub.Gate != 0 {
				return nil, fmt.Errorf("%w: seq-gate envelope inside a batch", ErrProto)
			}
			if sub.Trace != 0 || sub.Sampled {
				return nil, fmt.Errorf("%w: trace envelope inside a batch", ErrProto)
			}
			var err error
			if buf, err = appendRequestBody(buf, sub); err != nil {
				return nil, err
			}
		}
	case OpReplicate:
		if req.Limit < 1 || req.Limit > MaxReplBatch {
			return nil, fmt.Errorf("%w: replicate max %d outside [1, %d]", ErrProto, req.Limit, MaxReplBatch)
		}
		buf = binary.LittleEndian.AppendUint32(buf, req.Shard)
		buf = binary.LittleEndian.AppendUint64(buf, req.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Limit))
	case OpReplAck:
		buf = binary.LittleEndian.AppendUint32(buf, req.Shard)
		buf = binary.LittleEndian.AppendUint64(buf, req.Seq)
	case OpClusterMap:
		// No payload.
	case OpMapUpdate:
		if len(req.Blob) == 0 || len(req.Blob) > MaxMapBytes {
			return nil, fmt.Errorf("%w: map image of %d bytes outside (0, %d]", ErrProto, len(req.Blob), MaxMapBytes)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Blob)))
		buf = append(buf, req.Blob...)
	case OpMigSnapshot:
		if req.Limit < 1 || req.Limit > MaxScanLimit {
			return nil, fmt.Errorf("%w: snapshot max %d outside [1, %d]", ErrProto, req.Limit, MaxScanLimit)
		}
		buf = binary.LittleEndian.AppendUint32(buf, req.Shard)
		buf = binary.LittleEndian.AppendUint32(buf, req.Slot)
		buf = binary.LittleEndian.AppendUint64(buf, req.Key)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Limit))
	case OpMigPull:
		if req.Limit < 1 || req.Limit > MaxReplBatch {
			return nil, fmt.Errorf("%w: migration pull max %d outside [1, %d]", ErrProto, req.Limit, MaxReplBatch)
		}
		buf = binary.LittleEndian.AppendUint32(buf, req.Shard)
		buf = binary.LittleEndian.AppendUint32(buf, req.Slot)
		buf = binary.LittleEndian.AppendUint64(buf, req.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Limit))
	case OpMigFence:
		if len(req.Addr) == 0 || len(req.Addr) > cluster.MaxNodeAddr {
			return nil, fmt.Errorf("%w: fence address of %d bytes outside (0, %d]", ErrProto, len(req.Addr), cluster.MaxNodeAddr)
		}
		buf = binary.LittleEndian.AppendUint32(buf, req.Slot)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(req.Addr)))
		buf = append(buf, req.Addr...)
	case OpStats, OpCheckpoint:
		// No payload.
	default:
		return nil, fmt.Errorf("%w: unknown op %d", ErrProto, req.Op)
	}
	return buf, nil
}

// clusterOp reports whether op belongs to the cluster control plane —
// none may appear inside a batch.
func clusterOp(op byte) bool {
	return op == OpClusterMap || op == OpMapUpdate ||
		op == OpMigSnapshot || op == OpMigPull || op == OpMigFence
}

// cursor is a bounds-checked little-endian reader over a frame body.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) u8() (byte, error) {
	if c.off+1 > len(c.b) {
		return 0, fmt.Errorf("%w: truncated payload", ErrProto)
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *cursor) u16() (uint16, error) {
	if c.off+2 > len(c.b) {
		return 0, fmt.Errorf("%w: truncated payload", ErrProto)
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if c.off+4 > len(c.b) {
		return 0, fmt.Errorf("%w: truncated payload", ErrProto)
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.off+8 > len(c.b) {
		return 0, fmt.Errorf("%w: truncated payload", ErrProto)
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.b) {
		return nil, fmt.Errorf("%w: truncated payload", ErrProto)
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}

// remaining returns how many undecoded bytes the cursor still holds; count
// prefixes are validated against it before any allocation, so a tiny frame
// claiming a huge count never earns a huge make().
func (c *cursor) remaining() int { return len(c.b) - c.off }

// DecodeRequest parses one request frame body, unwrapping the optional
// top-level envelopes (deadline first, then trace, then seq-gate) into
// Request.TTLms, Request.Trace/Sampled, and Request.Gate.
func DecodeRequest(body []byte) (*Request, error) {
	c := &cursor{b: body}
	var ttl uint32
	if len(body) > 0 && body[0] == OpDeadline {
		c.off = 1
		var err error
		if ttl, err = c.u32(); err != nil {
			return nil, err
		}
		if ttl == 0 || ttl > MaxTTLms {
			return nil, fmt.Errorf("%w: ttl %dms outside (0, %d]", ErrProto, ttl, MaxTTLms)
		}
	}
	var trace uint64
	var sampled bool
	if c.off < len(body) && body[c.off] == OpTrace {
		c.off++
		var err error
		if trace, err = c.u64(); err != nil {
			return nil, err
		}
		if trace == 0 {
			return nil, fmt.Errorf("%w: zero trace id", ErrProto)
		}
		flags, err := c.u8()
		if err != nil {
			return nil, err
		}
		if flags&^traceFlagSampled != 0 {
			return nil, fmt.Errorf("%w: unknown trace flags %#x", ErrProto, flags)
		}
		sampled = flags&traceFlagSampled != 0
	}
	var gate uint64
	if c.off < len(body) && body[c.off] == OpSeqGate {
		c.off++
		var err error
		if gate, err = c.u64(); err != nil {
			return nil, err
		}
		if gate == 0 {
			return nil, fmt.Errorf("%w: zero seq-gate token", ErrProto)
		}
	}
	req, err := decodeRequest(c, true)
	if err != nil {
		return nil, err
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrProto, len(body)-c.off)
	}
	if gate != 0 && req.Op != OpGet {
		return nil, fmt.Errorf("%w: seq gate on op %d (GET only)", ErrProto, req.Op)
	}
	req.TTLms = ttl
	req.Gate = gate
	req.Trace = trace
	req.Sampled = sampled
	return req, nil
}

func decodeRequest(c *cursor, allowBatch bool) (*Request, error) {
	op, err := c.u8()
	if err != nil {
		return nil, err
	}
	req := &Request{Op: op}
	switch op {
	case OpGet, OpDelete:
		if req.Key, err = c.u64(); err != nil {
			return nil, err
		}
	case OpPut:
		if req.Key, err = c.u64(); err != nil {
			return nil, err
		}
		if req.Value, err = c.u64(); err != nil {
			return nil, err
		}
	case OpScan:
		if req.Key, err = c.u64(); err != nil {
			return nil, err
		}
		limit, err := c.u32()
		if err != nil {
			return nil, err
		}
		if limit > MaxScanLimit {
			return nil, fmt.Errorf("%w: scan limit %d exceeds %d", ErrProto, limit, MaxScanLimit)
		}
		req.Limit = int(limit)
	case OpBatch:
		if !allowBatch {
			return nil, fmt.Errorf("%w: nested batch", ErrProto)
		}
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if n > MaxBatch {
			return nil, fmt.Errorf("%w: batch of %d exceeds %d", ErrProto, n, MaxBatch)
		}
		// Every sub-request is at least one op byte, so a count the
		// remaining bytes cannot satisfy is rejected before allocating.
		if int(n) > c.remaining() {
			return nil, fmt.Errorf("%w: batch count %d exceeds %d remaining bytes", ErrProto, n, c.remaining())
		}
		req.Sub = make([]Request, n)
		for i := range req.Sub {
			sub, err := decodeRequest(c, false)
			if err != nil {
				return nil, err
			}
			if sub.Op == OpStats || sub.Op == OpCheckpoint ||
				sub.Op == OpReplicate || sub.Op == OpReplAck || clusterOp(sub.Op) {
				return nil, fmt.Errorf("%w: op %d may not appear inside a batch", ErrProto, sub.Op)
			}
			req.Sub[i] = *sub
		}
	case OpReplicate:
		if req.Shard, err = c.u32(); err != nil {
			return nil, err
		}
		if req.Seq, err = c.u64(); err != nil {
			return nil, err
		}
		max, err := c.u32()
		if err != nil {
			return nil, err
		}
		if max < 1 || max > MaxReplBatch {
			return nil, fmt.Errorf("%w: replicate max %d outside [1, %d]", ErrProto, max, MaxReplBatch)
		}
		req.Limit = int(max)
	case OpReplAck:
		if req.Shard, err = c.u32(); err != nil {
			return nil, err
		}
		if req.Seq, err = c.u64(); err != nil {
			return nil, err
		}
	case OpClusterMap:
		// No payload.
	case OpMapUpdate:
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if n == 0 || n > MaxMapBytes {
			return nil, fmt.Errorf("%w: map image of %d bytes outside (0, %d]", ErrProto, n, MaxMapBytes)
		}
		blob, err := c.bytes(int(n))
		if err != nil {
			return nil, err
		}
		req.Blob = append([]byte(nil), blob...)
	case OpMigSnapshot, OpMigPull:
		if req.Shard, err = c.u32(); err != nil {
			return nil, err
		}
		if req.Slot, err = c.u32(); err != nil {
			return nil, err
		}
		cur, err := c.u64()
		if err != nil {
			return nil, err
		}
		max, err := c.u32()
		if err != nil {
			return nil, err
		}
		bound := uint32(MaxScanLimit)
		if op == OpMigPull {
			bound = MaxReplBatch
			req.Seq = cur
		} else {
			req.Key = cur
		}
		if max < 1 || max > bound {
			return nil, fmt.Errorf("%w: migration max %d outside [1, %d]", ErrProto, max, bound)
		}
		req.Limit = int(max)
	case OpMigFence:
		if req.Slot, err = c.u32(); err != nil {
			return nil, err
		}
		n, err := c.u16()
		if err != nil {
			return nil, err
		}
		if n == 0 || int(n) > cluster.MaxNodeAddr {
			return nil, fmt.Errorf("%w: fence address of %d bytes outside (0, %d]", ErrProto, n, cluster.MaxNodeAddr)
		}
		addr, err := c.bytes(int(n))
		if err != nil {
			return nil, err
		}
		req.Addr = string(addr)
	case OpStats, OpCheckpoint:
		// No payload.
	default:
		return nil, fmt.Errorf("%w: unknown op %d", ErrProto, op)
	}
	return req, nil
}

// ---- Reply encoding ------------------------------------------------------

// AppendReply appends the wire form of rep (for operation op) to buf,
// prefixing the trace echo when rep carries a trace ID.
func AppendReply(buf []byte, op byte, rep *Reply) []byte {
	if rep.Trace != 0 {
		buf = append(buf, OpTrace)
		buf = binary.LittleEndian.AppendUint64(buf, rep.Trace)
	}
	buf = append(buf, rep.Status)
	if rep.Status == StatusMoved {
		// The one non-OK status with a payload: the redirect hint.
		buf = binary.LittleEndian.AppendUint64(buf, rep.Epoch)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rep.Addr)))
		return append(buf, rep.Addr...)
	}
	if rep.Status != StatusOK {
		return buf
	}
	switch op {
	case OpGet:
		buf = append(buf, boolByte(rep.Found))
		buf = binary.LittleEndian.AppendUint64(buf, rep.Value)
	case OpPut:
		buf = binary.LittleEndian.AppendUint32(buf, rep.Shard)
		buf = binary.LittleEndian.AppendUint64(buf, rep.Seq)
	case OpDelete:
		buf = append(buf, boolByte(rep.Found))
		buf = binary.LittleEndian.AppendUint32(buf, rep.Shard)
		buf = binary.LittleEndian.AppendUint64(buf, rep.Seq)
	case OpReplicate:
		buf = binary.LittleEndian.AppendUint64(buf, rep.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rep.Recs)))
		for _, r := range rep.Recs {
			buf = repl.AppendRecord(buf, r)
		}
	case OpScan:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rep.Pairs)))
		for _, kv := range rep.Pairs {
			buf = binary.LittleEndian.AppendUint64(buf, kv.Key)
			buf = binary.LittleEndian.AppendUint64(buf, kv.Value)
		}
	case OpStats, OpClusterMap:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rep.Blob)))
		buf = append(buf, rep.Blob...)
	case OpMigSnapshot:
		buf = append(buf, boolByte(rep.Found))
		buf = binary.LittleEndian.AppendUint64(buf, rep.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rep.Pairs)))
		for _, kv := range rep.Pairs {
			buf = binary.LittleEndian.AppendUint64(buf, kv.Key)
			buf = binary.LittleEndian.AppendUint64(buf, kv.Value)
		}
	case OpMigPull:
		buf = append(buf, boolByte(rep.Found))
		buf = binary.LittleEndian.AppendUint64(buf, rep.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, rep.Value)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rep.Recs)))
		for _, r := range rep.Recs {
			buf = repl.AppendRecord(buf, r)
		}
	case OpMigFence:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rep.Seqs)))
		for _, s := range rep.Seqs {
			buf = binary.LittleEndian.AppendUint64(buf, s)
		}
	case OpCheckpoint, OpReplAck, OpMapUpdate:
		// No payload.
	}
	return buf
}

// AppendBatchReply encodes a BATCH reply; sub-reply payloads depend on the
// sub-request ops, so the request travels along. The batch's trace echo
// (when rep carries one) prefixes the outer reply; each sub-reply carries
// its own echo via AppendReply.
func AppendBatchReply(buf []byte, req *Request, rep *Reply) []byte {
	if rep.Trace != 0 {
		buf = append(buf, OpTrace)
		buf = binary.LittleEndian.AppendUint64(buf, rep.Trace)
	}
	buf = append(buf, rep.Status)
	if rep.Status == StatusMoved {
		// Keep the redirect payload symmetric with AppendReply: the
		// decoder parses epoch+addr after MOVED regardless of op.
		buf = binary.LittleEndian.AppendUint64(buf, rep.Epoch)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rep.Addr)))
		return append(buf, rep.Addr...)
	}
	if rep.Status != StatusOK {
		return buf
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rep.Sub)))
	for i := range rep.Sub {
		buf = AppendReply(buf, req.Sub[i].Op, &rep.Sub[i])
	}
	return buf
}

// DecodeReply parses a reply frame body for a request of the given shape.
// When the request carried a trace ID, every reply (and batch sub-reply)
// must open with the trace echo.
func DecodeReply(req *Request, body []byte) (*Reply, error) {
	c := &cursor{b: body}
	rep, err := decodeReply(c, req, req.Trace != 0)
	if err != nil {
		return nil, err
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrProto, len(body)-c.off)
	}
	return rep, nil
}

func decodeReply(c *cursor, req *Request, traced bool) (*Reply, error) {
	var trace uint64
	if traced {
		op, err := c.u8()
		if err != nil {
			return nil, err
		}
		if op != OpTrace {
			return nil, fmt.Errorf("%w: traced request's reply lacks the trace echo", ErrProto)
		}
		if trace, err = c.u64(); err != nil {
			return nil, err
		}
		if trace == 0 {
			return nil, fmt.Errorf("%w: zero trace id in reply echo", ErrProto)
		}
	}
	status, err := c.u8()
	if err != nil {
		return nil, err
	}
	rep := &Reply{Status: status, Trace: trace}
	if status == StatusMoved {
		if rep.Epoch, err = c.u64(); err != nil {
			return nil, err
		}
		n, err := c.u16()
		if err != nil {
			return nil, err
		}
		if int(n) > cluster.MaxNodeAddr {
			return nil, fmt.Errorf("%w: moved address of %d bytes exceeds %d", ErrProto, n, cluster.MaxNodeAddr)
		}
		addr, err := c.bytes(int(n))
		if err != nil {
			return nil, err
		}
		rep.Addr = string(addr)
		return rep, nil
	}
	if status != StatusOK {
		return rep, nil
	}
	switch req.Op {
	case OpGet:
		f, err := c.u8()
		if err != nil {
			return nil, err
		}
		rep.Found = f != 0
		if rep.Value, err = c.u64(); err != nil {
			return nil, err
		}
	case OpPut:
		if rep.Shard, err = c.u32(); err != nil {
			return nil, err
		}
		if rep.Seq, err = c.u64(); err != nil {
			return nil, err
		}
	case OpDelete:
		f, err := c.u8()
		if err != nil {
			return nil, err
		}
		rep.Found = f != 0
		if rep.Shard, err = c.u32(); err != nil {
			return nil, err
		}
		if rep.Seq, err = c.u64(); err != nil {
			return nil, err
		}
	case OpReplicate:
		if rep.Seq, err = c.u64(); err != nil {
			return nil, err
		}
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if n > MaxReplBatch {
			return nil, fmt.Errorf("%w: replicate reply of %d records exceeds %d", ErrProto, n, MaxReplBatch)
		}
		if int(n)*repl.RecordSize > c.remaining() {
			return nil, fmt.Errorf("%w: replicate reply count %d exceeds %d remaining bytes", ErrProto, n, c.remaining())
		}
		if n > 0 {
			rep.Recs = make([]repl.Record, n)
			for i := range rep.Recs {
				b, err := c.bytes(repl.RecordSize)
				if err != nil {
					return nil, err
				}
				r, err := repl.DecodeRecord(b)
				if err != nil {
					return nil, fmt.Errorf("%w: record %d: %v", ErrProto, i, err)
				}
				rep.Recs[i] = r
			}
		}
	case OpScan:
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if n > MaxScanLimit {
			return nil, fmt.Errorf("%w: scan reply of %d pairs exceeds %d", ErrProto, n, MaxScanLimit)
		}
		if int(n)*16 > c.remaining() {
			return nil, fmt.Errorf("%w: scan reply count %d exceeds %d remaining bytes", ErrProto, n, c.remaining())
		}
		rep.Pairs = make([]KV, n)
		for i := range rep.Pairs {
			if rep.Pairs[i].Key, err = c.u64(); err != nil {
				return nil, err
			}
			if rep.Pairs[i].Value, err = c.u64(); err != nil {
				return nil, err
			}
		}
	case OpBatch:
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if int(n) != len(req.Sub) {
			return nil, fmt.Errorf("%w: batch reply has %d entries, request had %d", ErrProto, n, len(req.Sub))
		}
		rep.Sub = make([]Reply, n)
		for i := range rep.Sub {
			sub, err := decodeReply(c, &req.Sub[i], traced)
			if err != nil {
				return nil, err
			}
			rep.Sub[i] = *sub
		}
	case OpStats, OpClusterMap:
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if req.Op == OpClusterMap && n > MaxMapBytes {
			return nil, fmt.Errorf("%w: map image of %d bytes exceeds %d", ErrProto, n, MaxMapBytes)
		}
		blob, err := c.bytes(int(n))
		if err != nil {
			return nil, err
		}
		rep.Blob = append([]byte(nil), blob...)
	case OpMigSnapshot:
		f, err := c.u8()
		if err != nil {
			return nil, err
		}
		rep.Found = f != 0
		if rep.Seq, err = c.u64(); err != nil {
			return nil, err
		}
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if n > MaxScanLimit {
			return nil, fmt.Errorf("%w: snapshot reply of %d pairs exceeds %d", ErrProto, n, MaxScanLimit)
		}
		if int(n)*16 > c.remaining() {
			return nil, fmt.Errorf("%w: snapshot reply count %d exceeds %d remaining bytes", ErrProto, n, c.remaining())
		}
		rep.Pairs = make([]KV, n)
		for i := range rep.Pairs {
			if rep.Pairs[i].Key, err = c.u64(); err != nil {
				return nil, err
			}
			if rep.Pairs[i].Value, err = c.u64(); err != nil {
				return nil, err
			}
		}
	case OpMigPull:
		f, err := c.u8()
		if err != nil {
			return nil, err
		}
		rep.Found = f != 0
		if rep.Seq, err = c.u64(); err != nil {
			return nil, err
		}
		if rep.Value, err = c.u64(); err != nil {
			return nil, err
		}
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if n > MaxReplBatch {
			return nil, fmt.Errorf("%w: migration pull reply of %d records exceeds %d", ErrProto, n, MaxReplBatch)
		}
		if int(n)*repl.RecordSize > c.remaining() {
			return nil, fmt.Errorf("%w: migration pull count %d exceeds %d remaining bytes", ErrProto, n, c.remaining())
		}
		if n > 0 {
			rep.Recs = make([]repl.Record, n)
			for i := range rep.Recs {
				b, err := c.bytes(repl.RecordSize)
				if err != nil {
					return nil, err
				}
				r, err := repl.DecodeRecord(b)
				if err != nil {
					return nil, fmt.Errorf("%w: record %d: %v", ErrProto, i, err)
				}
				rep.Recs[i] = r
			}
		}
	case OpMigFence:
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if n > MaxFenceShards {
			return nil, fmt.Errorf("%w: fence reply of %d shards exceeds %d", ErrProto, n, MaxFenceShards)
		}
		if int(n)*8 > c.remaining() {
			return nil, fmt.Errorf("%w: fence reply count %d exceeds %d remaining bytes", ErrProto, n, c.remaining())
		}
		rep.Seqs = make([]uint64, n)
		for i := range rep.Seqs {
			if rep.Seqs[i], err = c.u64(); err != nil {
				return nil, err
			}
		}
	case OpCheckpoint, OpReplAck, OpMapUpdate:
		// No payload.
	}
	return rep, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ---- Sharding ------------------------------------------------------------

// ShardFor maps a key to one of n shards with a splitmix64-style mixer, so
// adjacent keys spread across shards and zipfian hot keys land on
// independently chosen shards.
func ShardFor(key uint64, n int) int {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}
