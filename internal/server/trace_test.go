package server

import (
	"encoding/binary"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"nvref/internal/obs"
)

// ---- Envelope encoding and decoding --------------------------------------

func TestTraceEnvelopeRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, Key: 8, Trace: 0xDEADBEEF, Sampled: true},
		{Op: OpPut, Key: 1, Value: 2, Trace: 5},
		{Op: OpDelete, Key: 3, Trace: 1 << 63, Sampled: true},
		// All three envelopes at once, in canonical order.
		{Op: OpGet, Key: 8, TTLms: 20, Trace: 9, Sampled: true, Gate: 4},
		// A traced batch: the envelope rides the outer request only.
		{Op: OpBatch, Trace: 11, Sampled: true, Sub: []Request{
			{Op: OpPut, Key: 1, Value: 2},
			{Op: OpGet, Key: 1},
		}},
	}
	for _, req := range cases {
		body, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatalf("%+v: encode: %v", req, err)
		}
		got, err := DecodeRequest(body)
		if err != nil {
			t.Fatalf("%+v: decode: %v", req, err)
		}
		if got.Trace != req.Trace || got.Sampled != req.Sampled {
			t.Errorf("%+v: trace round trip -> id=%d sampled=%v", req, got.Trace, got.Sampled)
		}
		if got.TTLms != req.TTLms || got.Gate != req.Gate {
			t.Errorf("%+v: sibling envelopes mangled: ttl=%d gate=%d", req, got.TTLms, got.Gate)
		}
		if len(got.Sub) != len(req.Sub) {
			t.Errorf("%+v: batch shape lost: %d subs", req, len(got.Sub))
		}
	}
}

func TestTraceEnvelopeEncodeRejections(t *testing.T) {
	// The sampled flag is meaningless without a trace ID.
	if _, err := AppendRequest(nil, &Request{Op: OpGet, Key: 1, Sampled: true}); !errors.Is(err, ErrProto) {
		t.Errorf("sampled-without-trace encoded: %v", err)
	}
	// Sub-requests inherit the batch's trace; their own envelope is illegal.
	_, err := AppendRequest(nil, &Request{Op: OpBatch, Sub: []Request{
		{Op: OpGet, Key: 1, Trace: 7},
	}})
	if !errors.Is(err, ErrProto) {
		t.Errorf("trace envelope inside a batch encoded: %v", err)
	}
}

func TestTraceEnvelopeDecodeRejections(t *testing.T) {
	le64 := func(v uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return b[:]
	}
	get8 := append([]byte{OpGet}, le64(8)...)
	cases := map[string][]byte{
		"zero trace id": append(append(append([]byte{OpTrace}, le64(0)...), 0), get8...),
		"unknown flags": append(append(append([]byte{OpTrace}, le64(1)...), 0xFF), get8...),
		"truncated":     {OpTrace, 1, 0, 0},
		"double trace envelope": append(append(append([]byte{OpTrace}, le64(1)...), 0),
			append(append([]byte{OpTrace}, le64(2)...), 0)...),
		"trace inside batch sub": append([]byte{OpBatch, 1, 0, 0, 0},
			append(append(append([]byte{OpTrace}, le64(1)...), 0), get8...)...),
	}
	for name, body := range cases {
		if _, err := DecodeRequest(body); !errors.Is(err, ErrProto) {
			t.Errorf("%s: accepted (err=%v)", name, err)
		}
	}
}

func TestTraceReplyEchoContract(t *testing.T) {
	traced := &Request{Op: OpGet, Key: 8, Trace: 7, Sampled: true}

	// A traced request's reply opens with the echo and round-trips it.
	body := AppendReply(nil, OpGet, &Reply{Trace: 7, Status: StatusOK, Found: true, Value: 42})
	rep, err := DecodeReply(traced, body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != 7 || !rep.Found || rep.Value != 42 {
		t.Errorf("echoed reply = %+v", rep)
	}

	// Error replies carry the echo too, so failures stay attributable.
	body = AppendReply(nil, OpGet, &Reply{Trace: 7, Status: StatusShed})
	if rep, err = DecodeReply(traced, body); err != nil {
		t.Fatal(err)
	}
	if rep.Trace != 7 || rep.Status != StatusShed {
		t.Errorf("error reply lost its echo: %+v", rep)
	}

	// A reply without the echo is a protocol error for a traced request...
	bare := AppendReply(nil, OpGet, &Reply{Status: StatusOK, Found: true, Value: 42})
	if _, err := DecodeReply(traced, bare); !errors.Is(err, ErrProto) {
		t.Errorf("missing echo accepted: %v", err)
	}
	// ...but exactly right for an untraced one.
	if _, err := DecodeReply(&Request{Op: OpGet, Key: 8}, bare); err != nil {
		t.Errorf("untraced decode: %v", err)
	}

	// Batch: the outer reply and every sub-reply carry their own echo.
	breq := &Request{Op: OpBatch, Trace: 9, Sub: []Request{
		{Op: OpPut, Key: 1, Value: 2},
		{Op: OpGet, Key: 1},
	}}
	brep := &Reply{Trace: 9, Status: StatusOK, Sub: []Reply{
		{Trace: 9, Status: StatusOK, Shard: 0, Seq: 1},
		{Trace: 9, Status: StatusOK, Found: true, Value: 2},
	}}
	body = AppendBatchReply(nil, breq, brep)
	rep, err = DecodeReply(breq, body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != 9 || len(rep.Sub) != 2 {
		t.Fatalf("batch reply = %+v", rep)
	}
	for i, sub := range rep.Sub {
		if sub.Trace != 9 {
			t.Errorf("sub-reply %d lost its echo: %+v", i, sub)
		}
	}
}

// ---- Live propagation ----------------------------------------------------

// stagesFor collects the stage set a recorder holds for one trace ID.
func stagesFor(r *obs.SpanRecorder, trace uint64) map[string]bool {
	m := make(map[string]bool)
	for _, s := range r.Spans() {
		if s.Trace == trace {
			m[s.Stage] = true
		}
	}
	return m
}

func TestExplicitTraceEndToEnd(t *testing.T) {
	spans := obs.NewSpanRecorder(1024, nil)
	ts := startServer(t, Config{Shards: 2, Spans: spans})
	cl := dial(t, ts)

	rep, err := cl.Do(&Request{Op: OpPut, Key: 1, Value: keyVal(1), Trace: 0xABCD, Sampled: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Trace != 0xABCD {
		t.Fatalf("trace echo = %#x, want 0xabcd", rep.Trace)
	}

	// The server-side stages land in the recorder; reply_encode is stamped
	// after the reply is flushed, so poll briefly.
	want := []string{StageDecode, StageQueueWait, StageExecute, StageReplyEncode}
	waitFor(t, "server stages", 2*time.Second, func() bool {
		got := stagesFor(spans, 0xABCD)
		for _, st := range want {
			if !got[st] {
				return false
			}
		}
		return true
	})

	// Traced but unsampled: the echo still comes back, no spans are cut.
	rep, err = cl.Do(&Request{Op: OpGet, Key: 1, Trace: 0x99})
	if err != nil || rep.Err() != nil {
		t.Fatalf("unsampled traced get: %v / %v", err, rep.Err())
	}
	if rep.Trace != 0x99 {
		t.Fatalf("unsampled trace echo = %#x", rep.Trace)
	}
	if got := stagesFor(spans, 0x99); len(got) != 0 {
		t.Errorf("unsampled request cut spans: %v", got)
	}
}

func TestBatchTracePropagation(t *testing.T) {
	spans := obs.NewSpanRecorder(1024, nil)
	ts := startServer(t, Config{Shards: 2, Spans: spans})
	cl := dial(t, ts)

	const id = 0xBA7C4
	rep, err := cl.Do(&Request{Op: OpBatch, Trace: id, Sampled: true, Sub: []Request{
		{Op: OpPut, Key: 1, Value: keyVal(1)},
		{Op: OpPut, Key: 2, Value: keyVal(2)},
		{Op: OpGet, Key: 1},
		{Op: OpDelete, Key: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Trace != id {
		t.Fatalf("batch trace echo = %#x, want %#x", rep.Trace, id)
	}
	if len(rep.Sub) != 4 {
		t.Fatalf("%d sub-replies", len(rep.Sub))
	}
	for i, sub := range rep.Sub {
		if sub.Trace != id {
			t.Errorf("sub-reply %d echo = %#x, want the batch trace", i, sub.Trace)
		}
		if err := sub.Err(); err != nil {
			t.Errorf("sub-reply %d: %v", i, err)
		}
	}
	// Sub-operations execute under the batch's trace on their shards.
	waitFor(t, "batch execute spans", 2*time.Second, func() bool {
		return stagesFor(spans, id)[StageExecute]
	})
}

func TestPipelineTracePropagation(t *testing.T) {
	ts := startServer(t, Config{Shards: 2, Spans: obs.NewSpanRecorder(1024, nil)})
	cl := dial(t, ts)
	cspans := obs.NewSpanRecorder(256, nil)
	cl.SetTraceSample(1, 42)
	cl.SetSpanRecorder(cspans)

	p := cl.Pipeline()
	for k := uint64(1); k <= 4; k++ {
		p.Put(k, keyVal(k))
	}
	for k := uint64(1); k <= 4; k++ {
		p.Get(k)
	}
	reps, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 8 {
		t.Fatalf("%d replies", len(reps))
	}
	seen := make(map[uint64]bool)
	for i, rep := range reps {
		if err := rep.Err(); err != nil {
			t.Fatalf("pipelined reply %d: %v", i, err)
		}
		if rep.Trace == 0 {
			t.Fatalf("pipelined reply %d lost its trace echo", i)
		}
		if seen[rep.Trace] {
			t.Errorf("trace id %#x reused across pipelined requests", rep.Trace)
		}
		seen[rep.Trace] = true
	}
	// Every sampled send stamped a client_send span under its own trace.
	var sends int
	for _, s := range cspans.Spans() {
		if s.Stage == StageClientSend && seen[s.Trace] {
			sends++
		}
	}
	if sends != 8 {
		t.Errorf("client_send spans = %d, want 8", sends)
	}
}

func TestServerSampledTraceStaysOffWire(t *testing.T) {
	spans := obs.NewSpanRecorder(256, nil)
	ts := startServer(t, Config{Shards: 1, TraceSample: 1, Spans: spans})
	cl := dial(t, ts)

	rep, err := cl.Do(&Request{Op: OpPut, Key: 1, Value: keyVal(1)})
	if err != nil || rep.Err() != nil {
		t.Fatalf("put: %v / %v", err, rep.Err())
	}
	// Server-chosen trace IDs never appear on the wire: the client did not
	// ask, so the reply carries no echo...
	if rep.Trace != 0 {
		t.Fatalf("server-sampled trace leaked onto the wire: %#x", rep.Trace)
	}
	// ...but the server still cut spans for the request under a fresh ID.
	waitFor(t, "server-sampled spans", 2*time.Second, func() bool {
		for _, s := range spans.Spans() {
			if s.Trace != 0 && s.Stage == StageExecute {
				return true
			}
		}
		return false
	})
}

func TestSlowOpNotedToFlightRecorder(t *testing.T) {
	flight := obs.NewFlightRecorder(64, "", nil)
	spans := obs.NewSpanRecorder(256, nil)
	ts := startServer(t, Config{Shards: 1, SlowOp: time.Nanosecond, Spans: spans, Flight: flight})
	cl := dial(t, ts)
	for k := uint64(1); k <= 8; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "slow-op wide events", 2*time.Second, func() bool { return flight.Len() > 0 })
	var slow *obs.WideEvent
	for _, ev := range flight.Events() {
		if ev.Kind == "slow_op" {
			e := ev
			slow = &e
			break
		}
	}
	if slow == nil {
		t.Fatal("no slow_op wide event recorded")
	}
	if slow.Op != "put" || slow.TotalUS < 0 {
		t.Errorf("slow_op shape: %+v", slow)
	}
	if _, ok := slow.StagesUS[StageExecute]; !ok {
		t.Errorf("slow_op lost its stage breakdown: %v", slow.StagesUS)
	}
	if got := ts.CollectStats().PerShard[0].SlowOps; got == 0 {
		t.Error("shard slow-op counter did not move")
	}
}

// ---- Health probes and /statusz ------------------------------------------

func TestReadinessContract(t *testing.T) {
	// A healthy standalone server is live and ready.
	ts := startServer(t, Config{Shards: 1})
	if !ts.Live() {
		t.Error("standalone server not live")
	}
	if ready, reason := ts.Ready(); !ready {
		t.Errorf("standalone server not ready: %s", reason)
	}

	// A replica is live but never ready for client traffic.
	p, r, _, _ := startPair(t, 1, nil, nil)
	defer p.Abort()
	defer r.Abort()
	if !r.Live() {
		t.Error("replica not live")
	}
	if ready, reason := r.Ready(); ready || !strings.Contains(reason, "read-only replica") {
		t.Errorf("replica readiness = %v %q", ready, reason)
	}
	if ready, reason := p.Ready(); !ready {
		t.Errorf("paired primary not ready: %s", reason)
	}

	// A closed server fails both probes.
	solo, err := New(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	solo.Close()
	if solo.Live() {
		t.Error("closed server still live")
	}
	if ready, reason := solo.Ready(); ready || reason != "shutting down" {
		t.Errorf("closed readiness = %v %q", ready, reason)
	}
}

func TestFencedPrimaryNotReady(t *testing.T) {
	solo, err := New(Config{Shards: 1, Role: RolePrimary, FenceAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Abort()
	if ready, _ := solo.Ready(); !ready {
		t.Fatal("primary that never saw a replica should be ready")
	}
	solo.markReplContact()                             // a replica appears...
	waitFor(t, "fencing", 2*time.Second, func() bool { // ...then goes silent
		ready, _ := solo.Ready()
		return !ready
	})
	if _, reason := solo.Ready(); !strings.Contains(reason, "write-fenced") {
		t.Errorf("fenced readiness reason = %q", reason)
	}
	doc := solo.CollectStatusz()
	if !doc.Live || doc.Ready || !doc.Fenced {
		t.Errorf("statusz of a fenced primary: live=%v ready=%v fenced=%v", doc.Live, doc.Ready, doc.Fenced)
	}
}

func TestStatuszTraceBlock(t *testing.T) {
	// No tracing plane: the block stays disabled.
	plain := startServer(t, Config{Shards: 1})
	if doc := plain.CollectStatusz(); doc.Trace.Enabled {
		t.Error("trace block enabled without a tracing plane")
	}

	spans := obs.NewSpanRecorder(256, nil)
	flight := obs.NewFlightRecorder(16, "", spans)
	ts := startServer(t, Config{Shards: 1, Spans: spans, Flight: flight, SlowOp: time.Millisecond})
	cl := dial(t, ts)
	rep, err := cl.Do(&Request{Op: OpPut, Key: 1, Value: 2, Trace: 3, Sampled: true})
	if err != nil || rep.Err() != nil {
		t.Fatalf("traced put: %v / %v", err, rep.Err())
	}
	waitFor(t, "spans emitted", 2*time.Second, func() bool { return spans.Emitted() > 0 })
	doc := ts.CollectStatusz()
	if !doc.Trace.Enabled || doc.Trace.SpansEmitted == 0 {
		t.Errorf("trace block = %+v", doc.Trace)
	}
	if doc.Trace.SlowOpUS != 1000 {
		t.Errorf("SlowOpUS = %d, want 1000", doc.Trace.SlowOpUS)
	}
}

func TestPromotionDumpsFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	p, r, paddr, _ := startPair(t, 1, nil, func(c *Config) { c.FlightDir = dir })
	defer r.Abort()
	waitFor(t, "follower contact", 5*time.Second, func() bool {
		return r.CollectStats().Follower.Pulls > 0
	})
	c, err := Dial(paddr.String())
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 8; k++ {
		if err := c.Put(k, keyVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	waitFor(t, "replication drain", 5*time.Second, func() bool {
		return r.replLagRecords() == 0
	})

	p.Abort() // the primary dies; the operator promotes the replica
	if err := r.Promote(); err != nil {
		t.Fatal(err)
	}
	doc := r.CollectStatusz()
	if doc.Trace.LastDump == "" || doc.Trace.FlightDumps == 0 {
		t.Fatalf("promotion did not dump the flight recorder: %+v", doc.Trace)
	}
	f, err := os.Open(doc.Trace.LastDump)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines, err := obs.ReadFlightDump(f)
	if err != nil {
		t.Fatal(err)
	}
	var sawPromotion bool
	for _, ln := range lines {
		if ln.Type == "wide" && ln.Event.Kind == TriggerPromotion {
			sawPromotion = true
			if ln.Event.Detail == "" {
				t.Error("promotion event lost its detail")
			}
		}
	}
	if !sawPromotion {
		t.Fatalf("dump %s has no promotion trigger", doc.Trace.LastDump)
	}
}

// ---- Sampler and labels --------------------------------------------------

func TestTraceSampler(t *testing.T) {
	if newTraceSampler(0, 1) != nil {
		t.Error("rate 0 should disable the sampler")
	}
	var off *traceSampler
	if id, ok := off.next(); ok || id != 0 {
		t.Error("nil sampler sampled")
	}

	all := newTraceSampler(1, 7)
	ids := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		id, ok := all.next()
		if !ok || id == 0 {
			t.Fatalf("call %d: rate-1 sampler skipped (id=%d ok=%v)", i, id, ok)
		}
		if ids[id] {
			t.Fatalf("trace id %#x repeated", id)
		}
		ids[id] = true
	}

	// The counter makes fractional rates exact, not probabilistic.
	for _, tc := range []struct {
		rate float64
		want int
	}{{0.5, 50}, {0.25, 25}, {0.1, 10}} {
		s := newTraceSampler(tc.rate, 7)
		var hits int
		for i := 0; i < 100; i++ {
			if _, ok := s.next(); ok {
				hits++
			}
		}
		if hits != tc.want {
			t.Errorf("rate %v: %d/100 sampled, want %d", tc.rate, hits, tc.want)
		}
	}
}

func TestOpNames(t *testing.T) {
	for op, want := range map[byte]string{
		OpGet: "get", OpPut: "put", OpDelete: "delete", OpScan: "scan",
		OpBatch: "batch", OpStats: "stats", OpCheckpoint: "checkpoint",
		OpReplicate: "replicate", OpReplAck: "replack", 200: "op200",
	} {
		if got := opName(op); got != want {
			t.Errorf("opName(%d) = %q, want %q", op, got, want)
		}
	}
}
