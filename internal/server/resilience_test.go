package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"nvref/internal/fault"
	"nvref/internal/fault/flaky"
)

// keyForShard returns a key that ShardFor maps to the target shard.
func keyForShard(target, shards int) uint64 {
	for k := uint64(0); ; k++ {
		if ShardFor(k, shards) == target {
			return k
		}
	}
}

// waitShard polls one shard's stats until cond holds or the deadline
// passes.
func waitShard(t *testing.T, ts *testServer, shard int, what string, cond func(ShardStats) bool) ShardStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := ts.CollectStats().PerShard[shard]
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d never reached %s; stats %+v", shard, what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestInjectPanicSalvagesAckedWrites is the durability distinction at the
// heart of the supervisor: a software crash (worker panic) must NOT lose
// acknowledged writes, even uncheckpointed ones, because the pool's memory
// outlives the goroutine — the supervisor fscks it and salvages state.
// (Power loss via InjectCrash legitimately rolls back to the checkpoint;
// TestAbortRollsBackToCheckpoint covers that contract.)
func TestInjectPanicSalvagesAckedWrites(t *testing.T) {
	// CheckpointEvery < 0: no periodic checkpoints, so surviving writes
	// prove salvage rather than checkpoint luck.
	ts := startServer(t, Config{Shards: 1, CheckpointEvery: -1})
	cl := dial(t, ts)

	const n = 300
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if err := ts.InjectPanic(0); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := cl.Get(k)
		if err != nil {
			t.Fatalf("get %d after panic: %v", k, err)
		}
		if !ok || v != keyVal(k) {
			t.Fatalf("key %d after salvage: got (%d,%v), want %d — acked write lost", k, v, ok, keyVal(k))
		}
	}
	st := ts.CollectStats().PerShard[0]
	if st.Panics != 1 || st.Restarts != 1 || st.Salvages != 1 {
		t.Errorf("supervisor counters: panics=%d restarts=%d salvages=%d, want 1/1/1", st.Panics, st.Restarts, st.Salvages)
	}
	if st.Rollbacks != 0 {
		t.Errorf("salvage fell back to rollback %d times", st.Rollbacks)
	}
	if st.Crashes != 0 {
		t.Errorf("software crash recorded %d power-loss crashes", st.Crashes)
	}
}

// TestSupervisorRestartMidStream is the satellite concurrency test: shard
// 0's worker is repeatedly killed while client goroutines stream requests
// at every shard. In-flight requests on the surviving shards must succeed,
// acknowledged writes to the killed shard must survive its restarts, and
// the supervisor must restart it every time without a process restart.
func TestSupervisorRestartMidStream(t *testing.T) {
	const (
		shards     = 4
		kills      = 6
		keysPerGor = 32
	)
	ts := startServer(t, Config{Shards: shards, CheckpointEvery: -1, BreakerCooldown: 5 * time.Millisecond})

	keysFor := make([][]uint64, shards)
	for k := uint64(0); ; k++ {
		s := ShardFor(k, shards)
		if len(keysFor[s]) < keysPerGor {
			keysFor[s] = append(keysFor[s], k)
		}
		full := true
		for _, ks := range keysFor {
			if len(ks) < keysPerGor {
				full = false
			}
		}
		if full {
			break
		}
	}

	stop := make(chan struct{})
	errs := make([]error, shards)
	var wg sync.WaitGroup
	// Shards 1..3: plain clients; a crash of shard 0 must never surface
	// here.
	for s := 1; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cl, err := Dial(ts.addr)
			if err != nil {
				errs[s] = err
				return
			}
			defer cl.Close()
			for round := uint64(1); ; round++ {
				for _, k := range keysFor[s] {
					want := k ^ round
					if err := cl.Put(k, want); err != nil {
						errs[s] = fmt.Errorf("put %d: %w", k, err)
						return
					}
					v, ok, err := cl.Get(k)
					if err != nil {
						errs[s] = fmt.Errorf("get %d: %w", k, err)
						return
					}
					if !ok || v != want {
						errs[s] = fmt.Errorf("shard %d key %d: got (%d,%v), want %d", s, k, v, ok, want)
						return
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(s)
	}

	// Shard 0: a resilient client rides through the kills (UNAVAILABLE
	// while the supervisor repairs, then retry succeeds). acked records
	// every acknowledged write; all of them must survive.
	acked := make(map[uint64]uint64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rc, err := DialResilient(ts.addr, RetryPolicy{
			MaxAttempts: 12,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			Seed:        3,
		})
		if err != nil {
			errs[0] = err
			return
		}
		defer rc.Close()
		for round := uint64(1); ; round++ {
			for _, k := range keysFor[0] {
				want := round // monotonic per key: single writer
				if err := rc.Put(k, want); err != nil {
					errs[0] = fmt.Errorf("resilient put %d: %w", k, err)
					return
				}
				acked[k] = want
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for i := 0; i < kills; i++ {
		time.Sleep(5 * time.Millisecond)
		if err := ts.InjectPanic(0); err != nil {
			t.Fatalf("kill %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	for s := 0; s < shards; s++ {
		if errs[s] != nil {
			t.Errorf("client for shard %d: %v", s, errs[s])
		}
	}

	// Every acknowledged write to the killed shard survived (values are
	// monotonic per key, so >= acked means no rollback).
	cl := dial(t, ts)
	for k, want := range acked {
		v, ok, err := cl.Get(k)
		if err != nil {
			t.Fatalf("verify get %d: %v", k, err)
		}
		if !ok || v < want {
			t.Errorf("key %d: got (%d,%v), want >= %d — acked write lost across restart", k, v, ok, want)
		}
	}

	st := ts.CollectStats()
	if got := st.PerShard[0].Panics; got != kills {
		t.Errorf("shard 0 panics = %d, want %d", got, kills)
	}
	if got := st.PerShard[0].Restarts; got != kills {
		t.Errorf("shard 0 restarts = %d, want %d", got, kills)
	}
	for s := 1; s < shards; s++ {
		if got := st.PerShard[s].Panics; got != 0 {
			t.Errorf("shard %d recorded %d panics; only shard 0 was killed", s, got)
		}
	}
}

// TestWatchdogDetectsWedgedShard wedges a worker mid-request and asserts
// the watchdog opens the breaker and marks the shard wedged while work is
// queued behind the sleep — then that the worker heals itself (state back
// to healthy, breaker closed) once it resumes.
func TestWatchdogDetectsWedgedShard(t *testing.T) {
	ts := startServer(t, Config{
		Shards:          1,
		CheckpointEvery: -1,
		WedgeTimeout:    40 * time.Millisecond,
		BreakerCooldown: 5 * time.Millisecond,
	})
	cl := dial(t, ts)
	if err := cl.Put(1, 1); err != nil {
		t.Fatal(err)
	}

	wedgeDone := make(chan error, 1)
	go func() { wedgeDone <- ts.InjectWedge(0, 400*time.Millisecond) }()
	time.Sleep(5 * time.Millisecond) // let the worker pick the wedge up

	// Queue work behind the sleeping worker so the watchdog sees a stuck
	// shard (stale heartbeat alone just means idle).
	putDone := make(chan error, 1)
	go func() {
		cl2, err := Dial(ts.addr)
		if err != nil {
			putDone <- err
			return
		}
		defer cl2.Close()
		putDone <- cl2.Put(2, 2)
	}()

	st := waitShard(t, ts, 0, "wedged", func(st ShardStats) bool { return st.Wedges >= 1 })
	if st.State != "wedged" {
		t.Errorf("state while wedged = %q, want wedged", st.State)
	}
	if st.Breaker != "open" && st.Breaker != "half-open" {
		t.Errorf("breaker while wedged = %q, want open", st.Breaker)
	}

	if err := <-wedgeDone; err != nil {
		t.Fatalf("wedge: %v", err)
	}
	if err := <-putDone; err != nil {
		t.Fatalf("queued put behind wedge: %v", err)
	}
	waitShard(t, ts, 0, "healed", func(st ShardStats) bool {
		return st.State == "healthy" && st.Breaker == "closed"
	})
}

// TestOverloadShedsExplicitly fills a depth-1 queue behind a wedged worker
// and asserts the next request is refused with an explicit SHED frame
// instead of blocking the connection.
func TestOverloadShedsExplicitly(t *testing.T) {
	ts := startServer(t, Config{
		Shards:          1,
		QueueDepth:      1,
		AdmitWait:       -1, // shed immediately on a full queue
		CheckpointEvery: -1,
		WedgeTimeout:    -1, // keep the watchdog out of this test
	})
	go ts.InjectWedge(0, 200*time.Millisecond)
	time.Sleep(5 * time.Millisecond)

	blocked := make(chan error, 1)
	go func() {
		cl, err := Dial(ts.addr)
		if err != nil {
			blocked <- err
			return
		}
		defer cl.Close()
		blocked <- cl.Put(1, 1) // fills the queue, served after the wedge
	}()
	time.Sleep(10 * time.Millisecond)

	cl := dial(t, ts)
	t0 := time.Now()
	err := cl.Put(2, 2)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("put on full queue: err = %v, want ErrShed", err)
	}
	if !Retryable(err) {
		t.Error("ErrShed must be retryable")
	}
	if d := time.Since(t0); d > 100*time.Millisecond {
		t.Errorf("shed took %v; must fail fast, not wait out the wedge", d)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("queued put: %v", err)
	}
	if st := ts.CollectStats().PerShard[0]; st.Sheds == 0 {
		t.Error("no sheds recorded")
	}
}

// TestDeadlineExpiresInQueue sends a request with a tiny TTL into a queue
// behind a wedged worker: the worker must drop it with StatusDeadline
// instead of executing it late.
func TestDeadlineExpiresInQueue(t *testing.T) {
	ts := startServer(t, Config{Shards: 1, CheckpointEvery: -1, WedgeTimeout: -1})
	go ts.InjectWedge(0, 150*time.Millisecond)
	time.Sleep(5 * time.Millisecond)

	cl := dial(t, ts)
	cl.SetTTL(10)
	err := cl.Put(7, 7)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("put with 10ms TTL behind 150ms wedge: err = %v, want ErrDeadline", err)
	}
	if !Retryable(err) {
		t.Error("ErrDeadline must be retryable")
	}
	cl.SetTTL(0)
	if err := cl.Put(7, 7); err != nil {
		t.Fatalf("put without TTL after wedge: %v", err)
	}
	if st := ts.CollectStats().PerShard[0]; st.DeadlineDrops == 0 {
		t.Error("no deadline drops recorded")
	}
}

// TestClientTimeoutOnDeadPeer is the first satellite fix: a peer that
// accepts and never answers must fail the round trip at the configured
// I/O deadline instead of hanging forever.
func TestClientTimeoutOnDeadPeer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept, read nothing, answer nothing
		}
	}()

	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTimeout(30 * time.Millisecond)
	t0 := time.Now()
	_, _, err = cl.Get(1)
	if err == nil {
		t.Fatal("get against a dead peer returned nil")
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("get took %v; deadline did not apply", d)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a net timeout", err)
	}
	if !Retryable(err) {
		t.Error("timeout must be retryable")
	}
}

// TestOversizedFrameAnsweredThenDropped is the decoder-hardening
// satellite at the transport level: a length prefix beyond MaxFrame gets a
// clean BadRequest frame back (no huge allocation, no silent hangup),
// then the connection closes.
func TestOversizedFrameAnsweredThenDropped(t *testing.T) {
	ts := startServer(t, Config{Shards: 1})
	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(MaxFrame+1))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	body, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("expected an error frame, got %v", err)
	}
	if len(body) == 0 || body[0] != StatusBadRequest {
		t.Fatalf("error frame status = %v, want BadRequest", body)
	}
	if _, err := ReadFrame(conn); !errors.Is(err, io.EOF) {
		t.Fatalf("connection should be closed after the error frame; read err = %v", err)
	}
}

// TestResilientClientThroughFlakyNetwork drives a resilient client across
// a network that drops, truncates, and delays frames: every operation must
// still succeed (via retry and re-dial), and the client must actually have
// exercised both.
func TestResilientClientThroughFlakyNetwork(t *testing.T) {
	ts := startServer(t, Config{Shards: 2, CheckpointEvery: -1})
	sched := fault.NewPeriodic("", 7) // one fault per 7 conn I/O calls
	rc, err := DialResilientFunc(ts.addr, RetryPolicy{
		MaxAttempts: 12,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        5,
	}, flaky.Dialer(flaky.Config{Sched: sched, Seed: 5}))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const n = 300
	for k := uint64(0); k < n; k++ {
		if err := rc.Put(k, keyVal(k)); err != nil {
			t.Fatalf("put %d through flaky net: %v", k, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := rc.Get(k)
		if err != nil {
			t.Fatalf("get %d through flaky net: %v", k, err)
		}
		if !ok || v != keyVal(k) {
			t.Fatalf("key %d: got (%d,%v), want %d", k, v, ok, keyVal(k))
		}
	}
	if sched.Fired() == 0 {
		t.Fatal("no network faults fired; the test proved nothing")
	}
	if rc.Retries() == 0 || rc.Redials() == 0 {
		t.Errorf("retries=%d redials=%d; flaky net should force both", rc.Retries(), rc.Redials())
	}
}

// TestScrubberFscksIdleShards lets the background scrubber run over idle
// shards and asserts scrubs are recorded; Scrub() is the synchronous form.
func TestScrubberFscksIdleShards(t *testing.T) {
	ts := startServer(t, Config{Shards: 2, ScrubEvery: 2 * time.Millisecond})
	cl := dial(t, ts)
	if err := cl.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	waitShard(t, ts, 0, "scrubbed", func(st ShardStats) bool { return st.Scrubs >= 1 })

	before := ts.CollectStats().PerShard[1].Scrubs
	ts.Scrub()
	if after := ts.CollectStats().PerShard[1].Scrubs; after <= before {
		t.Errorf("synchronous Scrub did not run: %d -> %d", before, after)
	}
}
