package server

import (
	"os"
	"testing"
	"time"

	"nvref/internal/fault"
	"nvref/internal/fault/inject"
	"nvref/internal/parity"
	"nvref/internal/pmem"
)

// corruptShardImage damages every non-sidecar image in the shard's store
// (in practice: the one pool image) with the given fault class, returning
// how many images were hit. The damage is media-style: bytes change under
// an unchanged checksum.
func corruptShardImage(t *testing.T, store pmem.Store, class fault.Class, seed uint64) int {
	t.Helper()
	names, err := store.List()
	if err != nil {
		t.Fatalf("listing store: %v", err)
	}
	hit := 0
	for _, name := range names {
		if parity.IsSidecar(name) {
			continue
		}
		desc, err := inject.CorruptStored(store, name, class, parity.DefaultPageSize, fault.NewRand(seed))
		if err != nil {
			t.Fatalf("corrupting %q: %v", name, err)
		}
		t.Logf("corrupted %q: %s", name, desc)
		hit++
	}
	if hit == 0 {
		t.Fatal("no pool image in the store to corrupt (checkpoint missing?)")
	}
	return hit
}

// TestScrubberRepairsMediaCorruption is the tentpole's serving-tier leg:
// a bit flips in a checkpointed pool image while the server keeps running.
// The background scrubber must detect the flip against the page CRCs,
// reconstruct the page from the parity sidecar, heal the store in place —
// no failover, no client-visible error — and leave a flight-recorder dump
// behind. A subsequent power-loss crash then recovers from the healed
// image with every acknowledged write intact.
func TestScrubberRepairsMediaCorruption(t *testing.T) {
	store := pmem.NewMemStore()
	dir := t.TempDir()
	ts := startServer(t, Config{
		Shards:          1,
		CheckpointEvery: -1, // no background checkpoints: the image under scrub stays put
		ScrubEvery:      2 * time.Millisecond,
		Parity:          parity.Default(),
		StoreFor:        func(int) pmem.Store { return store },
		FlightDir:       dir,
	})
	cl := dial(t, ts)

	const n = 200
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if err := ts.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	corruptShardImage(t, store, fault.BitFlip, 42)

	st := waitShard(t, ts, 0, "media repair", func(st ShardStats) bool { return st.PagesRepaired >= 1 })
	if st.MediaScrubs == 0 || st.ParityPages == 0 {
		t.Errorf("media counters after repair: scrubs=%d parity_pages=%d, want both > 0", st.MediaScrubs, st.ParityPages)
	}
	if st.MediaUnrecoverable != 0 {
		t.Errorf("single flipped bit counted as unrecoverable (%d)", st.MediaUnrecoverable)
	}

	// The store must now hold the healed image: power-loss recovery reopens
	// from it, and every acknowledged write must still be there.
	if err := ts.InjectCrash(0); err != nil {
		t.Fatalf("crash after heal: %v", err)
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := cl.Get(k)
		if err != nil {
			t.Fatalf("get %d after crash: %v", k, err)
		}
		if !ok || v != keyVal(k) {
			t.Fatalf("key %d after recovery from healed image: got (%d,%v), want %d", k, v, ok, keyVal(k))
		}
	}

	// A media repair is an incident: the flight recorder must have dumped.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading flight dir: %v", err)
	}
	if len(entries) == 0 {
		t.Error("media repair left no flight-recorder dump")
	}
}

// TestCrashRecoveryRepairsCorruptImage covers the load-path half: the
// corruption is found not by the scrubber but by recovery itself — the
// image fails verification while a crashed shard reopens it. With parity
// armed, open() must reconstruct the bad page, heal the store, and bring
// the shard back with all checkpointed writes, instead of failing
// recovery.
func TestCrashRecoveryRepairsCorruptImage(t *testing.T) {
	store := pmem.NewMemStore()
	ts := startServer(t, Config{
		Shards:          1,
		CheckpointEvery: -1,
		Parity:          parity.Default(),
		StoreFor:        func(int) pmem.Store { return store },
	})
	cl := dial(t, ts)

	const n = 300
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if err := ts.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	corruptShardImage(t, store, fault.Torn, 7)

	if err := ts.InjectCrash(0); err != nil {
		t.Fatalf("crash onto corrupt image: %v", err)
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := cl.Get(k)
		if err != nil {
			t.Fatalf("get %d after recovery: %v", k, err)
		}
		if !ok || v != keyVal(k) {
			t.Fatalf("key %d after repair-on-open: got (%d,%v), want %d", k, v, ok, keyVal(k))
		}
	}
	st := ts.CollectStats().PerShard[0]
	if st.PagesRepaired == 0 {
		t.Error("recovery reopened a corrupt image without counting a repair")
	}
	if st.Crashes != 1 || st.Recoveries != 1 {
		t.Errorf("crash/recovery counters: %d/%d, want 1/1", st.Crashes, st.Recoveries)
	}
}

// TestScrubReportsUnrecoverableDamage: damage beyond parity's reach (many
// pages of one rangelet wiped by a torn image) must be reported — counted,
// logged, dumped — not silently retried or fatal. The service keeps
// serving from the live pool, and the next checkpoint re-seals the store
// with a fresh image and sidecar, after which recovery works again.
func TestScrubReportsUnrecoverableDamage(t *testing.T) {
	store := pmem.NewMemStore()
	ts := startServer(t, Config{
		Shards:          1,
		CheckpointEvery: -1,
		ScrubEvery:      2 * time.Millisecond,
		Parity:          parity.Default(),
		StoreFor:        func(int) pmem.Store { return store },
	})
	cl := dial(t, ts)

	const n = 200
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	if err := ts.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Truncate the stored image to two pages under its original metadata:
	// every later content-bearing page reads as zeros, multiple of them in
	// the same rangelet — beyond single-page reconstruction.
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if parity.IsSidecar(name) {
			continue
		}
		meta, data, err := store.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Save(meta, data[:2*parity.DefaultPageSize]); err != nil {
			t.Fatal(err)
		}
	}

	waitShard(t, ts, 0, "unrecoverable damage reported", func(st ShardStats) bool {
		return st.MediaUnrecoverable >= 1
	})

	// The live pool is untouched: clients keep reading through the damage.
	for k := uint64(0); k < n; k++ {
		v, ok, err := cl.Get(k)
		if err != nil || !ok || v != keyVal(k) {
			t.Fatalf("get %d while store is damaged: (%d,%v,%v)", k, v, ok, err)
		}
	}

	// A fresh checkpoint rewrites image and sidecar; recovery works again.
	if err := ts.Checkpoint(); err != nil {
		t.Fatalf("re-seal checkpoint: %v", err)
	}
	if err := ts.InjectCrash(0); err != nil {
		t.Fatalf("crash after re-seal: %v", err)
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := cl.Get(k)
		if err != nil || !ok || v != keyVal(k) {
			t.Fatalf("get %d after re-seal recovery: (%d,%v,%v)", k, v, ok, err)
		}
	}
}
