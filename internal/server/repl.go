package server

// Replication control plane: the server roles, the primary's held-ack
// waiter (semi-synchronous write acknowledgment), the replica's follower
// loop (pull-based log shipping over the ordinary frame protocol), and
// promotion.
//
// The flow, end to end:
//
//	primary shard worker:  log.Append → apply → hold ack in ackWaiter
//	replica follower:      OpReplicate pull (flush + ship durable-only)
//	                       → ctlApply (AppendAt → apply → flush)
//	                       → OpReplAck (covers the durable prefix)
//	primary ack path:      replAck advances → ackWaiter releases held acks
//	primary checkpoint:    truncate log through min(applied, replAck)
//
// Two durability rules keep the copies convergent across crashes on
// either side. Shipping is durable-only (Log.SinceDurable): a record a
// replica has seen always survives the primary's own crash-reload, so an
// in-place primary recovery can never regress below — and then reuse the
// sequence numbers of — records its replica already applied. Acking is
// durable-only too: the replica flushes its log image before REPLACK, so
// the primary may truncate through replAck knowing a replica restart
// cannot regress the pull cursor behind the primary's log base.
//
// The replica dials the primary (-follow), so the primary needs no
// knowledge of its replica: any reader of the log may pull. Liveness is
// inferred from pull traffic — a primary only holds write acks while a
// replica has pulled or acked within ReplLiveWindow; otherwise it acks
// immediately and counts the write as degraded (single-copy). The
// replication gate asserts both the degraded and the timeout counters are
// zero, which is what makes "every acked write survives promotion" sound.
//
// Fencing: auto-promotion is by silence, so a partitioned-but-alive
// primary and a self-promoted replica could otherwise both accept writes
// (split-brain). With FenceAfter set below the replica's PromoteAfter, a
// primary that has ever seen a replica stops taking writes (READONLY)
// once the replica has been silent that long — it fences itself before
// the replica can have promoted, and failover clients rotate to the new
// primary. With FenceAfter unset that split-brain window is accepted and
// documented (DESIGN.md §11), like the resurrected-old-primary case.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nvref/internal/fault"
	"nvref/internal/obs"
	"nvref/internal/repl"
)

// Server roles. A standalone server keeps no operation log and behaves
// exactly as before the replication tier existed.
const (
	RoleStandalone int32 = iota
	RolePrimary
	RoleReplica
)

func roleName(r int32) string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleReplica:
		return "replica"
	default:
		return "standalone"
	}
}

// ---- Held write acks -----------------------------------------------------

// ackWaiter parks a primary shard's write replies until the replica's
// acknowledged sequence covers them. The shard worker holds; the
// connection goroutine serving OpReplAck releases; the server's sweeper
// expires holds that outlive the ack timeout (answered UNAVAILABLE, so the
// client retries rather than trusting a single-copy write).
type ackWaiter struct {
	ack     *atomic.Uint64 // the shard's replica-acked sequence
	timeout time.Duration
	clock   fault.Clock       // expiry stamps and sweep comparisons
	spans   *obs.SpanRecorder // sampled holds record replack_hold spans
	shard   int

	mu     sync.Mutex
	held   []heldAck // sorted by seq (worker appends are monotonic)
	closed bool      // shutdown: deliver immediately instead of holding

	expired atomic.Uint64
}

type heldAck struct {
	seq    uint64
	expiry time.Time
	resp   chan Reply
	rep    Reply
	trace  uint64 // nonzero: record the hold as a span on release
	heldAt time.Time
}

func newAckWaiter(ack *atomic.Uint64, timeout time.Duration, clock fault.Clock, spans *obs.SpanRecorder, shard int) *ackWaiter {
	return &ackWaiter{ack: ack, timeout: timeout, clock: fault.OrWall(clock), spans: spans, shard: shard}
}

// hold parks (resp, rep) until release covers rep.Seq. The covered check
// runs under the mutex so a release racing this hold cannot slip between
// the check and the append (no lost wakeup). A nonzero trace marks a
// sampled write whose hold duration is recorded as a replack_hold span.
func (w *ackWaiter) hold(resp chan Reply, rep Reply, trace uint64) {
	w.mu.Lock()
	if w.closed || rep.Seq <= w.ack.Load() {
		w.mu.Unlock()
		resp <- rep
		return
	}
	h := heldAck{seq: rep.Seq, expiry: w.clock.Now().Add(w.timeout), resp: resp, rep: rep, trace: trace}
	if trace != 0 && w.spans != nil {
		h.heldAt = time.Now()
	}
	w.held = append(w.held, h)
	w.mu.Unlock()
}

// release delivers every held reply with seq <= upTo. Reply channels are
// buffered (capacity 1) and only the waiter sends on a held one, so the
// sends cannot block.
func (w *ackWaiter) release(upTo uint64) {
	w.mu.Lock()
	n := 0
	for n < len(w.held) && w.held[n].seq <= upTo {
		n++
	}
	if n == 0 {
		w.mu.Unlock()
		return
	}
	ready := append([]heldAck(nil), w.held[:n]...)
	w.held = append(w.held[:0], w.held[n:]...)
	w.mu.Unlock()
	for _, h := range ready {
		h.resp <- h.rep
		if !h.heldAt.IsZero() {
			w.spans.RecordTimed(h.trace, StageAckHold, w.shard, "", 0, h.heldAt, time.Since(h.heldAt))
		}
	}
}

// sweep expires holds past their deadline (expiries are monotonic, so the
// expired set is a prefix), answering UNAVAILABLE: the write is applied
// locally but the replica never confirmed it, so the client must not treat
// it as replicated — a retry lands it again, idempotently.
func (w *ackWaiter) sweep(now time.Time) {
	w.mu.Lock()
	n := 0
	for n < len(w.held) && now.After(w.held[n].expiry) {
		n++
	}
	if n == 0 {
		w.mu.Unlock()
		return
	}
	expired := append([]heldAck(nil), w.held[:n]...)
	w.held = append(w.held[:0], w.held[n:]...)
	w.mu.Unlock()
	w.expired.Add(uint64(n))
	for _, h := range expired {
		h.resp <- Reply{Status: StatusUnavailable}
	}
}

// failHeld fails every current hold with UNAVAILABLE (worker recovery: a
// rollback may erase the held writes) but keeps accepting new holds.
func (w *ackWaiter) failHeld() {
	w.mu.Lock()
	held := w.held
	w.held = nil
	w.mu.Unlock()
	for _, h := range held {
		select {
		case h.resp <- Reply{Status: StatusUnavailable}:
		default:
		}
	}
}

// shutdown fails every current hold and makes future holds deliver
// immediately — called before the server waits for its connection
// handlers, which would otherwise block forever on parked replies.
func (w *ackWaiter) shutdown() {
	w.mu.Lock()
	held := w.held
	w.held = nil
	w.closed = true
	w.mu.Unlock()
	for _, h := range held {
		select {
		case h.resp <- Reply{Status: StatusUnavailable}:
		default:
		}
	}
}

func (w *ackWaiter) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.held)
}

func (w *ackWaiter) timeouts() uint64 { return w.expired.Load() }

// ---- Server-side replication state ---------------------------------------

// replState is the server's replication control block.
type replState struct {
	role       atomic.Int32
	lastPull   atomic.Int64 // UnixNano of the last REPLICATE/REPLACK served
	promotions atomic.Uint64
	shipped    atomic.Uint64 // records served to pulls
	follower   *follower     // replica only
}

// Role returns the server's current role (it changes on Promote).
func (s *Server) Role() int32 { return s.repl.role.Load() }

// Promotions returns how many times this server was promoted to primary.
func (s *Server) Promotions() uint64 { return s.repl.promotions.Load() }

// markReplContact records replica traffic for the liveness window, and
// re-arms the fencing trigger: renewed contact ends a fenced episode.
func (s *Server) markReplContact() {
	s.repl.lastPull.Store(s.cfg.Clock.Now().UnixNano())
	s.fencedTrip.Store(false)
}

// replicaLive reports whether a replica pulled or acked recently enough
// that holding write acks for it is worthwhile.
func (s *Server) replicaLive() bool {
	lp := s.repl.lastPull.Load()
	return lp != 0 && s.cfg.Clock.Now().Sub(time.Unix(0, lp)) <= s.cfg.ReplLiveWindow
}

// writeFenced reports whether a primary must refuse writes because its
// replica has been silent past FenceAfter — the self-fencing half of
// silence-based promotion. A primary that never saw a replica is not
// fenced (nothing can have promoted against it), and FenceAfter <= 0
// disables fencing entirely.
func (s *Server) writeFenced() bool {
	if s.cfg.FenceAfter <= 0 {
		return false
	}
	lp := s.repl.lastPull.Load()
	return lp != 0 && s.cfg.Clock.Now().Sub(time.Unix(0, lp)) > s.cfg.FenceAfter
}

// Promote turns a replica into a primary: stop pulling, fsck every pool
// (the log tail was already replayed on arrival — each record applies as
// it ships — so the stores are current through the last pull), and start
// accepting writes and holding acks for the next replica. It is the
// failover path, callable from the auto-promotion timer or an operator.
func (s *Server) Promote() error {
	if !s.repl.role.CompareAndSwap(RoleReplica, RolePrimary) {
		return fmt.Errorf("server: promote: role is %s, want replica", roleName(s.repl.role.Load()))
	}
	if f := s.repl.follower; f != nil {
		f.signalStop() // async: Promote may run inside the follower goroutine
	}
	s.Scrub()
	s.repl.promotions.Add(1)
	s.logf("server: promoted to primary (applied=%v)", s.appliedSeqs())
	s.trigger(TriggerPromotion, fmt.Sprintf("replica promoted to primary (applied=%v)", s.appliedSeqs()))
	return nil
}

func (s *Server) appliedSeqs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.applied.Load()
	}
	return out
}

// replicateReply serves an OpReplicate pull: durable records after
// req.Seq from the shard's log (SinceDurable flushes pending appends
// first, so shipping is prompt but never outruns the durable image), plus
// the newest logged sequence so the replica can measure its lag. Served
// by connection goroutines — the log has its own lock, so pulls never
// enter the shard queue.
func (s *Server) replicateReply(req *Request) Reply {
	if int(req.Shard) >= len(s.shards) {
		return Reply{Status: StatusBadRequest}
	}
	sh := s.shards[req.Shard]
	if sh.cfg.oplog == nil {
		return Reply{Status: StatusBadRequest}
	}
	s.markReplContact()
	var shipStart time.Time
	if s.spans != nil {
		shipStart = time.Now()
	}
	recs := sh.cfg.oplog.SinceDurable(req.Seq, req.Limit)
	s.repl.shipped.Add(uint64(len(recs)))
	if s.spans != nil {
		s.spans.RecordTimed(0, StageReplShip, int(req.Shard), "replicate", 0, shipStart, time.Since(shipStart))
	}
	return Reply{Status: StatusOK, Shard: req.Shard, Seq: sh.cfg.oplog.LastSeq(), Recs: recs}
}

// replAckReply serves an OpReplAck: advance the shard's replica-acked
// sequence (monotonically — acks may arrive out of order across
// connections) and release held write acks it covers.
func (s *Server) replAckReply(req *Request) Reply {
	if int(req.Shard) >= len(s.shards) {
		return Reply{Status: StatusBadRequest}
	}
	sh := s.shards[req.Shard]
	if sh.waiter == nil {
		return Reply{Status: StatusBadRequest}
	}
	s.markReplContact()
	for {
		cur := sh.replAck.Load()
		if req.Seq <= cur || sh.replAck.CompareAndSwap(cur, req.Seq) {
			break
		}
	}
	sh.waiter.release(sh.replAck.Load())
	return Reply{Status: StatusOK}
}

// ackSweeper periodically expires held write acks whose replica ack never
// arrived, bounding how long a client write can hang on a dead replica.
func (s *Server) ackSweeper() {
	defer s.bgWG.Done()
	tick := s.cfg.AckTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	for {
		select {
		case <-s.bgStop:
			return
		case now := <-s.cfg.Clock.After(tick):
			for _, sh := range s.shards {
				if sh.waiter != nil {
					sh.waiter.sweep(now)
				}
			}
		}
	}
}

// replLagRecords is the exported replication-lag gauge: on a primary,
// records applied but not yet replica-acked; on a replica, records the
// primary has logged that this replica has not applied.
func (s *Server) replLagRecords() uint64 {
	switch s.repl.role.Load() {
	case RolePrimary:
		var sum uint64
		for _, sh := range s.shards {
			sum += sh.replLag()
		}
		return sum
	case RoleReplica:
		if f := s.repl.follower; f != nil {
			return f.lagRecords()
		}
	}
	return 0
}

func (s *Server) registerReplMetrics(reg *obs.Registry) {
	reg.GaugeFunc("server_role", "replication role (0 standalone, 1 primary, 2 replica)",
		func() int64 { return int64(s.repl.role.Load()) })
	reg.CounterFunc("server_promotions_total", "replica-to-primary promotions",
		func() uint64 { return s.repl.promotions.Load() })
	reg.GaugeFunc("server_repl_lag_records", "replication lag in log records",
		func() int64 { return int64(s.replLagRecords()) })
	reg.GaugeFunc("server_repl_lag_bytes", "replication lag in log bytes",
		func() int64 { return int64(s.replLagRecords() * repl.RecordSize) })
	reg.CounterFunc("server_repl_shipped_total", "log records served to replica pulls",
		func() uint64 { return s.repl.shipped.Load() })
	reg.CounterFunc("server_repl_applied_total", "log records applied from the replication feed",
		func() uint64 {
			var sum uint64
			for _, sh := range s.shards {
				sum += sh.replApplied.Load()
			}
			return sum
		})
	reg.GaugeFunc("server_repl_held_acks", "write acks parked awaiting replica ack",
		func() int64 {
			var sum int64
			for _, sh := range s.shards {
				if sh.waiter != nil {
					sum += int64(sh.waiter.count())
				}
			}
			return sum
		})
	reg.CounterFunc("server_repl_degraded_acks_total", "writes acked without replica coverage",
		func() uint64 {
			var sum uint64
			for _, sh := range s.shards {
				sum += sh.degradedAcks.Load()
			}
			return sum
		})
	reg.GaugeFunc("server_write_fenced", "1 while a primary refuses writes because its replica went silent past FenceAfter",
		func() int64 {
			if s.repl.role.Load() == RolePrimary && s.writeFenced() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("server_repl_fenced_writes_total", "writes refused by primary self-fencing",
		func() uint64 {
			var sum uint64
			for _, sh := range s.shards {
				sum += sh.fencedWrites.Load()
			}
			return sum
		})
	reg.CounterFunc("server_repl_timeout_acks_total", "held write acks expired by the sweeper",
		func() uint64 {
			var sum uint64
			for _, sh := range s.shards {
				if sh.waiter != nil {
					sum += sh.waiter.timeouts()
				}
			}
			return sum
		})
	if f := s.repl.follower; f != nil {
		reg.CounterFunc("server_follower_pulls_total", "replication pull round-trips issued",
			func() uint64 { return f.pulls.Load() })
		reg.CounterFunc("server_follower_reconnects_total", "times the follower re-dialed its primary",
			func() uint64 { return f.reconnects.Load() })
		reg.CounterFunc("server_follower_divergences_total", "apply batches refused for log gaps or divergence",
			func() uint64 { return f.divergences.Load() })
		reg.CounterFunc("server_follower_reseeds_total", "diverged shards rebuilt from a primary snapshot",
			func() uint64 { return f.reseeds.Load() })
	}
}

// ---- Follower ------------------------------------------------------------

// errFollowerStopped aborts a round when the follower is told to stop.
var errFollowerStopped = errors.New("server: follower stopped")

// follower is the replica's pull loop: one goroutine that dials the
// primary and rounds over the shards in windows — pipelined OpReplicate
// pulls, ctlApply into the local shard workers, pipelined OpReplAck — then
// sleeps the poll interval when a round ships nothing. Connection loss
// re-dials with backoff; staying out of contact past promoteAfter (when
// set) promotes this server.
type follower struct {
	s            *Server
	addr         string
	dial         func(addr string) (net.Conn, error)
	poll         time.Duration
	batch        int
	window       int
	promoteAfter time.Duration
	clock        fault.Clock // lastContact stamps and the promotion window

	autoReseed bool

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	primarySeq  []atomic.Uint64 // per shard, from pull replies
	connected   atomic.Bool
	lastContact atomic.Int64 // UnixNano of the last successful exchange
	pulls       atomic.Uint64
	applies     atomic.Uint64
	reconnects  atomic.Uint64
	divergences atomic.Uint64
	reseeds     atomic.Uint64
	diverged    atomic.Bool // gates the one-time divergence log line
}

func newFollower(s *Server, cfg *Config) *follower {
	f := &follower{
		s:            s,
		addr:         cfg.FollowAddr,
		dial:         cfg.FollowDial,
		poll:         cfg.FollowPoll,
		batch:        cfg.ReplBatch,
		window:       cfg.ReplWindow,
		promoteAfter: cfg.PromoteAfter,
		clock:        fault.OrWall(cfg.Clock),
		autoReseed:   !cfg.NoAutoReseed,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		primarySeq:   make([]atomic.Uint64, len(s.shards)),
	}
	if f.dial == nil {
		f.dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, time.Second)
		}
	}
	f.lastContact.Store(f.clock.Now().UnixNano())
	return f
}

func (f *follower) signalStop() { f.stopOnce.Do(func() { close(f.stop) }) }

// Stop signals the follower and waits for its goroutine to exit.
func (f *follower) Stop() {
	f.signalStop()
	<-f.done
}

func (f *follower) touch() {
	f.lastContact.Store(f.clock.Now().UnixNano())
}

// lagRecords sums, per shard, how far the primary's newest seen sequence
// is ahead of the locally applied one.
func (f *follower) lagRecords() uint64 {
	var sum uint64
	for i := range f.primarySeq {
		p, a := f.primarySeq[i].Load(), f.s.shards[i].applied.Load()
		if p > a {
			sum += p - a
		}
	}
	return sum
}

// run is the follower goroutine: dial, pull rounds until the connection
// breaks or stop is signaled, re-dial. Promotion by silence: if the
// primary stays unreachable past promoteAfter, take over.
func (f *follower) run() {
	defer close(f.done)
	backoff := f.poll
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		conn, err := f.dial(f.addr)
		if err != nil {
			if f.maybePromote() {
				return
			}
			if !f.sleep(backoff) {
				return
			}
			if backoff < 200*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		backoff = f.poll
		f.connected.Store(true)
		c := NewClient(conn)
		c.SetTimeout(2 * time.Second)
		f.serveConn(c)
		f.connected.Store(false)
		c.Close()
		f.reconnects.Add(1)
		if f.maybePromote() {
			return
		}
	}
}

// serveConn runs pull rounds on one connection until it breaks or the
// follower stops.
func (f *follower) serveConn(c *Client) {
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		progress, err := f.round(c)
		if err != nil {
			return
		}
		if !progress && !f.sleep(f.poll) {
			return
		}
	}
}

// round pulls every shard once, in windows: pipeline up to window pulls,
// apply each shipped batch through the owning shard worker, then pipeline
// the acks. Returns whether anything shipped.
func (f *follower) round(c *Client) (progress bool, err error) {
	n := len(f.s.shards)
	for g := 0; g < n; g += f.window {
		end := g + f.window
		if end > n {
			end = n
		}
		p := c.Pipeline()
		for i := g; i < end; i++ {
			p.Pull(uint32(i), f.s.shards[i].applied.Load(), f.batch)
		}
		reps, err := p.Run()
		if err != nil {
			return progress, err
		}
		f.pulls.Add(uint64(end - g))
		f.touch()
		type ack struct {
			shard uint32
			seq   uint64
		}
		var acks []ack
		for idx := range reps {
			rep := &reps[idx]
			sh := f.s.shards[g+idx]
			if rep.Status != StatusOK {
				continue
			}
			f.primarySeq[g+idx].Store(rep.Seq)
			if len(rep.Recs) == 0 {
				continue
			}
			if base := rep.Recs[0].Seq; base > sh.applied.Load()+1 {
				// The primary's retained log starts past our cursor: it
				// truncated records we never durably applied. Durable-only
				// acking makes this unreachable from restarts, so it means
				// real divergence (e.g. the primary was re-seeded). Refuse
				// the batch — applying it would silently skip operations.
				f.divergences.Add(1)
				if f.diverged.CompareAndSwap(false, true) {
					f.s.logf("server: follower shard %d diverged from %s: primary ships from seq %d, applied is %d",
						g+idx, f.addr, base, sh.applied.Load())
					f.s.trigger(TriggerDivergence,
						fmt.Sprintf("follower shard %d: primary ships from seq %d, applied is %d",
							g+idx, base, sh.applied.Load()))
				}
				if f.autoReseed {
					// Rebuild the shard from a primary snapshot (the
					// migration transfer machinery) instead of waiting for
					// an operator.
					if err := f.reseed(c, g+idx, base); err != nil {
						f.s.logf("server: follower shard %d re-seed: %v", g+idx, err)
					} else {
						progress = true
					}
				}
				continue
			}
			resp := make(chan Reply, 1)
			select {
			case sh.queue <- &request{ctl: ctlApply, recs: rep.Recs, resp: resp}:
			case <-f.stop:
				return progress, errFollowerStopped
			}
			arep := <-resp
			if arep.Status != StatusOK {
				// Sequence gap or a worker mid-recovery: skip the ack; the
				// next round re-pulls from the shard's true applied sequence.
				f.divergences.Add(1)
				continue
			}
			f.applies.Add(uint64(len(rep.Recs)))
			progress = true
			acks = append(acks, ack{shard: uint32(g + idx), seq: arep.Seq})
		}
		if len(acks) > 0 {
			ap := c.Pipeline()
			for _, a := range acks {
				ap.ReplAck(a.shard, a.seq)
			}
			if _, err := ap.Run(); err != nil {
				return progress, err
			}
			f.touch()
		}
	}
	return progress, nil
}

// reseed rebuilds one diverged shard from a primary snapshot, reusing the
// migration transfer machinery (OpMigSnapshot with SlotAll — replicas
// mirror the primary shard for shard, so the snapshot reads the same
// shard index). The shard is wiped with its sequence space restarted at
// base-1, the primary's live pairs are bulk-copied in unlogged chunks,
// and a checkpoint seals the rebuilt state; the next round's pull resumes
// contiguously at base. Chunks are unlogged, so a worker crash or restart
// mid-transfer rolls part of the copy back — the generation check redoes
// the whole wipe+copy until it completes within one incarnation. (A real
// process death between the last chunk and the checkpoint would replay
// pulls over a partially empty store; that window is documented in
// DESIGN.md §12 as future work.)
func (f *follower) reseed(c *Client, si int, base uint64) error {
	sh := f.s.shards[si]
	watermark := base - 1
	const attempts = 3
	for attempt := 1; attempt <= attempts; attempt++ {
		gen := sh.restarts.Load() + sh.crashes.Load()
		if err := f.shardCtl(sh, &request{ctl: ctlReseedBegin, value: watermark}); err != nil {
			return err
		}
		cursor := uint64(0)
		copied := 0
		for {
			done, next, pairs, err := c.MigSnapshot(uint32(si), SlotAll, cursor, MaxScanLimit)
			if err != nil {
				return err
			}
			if err := f.shardCtl(sh, &request{ctl: ctlReseedChunk, recs: pairsToRecords(pairs)}); err != nil {
				return err
			}
			copied += len(pairs)
			if done {
				break
			}
			cursor = next
		}
		if sh.restarts.Load()+sh.crashes.Load() != gen {
			continue // the worker recovered mid-transfer and rolled chunks back
		}
		if err := f.shardCtl(sh, &request{ctl: ctlCheckpoint}); err != nil {
			return err
		}
		f.reseeds.Add(1)
		f.diverged.Store(false)
		f.s.logf("server: follower shard %d re-seeded from %s: %d pairs, sequence resumes at %d",
			si, f.addr, copied, base)
		f.s.trigger(TriggerReseed,
			fmt.Sprintf("follower shard %d re-seeded: %d pairs, sequence resumes at %d", si, copied, base))
		return nil
	}
	return fmt.Errorf("server: shard %d re-seed kept racing worker recoveries (%d attempts)", si, attempts)
}

// shardCtl submits one control request to a shard queue and waits for OK,
// aborting if the follower is told to stop.
func (f *follower) shardCtl(sh *shard, req *request) error {
	req.resp = make(chan Reply, 1)
	select {
	case sh.queue <- req:
	case <-f.stop:
		return errFollowerStopped
	}
	if rep := <-req.resp; rep.Status != StatusOK {
		return fmt.Errorf("server: reseed control %d: status %d", req.ctl, rep.Status)
	}
	return nil
}

// sleep waits d unless stop fires first; reports whether to keep running.
func (f *follower) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.stop:
		return false
	case <-t.C:
		return true
	}
}

// maybePromote promotes this server if the primary has been out of
// contact past promoteAfter. Returns true when the follower should exit.
func (f *follower) maybePromote() bool {
	select {
	case <-f.stop:
		return true
	default:
	}
	if f.promoteAfter <= 0 {
		return false
	}
	lc := time.Unix(0, f.lastContact.Load())
	silent := f.clock.Now().Sub(lc)
	if silent < f.promoteAfter {
		return false
	}
	f.s.logf("server: primary %s silent for %v; promoting", f.addr, silent.Round(time.Millisecond))
	_ = f.s.Promote() // Promote signals our stop
	return true
}

// FollowerStats is the replica's follower block of a STATS reply.
type FollowerStats struct {
	Connected     bool   `json:"connected"`
	Pulls         uint64 `json:"pulls"`
	Applied       uint64 `json:"applied"`
	Reconnects    uint64 `json:"reconnects"`
	Divergences   uint64 `json:"divergences"`
	Reseeds       uint64 `json:"reseeds"`
	LagRecords    uint64 `json:"lag_records"`
	LagBytes      uint64 `json:"lag_bytes"`
	LastContactMS int64  `json:"last_contact_ms"`
}

func (f *follower) stats() *FollowerStats {
	lag := f.lagRecords()
	return &FollowerStats{
		Connected:     f.connected.Load(),
		Pulls:         f.pulls.Load(),
		Applied:       f.applies.Load(),
		Reconnects:    f.reconnects.Load(),
		Divergences:   f.divergences.Load(),
		Reseeds:       f.reseeds.Load(),
		LagRecords:    lag,
		LagBytes:      lag * repl.RecordSize,
		LastContactMS: f.clock.Now().Sub(time.Unix(0, f.lastContact.Load())).Milliseconds(),
	}
}
