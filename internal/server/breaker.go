package server

import (
	"sync/atomic"
	"time"

	"nvref/internal/fault"
)

// Circuit-breaker states. The breaker guards one shard's queue: while the
// shard is recovering or wedged the breaker is open and admission fails
// fast with StatusUnavailable instead of queueing work the shard cannot
// serve. After the cooldown one probe request is let through (half-open);
// the worker closes the breaker when it serves any request, and a shed
// probe re-opens it.
const (
	brClosed int32 = iota
	brOpen
	brHalfOpen
)

func breakerStateName(s int32) string {
	switch s {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-shard circuit breaker. All fields are atomics: Allow is
// called on every dispatch, ForceOpen/Reset from the supervisor and
// watchdog, and the worker resets it after serving — none of them may
// block another.
type breaker struct {
	state    atomic.Int32
	openedNS atomic.Int64 // when the breaker last opened (UnixNano)
	cooldown time.Duration
	clock    fault.Clock
	opens    atomic.Uint64
}

func newBreaker(cooldown time.Duration, clock fault.Clock) *breaker {
	return &breaker{cooldown: cooldown, clock: fault.OrWall(clock)}
}

// Allow reports whether a request may be admitted to the shard queue.
// While open it fails until the cooldown has elapsed, then transitions to
// half-open and admits exactly one probe per transition.
func (b *breaker) Allow() bool {
	switch b.state.Load() {
	case brClosed:
		return true
	case brOpen:
		if b.cooldown > 0 && b.clock.Now().Sub(time.Unix(0, b.openedNS.Load())) >= b.cooldown {
			// The CAS winner carries the probe; losers stay refused.
			return b.state.CompareAndSwap(brOpen, brHalfOpen)
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// ForceOpen trips the breaker (recovery in flight, or the watchdog
// declared the worker wedged) and restamps the cooldown clock.
func (b *breaker) ForceOpen() {
	b.openedNS.Store(b.clock.Now().UnixNano())
	if b.state.Swap(brOpen) != brOpen {
		b.opens.Add(1)
	}
}

// Reset closes the breaker (the shard served a request, or recovery
// completed).
func (b *breaker) Reset() { b.state.Store(brClosed) }

// State returns the current state for metrics and stats.
func (b *breaker) State() int32 { return b.state.Load() }

// Opens returns how many times the breaker has tripped.
func (b *breaker) Opens() uint64 { return b.opens.Load() }
