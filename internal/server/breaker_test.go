package server

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(20*time.Millisecond, nil)
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
	if b.State() != brClosed || breakerStateName(b.State()) != "closed" {
		t.Fatalf("fresh breaker state = %s", breakerStateName(b.State()))
	}

	b.ForceOpen()
	if b.State() != brOpen || b.Opens() != 1 {
		t.Fatalf("after ForceOpen: state=%s opens=%d", breakerStateName(b.State()), b.Opens())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	// Re-tripping an already-open breaker must not double-count.
	b.ForceOpen()
	if b.Opens() != 1 {
		t.Fatalf("re-trip counted: opens=%d", b.Opens())
	}

	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State() != brHalfOpen {
		t.Fatalf("after probe admission: state=%s, want half-open", breakerStateName(b.State()))
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}

	b.Reset()
	if b.State() != brClosed || !b.Allow() {
		t.Fatal("reset breaker must be closed and admitting")
	}

	// A failed probe re-opens and restarts the cooldown clock.
	b.ForceOpen()
	time.Sleep(25 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.ForceOpen()
	if b.Opens() != 3 {
		t.Fatalf("opens=%d, want 3", b.Opens())
	}
	if b.Allow() {
		t.Fatal("freshly re-opened breaker admitted immediately")
	}
}

func TestBreakerProbeSingleWinner(t *testing.T) {
	b := newBreaker(time.Millisecond, nil)
	b.ForceOpen()
	time.Sleep(5 * time.Millisecond)
	// Many concurrent Allow calls after cooldown: exactly one probe.
	const callers = 16
	results := make(chan bool, callers)
	for i := 0; i < callers; i++ {
		go func() { results <- b.Allow() }()
	}
	admitted := 0
	for i := 0; i < callers; i++ {
		if <-results {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", admitted)
	}
}
