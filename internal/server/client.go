package server

import (
	"bufio"
	"encoding/json"
	"net"
	"time"

	"nvref/internal/cluster"
	"nvref/internal/obs"
	"nvref/internal/repl"
)

// Client is a synchronous nvserved client over one TCP connection. It is
// not safe for concurrent use; open one Client per goroutine (as the
// closed-loop load generator does), or use Pipeline to keep many requests
// in flight on a single connection.
//
// By default every network operation carries an I/O deadline (DefaultTimeout)
// so a dead peer fails the call instead of hanging it forever; tune it with
// SetTimeout. For fail-fast behavior on the server side too, SetTTL attaches
// a deadline envelope to every request.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	buf     []byte
	timeout time.Duration
	ttl     uint32
	sampler *traceSampler
	spans   *obs.SpanRecorder
}

// DefaultTimeout is the I/O deadline applied to each send and receive
// unless SetTimeout overrides it.
const DefaultTimeout = 30 * time.Second

// Dial connects to an nvserved instance.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (use it to interpose fault
// injectors or custom transports).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		timeout: DefaultTimeout,
	}
}

// SetTimeout sets the per-operation I/O deadline (0 disables deadlines —
// the pre-resilience behavior of blocking forever on a dead peer).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// SetTTL attaches a deadline envelope of ttlMS milliseconds to every
// subsequent request (0 removes it): the server answers StatusDeadline
// instead of executing an operation still queued past its budget.
func (c *Client) SetTTL(ttlMS uint32) { c.ttl = ttlMS }

// SetTraceSample makes the client attach a sampled trace envelope to
// roughly rate (in (0, 1]) of subsequent requests that do not already
// carry one; rate <= 0 disables client-side sampling. The seed spreads
// trace IDs across clients so concurrent workers never collide.
func (c *Client) SetTraceSample(rate float64, seed uint64) {
	c.sampler = newTraceSampler(rate, seed)
}

// SetSpanRecorder attaches a recorder for client_send spans of sampled
// requests (nil disables client-side span recording; the envelope is
// still sent, so server-side spans keep their trace ID).
func (c *Client) SetSpanRecorder(r *obs.SpanRecorder) { c.spans = r }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) stamp(req *Request) *Request {
	if c.ttl > 0 && req.TTLms == 0 {
		req.TTLms = c.ttl
	}
	if req.Trace == 0 && c.sampler != nil {
		if id, ok := c.sampler.next(); ok {
			req.Trace, req.Sampled = id, true
		}
	}
	return req
}

func (c *Client) send(req *Request) error {
	var start time.Time
	traced := req.Sampled && c.spans != nil
	if traced {
		start = time.Now()
	}
	body, err := AppendRequest(c.buf[:0], req)
	if err != nil {
		return err
	}
	c.buf = body[:0]
	if c.timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return err
		}
	}
	if err := WriteFrame(c.bw, body); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if traced {
		c.spans.RecordTimed(req.Trace, StageClientSend, -1, opName(req.Op), req.Key, start, time.Since(start))
	}
	return nil
}

func (c *Client) recv(req *Request) (*Reply, error) {
	if c.timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
	}
	body, err := ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	rep, err := DecodeReply(req, body)
	if err != nil {
		return nil, err
	}
	return rep, rep.Err()
}

func (c *Client) roundTrip(req *Request) (*Reply, error) {
	if err := c.send(c.stamp(req)); err != nil {
		return nil, err
	}
	return c.recv(req)
}

// Do sends an arbitrary request and waits for its reply — the escape
// hatch for callers that need full control of the envelope fields (an
// explicit trace ID, a gate plus a deadline, a hand-built batch).
func (c *Client) Do(req *Request) (*Reply, error) { return c.roundTrip(req) }

// Get reads a key.
func (c *Client) Get(key uint64) (uint64, bool, error) {
	rep, err := c.roundTrip(&Request{Op: OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return rep.Value, rep.Found, nil
}

// Put inserts or updates a key.
func (c *Client) Put(key, value uint64) error {
	_, err := c.roundTrip(&Request{Op: OpPut, Key: key, Value: value})
	return err
}

// PutSeq is Put returning the serving shard and the operation-log
// sequence number it assigned (both zero on a standalone server) — the
// read-your-writes token a client stamps later GETs with.
func (c *Client) PutSeq(key, value uint64) (shard uint32, seq uint64, err error) {
	rep, err := c.roundTrip(&Request{Op: OpPut, Key: key, Value: value})
	if err != nil {
		return 0, 0, err
	}
	return rep.Shard, rep.Seq, nil
}

// GetAt reads a key with a read-your-writes token: a server whose applied
// sequence for the key's shard is behind gate answers ErrLagging instead
// of a stale value. gate 0 is a plain Get.
func (c *Client) GetAt(key, gate uint64) (uint64, bool, error) {
	rep, err := c.roundTrip(&Request{Op: OpGet, Key: key, Gate: gate})
	if err != nil {
		return 0, false, err
	}
	return rep.Value, rep.Found, nil
}

// Pull fetches up to max operation-log records of one shard after
// sequence number `after`, plus the shard's newest logged sequence — the
// log-shipping read a follower drives.
func (c *Client) Pull(shard uint32, after uint64, max int) (last uint64, recs []repl.Record, err error) {
	rep, err := c.roundTrip(&Request{Op: OpReplicate, Shard: shard, Seq: after, Limit: max})
	if err != nil {
		return 0, nil, err
	}
	return rep.Seq, rep.Recs, nil
}

// ReplAck tells a primary that every record of the shard up to seq is
// applied and logged on this replica; the primary releases held write
// acks and may truncate its log through seq.
func (c *Client) ReplAck(shard uint32, seq uint64) error {
	_, err := c.roundTrip(&Request{Op: OpReplAck, Shard: shard, Seq: seq})
	return err
}

// ClusterMap fetches the node's current cluster map image (decode with
// cluster.Decode). A node with no map answers ErrBadRequest-class status.
func (c *Client) ClusterMap() ([]byte, error) {
	rep, err := c.roundTrip(&Request{Op: OpClusterMap})
	if err != nil {
		return nil, err
	}
	return rep.Blob, nil
}

// MapUpdate installs a cluster map on the node; a map at or below the
// node's current epoch answers ErrWrongEpoch.
func (c *Client) MapUpdate(m *cluster.Map) error {
	_, err := c.roundTrip(&Request{Op: OpMapUpdate, Blob: m.Encode()})
	return err
}

// MigSnapshot reads one bulk-transfer chunk: up to max live pairs of the
// shard from the key cursor, filtered to the cluster slot (SlotAll: no
// filter). done means the shard is exhausted; otherwise resume from next.
func (c *Client) MigSnapshot(shard, slot uint32, cursor uint64, max int) (done bool, next uint64, pairs []KV, err error) {
	rep, err := c.roundTrip(&Request{Op: OpMigSnapshot, Shard: shard, Slot: slot, Key: cursor, Limit: max})
	if err != nil {
		return false, 0, nil, err
	}
	return rep.Found, rep.Seq, rep.Pairs, nil
}

// MigPull reads up to max durable log records of the shard after the
// cursor, filtered to the cluster slot. through is the highest sequence
// examined (the next cursor), last the shard's newest logged sequence;
// contiguous=false means the log truncated past the cursor and the
// caller must restart from a snapshot.
func (c *Client) MigPull(shard, slot uint32, after uint64, max int) (contiguous bool, through, last uint64, recs []repl.Record, err error) {
	rep, err := c.roundTrip(&Request{Op: OpMigPull, Shard: shard, Slot: slot, Seq: after, Limit: max})
	if err != nil {
		return false, 0, 0, nil, err
	}
	return rep.Found, rep.Seq, rep.Value, rep.Recs, nil
}

// MigFence fences one cluster slot on its owner toward the acceptor
// address and returns the per-shard fence sequences the final catch-up
// must reach.
func (c *Client) MigFence(slot uint32, acceptor string) ([]uint64, error) {
	rep, err := c.roundTrip(&Request{Op: OpMigFence, Slot: slot, Addr: acceptor})
	if err != nil {
		return nil, err
	}
	return rep.Seqs, nil
}

// Delete removes a key, reporting whether it was present.
func (c *Client) Delete(key uint64) (bool, error) {
	rep, err := c.roundTrip(&Request{Op: OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	return rep.Found, nil
}

// Scan reads up to limit pairs in ascending key order starting at the
// smallest key >= start, merged across every shard.
func (c *Client) Scan(start uint64, limit int) ([]KV, error) {
	rep, err := c.roundTrip(&Request{Op: OpScan, Key: start, Limit: limit})
	if err != nil {
		return nil, err
	}
	return rep.Pairs, nil
}

// Batch executes the sub-requests as one frame; the server scatters them
// to their shards and gathers replies back into request order.
func (c *Client) Batch(sub []Request) ([]Reply, error) {
	req := &Request{Op: OpBatch, Sub: sub}
	rep, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	return rep.Sub, nil
}

// Stats fetches the server's statistics document.
func (c *Client) Stats() (*Stats, error) {
	rep, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	var st Stats
	if err := json.Unmarshal(rep.Blob, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Checkpoint forces a synchronous durability barrier on every shard.
func (c *Client) Checkpoint() error {
	_, err := c.roundTrip(&Request{Op: OpCheckpoint})
	return err
}

// Pipeline queues requests without waiting for replies; Run flushes them
// as a burst of frames and reads the replies in order. This exercises the
// protocol's pipelining: many requests in flight on one connection.
type Pipeline struct {
	c    *Client
	reqs []*Request
	err  error
}

// Pipeline starts an empty pipeline on the connection.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

func (p *Pipeline) add(req *Request) {
	if p.err != nil {
		return
	}
	req = p.c.stamp(req)
	var start time.Time
	traced := req.Sampled && p.c.spans != nil
	if traced {
		start = time.Now()
	}
	body, err := AppendRequest(nil, req)
	if err != nil {
		p.err = err
		return
	}
	if err := WriteFrame(p.c.bw, body); err != nil {
		p.err = err
		return
	}
	if traced {
		// Covers encode + the buffered write; the shared flush in Run is
		// not attributable to any single pipelined request.
		p.c.spans.RecordTimed(req.Trace, StageClientSend, -1, opName(req.Op), req.Key, start, time.Since(start))
	}
	p.reqs = append(p.reqs, req)
}

// Get queues a GET.
func (p *Pipeline) Get(key uint64) { p.add(&Request{Op: OpGet, Key: key}) }

// Put queues a PUT.
func (p *Pipeline) Put(key, value uint64) { p.add(&Request{Op: OpPut, Key: key, Value: value}) }

// Delete queues a DELETE.
func (p *Pipeline) Delete(key uint64) { p.add(&Request{Op: OpDelete, Key: key}) }

// Scan queues a SCAN.
func (p *Pipeline) Scan(start uint64, limit int) {
	p.add(&Request{Op: OpScan, Key: start, Limit: limit})
}

// Pull queues a replication pull (the follower pipelines one per shard in
// its in-flight window).
func (p *Pipeline) Pull(shard uint32, after uint64, max int) {
	p.add(&Request{Op: OpReplicate, Shard: shard, Seq: after, Limit: max})
}

// ReplAck queues a replication acknowledgment.
func (p *Pipeline) ReplAck(shard uint32, seq uint64) {
	p.add(&Request{Op: OpReplAck, Shard: shard, Seq: seq})
}

// Run flushes the queued frames and collects every reply, in order.
func (p *Pipeline) Run() ([]Reply, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.c.timeout > 0 {
		if err := p.c.conn.SetWriteDeadline(time.Now().Add(p.c.timeout)); err != nil {
			return nil, err
		}
	}
	if err := p.c.bw.Flush(); err != nil {
		return nil, err
	}
	out := make([]Reply, 0, len(p.reqs))
	for _, req := range p.reqs {
		rep, err := p.c.recv(req)
		if err != nil {
			return nil, err
		}
		out = append(out, *rep)
	}
	p.reqs = p.reqs[:0]
	return out, nil
}
