package server

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"nvref/internal/cluster"
	"nvref/internal/fault"
	"nvref/internal/kvstore"
	"nvref/internal/obs"
	"nvref/internal/parity"
	"nvref/internal/pmem"
	"nvref/internal/repl"
	"nvref/internal/rt"
	"nvref/internal/structures"
)

// CrashPointOp is the fault crash point each shard worker evaluates before
// every data operation. Arm a per-shard fault.Scheduler (Config.Sched) to
// make the shard lose power there and recover from its last checkpoint
// while the other shards keep serving.
const CrashPointOp = "server.shard.op"

var siteShardRoot = rt.NewSite("server.shard.root", false)

// Shard supervision states, published in the state atomic for the
// watchdog, the scrubber, metrics, and STATS.
const (
	stateHealthy int32 = iota
	// stateRecovering: the worker panicked and the supervisor is running
	// fsck/repair recovery; the breaker is open.
	stateRecovering
	// stateWedged: the watchdog saw queued work but no heartbeat for
	// longer than the wedge timeout; the breaker is open until the worker
	// makes progress again.
	stateWedged
)

func shardStateName(s int32) string {
	switch s {
	case stateRecovering:
		return "recovering"
	case stateWedged:
		return "wedged"
	default:
		return "healthy"
	}
}

// Control request kinds (zero means a data request).
const (
	ctlCheckpoint byte = iota + 1
	ctlCrash
	// ctlPanic makes the worker panic — the injected software crash the
	// supervisor must catch, repair, and restart from.
	ctlPanic
	// ctlWedge makes the worker sleep, simulating a wedged shard the
	// heartbeat watchdog must detect.
	ctlWedge
	// ctlScrub runs an online fsck of the shard's pool (the Pangolin-style
	// background scrub), repairing any crash residue it finds.
	ctlScrub
	// ctlApply replays shipped log records into a replica shard: log each
	// record (AppendAt), apply it to the store, advance the applied
	// sequence, and flush the log image so the returned ack sequence is
	// durable — the replica apply loop's worker half.
	ctlApply
	// ctlSnapshot serves one OpMigSnapshot chunk: scan live pairs from the
	// key cursor in req.key, filtered to cluster slot req.slot (SlotAll:
	// no filter), up to req.limit pairs — the donor half of migration and
	// the primary half of a replica re-seed.
	ctlSnapshot
	// ctlIngest applies transferred records as fresh local writes: each is
	// re-logged under this shard's own sequence space (migrated keys hash
	// onto the acceptor's shards independently of the donor's) — the
	// acceptor half of migration.
	ctlIngest
	// ctlBarrier is a no-op the fence path uses to drain the worker: once
	// it answers, every data operation admitted before the fence flag was
	// set has fully executed (the worker is the serializer).
	ctlBarrier
	// ctlPurge deletes every live key of cluster slot req.slot (req.slots
	// wide) through the normal logged delete path — the donor reclaiming a
	// migrated slot after handover.
	ctlPurge
	// ctlReseedBegin wipes the shard for a replica re-seed: delete every
	// live pair without logging, reset the op log's sequence space to
	// req.value (the snapshot watermark), and checkpoint so recovery
	// cannot resurrect the pre-reseed state.
	ctlReseedBegin
	// ctlReseedChunk applies one snapshot chunk of a re-seed: store writes
	// only, no logging — the records' sequences belong to the primary's
	// log and are accounted for by the ResetTo watermark.
	ctlReseedChunk
)

// errWorkerKilled is the payload of an injected worker panic.
var errWorkerKilled = errors.New("server: injected worker panic")

// request is one unit of work on a shard queue. Exactly one response is
// delivered on resp.
type request struct {
	op         byte
	key, value uint64
	limit      int
	gate       uint64 // seq-gate read-your-writes token (GET only)
	ctl        byte
	wedge      time.Duration // ctlWedge only
	recs       []repl.Record // ctlApply, ctlIngest, ctlReseedChunk
	// slot/slots scope the migration ctl ops (ctlSnapshot, ctlPurge):
	// the cluster slot to filter for and the map's slot count. SlotAll
	// disables the filter (the re-seed path).
	slot  uint32
	slots int
	// trace is the effective trace ID (client envelope or server-sampled);
	// sampled asks the worker to record per-stage spans under it. The reply
	// echo is handled at the connection writer, keyed on the wire envelope.
	trace    uint64
	sampled  bool
	start    time.Time
	deadline time.Time // zero means no deadline
	resp     chan Reply
}

// shardConfig parameterizes one engine shard.
type shardConfig struct {
	id              int
	mode            rt.Mode
	store           pmem.Store // nil disables persistence (and crash recovery)
	poolSize        uint64
	queueDepth      int
	checkpointEvery int
	admitWait       time.Duration   // max bounded-queue wait before SHED
	sched           fault.Scheduler // per-shard; evaluated at CrashPointOp
	clock           fault.Clock     // deadline checks and held-ack expiry
	latency         *obs.Histogram  // queue+service latency, microseconds
	logf            func(format string, args ...any)

	// Media-fault layer (parity.Enabled arms it): the shard's pool images
	// carry parity sidecars, the background scrub verifies and repairs
	// stored images, and recovery heals corrupt images on open.
	parity        parity.Policy
	repairLatency *obs.Histogram // media-repair pass latency, microseconds

	// Tracing plane (all nil/zero when tracing is not configured).
	spans   *obs.SpanRecorder         // per-stage spans of sampled requests
	flight  *obs.FlightRecorder       // wide events (slow ops) + incident dumps
	slowOp  time.Duration             // ops slower than this emit a wide event
	trigger func(kind, detail string) // flight-recorder trigger hook

	// Replication plumbing (all nil/zero on a standalone server).
	oplog       *repl.Log     // per-shard operation log; nil disables replication
	role        *atomic.Int32 // the server's role (RoleStandalone/Primary/Replica)
	replicaLive func() bool   // primary: a replica pulled recently
	fenced      func() bool   // primary: self-fenced after replica silence
	ackTimeout  time.Duration // primary: how long a write ack may wait for replica ack

	// owns, when non-nil, is the cluster ownership check the worker runs
	// on every data operation: a key whose slot this node does not own
	// (or has fenced for handover) is refused with StatusMoved toward the
	// returned address. Running it on the worker — not at dispatch — is
	// what makes the fence barrier sound: after ctlBarrier drains the
	// queue, no pre-fence write can still be in flight.
	owns func(key uint64) (moved bool, epoch uint64, addr string)
}

// shard is one engine shard: a single worker goroutine owns the simulation
// context, index, and store, and consumes the bounded queue. The worker
// runs under a supervisor (supervise) that catches panics, repairs the
// pool, and restarts the worker in place. All other goroutines communicate
// through the queue and the published atomics.
type shard struct {
	cfg     shardConfig
	queue   chan *request
	done    chan struct{}
	breaker *breaker

	// Worker-owned engine state. Never touched outside the worker, open()
	// (which runs before the worker starts), and the supervisor (which
	// runs only while the worker goroutine's loop is not executing).
	ctx       *rt.Context
	st        *kvstore.Store
	rb        *structures.RB
	sinceCkpt int
	pending   []*request // batch being processed; supervisor fails the rest on panic
	pendIdx   int

	// Published state, read by metrics collectors and STATS.
	state                          atomic.Int32
	heartbeat                      atomic.Int64 // UnixNano of last worker progress
	ops, gets, puts, dels, scans   atomic.Uint64
	crashes, recoveries            atomic.Uint64
	panics, restarts, salvages     atomic.Uint64
	rollbacks, wedges              atomic.Uint64
	sheds, unavail, deadlineDrops  atomic.Uint64
	scrubs, scrubIssues            atomic.Uint64
	checkpoints                    atomic.Uint64
	fsckErrors, fsckWarns, repairs atomic.Uint64

	// Media-fault counters (only move when cfg.parity.Enabled).
	mediaScrubs        atomic.Uint64 // media scrub passes over stored images
	pagesRepaired      atomic.Uint64 // data pages reconstructed from parity
	parityRebuilds     atomic.Uint64 // parity sidecars (re)built
	mediaUnrecoverable atomic.Uint64 // rangelets with damage beyond parity's reach
	parityPages        atomic.Uint64 // parity pages currently maintained (gauge)
	cycles, keys       atomic.Uint64
	queueHighWater     atomic.Uint64

	// Replication state (only meaningful when cfg.oplog != nil).
	waiter          *ackWaiter    // primary: write acks held for replica ack
	applied         atomic.Uint64 // newest log sequence applied to the store
	replAck         atomic.Uint64 // primary: newest sequence the replica acked
	degradedAcks    atomic.Uint64 // writes acked without replica coverage
	replApplied     atomic.Uint64 // records applied from the replication feed
	replDups        atomic.Uint64 // already-applied records skipped by ctlApply
	replGaps        atomic.Uint64 // out-of-order apply batches refused
	replayed        atomic.Uint64 // records replayed from the log at open
	laggingReads    atomic.Uint64 // GETs refused because the gate token was ahead
	readOnlyRejects atomic.Uint64 // writes refused while serving as replica
	fencedWrites    atomic.Uint64 // primary writes refused while self-fenced
	slowOps         atomic.Uint64 // ops that exceeded the slow-op threshold
	moved           atomic.Uint64 // ops refused with StatusMoved (cluster redirect)
	ingested        atomic.Uint64 // records applied by migration ingest
	purged          atomic.Uint64 // keys deleted reclaiming migrated slots
	reseedKeys      atomic.Uint64 // pairs installed by replica re-seed chunks

	// abort, when true at drain time, suppresses the final checkpoint —
	// the simulated kill -9 path.
	abort atomic.Bool
}

func newShard(cfg shardConfig, br *breaker) (*shard, error) {
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 128
	}
	cfg.clock = fault.OrWall(cfg.clock)
	sh := &shard{
		cfg:     cfg,
		queue:   make(chan *request, cfg.queueDepth),
		done:    make(chan struct{}),
		breaker: br,
	}
	if cfg.oplog != nil {
		sh.waiter = newAckWaiter(&sh.replAck, cfg.ackTimeout, cfg.clock, cfg.spans, cfg.id)
	}
	sh.beat()
	if err := sh.open(); err != nil {
		return nil, fmt.Errorf("server: shard %d: %w", cfg.id, err)
	}
	return sh, nil
}

func (sh *shard) logf(format string, args ...any) {
	if sh.cfg.logf != nil {
		sh.cfg.logf(format, args...)
	}
}

// open builds the engine over the shard's store. When the store already
// holds a pool image from a previous incarnation (a prior process, or this
// shard before a crash), the pool is reopened, fsck-checked (repairing if
// needed), and the index is re-seated on the persisted root.
func (sh *shard) open() error {
	ctx, err := rt.New(rt.Config{Mode: sh.cfg.mode, Store: sh.cfg.store, PoolSize: sh.cfg.poolSize, Parity: sh.cfg.parity})
	if err != nil {
		return err
	}
	if n := ctx.Reg.Stats.PagesRepaired; n > 0 {
		// The load path healed a corrupt image from parity on the way up:
		// the media fault is already fixed, account and leave a trail.
		sh.pagesRepaired.Add(n)
		if sh.cfg.trigger != nil {
			sh.cfg.trigger(TriggerMediaRepair,
				fmt.Sprintf("shard %d reconstructed %d page(s) from parity during recovery", sh.cfg.id, n))
		}
		sh.logf("server: shard %d: repaired %d corrupt page(s) from parity on open", sh.cfg.id, n)
	}
	rep := pmem.Fsck(ctx.Pool)
	for _, issue := range rep.Issues {
		if issue.Severity == pmem.FsckError {
			sh.fsckErrors.Add(1)
		} else {
			sh.fsckWarns.Add(1)
		}
	}
	if !rep.Consistent() {
		if _, err := pmem.Repair(ctx.Pool); err != nil {
			return fmt.Errorf("repair: %w", err)
		}
		sh.repairs.Add(1)
	}
	st := kvstore.New(ctx, func(c *rt.Context) structures.Index { return structures.NewRB(c) })
	rb := st.Index().(*structures.RB)
	if root := ctx.Root(siteShardRoot); !ctx.IsNull(root) {
		// Re-seat the tree, then count keys with one full scan (the pool
		// root records only the reference, not the cardinality).
		rb.SetRootRef(root, 0)
		n := rb.Scan(0, math.MaxInt32, func(k, v uint64) {})
		rb.SetRootRef(root, uint64(n))
	}
	sh.ctx, sh.st, sh.rb = ctx, st, rb
	sh.sinceCkpt = 0
	if sh.cfg.oplog != nil {
		if err := sh.replayOplog(); err != nil {
			return err
		}
	}
	sh.publish()
	return nil
}

// replayOplog reloads the shard's operation log and replays every retained
// record into the freshly opened store — the crash-recovery tail replay.
// The log is only truncated at checkpoints, so its base is never past the
// checkpoint the pool just reopened from; records the checkpoint already
// covers re-apply idempotently (each record's effect depends only on the
// record), and records past the checkpoint restore the logged-but-not-
// checkpointed suffix.
//
// Afterwards the applied sequence resumes at the reloaded log's newest
// sequence, which is the pre-crash durable watermark. On a primary that
// regression is safe: shipping is durable-only (Log.SinceDurable) and a
// write ack only releases on replica acknowledgment, so every sequence
// the replica has applied — and every replicated ack a client received —
// is at or below the watermark and survives the reload intact. Sequences
// above it were never shipped; re-assigning them to new writes cannot
// diverge the copies. The unflushed tail's own writes were either held
// (failed by the recovery path, clients retry) or degraded single-copy
// acks, the documented loss window. replAck therefore remains a valid
// lower bound across recovery; it is clamped only defensively.
func (sh *shard) replayOplog() error {
	if err := sh.cfg.oplog.Reload(); err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	recs := sh.cfg.oplog.Since(0, 0)
	for _, rec := range recs {
		switch rec.Op {
		case repl.RecPut:
			sh.st.Set(rec.Key, rec.Value)
		case repl.RecDelete:
			sh.st.Delete(rec.Key)
		}
	}
	sh.replayed.Add(uint64(len(recs)))
	sh.applied.Store(sh.cfg.oplog.LastSeq())
	if ra := sh.replAck.Load(); ra > sh.applied.Load() {
		// Unreachable while shipping stays durable-only; never let a stale
		// replica ack vouch for sequences the reloaded log does not hold.
		sh.replAck.Store(sh.applied.Load())
	}
	return nil
}

// publish copies the worker-owned counters the collectors export.
func (sh *shard) publish() {
	sh.cycles.Store(sh.ctx.CPU.Stats.Cycles)
	sh.keys.Store(sh.rb.Len())
	if sh.cfg.parity.Enabled {
		sh.parityPages.Store(sh.ctx.Reg.Stats.ParityPages)
	}
}

// beat records worker progress for the heartbeat watchdog.
func (sh *shard) beat() { sh.heartbeat.Store(time.Now().UnixNano()) }

// submit is the admission-controlled entry to the shard queue. It never
// blocks unboundedly: an open breaker answers UNAVAILABLE immediately, a
// full queue is waited on only up to admitWait (clamped to the request's
// own deadline), then the request is SHED. Every refused request still
// receives exactly one reply.
func (sh *shard) submit(r *request) {
	if !sh.breaker.Allow() {
		sh.unavail.Add(1)
		r.resp <- Reply{Status: StatusUnavailable}
		return
	}
	select {
	case sh.queue <- r:
		return
	default:
	}
	wait := sh.cfg.admitWait
	if !r.deadline.IsZero() {
		if d := r.deadline.Sub(sh.cfg.clock.Now()); d < wait {
			wait = d
		}
	}
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case sh.queue <- r:
			return
		case <-t.C:
		}
	}
	sh.sheds.Add(1)
	// A shed probe means the shard is still not serving: re-trip.
	if sh.breaker.State() == brHalfOpen {
		sh.breaker.ForceOpen()
	}
	r.resp <- Reply{Status: StatusShed}
}

// supervise is the shard's outer loop: run the worker until the queue
// closes, and any time the worker panics — an injected software crash, a
// fault-scheduler power cut, or a genuine bug — recover, repair the pool,
// and restart the worker in place while the rest of the server keeps
// serving.
func (sh *shard) supervise() {
	defer close(sh.done)
	for {
		crash := sh.runGuarded()
		if crash == nil {
			return // queue closed: normal shutdown (final checkpoint done)
		}
		sh.recoverWorker(crash)
	}
}

// runGuarded runs the worker loop, converting a panic into a return value
// for the supervisor. A nil return means the queue closed cleanly.
func (sh *shard) runGuarded() (crash any) {
	defer func() {
		if r := recover(); r != nil {
			crash = r
		}
	}()
	sh.run()
	return nil
}

// recoverWorker is the supervisor's repair path after a worker panic. A
// fault-scheduler crash (*fault.CrashPanic) models power loss: the shard
// rolls back to its last checkpoint. Any other panic is a software crash:
// the pool's contents survive, so the supervisor scrubs it (pmem.Fsck,
// pmem.Repair), verifies the index, and salvages the current state —
// acknowledged writes are preserved. If salvage fails the shard falls back
// to the power-loss rollback.
func (sh *shard) recoverWorker(crash any) {
	sh.panics.Add(1)
	sh.state.Store(stateRecovering)
	sh.breaker.ForceOpen()
	sh.failPending()
	if sh.waiter != nil {
		// Held write acks may reference state a rollback is about to erase;
		// fail them (UNAVAILABLE) so clients retry instead of trusting an
		// ack the recovered shard might not honor.
		sh.waiter.failHeld()
	}
	if c, isPower := fault.AsCrash(crash); isPower {
		sh.logf("shard %d: power lost at %s; rolling back to last checkpoint", sh.cfg.id, c.Label)
		sh.crashAndRecover()
	} else if sh.salvage() {
		sh.salvages.Add(1)
		sh.logf("shard %d: worker panic (%v); pool scrubbed clean, state salvaged", sh.cfg.id, crash)
	} else {
		sh.rollbacks.Add(1)
		sh.logf("shard %d: worker panic (%v); salvage failed, rolling back to last checkpoint", sh.cfg.id, crash)
		sh.crashAndRecover()
	}
	sh.beat()
	sh.restarts.Add(1)
	sh.state.Store(stateHealthy)
	sh.breaker.Reset()
	if sh.cfg.trigger != nil {
		sh.cfg.trigger(TriggerRestart, fmt.Sprintf("shard %d worker restarted after panic: %v", sh.cfg.id, crash))
	}
}

// failPending answers UNAVAILABLE on every request of the interrupted
// batch that never got a reply — including the in-flight one that took the
// panic. Sends are non-blocking: a request that somehow was answered
// already must not wedge the supervisor.
func (sh *shard) failPending() {
	for _, r := range sh.pending[sh.pendIdx:] {
		select {
		case r.resp <- Reply{Status: StatusUnavailable}:
			sh.unavail.Add(1)
		default:
		}
	}
	sh.pending = sh.pending[:0]
	sh.pendIdx = 0
}

// salvage recovers from a software crash without losing state: the mapped
// pool survived the panic, so scrub it, repair crash residue, sanity-check
// the index by walking it, and publish a salvage checkpoint so the backing
// store also reflects every acknowledged write. Any failure — structural
// corruption Repair refuses, an index walk that disagrees with the
// recorded cardinality, or a panic out of the walk itself — reports false
// and the caller rolls back instead.
func (sh *shard) salvage() (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	rep := pmem.Fsck(sh.ctx.Pool)
	sh.scrubIssues.Add(uint64(len(rep.Issues)))
	if !rep.Consistent() {
		if _, err := pmem.Repair(sh.ctx.Pool); err != nil {
			return false
		}
		sh.repairs.Add(1)
	}
	n := sh.rb.Scan(0, math.MaxInt32, func(k, v uint64) {})
	if uint64(n) != sh.rb.Len() {
		return false
	}
	if err := sh.checkpoint(); err != nil {
		return false
	}
	sh.publish()
	return true
}

// run is the worker loop: block for one request, then drain a small batch
// from the queue without blocking, process it, and publish once — queueing
// amortizes the checkpoint cadence and the metric publication. When the
// queue closes it drains the remainder and writes the final checkpoint
// (unless aborting), so a clean return means the shard is durable.
func (sh *shard) run() {
	const maxBatch = 64
	open := true
	for open {
		req, ok := <-sh.queue
		if !ok {
			break
		}
		sh.beat()
		sh.pending = append(sh.pending[:0], req)
	drain:
		for len(sh.pending) < maxBatch {
			select {
			case r, ok := <-sh.queue:
				if !ok {
					open = false
					break drain
				}
				sh.pending = append(sh.pending, r)
			default:
				break drain
			}
		}
		if hw := uint64(len(sh.pending) + len(sh.queue)); hw > sh.queueHighWater.Load() {
			sh.queueHighWater.Store(hw)
		}
		n := len(sh.pending)
		for i := 0; i < n; i++ {
			sh.pendIdx = i
			sh.handle(sh.pending[i])
			sh.beat()
			sh.heal()
		}
		sh.pending = sh.pending[:0]
		sh.pendIdx = 0
		sh.afterBatch(n)
	}
	// Drain whatever arrived between the last receive and queue close.
	for req := range sh.queue {
		sh.pending = append(sh.pending[:0], req)
		sh.pendIdx = 0
		sh.handle(req)
		sh.pending = sh.pending[:0]
	}
	if !sh.abort.Load() {
		_ = sh.checkpoint()
	}
	sh.publish()
}

// heal closes the breaker after genuine progress: a wedged shard that
// serves a request again is healthy, and a half-open probe that got served
// proves recovery.
func (sh *shard) heal() {
	if sh.state.Load() == stateWedged {
		sh.state.Store(stateHealthy)
		sh.logf("shard %d: worker resumed after wedge", sh.cfg.id)
	}
	if sh.breaker.State() != brClosed {
		sh.breaker.Reset()
	}
}

// handle executes one request and delivers its reply.
func (sh *shard) handle(req *request) {
	switch req.ctl {
	case ctlCheckpoint:
		if err := sh.checkpoint(); err != nil {
			req.resp <- Reply{Status: StatusInternal}
			return
		}
		req.resp <- Reply{Status: StatusOK}
		return
	case ctlCrash:
		sh.crashAndRecover()
		req.resp <- Reply{Status: StatusOK}
		return
	case ctlPanic:
		// The injected software crash: the supervisor answers this request
		// (UNAVAILABLE, via failPending) and restarts the worker.
		panic(errWorkerKilled)
	case ctlWedge:
		time.Sleep(req.wedge)
		req.resp <- Reply{Status: StatusOK}
		return
	case ctlScrub:
		sh.scrub()
		req.resp <- Reply{Status: StatusOK}
		return
	case ctlApply:
		var applyStart time.Time
		if sh.cfg.spans != nil {
			applyStart = time.Now()
		}
		rep := sh.applyRecords(req.recs)
		if sh.cfg.spans != nil {
			sh.cfg.spans.RecordTimed(0, StageReplApply, sh.cfg.id, "apply", 0, applyStart, time.Since(applyStart))
		}
		req.resp <- rep
		return
	case ctlSnapshot:
		req.resp <- sh.snapshotChunk(req)
		return
	case ctlIngest:
		req.resp <- sh.ingest(req.recs)
		return
	case ctlBarrier:
		req.resp <- Reply{Status: StatusOK}
		return
	case ctlPurge:
		req.resp <- sh.purgeSlot(req.slot, req.slots)
		return
	case ctlReseedBegin:
		req.resp <- sh.reseedBegin(req.value)
		return
	case ctlReseedChunk:
		for _, rec := range req.recs {
			sh.st.Set(rec.Key, rec.Value)
		}
		sh.reseedKeys.Add(uint64(len(req.recs)))
		req.resp <- Reply{Status: StatusOK}
		return
	}
	if sh.cfg.sched != nil && sh.cfg.sched.Hit(CrashPointOp) {
		sh.crashAndRecover()
	}
	// Stage timing: sampled requests record spans; with a slow-op threshold
	// every data request is timed (cheaply — two clock reads) so a slow one
	// can report its breakdown even when unsampled.
	timed := sh.cfg.spans != nil && !req.start.IsZero() && (req.sampled || sh.cfg.slowOp > 0)
	var execStart time.Time
	if timed {
		execStart = time.Now()
		if req.sampled {
			sh.cfg.spans.RecordTimed(req.trace, StageQueueWait, sh.cfg.id, opName(req.op), req.key,
				req.start, execStart.Sub(req.start))
		}
	}
	if !req.deadline.IsZero() && sh.cfg.clock.Now().After(req.deadline) {
		sh.deadlineDrops.Add(1)
		req.resp <- Reply{Status: StatusDeadline}
		return
	}
	if sh.cfg.owns != nil && (req.op == OpGet || req.op == OpPut || req.op == OpDelete) {
		if moved, epoch, addr := sh.cfg.owns(req.key); moved {
			sh.moved.Add(1)
			req.resp <- Reply{Status: StatusMoved, Epoch: epoch, Addr: addr}
			return
		}
	}
	if sh.cfg.oplog != nil {
		// A replica only mutates through the replication feed: plain client
		// writes bounce with READONLY so a failover client rotates away.
		if (req.op == OpPut || req.op == OpDelete) && sh.roleIs(RoleReplica) {
			sh.readOnlyRejects.Add(1)
			req.resp <- Reply{Status: StatusReadOnly}
			return
		}
		// Fencing: a primary whose replica has gone silent past FenceAfter
		// stops taking writes (READONLY, so a failover client rotates to the
		// promoted replica) instead of diverging into a second writable copy.
		if (req.op == OpPut || req.op == OpDelete) && sh.roleIs(RolePrimary) &&
			sh.cfg.fenced != nil && sh.cfg.fenced() {
			sh.fencedWrites.Add(1)
			if sh.cfg.trigger != nil {
				sh.cfg.trigger(TriggerFencing,
					fmt.Sprintf("shard %d refused a write while self-fenced (replica silent)", sh.cfg.id))
			}
			req.resp <- Reply{Status: StatusReadOnly}
			return
		}
		// Read-your-writes gate: refuse to serve a read older than the
		// client's token instead of silently returning stale data.
		if req.op == OpGet && req.gate > sh.applied.Load() {
			sh.laggingReads.Add(1)
			req.resp <- Reply{Status: StatusLagging}
			return
		}
	}
	var rep Reply
	rep.Status = StatusOK
	var appendDur time.Duration
	switch req.op {
	case OpGet:
		rep.Value, rep.Found = sh.st.Get(req.key)
		sh.gets.Add(1)
	case OpPut:
		// Write-ahead order: the record enters the log before the store
		// mutates, so a recovered shard never holds an unlogged write.
		if sh.cfg.oplog != nil {
			var appendStart time.Time
			if timed {
				appendStart = time.Now()
			}
			rec := sh.cfg.oplog.Append(repl.RecPut, req.key, req.value)
			if timed {
				appendDur = time.Since(appendStart)
			}
			rep.Shard, rep.Seq = uint32(sh.cfg.id), rec.Seq
		}
		sh.st.Set(req.key, req.value)
		sh.puts.Add(1)
		if rep.Seq != 0 {
			sh.applied.Store(rep.Seq)
		}
	case OpDelete:
		if sh.cfg.oplog != nil {
			var appendStart time.Time
			if timed {
				appendStart = time.Now()
			}
			rec := sh.cfg.oplog.Append(repl.RecDelete, req.key, 0)
			if timed {
				appendDur = time.Since(appendStart)
			}
			rep.Shard, rep.Seq = uint32(sh.cfg.id), rec.Seq
		}
		rep.Found, _ = sh.st.Delete(req.key)
		sh.dels.Add(1)
		if rep.Seq != 0 {
			sh.applied.Store(rep.Seq)
		}
	case OpScan:
		rep.Pairs = make([]KV, 0, req.limit)
		sh.st.ScanVisit(req.key, req.limit, func(k, v uint64) {
			rep.Pairs = append(rep.Pairs, KV{Key: k, Value: v})
		})
		sh.scans.Add(1)
	default:
		rep = Reply{Status: StatusBadRequest}
	}
	sh.ops.Add(1)
	if timed {
		// The stages are disjoint (execute excludes the op-log append), so a
		// trace's stage durations sum to at most its end-to-end latency.
		execDur := time.Since(execStart) - appendDur
		if req.sampled {
			if appendDur > 0 {
				sh.cfg.spans.RecordTimed(req.trace, StageOplogAppend, sh.cfg.id, opName(req.op), req.key,
					execStart, appendDur)
			}
			sh.cfg.spans.RecordTimed(req.trace, StageExecute, sh.cfg.id, opName(req.op), req.key,
				execStart, execDur)
		}
		if sh.cfg.slowOp > 0 {
			if e2e := time.Since(req.start); e2e >= sh.cfg.slowOp {
				sh.slowOps.Add(1)
				ev := obs.WideEvent{
					Kind:    "slow_op",
					Trace:   req.trace,
					Shard:   sh.cfg.id,
					Op:      opName(req.op),
					Key:     req.key,
					TotalUS: e2e.Microseconds(),
					StagesUS: map[string]int64{
						StageQueueWait: execStart.Sub(req.start).Microseconds(),
						StageExecute:   execDur.Microseconds(),
					},
				}
				if appendDur > 0 {
					ev.StagesUS[StageOplogAppend] = appendDur.Microseconds()
				}
				sh.cfg.flight.Note(ev)
			}
		}
	}
	if sh.cfg.latency != nil && !req.start.IsZero() {
		sh.cfg.latency.Observe(uint64(time.Since(req.start).Microseconds()))
	}
	sh.deliver(req, rep)
}

// roleIs reports whether the server's published role matches r.
func (sh *shard) roleIs(r int32) bool {
	return sh.cfg.role != nil && sh.cfg.role.Load() == r
}

// deliver sends a reply — or, on a primary whose replica is live, parks a
// logged write's ack in the waiter until the replica acknowledges its
// sequence (semi-synchronous replication: an acked write exists on both
// copies). When no replica is live the write is acked immediately and
// counted as degraded, the documented single-copy window.
func (sh *shard) deliver(req *request, rep Reply) {
	if rep.Status == StatusOK && rep.Seq != 0 && sh.roleIs(RolePrimary) {
		if sh.cfg.replicaLive != nil && sh.cfg.replicaLive() {
			var trace uint64
			if req.sampled {
				trace = req.trace
			}
			sh.waiter.hold(req.resp, rep, trace)
			return
		}
		sh.degradedAcks.Add(1)
	}
	req.resp <- rep
}

// applyRecords is the replica apply loop's worker half: validate each
// shipped record against the applied sequence, log it (write-ahead, same
// order as the primary), apply it, and advance. Already-applied records
// are skipped (re-pull overlap after a reconnect); a gap means the feed
// and the shard disagree, so the batch is refused and the follower
// re-pulls from the shard's actual applied sequence.
//
// The returned Seq is what the follower will REPLACK, and an ack means
// "applied and durably logged": the log image is flushed before the ack
// covers any newly appended record. The primary truncates its log through
// replAck, so acking a sequence this replica could lose to a restart
// would strand the follower past the primary's log base — the flush is
// what keeps the acked prefix re-loadable and the pull cursor resumable.
// If the flush fails, the ack is capped at the durable watermark; the
// primary then simply retains (and re-ships nothing of) the tail until a
// later flush succeeds and a higher ack arrives.
func (sh *shard) applyRecords(recs []repl.Record) Reply {
	applied := sh.applied.Load()
	appended := false
	fail := func() Reply {
		sh.replGaps.Add(1)
		if appended {
			_ = sh.cfg.oplog.Flush()
		}
		return Reply{Status: StatusInternal, Shard: uint32(sh.cfg.id), Seq: applied}
	}
	for _, rec := range recs {
		if rec.Seq <= applied {
			sh.replDups.Add(1)
			continue
		}
		if rec.Seq != applied+1 {
			return fail()
		}
		if err := sh.cfg.oplog.AppendAt(rec); err != nil {
			return fail()
		}
		appended = true
		switch rec.Op {
		case repl.RecPut:
			sh.st.Set(rec.Key, rec.Value)
			sh.puts.Add(1)
		case repl.RecDelete:
			sh.st.Delete(rec.Key)
			sh.dels.Add(1)
		}
		applied = rec.Seq
		sh.applied.Store(applied)
		sh.replApplied.Add(1)
		sh.sinceCkpt++ // applied records count toward the checkpoint cadence
	}
	ack := applied
	if appended {
		var flushStart time.Time
		if sh.cfg.spans != nil {
			flushStart = time.Now()
		}
		_ = sh.cfg.oplog.Flush() // error: ack only the durable prefix below
		if sh.cfg.spans != nil {
			sh.cfg.spans.RecordTimed(0, StageOplogFlush, sh.cfg.id, "apply", 0, flushStart, time.Since(flushStart))
		}
		if fl := sh.cfg.oplog.FlushedSeq(); fl < ack {
			ack = fl
		}
	}
	return Reply{Status: StatusOK, Shard: uint32(sh.cfg.id), Seq: ack}
}

// snapshotChunk serves one migration snapshot chunk: scan live pairs from
// the key cursor in req.key, keep those in slot req.slot (SlotAll keeps
// everything — the re-seed path), and stop after req.limit kept pairs. The
// reply's Seq is the cursor the next chunk resumes from; Found set means
// the store is exhausted and the transfer is complete. The raw scan is
// chunked so a sparse slot cannot pin the worker for a whole store walk,
// and the cursor only ever advances past fully consumed keys, so nothing
// between chunks is skipped.
func (sh *shard) snapshotChunk(req *request) Reply {
	rep := Reply{Status: StatusOK, Pairs: make([]KV, 0, req.limit)}
	const raw = 512
	cursor := req.key
	for {
		var lastConsumed uint64
		consumed := 0
		n := sh.st.ScanVisit(cursor, raw, func(k, v uint64) {
			if len(rep.Pairs) >= req.limit {
				return // full: leave this key for the next chunk
			}
			lastConsumed = k
			consumed++
			if req.slot == SlotAll || cluster.SlotFor(k, req.slots) == int(req.slot) {
				rep.Pairs = append(rep.Pairs, KV{Key: k, Value: v})
			}
		})
		if n < raw && consumed == n {
			rep.Found = true // store exhausted: transfer complete
			return rep
		}
		if consumed > 0 && lastConsumed == math.MaxUint64 {
			rep.Found = true
			return rep
		}
		cursor = lastConsumed + 1
		if len(rep.Pairs) >= req.limit {
			rep.Seq = cursor
			return rep
		}
	}
}

// ingest applies transferred records as fresh local writes: each is
// re-logged under this shard's own sequence space (write-ahead, like a
// client write), because migrated keys hash onto the acceptor's shards
// independently of the donor's. Per-key order is preserved — a key lives
// in exactly one donor shard and its records arrive in donor-log order.
func (sh *shard) ingest(recs []repl.Record) Reply {
	for _, rec := range recs {
		var seq uint64
		switch rec.Op {
		case repl.RecPut:
			if sh.cfg.oplog != nil {
				seq = sh.cfg.oplog.Append(repl.RecPut, rec.Key, rec.Value).Seq
			}
			sh.st.Set(rec.Key, rec.Value)
			sh.puts.Add(1)
		case repl.RecDelete:
			if sh.cfg.oplog != nil {
				seq = sh.cfg.oplog.Append(repl.RecDelete, rec.Key, 0).Seq
			}
			sh.st.Delete(rec.Key)
			sh.dels.Add(1)
		default:
			continue
		}
		if seq != 0 {
			sh.applied.Store(seq)
		}
		sh.ingested.Add(1)
		sh.sinceCkpt++
	}
	return Reply{Status: StatusOK}
}

// purgeSlot reclaims a migrated slot on the donor: every live key of the
// slot is deleted through the normal logged path, so recovery and a
// replica (if any) see the reclamation like any other write.
func (sh *shard) purgeSlot(slot uint32, slots int) Reply {
	var keys []uint64
	sh.rb.Scan(0, math.MaxInt32, func(k, v uint64) {
		if cluster.SlotFor(k, slots) == int(slot) {
			keys = append(keys, k)
		}
	})
	for _, k := range keys {
		if sh.cfg.oplog != nil {
			rec := sh.cfg.oplog.Append(repl.RecDelete, k, 0)
			sh.applied.Store(rec.Seq)
		}
		sh.st.Delete(k)
		sh.dels.Add(1)
		sh.sinceCkpt++
	}
	sh.purged.Add(uint64(len(keys)))
	sh.publish()
	return Reply{Status: StatusOK}
}

// reseedBegin wipes the shard for a replica re-seed: delete every live
// pair without logging (the pre-reseed history is being discarded, not
// replayed), restart the log's sequence space at the snapshot watermark,
// and checkpoint so a crash cannot resurrect the divergent state.
func (sh *shard) reseedBegin(watermark uint64) Reply {
	var keys []uint64
	sh.rb.Scan(0, math.MaxInt32, func(k, v uint64) { keys = append(keys, k) })
	for _, k := range keys {
		sh.st.Delete(k)
	}
	if sh.cfg.oplog != nil {
		if err := sh.cfg.oplog.ResetTo(watermark); err != nil {
			return Reply{Status: StatusInternal}
		}
	}
	sh.applied.Store(watermark)
	if err := sh.checkpoint(); err != nil {
		return Reply{Status: StatusInternal}
	}
	sh.publish()
	return Reply{Status: StatusOK}
}

// scrub is the online Pangolin-style check: fsck the live pool between
// requests and reclaim any repairable residue before it can compound,
// then (with parity armed) scrub-and-repair the stored images against
// their parity sidecars — the media leg that catches bit rot at rest.
func (sh *shard) scrub() {
	sh.scrubs.Add(1)
	rep := pmem.Fsck(sh.ctx.Pool)
	sh.scrubIssues.Add(uint64(len(rep.Issues)))
	if !rep.Clean() {
		if _, err := pmem.Repair(sh.ctx.Pool); err == nil {
			sh.repairs.Add(1)
		}
	}
	if sh.cfg.parity.Enabled && sh.cfg.store != nil {
		sh.scrubMedia()
	}
}

// scrubMedia runs one scrub-and-repair pass over every stored image the
// shard's registry manages. Corrupt pages are reconstructed from parity
// and healed in the store; the damage, the fix, and the latency all land
// in the media counters and — via the flight recorder — in an incident
// dump, because a media repair means hardware is lying about bytes.
func (sh *shard) scrubMedia() {
	for _, p := range sh.ctx.Reg.Pools() {
		start := time.Now()
		rep, err := sh.ctx.Reg.ScrubMedia(p.Name(), true)
		if err != nil {
			continue // pool not checkpointed yet: nothing stored to scrub
		}
		sh.mediaScrubs.Add(1)
		sh.parityPages.Store(sh.ctx.Reg.Stats.ParityPages)
		if rep.SidecarBuilt {
			sh.parityRebuilds.Add(1)
		}
		if len(rep.Unrecoverable) > 0 || (rep.Err != "" && !rep.ImageOK) {
			sh.mediaUnrecoverable.Add(uint64(max(len(rep.Unrecoverable), 1)))
			detail := fmt.Sprintf("shard %d pool %q: unrecoverable media damage: %d rangelet(s), err=%q",
				sh.cfg.id, p.Name(), len(rep.Unrecoverable), rep.Err)
			if sh.cfg.trigger != nil {
				sh.cfg.trigger(TriggerMediaRepair, detail)
			}
			sh.logf("server: %s", detail)
			continue
		}
		if len(rep.Repaired) > 0 {
			sh.pagesRepaired.Add(uint64(len(rep.Repaired)))
			if len(rep.ParityRebuilt) > 0 {
				sh.parityRebuilds.Add(1)
			}
			if sh.cfg.repairLatency != nil {
				sh.cfg.repairLatency.Observe(uint64(time.Since(start).Microseconds()))
			}
			detail := fmt.Sprintf("shard %d pool %q: scrub reconstructed %d page(s) from parity (bad=%v)",
				sh.cfg.id, p.Name(), len(rep.Repaired), rep.BadPages)
			if sh.cfg.trigger != nil {
				sh.cfg.trigger(TriggerMediaRepair, detail)
			}
			sh.logf("server: %s", detail)
		}
	}
}

// afterBatch publishes counters and runs the periodic checkpoint.
func (sh *shard) afterBatch(n int) {
	sh.publish()
	if sh.cfg.checkpointEvery > 0 {
		sh.sinceCkpt += n
		if sh.sinceCkpt >= sh.cfg.checkpointEvery {
			_ = sh.checkpoint() // next one retries; durability is at-checkpoint
		}
	}
}

// checkpoint publishes the index root into the pool header and snapshots
// every pool to the backing store. This is the durability barrier: a crash
// rolls the shard back to its most recent checkpoint.
func (sh *shard) checkpoint() error {
	if sh.cfg.store == nil {
		return nil
	}
	sh.ctx.SetRoot(siteShardRoot, sh.rb.Root())
	if err := sh.ctx.Persist(); err != nil {
		return err
	}
	sh.checkpoints.Add(1)
	sh.sinceCkpt = 0
	if sh.cfg.oplog != nil {
		// The pool image now covers every applied record, so the log prefix
		// through the applied sequence is garbage — except on a primary,
		// which must retain anything its replica has not acknowledged (the
		// replica can only catch up from the log). TruncateThrough also
		// flushes, so the checkpoint is a log durability barrier too. A log
		// flush failure is counted (LogStats.FlushErrors), not fatal: the
		// pool checkpoint itself succeeded.
		through := sh.applied.Load()
		if sh.roleIs(RolePrimary) {
			if ra := sh.replAck.Load(); ra < through {
				through = ra
			}
		}
		var flushStart time.Time
		if sh.cfg.spans != nil {
			flushStart = time.Now()
		}
		_ = sh.cfg.oplog.TruncateThrough(through)
		if sh.cfg.spans != nil {
			sh.cfg.spans.RecordTimed(0, StageOplogFlush, sh.cfg.id, "checkpoint", 0, flushStart, time.Since(flushStart))
		}
	}
	return nil
}

// crashAndRecover simulates losing power on this shard alone: the mapped
// pool, the DRAM heap, and every local pointer vanish; recovery reopens the
// pool from the store's last checkpointed image (possibly at a different
// base — relative references make that safe), fscks it, and re-seats the
// index from the persisted root. Operations acknowledged after the last
// checkpoint are rolled back, which is the service's documented durability
// contract for power loss.
func (sh *shard) crashAndRecover() {
	sh.crashes.Add(1)
	if sh.waiter != nil {
		// Held write acks may cover sequences past the log's durable
		// watermark — sequences the rollback is about to erase and re-issue.
		// Fail them now (clients retry) so a later replica ack for a reused
		// sequence cannot release an ack for a write that no longer exists.
		// recoverWorker also fails holds, but this path is reached directly
		// by ctlCrash and the fault scheduler without a worker panic.
		sh.waiter.failHeld()
	}
	sh.ctx, sh.st, sh.rb = nil, nil, nil
	if err := sh.open(); err != nil {
		// A shard that cannot recover is a harness bug (the store is
		// in-process); fail loudly rather than serving from nil state.
		panic(fmt.Sprintf("server: shard %d failed to recover: %v", sh.cfg.id, err))
	}
	sh.recoveries.Add(1)
}

// ShardStats is the per-shard block of a STATS reply.
type ShardStats struct {
	ID            int    `json:"id"`
	State         string `json:"state"`
	Breaker       string `json:"breaker"`
	Ops           uint64 `json:"ops"`
	Gets          uint64 `json:"gets"`
	Puts          uint64 `json:"puts"`
	Deletes       uint64 `json:"deletes"`
	Scans         uint64 `json:"scans"`
	Keys          uint64 `json:"keys"`
	Cycles        uint64 `json:"cycles"`
	QueueDepth    int    `json:"queue_depth"`
	QueueHigh     uint64 `json:"queue_high_water"`
	Checkpoints   uint64 `json:"checkpoints"`
	Crashes       uint64 `json:"crashes"`
	Recoveries    uint64 `json:"recoveries"`
	Panics        uint64 `json:"panics"`
	Restarts      uint64 `json:"restarts"`
	Salvages      uint64 `json:"salvages"`
	Rollbacks     uint64 `json:"rollbacks"`
	Wedges        uint64 `json:"wedges"`
	Sheds         uint64 `json:"sheds"`
	Unavailable   uint64 `json:"unavailable"`
	DeadlineDrops uint64 `json:"deadline_drops"`
	Scrubs        uint64 `json:"scrubs"`
	ScrubIssues   uint64 `json:"scrub_issues"`
	SlowOps       uint64 `json:"slow_ops"`
	BreakerOpens  uint64 `json:"breaker_opens"`
	FsckErrors    uint64 `json:"fsck_errors"`
	FsckWarns     uint64 `json:"fsck_warns"`
	Repairs       uint64 `json:"repairs"`
	// Media-fault block (all zero unless the parity layer is armed).
	MediaScrubs        uint64 `json:"media_scrubs"`
	PagesRepaired      uint64 `json:"pages_repaired"`
	ParityRebuilds     uint64 `json:"parity_rebuilds"`
	MediaUnrecoverable uint64 `json:"media_unrecoverable"`
	ParityPages        uint64 `json:"parity_pages"`
	// Repl is the shard's replication block (nil on a standalone server).
	Repl *ReplShardStats `json:"repl,omitempty"`
}

// ReplShardStats is the per-shard replication block of a STATS reply.
type ReplShardStats struct {
	Applied         uint64        `json:"applied"`  // newest applied log sequence
	ReplAck         uint64        `json:"repl_ack"` // primary: newest replica-acked sequence
	LagRecords      uint64        `json:"lag_records"`
	HeldAcks        int           `json:"held_acks"`
	DegradedAcks    uint64        `json:"degraded_acks"`
	TimeoutAcks     uint64        `json:"timeout_acks"`
	Applies         uint64        `json:"applies"` // records applied from the feed
	Dups            uint64        `json:"dups"`
	Gaps            uint64        `json:"gaps"`
	Replayed        uint64        `json:"replayed"`
	LaggingReads    uint64        `json:"lagging_reads"`
	ReadOnlyRejects uint64        `json:"read_only_rejects"`
	FencedWrites    uint64        `json:"fenced_writes"`
	Log             repl.LogStats `json:"log"`
}

// replLag returns the shard's replication lag in records: on a primary,
// applied-but-unacked records; elsewhere zero until the follower reports
// (the replica's lag lives in FollowerStats, measured against the
// primary's sequence).
func (sh *shard) replLag() uint64 {
	if sh.cfg.oplog == nil || !sh.roleIs(RolePrimary) {
		return 0
	}
	a, r := sh.applied.Load(), sh.replAck.Load()
	if a <= r {
		return 0
	}
	return a - r
}

func (sh *shard) replStats() *ReplShardStats {
	if sh.cfg.oplog == nil {
		return nil
	}
	rs := &ReplShardStats{
		Applied:         sh.applied.Load(),
		ReplAck:         sh.replAck.Load(),
		LagRecords:      sh.replLag(),
		DegradedAcks:    sh.degradedAcks.Load(),
		Applies:         sh.replApplied.Load(),
		Dups:            sh.replDups.Load(),
		Gaps:            sh.replGaps.Load(),
		Replayed:        sh.replayed.Load(),
		LaggingReads:    sh.laggingReads.Load(),
		ReadOnlyRejects: sh.readOnlyRejects.Load(),
		FencedWrites:    sh.fencedWrites.Load(),
		Log:             sh.cfg.oplog.Stats(),
	}
	if sh.waiter != nil {
		rs.HeldAcks = sh.waiter.count()
		rs.TimeoutAcks = sh.waiter.timeouts()
	}
	return rs
}

func (sh *shard) stats() ShardStats {
	return ShardStats{
		ID:            sh.cfg.id,
		State:         shardStateName(sh.state.Load()),
		Breaker:       breakerStateName(sh.breaker.State()),
		Ops:           sh.ops.Load(),
		Gets:          sh.gets.Load(),
		Puts:          sh.puts.Load(),
		Deletes:       sh.dels.Load(),
		Scans:         sh.scans.Load(),
		Keys:          sh.keys.Load(),
		Cycles:        sh.cycles.Load(),
		QueueDepth:    len(sh.queue),
		QueueHigh:     sh.queueHighWater.Load(),
		Checkpoints:   sh.checkpoints.Load(),
		Crashes:       sh.crashes.Load(),
		Recoveries:    sh.recoveries.Load(),
		Panics:        sh.panics.Load(),
		Restarts:      sh.restarts.Load(),
		Salvages:      sh.salvages.Load(),
		Rollbacks:     sh.rollbacks.Load(),
		Wedges:        sh.wedges.Load(),
		Sheds:         sh.sheds.Load(),
		Unavailable:   sh.unavail.Load(),
		DeadlineDrops: sh.deadlineDrops.Load(),
		Scrubs:        sh.scrubs.Load(),
		ScrubIssues:   sh.scrubIssues.Load(),
		SlowOps:       sh.slowOps.Load(),
		BreakerOpens:  sh.breaker.Opens(),
		FsckErrors:    sh.fsckErrors.Load(),
		FsckWarns:     sh.fsckWarns.Load(),
		Repairs:       sh.repairs.Load(),

		MediaScrubs:        sh.mediaScrubs.Load(),
		PagesRepaired:      sh.pagesRepaired.Load(),
		ParityRebuilds:     sh.parityRebuilds.Load(),
		MediaUnrecoverable: sh.mediaUnrecoverable.Load(),
		ParityPages:        sh.parityPages.Load(),

		Repl: sh.replStats(),
	}
}
