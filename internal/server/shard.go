package server

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"nvref/internal/fault"
	"nvref/internal/kvstore"
	"nvref/internal/obs"
	"nvref/internal/pmem"
	"nvref/internal/rt"
	"nvref/internal/structures"
)

// CrashPointOp is the fault crash point each shard worker evaluates before
// every data operation. Arm a per-shard fault.Scheduler (Config.Sched) to
// make the shard lose power there and recover from its last checkpoint
// while the other shards keep serving.
const CrashPointOp = "server.shard.op"

var siteShardRoot = rt.NewSite("server.shard.root", false)

// Control request kinds (zero means a data request).
const (
	ctlCheckpoint byte = iota + 1
	ctlCrash
)

// request is one unit of work on a shard queue. Exactly one response is
// delivered on resp.
type request struct {
	op         byte
	key, value uint64
	limit      int
	ctl        byte
	start      time.Time
	resp       chan Reply
}

// shardConfig parameterizes one engine shard.
type shardConfig struct {
	id              int
	mode            rt.Mode
	store           pmem.Store // nil disables persistence (and crash recovery)
	poolSize        uint64
	queueDepth      int
	checkpointEvery int
	sched           fault.Scheduler // per-shard; evaluated at CrashPointOp
	latency         *obs.Histogram  // queue+service latency, microseconds
}

// shard is one engine shard: a single worker goroutine owns the simulation
// context, index, and store, and consumes the bounded queue. All other
// goroutines communicate through the queue and the published atomics.
type shard struct {
	cfg   shardConfig
	queue chan *request
	done  chan struct{}

	// Worker-owned engine state. Never touched outside the worker (and
	// open(), which runs before the worker starts).
	ctx       *rt.Context
	st        *kvstore.Store
	rb        *structures.RB
	sinceCkpt int

	// Published state, read by metrics collectors and STATS.
	ops, gets, puts, dels, scans   atomic.Uint64
	crashes, recoveries            atomic.Uint64
	checkpoints                    atomic.Uint64
	fsckErrors, fsckWarns, repairs atomic.Uint64
	cycles, keys                   atomic.Uint64
	queueHighWater                 atomic.Uint64

	// abort, when true at drain time, suppresses the final checkpoint —
	// the simulated kill -9 path.
	abort atomic.Bool
}

func newShard(cfg shardConfig) (*shard, error) {
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 128
	}
	sh := &shard{
		cfg:   cfg,
		queue: make(chan *request, cfg.queueDepth),
		done:  make(chan struct{}),
	}
	if err := sh.open(); err != nil {
		return nil, fmt.Errorf("server: shard %d: %w", cfg.id, err)
	}
	return sh, nil
}

// open builds the engine over the shard's store. When the store already
// holds a pool image from a previous incarnation (a prior process, or this
// shard before a crash), the pool is reopened, fsck-checked (repairing if
// needed), and the index is re-seated on the persisted root.
func (sh *shard) open() error {
	ctx, err := rt.New(rt.Config{Mode: sh.cfg.mode, Store: sh.cfg.store, PoolSize: sh.cfg.poolSize})
	if err != nil {
		return err
	}
	rep := pmem.Fsck(ctx.Pool)
	for _, issue := range rep.Issues {
		if issue.Severity == pmem.FsckError {
			sh.fsckErrors.Add(1)
		} else {
			sh.fsckWarns.Add(1)
		}
	}
	if !rep.Consistent() {
		if _, err := pmem.Repair(ctx.Pool); err != nil {
			return fmt.Errorf("repair: %w", err)
		}
		sh.repairs.Add(1)
	}
	st := kvstore.New(ctx, func(c *rt.Context) structures.Index { return structures.NewRB(c) })
	rb := st.Index().(*structures.RB)
	if root := ctx.Root(siteShardRoot); !ctx.IsNull(root) {
		// Re-seat the tree, then count keys with one full scan (the pool
		// root records only the reference, not the cardinality).
		rb.SetRootRef(root, 0)
		n := rb.Scan(0, math.MaxInt32, func(k, v uint64) {})
		rb.SetRootRef(root, uint64(n))
	}
	sh.ctx, sh.st, sh.rb = ctx, st, rb
	sh.sinceCkpt = 0
	sh.publish()
	return nil
}

// publish copies the worker-owned counters the collectors export.
func (sh *shard) publish() {
	sh.cycles.Store(sh.ctx.CPU.Stats.Cycles)
	sh.keys.Store(sh.rb.Len())
}

// run is the worker loop: block for one request, then drain a small batch
// from the queue without blocking, process it, and publish once — queueing
// amortizes the checkpoint cadence and the metric publication.
func (sh *shard) run() {
	defer close(sh.done)
	const maxBatch = 64
	batch := make([]*request, 0, maxBatch)
	open := true
	for open {
		req, ok := <-sh.queue
		if !ok {
			break
		}
		batch = append(batch[:0], req)
	drain:
		for len(batch) < maxBatch {
			select {
			case r, ok := <-sh.queue:
				if !ok {
					open = false
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		if hw := uint64(len(batch) + len(sh.queue)); hw > sh.queueHighWater.Load() {
			sh.queueHighWater.Store(hw)
		}
		for _, r := range batch {
			sh.handle(r)
		}
		sh.afterBatch(len(batch))
	}
	// Drain whatever arrived between the last receive and queue close.
	for req := range sh.queue {
		sh.handle(req)
	}
	if !sh.abort.Load() {
		_ = sh.checkpoint()
	}
	sh.publish()
}

// handle executes one request and delivers its reply.
func (sh *shard) handle(req *request) {
	switch req.ctl {
	case ctlCheckpoint:
		if err := sh.checkpoint(); err != nil {
			req.resp <- Reply{Status: StatusInternal}
			return
		}
		req.resp <- Reply{Status: StatusOK}
		return
	case ctlCrash:
		sh.crashAndRecover()
		req.resp <- Reply{Status: StatusOK}
		return
	}
	if sh.cfg.sched != nil && sh.cfg.sched.Hit(CrashPointOp) {
		sh.crashAndRecover()
	}
	var rep Reply
	rep.Status = StatusOK
	switch req.op {
	case OpGet:
		rep.Value, rep.Found = sh.st.Get(req.key)
		sh.gets.Add(1)
	case OpPut:
		sh.st.Set(req.key, req.value)
		sh.puts.Add(1)
	case OpDelete:
		rep.Found, _ = sh.st.Delete(req.key)
		sh.dels.Add(1)
	case OpScan:
		rep.Pairs = make([]KV, 0, req.limit)
		sh.st.ScanVisit(req.key, req.limit, func(k, v uint64) {
			rep.Pairs = append(rep.Pairs, KV{Key: k, Value: v})
		})
		sh.scans.Add(1)
	default:
		rep = Reply{Status: StatusBadRequest}
	}
	sh.ops.Add(1)
	if sh.cfg.latency != nil && !req.start.IsZero() {
		sh.cfg.latency.Observe(uint64(time.Since(req.start).Microseconds()))
	}
	req.resp <- rep
}

// afterBatch publishes counters and runs the periodic checkpoint.
func (sh *shard) afterBatch(n int) {
	sh.publish()
	if sh.cfg.checkpointEvery > 0 {
		sh.sinceCkpt += n
		if sh.sinceCkpt >= sh.cfg.checkpointEvery {
			_ = sh.checkpoint() // next one retries; durability is at-checkpoint
		}
	}
}

// checkpoint publishes the index root into the pool header and snapshots
// every pool to the backing store. This is the durability barrier: a crash
// rolls the shard back to its most recent checkpoint.
func (sh *shard) checkpoint() error {
	if sh.cfg.store == nil {
		return nil
	}
	sh.ctx.SetRoot(siteShardRoot, sh.rb.Root())
	if err := sh.ctx.Persist(); err != nil {
		return err
	}
	sh.checkpoints.Add(1)
	sh.sinceCkpt = 0
	return nil
}

// crashAndRecover simulates losing power on this shard alone: the mapped
// pool, the DRAM heap, and every local pointer vanish; recovery reopens the
// pool from the store's last checkpointed image (possibly at a different
// base — relative references make that safe), fscks it, and re-seats the
// index from the persisted root. Operations acknowledged after the last
// checkpoint are rolled back, which is the service's documented durability
// contract.
func (sh *shard) crashAndRecover() {
	sh.crashes.Add(1)
	sh.ctx, sh.st, sh.rb = nil, nil, nil
	if err := sh.open(); err != nil {
		// A shard that cannot recover is a harness bug (the store is
		// in-process); fail loudly rather than serving from nil state.
		panic(fmt.Sprintf("server: shard %d failed to recover: %v", sh.cfg.id, err))
	}
	sh.recoveries.Add(1)
}

// ShardStats is the per-shard block of a STATS reply.
type ShardStats struct {
	ID          int    `json:"id"`
	Ops         uint64 `json:"ops"`
	Gets        uint64 `json:"gets"`
	Puts        uint64 `json:"puts"`
	Deletes     uint64 `json:"deletes"`
	Scans       uint64 `json:"scans"`
	Keys        uint64 `json:"keys"`
	Cycles      uint64 `json:"cycles"`
	QueueDepth  int    `json:"queue_depth"`
	QueueHigh   uint64 `json:"queue_high_water"`
	Checkpoints uint64 `json:"checkpoints"`
	Crashes     uint64 `json:"crashes"`
	Recoveries  uint64 `json:"recoveries"`
	FsckErrors  uint64 `json:"fsck_errors"`
	FsckWarns   uint64 `json:"fsck_warns"`
	Repairs     uint64 `json:"repairs"`
}

func (sh *shard) stats() ShardStats {
	return ShardStats{
		ID:          sh.cfg.id,
		Ops:         sh.ops.Load(),
		Gets:        sh.gets.Load(),
		Puts:        sh.puts.Load(),
		Deletes:     sh.dels.Load(),
		Scans:       sh.scans.Load(),
		Keys:        sh.keys.Load(),
		Cycles:      sh.cycles.Load(),
		QueueDepth:  len(sh.queue),
		QueueHigh:   sh.queueHighWater.Load(),
		Checkpoints: sh.checkpoints.Load(),
		Crashes:     sh.crashes.Load(),
		Recoveries:  sh.recoveries.Load(),
		FsckErrors:  sh.fsckErrors.Load(),
		FsckWarns:   sh.fsckWarns.Load(),
		Repairs:     sh.repairs.Load(),
	}
}
