package server

// Cluster tier: epoch-versioned slot ownership, MOVED redirects, and live
// slot migration.
//
// Every key hashes to one of the cluster map's slots (cluster.SlotFor),
// and each slot is owned by exactly one node. A node serves only the keys
// of slots it owns; everything else answers StatusMoved with the owner's
// address and the node's map epoch, and a cluster-routing client
// (ClusterClient) refreshes its cached map and re-routes.
//
// Migration is acceptor-driven and live — the donor keeps serving the
// slot until the final handover:
//
//  1. snapshot: the acceptor captures the donor's per-shard applied
//     sequences (S0), then bulk-copies the slot's live pairs shard by
//     shard (OpMigSnapshot), applying them locally as fresh writes.
//  2. catch-up: the acceptor tails each donor shard's durable log after
//     S0 (OpMigPull, slot-filtered) until it has nearly drained the lag.
//     Re-applying records the snapshot already covers is harmless: the
//     whole contiguous suffix replays in order, so the last write per
//     key wins either way.
//  3. fence: OpMigFence makes the donor refuse every later data op for
//     the slot (StatusMoved toward the acceptor), drain its shard queues
//     (ctlBarrier), and only then capture per-shard fence sequences. The
//     barrier is what makes the watermarks final: the worker runs the
//     ownership check, so once the queues drain, no pre-fence write can
//     still be in flight below the captured sequences.
//  4. final catch-up: the acceptor pulls until every donor shard's
//     cursor reaches its fence sequence. Every acked donor write of the
//     slot is now on the acceptor.
//  5. commit: the acceptor installs map epoch+1 (slot -> acceptor)
//     locally first, then on the donor (required — it releases the fence
//     and audits), then best-effort on the rest of the cluster.
//
// Between fence and commit, writes to the slot bounce MOVED between the
// two nodes; the routing client retries with map refreshes and backoff,
// and the window is one final catch-up long. When the donor learns the
// handover committed, it audits its logs for post-fence writes to the
// slot (any found is a fencing bug, counted in StaleEpochWrites and
// dumped to the flight recorder) and then purges the migrated keys.
//
// The same transfer machinery (OpMigSnapshot with SlotAll) re-seeds a
// diverged replica: see follower.reseed in repl.go.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nvref/internal/cluster"
	"nvref/internal/obs"
	"nvref/internal/repl"
)

// clusterState is the server's cluster-tier state: the current map, the
// fences of slots mid-handover (this node donating), and the counters the
// metrics and STATS planes export.
type clusterState struct {
	mu     sync.RWMutex
	cmap   *cluster.Map       // nil until the node is given a map
	fenced map[int]*fenceInfo // slot -> fence, while this node is the donor

	self string // advertised address, immutable after New

	staleEpochWrites atomic.Uint64 // post-fence writes found by the handover audit
	mapFetches       atomic.Uint64 // OpClusterMap served
	mapUpdates       atomic.Uint64 // maps installed (local or OpMapUpdate)
	mapRejects       atomic.Uint64 // map installs refused for a stale epoch
	migratedIn       atomic.Uint64 // slots this node accepted
	migratedOut      atomic.Uint64 // slots this node donated
	snapshotsServed  atomic.Uint64 // OpMigSnapshot chunks served
	pullsServed      atomic.Uint64 // OpMigPull batches served
}

// fenceInfo is one fenced slot on the donor: where its traffic redirects
// and the per-shard log sequences captured after the fence barrier. seqs
// is nil while the barrier is still draining.
type fenceInfo struct {
	dst  string
	seqs []uint64
}

// clusterOn reports whether the cluster tier is configured.
func (s *Server) clusterOn() bool { return s.cluster.self != "" }

// clusterMap returns the node's current map (nil if it has none).
func (s *Server) clusterMap() *cluster.Map {
	s.cluster.mu.RLock()
	defer s.cluster.mu.RUnlock()
	return s.cluster.cmap
}

// slotCheck is the shard workers' ownership check (shardConfig.owns): a
// key in a slot this node does not own — or has fenced for handover — is
// refused with the redirect hint.
func (s *Server) slotCheck(key uint64) (moved bool, epoch uint64, addr string) {
	cs := &s.cluster
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	m := cs.cmap
	if m == nil {
		return false, 0, ""
	}
	slot := cluster.SlotFor(key, m.Slots)
	if fi := cs.fenced[slot]; fi != nil {
		return true, m.Epoch, fi.dst
	}
	if owner := m.OwnerOf(slot); owner != cs.self {
		return true, m.Epoch, owner
	}
	return false, 0, ""
}

// clusterMapReply serves OpClusterMap: the node's current map image.
func (s *Server) clusterMapReply() Reply {
	m := s.clusterMap()
	if m == nil {
		return Reply{Status: StatusBadRequest}
	}
	s.cluster.mapFetches.Add(1)
	return Reply{Status: StatusOK, Blob: m.Encode()}
}

// mapUpdateReply serves OpMapUpdate: decode and install.
func (s *Server) mapUpdateReply(req *Request) Reply {
	m, err := cluster.Decode(req.Blob)
	if err != nil {
		return Reply{Status: StatusBadRequest}
	}
	return s.installMap(m)
}

// installMap adopts a strictly newer map, persists it, and releases any
// fence whose slot the new map assigns away from this node — the donor's
// commit point. Each released slot is audited for post-fence writes (the
// zero-stale-writes invariant) and its keys are purged.
func (s *Server) installMap(m *cluster.Map) Reply {
	cs := &s.cluster
	cs.mu.Lock()
	if cur := cs.cmap; cur != nil && m.Epoch <= cur.Epoch {
		cs.mu.Unlock()
		cs.mapRejects.Add(1)
		return Reply{Status: StatusWrongEpoch, Epoch: cur.Epoch}
	}
	cs.cmap = m
	type release struct {
		slot int
		seqs []uint64
	}
	var released []release
	for slot, fi := range cs.fenced {
		if m.OwnerOf(slot) != cs.self {
			released = append(released, release{slot, fi.seqs})
			delete(cs.fenced, slot)
		}
		// A fence whose slot the new map still assigns here stays: the
		// epoch bump was about some other slot.
	}
	cs.mu.Unlock()
	cs.mapUpdates.Add(1)
	if s.cfg.ClusterStore != nil {
		if err := cluster.Save(s.cfg.ClusterStore, m); err != nil {
			s.logf("cluster: persisting map epoch %d: %v", m.Epoch, err)
		}
	}
	for _, rel := range released {
		s.auditHandover(rel.slot, rel.seqs, m.Slots)
		s.purgeSlot(rel.slot, m.Slots)
		cs.migratedOut.Add(1)
		if s.flight != nil {
			s.trigger(TriggerMigration, fmt.Sprintf("slot %d handed over to %s at epoch %d",
				rel.slot, m.OwnerOf(rel.slot), m.Epoch))
		}
		s.logf("cluster: slot %d handed over to %s (epoch %d)", rel.slot, m.OwnerOf(rel.slot), m.Epoch)
	}
	return Reply{Status: StatusOK}
}

// auditHandover scans each shard's log past the slot's fence sequence for
// writes to the released slot. The fence barrier makes any hit a fencing
// bug — an acked write the acceptor's final catch-up never saw — so hits
// are counted (the bench gate asserts zero) and dump the flight recorder.
// The scan is bounded by the log's sequence at audit time, before the
// purge below appends its deletes, so reclamation never pollutes it.
func (s *Server) auditHandover(slot int, seqs []uint64, slots int) {
	var stale uint64
	for i, sh := range s.shards {
		if sh.cfg.oplog == nil || i >= len(seqs) {
			continue
		}
		through := sh.cfg.oplog.LastSeq()
		for _, rec := range sh.cfg.oplog.Since(seqs[i], 0) {
			if rec.Seq > through {
				break
			}
			if cluster.SlotFor(rec.Key, slots) == slot {
				stale++
			}
		}
	}
	if stale > 0 {
		s.cluster.staleEpochWrites.Add(stale)
		s.trigger(TriggerEpoch, fmt.Sprintf("%d post-fence writes to slot %d escaped the handover", stale, slot))
		s.logf("cluster: AUDIT FAILURE: %d post-fence writes to migrated slot %d", stale, slot)
	}
}

// purgeSlot deletes the migrated slot's keys from every shard through the
// logged delete path. Run after the audit: its deletes carry sequences
// past the audit's bound.
func (s *Server) purgeSlot(slot, slots int) {
	for _, sh := range s.shards {
		resp := make(chan Reply, 1)
		sh.queue <- &request{ctl: ctlPurge, slot: uint32(slot), slots: slots, resp: resp}
		<-resp
	}
}

// migSnapshotReply serves one OpMigSnapshot chunk from the addressed
// shard's worker.
func (s *Server) migSnapshotReply(req *Request) Reply {
	if int(req.Shard) >= len(s.shards) {
		return Reply{Status: StatusBadRequest}
	}
	slots := 0
	if req.Slot != SlotAll {
		m := s.clusterMap()
		if m == nil || int(req.Slot) >= m.Slots {
			return Reply{Status: StatusBadRequest}
		}
		slots = m.Slots
	}
	resp := make(chan Reply, 1)
	s.shards[req.Shard].queue <- &request{
		ctl: ctlSnapshot, key: req.Key, limit: req.Limit,
		slot: req.Slot, slots: slots, resp: resp,
	}
	rep := <-resp
	s.cluster.snapshotsServed.Add(1)
	return rep
}

// migPullReply serves OpMigPull: durable log records of one shard after a
// cursor, filtered to the requested slot. The reply reports the highest
// sequence examined (Seq — the next cursor; filtered-out records advance
// it without being shipped), the shard's newest logged sequence (Value),
// and whether the retained log still covers cursor+1 (Found): when it
// does not, the acceptor's cursor fell behind a truncation and it must
// restart from a snapshot.
func (s *Server) migPullReply(req *Request) Reply {
	if int(req.Shard) >= len(s.shards) {
		return Reply{Status: StatusBadRequest}
	}
	sh := s.shards[req.Shard]
	if sh.cfg.oplog == nil {
		return Reply{Status: StatusBadRequest}
	}
	var slots int
	if req.Slot != SlotAll {
		m := s.clusterMap()
		if m == nil || int(req.Slot) >= m.Slots {
			return Reply{Status: StatusBadRequest}
		}
		slots = m.Slots
	}
	recs := sh.cfg.oplog.SinceDurable(req.Seq, req.Limit)
	contiguous := len(recs) == 0 || recs[0].Seq == req.Seq+1
	through := req.Seq
	kept := recs[:0]
	for _, rec := range recs {
		through = rec.Seq
		if req.Slot == SlotAll || cluster.SlotFor(rec.Key, slots) == int(req.Slot) {
			kept = append(kept, rec)
		}
	}
	s.cluster.pullsServed.Add(1)
	return Reply{
		Status: StatusOK, Found: contiguous, Seq: through,
		Value: sh.cfg.oplog.LastSeq(), Recs: kept,
	}
}

// migFenceReply serves OpMigFence: fence the slot toward the acceptor,
// drain every shard queue, then capture the per-shard fence sequences.
// Idempotent for the same acceptor (a retried fence returns the already-
// captured watermarks); a second acceptor is refused.
func (s *Server) migFenceReply(req *Request) Reply {
	cs := &s.cluster
	cs.mu.Lock()
	m := cs.cmap
	if m == nil || int(req.Slot) >= m.Slots {
		cs.mu.Unlock()
		return Reply{Status: StatusBadRequest}
	}
	if owner := m.OwnerOf(int(req.Slot)); owner != cs.self {
		cs.mu.Unlock()
		return Reply{Status: StatusMoved, Epoch: m.Epoch, Addr: owner}
	}
	if fi := cs.fenced[int(req.Slot)]; fi != nil {
		seqs := fi.seqs
		dst := fi.dst
		cs.mu.Unlock()
		if dst != req.Addr {
			return Reply{Status: StatusBadRequest}
		}
		if seqs == nil {
			// Another fence for the same handover is still draining the
			// barrier; the acceptor retries.
			return Reply{Status: StatusUnavailable}
		}
		return Reply{Status: StatusOK, Seqs: seqs}
	}
	fi := &fenceInfo{dst: req.Addr}
	cs.fenced[int(req.Slot)] = fi
	cs.mu.Unlock()
	// The flag is visible to the workers; drain every queue so each write
	// admitted before it has fully executed (and appended) — only then are
	// the captured sequences final watermarks.
	for _, sh := range s.shards {
		resp := make(chan Reply, 1)
		sh.queue <- &request{ctl: ctlBarrier, resp: resp}
		<-resp
	}
	seqs := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		if sh.cfg.oplog != nil {
			seqs[i] = sh.cfg.oplog.LastSeq()
		}
	}
	cs.mu.Lock()
	fi.seqs = seqs
	cs.mu.Unlock()
	s.logf("cluster: slot %d fenced toward %s", req.Slot, req.Addr)
	return Reply{Status: StatusOK, Seqs: seqs}
}

// fencedSlots counts slots currently fenced on this node.
func (s *Server) fencedSlots() int {
	s.cluster.mu.RLock()
	defer s.cluster.mu.RUnlock()
	return len(s.cluster.fenced)
}

// clusterDial resolves the migration dialer (nil: plain TCP).
func clusterDial(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial != nil {
		return dial
	}
	return func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
}

// ingestRecords routes transferred records to their local shards and
// applies them as fresh writes (ctlIngest). Donor and acceptor shard
// counts are independent; per-key order survives the regrouping because a
// key lives in exactly one donor shard and arrives in donor-log order.
func (s *Server) ingestRecords(recs []repl.Record) {
	if len(recs) == 0 {
		return
	}
	groups := make(map[int][]repl.Record)
	for _, rec := range recs {
		id := ShardFor(rec.Key, len(s.shards))
		groups[id] = append(groups[id], rec)
	}
	for id, g := range groups {
		resp := make(chan Reply, 1)
		s.shards[id].queue <- &request{ctl: ctlIngest, recs: g, resp: resp}
		<-resp
	}
}

// pairsToRecords converts snapshot pairs to put records for ingest.
func pairsToRecords(pairs []KV) []repl.Record {
	recs := make([]repl.Record, len(pairs))
	for i, kv := range pairs {
		recs[i] = repl.Record{Op: repl.RecPut, Key: kv.Key, Value: kv.Value}
	}
	return recs
}

// errMigrationRestart reports a catch-up cursor that fell behind the
// donor's log truncation; the caller restarts from a fresh snapshot.
var errMigrationRestart = errors.New("server: migration cursor truncated; restart from snapshot")

// errMigrationStopped reports a migration interrupted by server
// shutdown; the slot stays with the donor (or fenced for this
// acceptor, in which case a re-run after restart completes it).
var errMigrationStopped = errors.New("server: migration interrupted by shutdown")

// MigrateIn takes ownership of one cluster slot: snapshot, catch-up,
// fence, final catch-up, commit (see the package comment's state
// machine). dial, when non-nil, replaces the TCP dialer — the hook fault
// injectors use. The donor keeps serving the slot until the fence.
func (s *Server) MigrateIn(slot int, dial func(addr string) (net.Conn, error)) error {
	if !s.clusterOn() {
		return errors.New("server: cluster tier not configured")
	}
	m := s.clusterMap()
	if m == nil {
		return errors.New("server: no cluster map")
	}
	if slot < 0 || slot >= m.Slots {
		return fmt.Errorf("server: no slot %d", slot)
	}
	donor := m.OwnerOf(slot)
	if donor == s.cluster.self {
		return nil
	}
	if !s.migEnter() {
		return errMigrationStopped
	}
	defer s.migExit()
	dialer := clusterDial(dial)
	for attempt := 0; ; attempt++ {
		err := s.migrateOnce(slot, donor, dialer)
		if err == nil {
			return nil
		}
		if errors.Is(err, errMigrationRestart) && attempt < 3 {
			s.logf("cluster: slot %d migration restarting (%v)", slot, err)
			continue
		}
		return err
	}
}

// migrateOnce runs one attempt of the migration state machine against the
// donor.
func (s *Server) migrateOnce(slot int, donor string, dial func(addr string) (net.Conn, error)) error {
	conn, err := dial(donor)
	if err != nil {
		return fmt.Errorf("server: dialing donor %s: %w", donor, err)
	}
	cl := NewClient(conn)
	cl.SetTimeout(10 * time.Second) // bound each RPC so shutdown's drain wait is bounded too
	defer cl.Close()

	// Donor shape and pre-snapshot applied sequences (the catch-up bases:
	// every record at or below them is reflected in the snapshot).
	st, err := cl.Stats()
	if err != nil {
		return fmt.Errorf("server: donor stats: %w", err)
	}
	cursors := make([]uint64, st.Shards)
	for i, ps := range st.PerShard {
		if i < len(cursors) && ps.Repl != nil {
			cursors[i] = ps.Repl.Applied
		}
	}

	// Snapshot: bulk-copy the slot's live pairs, shard by shard.
	for ds := 0; ds < st.Shards; ds++ {
		cursor := uint64(0)
		for {
			if s.migStopped() {
				return errMigrationStopped
			}
			done, next, pairs, err := cl.MigSnapshot(uint32(ds), uint32(slot), cursor, MaxScanLimit)
			if err != nil {
				return fmt.Errorf("server: snapshot of donor shard %d: %w", ds, err)
			}
			s.ingestRecords(pairsToRecords(pairs))
			if done {
				break
			}
			cursor = next
		}
	}

	// Catch-up: tail each donor shard's durable log until drained.
	for ds := 0; ds < st.Shards; ds++ {
		if err := s.pullUntil(cl, uint32(ds), uint32(slot), &cursors[ds], nil); err != nil {
			return err
		}
	}

	// Fence: the donor stops serving the slot and reports the final
	// per-shard watermarks. Unavailable means its barrier is still
	// draining a concurrent fence of the same handover; retry briefly.
	var fenceSeqs []uint64
	for {
		if s.migStopped() {
			return errMigrationStopped
		}
		seqs, err := cl.MigFence(uint32(slot), s.cluster.self)
		if err == nil {
			fenceSeqs = seqs
			break
		}
		if errors.Is(err, ErrUnavailable) {
			time.Sleep(time.Millisecond)
			continue
		}
		return fmt.Errorf("server: fencing slot %d on %s: %w", slot, donor, err)
	}

	// Final catch-up: reach every fence watermark. After this, every
	// donor-acked write of the slot is applied locally.
	for ds := 0; ds < st.Shards && ds < len(fenceSeqs); ds++ {
		target := fenceSeqs[ds]
		if err := s.pullUntil(cl, uint32(ds), uint32(slot), &cursors[ds], &target); err != nil {
			return err
		}
	}

	if s.migStopped() {
		return errMigrationStopped
	}
	// Commit: build epoch+1 from the donor's map (the epoch the fence was
	// validated under), install locally first — this node must serve the
	// slot before the donor releases it — then on the donor (required:
	// it releases the fence, audits, and purges), then best-effort
	// elsewhere.
	img, err := cl.ClusterMap()
	if err != nil {
		return fmt.Errorf("server: donor map: %w", err)
	}
	base, err := cluster.Decode(img)
	if err != nil {
		return fmt.Errorf("server: donor map: %w", err)
	}
	next, err := base.WithOwner(slot, s.cluster.self)
	if err != nil {
		return err
	}
	if rep := s.installMap(next); rep.Status != StatusOK {
		return fmt.Errorf("server: installing handover map: %v", rep.Err())
	}
	if err := cl.MapUpdate(next); err != nil && !errors.Is(err, ErrWrongEpoch) {
		return fmt.Errorf("server: committing handover on donor %s: %w", donor, err)
	}
	s.cluster.migratedIn.Add(1)
	if s.flight != nil {
		s.trigger(TriggerMigration, fmt.Sprintf("slot %d accepted from %s at epoch %d", slot, donor, next.Epoch))
	}
	s.logf("cluster: slot %d accepted from %s (epoch %d)", slot, donor, next.Epoch)
	for _, node := range next.Nodes {
		if node == s.cluster.self || node == donor {
			continue
		}
		s.gossipMap(node, next, dial)
	}
	return nil
}

// pullUntil tails one donor shard's log from *cursor: with target nil,
// until the cursor reaches the shard's newest logged sequence; with a
// target, until the cursor reaches it. A non-contiguous reply means the
// donor truncated past the cursor — restart from a snapshot.
func (s *Server) pullUntil(cl *Client, shard, slot uint32, cursor *uint64, target *uint64) error {
	for {
		if s.migStopped() {
			return errMigrationStopped
		}
		contiguous, through, last, recs, err := cl.MigPull(shard, slot, *cursor, MaxReplBatch)
		if err != nil {
			return fmt.Errorf("server: catch-up pull of donor shard %d: %w", shard, err)
		}
		if !contiguous {
			return fmt.Errorf("%w (donor shard %d, cursor %d)", errMigrationRestart, shard, *cursor)
		}
		s.ingestRecords(recs)
		*cursor = through
		goal := last
		if target != nil {
			goal = *target
		}
		if *cursor >= goal {
			return nil
		}
	}
}

// gossipMap pushes a map to one node, best-effort: stale-epoch rejection
// and unreachability are both fine — the node will learn the map from a
// MOVED-triggered refresh instead.
func (s *Server) gossipMap(addr string, m *cluster.Map, dial func(addr string) (net.Conn, error)) {
	conn, err := clusterDial(dial)(addr)
	if err != nil {
		return
	}
	cl := NewClient(conn)
	defer cl.Close()
	cl.SetTimeout(2 * time.Second)
	_ = cl.MapUpdate(m)
}

// JoinCluster adopts the map of a running node: the joiner owns nothing
// (it answers MOVED for every key) until a Rebalance migrates slots onto
// it. dial, when non-nil, replaces the TCP dialer.
func (s *Server) JoinCluster(seed string, dial func(addr string) (net.Conn, error)) error {
	if !s.clusterOn() {
		return errors.New("server: cluster tier not configured")
	}
	conn, err := clusterDial(dial)(seed)
	if err != nil {
		return fmt.Errorf("server: dialing seed %s: %w", seed, err)
	}
	cl := NewClient(conn)
	defer cl.Close()
	img, err := cl.ClusterMap()
	if err != nil {
		return fmt.Errorf("server: fetching map from %s: %w", seed, err)
	}
	m, err := cluster.Decode(img)
	if err != nil {
		return fmt.Errorf("server: map from %s: %w", seed, err)
	}
	if rep := s.installMap(m); rep.Status != StatusOK && rep.Status != StatusWrongEpoch {
		return fmt.Errorf("server: installing seed map: %v", rep.Err())
	}
	return nil
}

// Rebalance migrates slots onto this node until it owns its fair share
// (cluster.RebalanceTarget), one live migration at a time, and returns
// how many slots it took. The scale-out path: JoinCluster, then
// Rebalance under load.
func (s *Server) Rebalance(dial func(addr string) (net.Conn, error)) (int, error) {
	if !s.clusterOn() {
		return 0, errors.New("server: cluster tier not configured")
	}
	moved := 0
	for {
		m := s.clusterMap()
		if m == nil {
			return moved, errors.New("server: no cluster map")
		}
		target, err := cluster.RebalanceTarget(m, s.cluster.self)
		if err != nil {
			return moved, err
		}
		var next *cluster.Move
		for _, mv := range cluster.PlanMoves(m, target) {
			if mv.To == s.cluster.self {
				mv := mv
				next = &mv
				break
			}
		}
		if next == nil {
			return moved, nil
		}
		if err := s.MigrateIn(next.Slot, dial); err != nil {
			return moved, err
		}
		moved++
	}
}

// ClusterStats is the cluster block of a STATS reply.
type ClusterStats struct {
	Self             string `json:"self"`
	Epoch            uint64 `json:"epoch"`
	Slots            int    `json:"slots"`
	SlotsOwned       int    `json:"slots_owned"`
	FencedSlots      int    `json:"fenced_slots"`
	Nodes            int    `json:"nodes"`
	Moved            uint64 `json:"moved"` // data ops answered StatusMoved
	StaleEpochWrites uint64 `json:"stale_epoch_writes"`
	MapFetches       uint64 `json:"map_fetches"`
	MapUpdates       uint64 `json:"map_updates"`
	MapRejects       uint64 `json:"map_rejects"`
	MigratedIn       uint64 `json:"migrated_in"`
	MigratedOut      uint64 `json:"migrated_out"`
	SnapshotsServed  uint64 `json:"snapshots_served"`
	PullsServed      uint64 `json:"pulls_served"`
	Ingested         uint64 `json:"ingested"` // records applied by migration ingest
	Purged           uint64 `json:"purged"`   // keys reclaimed from donated slots
}

func (s *Server) clusterStats() *ClusterStats {
	if !s.clusterOn() {
		return nil
	}
	cs := &s.cluster
	st := &ClusterStats{
		Self:             cs.self,
		FencedSlots:      s.fencedSlots(),
		StaleEpochWrites: cs.staleEpochWrites.Load(),
		MapFetches:       cs.mapFetches.Load(),
		MapUpdates:       cs.mapUpdates.Load(),
		MapRejects:       cs.mapRejects.Load(),
		MigratedIn:       cs.migratedIn.Load(),
		MigratedOut:      cs.migratedOut.Load(),
		SnapshotsServed:  cs.snapshotsServed.Load(),
		PullsServed:      cs.pullsServed.Load(),
	}
	if m := s.clusterMap(); m != nil {
		st.Epoch = m.Epoch
		st.Slots = m.Slots
		st.SlotsOwned = m.Owned(cs.self)
		st.Nodes = len(m.Nodes)
	}
	for _, sh := range s.shards {
		st.Moved += sh.moved.Load()
		st.Ingested += sh.ingested.Load()
		st.Purged += sh.purged.Load()
	}
	return st
}

// registerClusterMetrics exports the cluster-tier series.
func (s *Server) registerClusterMetrics(reg *obs.Registry) {
	cs := &s.cluster
	reg.GaugeFunc("server_cluster_epoch", "current cluster map epoch (0: no map)", func() int64 {
		if m := s.clusterMap(); m != nil {
			return int64(m.Epoch)
		}
		return 0
	})
	reg.GaugeFunc("server_cluster_slots_owned", "cluster slots this node owns", func() int64 {
		if m := s.clusterMap(); m != nil {
			return int64(m.Owned(cs.self))
		}
		return 0
	})
	reg.GaugeFunc("server_cluster_fenced_slots", "slots fenced mid-handover on this node", func() int64 {
		return int64(s.fencedSlots())
	})
	reg.CounterFunc("server_cluster_moved_total", "data operations answered StatusMoved", func() uint64 {
		var n uint64
		for _, sh := range s.shards {
			n += sh.moved.Load()
		}
		return n
	})
	reg.CounterFunc("server_cluster_stale_epoch_writes_total", "post-fence writes found by handover audits", func() uint64 { return cs.staleEpochWrites.Load() })
	reg.CounterFunc("server_cluster_map_fetches_total", "cluster map images served", func() uint64 { return cs.mapFetches.Load() })
	reg.CounterFunc("server_cluster_map_updates_total", "cluster maps installed", func() uint64 { return cs.mapUpdates.Load() })
	reg.CounterFunc("server_cluster_map_rejects_total", "map installs refused for a stale epoch", func() uint64 { return cs.mapRejects.Load() })
	reg.CounterFunc("server_cluster_migrated_in_total", "slots accepted by live migration", func() uint64 { return cs.migratedIn.Load() })
	reg.CounterFunc("server_cluster_migrated_out_total", "slots donated by live migration", func() uint64 { return cs.migratedOut.Load() })
	reg.CounterFunc("server_cluster_ingested_total", "records applied by migration ingest", func() uint64 {
		var n uint64
		for _, sh := range s.shards {
			n += sh.ingested.Load()
		}
		return n
	})
	reg.CounterFunc("server_cluster_purged_total", "keys reclaimed from donated slots", func() uint64 {
		var n uint64
		for _, sh := range s.shards {
			n += sh.purged.Load()
		}
		return n
	})
}
