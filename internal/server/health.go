package server

// Health probes and the /statusz document. The contract separates two
// questions an orchestrator asks:
//
//   - Live: is the process making progress at all? False means "restart
//     me" — only Close flips it, since a crashed shard worker is the
//     supervisor's job, not the restart loop's.
//   - Ready: should this instance receive client traffic right now? False
//     while the instance would refuse or mis-serve requests for reasons a
//     restart cannot fix: a read-only replica, a self-fenced primary, a
//     shard that is recovering, wedged, or behind its breaker.
//
// obs.MuxHealth serves both under /healthz and the full Statusz document
// under /statusz.

import "fmt"

// Live reports process liveness: true until Close.
func (s *Server) Live() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// Ready reports whether this instance should receive client traffic, with
// a one-line reason when it should not.
func (s *Server) Ready() (bool, string) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return false, "shutting down"
	}
	switch s.repl.role.Load() {
	case RoleReplica:
		if lag := s.replLagRecords(); lag > 0 {
			return false, fmt.Sprintf("read-only replica (%d records behind)", lag)
		}
		return false, "read-only replica"
	case RolePrimary:
		if s.writeFenced() {
			return false, "write-fenced: replica silent past FenceAfter"
		}
	}
	for _, sh := range s.shards {
		if st := sh.state.Load(); st != stateHealthy {
			return false, fmt.Sprintf("shard %d %s", sh.cfg.id, shardStateName(st))
		}
		if bs := sh.breaker.State(); bs != brClosed {
			return false, fmt.Sprintf("shard %d breaker %s", sh.cfg.id, breakerStateName(bs))
		}
	}
	return true, ""
}

// TraceStatus summarizes the tracing plane for /statusz.
type TraceStatus struct {
	Enabled      bool   `json:"enabled"`
	SpansEmitted uint64 `json:"spans_emitted"`
	SlowOpUS     int64  `json:"slow_op_us,omitempty"`
	FlightEvents int    `json:"flight_events"`
	FlightDumps  uint64 `json:"flight_dumps"`
	FlightErrors uint64 `json:"flight_dump_errors"`
	LastDump     string `json:"last_dump,omitempty"`
}

// Statusz is the operator-facing status document served at /statusz: the
// health verdicts with their reason, the tracing plane, and the full
// stats document.
type Statusz struct {
	Live        bool        `json:"live"`
	Ready       bool        `json:"ready"`
	ReadyReason string      `json:"ready_reason,omitempty"`
	Fenced      bool        `json:"fenced"`
	Trace       TraceStatus `json:"trace"`
	Stats       Stats       `json:"stats"`
}

// CollectStatusz assembles the /statusz document.
func (s *Server) CollectStatusz() Statusz {
	ready, reason := s.Ready()
	doc := Statusz{
		Live:        s.Live(),
		Ready:       ready,
		ReadyReason: reason,
		Fenced:      s.repl.role.Load() == RolePrimary && s.writeFenced(),
		Stats:       s.CollectStats(),
	}
	if s.spans != nil {
		doc.Trace = TraceStatus{
			Enabled:      true,
			SpansEmitted: s.spans.Emitted(),
			SlowOpUS:     s.cfg.SlowOp.Microseconds(),
		}
	}
	if s.flight != nil {
		doc.Trace.FlightEvents = s.flight.Len()
		doc.Trace.FlightDumps = s.flight.Dumps()
		doc.Trace.FlightErrors = s.flight.DumpErrors()
		doc.Trace.LastDump = s.flight.LastDump()
	}
	return doc
}
