package server

import (
	"net"
	"testing"

	"nvref/internal/fault"
	"nvref/internal/obs"
	"nvref/internal/pmem"
)

// testPoolSize keeps checkpoints (whole-pool snapshots) cheap in tests.
const testPoolSize = 1 << 20

// testServer wraps a Server so cleanup tolerates tests that already closed
// or aborted it themselves (shard queues may be closed only once).
type testServer struct {
	*Server
	addr string
	done bool
}

func (ts *testServer) close() {
	if !ts.done {
		ts.done = true
		ts.Server.Close()
	}
}

func (ts *testServer) abort() {
	if !ts.done {
		ts.done = true
		ts.Server.Abort()
	}
}

func startServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	if cfg.PoolSize == 0 {
		cfg.PoolSize = testPoolSize
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := &testServer{Server: srv, addr: addr.String()}
	t.Cleanup(ts.close)
	return ts
}

func dial(t *testing.T, ts *testServer) *Client {
	t.Helper()
	cl, err := Dial(ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// keyVal is the deterministic value every test stores under a key, so
// recovery checks can recompute expectations.
func keyVal(k uint64) uint64 { return k*2654435761 + 1 }

func TestCRUD(t *testing.T) {
	ts := startServer(t, Config{Shards: 4})
	cl := dial(t, ts)

	const n = 200
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := cl.Get(k)
		if err != nil || !ok || v != keyVal(k) {
			t.Fatalf("get %d: v=%d ok=%v err=%v", k, v, ok, err)
		}
	}
	if _, ok, err := cl.Get(n + 1); err != nil || ok {
		t.Fatalf("get miss: ok=%v err=%v", ok, err)
	}

	// Overwrite.
	if err := cl.Put(0, 999); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := cl.Get(0); v != 999 {
		t.Fatalf("overwrite: got %d", v)
	}

	// Delete half the keys; they must vanish, the rest must stay.
	for k := uint64(0); k < n; k += 2 {
		found, err := cl.Delete(k)
		if err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", k, found, err)
		}
	}
	if found, err := cl.Delete(0); err != nil || found {
		t.Fatalf("re-delete: found=%v err=%v", found, err)
	}
	for k := uint64(0); k < n; k++ {
		_, ok, err := cl.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := k%2 == 1; ok != want {
			t.Fatalf("after delete, key %d: ok=%v want %v", k, ok, want)
		}
	}
}

func TestScanMergesShards(t *testing.T) {
	ts := startServer(t, Config{Shards: 4})
	cl := dial(t, ts)

	const n = 100
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Keys are hash-sharded, so an ordered range crosses every shard; the
	// server must merge the partial results back into global key order.
	pairs, err := cl.Scan(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 {
		t.Fatalf("scan returned %d pairs, want 20", len(pairs))
	}
	for i, kv := range pairs {
		want := uint64(10 + i)
		if kv.Key != want || kv.Value != keyVal(want) {
			t.Fatalf("pair %d: got (%d,%d), want (%d,%d)", i, kv.Key, kv.Value, want, keyVal(want))
		}
	}
	// Range past the end.
	pairs, err = cl.Scan(n-5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("tail scan returned %d pairs, want 5", len(pairs))
	}
}

func TestBatchPreservesOrder(t *testing.T) {
	ts := startServer(t, Config{Shards: 4})
	cl := dial(t, ts)

	// One batch mixing PUTs and GETs whose sub-requests scatter across
	// shards; replies must come back in request order.
	var sub []Request
	const n = 64
	for k := uint64(0); k < n; k++ {
		sub = append(sub, Request{Op: OpPut, Key: k, Value: keyVal(k)})
	}
	reps, err := cl.Batch(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != n {
		t.Fatalf("got %d replies, want %d", len(reps), n)
	}

	sub = sub[:0]
	for k := uint64(0); k < n; k++ {
		sub = append(sub, Request{Op: OpGet, Key: k})
	}
	sub = append(sub, Request{Op: OpScan, Key: 0, Limit: 3})
	reps, err = cl.Batch(sub)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		rep := reps[k]
		if rep.Status != StatusOK || !rep.Found || rep.Value != keyVal(k) {
			t.Fatalf("reply %d out of order or wrong: %+v", k, rep)
		}
	}
	if got := reps[n]; len(got.Pairs) != 3 || got.Pairs[0].Key != 0 {
		t.Fatalf("scan inside batch: %+v", got)
	}
}

func TestPipelining(t *testing.T) {
	ts := startServer(t, Config{Shards: 2})
	cl := dial(t, ts)

	p := cl.Pipeline()
	const n = 128
	for k := uint64(0); k < n; k++ {
		p.Put(k, keyVal(k))
	}
	reps, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != n {
		t.Fatalf("got %d replies, want %d", len(reps), n)
	}

	for k := uint64(0); k < n; k++ {
		p.Get(k)
	}
	p.Delete(0)
	reps, err = p.Run()
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		if !reps[k].Found || reps[k].Value != keyVal(k) {
			t.Fatalf("pipelined reply %d: %+v", k, reps[k])
		}
	}
	if !reps[n].Found {
		t.Fatalf("pipelined delete: %+v", reps[n])
	}
}

func TestStatsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ts := startServer(t, Config{Shards: 4, Reg: reg})
	cl := dial(t, ts)

	const n = 100
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < n; k++ {
		if _, _, err := cl.Get(k); err != nil {
			t.Fatal(err)
		}
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("stats shards: %+v", st)
	}
	if st.Connections < 1 {
		t.Errorf("connections = %d, want >= 1", st.Connections)
	}
	var ops, gets, puts, keys, cycles uint64
	for _, sh := range st.PerShard {
		ops += sh.Ops
		gets += sh.Gets
		puts += sh.Puts
		keys += sh.Keys
		cycles += sh.Cycles
		if sh.Ops == 0 {
			t.Errorf("shard %d executed no ops; keys should spread", sh.ID)
		}
	}
	if ops != 2*n || gets != n || puts != n || keys != n {
		t.Errorf("ops=%d gets=%d puts=%d keys=%d; want %d/%d/%d/%d", ops, gets, puts, keys, 2*n, n, n, n)
	}
	if cycles == 0 {
		t.Error("no simulated cycles recorded")
	}

	// The same numbers must be visible through the obs registry, and the
	// latency histograms must have observed every data op.
	snap := reg.Snapshot()
	if got := snap.Value("server_requests_total"); got < int64(2*n) {
		t.Errorf("server_requests_total = %d, want >= %d", got, 2*n)
	}
	if got := snap.Value("server_shards"); got != 4 {
		t.Errorf("server_shards = %d", got)
	}
	var snapOps, latCount int64
	for i := 0; i < 4; i++ {
		snapOps += snap.Value(obsName(i, "ops_total"))
		ser, ok := snap.Find(obsName(i, "latency_us"))
		if !ok {
			t.Fatalf("latency histogram for shard %d missing", i)
		}
		latCount += ser.Value
		if _, ok := snap.Find(obsName(i, "queue_depth")); !ok {
			t.Errorf("queue depth gauge for shard %d missing", i)
		}
	}
	if snapOps != int64(ops) {
		t.Errorf("metrics ops %d != stats ops %d", snapOps, ops)
	}
	if latCount != int64(ops) {
		t.Errorf("latency histogram count %d != ops %d", latCount, ops)
	}
}

func obsName(shard int, suffix string) string {
	return "server_shard" + string(rune('0'+shard)) + "_" + suffix
}

func TestBadFrameDropsConnection(t *testing.T) {
	ts := startServer(t, Config{Shards: 1})
	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, []byte{99}); err != nil {
		t.Fatal(err)
	}
	body, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("want a BadRequest reply before the drop: %v", err)
	}
	if len(body) == 0 || body[0] != StatusBadRequest {
		t.Fatalf("reply status = %v, want BadRequest", body)
	}
	// The connection must now be closed by the server.
	if _, err := ReadFrame(conn); err == nil {
		t.Fatal("connection still open after protocol error")
	}
}

func TestGracefulShutdownPersists(t *testing.T) {
	stores := sharedStores(4)
	cfg := Config{Shards: 4, StoreFor: stores, CheckpointEvery: -1}

	ts := startServer(t, cfg)
	cl := dial(t, ts)
	const n = 300
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Graceful Close drains and checkpoints every shard even though no
	// explicit barrier was ever requested.
	cl.Close()
	ts.close()

	ts2 := startServer(t, cfg)
	cl2 := dial(t, ts2)
	for k := uint64(0); k < n; k++ {
		v, ok, err := cl2.Get(k)
		if err != nil || !ok || v != keyVal(k) {
			t.Fatalf("after restart, get %d: v=%d ok=%v err=%v", k, v, ok, err)
		}
	}
	var keys, fsckErrs uint64
	for _, sh := range ts2.CollectStats().PerShard {
		keys += sh.Keys
		fsckErrs += sh.FsckErrors
	}
	if keys != n {
		t.Errorf("recovered %d keys, want %d", keys, n)
	}
	if fsckErrs != 0 {
		t.Errorf("fsck errors on clean restart: %d", fsckErrs)
	}
}

func TestAbortRollsBackToCheckpoint(t *testing.T) {
	stores := sharedStores(4)
	cfg := Config{Shards: 4, StoreFor: stores, CheckpointEvery: -1}

	ts := startServer(t, cfg)
	cl := dial(t, ts)
	const durable = 200
	for k := uint64(0); k < durable; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Acknowledged but never checkpointed: rolled back by the abort.
	for k := uint64(durable); k < 2*durable; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	ts.abort()

	ts2 := startServer(t, cfg)
	cl2 := dial(t, ts2)
	for k := uint64(0); k < durable; k++ {
		v, ok, err := cl2.Get(k)
		if err != nil || !ok || v != keyVal(k) {
			t.Fatalf("checkpointed key %d lost: v=%d ok=%v err=%v", k, v, ok, err)
		}
	}
	for k := uint64(durable); k < 2*durable; k++ {
		if _, ok, err := cl2.Get(k); err != nil {
			t.Fatal(err)
		} else if ok {
			t.Fatalf("uncheckpointed key %d survived the abort", k)
		}
	}
	for _, sh := range ts2.CollectStats().PerShard {
		if sh.FsckErrors != 0 {
			t.Errorf("shard %d: %d fsck errors after abort recovery", sh.ID, sh.FsckErrors)
		}
	}
}

// sharedStores returns a StoreFor closure over one fixed set of MemStores,
// so successive servers see the same "disk".
func sharedStores(n int) func(int) pmem.Store {
	stores := make([]pmem.Store, n)
	for i := range stores {
		stores[i] = pmem.NewMemStore()
	}
	return func(i int) pmem.Store { return stores[i] }
}

func TestInjectCrashRecoversShard(t *testing.T) {
	ts := startServer(t, Config{Shards: 4, CheckpointEvery: -1})
	cl := dial(t, ts)

	const n = 100
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One uncheckpointed key destined for shard 0.
	var extra uint64
	for extra = n; ShardFor(extra, 4) != 0; extra++ {
	}
	if err := cl.Put(extra, 1); err != nil {
		t.Fatal(err)
	}

	if err := ts.InjectCrash(0); err != nil {
		t.Fatal(err)
	}
	if err := ts.InjectCrash(99); err == nil {
		t.Error("crash of nonexistent shard succeeded")
	}

	// Checkpointed keys survive; the uncheckpointed one rolled back.
	for k := uint64(0); k < n; k++ {
		v, ok, err := cl.Get(k)
		if err != nil || !ok || v != keyVal(k) {
			t.Fatalf("after crash, get %d: v=%d ok=%v err=%v", k, v, ok, err)
		}
	}
	if _, ok, _ := cl.Get(extra); ok {
		t.Error("uncheckpointed key survived the shard crash")
	}
	st := ts.CollectStats()
	if st.PerShard[0].Crashes != 1 || st.PerShard[0].Recoveries != 1 {
		t.Errorf("shard 0 crash counters: %+v", st.PerShard[0])
	}
	for _, sh := range st.PerShard[1:] {
		if sh.Crashes != 0 {
			t.Errorf("shard %d crashed collaterally", sh.ID)
		}
	}
}

func TestScheduledCrashPoint(t *testing.T) {
	// Arm a fault trigger on shard 0's fifth operation; the worker must
	// crash there, recover, and keep serving.
	trig := fault.NewTrigger(CrashPointOp, 5)
	ts := startServer(t, Config{
		Shards: 2,
		SchedFor: func(i int) fault.Scheduler {
			if i == 0 {
				return trig
			}
			return nil
		},
	})
	cl := dial(t, ts)
	for k := uint64(0); k < 200; k++ {
		if err := cl.Put(k, keyVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	if !trig.Fired() {
		t.Fatal("trigger never fired")
	}
	st := ts.CollectStats()
	if st.PerShard[0].Crashes != 1 || st.PerShard[0].Recoveries != 1 {
		t.Errorf("shard 0: %+v", st.PerShard[0])
	}
	if st.PerShard[1].Crashes != 0 {
		t.Errorf("shard 1 crashed: %+v", st.PerShard[1])
	}
	// The service stayed up throughout.
	if _, _, err := cl.Get(0); err != nil {
		t.Fatal(err)
	}
}

func TestServeAfterClose(t *testing.T) {
	ts := startServer(t, Config{Shards: 1})
	ts.close()
	if err := ts.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Fatal("serving after close succeeded")
	}
}
