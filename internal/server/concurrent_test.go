package server

import (
	"fmt"
	"sync"
	"testing"

	"nvref/internal/obs"
)

// TestDisjointShardsUnaffectedByCrashes is the serving tier's isolation
// property under -race: client goroutines hammer shards 1..3 (keys chosen
// by ShardFor) while the main goroutine repeatedly power-cycles shard 0.
// Every write to a surviving shard must remain readable with the value
// just written, and no shard but 0 may record a crash. A scraper goroutine
// snapshots the metrics registry throughout, so the race detector also
// covers the collector paths.
func TestDisjointShardsUnaffectedByCrashes(t *testing.T) {
	const (
		shards      = 4
		keysPerGor  = 48
		crashRounds = 20
	)
	reg := obs.NewRegistry()
	ts := startServer(t, Config{Shards: shards, CheckpointEvery: 64, Reg: reg})

	// Partition a key range by destination shard.
	keysFor := make([][]uint64, shards)
	for k := uint64(0); ; k++ {
		s := ShardFor(k, shards)
		if len(keysFor[s]) < keysPerGor {
			keysFor[s] = append(keysFor[s], k)
		}
		full := true
		for _, ks := range keysFor {
			if len(ks) < keysPerGor {
				full = false
				break
			}
		}
		if full {
			break
		}
	}

	stop := make(chan struct{})
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 1; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cl, err := Dial(ts.addr)
			if err != nil {
				errs[s] = err
				return
			}
			defer cl.Close()
			for round := uint64(1); ; round++ {
				for _, k := range keysFor[s] {
					want := k ^ round
					if err := cl.Put(k, want); err != nil {
						errs[s] = fmt.Errorf("put %d: %w", k, err)
						return
					}
					v, ok, err := cl.Get(k)
					if err != nil {
						errs[s] = fmt.Errorf("get %d: %w", k, err)
						return
					}
					if !ok || v != want {
						errs[s] = fmt.Errorf("shard %d key %d round %d: got (%d,%v), want %d — crash of shard 0 leaked", s, k, round, v, ok, want)
						return
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(s)
	}

	// Scrape metrics concurrently: collectors must be race-free against the
	// workers and the crash/recovery path.
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
			}
		}
	}()

	for i := 0; i < crashRounds; i++ {
		if err := ts.InjectCrash(0); err != nil {
			t.Fatalf("crash round %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	<-scrapeDone

	for s := 1; s < shards; s++ {
		if errs[s] != nil {
			t.Errorf("shard %d worker: %v", s, errs[s])
		}
	}
	st := ts.CollectStats()
	if got := st.PerShard[0].Crashes; got != crashRounds {
		t.Errorf("shard 0 crashes = %d, want %d", got, crashRounds)
	}
	if got := st.PerShard[0].Recoveries; got != crashRounds {
		t.Errorf("shard 0 recoveries = %d, want %d", got, crashRounds)
	}
	for s := 1; s < shards; s++ {
		sh := st.PerShard[s]
		if sh.Crashes != 0 {
			t.Errorf("shard %d recorded %d crashes; only shard 0 was power-cycled", s, sh.Crashes)
		}
		if sh.Ops == 0 {
			t.Errorf("shard %d executed no operations", s)
		}
	}
}
