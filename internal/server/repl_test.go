package server

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"nvref/internal/pmem"
)

// startPair boots a primary and a replica following it, both on loopback.
func startPair(t *testing.T, shards int, primaryCfg, replicaCfg func(*Config)) (p, r *Server, paddr, raddr net.Addr) {
	t.Helper()
	pcfg := Config{
		Shards:          shards,
		Role:            RolePrimary,
		CheckpointEvery: 128,
		AckTimeout:      2 * time.Second,
	}
	if primaryCfg != nil {
		primaryCfg(&pcfg)
	}
	p, err := New(pcfg)
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	paddr, err = p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("primary start: %v", err)
	}
	rcfg := Config{
		Shards:          shards,
		Role:            RoleReplica,
		CheckpointEvery: 128,
		FollowAddr:      paddr.String(),
		FollowPoll:      time.Millisecond,
	}
	if replicaCfg != nil {
		replicaCfg(&rcfg)
	}
	r, err = New(rcfg)
	if err != nil {
		p.Abort()
		t.Fatalf("replica: %v", err)
	}
	raddr, err = r.Start("127.0.0.1:0")
	if err != nil {
		p.Abort()
		r.Abort()
		t.Fatalf("replica start: %v", err)
	}
	return p, r, paddr, raddr
}

func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReplicationPair(t *testing.T) {
	p, r, paddr, raddr := startPair(t, 2, nil, nil)
	defer r.Abort()
	defer p.Abort()

	// Wait for the follower to make contact so writes are held, not
	// degraded-acked.
	waitFor(t, "follower contact", 5*time.Second, func() bool {
		return r.CollectStats().Follower.Pulls > 0
	})

	c, err := Dial(paddr.String())
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	defer c.Close()

	const n = 200
	tokens := make(map[uint64]uint64, n) // key → seq
	for k := uint64(1); k <= n; k++ {
		shard, seq, err := c.PutSeq(k, k*10)
		if err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		if seq == 0 {
			t.Fatalf("put %d: no sequence assigned (shard %d)", k, shard)
		}
		tokens[k] = seq
	}
	if _, err := c.Delete(5); err != nil {
		t.Fatalf("delete: %v", err)
	}

	// Lag must drain to zero once writes stop.
	waitFor(t, "lag drain", 5*time.Second, func() bool {
		return p.CollectStats().ReplLagRecords == 0
	})

	// Every acked write is readable on the replica, gated by its token.
	rc, err := Dial(raddr.String())
	if err != nil {
		t.Fatalf("dial replica: %v", err)
	}
	defer rc.Close()
	for k := uint64(1); k <= n; k++ {
		v, found, err := rc.GetAt(k, tokens[k])
		if k == 5 {
			if err != nil {
				t.Fatalf("get deleted %d: %v", k, err)
			}
			if found {
				t.Fatalf("key %d: delete did not replicate", k)
			}
			continue
		}
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !found || v != k*10 {
			t.Fatalf("key %d: got (%d, %v), want (%d, true)", k, v, found, k*10)
		}
	}

	// A gate from the future is refused with LAGGING, not served stale.
	if _, _, err := rc.GetAt(1, 1<<40); !errors.Is(err, ErrLagging) {
		t.Fatalf("future gate: got %v, want ErrLagging", err)
	}
	// Plain writes bounce off the replica.
	if err := rc.Put(999, 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica put: got %v, want ErrReadOnly", err)
	}

	// The primary held acks (semi-sync) rather than degrading, and no
	// held ack timed out.
	ps := p.CollectStats()
	for _, sh := range ps.PerShard {
		if sh.Repl == nil {
			t.Fatalf("shard %d: no repl stats on a primary", sh.ID)
		}
		if sh.Repl.TimeoutAcks != 0 {
			t.Fatalf("shard %d: %d write acks timed out", sh.ID, sh.Repl.TimeoutAcks)
		}
	}
	if ps.Role != "primary" {
		t.Fatalf("primary role = %q", ps.Role)
	}
	if rs := r.CollectStats(); rs.Role != "replica" || rs.Follower == nil {
		t.Fatalf("replica stats: role=%q follower=%v", rs.Role, rs.Follower)
	}
}

func TestPromotionPreservesAckedWrites(t *testing.T) {
	p, r, paddr, raddr := startPair(t, 2, nil, nil)
	defer r.Abort()
	pKilled := false
	defer func() {
		if !pKilled {
			p.Abort()
		}
	}()

	waitFor(t, "follower contact", 5*time.Second, func() bool {
		return r.CollectStats().Follower.Pulls > 0
	})

	c, err := Dial(paddr.String())
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	const n = 150
	acked := make(map[uint64]uint64, n)
	for k := uint64(1); k <= n; k++ {
		if _, _, err := c.PutSeq(k, k^0xabcd); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		acked[k] = k ^ 0xabcd
	}
	c.Close()

	// Zero-loss precondition: every ack waited for replica coverage.
	ps := p.CollectStats()
	for _, sh := range ps.PerShard {
		if sh.Repl.DegradedAcks != 0 {
			t.Fatalf("shard %d: %d degraded acks — test raced the follower", sh.ID, sh.Repl.DegradedAcks)
		}
		if sh.Repl.TimeoutAcks != 0 {
			t.Fatalf("shard %d: %d timeout acks", sh.ID, sh.Repl.TimeoutAcks)
		}
	}

	// Kill the primary outright and promote the replica.
	p.Abort()
	pKilled = true
	if err := r.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := r.Promote(); err == nil {
		t.Fatal("second promote should fail")
	}
	if r.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", r.Promotions())
	}

	// Every acknowledged write must be served by the promoted replica,
	// which must also accept new writes now.
	rc, err := Dial(raddr.String())
	if err != nil {
		t.Fatalf("dial promoted: %v", err)
	}
	defer rc.Close()
	for k, want := range acked {
		v, found, err := rc.Get(k)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !found || v != want {
			t.Fatalf("acked write lost: key %d got (%d, %v), want (%d, true)", k, v, found, want)
		}
	}
	if _, seq, err := rc.PutSeq(7777, 1); err != nil || seq == 0 {
		t.Fatalf("write on promoted replica: seq=%d err=%v", seq, err)
	}
	if got := r.CollectStats().Role; got != "primary" {
		t.Fatalf("promoted role = %q", got)
	}
}

// TestOplogSurvivesPowerLoss: with a persistent log flushed on every
// append, a power-lost shard replays its log tail past the last
// checkpoint — acked writes survive even though the pool rolled back.
func TestOplogSurvivesPowerLoss(t *testing.T) {
	logStores := []pmem.Store{pmem.NewMemStore(), pmem.NewMemStore()}
	cfg := Config{
		Shards:          2,
		Role:            RolePrimary,
		CheckpointEvery: -1, // never checkpoint on cadence
		LogStoreFor:     func(i int) pmem.Store { return logStores[i] },
		LogFlushEvery:   1,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Abort()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 100
	for k := uint64(1); k <= n; k++ {
		if err := c.Put(k, k+1); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := s.InjectCrash(i); err != nil {
			t.Fatalf("crash shard %d: %v", i, err)
		}
	}
	for k := uint64(1); k <= n; k++ {
		v, found, err := c.Get(k)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !found || v != k+1 {
			t.Fatalf("key %d lost to power loss despite flushed log: (%d, %v)", k, v, found)
		}
	}
	st := s.CollectStats()
	var replayed uint64
	for _, sh := range st.PerShard {
		replayed += sh.Repl.Replayed
	}
	if replayed == 0 {
		t.Fatal("no records replayed at recovery")
	}
}

func TestAckWaiter(t *testing.T) {
	var ack atomic.Uint64
	w := newAckWaiter(&ack, time.Hour, nil, nil, 0)

	mkresp := func() chan Reply { return make(chan Reply, 1) }

	// Covered holds deliver immediately.
	ack.Store(5)
	r1 := mkresp()
	w.hold(r1, Reply{Status: StatusOK, Seq: 5}, 0)
	select {
	case rep := <-r1:
		if rep.Seq != 5 {
			t.Fatalf("seq = %d", rep.Seq)
		}
	default:
		t.Fatal("covered hold was parked")
	}

	// Uncovered holds park until release.
	r2, r3 := mkresp(), mkresp()
	w.hold(r2, Reply{Status: StatusOK, Seq: 6}, 0)
	w.hold(r3, Reply{Status: StatusOK, Seq: 7}, 0)
	if w.count() != 2 {
		t.Fatalf("held = %d, want 2", w.count())
	}
	ack.Store(6)
	w.release(6)
	if len(r2) != 1 || len(r3) != 0 {
		t.Fatalf("release(6): r2=%d r3=%d", len(r2), len(r3))
	}
	ack.Store(7)
	w.release(7)
	if len(r3) != 1 {
		t.Fatal("release(7) left seq 7 parked")
	}

	// Sweep expires stale holds with UNAVAILABLE.
	wFast := newAckWaiter(&ack, time.Nanosecond, nil, nil, 0)
	r4 := mkresp()
	wFast.hold(r4, Reply{Status: StatusOK, Seq: 100}, 0)
	time.Sleep(time.Millisecond)
	wFast.sweep(time.Now())
	rep := <-r4
	if rep.Status != StatusUnavailable {
		t.Fatalf("swept status = %d", rep.Status)
	}
	if wFast.timeouts() != 1 {
		t.Fatalf("timeouts = %d", wFast.timeouts())
	}

	// Shutdown fails holds and stops parking new ones.
	r5 := mkresp()
	w.hold(r5, Reply{Status: StatusOK, Seq: 50}, 0)
	w.shutdown()
	if rep := <-r5; rep.Status != StatusUnavailable {
		t.Fatalf("shutdown status = %d", rep.Status)
	}
	r6 := mkresp()
	w.hold(r6, Reply{Status: StatusOK, Seq: 60}, 0)
	if len(r6) != 1 {
		t.Fatal("post-shutdown hold was parked")
	}
}

// TestAutoPromote: a replica whose primary vanishes promotes itself after
// PromoteAfter of silence.
func TestAutoPromote(t *testing.T) {
	p, r, paddr, _ := startPair(t, 1, nil, func(c *Config) {
		c.PromoteAfter = 100 * time.Millisecond
	})
	defer r.Abort()

	waitFor(t, "follower contact", 5*time.Second, func() bool {
		return r.CollectStats().Follower.Pulls > 0
	})
	c, err := Dial(paddr.String())
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 20; k++ {
		if err := c.Put(k, k); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	c.Close()
	p.Abort()
	waitFor(t, "auto-promotion", 5*time.Second, func() bool {
		return r.Role() == RolePrimary
	})
	if r.Promotions() != 1 {
		t.Fatalf("promotions = %d", r.Promotions())
	}
}

// TestReplicaStartupValidation: a replica must be told whom to follow.
func TestReplicaStartupValidation(t *testing.T) {
	if _, err := New(Config{Shards: 1, Role: RoleReplica}); err == nil {
		t.Fatal("replica without FollowAddr must be rejected")
	}
}

// TestDegradedAcksWithoutReplica: a primary with no live replica acks
// immediately and counts every write as degraded.
func TestDegradedAcksWithoutReplica(t *testing.T) {
	s, err := New(Config{Shards: 1, Role: RolePrimary})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Abort()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := uint64(1); k <= 10; k++ {
		if err := c.Put(k, k); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	st := s.CollectStats()
	if got := st.PerShard[0].Repl.DegradedAcks; got != 10 {
		t.Fatalf("degraded acks = %d, want 10", got)
	}
}

// TestFailoverClientRotation: a ResilientClient with a failover list
// rotates off a read-only replica and lands writes on the primary.
func TestFailoverClientRotation(t *testing.T) {
	p, r, paddr, raddr := startPair(t, 1, nil, nil)
	defer r.Abort()
	defer p.Abort()

	// List the replica FIRST: the client must discover it is read-only
	// and rotate to the primary.
	rc, err := DialResilientList([]string{raddr.String(), paddr.String()}, RetryPolicy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, _, err := rc.PutRYW(42, 4242); err != nil {
		t.Fatalf("put via failover list: %v", err)
	}
	if rc.Failovers() == 0 {
		t.Fatal("client never rotated off the read-only replica")
	}
	v, found, err := rc.GetRYW(42)
	if err != nil || !found || v != 4242 {
		t.Fatalf("GetRYW: (%d, %v, %v)", v, found, err)
	}
}

// TestPrimaryCrashRecoveryKeepsCopiesConvergent: an in-place primary
// power loss (pool rollback + op-log reload) with a live, connected
// replica must not diverge the pair. Shipping is durable-only, so the
// reloaded log is never behind the replica, sequence numbers are never
// re-assigned under the replica's feet, and writes after recovery
// replicate normally.
func TestPrimaryCrashRecoveryKeepsCopiesConvergent(t *testing.T) {
	logStores := []pmem.Store{pmem.NewMemStore(), pmem.NewMemStore()}
	p, r, paddr, raddr := startPair(t, 2, func(c *Config) {
		c.CheckpointEvery = -1 // pools stay at genesis: recovery leans fully on the log
		c.LogStoreFor = func(i int) pmem.Store { return logStores[i] }
		c.LogFlushEvery = -1 // replica pulls are the only flusher (durable-only shipping)
	}, nil)
	defer r.Abort()
	defer p.Abort()

	waitFor(t, "follower contact", 5*time.Second, func() bool {
		return r.CollectStats().Follower.Pulls > 0
	})
	c, err := Dial(paddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tokens := make(map[uint64]uint64)
	put := func(lo, hi uint64) {
		for k := lo; k <= hi; k++ {
			_, seq, err := c.PutSeq(k, k*3)
			if err != nil {
				t.Fatalf("put %d: %v", k, err)
			}
			tokens[k] = seq
		}
	}
	put(1, 100)
	waitFor(t, "lag drain", 5*time.Second, func() bool {
		return p.CollectStats().ReplLagRecords == 0
	})

	// Power-cycle every primary shard in place: pools roll back, logs
	// reload at the durable watermark — which durable-only shipping pins
	// at or above everything the replica has applied.
	for i := 0; i < p.Shards(); i++ {
		if err := p.InjectCrash(i); err != nil {
			t.Fatalf("crash shard %d: %v", i, err)
		}
	}
	put(101, 200)
	waitFor(t, "lag drain after recovery", 5*time.Second, func() bool {
		return p.CollectStats().ReplLagRecords == 0
	})

	// The copies converged: no divergence, no refused batch, and every
	// acked write — before and after the crash — readable on the replica
	// at its token.
	rs := r.CollectStats()
	if rs.Follower.Divergences != 0 {
		t.Fatalf("follower divergences = %d", rs.Follower.Divergences)
	}
	for _, sh := range rs.PerShard {
		if sh.Repl.Gaps != 0 {
			t.Fatalf("shard %d: %d apply gaps", sh.ID, sh.Repl.Gaps)
		}
	}
	rc, err := Dial(raddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for k, seq := range tokens {
		v, found, err := rc.GetAt(k, seq)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !found || v != k*3 {
			t.Fatalf("key %d: got (%d, %v), want (%d, true)", k, v, found, k*3)
		}
	}
}

// TestReplicaAckDurabilityAndRestart: REPLACK means "applied and durably
// logged", so the primary may truncate through replAck and a restarted
// replica still resumes its pull cursor past the truncated base instead
// of livelocking on a sequence gap.
func TestReplicaAckDurabilityAndRestart(t *testing.T) {
	rlogs := []pmem.Store{pmem.NewMemStore(), pmem.NewMemStore()}
	rpools := []pmem.Store{pmem.NewMemStore(), pmem.NewMemStore()}
	var rcfg Config
	p, r, paddr, _ := startPair(t, 2, nil, func(c *Config) {
		c.StoreFor = func(i int) pmem.Store { return rpools[i] }
		c.LogStoreFor = func(i int) pmem.Store { return rlogs[i] }
		c.LogFlushEvery = -1   // the ack path is the replica's only flusher
		c.CheckpointEvery = 32 // checkpoint + truncate often: restart must join image and log tail
		rcfg = *c
	})
	defer p.Abort()
	rAlive := true
	defer func() {
		if rAlive {
			r.Abort()
		}
	}()

	waitFor(t, "follower contact", 5*time.Second, func() bool {
		return r.CollectStats().Follower.Pulls > 0
	})
	c, err := Dial(paddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	tokens := make(map[uint64]uint64, n)
	for k := uint64(1); k <= n; k++ {
		_, seq, err := c.PutSeq(k, k+7)
		if err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		tokens[k] = seq
	}
	waitFor(t, "lag drain", 5*time.Second, func() bool {
		return p.CollectStats().ReplLagRecords == 0
	})

	// Every acked sequence is durable on the replica: nothing dirty, the
	// flushed watermark covering everything applied.
	for _, sh := range r.CollectStats().PerShard {
		if sh.Repl.Log.Dirty != 0 || sh.Repl.Log.FlushedSeq < sh.Repl.Applied {
			t.Fatalf("shard %d: acked beyond durable: %+v", sh.ID, sh.Repl.Log)
		}
	}

	// Checkpoint the primary so it truncates its logs through replAck,
	// then restart the replica on its surviving log stores. The reloaded
	// applied sequence must meet the primary's truncated base.
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r.Abort()
	rAlive = false
	r2, err := New(rcfg)
	if err != nil {
		t.Fatalf("restart replica: %v", err)
	}
	defer r2.Abort()
	raddr2, err := r2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "restarted follower contact", 5*time.Second, func() bool {
		return r2.CollectStats().Follower.Pulls > 0
	})

	// New writes replicate end to end through the restarted replica, and
	// the full acked history is served at its tokens — no gap livelock.
	_, seq, err := c.PutSeq(7777, 42)
	if err != nil || seq == 0 {
		t.Fatalf("post-restart put: seq=%d err=%v", seq, err)
	}
	rc, err := Dial(raddr2.String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	waitFor(t, "restarted replica catch-up", 5*time.Second, func() bool {
		v, found, err := rc.GetAt(7777, seq)
		return err == nil && found && v == 42
	})
	for k, tok := range tokens {
		v, found, err := rc.GetAt(k, tok)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !found || v != k+7 {
			t.Fatalf("key %d: got (%d, %v), want (%d, true)", k, v, found, k+7)
		}
	}
	rs := r2.CollectStats()
	if rs.Follower.Divergences != 0 {
		t.Fatalf("follower divergences = %d", rs.Follower.Divergences)
	}
	for _, sh := range rs.PerShard {
		if sh.Repl.Gaps != 0 {
			t.Fatalf("shard %d: %d apply gaps after restart", sh.ID, sh.Repl.Gaps)
		}
	}
}

// TestPrimaryFencing: with FenceAfter set, a primary that has seen a
// replica refuses writes once the replica goes silent — the fencing half
// of silence-based promotion — while reads keep flowing. A primary that
// never saw a replica is not fenced.
func TestPrimaryFencing(t *testing.T) {
	solo, err := New(Config{Shards: 1, Role: RolePrimary, FenceAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Abort()
	saddr, err := solo.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Dial(saddr.String())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := sc.Put(1, 1); err != nil {
		t.Fatalf("write on a never-paired primary: %v", err)
	}
	sc.Close()

	p, r, paddr, _ := startPair(t, 1, func(c *Config) {
		c.FenceAfter = 50 * time.Millisecond
		c.ReplLiveWindow = 25 * time.Millisecond
		c.AckTimeout = 100 * time.Millisecond
	}, nil)
	defer p.Abort()
	waitFor(t, "follower contact", 5*time.Second, func() bool {
		return r.CollectStats().Follower.Pulls > 0
	})
	c, err := Dial(paddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(1, 10); err != nil {
		t.Fatalf("replicated write: %v", err)
	}

	r.Abort() // the partition stand-in: the replica goes silent for good
	waitFor(t, "write fencing", 5*time.Second, func() bool {
		return errors.Is(c.Put(2, 20), ErrReadOnly)
	})
	if v, found, err := c.Get(1); err != nil || !found || v != 10 {
		t.Fatalf("read on fenced primary: (%d, %v, %v)", v, found, err)
	}
	if got := p.CollectStats().PerShard[0].Repl.FencedWrites; got == 0 {
		t.Fatal("fenced writes not counted")
	}
}
