package server

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func roundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	body, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatalf("AppendRequest(%+v): %v", req, err)
	}
	got, err := DecodeRequest(body)
	if err != nil {
		t.Fatalf("DecodeRequest(%+v): %v", req, err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: 1, Value: 2},
		{Op: OpDelete, Key: ^uint64(0)},
		{Op: OpScan, Key: 7, Limit: 100},
		{Op: OpStats},
		{Op: OpCheckpoint},
		{Op: OpBatch, Sub: []Request{
			{Op: OpGet, Key: 1},
			{Op: OpPut, Key: 2, Value: 3},
			{Op: OpDelete, Key: 4},
			{Op: OpScan, Key: 5, Limit: 6},
		}},
	}
	for _, req := range reqs {
		got := roundTripRequest(t, req)
		if !reflect.DeepEqual(got, req) {
			t.Errorf("round trip: got %+v, want %+v", got, req)
		}
	}
}

func TestRequestEncodeErrors(t *testing.T) {
	cases := []*Request{
		{Op: 99},
		{Op: OpBatch, Sub: []Request{{Op: OpBatch}}},
		{Op: OpBatch, Sub: []Request{{Op: OpStats}}},
		{Op: OpBatch, Sub: []Request{{Op: OpCheckpoint}}},
		{Op: OpBatch, Sub: make([]Request, MaxBatch+1)},
	}
	for _, req := range cases {
		if _, err := AppendRequest(nil, req); !errors.Is(err, ErrProto) {
			t.Errorf("AppendRequest(%+v): got %v, want ErrProto", req, err)
		}
	}
}

func TestRequestDecodeErrors(t *testing.T) {
	valid, err := AppendRequest(nil, &Request{Op: OpPut, Key: 1, Value: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"unknown op":      {99},
		"truncated key":   {OpGet, 1, 2, 3},
		"truncated value": valid[:9],
		"trailing bytes":  append(append([]byte{}, valid...), 0xFF),
		"scan limit":      mustAppend(t, &Request{Op: OpScan, Key: 1, Limit: MaxScanLimit + 1}),
		"batch count":     {OpBatch, 0xFF, 0xFF, 0xFF, 0xFF},
		"nested batch":    {OpBatch, 1, 0, 0, 0, OpBatch, 0, 0, 0, 0},
		"stats in batch":  {OpBatch, 1, 0, 0, 0, OpStats},
	}
	for name, body := range cases {
		if _, err := DecodeRequest(body); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// mustAppend encodes without the op-level validation (scan limits are only
// enforced on decode) so decode-side checks can be exercised.
func mustAppend(t *testing.T, req *Request) []byte {
	t.Helper()
	body, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestReplyRoundTrip(t *testing.T) {
	cases := []struct {
		req *Request
		rep *Reply
	}{
		{&Request{Op: OpGet, Key: 1}, &Reply{Status: StatusOK, Found: true, Value: 77}},
		{&Request{Op: OpGet, Key: 1}, &Reply{Status: StatusOK}},
		{&Request{Op: OpPut, Key: 1}, &Reply{Status: StatusOK}},
		{&Request{Op: OpDelete, Key: 1}, &Reply{Status: StatusOK, Found: true}},
		{&Request{Op: OpScan, Key: 1, Limit: 4}, &Reply{Status: StatusOK, Pairs: []KV{{1, 2}, {3, 4}}}},
		{&Request{Op: OpStats}, &Reply{Status: StatusOK, Blob: []byte(`{"shards":4}`)}},
		{&Request{Op: OpCheckpoint}, &Reply{Status: StatusOK}},
		{&Request{Op: OpGet, Key: 1}, &Reply{Status: StatusInternal}},
	}
	for _, tc := range cases {
		body := AppendReply(nil, tc.req.Op, tc.rep)
		got, err := DecodeReply(tc.req, body)
		if err != nil {
			t.Fatalf("DecodeReply(op %d): %v", tc.req.Op, err)
		}
		if !reflect.DeepEqual(got, tc.rep) {
			t.Errorf("op %d: got %+v, want %+v", tc.req.Op, got, tc.rep)
		}
	}
}

func TestBatchReplyRoundTrip(t *testing.T) {
	req := &Request{Op: OpBatch, Sub: []Request{
		{Op: OpGet, Key: 1},
		{Op: OpPut, Key: 2, Value: 3},
		{Op: OpScan, Key: 0, Limit: 2},
	}}
	rep := &Reply{Status: StatusOK, Sub: []Reply{
		{Status: StatusOK, Found: true, Value: 9},
		{Status: StatusOK},
		{Status: StatusOK, Pairs: []KV{{5, 6}}},
	}}
	body := AppendBatchReply(nil, req, rep)
	got, err := DecodeReply(req, body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("got %+v, want %+v", got, rep)
	}

	// A count mismatch against the request shape must be rejected.
	short := &Request{Op: OpBatch, Sub: req.Sub[:2]}
	if _, err := DecodeReply(short, body); err == nil {
		t.Error("batch count mismatch decoded without error")
	}
}

func TestReplyErr(t *testing.T) {
	if err := (&Reply{Status: StatusOK}).Err(); err != nil {
		t.Errorf("OK status: %v", err)
	}
	if err := (&Reply{Status: StatusBadRequest}).Err(); !errors.Is(err, ErrProto) {
		t.Errorf("bad request: got %v, want ErrProto", err)
	}
	if err := (&Reply{Status: StatusInternal}).Err(); err == nil {
		t.Error("internal status: nil error")
	}
}

func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello frames")
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("got %q, want %q", got, body)
	}

	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); !errors.Is(err, ErrProto) {
		t.Errorf("oversized write: got %v, want ErrProto", err)
	}
	var big bytes.Buffer
	big.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&big); !errors.Is(err, ErrProto) {
		t.Errorf("oversized read: got %v, want ErrProto", err)
	}
	var trunc bytes.Buffer
	trunc.Write([]byte{8, 0, 0, 0, 1, 2})
	if _, err := ReadFrame(&trunc); err == nil {
		t.Error("truncated frame read without error")
	}
}

func TestShardFor(t *testing.T) {
	const n = 4
	counts := make([]int, n)
	for key := uint64(0); key < 10000; key++ {
		s := ShardFor(key, n)
		if s < 0 || s >= n {
			t.Fatalf("ShardFor(%d, %d) = %d out of range", key, n, s)
		}
		counts[s]++
	}
	// The mixer should spread dense keys roughly evenly.
	for i, c := range counts {
		if c < 2000 || c > 3000 {
			t.Errorf("shard %d got %d of 10000 dense keys; want near-uniform", i, c)
		}
	}
	if ShardFor(123, 1) != 0 {
		t.Error("single shard must receive every key")
	}
}
