package server

// Request tracing support: the stage vocabulary stamped along a request's
// path, the flight-recorder trigger kinds, and the server-side sampler that
// traces a deterministic fraction of untraced requests.

import (
	"fmt"
	"sync/atomic"
)

// Stage labels of the request path, in hop order. Client- and server-side
// span recorders share this vocabulary so a trace reads end to end.
const (
	StageClientSend  = "client_send"   // client: encode + write + flush of the request frame
	StageDecode      = "server_decode" // server: frame read to decoded request
	StageQueueWait   = "queue_wait"    // admission queue: submit to worker pickup
	StageExecute     = "execute"       // shard worker: store operation, excluding the op-log append
	StageOplogAppend = "oplog_append"  // shard worker: op-log record append
	StageOplogFlush  = "oplog_flush"   // op-log flush to its durable image (background, untraced)
	StageReplShip    = "repl_ship"     // primary: REPLICATE pull served (background, untraced)
	StageReplApply   = "repl_apply"    // replica: shipped records applied + flushed (background, untraced)
	StageAckHold     = "replack_hold"  // primary: write ack held for replica durability
	StageReplyEncode = "reply_encode"  // server: reply encode + write + flush
)

// Flight-recorder trigger kinds: the control-plane transitions that freeze
// and dump the incident ring.
const (
	TriggerPromotion   = "promotion"    // replica promoted itself to primary
	TriggerFencing     = "fencing"      // self-fenced primary refused a write
	TriggerBreakerOpen = "breaker_open" // watchdog force-opened a wedged shard's breaker
	TriggerRestart     = "restart"      // supervisor restarted a crashed shard worker
	TriggerDivergence  = "divergence"   // follower detected a log gap it cannot bridge
	TriggerMigration   = "migration"    // a cluster slot finished handover (in or out)
	TriggerEpoch       = "epoch"        // stale-epoch writes detected after a handover
	TriggerReseed      = "reseed"       // follower re-seeded itself from a primary snapshot
	TriggerMediaRepair = "media_repair" // pages reconstructed from parity (or damage beyond it)
)

// traceSampler traces every Nth untraced request with a fresh trace ID. A
// nil sampler never samples, so the disabled path is one pointer test.
type traceSampler struct {
	every uint64
	n     atomic.Uint64
	ids   atomic.Uint64
	seed  uint64
}

// newTraceSampler returns a sampler approximating the given rate in (0, 1]
// with a 1-in-N counter (nil when rate <= 0).
func newTraceSampler(rate float64, seed uint64) *traceSampler {
	if rate <= 0 {
		return nil
	}
	every := uint64(1)
	if rate < 1 {
		every = uint64(1/rate + 0.5)
		if every < 1 {
			every = 1
		}
	}
	return &traceSampler{every: every, seed: seed}
}

// next reports whether this request is sampled, and under which trace ID.
func (ts *traceSampler) next() (uint64, bool) {
	if ts == nil {
		return 0, false
	}
	if (ts.n.Add(1)-1)%ts.every != 0 {
		return 0, false
	}
	return ts.id(), true
}

// id returns a fresh nonzero trace ID (splitmix64 over a counter, so IDs
// from one server never collide and spread well as map keys).
func (ts *traceSampler) id() uint64 {
	z := ts.seed + ts.ids.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// opName renders an op code for span and wide-event labels.
func opName(op byte) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	case OpCheckpoint:
		return "checkpoint"
	case OpReplicate:
		return "replicate"
	case OpReplAck:
		return "replack"
	default:
		return fmt.Sprintf("op%d", op)
	}
}
