package server

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"nvref/internal/cluster"
	"nvref/internal/obs"
	"nvref/internal/pmem"
)

// startClusterNodes boots n clustered nodes on loopback sharing an
// epoch-1 bootstrap map.
func startClusterNodes(t *testing.T, n, slots, shards int) (srvs []*Server, addrs []string) {
	t.Helper()
	ls := make([]net.Listener, n)
	addrs = make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		ls[i] = l
		addrs[i] = l.Addr().String()
	}
	m, err := cluster.New(slots, addrs)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	srvs = make([]*Server, n)
	for i := 0; i < n; i++ {
		s, err := New(Config{Shards: shards, CheckpointEvery: 128, ClusterSelf: addrs[i], ClusterMap: m})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		go s.Serve(ls[i])
		srvs[i] = s
		t.Cleanup(s.Abort)
	}
	return srvs, addrs
}

// TestClusterMovedRouting proves the redirect contract: a node answers
// MOVED with the owner's address for keys it does not own, and the
// routing client follows the redirect without being told the topology.
func TestClusterMovedRouting(t *testing.T) {
	srvs, addrs := startClusterNodes(t, 2, 8, 2)
	m := srvs[0].clusterMap()

	// Find keys landing on each node's slots.
	keyOn := make(map[string]uint64)
	for k := uint64(1); len(keyOn) < 2; k++ {
		owner := m.OwnerOf(cluster.SlotFor(k, m.Slots))
		if _, ok := keyOn[owner]; !ok {
			keyOn[owner] = k
		}
	}

	// A plain client pinned to node 0 must be refused node 1's key with
	// the owner's address in the redirect.
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Put(keyOn[addrs[0]], 7); err != nil {
		t.Fatalf("put owned key: %v", err)
	}
	err = c.Put(keyOn[addrs[1]], 8)
	var mv *MovedError
	if !errors.As(err, &mv) {
		t.Fatalf("put foreign key: got %v, want MovedError", err)
	}
	if mv.Addr != addrs[1] || mv.Epoch != m.Epoch {
		t.Fatalf("redirect hint = %q epoch %d, want %q epoch %d", mv.Addr, mv.Epoch, addrs[1], m.Epoch)
	}
	if !errors.Is(err, ErrMoved) || Retryable(err) {
		t.Fatalf("MovedError must match ErrMoved and not be Retryable")
	}

	// The routing client serves both keys transparently.
	cc, err := DialCluster([]string{addrs[0]}, RetryPolicy{}, nil)
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cc.Close()
	for owner, k := range keyOn {
		if err := cc.Put(k, k*10); err != nil {
			t.Fatalf("routed put key %d (owner %s): %v", k, owner, err)
		}
		v, found, err := cc.Get(k)
		if err != nil || !found || v != k*10 {
			t.Fatalf("routed get key %d: v=%d found=%v err=%v", k, v, found, err)
		}
	}
}

// TestClusterEpochMonotonic proves map installs only ever move forward:
// a newer epoch is adopted, the same or an older epoch is refused with
// StatusWrongEpoch, and the cached map never regresses.
func TestClusterEpochMonotonic(t *testing.T) {
	srvs, addrs := startClusterNodes(t, 2, 8, 1)
	m := srvs[0].clusterMap()

	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Re-installing the current epoch is refused.
	if err := c.MapUpdate(m); !errors.Is(err, ErrWrongEpoch) {
		t.Fatalf("same-epoch install: got %v, want ErrWrongEpoch", err)
	}

	// A newer epoch is adopted...
	next, err := m.WithOwner(0, addrs[1])
	if err != nil {
		t.Fatalf("WithOwner: %v", err)
	}
	if err := c.MapUpdate(next); err != nil {
		t.Fatalf("newer-epoch install: %v", err)
	}
	if got := srvs[0].clusterMap().Epoch; got != next.Epoch {
		t.Fatalf("epoch after install = %d, want %d", got, next.Epoch)
	}

	// ...and the now-stale predecessor is refused, leaving the epoch alone.
	if err := c.MapUpdate(m); !errors.Is(err, ErrWrongEpoch) {
		t.Fatalf("stale install: got %v, want ErrWrongEpoch", err)
	}
	if got := srvs[0].clusterMap().Epoch; got != next.Epoch {
		t.Fatalf("epoch regressed to %d after stale install", got)
	}
	if cs := srvs[0].CollectStats().Cluster; cs == nil || cs.MapRejects < 2 {
		t.Fatalf("map rejects not counted: %+v", cs)
	}
}

// TestClusterLiveMigration migrates one slot between two nodes while a
// writer keeps updating a key in that slot, and asserts the full
// handover contract: the key's newest acked value is served by the new
// owner, the donor redirects, the audit found zero stale-epoch writes,
// and the donor purged the migrated keys.
func TestClusterLiveMigration(t *testing.T) {
	srvs, addrs := startClusterNodes(t, 2, 8, 2)
	m := srvs[0].clusterMap()

	// A slot owned by node 0 and a key inside it.
	slot := -1
	for sl := 0; sl < m.Slots; sl++ {
		if m.OwnerOf(sl) == addrs[0] {
			slot = sl
			break
		}
	}
	var key uint64
	for k := uint64(1); ; k++ {
		if cluster.SlotFor(k, m.Slots) == slot {
			key = k
			break
		}
	}

	cc, err := DialCluster(addrs, RetryPolicy{}, nil)
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cc.Close()
	if err := cc.Put(key, 1); err != nil {
		t.Fatalf("seed put: %v", err)
	}

	// Writer hammering the key through the routing client during the
	// migration; acked is the newest value it saw acknowledged.
	var acked atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		wc, err := DialCluster(addrs, RetryPolicy{Seed: 99}, nil)
		if err != nil {
			return
		}
		defer wc.Close()
		for v := uint64(2); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := wc.Put(key, v); err == nil {
				acked.Store(v)
			}
		}
	}()

	if err := srvs[1].MigrateIn(slot, nil); err != nil {
		t.Fatalf("MigrateIn: %v", err)
	}
	close(stop)
	<-done

	// Ownership moved at a higher epoch on both nodes.
	for i, s := range srvs {
		nm := s.clusterMap()
		if nm.Epoch <= m.Epoch {
			t.Fatalf("node %d epoch = %d, want > %d", i, nm.Epoch, m.Epoch)
		}
		if nm.OwnerOf(slot) != addrs[1] {
			t.Fatalf("node %d: slot %d owner = %q, want %q", i, slot, nm.OwnerOf(slot), addrs[1])
		}
	}

	// The newest acked write survived the handover, served by the new owner.
	v, found, err := cc.Get(key)
	if err != nil || !found {
		t.Fatalf("get after migration: v=%d found=%v err=%v", v, found, err)
	}
	if want := acked.Load(); v < want {
		t.Fatalf("acked write lost across migration: stored %d < acked %d", v, want)
	}

	// The donor redirects the key and purged its copy.
	dc, err := Dial(addrs[0])
	if err != nil {
		t.Fatalf("dial donor: %v", err)
	}
	defer dc.Close()
	if _, _, err := dc.Get(key); !errors.Is(err, ErrMoved) {
		t.Fatalf("donor get after handover: got %v, want MOVED", err)
	}
	ds := srvs[0].CollectStats().Cluster
	if ds.StaleEpochWrites != 0 {
		t.Fatalf("stale-epoch writes = %d, want 0", ds.StaleEpochWrites)
	}
	if ds.MigratedOut != 1 || ds.FencedSlots != 0 {
		t.Fatalf("donor stats: migrated_out=%d fenced=%d, want 1/0", ds.MigratedOut, ds.FencedSlots)
	}
	if as := srvs[1].CollectStats().Cluster; as.MigratedIn != 1 || as.Ingested == 0 {
		t.Fatalf("acceptor stats: migrated_in=%d ingested=%d", as.MigratedIn, as.Ingested)
	}
}

// TestClusterFenceIdempotent proves the fence contract: a retried fence
// for the same acceptor returns the captured watermarks again, and a
// competing acceptor is refused.
func TestClusterFenceIdempotent(t *testing.T) {
	srvs, addrs := startClusterNodes(t, 2, 8, 2)
	m := srvs[0].clusterMap()
	slot := -1
	for sl := 0; sl < m.Slots; sl++ {
		if m.OwnerOf(sl) == addrs[0] {
			slot = sl
			break
		}
	}

	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	seqs, err := c.MigFence(uint32(slot), addrs[1])
	if err != nil {
		t.Fatalf("fence: %v", err)
	}
	if len(seqs) != 2 {
		t.Fatalf("fence seqs = %v, want one per shard", seqs)
	}
	again, err := c.MigFence(uint32(slot), addrs[1])
	if err != nil {
		t.Fatalf("refence: %v", err)
	}
	for i := range seqs {
		if again[i] != seqs[i] {
			t.Fatalf("refence seqs = %v, want %v", again, seqs)
		}
	}
	if _, err := c.MigFence(uint32(slot), "competitor:1"); !errors.Is(err, ErrProto) {
		t.Fatalf("competing fence: got %v, want bad request", err)
	}

	// Fenced-slot traffic redirects toward the acceptor even though the
	// map still names the donor.
	var key uint64
	for k := uint64(1); ; k++ {
		if cluster.SlotFor(k, m.Slots) == slot {
			key = k
			break
		}
	}
	var mv *MovedError
	if err := c.Put(key, 1); !errors.As(err, &mv) || mv.Addr != addrs[1] {
		t.Fatalf("fenced put: got %v, want MOVED to %q", err, addrs[1])
	}

	// Committing the handover releases the fence.
	next, err := m.WithOwner(slot, addrs[1])
	if err != nil {
		t.Fatalf("WithOwner: %v", err)
	}
	if err := c.MapUpdate(next); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if fs := srvs[0].CollectStats().Cluster.FencedSlots; fs != 0 {
		t.Fatalf("fenced slots after commit = %d, want 0", fs)
	}
}

// TestClusterScanFiltersResidue proves a cluster Scan deduplicates keys
// that linger on a donor between handover and purge: each pair is kept
// only if the map assigns its slot to the serving node.
func TestClusterScanFiltersResidue(t *testing.T) {
	srvs, addrs := startClusterNodes(t, 2, 8, 1)
	cc, err := DialCluster(addrs, RetryPolicy{}, nil)
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cc.Close()
	for k := uint64(1); k <= 32; k++ {
		if err := cc.Put(k, k); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	pairs, err := cc.Scan(0, 64)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(pairs) != 32 {
		t.Fatalf("scan returned %d pairs, want 32", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Key >= pairs[i].Key {
			t.Fatalf("scan not sorted at %d: %v >= %v", i, pairs[i-1].Key, pairs[i].Key)
		}
	}
	_ = srvs
}

// TestClusterMapPersistence proves a node reloads its last installed map
// across a restart and rejoins at the persisted epoch.
func TestClusterMapPersistence(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	m, err := cluster.New(8, []string{addr, "peer:1"})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	store := pmem.NewMemStore()
	s, err := New(Config{Shards: 1, ClusterSelf: addr, ClusterMap: m, ClusterStore: store})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	go s.Serve(l)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	next, err := m.WithOwner(0, "peer:1")
	if err != nil {
		t.Fatalf("WithOwner: %v", err)
	}
	if err := c.MapUpdate(next); err != nil {
		t.Fatalf("install: %v", err)
	}
	c.Close()
	s.Abort()

	// Restart over the same store with only the stale bootstrap map: the
	// persisted, newer image must win.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("rebind %s: %v", addr, err)
	}
	s2, err := New(Config{Shards: 1, ClusterSelf: addr, ClusterMap: m, ClusterStore: store})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Abort()
	go s2.Serve(l2)
	if got := s2.clusterMap().Epoch; got != next.Epoch {
		t.Fatalf("epoch after restart = %d, want %d", got, next.Epoch)
	}
	waitFor(t, "server accepting", time.Second, func() bool {
		c2, err := Dial(addr)
		if err != nil {
			return false
		}
		c2.Close()
		return true
	})
}

// TestFollowerAutoReseed is the divergence regression test: a fresh
// replica attaches to a primary whose op log has truncated past sequence
// zero, which previously stalled forever behind a "re-seed this replica"
// log line. The follower must now detect the divergence, rebuild itself
// from a primary snapshot over the migration transfer machinery, and
// converge.
func TestFollowerAutoReseed(t *testing.T) {
	p, r, paddr, _ := startPair(t, 2, func(c *Config) { c.CheckpointEvery = 32 }, nil)
	defer p.Abort()

	c, err := DialResilient(paddr.String(), RetryPolicy{})
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	defer c.Close()
	const keys = 100
	put := func(k, v uint64) {
		t.Helper()
		if _, _, err := c.PutRYW(k, v); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	next := uint64(1)
	for k := uint64(1); k <= keys; k++ {
		put(k, k*3)
		next++
	}

	// Drive checkpoints (writes below keep landing on key 1) until every
	// primary shard's log has truncated past its base — the precondition
	// that makes a fresh replica diverge instead of catching up.
	waitFor(t, "primary log truncation", 10*time.Second, func() bool {
		put(1, keys*3+next)
		next++
		for _, sh := range p.shards {
			if sh.cfg.oplog.BaseSeq() <= 1 && sh.cfg.oplog.LastSeq() > 0 {
				return false
			}
		}
		return true
	})
	final, err := c.Scan(0, keys*2)
	if err != nil {
		t.Fatalf("primary scan: %v", err)
	}

	// Kill the caught-up replica and attach a brand-new empty one: its
	// applied sequence is zero, far behind every shard's log base.
	r.Abort()
	r2, err := New(Config{
		Shards:          2,
		Role:            RoleReplica,
		CheckpointEvery: 32,
		FollowAddr:      paddr.String(),
		FollowPoll:      time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fresh replica: %v", err)
	}
	defer r2.Abort()
	raddr2, err := r2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("fresh replica start: %v", err)
	}

	waitFor(t, "auto re-seed", 10*time.Second, func() bool {
		fs := r2.CollectStats().Follower
		return fs != nil && fs.Reseeds >= 1 && fs.LagRecords == 0
	})
	fs := r2.CollectStats().Follower
	if fs.Divergences == 0 {
		t.Fatalf("divergence not counted before re-seed")
	}

	// The rebuilt replica serves exactly the primary's data.
	rc, err := Dial(raddr2.String())
	if err != nil {
		t.Fatalf("dial replica: %v", err)
	}
	defer rc.Close()
	got, err := rc.Scan(0, keys*2)
	if err != nil {
		t.Fatalf("replica scan: %v", err)
	}
	if len(got) != len(final) {
		t.Fatalf("replica holds %d keys, primary %d", len(got), len(final))
	}
	for i := range final {
		if got[i] != final[i] {
			t.Fatalf("pair %d: replica %+v, primary %+v", i, got[i], final[i])
		}
	}

	// And it keeps following: a post-re-seed write reaches it.
	put(keys+1, 12345)
	waitFor(t, "post-reseed replication", 5*time.Second, func() bool {
		v, found, err := rc.Get(keys + 1)
		return err == nil && found && v == 12345
	})
}

// TestClusterJoinRebalance drives the scale-out path end to end in
// process: a fresh node adopts a running cluster's map, owns nothing,
// then Rebalance migrates its fair share of slots onto it live; stale
// routing clients follow the MOVED redirects to the new topology, the
// founders converge on the final map via gossip, and the joiner's
// metrics expose the whole transition.
func TestClusterJoinRebalance(t *testing.T) {
	srvs, addrs := startClusterNodes(t, 2, 9, 1)

	cc, err := DialCluster(addrs, RetryPolicy{}, nil)
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cc.Close()
	const n = 60
	for k := uint64(0); k < n; k++ {
		if err := cc.Put(k, k+100); err != nil {
			t.Fatalf("seed put %d: %v", k, err)
		}
	}

	// A fresh node with the cluster tier on but no map yet.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	jaddr := l.Addr().String()
	reg := obs.NewRegistry()
	js, err := New(Config{Shards: 1, CheckpointEvery: 128, ClusterSelf: jaddr, Reg: reg})
	if err != nil {
		t.Fatalf("joiner: %v", err)
	}
	go js.Serve(l)
	t.Cleanup(js.Abort)

	if _, err := js.Rebalance(nil); err == nil {
		t.Fatal("Rebalance before JoinCluster must fail: no map")
	}
	if err := js.JoinCluster(addrs[0], nil); err != nil {
		t.Fatalf("JoinCluster: %v", err)
	}
	if m := js.clusterMap(); m.Epoch != 1 || m.Owned(jaddr) != 0 {
		t.Fatalf("after join: epoch %d, owned %d; want 1, 0", m.Epoch, m.Owned(jaddr))
	}

	moved, err := js.Rebalance(nil)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if moved < 1 {
		t.Fatalf("Rebalance moved %d slots, want >= 1", moved)
	}
	jm := js.clusterMap()
	if jm.Owned(jaddr) != moved {
		t.Fatalf("joiner owns %d slots, migrated %d", jm.Owned(jaddr), moved)
	}
	if jm.Epoch != 1+uint64(moved) {
		t.Fatalf("epoch %d after %d single-slot migrations from epoch 1", jm.Epoch, moved)
	}

	// Both founders converge on the final map: the donor synchronously at
	// commit, the bystander via best-effort gossip.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srvs[0].clusterMap().Epoch == jm.Epoch && srvs[1].clusterMap().Epoch == jm.Epoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("founders at epochs %d/%d, want %d",
				srvs[0].clusterMap().Epoch, srvs[1].clusterMap().Epoch, jm.Epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The pre-migration client still holds the epoch-1 map: its next
	// sweep trips MOVED on migrated slots and refreshes to the new one.
	for k := uint64(0); k < n; k++ {
		if v, found, err := cc.Get(k); err != nil || !found || v != k+100 {
			t.Fatalf("stale-map get %d: v=%d found=%v err=%v", k, v, found, err)
		}
	}
	if cc.MovedSeen() == 0 || cc.MapRefreshes() == 0 {
		t.Fatalf("stale client: moved=%d refreshes=%d, want both > 0", cc.MovedSeen(), cc.MapRefreshes())
	}
	if cc.Map().Epoch != jm.Epoch {
		t.Fatalf("stale client refreshed to epoch %d, want %d", cc.Map().Epoch, jm.Epoch)
	}

	// A fresh client seeded only with the joiner routes everywhere,
	// deletes included.
	vc, err := DialCluster([]string{jaddr}, RetryPolicy{}, nil)
	if err != nil {
		t.Fatalf("DialCluster joiner: %v", err)
	}
	defer vc.Close()
	if vc.MapLoads() == 0 {
		t.Fatal("fresh client loaded no map")
	}
	found, err := vc.Delete(3)
	if err != nil || !found {
		t.Fatalf("routed delete: found=%v err=%v", found, err)
	}
	if _, found, _ := vc.Get(3); found {
		t.Fatal("key 3 survived its delete")
	}

	// The joiner's metrics expose the transition.
	snap := reg.Snapshot()
	if got := snap.Value("server_cluster_epoch"); got != int64(jm.Epoch) {
		t.Errorf("server_cluster_epoch = %d, want %d", got, jm.Epoch)
	}
	if got := snap.Value("server_cluster_slots_owned"); got != int64(moved) {
		t.Errorf("server_cluster_slots_owned = %d, want %d", got, moved)
	}
	if got := snap.Value("server_cluster_migrated_in_total"); got != int64(moved) {
		t.Errorf("server_cluster_migrated_in_total = %d, want %d", got, moved)
	}
	if got := snap.Value("server_cluster_fenced_slots"); got != 0 {
		t.Errorf("server_cluster_fenced_slots = %d after commit", got)
	}
	if got := snap.Value("server_cluster_ingested_total"); got == 0 {
		t.Error("server_cluster_ingested_total = 0 after migrating populated slots")
	}
}
