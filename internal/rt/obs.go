package rt

import (
	"sort"

	"nvref/internal/obs"
)

// RegisterMetrics binds every counter of this Context — runtime layer,
// semantic layer (core.Env), hardware model (POLB/VALB/storeP), and timing
// model (cpu) — into reg as pull-style collector series. Collectors read
// the live stat structs only at snapshot time, so registration adds zero
// cost to the simulated hot path and the exported values are exactly the
// legacy struct counters (the Table V / Fig. 15 sources), never a copy that
// can drift.
//
// Registering a second Context on the same registry rebinds the series to
// the new Context (collectors replace); pass a fresh registry to keep both.
func (c *Context) RegisterMetrics(reg *obs.Registry) {
	ctr := func(name, help string, fn func() uint64) { reg.CounterFunc(name, help, fn) }

	// Runtime layer (rt.Stats).
	ctr("rt_pointer_loads_total", "pointer loads executed", func() uint64 { return c.Stats.PointerLoads })
	ctr("rt_pointer_stores_total", "pointer stores executed", func() uint64 { return c.Stats.PointerStores })
	ctr("rt_storep_ops_total", "storeP instructions executed (HW)", func() uint64 { return c.Stats.StorePOps })
	ctr("rt_ea_translations_total", "relative-to-virtual conversions at EA generation (HW)", func() uint64 { return c.Stats.EATranslations })
	ctr("rt_sw_check_branches_total", "dynamic-check conditional branches (SW)", func() uint64 { return c.Stats.SWCheckBranches })
	ctr("rt_explicit_accesses_total", "persistent-object accesses through the explicit API", func() uint64 { return c.Stats.ExplicitAccesses })
	ctr("rt_allocs_total", "allocations", func() uint64 { return c.Stats.Allocs })
	ctr("rt_frees_total", "deallocations", func() uint64 { return c.Stats.Frees })
	ctr("rt_trace_events_total", "structured trace events emitted", func() uint64 { return c.tracer.Emitted() })

	// Semantic layer (core.Stats) — the Table V counters.
	ctr("core_dynamic_checks_total", "determineX/determineY dispatches", func() uint64 { return c.Env.Stats.DynamicChecks })
	ctr("core_abs_to_rel_total", "virtual-to-relative (va2ra) conversions", func() uint64 { return c.Env.Stats.AbsToRel })
	ctr("core_rel_to_abs_total", "relative-to-virtual (ra2va) conversions", func() uint64 { return c.Env.Stats.RelToAbs })

	// Hardware model: lookaside buffers and the storeP unit.
	ctr("hw_polb_hits_total", "POLB hits", func() uint64 { return c.MMU.POLB.Stats.Hits })
	ctr("hw_polb_misses_total", "POLB misses (POW walks)", func() uint64 { return c.MMU.POLB.Stats.Misses })
	ctr("hw_polb_walk_cycles_total", "cycles spent in POW walks", func() uint64 { return c.MMU.POLB.Stats.WalkCycles })
	ctr("hw_valb_hits_total", "VALB hits", func() uint64 { return c.MMU.VALB.Stats.Hits })
	ctr("hw_valb_misses_total", "VALB misses (VAW walks)", func() uint64 { return c.MMU.VALB.Stats.Misses })
	ctr("hw_valb_walk_cycles_total", "cycles spent in VAW walks", func() uint64 { return c.MMU.VALB.Stats.WalkCycles })
	ctr("hw_storep_ops_total", "storeP unit operations", func() uint64 { return c.StoreP.Stats.Ops })
	ctr("hw_storep_faults_total", "storeP translation faults", func() uint64 { return c.StoreP.Stats.Faults })
	ctr("hw_storep_rd_translations_total", "storeP destination (ra2va) translations", func() uint64 { return c.StoreP.Stats.RdTranslations })
	ctr("hw_storep_rs_translations_total", "storeP source translations", func() uint64 { return c.StoreP.Stats.RsTranslations })
	ctr("hw_storep_cycles_total", "cycles storeP ops held FSM entries", func() uint64 { return c.StoreP.Stats.Cycles })
	reg.GaugeFunc("hw_storep_max_occupancy", "peak FSM buffer entries in flight", func() int64 { return int64(c.StoreP.Stats.MaxOccupancy) })
	reg.GaugeFunc("hw_storep_inflight", "FSM buffer entries currently in flight", func() int64 { return int64(len(c.storePBusy)) })

	// Timing model (cpu.Stats).
	ctr("cpu_cycles_total", "simulated cycles", func() uint64 { return c.CPU.Stats.Cycles })
	ctr("cpu_instructions_total", "retired instructions", func() uint64 { return c.CPU.Stats.Instructions })
	ctr("cpu_loads_total", "data loads", func() uint64 { return c.CPU.Stats.Loads })
	ctr("cpu_stores_total", "data stores", func() uint64 { return c.CPU.Stats.Stores })
	ctr("cpu_l1_hits_total", "L1 cache hits", func() uint64 { return c.CPU.Stats.L1.Hits })
	ctr("cpu_l1_misses_total", "L1 cache misses", func() uint64 { return c.CPU.Stats.L1.Misses })
	ctr("cpu_l2_hits_total", "L2 cache hits", func() uint64 { return c.CPU.Stats.L2.Hits })
	ctr("cpu_l2_misses_total", "L2 cache misses", func() uint64 { return c.CPU.Stats.L2.Misses })
	ctr("cpu_l3_hits_total", "L3 cache hits", func() uint64 { return c.CPU.Stats.L3.Hits })
	ctr("cpu_l3_misses_total", "L3 cache misses", func() uint64 { return c.CPU.Stats.L3.Misses })
	ctr("cpu_tlb_l1_hits_total", "L1 TLB hits", func() uint64 { return c.CPU.Stats.TLB.L1Hits })
	ctr("cpu_tlb_l2_hits_total", "L2 TLB hits", func() uint64 { return c.CPU.Stats.TLB.L2Hits })
	ctr("cpu_tlb_walks_total", "page walks", func() uint64 { return c.CPU.Stats.TLB.Walks })
	ctr("cpu_branches_total", "conditional branches", func() uint64 { return c.CPU.Stats.Branch.Branches })
	ctr("cpu_branch_mispredicts_total", "branch mispredictions", func() uint64 { return c.CPU.Stats.Branch.Mispredicts })
	ctr("cpu_dram_accesses_total", "accesses served by DRAM", func() uint64 { return c.CPU.Stats.DRAMAccesses })
	ctr("cpu_nvm_accesses_total", "accesses served by NVM", func() uint64 { return c.CPU.Stats.NVMAccesses })
	ctr("cpu_translation_cycles_total", "stall cycles from POLB/VALB/walkers", func() uint64 { return c.CPU.Stats.TranslationCycles })
	ctr("cpu_prefetch_issued_total", "prefetches issued", func() uint64 { return c.CPU.Prefetch().Issued })
	ctr("cpu_prefetch_useful_total", "demand accesses covered by a prefetch", func() uint64 { return c.CPU.Prefetch().UsefulHit })

	// Pool layer, through this Context's registry and pools.
	c.Reg.RegisterMetrics(reg)
	reg.GaugeFunc("rt_sites_tracked", "static sites with per-site counts", func() int64 { return int64(len(c.siteCounts)) })
}

// ExportSiteCounts registers one counter series per static site seen so far
// (requires EnableSiteCounts before the run). Call it after the workload so
// every exercised site has appeared; series names are
// rt_site_ops_total_<site> with the site name sanitized for exposition.
func (c *Context) ExportSiteCounts(reg *obs.Registry) {
	names := make([]string, 0, len(c.siteCounts))
	for name := range c.siteCounts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		name := name
		reg.CounterFunc("rt_site_ops_total_"+obs.SanitizeName(name),
			"reference operations at site "+name,
			func() uint64 { return c.siteCounts[name] })
	}
}
