package rt

import (
	"fmt"

	"nvref/internal/core"
	"nvref/internal/hw"
	"nvref/internal/pmem"
)

// Multi-pool support. The default Context allocates from one pool; real
// deployments hold many pools (the paper's POLB and VALB are sized at 32
// entries for that reason). SetPoolCount spreads subsequent Pmalloc calls
// round-robin over n pools, which pressures the lookaside buffers and the
// VATB range table — the subject of the pool-count ablation.

// SetPoolCount ensures the context has n pools and enables round-robin
// persistent allocation across them. n must be at least 1; the first pool
// is the context's original one.
func (c *Context) SetPoolCount(n int) error {
	if n < 1 {
		return fmt.Errorf("rt: pool count %d < 1", n)
	}
	for len(c.pools) < n {
		idx := len(c.pools)
		size := c.Pool.Size()
		// Extra pools are sized like the default pool but smaller when
		// many are requested, to keep the address space tidy.
		if n > 8 {
			size = minPoolSizeFor(size, n)
		}
		p, err := c.Reg.Create(fmt.Sprintf("%s-%d", defaultPoolName, idx), size)
		if err != nil {
			return err
		}
		c.MMU.AttachPool(hw.RangeEntry{Base: p.Base(), Size: p.Size(), ID: p.ID()})
		c.pools = append(c.pools, p)
	}
	c.poolFan = n
	return nil
}

func minPoolSizeFor(base uint64, n int) uint64 {
	size := base / uint64(n)
	if size < pmem.MinPoolSize*4 {
		size = pmem.MinPoolSize * 4
	}
	return size
}

// Pools returns the pools participating in round-robin allocation.
func (c *Context) Pools() []*pmem.Pool {
	if len(c.pools) == 0 {
		return []*pmem.Pool{c.Pool}
	}
	return c.pools[:c.poolFan]
}

// nextPool picks the pool for the next persistent allocation.
func (c *Context) nextPool() *pmem.Pool {
	if c.poolFan <= 1 || len(c.pools) == 0 {
		return c.Pool
	}
	p := c.pools[c.poolCursor%c.poolFan]
	c.poolCursor++
	return p
}

// PmallocIn allocates in a specific pool, with the same local-form
// conversion behaviour as Pmalloc.
func (c *Context) PmallocIn(pool *pmem.Pool, size uint64) core.Ptr {
	return c.pmallocFrom(pool, size)
}
