package rt

import (
	"fmt"
	"io"

	"nvref/internal/core"
	"nvref/internal/obs"
)

// Execution tracing: when a tracer is attached, the Context emits one
// structured obs.Event per reference operation — the representation of
// every operand, the resolved address, and the conversions performed. The
// trace is the debugging view of the reference machinery: reading it next
// to the Figure 4 table shows each rule firing.
//
// The old unstructured text stream survives as a compat rendering:
// SetTrace(w) attaches a tracer whose sink writes FormatEvent lines to w,
// so existing consumers see byte-identical output — but emission now goes
// through the tracer's mutex, so a Context shared across goroutines can no
// longer interleave partial lines.
//
// Tracing is off (nil tracer) by default and costs one nil check when off.

// SetTrace attaches (or detaches, with nil) a legacy text trace writer.
// Lines are produced from the structured events by FormatEvent.
func (c *Context) SetTrace(w io.Writer) {
	if w == nil {
		c.tracer = nil
		return
	}
	t := obs.NewTracer(obs.DefaultTraceCapacity)
	t.SetSink(func(e obs.Event) { fmt.Fprintln(w, FormatEvent(e)) })
	c.tracer = t
}

// SetTracer attaches a structured event tracer (nil detaches). Callers that
// want JSONL output or programmatic event access use this instead of
// SetTrace; both cannot be active at once — last call wins.
func (c *Context) SetTracer(t *obs.Tracer) { c.tracer = t }

// Tracer returns the attached tracer (nil when tracing is off).
func (c *Context) Tracer() *obs.Tracer { return c.tracer }

// traceOn reports whether tracing is active (to skip building events).
func (c *Context) traceOn() bool { return c.tracer != nil }

// FormatEvent renders a structured event in the legacy text trace format,
// byte-for-byte what the old io.Writer trace printed.
func FormatEvent(e obs.Event) string {
	prefix := fmt.Sprintf("[%s @%d] ", e.Mode, e.Cycle)
	switch e.Kind {
	case obs.EvLoadPtr:
		note := ""
		if e.Conv != obs.ConvNone {
			note = fmt.Sprintf(" -> local %s (pdy=pxr conversion)", core.Ptr(e.Res))
		}
		return prefix + fmt.Sprintf("loadPtr  %s+%d = %s%s", core.Ptr(e.P), e.Off, core.Ptr(e.Val), note)
	case obs.EvStorePtr:
		note := ""
		if e.Conv != obs.ConvNone {
			note = fmt.Sprintf(" (converted from %s)", core.Ptr(e.Val))
		}
		return prefix + fmt.Sprintf("storePtr %s+%d <- %s%s", core.Ptr(e.P), e.Off, core.Ptr(e.Res), note)
	case obs.EvLoad:
		return prefix + fmt.Sprintf("load     %s+%d @ va %#x", core.Ptr(e.P), e.Off, e.Val)
	case obs.EvStore:
		return prefix + fmt.Sprintf("storeD   %s+%d @ va %#x", core.Ptr(e.P), e.Off, e.Val)
	case obs.EvAlloc:
		return prefix + fmt.Sprintf("alloc    %s (%d bytes)", core.Ptr(e.P), e.Val)
	case obs.EvFree:
		return prefix + fmt.Sprintf("free     %s (%d bytes)", core.Ptr(e.P), e.Val)
	}
	return prefix + fmt.Sprintf("%s %s+%d val %#x", e.Kind, core.Ptr(e.P), e.Off, e.Val)
}

// event seeds an Event with the Context's position (mode and cycle).
func (c *Context) event(kind obs.EventKind) obs.Event {
	return obs.Event{Cycle: c.CPU.Stats.Cycles, Mode: c.Mode.String(), Kind: kind}
}

// Traced operation hooks. The regular operations call these; with no tracer
// attached each costs one nil check.

func (c *Context) traceLoadPtr(p core.Ptr, off int64, loaded, local core.Ptr) {
	if !c.traceOn() {
		return
	}
	e := c.event(obs.EvLoadPtr)
	e.P, e.Off, e.Val, e.Res = uint64(p), off, uint64(loaded), uint64(local)
	if loaded != local {
		e.Conv = obs.ConvRelToAbs
	}
	c.tracer.Emit(e)
}

func (c *Context) traceStorePtr(p core.Ptr, off int64, q, stored core.Ptr) {
	if !c.traceOn() {
		return
	}
	e := c.event(obs.EvStorePtr)
	e.P, e.Off, e.Val, e.Res = uint64(p), off, uint64(q), uint64(stored)
	if q != stored {
		if stored.IsRelative() {
			e.Conv = obs.ConvAbsToRel
		} else {
			e.Conv = obs.ConvRelToAbs
		}
	}
	c.tracer.Emit(e)
}

func (c *Context) traceAllocFree(kind obs.EventKind, p core.Ptr, size uint64) {
	if !c.traceOn() {
		return
	}
	e := c.event(kind)
	e.P, e.Val = uint64(p), size
	c.tracer.Emit(e)
}

func (c *Context) traceAccess(kind obs.EventKind, p core.Ptr, off int64, va uint64) {
	if !c.traceOn() {
		return
	}
	e := c.event(kind)
	e.P, e.Off, e.Val = uint64(p), off, va
	c.tracer.Emit(e)
}
