package rt

import (
	"fmt"
	"io"

	"nvref/internal/core"
)

// Execution tracing: when a trace writer is attached, the Context emits
// one line per reference operation — the representation of every operand,
// the resolved address, and the conversions performed. The trace is the
// debugging view of the reference machinery: reading it next to the
// Figure 4 table shows each rule firing.
//
// Tracing is off (nil writer) by default and costs nothing when off.

// SetTrace attaches (or detaches, with nil) a trace writer.
func (c *Context) SetTrace(w io.Writer) { c.trace = w }

// tracef emits one trace line when tracing is on.
func (c *Context) tracef(format string, args ...any) {
	if c.trace == nil {
		return
	}
	fmt.Fprintf(c.trace, "[%s @%d] ", c.Mode, c.CPU.Stats.Cycles)
	fmt.Fprintf(c.trace, format, args...)
	fmt.Fprintln(c.trace)
}

// traceOn reports whether tracing is active (to skip building strings).
func (c *Context) traceOn() bool { return c.trace != nil }

// Traced operation wrappers. These delegate to the regular operations and
// describe what happened; kernels and the minc interpreter call the plain
// ops, which emit through the hooks below.

func (c *Context) traceLoadPtr(p core.Ptr, off int64, loaded, local core.Ptr) {
	if !c.traceOn() {
		return
	}
	note := ""
	if loaded != local {
		note = fmt.Sprintf(" -> local %s (pdy=pxr conversion)", local)
	}
	c.tracef("loadPtr  %s+%d = %s%s", p, off, loaded, note)
}

func (c *Context) traceStorePtr(p core.Ptr, off int64, q, stored core.Ptr) {
	if !c.traceOn() {
		return
	}
	note := ""
	if q != stored {
		note = fmt.Sprintf(" (converted from %s)", q)
	}
	c.tracef("storePtr %s+%d <- %s%s", p, off, stored, note)
}

func (c *Context) traceAccess(kind string, p core.Ptr, off int64, va uint64) {
	if !c.traceOn() {
		return
	}
	c.tracef("%s %s+%d @ va %#x", kind, p, off, va)
}
