package rt

import (
	"fmt"

	"nvref/internal/core"
	"nvref/internal/cpu"
	"nvref/internal/fault"
	"nvref/internal/hw"
	"nvref/internal/mem"
	"nvref/internal/obs"
	"nvref/internal/parity"
	"nvref/internal/pmem"
)

// Cost-model constants shared by the software paths. These model
// instruction counts of the runtime routines the SW build links in and of
// the explicit model's access API; everything latency-related (caches, NVM,
// branch mispredictions, POLB/VALB) is simulated structurally.
const (
	// swCheckInstrs is the ALU work of one inline determineX/determineY
	// dispatch (mask, test) excluding its conditional branch, which is
	// simulated through the branch predictor.
	swCheckInstrs = 2
	// swRA2VAInstrs is the software ra2va routine: unpack pool ID and
	// offset, index the pool table, add the base (plus 2 table loads).
	swRA2VAInstrs = 6
	// swRA2VALoads is how many pool-table words the routine reads.
	swRA2VALoads = 2
	// swVA2RAInstrs is the software va2ra routine: binary search of the
	// attached-pool range table (plus swVA2RALoads table reads).
	swVA2RAInstrs = 12
	// swVA2RALoads is how many range-table words the search reads.
	swVA2RALoads = 4
	// explicitAPIInstrs is the per-access overhead of the explicit model's
	// object-ID access discipline (special instruction forms / accessor
	// call) on top of its POLB translation.
	explicitAPIInstrs = 2
	// allocInstrs/freeInstrs model the allocator's instruction work; its
	// header writes are replayed as real stores.
	allocInstrs = 40
	freeInstrs  = 30
	allocStores = 2
)

// Default geometry for the simulated process.
const (
	defaultVHeapBase = uint64(0x10_0000)
	defaultVHeapSize = uint64(256 << 20)
	swTableBase      = uint64(0x8_0000) // runtime pool tables (DRAM)
	swTableSize      = uint64(64 << 10)
	defaultPoolName  = "bench"
	defaultPoolSize  = uint64(256 << 20)
)

// Stats collects the runtime-layer counters the evaluation reports on top
// of the cpu and hw statistics.
type Stats struct {
	PointerLoads     uint64
	PointerStores    uint64
	StorePOps        uint64 // HW: executed storeP instructions
	EATranslations   uint64 // HW: relative→virtual conversions at EA generation / pointer load
	SWCheckBranches  uint64 // SW: dynamic-check conditional branches executed
	ExplicitAccesses uint64 // Explicit: persistent-object accesses through the API
	Allocs           uint64
	Frees            uint64
}

// Context is one simulated execution: an address space, a persistent pool,
// the translation machinery for the selected mode, and the timing model.
type Context struct {
	Mode Mode

	AS     *mem.AddressSpace
	Reg    *pmem.Registry
	Pool   *pmem.Pool
	Env    *core.Env
	MMU    *hw.MMU
	StoreP *hw.StorePUnit
	CPU    *cpu.CPU

	heap  *vheap
	Stats Stats
	// storePBusy holds the completion cycle of each in-flight storeP
	// buffer entry (the 32-entry FSM buffer of the paper's Figure 6).
	storePBusy []uint64

	// Round-robin multi-pool allocation state (see SetPoolCount).
	pools      []*pmem.Pool
	poolFan    int
	poolCursor int

	// DisableReuse turns off the pdy = pxr conversion at pointer loads in
	// the HW model, so every later dereference re-translates through the
	// POLB. It ablates the paper's Figure 12 translation-reuse effect.
	DisableReuse bool
	// MMUCriticalPath charges the POLB/VALB probe latency on every memory
	// access, not only on accesses that need translation — the paper's
	// pessimistic placement of the structures "prior to the TLB", without
	// the bypass predictor it leaves as future work.
	MMUCriticalPath bool

	// tracer, when non-nil, receives one structured event per reference
	// operation (see SetTrace / SetTracer).
	tracer *obs.Tracer

	// siteCounts, when non-nil, counts reference operations per static
	// site (see EnableSiteCounts).
	siteCounts map[string]uint64

	// policy is the fault-handling policy; see SetPolicy.
	policy fault.Policy
}

// Config parameterizes a Context.
type Config struct {
	Mode     Mode
	PoolSize uint64
	// Store persists the pool; nil keeps it in-process only.
	Store pmem.Store
	// CPUConfig overrides the default Table IV machine when non-nil.
	CPUConfig *cpu.Config
	// PoolMapBase, when nonzero, places the first pool at this address.
	PoolMapBase uint64
	// Policy selects strict or permissive handling of storeP faults
	// across the HW and SW layers; the zero value is fault.Permissive.
	Policy fault.Policy
	// Parity, when enabled, maintains per-page checksums and an XOR
	// parity sidecar for every checkpointed pool image and repairs
	// corrupt images in place on the open path (see internal/parity).
	Parity parity.Policy
}

// New builds a Context for the given mode with a default pool.
func New(cfg Config) (*Context, error) {
	if cfg.PoolSize == 0 {
		cfg.PoolSize = defaultPoolSize
	}
	as := mem.New()
	var regOpts []pmem.Option
	if cfg.PoolMapBase != 0 {
		regOpts = append(regOpts, pmem.WithMapBase(cfg.PoolMapBase))
	}
	if cfg.Parity.Enabled {
		regOpts = append(regOpts, pmem.WithParity(cfg.Parity))
	}
	reg := pmem.NewRegistry(as, cfg.Store, regOpts...)
	heap, err := newVHeap(as, defaultVHeapBase, defaultVHeapSize)
	if err != nil {
		return nil, err
	}
	if err := as.Map(swTableBase, swTableSize, "rt-tables"); err != nil {
		return nil, err
	}

	machine := cpu.DefaultConfig()
	if cfg.CPUConfig != nil {
		machine = *cfg.CPUConfig
	}

	c := &Context{
		Mode: cfg.Mode,
		AS:   as,
		Reg:  reg,
		Env:  core.NewEnv(reg),
		MMU:  hw.NewMMU(),
		CPU:  cpu.New(machine),
		heap: heap,
	}
	c.StoreP = hw.NewStorePUnit(c.MMU)
	c.SetPolicy(cfg.Policy)

	// Reopen the pool from a previous run when the store already has it —
	// mapped at whatever base this run's registry chooses — otherwise
	// create it fresh.
	var pool *pmem.Pool
	if cfg.Store != nil {
		if p, err := reg.Open(defaultPoolName); err == nil {
			pool = p
		}
	}
	if pool == nil {
		p, err := reg.Create(defaultPoolName, cfg.PoolSize)
		if err != nil {
			return nil, err
		}
		pool = p
	}
	c.Pool = pool
	c.pools = []*pmem.Pool{pool}
	c.poolFan = 1
	c.MMU.AttachPool(hw.RangeEntry{Base: pool.Base(), Size: pool.Size(), ID: pool.ID()})
	return c, nil
}

// Persist checkpoints every pool to the backing store, making everything
// reachable from the roots durable across simulated runs.
func (c *Context) Persist() error {
	for _, p := range c.pools {
		if err := c.Reg.Checkpoint(p); err != nil {
			return err
		}
	}
	return nil
}

// MustNew is New for tests and benchmarks where construction cannot fail.
func MustNew(mode Mode) *Context {
	c, err := New(Config{Mode: mode})
	if err != nil {
		panic(err)
	}
	return c
}

// fail reports a simulation-integrity violation. Kernel code runs over
// valid references by construction, so any fault here is a harness bug and
// panics rather than threading error returns through every kernel.
func (c *Context) fail(op string, err error) {
	panic(fmt.Sprintf("rt: %s (%s mode): %v", op, c.Mode, err))
}

// drainMMU credits pending POLB/VALB latency to the timing model.
func (c *Context) drainMMU() {
	if cycles := c.MMU.DrainCycles(); cycles > 0 {
		c.CPU.AddTranslationCycles(cycles)
	}
}

// storePRetire models one storeP occupying an FSM buffer entry for
// latency cycles. Entries retire in the background; the core stalls only
// when every entry is busy at issue time.
func (c *Context) storePRetire(latency uint64) {
	now := c.CPU.Stats.Cycles
	// Drop entries that completed by now.
	live := c.storePBusy[:0]
	for _, done := range c.storePBusy {
		if done > now {
			live = append(live, done)
		}
	}
	c.storePBusy = live
	if len(c.storePBusy) >= c.StoreP.Entries {
		// Buffer full: stall until the earliest entry retires.
		earliest := c.storePBusy[0]
		for _, done := range c.storePBusy[1:] {
			if done < earliest {
				earliest = done
			}
		}
		if earliest > now {
			c.CPU.AddTranslationCycles(earliest - now)
			now = earliest
		}
		// Re-filter after the stall.
		live = c.storePBusy[:0]
		for _, done := range c.storePBusy {
			if done > now {
				live = append(live, done)
			}
		}
		c.storePBusy = live
	}
	c.storePBusy = append(c.storePBusy, now+latency)
}

// swCheck models one SW dynamic check: the dispatch instructions plus the
// conditional branch through the predictor.
func (c *Context) swCheck(site *Site, kind uint64, taken bool) {
	c.Stats.SWCheckBranches++
	c.CPU.Exec(swCheckInstrs)
	c.CPU.Branch(site.ID^kind, taken)
}

// Sites for the branches inside the software translation routines.
var (
	siteRA2VAProbe = NewSite("rt.sw.ra2va.probe", true)
	siteVA2RAProbe = NewSite("rt.sw.va2ra.probe", true)
)

// swRA2VACost charges the software ra2va routine. Beyond its table loads,
// the routine probes the pool lookup structure (as libpmemobj's
// pmemobj_direct probes its cuckoo hash): the probe branches resolve on
// address bits, so their direction varies per reference and they predict
// poorly — the conditional statements the paper blames for the SW build's
// branch-misprediction blow-up.
func (c *Context) swRA2VACost(p core.Ptr) {
	c.CPU.Exec(swRA2VAInstrs)
	poolID := p.PoolID()
	for i := 0; i < swRA2VALoads; i++ {
		c.CPU.Load(swTableBase + uint64(poolID%64)*64 + uint64(i*8))
	}
	off := uint64(p.Offset())
	c.CPU.Branch(siteRA2VAProbe.ID, off&(1<<4) != 0)
	c.CPU.Branch(siteRA2VAProbe.ID^0x5bd1, off&(1<<6) != 0)
}

// swVA2RACost charges the software va2ra routine: a binary search over the
// attached-pool ranges whose comparison branches resolve on the address
// being translated.
func (c *Context) swVA2RACost(va uint64) {
	c.CPU.Exec(swVA2RAInstrs)
	for i := 0; i < swVA2RALoads; i++ {
		c.CPU.Load(swTableBase + 4096 + uint64(i)*64)
	}
	for i := 0; i < 3; i++ {
		c.CPU.Branch(siteVA2RAProbe.ID^uint64(i)*0x9e37, va&(1<<(4+2*i)) != 0)
	}
}

// resolve computes the virtual address designated by p (plus a byte
// offset), charging the mode's address-generation costs.
func (c *Context) resolve(site *Site, p core.Ptr, off int64) uint64 {
	switch c.Mode {
	case Volatile:
		return uint64(int64(p.VA()) + off)

	case Explicit:
		if p.IsRelative() {
			c.Stats.ExplicitAccesses++
			c.CPU.Exec(explicitAPIInstrs)
			va, err := c.MMU.RA2VA(p)
			c.drainMMU()
			if err != nil {
				c.fail("explicit access", err)
			}
			return uint64(int64(va) + off)
		}
		return uint64(int64(p.VA()) + off)

	case HW:
		if p.IsRelative() {
			c.Stats.EATranslations++
			va, err := c.MMU.RA2VA(p)
			c.drainMMU()
			if err != nil {
				c.fail("hw EA translation", err)
			}
			return uint64(int64(va) + off)
		}
		if c.MMUCriticalPath {
			// No translation needed, but the probe sits before the TLB.
			c.CPU.AddTranslationCycles(c.MMU.POLB.HitLatency)
		}
		return uint64(int64(p.VA()) + off)

	case SW:
		if !site.Inferred {
			c.swCheck(site, 0x11, p.IsRelative())
		}
		if p.IsRelative() {
			c.swRA2VACost(p)
			va, err := c.Env.ToVA(p)
			if err != nil {
				c.fail("sw ra2va", err)
			}
			return uint64(int64(va) + off)
		}
		c.Env.Stats.DynamicChecks++
		return uint64(int64(p.VA()) + off)
	}
	panic("rt: unknown mode")
}

// EnableSiteCounts turns on per-site operation counting: every reference
// operation increments a counter keyed by its static site's name. Off by
// default (the map probe is measurable on the hot path); read the result
// with SiteCounts or export it with ExportSiteCounts.
func (c *Context) EnableSiteCounts() {
	if c.siteCounts == nil {
		c.siteCounts = make(map[string]uint64)
	}
}

// SiteCounts returns a copy of the per-site operation counts (nil when
// counting was never enabled).
func (c *Context) SiteCounts() map[string]uint64 {
	if c.siteCounts == nil {
		return nil
	}
	out := make(map[string]uint64, len(c.siteCounts))
	for k, v := range c.siteCounts {
		out[k] = v
	}
	return out
}

// countSite records one operation at a static site when counting is on.
func (c *Context) countSite(site *Site) {
	if c.siteCounts == nil {
		return
	}
	c.siteCounts[site.Name]++
}

// LoadWord loads the 64-bit scalar at p+off.
func (c *Context) LoadWord(site *Site, p core.Ptr, off int64) uint64 {
	c.countSite(site)
	va := c.resolve(site, p, off)
	c.traceAccess(obs.EvLoad, p, off, va)
	c.CPU.Load(va)
	v, err := c.AS.Load64(va)
	if err != nil {
		c.fail("LoadWord", err)
	}
	return v
}

// StoreWord stores a 64-bit scalar at p+off (the storeD instruction).
func (c *Context) StoreWord(site *Site, p core.Ptr, off int64, v uint64) {
	c.countSite(site)
	va := c.resolve(site, p, off)
	c.traceAccess(obs.EvStore, p, off, va)
	c.CPU.Store(va)
	if err := c.AS.Store64(va, v); err != nil {
		c.fail("StoreWord", err)
	}
}

// LoadPtr loads the pointer stored at p+off and materializes it in a
// local, applying the pdy = pxr assignment rule: under the transparent
// schemes a relative value loaded into a (volatile) local converts to
// virtual form once, and later dereferences through the local reuse the
// conversion — the effect the paper's Figure 12 credits for beating the
// explicit model, whose object IDs must be converted at every access.
func (c *Context) LoadPtr(site *Site, p core.Ptr, off int64) core.Ptr {
	c.countSite(site)
	c.Stats.PointerLoads++
	va := c.resolve(site, p, off)
	c.CPU.Load(va)
	raw, err := c.AS.Load64(va)
	if err != nil {
		c.fail("LoadPtr", err)
	}
	loaded := core.Ptr(raw)
	local := c.loadPtrLocal(site, loaded)
	c.traceLoadPtr(p, off, loaded, local)
	return local
}

// loadPtrLocal applies the mode's local-assignment rule to a loaded word.
func (c *Context) loadPtrLocal(site *Site, loaded core.Ptr) core.Ptr {
	switch c.Mode {
	case Volatile, Explicit:
		// Volatile stores only virtual addresses; Explicit keeps object
		// IDs in locals and converts at each use instead.
		return loaded

	case HW:
		if c.DisableReuse {
			// Ablation: keep the loaded form; each dereference will
			// re-translate at EA generation.
			return loaded
		}
		if loaded.IsRelative() {
			c.Stats.EATranslations++
			va2, err := c.MMU.RA2VA(loaded)
			c.drainMMU()
			if err != nil {
				c.fail("hw pointer-load translation", err)
			}
			return core.FromVA(va2)
		}
		return loaded

	case SW:
		if !site.Inferred {
			c.swCheck(site, 0x22, loaded.IsRelative())
		}
		if loaded.IsRelative() {
			c.swRA2VACost(loaded)
		}
		va2, err := c.Env.ToVA(loaded)
		if err != nil {
			c.fail("sw pointer-load translation", err)
		}
		return core.FromVA(va2)
	}
	panic("rt: unknown mode")
}

// StorePtr stores pointer q into the pointer field at p+off. Under HW this
// is the storeP instruction; under SW it is the pointerAssignment runtime
// routine; Explicit stores the object ID unchanged; Volatile stores the
// virtual address.
func (c *Context) StorePtr(site *Site, p core.Ptr, off int64, q core.Ptr) {
	c.countSite(site)
	c.Stats.PointerStores++
	switch c.Mode {
	case Volatile, Explicit:
		va := c.resolve(site, p, off)
		c.traceStorePtr(p, off, q, q)
		c.CPU.Store(va)
		if err := c.AS.Store64(va, uint64(q)); err != nil {
			c.fail("StorePtr", err)
		}

	case HW:
		var rd core.Ptr
		if p.IsRelative() {
			rd = p.WithOffset(uint32(int64(p.Offset()) + off))
		} else {
			rd = core.FromVA(uint64(int64(p.VA()) + off))
		}
		c.Stats.StorePOps++
		res, err := c.StoreP.Execute(rd, q)
		if err != nil {
			c.fail("storeP", err)
		}
		// The storeP unit's per-entry FSM buffer hides the translation
		// latency: the op occupies an entry until its translations finish,
		// and the core stalls only when all entries are busy (this is why
		// the paper's Figure 14 latency sweep is nearly flat).
		c.MMU.DrainCycles() // latency accounted through the buffer instead
		c.storePRetire(res.Cycles)
		c.traceStorePtr(p, off, q, res.Value)
		c.CPU.Store(res.StoreVA)
		if err := c.AS.Store64(res.StoreVA, uint64(res.Value)); err != nil {
			c.fail("storeP commit", err)
		}

	case SW:
		va := c.resolve(site, p, off)
		dest := core.FromVA(va)
		// pointerAssignment's two checks as real branches, unless the
		// compiler resolved the site statically.
		if !site.Inferred {
			c.swCheck(site, 0x33, core.DetermineX(dest) == core.NVM)
			c.swCheck(site, 0x44, q.IsRelative())
		}
		before := c.Env.Stats
		stored, err := c.Env.PointerAssignment(dest, q)
		if err != nil {
			c.fail("sw pointerAssignment", err)
		}
		if d := c.Env.Stats.AbsToRel - before.AbsToRel; d > 0 {
			c.swVA2RACost(q.VA())
		}
		if d := c.Env.Stats.RelToAbs - before.RelToAbs; d > 0 {
			c.swRA2VACost(q)
		}
		c.traceStorePtr(p, off, q, stored)
		c.CPU.Store(va)
		if err := c.AS.Store64(va, uint64(stored)); err != nil {
			c.fail("sw StorePtr commit", err)
		}
	}
}

// PtrEq compares two references for equality under the mode's semantics.
func (c *Context) PtrEq(site *Site, p, q core.Ptr) bool {
	c.countSite(site)
	c.CPU.Exec(1)
	switch c.Mode {
	case Volatile, Explicit:
		return p == q
	case HW:
		if p.IsRelative() != q.IsRelative() && !p.IsNull() && !q.IsNull() {
			// Mixed forms: hardware converts the relative side.
			c.Stats.EATranslations++
			eq, err := c.hwEqual(p, q)
			if err != nil {
				c.fail("hw compare", err)
			}
			return eq
		}
		return p == q
	case SW:
		if !site.Inferred {
			c.swCheck(site, 0x55, p.IsRelative())
			c.swCheck(site, 0x66, q.IsRelative())
		}
		before := c.Env.Stats
		eq, err := c.Env.Equal(p, q)
		if err != nil {
			c.fail("sw compare", err)
		}
		for d := c.Env.Stats.RelToAbs - before.RelToAbs; d > 0; d-- {
			c.swRA2VACost(p)
		}
		return eq
	}
	panic("rt: unknown mode")
}

func (c *Context) hwEqual(p, q core.Ptr) (bool, error) {
	pv, err := c.MMU.LoadEffectiveAddress(p)
	if err != nil {
		return false, err
	}
	qv, err := c.MMU.LoadEffectiveAddress(q)
	c.drainMMU()
	if err != nil {
		return false, err
	}
	return pv == qv, nil
}

// PtrLess orders two references under the mode's semantics (the
// relational rows of Figure 4).
func (c *Context) PtrLess(site *Site, p, q core.Ptr) bool {
	c.countSite(site)
	c.CPU.Exec(1)
	switch c.Mode {
	case Volatile, Explicit:
		return p < q
	case HW:
		pv, err := c.MMU.LoadEffectiveAddress(p)
		if err != nil {
			c.fail("hw compare", err)
		}
		qv, err := c.MMU.LoadEffectiveAddress(q)
		c.drainMMU()
		if err != nil {
			c.fail("hw compare", err)
		}
		return pv < qv
	case SW:
		if !site.Inferred {
			c.swCheck(site, 0x55, p.IsRelative())
			c.swCheck(site, 0x66, q.IsRelative())
		}
		before := c.Env.Stats
		less, err := c.Env.Less(p, q)
		if err != nil {
			c.fail("sw compare", err)
		}
		for d := c.Env.Stats.RelToAbs - before.RelToAbs; d > 0; d-- {
			c.swRA2VACost(p)
		}
		return less
	}
	panic("rt: unknown mode")
}

// PtrToInt converts a reference to its integer (address) value: the (I)p
// rows of Figure 4. Under the transparent schemes a relative reference
// yields its current virtual address; the explicit model's integer view of
// an object ID is the ID itself, by that model's typed discipline.
func (c *Context) PtrToInt(site *Site, p core.Ptr) uint64 {
	c.countSite(site)
	c.CPU.Exec(1)
	switch c.Mode {
	case Volatile, Explicit:
		return uint64(p)
	case HW:
		if p.IsRelative() {
			c.Stats.EATranslations++
			va, err := c.MMU.RA2VA(p)
			c.drainMMU()
			if err != nil {
				c.fail("hw ptr-to-int", err)
			}
			return va
		}
		return p.VA()
	case SW:
		if !site.Inferred {
			c.swCheck(site, 0x77, p.IsRelative())
		}
		if p.IsRelative() {
			c.swRA2VACost(p)
		}
		v, err := c.Env.CastToInt(p)
		if err != nil {
			c.fail("sw ptr-to-int", err)
		}
		return v
	}
	panic("rt: unknown mode")
}

// PtrDiff subtracts two references in units of elemSize (the pointer
// difference rows of Figure 4).
func (c *Context) PtrDiff(site *Site, p, q core.Ptr, elemSize int64) int64 {
	c.countSite(site)
	c.CPU.Exec(2)
	switch c.Mode {
	case Volatile, Explicit:
		return (int64(p) - int64(q)) / elemSize
	case HW:
		pv, err := c.MMU.LoadEffectiveAddress(p)
		if err != nil {
			c.fail("hw ptr diff", err)
		}
		qv, err := c.MMU.LoadEffectiveAddress(q)
		c.drainMMU()
		if err != nil {
			c.fail("hw ptr diff", err)
		}
		return (int64(pv) - int64(qv)) / elemSize
	case SW:
		if !site.Inferred {
			c.swCheck(site, 0x88, p.IsRelative())
			c.swCheck(site, 0x99, q.IsRelative())
		}
		before := c.Env.Stats
		d, err := c.Env.Diff(p, q, elemSize)
		if err != nil {
			c.fail("sw ptr diff", err)
		}
		for n := c.Env.Stats.RelToAbs - before.RelToAbs; n > 0; n-- {
			c.swRA2VACost(p)
		}
		return d
	}
	panic("rt: unknown mode")
}

// PtrAdd advances a reference by n elements of elemSize, preserving its
// representation (the additive rows of Figure 4: no check, no conversion).
func (c *Context) PtrAdd(p core.Ptr, n int64, elemSize int64) core.Ptr {
	c.CPU.Exec(1)
	if p.IsRelative() {
		return p.WithOffset(uint32(int64(p.Offset()) + n*elemSize))
	}
	return core.FromVA(uint64(int64(p.VA()) + n*elemSize))
}

// IsNull tests a reference against NULL. Null is all-zero in both forms,
// so no mode needs a check or conversion (the p op NULL row of Figure 4).
func (c *Context) IsNull(p core.Ptr) bool {
	c.CPU.Exec(1)
	return p.IsNull()
}

// Branch replays one of the kernel's own conditional branches.
func (c *Context) Branch(site *Site, taken bool) {
	c.CPU.Branch(site.ID, taken)
}

// Exec replays n of the kernel's ALU instructions.
func (c *Context) Exec(n uint64) {
	c.CPU.Exec(n)
}

// Pmalloc allocates a persistent object and returns the reference a local
// variable would hold after the assignment: the transparent schemes convert
// the relative result to virtual form once (pdy = pxr with an inferred
// site, so SW emits no check); Explicit keeps the object ID; Volatile
// allocates on the DRAM heap instead.
func (c *Context) Pmalloc(size uint64) core.Ptr {
	return c.pmallocFrom(c.nextPool(), size)
}

// pmallocFrom is Pmalloc against a chosen pool.
func (c *Context) pmallocFrom(pool *pmem.Pool, size uint64) core.Ptr {
	p := c.pmallocRaw(pool, size)
	c.traceAllocFree(obs.EvAlloc, p, size)
	return p
}

func (c *Context) pmallocRaw(pool *pmem.Pool, size uint64) core.Ptr {
	c.Stats.Allocs++
	c.CPU.Exec(allocInstrs)
	if c.Mode == Volatile {
		va, err := c.heap.alloc(size)
		if err != nil {
			c.fail("Pmalloc(volatile)", err)
		}
		for i := 0; i < allocStores; i++ {
			c.CPU.Store(va + uint64(i*8))
		}
		return core.FromVA(va)
	}
	ref, err := pool.Pmalloc(size)
	if err != nil {
		c.fail("Pmalloc", err)
	}
	hdrVA, err := c.Reg.RA2VA(ref)
	if err != nil {
		c.fail("Pmalloc", err)
	}
	for i := 0; i < allocStores; i++ {
		c.CPU.Store(hdrVA - 16 + uint64(i*8))
	}
	switch c.Mode {
	case Explicit:
		return ref
	case HW:
		c.Stats.EATranslations++
		va, err := c.MMU.RA2VA(ref)
		c.drainMMU()
		if err != nil {
			c.fail("Pmalloc hw translation", err)
		}
		return core.FromVA(va)
	case SW:
		// Inference knows pmalloc returns a relative address: conversion
		// without a dynamic check.
		c.swRA2VACost(ref)
		va, err := c.Env.ToVA(ref)
		if err != nil {
			c.fail("Pmalloc sw translation", err)
		}
		return core.FromVA(va)
	}
	panic("rt: unknown mode")
}

// Malloc allocates a volatile object on the DRAM heap.
func (c *Context) Malloc(size uint64) core.Ptr {
	c.Stats.Allocs++
	c.CPU.Exec(allocInstrs)
	va, err := c.heap.alloc(size)
	if err != nil {
		c.fail("Malloc", err)
	}
	for i := 0; i < allocStores; i++ {
		c.CPU.Store(va + uint64(i*8))
	}
	p := core.FromVA(va)
	c.traceAllocFree(obs.EvAlloc, p, size)
	return p
}

// FreeVolatile returns a Malloc'd object of the given size to the heap.
func (c *Context) FreeVolatile(p core.Ptr, size uint64) {
	c.Stats.Frees++
	c.CPU.Exec(freeInstrs)
	c.heap.release(p.VA(), size)
	c.traceAllocFree(obs.EvFree, p, size)
}

// Pfree releases a persistent object (or its volatile stand-in).
func (c *Context) Pfree(p core.Ptr, size uint64) {
	c.Stats.Frees++
	c.CPU.Exec(freeInstrs)
	c.traceAllocFree(obs.EvFree, p, size)
	if c.Mode == Volatile {
		c.heap.release(p.VA(), size)
		return
	}
	if err := c.Pool.Pfree(c.toPoolRef(p)); err != nil {
		c.fail("Pfree", err)
	}
}

// toPoolRef renormalizes a local-form reference to the pool's relative form.
func (c *Context) toPoolRef(p core.Ptr) core.Ptr {
	if p.IsRelative() {
		return p
	}
	if rel, ok := c.Reg.VA2RA(p.VA()); ok {
		return rel
	}
	return p
}

// SetRoot stores the root reference in the pool header — an NVM pointer
// store, so the transparent schemes convert virtual-form q to relative.
func (c *Context) SetRoot(site *Site, q core.Ptr) {
	if c.Mode == Volatile {
		c.CPU.Store(swTableBase) // a root variable in DRAM
		c.Pool.SetRoot(q)
		return
	}
	rootLoc := core.MakeRelative(c.Pool.ID(), uint32(pmem.RootOffset))
	switch c.Mode {
	case Explicit:
		va := c.resolve(site, rootLoc, 0)
		c.CPU.Store(va)
		c.Pool.SetRoot(c.toPoolRef(q))
	case HW:
		c.Stats.StorePOps++
		res, err := c.StoreP.Execute(rootLoc, q)
		if err != nil {
			c.fail("SetRoot storeP", err)
		}
		c.MMU.DrainCycles()
		c.storePRetire(res.Cycles)
		c.CPU.Store(res.StoreVA)
		c.Pool.SetRoot(res.Value)
	case SW:
		c.swCheck(site, 0x33, true)
		c.swCheck(site, 0x44, q.IsRelative())
		before := c.Env.Stats
		stored, err := c.Env.PointerAssignment(rootLoc, q)
		if err != nil {
			c.fail("SetRoot", err)
		}
		if c.Env.Stats.AbsToRel > before.AbsToRel {
			c.swVA2RACost(q.VA())
		}
		va, _ := c.Reg.RA2VA(rootLoc)
		c.CPU.Store(va)
		c.Pool.SetRoot(stored)
	}
}

// Root loads the pool's root reference into a local.
func (c *Context) Root(site *Site) core.Ptr {
	if c.Mode == Volatile {
		c.CPU.Load(swTableBase)
		return c.Pool.Root()
	}
	rootLoc := core.MakeRelative(c.Pool.ID(), uint32(pmem.RootOffset))
	return c.LoadPtr(site, rootLoc, 0)
}
