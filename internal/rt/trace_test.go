package rt

import (
	"bytes"
	"strings"
	"testing"

	"nvref/internal/core"
)

func TestTraceRecordsOperationsAndConversions(t *testing.T) {
	c := MustNew(HW)
	var buf bytes.Buffer
	c.SetTrace(&buf)

	a := c.Pmalloc(32)
	b := c.Pmalloc(32)
	c.StorePtr(tsStore, a, 0, b) // VA-form local into NVM: converts
	p := c.LoadPtr(tsLoad, a, 0) // relative loaded, converted to local VA
	_ = c.LoadWord(tsLoad, p, 8)
	c.StoreWord(tsStore, p, 8, 5)

	out := buf.String()
	for _, want := range []string{"storePtr", "loadPtr", "load    ", "storeD", "(converted from", "pdy=pxr conversion", "[HW @"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q in:\n%s", want, out)
		}
	}

	// Detaching the writer stops emission.
	c.SetTrace(nil)
	before := buf.Len()
	_ = c.LoadWord(tsLoad, p, 8)
	if buf.Len() != before {
		t.Error("trace emitted after detach")
	}
}

func TestTraceOffByDefaultCostsNothing(t *testing.T) {
	c := MustNew(SW)
	p := c.Pmalloc(16)
	c.StoreWord(tsStore, p, 0, 1)
	if c.traceOn() {
		t.Error("trace on by default")
	}
	_ = core.Null
}
