package rt

import (
	"testing"

	"nvref/internal/core"
	"nvref/internal/hw"
)

func TestSetPoolCountRoundRobin(t *testing.T) {
	c := MustNew(HW)
	if err := c.SetPoolCount(4); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Pools()); got != 4 {
		t.Fatalf("Pools() = %d", got)
	}
	// Allocations must spread across all four pools.
	seen := map[uint32]bool{}
	var refs []core.Ptr
	for i := 0; i < 8; i++ {
		p := c.Pmalloc(64)
		refs = append(refs, p)
		rel := c.toPoolRef(p)
		if !rel.IsRelative() {
			t.Fatalf("allocation %d not resolvable to a pool: %s", i, p)
		}
		seen[rel.PoolID()] = true
	}
	if len(seen) != 4 {
		t.Errorf("allocations touched %d pools, want 4", len(seen))
	}
	// Cross-pool pointer stores still work.
	c.StorePtr(tsStore, refs[0], 0, refs[1])
	got := c.LoadPtr(tsLoad, refs[0], 0)
	if !c.PtrEq(tsCmp, got, refs[1]) {
		t.Error("cross-pool pointer round trip failed")
	}
}

func TestSetPoolCountValidation(t *testing.T) {
	c := MustNew(HW)
	if err := c.SetPoolCount(0); err == nil {
		t.Error("SetPoolCount(0) accepted")
	}
	if err := c.SetPoolCount(2); err != nil {
		t.Fatal(err)
	}
	// Shrinking the fan keeps the pools but reduces round-robin width.
	if err := c.SetPoolCount(1); err != nil {
		t.Fatal(err)
	}
	if len(c.Pools()) != 1 {
		t.Errorf("Pools() after shrink = %d", len(c.Pools()))
	}
}

func TestPmallocIn(t *testing.T) {
	c := MustNew(Explicit)
	if err := c.SetPoolCount(3); err != nil {
		t.Fatal(err)
	}
	target := c.Pools()[2]
	p := c.PmallocIn(target, 32)
	if !p.IsRelative() || p.PoolID() != target.ID() {
		t.Errorf("PmallocIn placed %s, want pool %d", p, target.ID())
	}
}

func TestManyPoolsPressurePOLB(t *testing.T) {
	c := MustNew(HW)
	if err := c.SetPoolCount(48); err != nil {
		t.Fatal(err)
	}
	// Touch one object in each pool twice, dereferencing through the
	// relative form (as a pointer freshly loaded from NVM would be);
	// 48 pools overflow the 32-entry POLB, so the second sweep still
	// misses.
	var refs []core.Ptr
	for i := 0; i < 48; i++ {
		p := c.Pmalloc(32)
		c.StoreWord(tsStore, p, 0, uint64(i))
		refs = append(refs, c.toPoolRef(p))
	}
	missesAfterBuild := c.MMU.POLB.Stats.Misses
	for _, p := range refs {
		_ = c.LoadWord(tsLoad, p, 0)
	}
	if c.MMU.POLB.Stats.Misses == missesAfterBuild {
		t.Error("48-pool sweep produced no POLB misses; capacity not modeled")
	}
}

// TestDetachedPoolFaultsAtRuntime is the paper's Figure 10 scenario at the
// runtime level: after a pool detaches, a dereference that needs its
// translation faults instead of silently misbehaving.
func TestDetachedPoolFaultsAtRuntime(t *testing.T) {
	c := MustNew(HW)
	p := c.Pmalloc(64)
	c.StoreWord(tsStore, p, 0, 7)
	rel := c.toPoolRef(p)

	if err := c.Reg.Detach(c.Pool); err != nil {
		t.Fatal(err)
	}
	c.MMU.DetachPool(c.Pool.ID())

	defer func() {
		if recover() == nil {
			t.Error("dereference through a detached pool did not fault")
		}
	}()
	_ = c.LoadWord(tsLoad, rel, 0)
}

func TestMMUMirrorsRegistryPools(t *testing.T) {
	c := MustNew(HW)
	if err := c.SetPoolCount(5); err != nil {
		t.Fatal(err)
	}
	for _, pool := range c.Pools() {
		e, _, ok := c.MMU.POLB.Lookup(pool.ID())
		if !ok {
			t.Errorf("pool %d missing from hardware tables", pool.ID())
			continue
		}
		if e.Base != pool.Base() || e.Size != pool.Size() {
			t.Errorf("pool %d: hw mapping %+v != registry (%#x, %#x)",
				pool.ID(), e, pool.Base(), pool.Size())
		}
	}
	_ = hw.RangeEntry{}
}
