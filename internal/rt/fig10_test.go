package rt

import (
	"testing"

	"nvref/internal/hw"
	"nvref/internal/pmem"
)

// TestFig10OptimizationOrdering demonstrates the paper's Figure 10
// argument for running the reference pass *after* scalar optimizations:
// if value numbering were applied afterward and cached a ra2va conversion
// across a pool detach, the program would silently use a stale virtual
// address; the unoptimized per-use conversion faults instead, surfacing
// the detach. Mechanically: a cached conversion result keeps working
// against the old mapping (wrong), while re-converting faults (right).
func TestFig10OptimizationOrdering(t *testing.T) {
	c, err := New(Config{Mode: HW, Store: pmem.NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	obj := c.Pmalloc(64)
	c.StoreWord(tsStore, obj, 0, 1234)
	rel := c.toPoolRef(obj)

	// The "optimized" code hoisted the conversion: it holds the virtual
	// address from before the detach.
	staleVA, err2 := c.MMU.RA2VA(rel)
	if err2 != nil {
		t.Fatal(err2)
	}

	// The pool detaches mid-execution (Figure 10's scenario).
	if err := c.Reg.Detach(c.Pool); err != nil {
		t.Fatal(err)
	}
	c.MMU.DetachPool(c.Pool.ID())

	// Correct (unoptimized) behaviour: the second conversion faults.
	if _, err := c.MMU.RA2VA(rel); err == nil {
		t.Error("re-conversion after detach did not fault")
	}

	// Incorrect (reordered-optimization) behaviour: the cached address
	// dereferences whatever is (or is not) at the old mapping — here the
	// memory is unmapped, but on a real system it could be reused by a
	// different pool, which is precisely the silent corruption the paper
	// warns about.
	if _, err := c.AS.Load64(staleVA); err == nil {
		t.Error("stale cached address still mapped; detach did not unmap")
	}

	// Reattach at a different base: the cached address is now provably
	// wrong while the relative reference finds the data again.
	if err := c.Reg.Attach(c.Pool); err != nil {
		t.Fatal(err)
	}
	c.MMU.AttachPool(hw.RangeEntry{Base: c.Pool.Base(), Size: c.Pool.Size(), ID: c.Pool.ID()})
	freshVA, err := c.MMU.RA2VA(rel)
	if err != nil {
		t.Fatal(err)
	}
	if freshVA == staleVA {
		t.Fatal("pool reattached at the same base; scenario not exercised")
	}
	v, err := c.AS.Load64(freshVA)
	if err != nil || v != 1234 {
		t.Errorf("fresh conversion lost the data: %d, %v", v, err)
	}
}

// TestFig12TranslationReuse pins the paper's Figure 12 codelet: loading a
// persistent pointer converts it once, and every later dereference
// through the local reuses the conversion; the explicit model converts at
// every access.
func TestFig12TranslationReuse(t *testing.T) {
	countPOLB := func(mode Mode) uint64 {
		c := MustNew(mode)
		a := c.Pmalloc(64)
		b := c.Pmalloc(64)
		c.StorePtr(tsStore, a, 0, b)
		c.StoreWord(tsStore, b, 8, 5)

		before := c.MMU.POLB.Stats.Accesses()
		// q = p->next; use q three times (the Figure 12 pattern).
		q := c.LoadPtr(tsLoad, c.toPoolRef(a), 0)
		_ = c.LoadWord(tsLoad, q, 8)
		_ = c.LoadWord(tsLoad, q, 8)
		_ = c.LoadWord(tsLoad, q, 8)
		return c.MMU.POLB.Stats.Accesses() - before
	}

	hw := countPOLB(HW)
	explicit := countPOLB(Explicit)
	// HW: one conversion for the address of a, one for the loaded q —
	// then reuse. Explicit: every one of the four accesses converts.
	if hw != 2 {
		t.Errorf("HW POLB accesses = %d, want 2 (converted once, reused)", hw)
	}
	if explicit != 4 {
		t.Errorf("Explicit POLB accesses = %d, want 4 (converted per access)", explicit)
	}
}
