package rt

import (
	"strings"
	"testing"

	"nvref/internal/core"
	"nvref/internal/fault"
	"nvref/internal/mem"
	"nvref/internal/pmem"
)

// strayNVMVA is a virtual address in the NVM half that no attached pool
// covers: storing it into persistent memory is the storeP fault of Table I.
const strayNVMVA = mem.NVMBase + (1 << 40)

func policyContext(t *testing.T, mode Mode, p fault.Policy) *Context {
	t.Helper()
	c, err := New(Config{Mode: mode, PoolSize: 1 << 20, Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPolicyWiresAllLayers(t *testing.T) {
	c := policyContext(t, HW, fault.Strict)
	if c.Policy() != fault.Strict || !c.StoreP.Strict || !c.Env.Strict {
		t.Errorf("strict policy not applied: storeP=%v env=%v", c.StoreP.Strict, c.Env.Strict)
	}
	c.SetPolicy(fault.Permissive)
	if c.Policy() != fault.Permissive || c.StoreP.Strict || c.Env.Strict {
		t.Errorf("permissive policy not applied: storeP=%v env=%v", c.StoreP.Strict, c.Env.Strict)
	}
}

func TestStrictPolicyFaultsStrayNVMStore(t *testing.T) {
	site := NewSite("test.policy.store", false)
	for _, mode := range []Mode{HW, SW} {
		t.Run(mode.String(), func(t *testing.T) {
			c := policyContext(t, mode, fault.Strict)
			obj := c.Pmalloc(64)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("strict store of a stray NVM address did not fault")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "rt:") {
					panic(r) // not the simulated fault; re-raise
				}
			}()
			c.StorePtr(site, obj, 0, core.FromVA(strayNVMVA))
		})
	}
}

func TestPermissivePolicyStoresAndFsckFinds(t *testing.T) {
	site := NewSite("test.policy.store", false)
	for _, mode := range []Mode{HW, SW} {
		t.Run(mode.String(), func(t *testing.T) {
			c := policyContext(t, mode, fault.Permissive)
			obj := c.Pmalloc(64)
			c.StorePtr(site, obj, 0, core.FromVA(strayNVMVA))
			// The damage is durable: the relocatability scan must see it.
			bad := pmem.VerifyRelocatable(c.Pool, c.AS)
			if len(bad) == 0 {
				t.Error("permissive stray store left no trace for VerifyRelocatable")
			}
		})
	}
}
