// Package rt runs workload kernels under the four implementations the
// paper's evaluation compares:
//
//	Volatile — the native program: ordinary pointers, data on DRAM, no
//	          NVM-related work at all. The clean reference point.
//	Explicit — the explicit persistent-reference model of prior work:
//	          persistent objects are named by object IDs (relative
//	          addresses) everywhere, and every access to a persistent
//	          object converts the ID through the hardware POLB.
//	SW       — user-transparent persistent references implemented purely in
//	          software: the compiler inserts dynamic format checks
//	          (conditional branches) at the pointer operations it cannot
//	          resolve statically, and conversions call runtime routines.
//	HW       — user-transparent persistent references with the paper's
//	          architecture support: loads translate relative addresses at
//	          effective-address generation through the POLB, and pointer
//	          stores use the storeP instruction with its VALB/FSM unit.
//
// Kernels are written once against Context's operations; the mode selects
// both the in-memory pointer representation and the timing events fed to
// the cpu model. Every quantity the evaluation reports — dynamic checks,
// conversions, storeP counts, POLB/VALB traffic, branch mispredictions —
// emerges from these mechanics rather than from fitted constants.
//
// A Context models the paper's single-core machine (Table IV) and is not
// safe for concurrent use; run one workload per Context.
package rt

import "sync/atomic"

// Mode selects the implementation a kernel runs under.
type Mode int

// The four compared versions.
const (
	Volatile Mode = iota
	Explicit
	SW
	HW
)

// Modes lists all modes in the order the paper's figures present them.
var Modes = []Mode{Volatile, Explicit, SW, HW}

func (m Mode) String() string {
	switch m {
	case Volatile:
		return "Volatile"
	case Explicit:
		return "Explicit"
	case SW:
		return "SW"
	case HW:
		return "HW"
	}
	return "unknown"
}

// Site identifies one static pointer-operation site in kernel code — the
// unit at which the paper's compiler pass decides whether a dynamic check
// is needed. Inferred sites are those where backward dataflow resolved the
// pointer's property (for example, the direct result of pmalloc or malloc),
// so the SW build emits no check there. At all other sites the SW build
// performs the runtime check; the HW build never needs one.
type Site struct {
	ID       uint64
	Name     string
	Inferred bool
}

var siteCounter atomic.Uint64

// NewSite registers a static site. Kernels declare sites as package-level
// variables so IDs are stable across runs within a process.
func NewSite(name string, inferred bool) *Site {
	id := siteCounter.Add(1)
	// Spread site IDs across the branch predictor index space the way
	// distinct static branch PCs would be.
	return &Site{ID: id * 0x9e3779b1, Name: name, Inferred: inferred}
}
