package rt

import (
	"strings"
	"testing"

	"nvref/internal/obs"
)

// runSmallWorkload drives a few dozen reference operations so every layer's
// counters move.
func runSmallWorkload(c *Context) {
	a := c.Pmalloc(64)
	b := c.Pmalloc(64)
	c.StorePtr(tsStore, a, 0, b)
	for i := 0; i < 16; i++ {
		p := c.LoadPtr(tsLoad, a, 0)
		c.StoreWord(tsStore, p, 8, uint64(i))
		_ = c.LoadWord(tsLoad, p, 8)
		_ = c.PtrEq(tsLoad, p, b)
	}
	c.Pfree(b, 64)
}

func TestRegisterMetricsMatchesLegacyStats(t *testing.T) {
	for _, mode := range []Mode{Volatile, Explicit, SW, HW} {
		c := MustNew(mode)
		reg := obs.NewRegistry()
		c.RegisterMetrics(reg)
		runSmallWorkload(c)

		snap := reg.Snapshot()
		// The exported series must equal the legacy struct counters exactly:
		// the collectors read the same memory the experiments report from.
		checks := map[string]uint64{
			"rt_pointer_loads_total":    c.Stats.PointerLoads,
			"rt_pointer_stores_total":   c.Stats.PointerStores,
			"rt_allocs_total":           c.Stats.Allocs,
			"rt_frees_total":            c.Stats.Frees,
			"core_dynamic_checks_total": c.Env.Stats.DynamicChecks,
			"core_abs_to_rel_total":     c.Env.Stats.AbsToRel,
			"core_rel_to_abs_total":     c.Env.Stats.RelToAbs,
			"hw_polb_hits_total":        c.MMU.POLB.Stats.Hits,
			"hw_polb_misses_total":      c.MMU.POLB.Stats.Misses,
			"hw_valb_hits_total":        c.MMU.VALB.Stats.Hits,
			"hw_storep_ops_total":       c.StoreP.Stats.Ops,
			"cpu_cycles_total":          c.CPU.Stats.Cycles,
			"cpu_instructions_total":    c.CPU.Stats.Instructions,
			"cpu_branches_total":        c.CPU.Stats.Branch.Branches,
			"pmem_pool_creates_total":   c.Reg.Stats.Creates,
		}
		for name, want := range checks {
			if got := snap.Value(name); got != int64(want) {
				t.Errorf("%s mode: %s = %d, legacy counter = %d", mode, name, got, want)
			}
		}
		if mode == SW && snap.Value("core_dynamic_checks_total") == 0 {
			t.Errorf("SW mode: dynamic checks never counted")
		}
		if mode == HW && snap.Value("hw_storep_ops_total") == 0 {
			t.Errorf("HW mode: storeP ops never counted")
		}
	}
}

func TestSiteCountsExport(t *testing.T) {
	c := MustNew(SW)
	if c.SiteCounts() != nil {
		t.Error("site counts non-nil before EnableSiteCounts")
	}
	c.EnableSiteCounts()
	runSmallWorkload(c)

	counts := c.SiteCounts()
	if counts["test.load"] == 0 || counts["test.store"] == 0 {
		t.Fatalf("per-site counts missing: %v", counts)
	}

	reg := obs.NewRegistry()
	c.ExportSiteCounts(reg)
	snap := reg.Snapshot()
	got := snap.Value("rt_site_ops_total_test_load")
	if got != int64(counts["test.load"]) {
		t.Errorf("exported site series = %d, map = %d", got, counts["test.load"])
	}
	for _, s := range snap.Series {
		if !strings.HasPrefix(s.Name, "rt_site_ops_total_") {
			t.Errorf("unexpected series %q", s.Name)
		}
	}
}

func TestRegisterMetricsRebindsToFreshContext(t *testing.T) {
	reg := obs.NewRegistry()
	c1 := MustNew(HW)
	c1.RegisterMetrics(reg)
	runSmallWorkload(c1)
	first := reg.Snapshot().Value("rt_pointer_loads_total")
	if first == 0 {
		t.Fatal("first context never counted")
	}

	c2 := MustNew(HW)
	c2.RegisterMetrics(reg) // collectors rebind; same series names
	if got := reg.Snapshot().Value("rt_pointer_loads_total"); got != 0 {
		t.Errorf("after rebind, fresh context reads %d, want 0", got)
	}
}

func TestStructuredTraceCarriesConversions(t *testing.T) {
	c := MustNew(HW)
	tr := obs.NewTracer(64)
	c.SetTracer(tr)

	a := c.Pmalloc(32)
	b := c.Pmalloc(32)
	c.StorePtr(tsStore, a, 0, b) // VA local into NVM: va2ra
	_ = c.LoadPtr(tsLoad, a, 0)  // relative loaded: ra2va

	var sawStore, sawLoad bool
	for _, e := range tr.Events() {
		switch e.Kind {
		case obs.EvStorePtr:
			sawStore = true
			if e.Conv != obs.ConvAbsToRel {
				t.Errorf("storePtr conv = %s, want va2ra", e.Conv)
			}
		case obs.EvLoadPtr:
			sawLoad = true
			if e.Conv != obs.ConvRelToAbs {
				t.Errorf("loadPtr conv = %s, want ra2va", e.Conv)
			}
		}
		if e.Mode != "HW" {
			t.Errorf("event mode %q, want HW", e.Mode)
		}
	}
	if !sawStore || !sawLoad {
		t.Fatalf("trace missing pointer events: store=%v load=%v", sawStore, sawLoad)
	}
}
