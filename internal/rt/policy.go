package rt

import "nvref/internal/fault"

// SetPolicy applies a fault-handling policy uniformly to every layer that
// can detect a non-relocatable pointer reaching persistent memory (the
// storeP fault of Table I): the HW storeP unit and the SW runtime
// environment. Under fault.Strict both layers fault when asked to store an
// NVM virtual address that no attached pool can convert to relative form;
// under fault.Permissive the address is stored unchanged and the damage is
// left for pmem.VerifyRelocatable / pmem.Fsck to find.
func (c *Context) SetPolicy(p fault.Policy) {
	c.policy = p
	strict := p == fault.Strict
	c.StoreP.Strict = strict
	c.Env.Strict = strict
}

// Policy returns the active fault-handling policy.
func (c *Context) Policy() fault.Policy { return c.policy }
