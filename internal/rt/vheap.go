package rt

import (
	"fmt"

	"nvref/internal/mem"
)

// vheap is the volatile heap: a simple bump-plus-freelist allocator over a
// DRAM region of the simulated address space. Its bookkeeping lives on the
// Go side — volatile allocations need no persistence — but the storage it
// hands out is real simulated DRAM.
// The heap is size-class segregated, as production mallocs are: each
// rounded block size draws from its own slab of contiguous blocks, so a
// stray odd-sized allocation cannot phase-shift a later stream of
// same-sized objects across cache-line boundaries.
type vheap struct {
	as    *mem.AddressSpace
	base  uint64
	size  uint64
	next  uint64              // next unused slab boundary
	slabs map[uint64]*slab    // block size -> active slab
	free  map[uint64][]uint64 // block size -> free user addresses
}

type slab struct {
	next uint64 // next block address
	end  uint64
}

const (
	vheapAlign = 16
	// vheapHeader matches the persistent allocator's per-block header so
	// both heaps lay objects out at the same stride; otherwise cache
	// behaviour would differ between the volatile baseline and the
	// persistent builds for reasons unrelated to the reference scheme.
	vheapHeader = 16
	slabSize    = uint64(256 << 10)
)

func newVHeap(as *mem.AddressSpace, base, size uint64) (*vheap, error) {
	if err := as.Map(base, size, "vheap"); err != nil {
		return nil, err
	}
	return &vheap{
		as: as, base: base, size: size, next: base,
		slabs: make(map[uint64]*slab),
		free:  make(map[uint64][]uint64),
	}, nil
}

// blockSize rounds a request to its class: user bytes plus header, at
// allocator alignment.
func blockSize(size uint64) uint64 {
	return (size + vheapHeader + vheapAlign - 1) &^ (vheapAlign - 1)
}

func (h *vheap) alloc(size uint64) (uint64, error) {
	bs := blockSize(size)
	if list := h.free[bs]; len(list) > 0 {
		va := list[len(list)-1]
		h.free[bs] = list[:len(list)-1]
		return va, nil
	}
	s := h.slabs[bs]
	if s == nil || s.next+bs > s.end {
		span := slabSize
		if bs > span {
			span = (bs + slabSize - 1) &^ (slabSize - 1)
		}
		if h.next+span > h.base+h.size {
			return 0, fmt.Errorf("rt: volatile heap exhausted (%d bytes requested)", size)
		}
		s = &slab{next: h.next, end: h.next + span}
		h.next += span
		h.slabs[bs] = s
	}
	va := s.next
	s.next += bs
	return va + vheapHeader, nil
}

func (h *vheap) release(va uint64, size uint64) {
	bs := blockSize(size)
	h.free[bs] = append(h.free[bs], va)
}
