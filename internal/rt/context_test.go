package rt

import (
	"testing"

	"nvref/internal/core"
)

var (
	tsLoad  = NewSite("test.load", false)
	tsStore = NewSite("test.store", false)
	tsCmp   = NewSite("test.cmp", false)
	tsRoot  = NewSite("test.root", false)
)

func TestModeString(t *testing.T) {
	want := map[Mode]string{Volatile: "Volatile", Explicit: "Explicit", SW: "SW", HW: "HW"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q", m, s)
		}
	}
	if Mode(99).String() != "unknown" {
		t.Error("unknown mode string")
	}
}

func TestScalarRoundTripAllModes(t *testing.T) {
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			c := MustNew(mode)
			p := c.Pmalloc(64)
			c.StoreWord(tsStore, p, 8, 0xdeadbeef)
			if got := c.LoadWord(tsLoad, p, 8); got != 0xdeadbeef {
				t.Errorf("LoadWord = %#x", got)
			}
		})
	}
}

func TestPointerRoundTripAllModes(t *testing.T) {
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			c := MustNew(mode)
			a := c.Pmalloc(64)
			b := c.Pmalloc(64)
			c.StoreWord(tsStore, b, 0, 777)
			c.StorePtr(tsStore, a, 8, b)
			got := c.LoadPtr(tsLoad, a, 8)
			if !c.PtrEq(tsCmp, got, b) {
				t.Fatalf("loaded pointer %s != stored %s", got, b)
			}
			if v := c.LoadWord(tsLoad, got, 0); v != 777 {
				t.Errorf("deref through loaded pointer = %d", v)
			}
		})
	}
}

// TestStoredRepresentation verifies the in-memory pointer format per mode:
// the transparent schemes and the explicit model keep relative addresses in
// NVM, the volatile build keeps raw virtual addresses.
func TestStoredRepresentation(t *testing.T) {
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			c := MustNew(mode)
			a := c.Pmalloc(64)
			b := c.Pmalloc(64)
			c.StorePtr(tsStore, a, 0, b)

			// Read the raw stored word.
			var aVA uint64
			if a.IsRelative() {
				var err error
				aVA, err = c.Reg.RA2VA(a)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				aVA = a.VA()
			}
			raw, err := c.AS.Load64(aVA)
			if err != nil {
				t.Fatal(err)
			}
			stored := core.Ptr(raw)
			switch mode {
			case Volatile:
				if stored.IsRelative() {
					t.Errorf("volatile build stored relative form %s", stored)
				}
			default:
				if !stored.IsRelative() {
					t.Errorf("%s stored non-relocatable form %s in NVM", mode, stored)
				}
				if rel := c.toPoolRef(b); stored != rel {
					t.Errorf("stored %s, want %s", stored, rel)
				}
			}
		})
	}
}

func TestLocalFormAfterLoad(t *testing.T) {
	for _, mode := range Modes {
		c := MustNew(mode)
		a := c.Pmalloc(64)
		b := c.Pmalloc(64)
		c.StorePtr(tsStore, a, 0, b)
		got := c.LoadPtr(tsLoad, a, 0)
		switch mode {
		case HW, SW, Volatile:
			if got.IsRelative() {
				t.Errorf("%s: local holds relative form %s; want converted virtual", mode, got)
			}
		case Explicit:
			if !got.IsRelative() {
				t.Errorf("Explicit: local holds %s; want object ID (relative)", got)
			}
		}
	}
}

func TestModeCounters(t *testing.T) {
	run := func(mode Mode) *Context {
		c := MustNew(mode)
		a := c.Pmalloc(64)
		b := c.Pmalloc(64)
		c.StorePtr(tsStore, a, 0, b)
		p := c.LoadPtr(tsLoad, a, 0)
		_ = c.LoadWord(tsLoad, p, 8)
		return c
	}

	hw := run(HW)
	if hw.Stats.StorePOps != 1 {
		t.Errorf("HW StorePOps = %d, want 1", hw.Stats.StorePOps)
	}
	if hw.Stats.EATranslations == 0 {
		t.Error("HW performed no EA translations")
	}
	if hw.Stats.SWCheckBranches != 0 {
		t.Errorf("HW executed %d SW checks", hw.Stats.SWCheckBranches)
	}
	if hw.MMU.POLB.Stats.Accesses() == 0 {
		t.Error("HW never touched the POLB")
	}
	if hw.MMU.VALB.Stats.Accesses() != 1 {
		t.Errorf("HW VALB accesses = %d, want 1 (one storeP of a virtual-form local into NVM)", hw.MMU.VALB.Stats.Accesses())
	}

	sw := run(SW)
	if sw.Stats.SWCheckBranches == 0 {
		t.Error("SW executed no dynamic checks")
	}
	if sw.Stats.StorePOps != 0 {
		t.Error("SW executed storeP")
	}
	if sw.Env.Stats.AbsToRel == 0 {
		t.Error("SW StorePtr of virtual-form local into NVM performed no abs->rel conversion")
	}

	ex := run(Explicit)
	if ex.Stats.ExplicitAccesses == 0 {
		t.Error("Explicit performed no API accesses")
	}
	if ex.Stats.SWCheckBranches != 0 || ex.Stats.StorePOps != 0 {
		t.Error("Explicit executed transparent-scheme machinery")
	}

	vo := run(Volatile)
	if vo.Stats.EATranslations+vo.Stats.SWCheckBranches+vo.Stats.ExplicitAccesses != 0 {
		t.Errorf("Volatile paid NVM costs: %+v", vo.Stats)
	}
	if vo.CPU.Stats.NVMAccesses != 0 {
		t.Error("Volatile touched NVM")
	}
}

func TestHWStorePtrFromVirtualLocalUsesVALB(t *testing.T) {
	c := MustNew(HW)
	a := c.Pmalloc(64)
	b := c.Pmalloc(64)
	// a and b are virtual-form locals (converted at allocation). Storing b
	// into NVM must convert it back via the VALB.
	c.StorePtr(tsStore, a, 0, b)
	if c.MMU.VALB.Stats.Accesses() == 0 {
		t.Error("storeP of virtual-form source did not access the VALB")
	}
	if c.StoreP.Stats.RsTranslations != 1 {
		t.Errorf("RsTranslations = %d", c.StoreP.Stats.RsTranslations)
	}
}

func TestSetRootAndRoot(t *testing.T) {
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) {
			c := MustNew(mode)
			obj := c.Pmalloc(64)
			c.StoreWord(tsStore, obj, 0, 4242)
			c.SetRoot(tsRoot, obj)
			got := c.Root(tsRoot)
			if !c.PtrEq(tsCmp, got, obj) {
				t.Fatalf("Root = %s, want %s", got, obj)
			}
			if v := c.LoadWord(tsLoad, got, 0); v != 4242 {
				t.Errorf("deref of root = %d", v)
			}
			if mode != Volatile && !c.Pool.Root().IsRelative() {
				t.Errorf("%s stored root in non-relocatable form %s", mode, c.Pool.Root())
			}
		})
	}
}

func TestIsNullNoChecks(t *testing.T) {
	c := MustNew(SW)
	if !c.IsNull(core.Null) || c.IsNull(c.Pmalloc(8)) {
		t.Error("IsNull wrong")
	}
	if c.Stats.SWCheckBranches != 0 {
		t.Errorf("null test executed %d dynamic checks; the null representation is form-independent", c.Stats.SWCheckBranches)
	}
}

func TestInferredSitesSkipChecks(t *testing.T) {
	inferred := NewSite("inferred.load", true)
	c := MustNew(SW)
	p := c.Pmalloc(64)
	c.StoreWord(inferred, p, 0, 5)
	_ = c.LoadWord(inferred, p, 0)
	if c.Stats.SWCheckBranches != 0 {
		t.Errorf("inferred sites executed %d checks", c.Stats.SWCheckBranches)
	}
	// The same ops at a non-inferred site do check.
	_ = c.LoadWord(tsLoad, p, 0)
	if c.Stats.SWCheckBranches == 0 {
		t.Error("non-inferred site executed no check")
	}
}

func TestMallocAndFree(t *testing.T) {
	c := MustNew(HW)
	p := c.Malloc(128)
	if p.IsRelative() || core.DetermineX(p) != core.DRAM {
		t.Fatalf("Malloc returned %s; want DRAM virtual", p)
	}
	c.StoreWord(tsStore, p, 0, 9)
	if c.LoadWord(tsLoad, p, 0) != 9 {
		t.Error("volatile round trip failed")
	}
	c.FreeVolatile(p, 128)
	q := c.Malloc(128)
	if q != p {
		t.Errorf("freed volatile block not reused: %s vs %s", q, p)
	}
}

func TestPfreeAllModes(t *testing.T) {
	for _, mode := range Modes {
		c := MustNew(mode)
		p := c.Pmalloc(64)
		c.Pfree(p, 64)
		if c.Stats.Frees != 1 {
			t.Errorf("%s: Frees = %d", mode, c.Stats.Frees)
		}
	}
}

// TestSemanticEquivalence builds the same linked list under all four modes
// and checks the traversal yields identical sums — the soundness property
// of Section VII-B at the runtime level.
func TestSemanticEquivalence(t *testing.T) {
	sum := func(mode Mode) uint64 {
		c := MustNew(mode)
		var head core.Ptr = core.Null
		for i := uint64(1); i <= 100; i++ {
			n := c.Pmalloc(16)
			c.StoreWord(tsStore, n, 0, i*i)
			c.StorePtr(tsStore, n, 8, head)
			head = n
		}
		c.SetRoot(tsRoot, head)
		total := uint64(0)
		for p := c.Root(tsRoot); !c.IsNull(p); p = c.LoadPtr(tsLoad, p, 8) {
			total += c.LoadWord(tsLoad, p, 0)
		}
		return total
	}
	want := sum(Volatile)
	for _, mode := range []Mode{Explicit, SW, HW} {
		if got := sum(mode); got != want {
			t.Errorf("%s traversal sum = %d, want %d", mode, got, want)
		}
	}
}

// TestTimingOrdering checks the qualitative performance relationships the
// paper reports, on a pointer-chasing microkernel: Volatile is fastest; HW
// is close to Volatile; Explicit costs more than HW; SW costs the most.
func TestTimingOrdering(t *testing.T) {
	cycles := map[Mode]uint64{}
	for _, mode := range Modes {
		c := MustNew(mode)
		var head core.Ptr = core.Null
		for i := uint64(0); i < 2000; i++ {
			n := c.Pmalloc(32)
			c.StoreWord(tsStore, n, 0, i)
			c.StorePtr(tsStore, n, 8, head)
			head = n
		}
		c.SetRoot(tsRoot, head)
		c.CPU.Stats.Cycles = 0
		for rep := 0; rep < 5; rep++ {
			for p := c.Root(tsRoot); !c.IsNull(p); p = c.LoadPtr(tsLoad, p, 8) {
				_ = c.LoadWord(tsLoad, p, 0)
			}
		}
		cycles[mode] = c.CPU.Stats.Cycles
	}
	if !(cycles[Volatile] <= cycles[HW]) {
		t.Errorf("HW (%d) beat Volatile (%d)", cycles[HW], cycles[Volatile])
	}
	if !(cycles[HW] < cycles[Explicit]) {
		t.Errorf("Explicit (%d) not slower than HW (%d)", cycles[Explicit], cycles[HW])
	}
	if !(cycles[Explicit] < cycles[SW]) {
		t.Errorf("SW (%d) not slower than Explicit (%d)", cycles[SW], cycles[Explicit])
	}
	// HW should stay within a modest factor of Volatile.
	if float64(cycles[HW]) > 1.5*float64(cycles[Volatile]) {
		t.Errorf("HW overhead = %.2fx over Volatile; paper reports <= ~1.12x",
			float64(cycles[HW])/float64(cycles[Volatile]))
	}
}
