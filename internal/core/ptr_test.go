package core

import (
	"testing"
	"testing/quick"
)

func TestPtrEncodingRoundTrip(t *testing.T) {
	f := func(pool uint32, off uint32) bool {
		pool &= MaxPoolID
		p := MakeRelative(pool, off)
		return p.IsRelative() && p.PoolID() == pool && p.Offset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVAEncoding(t *testing.T) {
	f := func(va uint64) bool {
		va &= VAMask
		p := FromVA(va)
		return !p.IsRelative() && p.VA() == va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNullIsSharedAcrossForms(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null.IsNull() = false")
	}
	if FromVA(0) != Null {
		t.Error("FromVA(0) != Null")
	}
	if Null.IsRelative() {
		t.Error("Null classified as relative")
	}
}

func TestDetermineY(t *testing.T) {
	cases := []struct {
		p    Ptr
		want Form
	}{
		{FromVA(0x1000), Virtual},
		{FromVA(NVMBit | 0x1000), Virtual},
		{MakeRelative(1, 0), Relative},
		{MakeRelative(MaxPoolID, 0xffffffff), Relative},
		{Null, Virtual},
	}
	for _, c := range cases {
		if got := DetermineY(c.p); got != c.want {
			t.Errorf("DetermineY(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDetermineX(t *testing.T) {
	cases := []struct {
		p    Ptr
		want Space
	}{
		{FromVA(0x1000), DRAM},         // DRAM virtual address
		{FromVA(NVMBit | 0x1000), NVM}, // NVM virtual address: bit 47
		{MakeRelative(3, 16), NVM},     // relative is by construction NVM
		{FromVA(NVMBit - 1), DRAM},     // top of DRAM half
		{FromVA(NVMBit), NVM},          // bottom of NVM half
		{MakeRelative(0, 0), NVM},      // tag alone forces NVM
	}
	for _, c := range cases {
		if got := DetermineX(c.p); got != c.want {
			t.Errorf("DetermineX(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestWithOffset(t *testing.T) {
	p := MakeRelative(7, 0x100)
	q := p.WithOffset(0x200)
	if q.PoolID() != 7 || q.Offset() != 0x200 {
		t.Errorf("WithOffset = %s", q)
	}
}

func TestStringForms(t *testing.T) {
	if s := Null.String(); s != "null" {
		t.Errorf("Null.String() = %q", s)
	}
	if s := MakeRelative(1, 2).String(); s == "" || s == "null" {
		t.Errorf("relative String() = %q", s)
	}
	if s := FromVA(NVMBit | 8).String(); s == "" {
		t.Errorf("nvm va String() = %q", s)
	}
	if s := FromVA(8).String(); s == "" {
		t.Errorf("dram va String() = %q", s)
	}
}

func TestFormAndSpaceString(t *testing.T) {
	if Virtual.String() != "virtual" || Relative.String() != "relative" {
		t.Error("Form.String mismatch")
	}
	if DRAM.String() != "DRAM" || NVM.String() != "NVM" {
		t.Error("Space.String mismatch")
	}
}

// Property: the tag bit never leaks into pool ID or offset.
func TestQuickFieldIsolation(t *testing.T) {
	f := func(pool, off uint32) bool {
		pool &= MaxPoolID
		p := MakeRelative(pool, off)
		// Mutating the offset must not change the pool and vice versa.
		q := p.WithOffset(off ^ 0xffffffff)
		return q.PoolID() == pool && q.IsRelative()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
