package core

import "fmt"

// Translator converts between the two reference forms. It is implemented by
// the pool layer (software translation) and by the hardware model's
// POLB/VALB structures.
type Translator interface {
	// RA2VA translates a relative-form reference to its current virtual
	// address. It fails if the pool is unknown or detached.
	RA2VA(p Ptr) (uint64, error)
	// VA2RA translates a virtual address into a relative-form reference if
	// the address lies inside an attached pool; ok is false otherwise.
	VA2RA(va uint64) (rel Ptr, ok bool)
}

// Stats counts the dynamic events that the evaluation's Table V reports:
// runtime format checks and conversions in each direction.
type Stats struct {
	// DynamicChecks counts executions of determineX/determineY dispatches.
	DynamicChecks uint64
	// AbsToRel counts virtual→relative (va2ra) conversions performed.
	AbsToRel uint64
	// RelToAbs counts relative→virtual (ra2va) conversions performed.
	RelToAbs uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.DynamicChecks += other.DynamicChecks
	s.AbsToRel += other.AbsToRel
	s.RelToAbs += other.RelToAbs
}

// Conversions returns the total conversions in both directions.
func (s Stats) Conversions() uint64 { return s.AbsToRel + s.RelToAbs }

// Env evaluates pointer operations under user-transparent persistent
// reference semantics (the paper's Figure 4 table). It performs the runtime
// checks, invokes the Translator where a conversion is required, and counts
// both in Stats.
type Env struct {
	Tr Translator
	// Strict controls the behaviour when a pointer whose virtual address is
	// in no attached pool is stored into an NVM location. The paper's
	// Table I lists this as a storeP fault; with Strict false the virtual
	// address is stored unchanged (it is a volatile reference that
	// legitimately does not survive remapping).
	Strict bool
	Stats  Stats
}

// NewEnv returns an Env using tr for conversions.
func NewEnv(tr Translator) *Env { return &Env{Tr: tr} }

// check records one dynamic format check.
func (e *Env) check() { e.Stats.DynamicChecks++ }

// ToVA resolves a reference to the virtual address it currently designates:
// the *pxv / *pxr rows of the semantic table. A virtual-form reference is
// returned as is; a relative-form one is translated (ra2va).
func (e *Env) ToVA(p Ptr) (uint64, error) {
	e.check()
	if !p.IsRelative() {
		return p.VA(), nil
	}
	e.Stats.RelToAbs++
	return e.Tr.RA2VA(p)
}

// CastToInt implements the (I)p rows: a virtual-form pointer converts to its
// address value; a relative-form pointer is first translated to a virtual
// address so that integer arithmetic on the result behaves as C11 requires.
func (e *Env) CastToInt(p Ptr) (uint64, error) {
	if p.IsNull() {
		e.check()
		return 0, nil
	}
	return e.ToVA(p)
}

// Bool implements the logical and conditional rows ((I)p used as a truth
// value). Null is represented as zero in both forms, so no conversion is
// needed; only the format check is counted.
func (e *Env) Bool(p Ptr) bool {
	e.check()
	return !p.IsNull()
}

// PointerAssignment implements the paper's pointerAssignment runtime
// routine and the four pny/pdy = pxv/pxr assignment rows: it computes the
// representation that must be stored when pointer value p is written to the
// location named by to.
//
// If the destination is on NVM the stored form must be relative so the
// reference survives pool remapping; if the destination is on DRAM the
// stored form must be virtual so legacy loads use it directly.
func (e *Env) PointerAssignment(to Ptr, p Ptr) (Ptr, error) {
	e.check() // determineX(to)
	if p.IsNull() {
		return Null, nil
	}
	if DetermineX(to) == NVM {
		e.check() // determineY(p)
		if p.IsRelative() {
			return p, nil
		}
		if rel, ok := e.Tr.VA2RA(p.VA()); ok {
			e.Stats.AbsToRel++
			return rel, nil
		}
		if e.Strict && uint64(p)&NVMBit != 0 {
			return Null, fmt.Errorf("%w: %s", ErrNotInPool, p)
		}
		// A DRAM (volatile) pointer stored into NVM keeps its virtual
		// form: it cannot be made relocatable and C permits storing it.
		return p, nil
	}
	e.check() // determineY(p)
	if p.IsRelative() {
		va, err := e.Tr.RA2VA(p)
		if err != nil {
			return Null, err
		}
		e.Stats.RelToAbs++
		return FromVA(va), nil
	}
	return p, nil
}

// AddInt implements the additive rows pxy op i: the result keeps the
// representation of the operand ($$ .type = pxy.type), so relative pointers
// advance by offset arithmetic with no conversion.
func (e *Env) AddInt(p Ptr, i int64, elemSize int64) Ptr {
	e.check()
	delta := i * elemSize
	if p.IsRelative() {
		return p.WithOffset(uint32(int64(p.Offset()) + delta))
	}
	return FromVA(uint64(int64(p.VA()) + delta))
}

// SubInt implements pxy -= i / pxy - i.
func (e *Env) SubInt(p Ptr, i int64, elemSize int64) Ptr {
	return e.AddInt(p, -i, elemSize)
}

// Inc implements ++p / p++ over elements of the given size.
func (e *Env) Inc(p Ptr, elemSize int64) Ptr { return e.AddInt(p, 1, elemSize) }

// Dec implements --p / p--.
func (e *Env) Dec(p Ptr, elemSize int64) Ptr { return e.AddInt(p, -1, elemSize) }

// Diff implements the four pointer-difference rows. Two relative pointers
// in the same pool subtract directly (pxr.val - pxr'.val); any mixed or
// cross-pool case converts the relative operand(s) to virtual addresses
// first. The result is an element count.
func (e *Env) Diff(p, q Ptr, elemSize int64) (int64, error) {
	e.check()
	e.check()
	if p.IsRelative() && q.IsRelative() && p.PoolID() == q.PoolID() {
		return (int64(p.Offset()) - int64(q.Offset())) / elemSize, nil
	}
	pv, err := e.operandVA(p)
	if err != nil {
		return 0, err
	}
	qv, err := e.operandVA(q)
	if err != nil {
		return 0, err
	}
	return (int64(pv) - int64(qv)) / elemSize, nil
}

// operandVA converts one comparison/difference operand without recounting
// the dynamic check (the caller accounts per-operand checks itself).
func (e *Env) operandVA(p Ptr) (uint64, error) {
	if !p.IsRelative() {
		return p.VA(), nil
	}
	e.Stats.RelToAbs++
	return e.Tr.RA2VA(p)
}

// Equal implements the equality rows (==, !=). Comparing two relative-form
// words needs no conversion: they are equal exactly when pool and offset
// match, and references to distinct objects can never collide. Mixed-form
// comparisons convert the relative operand.
func (e *Env) Equal(p, q Ptr) (bool, error) {
	e.check()
	e.check()
	if p.IsNull() || q.IsNull() {
		return p == q, nil
	}
	if p.IsRelative() == q.IsRelative() {
		return p == q, nil
	}
	pv, err := e.operandVA(p)
	if err != nil {
		return false, err
	}
	qv, err := e.operandVA(q)
	if err != nil {
		return false, err
	}
	return pv == qv, nil
}

// Less implements the relational rows (<, >, <=, >= reduce to Less). Two
// relative pointers in the same pool order by offset; all other cases
// convert to virtual addresses.
func (e *Env) Less(p, q Ptr) (bool, error) {
	e.check()
	e.check()
	if p.IsRelative() && q.IsRelative() && p.PoolID() == q.PoolID() {
		return p.Offset() < q.Offset(), nil
	}
	pv, err := e.operandVA(p)
	if err != nil {
		return false, err
	}
	qv, err := e.operandVA(q)
	if err != nil {
		return false, err
	}
	return pv < qv, nil
}

// Index implements p[i]: the address of the i-th element.
func (e *Env) Index(p Ptr, i int64, elemSize int64) Ptr {
	return e.AddInt(p, i, elemSize)
}

// FieldAddr implements p->identifier: the address of a member at the given
// byte offset within the pointed-to object.
func (e *Env) FieldAddr(p Ptr, byteOffset int64) Ptr {
	return e.AddInt(p, byteOffset, 1)
}
