// Package core implements the paper's primary contribution:
// user-transparent persistent references.
//
// A reference is a single 64-bit word (Ptr) whose most significant bit
// selects its interpretation:
//
//	bit 63 == 0: the low 48 bits are a conventional virtual address. Within
//	             the virtual address space, bit 47 == 0 addresses the DRAM
//	             half and bit 47 == 1 addresses the NVM half.
//	bit 63 == 1: a relative address: a 31-bit pool ID in bits 62..32 and a
//	             32-bit intra-pool offset in bits 31..0.
//
// Because both volatile and persistent references fit in one ordinary
// pointer-sized word, legacy code can pass them around without type changes;
// lightweight runtime checks (DetermineX, DetermineY) discern the two forms
// wherever a conversion is needed. Env implements the complete semantic
// table for ISO C11 pointer operations given in Figure 4 of the paper.
package core

import (
	"errors"
	"fmt"
)

// Ptr is a user-transparent persistent reference: one 64-bit word holding
// either a virtual address or a relative (pool ID, offset) address.
type Ptr uint64

// Format constants for the reference word.
const (
	// TagBit marks a relative (persistent) pointer.
	TagBit = uint64(1) << 63
	// NVMBit selects the NVM half of the virtual address space.
	NVMBit = uint64(1) << 47
	// VAMask extracts the 48-bit virtual address from a virtual-form word.
	VAMask = (uint64(1) << 48) - 1
	// OffsetMask extracts the 32-bit intra-pool offset of a relative word.
	OffsetMask = (uint64(1) << 32) - 1
	// MaxPoolID is the largest encodable pool ID (31 bits).
	MaxPoolID = (uint32(1) << 31) - 1
)

// Null is the null reference. Its representation is all zero in both
// interpretations, so null checks need no format dispatch.
const Null = Ptr(0)

// Form is the representation of a reference word (the paper's "y" property:
// v for virtual address, r for relative address).
type Form uint8

// Form values.
const (
	Virtual  Form = iota // bit 63 == 0: conventional virtual address
	Relative             // bit 63 == 1: (pool ID, offset) relative address
)

func (f Form) String() string {
	if f == Relative {
		return "relative"
	}
	return "virtual"
}

// Space is the memory a location lives in (the paper's "x" property:
// n for NVM, d for DRAM).
type Space uint8

// Space values.
const (
	DRAM Space = iota
	NVM
)

func (s Space) String() string {
	if s == NVM {
		return "NVM"
	}
	return "DRAM"
}

// Errors reported by reference operations.
var (
	// ErrDetachedPool is returned when a relative address names a pool that
	// is not currently attached (the paper's Figure 10 fault case).
	ErrDetachedPool = errors.New("core: relative address names a detached pool")
	// ErrUnknownPool is returned when a relative address names a pool that
	// does not exist.
	ErrUnknownPool = errors.New("core: relative address names an unknown pool")
	// ErrNotInPool is returned by strict va2ra when a virtual address lies
	// in the NVM half but inside no attached pool.
	ErrNotInPool = errors.New("core: NVM virtual address not inside any attached pool")
)

// FromVA builds a virtual-form reference from a 48-bit virtual address.
func FromVA(va uint64) Ptr { return Ptr(va & VAMask) }

// MakeRelative builds a relative-form reference from a pool ID and offset.
// Pool IDs wider than 31 bits are truncated by the format, so callers must
// respect MaxPoolID.
func MakeRelative(pool uint32, offset uint32) Ptr {
	return Ptr(TagBit | uint64(pool&MaxPoolID)<<32 | uint64(offset))
}

// IsRelative reports whether p is in relative form (bit 63 set).
func (p Ptr) IsRelative() bool { return uint64(p)&TagBit != 0 }

// IsNull reports whether p is the null reference.
func (p Ptr) IsNull() bool { return p == Null }

// VA returns the virtual address of a virtual-form reference. The result is
// meaningless if p is relative; callers dispatch on Form first.
func (p Ptr) VA() uint64 { return uint64(p) & VAMask }

// PoolID returns the pool ID of a relative-form reference.
func (p Ptr) PoolID() uint32 { return uint32(uint64(p)>>32) & MaxPoolID }

// Offset returns the intra-pool offset of a relative-form reference.
func (p Ptr) Offset() uint32 { return uint32(uint64(p) & OffsetMask) }

// WithOffset returns a relative reference in the same pool at the given
// offset.
func (p Ptr) WithOffset(off uint32) Ptr { return MakeRelative(p.PoolID(), off) }

// String renders the reference for diagnostics.
func (p Ptr) String() string {
	if p.IsNull() {
		return "null"
	}
	if p.IsRelative() {
		return fmt.Sprintf("rel(pool=%d, off=%#x)", p.PoolID(), p.Offset())
	}
	if uint64(p)&NVMBit != 0 {
		return fmt.Sprintf("va(nvm, %#x)", p.VA())
	}
	return fmt.Sprintf("va(dram, %#x)", p.VA())
}

// DetermineY is the paper's determineY runtime check: it classifies the
// representation of a reference word by its bit 63.
func DetermineY(p Ptr) Form {
	if p.IsRelative() {
		return Relative
	}
	return Virtual
}

// DetermineX is the paper's determineX runtime check: it classifies where
// the location named by addr resides. A relative address is by construction
// on NVM; a virtual address is on NVM exactly when its bit 47 is set.
func DetermineX(addr Ptr) Space {
	if addr.IsRelative() {
		return NVM
	}
	if uint64(addr)&NVMBit != 0 {
		return NVM
	}
	return DRAM
}
