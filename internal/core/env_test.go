package core

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// fakeTranslator maps pool 1 to base 0x8000_0010_0000 and pool 2 to
// 0x8000_0020_0000, each 1 MiB. Pool 9 is "detached".
type fakeTranslator struct {
	ra2vaCalls int
	va2raCalls int
}

const (
	p1Base = uint64(NVMBit | 0x10_0000)
	p2Base = uint64(NVMBit | 0x20_0000)
	pSize  = uint64(1 << 20)
)

func (f *fakeTranslator) RA2VA(p Ptr) (uint64, error) {
	f.ra2vaCalls++
	switch p.PoolID() {
	case 1:
		return p1Base + uint64(p.Offset()), nil
	case 2:
		return p2Base + uint64(p.Offset()), nil
	case 9:
		return 0, ErrDetachedPool
	}
	return 0, ErrUnknownPool
}

func (f *fakeTranslator) VA2RA(va uint64) (Ptr, bool) {
	f.va2raCalls++
	if va >= p1Base && va < p1Base+pSize {
		return MakeRelative(1, uint32(va-p1Base)), true
	}
	if va >= p2Base && va < p2Base+pSize {
		return MakeRelative(2, uint32(va-p2Base)), true
	}
	return Null, false
}

func newTestEnv() (*Env, *fakeTranslator) {
	tr := &fakeTranslator{}
	return NewEnv(tr), tr
}

func TestToVA(t *testing.T) {
	e, _ := newTestEnv()
	va, err := e.ToVA(FromVA(0x1234))
	if err != nil || va != 0x1234 {
		t.Errorf("ToVA(virtual) = %#x, %v", va, err)
	}
	va, err = e.ToVA(MakeRelative(1, 0x40))
	if err != nil || va != p1Base+0x40 {
		t.Errorf("ToVA(relative) = %#x, %v", va, err)
	}
	if e.Stats.RelToAbs != 1 {
		t.Errorf("RelToAbs = %d, want 1", e.Stats.RelToAbs)
	}
	if e.Stats.DynamicChecks != 2 {
		t.Errorf("DynamicChecks = %d, want 2", e.Stats.DynamicChecks)
	}
}

func TestToVADetachedPoolFaults(t *testing.T) {
	e, _ := newTestEnv()
	if _, err := e.ToVA(MakeRelative(9, 0)); !errors.Is(err, ErrDetachedPool) {
		t.Errorf("detached pool: err = %v", err)
	}
	if _, err := e.ToVA(MakeRelative(5, 0)); !errors.Is(err, ErrUnknownPool) {
		t.Errorf("unknown pool: err = %v", err)
	}
}

// TestPointerAssignmentTable exercises the four pny/pdy = pxv/pxr rows of
// the paper's Figure 4 assignment semantics.
func TestPointerAssignmentTable(t *testing.T) {
	nvmLoc := FromVA(NVMBit | 0x100)    // destination on NVM (virtual form)
	nvmLocRel := MakeRelative(1, 0x100) // destination on NVM (relative form)
	dramLoc := FromVA(0x100)            // destination on DRAM
	persistVA := FromVA(p1Base + 0x40)  // pxv pointing into pool 1
	persistRel := MakeRelative(1, 0x40) // pxr
	volatileVA := FromVA(0x9000)        // DRAM pointer

	t.Run("pny = pxv converts to relative", func(t *testing.T) {
		e, _ := newTestEnv()
		got, err := e.PointerAssignment(nvmLoc, persistVA)
		if err != nil {
			t.Fatal(err)
		}
		if got != persistRel {
			t.Errorf("stored %s, want %s", got, persistRel)
		}
		if e.Stats.AbsToRel != 1 {
			t.Errorf("AbsToRel = %d", e.Stats.AbsToRel)
		}
	})
	t.Run("pny = pxr stores unchanged", func(t *testing.T) {
		e, _ := newTestEnv()
		got, err := e.PointerAssignment(nvmLocRel, persistRel)
		if err != nil {
			t.Fatal(err)
		}
		if got != persistRel {
			t.Errorf("stored %s, want %s", got, persistRel)
		}
		if e.Stats.AbsToRel+e.Stats.RelToAbs != 0 {
			t.Error("conversion performed where none needed")
		}
	})
	t.Run("pdy = pxv stores unchanged", func(t *testing.T) {
		e, _ := newTestEnv()
		got, err := e.PointerAssignment(dramLoc, persistVA)
		if err != nil {
			t.Fatal(err)
		}
		if got != persistVA {
			t.Errorf("stored %s, want %s", got, persistVA)
		}
	})
	t.Run("pdy = pxr converts to virtual", func(t *testing.T) {
		e, _ := newTestEnv()
		got, err := e.PointerAssignment(dramLoc, persistRel)
		if err != nil {
			t.Fatal(err)
		}
		if got != persistVA {
			t.Errorf("stored %s, want %s", got, persistVA)
		}
		if e.Stats.RelToAbs != 1 {
			t.Errorf("RelToAbs = %d", e.Stats.RelToAbs)
		}
	})
	t.Run("p = NULL needs no conversion", func(t *testing.T) {
		e, _ := newTestEnv()
		got, err := e.PointerAssignment(nvmLoc, Null)
		if err != nil || got != Null {
			t.Errorf("null store = %s, %v", got, err)
		}
	})
	t.Run("volatile pointer into NVM keeps virtual form", func(t *testing.T) {
		e, _ := newTestEnv()
		got, err := e.PointerAssignment(nvmLoc, volatileVA)
		if err != nil {
			t.Fatal(err)
		}
		if got != volatileVA {
			t.Errorf("stored %s, want %s", got, volatileVA)
		}
	})
	t.Run("strict mode faults on unconvertible NVM address", func(t *testing.T) {
		e, _ := newTestEnv()
		e.Strict = true
		stray := FromVA(NVMBit | 0xf000_0000) // NVM half but in no pool
		if _, err := e.PointerAssignment(nvmLoc, stray); !errors.Is(err, ErrNotInPool) {
			t.Errorf("strict stray store: err = %v", err)
		}
	})
}

func TestAddIntPreservesForm(t *testing.T) {
	e, _ := newTestEnv()
	r := e.AddInt(MakeRelative(1, 0x100), 3, 8)
	if !r.IsRelative() || r.Offset() != 0x118 || r.PoolID() != 1 {
		t.Errorf("relative AddInt = %s", r)
	}
	v := e.AddInt(FromVA(0x1000), 2, 16)
	if v.IsRelative() || v.VA() != 0x1020 {
		t.Errorf("virtual AddInt = %s", v)
	}
	if e.Stats.RelToAbs+e.Stats.AbsToRel != 0 {
		t.Error("AddInt converted a pointer")
	}
	back := e.SubInt(r, 3, 8)
	if back != MakeRelative(1, 0x100) {
		t.Errorf("SubInt = %s", back)
	}
}

func TestIncDec(t *testing.T) {
	e, _ := newTestEnv()
	p := MakeRelative(2, 64)
	if q := e.Inc(p, 8); q.Offset() != 72 {
		t.Errorf("Inc = %s", q)
	}
	if q := e.Dec(p, 8); q.Offset() != 56 {
		t.Errorf("Dec = %s", q)
	}
}

func TestDiff(t *testing.T) {
	e, tr := newTestEnv()
	a := MakeRelative(1, 80)
	b := MakeRelative(1, 16)
	d, err := e.Diff(a, b, 8)
	if err != nil || d != 8 {
		t.Errorf("same-pool Diff = %d, %v; want 8", d, err)
	}
	if tr.ra2vaCalls != 0 {
		t.Errorf("same-pool Diff converted %d times", tr.ra2vaCalls)
	}
	// Mixed forms convert.
	d, err = e.Diff(FromVA(p1Base+80), b, 8)
	if err != nil || d != 8 {
		t.Errorf("mixed Diff = %d, %v; want 8", d, err)
	}
	if e.Stats.RelToAbs == 0 {
		t.Error("mixed Diff performed no conversion")
	}
}

func TestEqual(t *testing.T) {
	e, _ := newTestEnv()
	rel := MakeRelative(1, 0x40)
	va := FromVA(p1Base + 0x40)
	for _, c := range []struct {
		p, q Ptr
		want bool
	}{
		{rel, rel, true},
		{rel, MakeRelative(1, 0x48), false},
		{rel, MakeRelative(2, 0x40), false},
		{rel, va, true}, // mixed forms, same object
		{va, rel, true}, // symmetric
		{va, va, true},
		{rel, Null, false},
		{Null, Null, true},
	} {
		got, err := e.Equal(c.p, c.q)
		if err != nil {
			t.Fatalf("Equal(%s, %s): %v", c.p, c.q, err)
		}
		if got != c.want {
			t.Errorf("Equal(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestLess(t *testing.T) {
	e, _ := newTestEnv()
	// Same pool: offset order, no conversion.
	got, err := e.Less(MakeRelative(1, 16), MakeRelative(1, 32))
	if err != nil || !got {
		t.Errorf("same-pool Less = %v, %v", got, err)
	}
	// Mixed forms: address order.
	got, err = e.Less(MakeRelative(1, 16), FromVA(p1Base+32))
	if err != nil || !got {
		t.Errorf("mixed Less = %v, %v", got, err)
	}
	// Cross pool orders by mapped base.
	got, err = e.Less(MakeRelative(1, 0), MakeRelative(2, 0))
	if err != nil || !got {
		t.Errorf("cross-pool Less = %v, %v", got, err)
	}
}

func TestCastToIntAndBool(t *testing.T) {
	e, _ := newTestEnv()
	v, err := e.CastToInt(MakeRelative(1, 8))
	if err != nil || v != p1Base+8 {
		t.Errorf("CastToInt(relative) = %#x, %v", v, err)
	}
	v, err = e.CastToInt(FromVA(0x1234))
	if err != nil || v != 0x1234 {
		t.Errorf("CastToInt(virtual) = %#x, %v", v, err)
	}
	v, err = e.CastToInt(Null)
	if err != nil || v != 0 {
		t.Errorf("CastToInt(null) = %#x, %v", v, err)
	}
	if e.Bool(Null) {
		t.Error("Bool(Null) = true")
	}
	if !e.Bool(MakeRelative(1, 0)) {
		t.Error("Bool(relative to offset 0) = false; offset-0 references are non-null")
	}
}

func TestIndexAndFieldAddr(t *testing.T) {
	e, _ := newTestEnv()
	base := MakeRelative(1, 0x100)
	if p := e.Index(base, 5, 24); p.Offset() != 0x100+5*24 {
		t.Errorf("Index = %s", p)
	}
	if p := e.FieldAddr(base, 16); p.Offset() != 0x110 {
		t.Errorf("FieldAddr = %s", p)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{DynamicChecks: 1, AbsToRel: 2, RelToAbs: 3}
	b := Stats{DynamicChecks: 10, AbsToRel: 20, RelToAbs: 30}
	a.Add(b)
	if a != (Stats{DynamicChecks: 11, AbsToRel: 22, RelToAbs: 33}) {
		t.Errorf("Stats.Add = %+v", a)
	}
}

// Property: pointer arithmetic on a relative pointer followed by conversion
// equals conversion followed by the same arithmetic on the virtual address
// (Figure 4's additive rows are conversion-commutative).
func TestQuickArithmeticCommutesWithTranslation(t *testing.T) {
	e, _ := newTestEnv()
	f := func(off uint16, delta int8, szSel uint8) bool {
		sz := []int64{1, 2, 4, 8, 16}[int(szSel)%5]
		p := MakeRelative(1, uint32(off)+0x1000)
		moved := e.AddInt(p, int64(delta), sz)
		va1, err1 := e.ToVA(moved)
		va0, err0 := e.ToVA(p)
		if err0 != nil || err1 != nil {
			return false
		}
		return int64(va1) == int64(va0)+int64(delta)*sz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PointerAssignment into an NVM destination always yields a value
// that survives remapping — either relative form, or a DRAM virtual address
// (which designates volatile data by definition).
func TestQuickNVMStoresAreRelocatable(t *testing.T) {
	e, _ := newTestEnv()
	dst := MakeRelative(1, 0)
	f := func(sel uint8, off uint32) bool {
		var p Ptr
		switch sel % 4 {
		case 0:
			p = MakeRelative(1+uint32(sel%2), off%uint32(pSize))
		case 1:
			p = FromVA(p1Base + uint64(off)%pSize)
		case 2:
			p = FromVA(uint64(off) & (NVMBit - 1)) // DRAM address
		case 3:
			p = Null
		}
		got, err := e.PointerAssignment(dst, p)
		if err != nil {
			return false
		}
		if got.IsNull() {
			return p.IsNull()
		}
		return got.IsRelative() || DetermineX(got) == DRAM
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal agrees with address equality for every form combination.
func TestQuickEqualMatchesAddressEquality(t *testing.T) {
	e, _ := newTestEnv()
	mk := func(sel uint8, off uint32) Ptr {
		off %= uint32(pSize)
		switch sel % 3 {
		case 0:
			return MakeRelative(1, off)
		case 1:
			return FromVA(p1Base + uint64(off))
		default:
			return MakeRelative(2, off)
		}
	}
	f := func(s1, s2 uint8, o1, o2 uint32) bool {
		p, q := mk(s1, o1), mk(s2, o2)
		got, err := e.Equal(p, q)
		if err != nil {
			return false
		}
		pv, _ := e.ToVA(p)
		qv, _ := e.ToVA(q)
		return got == (pv == qv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func ExampleEnv_PointerAssignment() {
	e := NewEnv(&fakeTranslator{})
	nvmDst := MakeRelative(1, 0x100)
	persistVA := FromVA(p1Base + 0x40)
	stored, _ := e.PointerAssignment(nvmDst, persistVA)
	fmt.Println(stored)
	// Output: rel(pool=1, off=0x40)
}
