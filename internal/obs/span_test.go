package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSpanRecorderRingOrderAndWrap(t *testing.T) {
	r := NewSpanRecorder(4, nil)
	for i := 0; i < 6; i++ {
		r.Record(Span{Trace: uint64(i + 1), Stage: "execute", Shard: 0})
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Trace != uint64(i+3) {
			t.Errorf("span %d trace = %d, want %d", i, s.Trace, i+3)
		}
		if s.Seq != uint64(i+3) {
			t.Errorf("span %d seq = %d, want %d", i, s.Seq, i+3)
		}
	}
	if r.Len() != 4 || r.Emitted() != 6 {
		t.Errorf("Len=%d Emitted=%d, want 4, 6", r.Len(), r.Emitted())
	}
	r.Reset()
	if r.Len() != 0 || r.Emitted() != 0 {
		t.Error("reset did not clear the recorder")
	}
}

func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	r.Record(Span{Stage: "execute"})
	r.RecordTimed(1, "execute", 0, "get", 2, time.Now(), time.Microsecond)
	r.SetSink(func(Span) {})
	if r.Spans() != nil || r.Len() != 0 || r.Emitted() != 0 || r.SinkPanics() != 0 {
		t.Error("nil recorder leaked state")
	}
	if !r.Epoch().IsZero() {
		t.Error("nil recorder has an epoch")
	}
	r.Reset()
}

func TestSpanRecorderFeedsStageHistograms(t *testing.T) {
	reg := NewRegistry()
	r := NewSpanRecorder(16, reg)
	for i := 0; i < 3; i++ {
		r.RecordTimed(1, "queue_wait", 0, "put", 5, time.Now(), 7*time.Microsecond)
	}
	r.RecordTimed(1, "execute", 0, "put", 5, time.Now(), 3*time.Microsecond)
	snap := reg.Snapshot()
	var sawQueue, sawExec bool
	for _, s := range snap.Series {
		if s.Type != "histogram" {
			continue
		}
		switch s.Name {
		case "trace_stage_queue_wait_us":
			sawQueue = true
			if s.Value != 3 {
				t.Errorf("queue_wait count = %d, want 3", s.Value)
			}
		case "trace_stage_execute_us":
			sawExec = true
			if s.Value != 1 {
				t.Errorf("execute count = %d, want 1", s.Value)
			}
		}
	}
	if !sawQueue || !sawExec {
		t.Fatalf("stage histograms missing (queue=%v exec=%v)", sawQueue, sawExec)
	}
}

func TestSpanRecorderSinkPanicContained(t *testing.T) {
	r := NewSpanRecorder(8, nil)
	calls := 0
	r.SetSink(func(Span) {
		calls++
		panic("sink exploded")
	})
	r.Record(Span{Stage: "execute"}) // must not propagate the panic
	if r.SinkPanics() != 1 {
		t.Fatalf("SinkPanics = %d, want 1", r.SinkPanics())
	}
	r.Record(Span{Stage: "execute"}) // sink detached: not called again
	if calls != 1 {
		t.Fatalf("panicking sink called %d times, want 1", calls)
	}
	if r.Len() != 2 {
		t.Errorf("spans lost around the panic: Len = %d, want 2", r.Len())
	}
}

// TestSpanRecorderConcurrent hammers Record, Spans, SetSink, and the
// registry-backed histograms from many goroutines. Run with -race.
func TestSpanRecorderConcurrent(t *testing.T) {
	reg := NewRegistry()
	r := NewSpanRecorder(256, reg)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				r.RecordTimed(uint64(g+1), "execute", g, "put", uint64(i), time.Now(), time.Microsecond)
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Spans()
			_ = r.Len()
			r.SetSink(func(Span) {})
			r.SetSink(nil)
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := r.Emitted(); got != 2000 {
		t.Fatalf("Emitted = %d, want 2000", got)
	}
	spans := r.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq != spans[i-1].Seq+1 {
			t.Fatal("sequence numbers not contiguous")
		}
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	spans := []Span{
		{Trace: 1, Seq: 1, Stage: "server_decode", Shard: -1, Op: "put", Key: 42, StartNS: 100, DurNS: 7},
		{Trace: 1, Seq: 2, Stage: "execute", Shard: 0, Op: "put", Key: 42, StartNS: 120, DurNS: 900},
		{Trace: 0, Seq: 3, Stage: "repl_ship", Shard: 1, Op: "replicate", StartNS: 500, DurNS: 30},
	}
	var buf bytes.Buffer
	if err := WriteSpanJSONL(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpanJSONL(strings.NewReader(buf.String() + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("round trip lost spans: %d != %d", len(got), len(spans))
	}
	for i := range spans {
		if got[i] != spans[i] {
			t.Errorf("span %d: %+v != %+v", i, got[i], spans[i])
		}
	}
	if _, err := ReadSpanJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed span line accepted")
	}
}

// TestSpanJSONLGolden pins the span wire schema: external consumers parse
// these lines, so field names and shapes may only change deliberately
// (re-bless with -update).
func TestSpanJSONLGolden(t *testing.T) {
	r := NewSpanRecorder(8, nil)
	r.Record(Span{Trace: 0xDEADBEEF, Stage: "server_decode", Shard: -1, Op: "put", Key: 42, StartNS: 1000, DurNS: 350})
	r.Record(Span{Trace: 0xDEADBEEF, Stage: "queue_wait", Shard: 1, Op: "put", Key: 42, StartNS: 1400, DurNS: 90})
	r.Record(Span{Trace: 0xDEADBEEF, Stage: "execute", Shard: 1, Op: "put", Key: 42, StartNS: 1500, DurNS: 2100})
	r.Record(Span{Trace: 0, Stage: "oplog_flush", Shard: 1, Op: "apply", StartNS: 9000, DurNS: 400})
	var buf bytes.Buffer
	if err := WriteSpanJSONL(&buf, r.Spans()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "spans.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to bless)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("span JSONL schema drifted from golden:\ngot:\n%swant:\n%s", buf.Bytes(), want)
	}
}
