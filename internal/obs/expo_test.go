package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func sampleRegistry() *Registry {
	r := NewRegistry()
	r.Counter("rt_pointer_loads_total", "pointer loads").Add(12)
	r.Gauge("storep_occupancy", "FSM entries in flight").Set(3)
	r.Histogram("walk_cycles", "VAW walk cycles", []uint64{8, 32}).Observe(30)
	r.CounterFunc("core_dynamic_checks_total", "determineX/Y checks", func() uint64 { return 99 })
	return r
}

func TestSnapshotStableAndVersioned(t *testing.T) {
	snap := sampleRegistry().Snapshot()
	if snap.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", snap.Schema, SchemaVersion)
	}
	for i := 1; i < len(snap.Series); i++ {
		if snap.Series[i-1].Name >= snap.Series[i].Name {
			t.Error("series not sorted by name")
		}
	}
	if snap.Value("rt_pointer_loads_total") != 12 {
		t.Error("counter value wrong")
	}
	if snap.Value("core_dynamic_checks_total") != 99 {
		t.Error("collector value wrong")
	}
	if snap.Value("no_such_series") != 0 {
		t.Error("missing series should read 0")
	}
	if _, ok := snap.Find("storep_occupancy"); !ok {
		t.Error("gauge missing")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || len(got.Series) != 4 {
		t.Errorf("round trip: schema=%d series=%d", got.Schema, len(got.Series))
	}
	h, ok := got.Find("walk_cycles")
	if !ok || h.Type != "histogram" || h.Sum != 30 || len(h.Buckets) != 3 {
		t.Errorf("histogram round trip broken: %+v", h)
	}
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, sampleRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP rt_pointer_loads_total pointer loads",
		"# TYPE rt_pointer_loads_total counter",
		"rt_pointer_loads_total 12",
		"# TYPE storep_occupancy gauge",
		"storep_occupancy 3",
		"# TYPE core_dynamic_checks_total counter",
		"core_dynamic_checks_total 99",
		"# TYPE walk_cycles histogram",
		`walk_cycles_bucket{le="8"} 0`,
		`walk_cycles_bucket{le="32"} 1`,
		`walk_cycles_bucket{le="+Inf"} 1`,
		"walk_cycles_sum 30",
		"walk_cycles_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHTTPHandlers(t *testing.T) {
	reg := sampleRegistry()
	mux := Mux(reg)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "rt_pointer_loads_total 12") {
		t.Errorf("/metrics: code=%d body=%q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Value("rt_pointer_loads_total") != 12 {
		t.Error("/metrics.json value wrong")
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline code = %d", rec.Code)
	}
}
