package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func muxGet(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestMuxIndexPage(t *testing.T) {
	mux := Mux(NewRegistry())
	rec := muxGet(t, mux, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET / = %d, want 200", rec.Code)
	}
	body := rec.Body.String()
	for _, link := range []string{"/metrics", "/metrics.json", "/statusz", "/healthz", "/debug/pprof/"} {
		if !strings.Contains(body, link) {
			t.Errorf("index page missing link to %s", link)
		}
	}
	// Only the exact root gets the index; other unknown paths still 404.
	if rec := muxGet(t, mux, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", rec.Code)
	}
}

func TestHealthzDefaultsAndProbes(t *testing.T) {
	// Nil health: both probes pass.
	mux := Mux(NewRegistry())
	if rec := muxGet(t, mux, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("default liveness = %d, want 200", rec.Code)
	}
	if rec := muxGet(t, mux, "/healthz?probe=ready"); rec.Code != http.StatusOK {
		t.Errorf("default readiness = %d, want 200", rec.Code)
	}

	// Live but not ready: the replica shape.
	h := &Health{
		Live:  func() bool { return true },
		Ready: func() (bool, string) { return false, "read-only replica" },
	}
	mux = MuxHealth(NewRegistry(), h)
	if rec := muxGet(t, mux, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("liveness = %d, want 200", rec.Code)
	}
	rec := muxGet(t, mux, "/healthz?probe=ready")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readiness = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "read-only replica") {
		t.Errorf("readiness reason missing: %q", rec.Body.String())
	}

	// Dead process: liveness fails too.
	h.Live = func() bool { return false }
	if rec := muxGet(t, mux, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("dead liveness = %d, want 503", rec.Code)
	}
}

func TestStatuszServesDocument(t *testing.T) {
	h := &Health{Statusz: func() any {
		return map[string]any{"role": "primary", "ready": true}
	}}
	rec := muxGet(t, MuxHealth(NewRegistry(), h), "/statusz")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /statusz = %d, want 200", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("statusz is not JSON: %v", err)
	}
	if doc["role"] != "primary" {
		t.Errorf("statusz doc = %v", doc)
	}

	// No source attached: placeholder, still JSON.
	rec = muxGet(t, Mux(NewRegistry()), "/statusz")
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("placeholder statusz is not JSON: %v", err)
	}
}
