package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SchemaVersion identifies the snapshot document layout. Bump it whenever a
// field changes meaning; trajectory tooling keys on it before reading.
const SchemaVersion = 1

// Snapshot is a point-in-time export of every registered series.
type Snapshot struct {
	Schema int              `json:"schema"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one exported series.
type SeriesSnapshot struct {
	Name  string `json:"name"`
	Type  string `json:"type"` // counter, gauge, histogram
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"` // counter/gauge value; histogram sample count

	// Histogram-only fields.
	Sum     uint64   `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket. Le is the inclusive upper
// bound; the +Inf bucket has Inf set instead.
type Bucket struct {
	Le    uint64 `json:"le"`
	Inf   bool   `json:"inf,omitempty"`
	Count uint64 `json:"count"`
}

// Snapshot captures every series, reading collector functions now. Series
// are sorted by name so output is stable.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	list := make([]*series, 0, len(r.byName))
	for _, s := range r.byName {
		list = append(list, s)
	}
	r.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })

	snap := Snapshot{Schema: SchemaVersion, Series: make([]SeriesSnapshot, 0, len(list))}
	for _, s := range list {
		out := SeriesSnapshot{Name: s.name, Type: s.kind.String(), Help: s.help}
		switch s.kind {
		case kindCounter:
			out.Value = int64(s.counter.Value())
		case kindGauge:
			out.Value = s.gauge.Value()
		case kindCounterFunc:
			out.Value = int64(s.cfn())
		case kindGaugeFunc:
			out.Value = s.gfn()
		case kindHistogram:
			h := s.hist
			out.Value = int64(h.Count())
			out.Sum = h.Sum()
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				out.Buckets = append(out.Buckets, Bucket{Le: b, Count: cum})
			}
			cum += h.counts[len(h.bounds)].Load()
			out.Buckets = append(out.Buckets, Bucket{Inf: true, Count: cum})
		}
		snap.Series = append(snap.Series, out)
	}
	return snap
}

// Find returns the named series from the snapshot.
func (s Snapshot) Find(name string) (SeriesSnapshot, bool) {
	for _, ser := range s.Series {
		if ser.Name == name {
			return ser, true
		}
	}
	return SeriesSnapshot{}, false
}

// Value returns the named series' value, or 0 when absent (missing series
// read as never-incremented counters, which is what comparisons want).
func (s Snapshot) Value(name string) int64 {
	ser, ok := s.Find(name)
	if !ok {
		return 0
	}
	return ser.Value
}

// WriteJSON writes the snapshot as one indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SanitizeName maps an arbitrary label (a site name, a pool name) onto the
// metric-name alphabet [a-zA-Z0-9_:], replacing every other rune with '_',
// so dynamically derived series are always legal exposition output.
func SanitizeName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4: HELP/TYPE comments followed by samples).
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, ser := range s.Series {
		if ser.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", ser.Name, ser.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", ser.Name, ser.Type); err != nil {
			return err
		}
		if ser.Type == "histogram" {
			for _, b := range ser.Buckets {
				le := fmt.Sprintf("%d", b.Le)
				if b.Inf {
					le = "+Inf"
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", ser.Name, le, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", ser.Name, ser.Sum, ser.Name, ser.Value); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", ser.Name, ser.Value); err != nil {
			return err
		}
	}
	return nil
}
