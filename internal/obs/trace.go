package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Structured event tracing. The tracer replaces the runtime's old
// unstructured text stream: each reference operation emits one fixed-shape
// Event into a mutex-guarded ring buffer, optionally forwarded to a sink
// (text compat formatter, JSONL writer) while the lock is held — so
// concurrent emitters can no longer interleave partial lines.

// EventKind names the operation an event records.
type EventKind uint8

// Event kinds, mirroring the runtime's reference operations.
const (
	EvLoad     EventKind = iota // scalar load
	EvStore                     // scalar store (storeD)
	EvLoadPtr                   // pointer load (pdy = pxr rule)
	EvStorePtr                  // pointer store (storeP / pointerAssignment)
	EvAlloc                     // persistent or volatile allocation
	EvFree                      // deallocation
)

var eventKindNames = [...]string{"load", "storeD", "loadPtr", "storePtr", "alloc", "free"}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range eventKindNames {
		if name == s {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Conversion records which pointer-format translation an operation
// performed, if any.
type Conversion uint8

// Conversion directions.
const (
	ConvNone     Conversion = iota
	ConvRelToAbs            // ra2va: relative form resolved to a virtual address
	ConvAbsToRel            // va2ra: virtual address made relocatable
)

var conversionNames = [...]string{"none", "ra2va", "va2ra"}

func (c Conversion) String() string {
	if int(c) < len(conversionNames) {
		return conversionNames[c]
	}
	return fmt.Sprintf("conv(%d)", uint8(c))
}

// MarshalJSON encodes the conversion as its name.
func (c Conversion) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON decodes a conversion name.
func (c *Conversion) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range conversionNames {
		if name == s {
			*c = Conversion(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown conversion %q", s)
}

// Event is one traced reference operation. Pointer words are carried raw
// (the 64-bit reference encoding); the consumer decodes form and fields.
type Event struct {
	Seq   uint64     `json:"seq"`
	Cycle uint64     `json:"cycle"`
	Mode  string     `json:"mode"`
	Kind  EventKind  `json:"kind"`
	P     uint64     `json:"p"`             // base reference of the access
	Off   int64      `json:"off"`           // byte offset from P
	Val   uint64     `json:"val"`           // loaded/stored word, or resolved VA for scalar ops
	Res   uint64     `json:"res,omitempty"` // converted local (loadPtr) / stored form (storePtr)
	Conv  Conversion `json:"conv"`
}

// Tracer collects events in a fixed-capacity ring buffer. All methods are
// safe for concurrent use; the sink runs under the tracer's lock so its
// output preserves event order even when a Context is (incorrectly but
// commonly) shared across goroutines.
type Tracer struct {
	mu         sync.Mutex
	ring       []Event
	next       int
	wrapped    bool
	seq        uint64
	sink       func(Event)
	sinkPanics uint64
}

// DefaultTraceCapacity bounds the ring when callers do not choose one.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer retaining the last capacity events
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// SetSink forwards every subsequent event to fn (nil detaches). The sink is
// called with the lock held: keep it fast. A sink that panics is detached
// and counted (SinkPanics) — tracing must never take the traced run down.
func (t *Tracer) SetSink(fn func(Event)) {
	t.mu.Lock()
	t.sink = fn
	t.mu.Unlock()
}

// SinkPanics returns how many sinks were detached after panicking.
func (t *Tracer) SinkPanics() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkPanics
}

// Emit records one event, assigning its sequence number.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	if t.sink != nil {
		t.callSink(e)
	}
	t.mu.Unlock()
}

// callSink runs the sink with panic containment (caller holds the lock).
func (t *Tracer) callSink(e Event) {
	defer func() {
		if p := recover(); p != nil {
			t.sink = nil
			t.sinkPanics++
		}
	}()
	t.sink(e)
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Len returns how many events are retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		return len(t.ring)
	}
	return t.next
}

// Emitted returns the total number of events ever emitted (>= Len when the
// ring has wrapped).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Reset drops all retained events and restarts sequence numbering.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.next = 0
	t.wrapped = false
	t.seq = 0
	t.mu.Unlock()
}

// WriteJSONL writes events one JSON document per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL event stream, skipping blank lines.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// JSONLSink returns a sink function streaming each event to w as JSONL,
// suitable for Tracer.SetSink. Errors are reported through errf once
// (nil errf ignores them); tracing must not abort the traced run.
func JSONLSink(w io.Writer, errf func(error)) func(Event) {
	enc := json.NewEncoder(w)
	failed := false
	return func(e Event) {
		if failed {
			return
		}
		if err := enc.Encode(e); err != nil {
			failed = true
			if errf != nil {
				errf(err)
			}
		}
	}
}
