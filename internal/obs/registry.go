// Package obs is the unified observability plane of the reproduction: a
// zero-dependency (standard library only) metrics registry and structured
// event tracer shared by the runtime, hardware model, pool, transaction,
// and fault layers.
//
// The registry holds three instrument kinds — monotonic counters, gauges,
// and fixed-bucket histograms — plus pull-style collector series
// (CounterFunc/GaugeFunc) that read a live stat struct only at snapshot
// time. Instruments are atomic and allocation-free on the hot path, and
// every mutating method is a no-op when the owning registry is disabled or
// the instrument pointer is nil, so instrumented code needs no guards.
//
// Snapshots export through three sinks: Prometheus-style text exposition,
// a schema-versioned JSON document, and (for traces) JSONL event streams.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// enabledAlways backs instruments created outside a registry; it reads true
// forever so the nil-safe fast path stays branch-predictable.
var enabledAlways = func() *atomic.Bool {
	b := new(atomic.Bool)
	b.Store(true)
	return b
}()

// Counter is a monotonically increasing series.
type Counter struct {
	v  atomic.Uint64
	on *atomic.Bool
}

// Inc adds one. Safe on a nil receiver and free when the registry is
// disabled.
func (c *Counter) Inc() { c.Add(1) }

// Add accumulates n.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can move in both directions.
type Gauge struct {
	v  atomic.Int64
	on *atomic.Bool
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Bounds are inclusive
// upper edges in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64
	count  atomic.Uint64
	on     *atomic.Bool
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil || !h.on.Load() {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observed samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// seriesKind discriminates registered series.
type seriesKind uint8

const (
	kindCounter seriesKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k seriesKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one registered name.
type series struct {
	name string
	help string
	kind seriesKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64
	gfn     func() int64
}

// Registry is a named collection of series. The zero value is not usable;
// construct with NewRegistry. Registration is idempotent by name: asking
// for an existing name returns the existing instrument (a kind mismatch
// panics — it is a programming error, like registering two Prometheus
// collectors under one name).
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*series
	enabled atomic.Bool
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]*series)}
	r.enabled.Store(true)
	return r
}

// SetEnabled turns all of the registry's write paths on or off. Disabled
// instruments cost one atomic load per call.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry accepts writes.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

func (r *Registry) register(name, help string, kind seriesKind) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byName[name]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: series %q re-registered as %s (was %s)", name, kind, s.kind))
		}
		return s
	}
	s := &series{name: name, help: help, kind: kind}
	r.byName[name] = s
	return s
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	s := r.register(name, help, kindCounter)
	if s.counter == nil {
		s.counter = &Counter{on: &r.enabled}
	}
	return s.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	s := r.register(name, help, kindGauge)
	if s.gauge == nil {
		s.gauge = &Gauge{on: &r.enabled}
	}
	return s.gauge
}

// Histogram returns the named histogram, creating it on first use with the
// given inclusive upper bucket bounds (ascending; +Inf added implicitly).
func (r *Registry) Histogram(name, help string, bounds []uint64) *Histogram {
	s := r.register(name, help, kindHistogram)
	if s.hist == nil {
		b := make([]uint64, len(bounds))
		copy(b, bounds)
		s.hist = &Histogram{
			bounds: b,
			counts: make([]atomic.Uint64, len(b)+1),
			on:     &r.enabled,
		}
	}
	return s.hist
}

// CounterFunc registers a pull-style counter whose value is read from fn at
// snapshot time. It is the zero-hot-path-cost way to export an existing
// stats struct: the instrumented code keeps its plain field increments and
// the registry samples them on demand. Re-registering a name replaces fn
// (collectors are rebound when a fresh Context reuses a registry).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	s := r.register(name, help, kindCounterFunc)
	s.cfn = fn
}

// GaugeFunc registers a pull-style gauge read from fn at snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	s := r.register(name, help, kindGaugeFunc)
	s.gfn = fn
}

// Names returns the registered series names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
