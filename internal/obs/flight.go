package obs

// Incident flight recorder: a ring of structured "wide events" (one record
// per interesting occurrence, carrying its whole context — the canonical
// observability-2.0 shape) that buffers continuously and freezes into a
// JSONL dump when a trigger fires. The serving tier notes slow ops and
// control-plane transitions here; when something goes wrong (promotion,
// fencing, breaker open, supervisor restart, divergence) the recorder
// writes everything it held — the wide events plus the spans in flight —
// so the minutes before an incident are preserved without anyone having
// had tracing "turned up" in advance.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// DefaultFlightCapacity is the wide-event ring size when unspecified.
const DefaultFlightCapacity = 1024

// WideEvent is one structured record in the flight ring: a slow op with its
// stage breakdown, or a control-plane trigger.
type WideEvent struct {
	TimeUnixNS int64            `json:"time_unix_ns"`
	Seq        uint64           `json:"seq"`
	Kind       string           `json:"kind"`
	Trace      uint64           `json:"trace,omitempty"`
	Shard      int              `json:"shard"`
	Op         string           `json:"op,omitempty"`
	Key        uint64           `json:"key,omitempty"`
	TotalUS    int64            `json:"total_us,omitempty"`
	Detail     string           `json:"detail,omitempty"`
	StagesUS   map[string]int64 `json:"stages_us,omitempty"`
}

// FlightLine is one line of a flight dump: a wide event or a span that was
// in flight at trigger time, tagged by Type ("wide" or "span").
type FlightLine struct {
	Type  string     `json:"type"`
	Event *WideEvent `json:"event,omitempty"`
	Span  *Span      `json:"span,omitempty"`
}

// FlightRecorder buffers wide events in a fixed ring and snapshots them —
// along with the attached SpanRecorder's in-flight spans — to a JSONL file
// when Trigger fires. All methods are nil-safe and safe for concurrent use.
type FlightRecorder struct {
	dir   string
	spans *SpanRecorder

	mu       sync.Mutex
	ring     []WideEvent
	next     int
	wrapped  bool
	seq      uint64
	dumps    uint64
	dumpErrs uint64
	lastDump string
}

// NewFlightRecorder returns a recorder retaining the last capacity wide
// events (DefaultFlightCapacity when capacity <= 0). dir is where Trigger
// writes dumps (created on demand; empty keeps snapshots in memory only).
// spans may be nil; when set, dumps include its retained spans.
func NewFlightRecorder(capacity int, dir string, spans *SpanRecorder) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{
		dir:   dir,
		spans: spans,
		ring:  make([]WideEvent, capacity),
	}
}

// Note records one wide event, stamping its time (when zero) and sequence.
func (f *FlightRecorder) Note(e WideEvent) {
	if f == nil {
		return
	}
	if e.TimeUnixNS == 0 {
		e.TimeUnixNS = time.Now().UnixNano()
	}
	f.mu.Lock()
	f.note(e)
	f.mu.Unlock()
}

// note appends with the lock held.
func (f *FlightRecorder) note(e WideEvent) {
	f.seq++
	e.Seq = f.seq
	f.ring[f.next] = e
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.wrapped = true
	}
}

// Trigger records a trigger event of the given kind, freezes the ring, and
// dumps it (plus the spans in flight) as JSONL to the recorder's directory.
// It returns the dump path, empty when the recorder keeps snapshots in
// memory only. Dump failures are counted, never propagated as panics.
func (f *FlightRecorder) Trigger(kind, detail string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	f.note(WideEvent{
		TimeUnixNS: time.Now().UnixNano(),
		Kind:       kind,
		Shard:      -1,
		Detail:     detail,
	})
	f.dumps++
	n := f.dumps
	events := f.eventsLocked()
	f.mu.Unlock()

	if f.dir == "" {
		return "", nil
	}
	// The span snapshot takes the span recorder's own lock; never nest it
	// under ours.
	spans := f.spans.Spans()

	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", f.dumpFailed(err)
	}
	path := filepath.Join(f.dir, fmt.Sprintf("flight-%03d-%s.jsonl", n, kind))
	w, err := os.Create(path)
	if err != nil {
		return "", f.dumpFailed(err)
	}
	if err := WriteFlightDump(w, events, spans); err != nil {
		w.Close()
		return "", f.dumpFailed(err)
	}
	if err := w.Close(); err != nil {
		return "", f.dumpFailed(err)
	}
	f.mu.Lock()
	f.lastDump = path
	f.mu.Unlock()
	return path, nil
}

// dumpFailed counts a failed dump and returns the error for logging.
func (f *FlightRecorder) dumpFailed(err error) error {
	f.mu.Lock()
	f.dumpErrs++
	f.mu.Unlock()
	return fmt.Errorf("obs: flight dump: %w", err)
}

// Events returns the retained wide events in recording order.
func (f *FlightRecorder) Events() []WideEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eventsLocked()
}

// eventsLocked snapshots the ring with the lock held.
func (f *FlightRecorder) eventsLocked() []WideEvent {
	if !f.wrapped {
		out := make([]WideEvent, f.next)
		copy(out, f.ring[:f.next])
		return out
	}
	out := make([]WideEvent, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// Len returns how many wide events are retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wrapped {
		return len(f.ring)
	}
	return f.next
}

// Dumps returns how many triggers have fired.
func (f *FlightRecorder) Dumps() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// DumpErrors returns how many dumps failed to write.
func (f *FlightRecorder) DumpErrors() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumpErrs
}

// LastDump returns the path of the most recent successful dump ("" if none).
func (f *FlightRecorder) LastDump() string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastDump
}

// WriteFlightDump writes a flight snapshot as type-tagged JSONL: first the
// wide events, then the spans that were in flight.
func WriteFlightDump(w io.Writer, events []WideEvent, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(FlightLine{Type: "wide", Event: &events[i]}); err != nil {
			return err
		}
	}
	for i := range spans {
		if err := enc.Encode(FlightLine{Type: "span", Span: &spans[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFlightDump parses a flight dump written by WriteFlightDump.
func ReadFlightDump(r io.Reader) ([]FlightLine, error) {
	var out []FlightLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var fl FlightLine
		if err := json.Unmarshal(b, &fl); err != nil {
			return nil, fmt.Errorf("obs: flight jsonl line %d: %w", line, err)
		}
		switch fl.Type {
		case "wide", "span":
		default:
			return nil, fmt.Errorf("obs: flight jsonl line %d: unknown type %q", line, fl.Type)
		}
		out = append(out, fl)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
