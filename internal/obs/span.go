package obs

// Request-scoped span tracing: the serving tier stamps every hop of a
// sampled request (decode, queue wait, execute, op-log append, replication
// ship, ack hold, reply encode) as a Span, recorded into a SpanRecorder —
// the request-plane sibling of the reference-operation Tracer. Spans share
// the Tracer's design: a mutex-guarded fixed-capacity ring, an optional
// sink called under the lock, and JSONL import/export. The recorder also
// feeds a per-stage latency histogram into a Registry, so the aggregate
// view (where does time go, across all requests) costs nothing beyond the
// per-span ring write.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one timed stage of a request. Offsets are monotonic nanoseconds
// from the recorder's epoch (captured at construction), so spans from one
// recorder order and align with each other even across goroutines; Trace
// groups the stages of one request (zero marks a background stage sample
// that only feeds the histograms, e.g. a replication ship).
type Span struct {
	Trace   uint64 `json:"trace"`
	Seq     uint64 `json:"seq"`
	Stage   string `json:"stage"`
	Shard   int    `json:"shard"` // -1 when the stage is not shard-scoped
	Op      string `json:"op,omitempty"`
	Key     uint64 `json:"key,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// spanStageBounds are the microsecond buckets of the per-stage latency
// histograms (finer at the low end than the shard latency buckets: single
// stages are often sub-microsecond).
var spanStageBounds = []uint64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000}

// SpanRecorder collects spans in a fixed-capacity ring buffer. All methods
// are safe for concurrent use and nil-safe, so instrumented code needs no
// guards. When constructed over a Registry, every recorded span also
// observes a per-stage histogram trace_stage_<stage>_us.
type SpanRecorder struct {
	epoch time.Time
	reg   *Registry

	mu         sync.Mutex
	ring       []Span
	next       int
	wrapped    bool
	seq        uint64
	sink       func(Span)
	sinkPanics uint64
	hists      map[string]*Histogram
}

// NewSpanRecorder returns a recorder retaining the last capacity spans
// (DefaultTraceCapacity when capacity <= 0). reg may be nil to skip the
// per-stage histograms.
func NewSpanRecorder(capacity int, reg *Registry) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &SpanRecorder{
		epoch: time.Now(),
		reg:   reg,
		ring:  make([]Span, capacity),
		hists: make(map[string]*Histogram),
	}
}

// Epoch returns the instant StartNS offsets are relative to.
func (r *SpanRecorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// SetSink forwards every subsequent span to fn (nil detaches). The sink is
// called with the lock held: keep it fast. A sink that panics is detached
// and counted (SinkPanics) — tracing must never take the traced server down.
func (r *SpanRecorder) SetSink(fn func(Span)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = fn
	r.mu.Unlock()
}

// SinkPanics returns how many sinks were detached after panicking.
func (r *SpanRecorder) SinkPanics() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkPanics
}

// Record stores one span, assigning its sequence number and observing the
// stage histogram.
func (r *SpanRecorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	s.Seq = r.seq
	r.ring[r.next] = s
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
	if r.reg != nil {
		h, ok := r.hists[s.Stage]
		if !ok {
			h = r.reg.Histogram("trace_stage_"+s.Stage+"_us",
				"duration of the "+s.Stage+" request stage, microseconds", spanStageBounds)
			r.hists[s.Stage] = h
		}
		h.Observe(uint64(s.DurNS / 1000))
	}
	if r.sink != nil {
		r.callSink(s)
	}
	r.mu.Unlock()
}

// callSink runs the sink with panic containment (caller holds the lock).
func (r *SpanRecorder) callSink(s Span) {
	defer func() {
		if p := recover(); p != nil {
			r.sink = nil
			r.sinkPanics++
		}
	}()
	r.sink(s)
}

// RecordTimed is Record over a wall measurement: the span starts at start
// (converted to an epoch offset) and lasted dur.
func (r *SpanRecorder) RecordTimed(trace uint64, stage string, shard int, op string, key uint64, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.Record(Span{
		Trace:   trace,
		Stage:   stage,
		Shard:   shard,
		Op:      op,
		Key:     key,
		StartNS: start.Sub(r.epoch).Nanoseconds(),
		DurNS:   dur.Nanoseconds(),
	})
}

// Spans returns the retained spans in recording order.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Span, r.next)
		copy(out, r.ring[:r.next])
		return out
	}
	out := make([]Span, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Len returns how many spans are retained.
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.ring)
	}
	return r.next
}

// Emitted returns the total number of spans ever recorded (>= Len when the
// ring has wrapped).
func (r *SpanRecorder) Emitted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Reset drops all retained spans and restarts sequence numbering.
func (r *SpanRecorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.next = 0
	r.wrapped = false
	r.seq = 0
	r.mu.Unlock()
}

// WriteSpanJSONL writes spans one JSON document per line.
func WriteSpanJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpanJSONL parses a JSONL span stream, skipping blank lines.
func ReadSpanJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("obs: span jsonl line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
