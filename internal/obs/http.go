package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's current snapshot in Prometheus text
// exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
}

// JSONHandler serves the registry's current snapshot as JSON.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
}

// Mux returns a mux exposing the registry at /metrics (text) and
// /metrics.json, plus the standard net/http/pprof profiling endpoints at
// /debug/pprof/ — everything nvbench -http needs to watch a long run.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
