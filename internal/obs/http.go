package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's current snapshot in Prometheus text
// exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
}

// JSONHandler serves the registry's current snapshot as JSON.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
}

// Health supplies the process's liveness/readiness/status views to the obs
// mux. Any field may be nil: liveness then defaults to alive, readiness to
// ready, and /statusz to a minimal placeholder.
//
// The contract: Live reports whether the process is making progress at all
// (false means "restart me"); Ready reports whether it should receive
// traffic right now (false while a replica is read-only, a primary is
// self-fenced, or a shard is lagging/recovering — conditions a restart
// would not fix), with a human-readable reason.
type Health struct {
	Live    func() bool
	Ready   func() (bool, string)
	Statusz func() any
}

// HealthzHandler answers liveness probes, and readiness probes when the
// request carries ?probe=ready: 200 with the reason when the check passes,
// 503 otherwise.
func HealthzHandler(h *Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ok, reason := true, "ok"
		switch {
		case req.URL.Query().Get("probe") == "ready":
			if h != nil && h.Ready != nil {
				ok, reason = h.Ready()
			}
		default:
			if h != nil && h.Live != nil {
				ok = h.Live()
				if !ok {
					reason = "not live"
				}
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, reason)
	})
}

// StatuszHandler serves the status document as indented JSON.
func StatuszHandler(h *Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var doc any
		if h != nil && h.Statusz != nil {
			doc = h.Statusz()
		} else {
			doc = map[string]string{"status": "no status source attached"}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// indexPage is served at the mux root so a browser landing on the obs port
// finds everything instead of a 404.
const indexPage = `<!DOCTYPE html>
<html><head><title>nvref obs</title></head>
<body>
<h1>nvref observability</h1>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/metrics.json">/metrics.json</a> — same snapshot as JSON</li>
<li><a href="/statusz">/statusz</a> — role, readiness, tracing, and shard status</li>
<li><a href="/healthz">/healthz</a> — liveness probe (<a href="/healthz?probe=ready">?probe=ready</a> for readiness)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
</ul>
</body></html>
`

// Mux returns a mux exposing the registry at /metrics (text) and
// /metrics.json, an index page at /, default /healthz and /statusz
// endpoints, plus the standard net/http/pprof profiling endpoints at
// /debug/pprof/ — everything nvbench -http needs to watch a long run.
func Mux(r *Registry) *http.ServeMux {
	return MuxHealth(r, nil)
}

// MuxHealth is Mux with the process's health views wired into /healthz and
// /statusz (nil h keeps the nil-safe defaults: alive, ready, placeholder
// status).
func MuxHealth(r *Registry, h *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, indexPage)
	})
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.Handle("/healthz", HealthzHandler(h))
	mux.Handle("/statusz", StatuszHandler(h))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
