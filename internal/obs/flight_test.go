package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRingAndNilSafety(t *testing.T) {
	f := NewFlightRecorder(3, "", nil)
	for i := 0; i < 5; i++ {
		f.Note(WideEvent{Kind: "slow_op", Shard: i})
	}
	evs := f.Events()
	if len(evs) != 3 || f.Len() != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Shard != i+2 {
			t.Errorf("event %d shard = %d, want %d", i, e.Shard, i+2)
		}
		if e.Seq != uint64(i+3) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+3)
		}
		if e.TimeUnixNS == 0 {
			t.Errorf("event %d not timestamped", i)
		}
	}

	var nilF *FlightRecorder
	nilF.Note(WideEvent{})
	if path, err := nilF.Trigger("promotion", "x"); path != "" || err != nil {
		t.Error("nil recorder triggered")
	}
	if nilF.Events() != nil || nilF.Len() != 0 || nilF.Dumps() != 0 || nilF.DumpErrors() != 0 || nilF.LastDump() != "" {
		t.Error("nil recorder leaked state")
	}
}

func TestFlightTriggerDumpsRingAndSpans(t *testing.T) {
	dir := t.TempDir()
	spans := NewSpanRecorder(8, nil)
	spans.Record(Span{Trace: 9, Stage: "execute", Shard: 0, Op: "put", DurNS: 100})
	spans.Record(Span{Trace: 9, Stage: "replack_hold", Shard: 0, DurNS: 50})
	f := NewFlightRecorder(16, dir, spans)
	f.Note(WideEvent{Kind: "slow_op", Trace: 9, Shard: 0, Op: "put", TotalUS: 1500,
		StagesUS: map[string]int64{"queue_wait": 100, "execute": 1400}})

	path, err := f.Trigger("promotion", "replica promoted to primary")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), "promotion") {
		t.Fatalf("dump path %q not under %q or missing the trigger kind", path, dir)
	}
	if f.Dumps() != 1 || f.LastDump() != path {
		t.Errorf("Dumps=%d LastDump=%q", f.Dumps(), f.LastDump())
	}

	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	lines, err := ReadFlightDump(file)
	if err != nil {
		t.Fatal(err)
	}
	var wide, span int
	var sawTrigger, sawSlow bool
	for _, ln := range lines {
		switch ln.Type {
		case "wide":
			wide++
			switch ln.Event.Kind {
			case "promotion":
				sawTrigger = true
				if ln.Event.Detail == "" {
					t.Error("trigger event lost its detail")
				}
			case "slow_op":
				sawSlow = true
				if ln.Event.StagesUS["execute"] != 1400 {
					t.Error("slow op lost its stage breakdown")
				}
			}
		case "span":
			span++
		}
	}
	if wide != 2 || span != 2 || !sawTrigger || !sawSlow {
		t.Fatalf("dump shape: %d wide (trigger=%v slow=%v), %d spans", wide, sawTrigger, sawSlow, span)
	}

	// A second trigger gets a fresh, numbered file.
	path2, err := f.Trigger("fencing", "replica silent")
	if err != nil {
		t.Fatal(err)
	}
	if path2 == path || !strings.Contains(filepath.Base(path2), "fencing") {
		t.Errorf("second dump %q did not get its own file", path2)
	}
}

func TestFlightTriggerWithoutDirStaysInMemory(t *testing.T) {
	f := NewFlightRecorder(8, "", nil)
	path, err := f.Trigger("restart", "worker restarted")
	if err != nil || path != "" {
		t.Fatalf("memory-only trigger: path=%q err=%v", path, err)
	}
	if f.Dumps() != 1 || f.LastDump() != "" {
		t.Errorf("Dumps=%d LastDump=%q", f.Dumps(), f.LastDump())
	}
	evs := f.Events()
	if len(evs) != 1 || evs[0].Kind != "restart" {
		t.Fatalf("trigger event not retained: %+v", evs)
	}
}

func TestFlightDumpFailureCountedNotFatal(t *testing.T) {
	// A file where the dump directory should be: MkdirAll fails.
	tmp := t.TempDir()
	blocked := filepath.Join(tmp, "not-a-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := NewFlightRecorder(8, blocked, nil)
	if _, err := f.Trigger("divergence", "gap"); err == nil {
		t.Fatal("dump into a file path should fail")
	}
	if f.DumpErrors() != 1 {
		t.Errorf("DumpErrors = %d, want 1", f.DumpErrors())
	}
	if f.Len() != 1 {
		t.Error("trigger event lost when the dump failed")
	}
}

func TestReadFlightDumpRejectsGarbage(t *testing.T) {
	if _, err := ReadFlightDump(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadFlightDump(strings.NewReader(`{"type":"sideways"}` + "\n")); err == nil {
		t.Error("unknown line type accepted")
	}
}

func TestWriteFlightDumpOrdersWideThenSpan(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFlightDump(&buf,
		[]WideEvent{{Kind: "slow_op", Shard: 0}},
		[]Span{{Trace: 1, Stage: "execute"}})
	if err != nil {
		t.Fatal(err)
	}
	lines, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0].Type != "wide" || lines[1].Type != "span" {
		t.Fatalf("dump order wrong: %+v", lines)
	}
}

// TestFlightRecorderConcurrent hammers Note, Events, and Trigger from many
// goroutines. Run with -race.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64, t.TempDir(), NewSpanRecorder(16, nil))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Note(WideEvent{Kind: "slow_op", Shard: g, TotalUS: int64(i)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := f.Trigger("restart", "concurrent"); err != nil {
				t.Errorf("trigger: %v", err)
			}
			_ = f.Events()
		}
	}()
	wg.Wait()
	if f.Dumps() != 10 {
		t.Errorf("Dumps = %d, want 10", f.Dumps())
	}
}
