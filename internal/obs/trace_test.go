package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestTracerRingOrderAndWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Cycle: uint64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != uint64(i+2) {
			t.Errorf("event %d cycle = %d, want %d", i, e.Cycle, i+2)
		}
		if e.Seq != uint64(i+3) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+3)
		}
	}
	if tr.Len() != 4 || tr.Emitted() != 6 {
		t.Errorf("Len=%d Emitted=%d, want 4, 6", tr.Len(), tr.Emitted())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Emitted() != 0 {
		t.Error("reset did not clear the tracer")
	}
}

func TestTracerSinkSeesOrderedEvents(t *testing.T) {
	tr := NewTracer(8)
	var got []uint64
	tr.SetSink(func(e Event) { got = append(got, e.Seq) })
	for i := 0; i < 5; i++ {
		tr.Emit(Event{})
	}
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("sink order broken: %v", got)
		}
	}
	tr.SetSink(nil)
	tr.Emit(Event{})
	if len(got) != 5 {
		t.Error("detached sink still invoked")
	}
}

// TestTracerConcurrentEmit is the regression test for the old interleaved
// text trace: concurrent emitters through one tracer must produce whole,
// ordered records. Run with -race.
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(1 << 12)
	var buf bytes.Buffer
	tr.SetSink(func(e Event) {
		// Emulate the multi-write formatting the old tracef did.
		buf.WriteString("[")
		buf.WriteString(e.Mode)
		buf.WriteString("] ")
		buf.WriteString(e.Kind.String())
		buf.WriteString("\n")
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Event{Mode: "HW", Kind: EvLoad})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("%d lines, want 800", len(lines))
	}
	for _, l := range lines {
		if l != "[HW] load" {
			t.Fatalf("interleaved line %q", l)
		}
	}
	seqs := tr.Events()
	for i := 1; i < len(seqs); i++ {
		if seqs[i].Seq != seqs[i-1].Seq+1 {
			t.Fatal("sequence numbers not contiguous")
		}
	}
}

func TestTracerSinkPanicContained(t *testing.T) {
	tr := NewTracer(8)
	calls := 0
	tr.SetSink(func(Event) {
		calls++
		panic("sink exploded")
	})
	tr.Emit(Event{Kind: EvLoad}) // must not propagate
	if tr.SinkPanics() != 1 {
		t.Fatalf("SinkPanics = %d, want 1", tr.SinkPanics())
	}
	tr.Emit(Event{Kind: EvLoad}) // detached: not called again
	if calls != 1 {
		t.Fatalf("panicking sink called %d times, want 1", calls)
	}
	if tr.Len() != 2 {
		t.Errorf("events lost around the panic: Len = %d, want 2", tr.Len())
	}
}

// TestTracerConcurrentEmitEventsSetSink races emitters against snapshot
// readers and sink swaps. Run with -race.
func TestTracerConcurrentEmitEventsSetSink(t *testing.T) {
	tr := NewTracer(128)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 300; i++ {
				tr.Emit(Event{Kind: EvStore, Cycle: uint64(i)})
			}
		}()
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tr.Events()
			_ = tr.Len()
			tr.SetSink(func(Event) {})
			tr.SetSink(nil)
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if tr.Emitted() != 1200 {
		t.Fatalf("Emitted = %d, want 1200", tr.Emitted())
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatal("sequence numbers not contiguous")
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, Cycle: 10, Mode: "HW", Kind: EvLoadPtr, P: 0x8000000100000010, Off: 8, Val: 42, Res: 43, Conv: ConvRelToAbs},
		{Seq: 2, Cycle: 20, Mode: "SW", Kind: EvStorePtr, P: 5, Off: -8, Val: 6, Res: 7, Conv: ConvAbsToRel},
		{Seq: 3, Cycle: 30, Mode: "Volatile", Kind: EvStore, P: 9, Val: 1, Conv: ConvNone},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(strings.NewReader(buf.String() + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round-trip lost events: %d != %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
	// Kinds and conversions are encoded as names, not numbers.
	if !strings.Contains(buf.String(), `"kind":"loadPtr"`) || !strings.Contains(buf.String(), `"conv":"va2ra"`) {
		t.Errorf("JSONL not self-describing:\n%s", buf.String())
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"kind\":\"nope\"}\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"conv":"sideways"}` + "\n")); err == nil {
		t.Error("unknown conversion accepted")
	}
}

func TestJSONLSinkStreams(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(2) // smaller than the event count: ring drops, sink keeps all
	tr.SetSink(JSONLSink(&buf, nil))
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: EvAlloc, Cycle: uint64(i)})
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("sink captured %d events, want 5", len(events))
	}
	if tr.Len() != 2 {
		t.Errorf("ring retained %d, want 2", tr.Len())
	}
}

func TestKindAndConversionStrings(t *testing.T) {
	if EvStorePtr.String() != "storePtr" || EvFree.String() != "free" {
		t.Error("kind names wrong")
	}
	if ConvRelToAbs.String() != "ra2va" || ConvNone.String() != "none" {
		t.Error("conversion names wrong")
	}
	if EventKind(99).String() == "" || Conversion(99).String() == "" {
		t.Error("out-of-range values should still print")
	}
}
