package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}

	// Idempotent registration returns the same instrument.
	if r.Counter("ops_total", "ops") != c {
		t.Error("re-registering a counter returned a different instrument")
	}
	if r.Gauge("depth", "queue depth") != g {
		t.Error("re-registering a gauge returned a different instrument")
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(9)
	tr.Emit(Event{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments should read zero")
	}
	if tr.Events() != nil || tr.Len() != 0 || tr.Emitted() != 0 {
		t.Error("nil tracer should read empty")
	}
}

func TestDisabledRegistryDropsWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []uint64{10})
	r.SetEnabled(false)
	if r.Enabled() {
		t.Fatal("registry still enabled")
	}
	c.Inc()
	g.Set(5)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("disabled registry accepted writes")
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Error("re-enabled registry dropped a write")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "cycles", []uint64{1, 10, 100})
	for _, v := range []uint64{0, 1, 2, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1124 {
		t.Errorf("sum = %d, want 1124", h.Sum())
	}
	snap, ok := r.Snapshot().Find("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Cumulative counts: <=1: 2, <=10: 4, <=100: 6, +Inf: 7.
	want := []uint64{2, 4, 6, 7}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %d, want %d", len(snap.Buckets), len(want))
	}
	for i, b := range snap.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, want[i])
		}
	}
	if !snap.Buckets[3].Inf {
		t.Error("last bucket not +Inf")
	}
}

func TestCollectorFuncsReadLive(t *testing.T) {
	r := NewRegistry()
	v := uint64(0)
	r.CounterFunc("live_total", "live", func() uint64 { return v })
	r.GaugeFunc("live_gauge", "live", func() int64 { return int64(v) * 2 })
	if got := r.Snapshot().Value("live_total"); got != 0 {
		t.Errorf("collector = %d, want 0", got)
	}
	v = 42
	snap := r.Snapshot()
	if got := snap.Value("live_total"); got != 42 {
		t.Errorf("collector = %d, want 42", got)
	}
	if got := snap.Value("live_gauge"); got != 84 {
		t.Errorf("gauge collector = %d, want 84", got)
	}
	// Rebinding replaces the function.
	r.CounterFunc("live_total", "live", func() uint64 { return 7 })
	if got := r.Snapshot().Value("live_total"); got != 7 {
		t.Errorf("rebound collector = %d, want 7", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta", "")
	r.Counter("alpha", "")
	r.Gauge("mid", "")
	names := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}
