// Package repl is the replication layer's data plane: the fixed-size
// operation record every replicated write is logged as, and the per-shard
// persistent operation log those records live in.
//
// The design leans on the paper's relative-address format: because pool
// images are position-independent, a pool snapshot and an operation stream
// are both replayable in a different process at a different base address
// with no pointer swizzling. A replica therefore needs only (checkpoint
// image, log tail) to reconstruct a shard exactly, and the log records can
// be shipped over the wire as raw bytes.
//
// A record is 32 bytes, little-endian, CRC-protected:
//
//	[0:8)   seq    u64  per-shard sequence number, 1-based, dense
//	[8:16)  key    u64
//	[16:24) value  u64  (zero for deletes)
//	[24]    op     u8   RecPut | RecDelete
//	[25:28) -      zero reserved
//	[28:32) crc    u32  IEEE CRC32 over bytes [0:28)
//
// The CRC makes a record self-validating wherever it travels — in the log
// image, on the wire, or in a replica's apply queue — so a torn log tail
// or a corrupted frame is detected record-by-record instead of trusted.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record op kinds.
const (
	RecPut    byte = 1
	RecDelete byte = 2
)

// RecordSize is the fixed wire and log size of one record.
const RecordSize = 32

// ErrBadRecord reports a record that failed validation: bad size, unknown
// op, nonzero reserved bytes, or a CRC mismatch.
var ErrBadRecord = errors.New("repl: bad record")

// Record is one logged, replicable operation.
type Record struct {
	Seq   uint64
	Key   uint64
	Value uint64
	Op    byte
}

// AppendRecord appends the 32-byte wire form of r to buf.
func AppendRecord(buf []byte, r Record) []byte {
	var b [RecordSize]byte
	binary.LittleEndian.PutUint64(b[0:], r.Seq)
	binary.LittleEndian.PutUint64(b[8:], r.Key)
	binary.LittleEndian.PutUint64(b[16:], r.Value)
	b[24] = r.Op
	binary.LittleEndian.PutUint32(b[28:], crc32.ChecksumIEEE(b[:28]))
	return append(buf, b[:]...)
}

// DecodeRecord parses and validates one 32-byte record.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < RecordSize {
		return Record{}, fmt.Errorf("%w: %d bytes, want %d", ErrBadRecord, len(b), RecordSize)
	}
	want := binary.LittleEndian.Uint32(b[28:32])
	if got := crc32.ChecksumIEEE(b[:28]); got != want {
		return Record{}, fmt.Errorf("%w: crc %#x, want %#x", ErrBadRecord, got, want)
	}
	r := Record{
		Seq:   binary.LittleEndian.Uint64(b[0:]),
		Key:   binary.LittleEndian.Uint64(b[8:]),
		Value: binary.LittleEndian.Uint64(b[16:]),
		Op:    b[24],
	}
	if r.Op != RecPut && r.Op != RecDelete {
		return Record{}, fmt.Errorf("%w: unknown op %d", ErrBadRecord, r.Op)
	}
	if b[25] != 0 || b[26] != 0 || b[27] != 0 {
		return Record{}, fmt.Errorf("%w: nonzero reserved bytes", ErrBadRecord)
	}
	return r, nil
}

// EncodeRecords concatenates the wire forms of recs.
func EncodeRecords(recs []Record) []byte {
	buf := make([]byte, 0, len(recs)*RecordSize)
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	return buf
}

// DecodeRecords parses a concatenation of records, rejecting a buffer that
// is not a whole number of records, more than max records (when max > 0),
// or any record that fails validation.
func DecodeRecords(b []byte, max int) ([]Record, error) {
	if len(b)%RecordSize != 0 {
		return nil, fmt.Errorf("%w: %d bytes is not a whole number of records", ErrBadRecord, len(b))
	}
	n := len(b) / RecordSize
	if max > 0 && n > max {
		return nil, fmt.Errorf("%w: %d records exceeds %d", ErrBadRecord, n, max)
	}
	recs := make([]Record, n)
	for i := range recs {
		r, err := DecodeRecord(b[i*RecordSize:])
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		recs[i] = r
	}
	return recs, nil
}
