package repl

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{Seq: 1, Key: 42, Value: 4242, Op: RecPut},
		{Seq: 1<<63 + 7, Key: ^uint64(0), Value: 0, Op: RecDelete},
		{Seq: 999, Key: 0, Value: ^uint64(0), Op: RecPut},
	}
	for _, want := range cases {
		b := AppendRecord(nil, want)
		if len(b) != RecordSize {
			t.Fatalf("encoded size %d, want %d", len(b), RecordSize)
		}
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestRecordCRCCorruptionRejected(t *testing.T) {
	rec := Record{Seq: 7, Key: 11, Value: 13, Op: RecPut}
	clean := AppendRecord(nil, rec)
	// Flipping any single byte must fail validation: either the CRC no
	// longer matches, or (for the CRC bytes themselves) it no longer
	// matches the payload.
	for i := 0; i < RecordSize; i++ {
		b := append([]byte(nil), clean...)
		b[i] ^= 0x40
		if _, err := DecodeRecord(b); !errors.Is(err, ErrBadRecord) {
			t.Fatalf("byte %d flipped: got err %v, want ErrBadRecord", i, err)
		}
	}
}

func TestRecordShortBuffer(t *testing.T) {
	if _, err := DecodeRecord(make([]byte, RecordSize-1)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("short buffer: %v", err)
	}
}

// reseal recomputes the record CRC after a deliberate mutation, so the
// validation that fires is the semantic one, not the checksum.
func reseal(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[28:], crc32.ChecksumIEEE(b[:28]))
	return b
}

func TestRecordSemanticValidation(t *testing.T) {
	base := AppendRecord(nil, Record{Seq: 1, Key: 2, Value: 3, Op: RecPut})

	unknownOp := append([]byte(nil), base...)
	unknownOp[24] = 99
	if _, err := DecodeRecord(reseal(unknownOp)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("unknown op: %v", err)
	}

	reserved := append([]byte(nil), base...)
	reserved[26] = 1
	if _, err := DecodeRecord(reseal(reserved)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("nonzero reserved: %v", err)
	}
}

func TestEncodeDecodeRecords(t *testing.T) {
	recs := []Record{
		{Seq: 1, Key: 10, Value: 100, Op: RecPut},
		{Seq: 2, Key: 10, Value: 0, Op: RecDelete},
		{Seq: 3, Key: 11, Value: 111, Op: RecPut},
	}
	b := EncodeRecords(recs)
	got, err := DecodeRecords(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}

	if _, err := DecodeRecords(b[:len(b)-1], 0); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("ragged buffer: %v", err)
	}
	if _, err := DecodeRecords(b, 2); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("max exceeded: %v", err)
	}
	bad := append([]byte(nil), b...)
	bad[RecordSize+5] ^= 0xff // corrupt the middle record
	if _, err := DecodeRecords(bad, 0); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("embedded bad record: %v", err)
	}
	if got, err := DecodeRecords(nil, 0); err != nil || len(got) != 0 {
		t.Fatalf("empty buffer: (%v, %v)", got, err)
	}
}
