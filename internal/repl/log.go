package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"nvref/internal/pmem"
)

// logMagic heads every log image stored through a pmem.Store.
const logMagic = "NVOPLOG1"

// logHeaderSize is magic + last-seq u64 + count u32.
const logHeaderSize = len(logMagic) + 8 + 4

// ErrSeqGap reports an AppendAt whose sequence number is not the log's
// next — the replica lost a record and must re-pull.
var ErrSeqGap = errors.New("repl: sequence gap")

// Log is one shard's persistent operation log: records appended in
// sequence order, truncated at checkpoints, and durably saved as a single
// image through a pmem.Store (the same NVM-device model the pool images
// use, so a log image carries the store's CRC64 integrity checksum on top
// of the per-record CRC32).
//
// Durability contract: appends are in-memory and become durable at the
// next Flush — automatically every FlushEvery appends, at every
// TruncateThrough (the checkpoint path), and on demand. A crash loses the
// unflushed tail, exactly as a shard loses operations after its last
// checkpoint; the replication tier exists to close that window with a
// second copy, not to pretend single-copy appends are free. Shipping is
// durable-only: SinceDurable flushes pending appends and never serves a
// record the durable image does not cover, so a record that reached a
// replica is, by construction, a record this log's crash-reload retains.
//
// A Log is safe for concurrent use: the owning shard worker appends while
// connection handlers read Since for log shipping.
type Log struct {
	mu         sync.Mutex
	store      pmem.Store // nil: volatile (no Flush/Reload persistence)
	name       string
	flushEvery int

	recs    []Record
	last    uint64 // seq of the newest record ever appended (0 = none)
	flushed uint64 // seq covered by the durable image (== last when store is nil)
	dirty   int    // appends since the last successful flush

	flushes   uint64
	flushErrs uint64
	truncated uint64 // records dropped by truncation
	torn      uint64 // records dropped at reload (CRC or sequence damage)
}

// OpenLog opens (or creates) the named log in store, loading any durable
// image. flushEvery <= 0 disables automatic flushing (explicit Flush and
// the truncation path still persist). A nil store keeps the log in memory
// only.
func OpenLog(store pmem.Store, name string, flushEvery int) (*Log, error) {
	l := &Log{store: store, name: name, flushEvery: flushEvery}
	if err := l.Reload(); err != nil {
		return nil, err
	}
	return l, nil
}

// Name returns the log's image name in its store.
func (l *Log) Name() string { return l.name }

// Append assigns the next sequence number to (op, key, value), appends the
// record, and returns it. The primary's write path calls this before
// applying the operation (write-ahead order).
func (l *Log) Append(op byte, key, value uint64) Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := Record{Seq: l.last + 1, Op: op, Key: key, Value: value}
	l.recs = append(l.recs, rec)
	l.last = rec.Seq
	l.noteAppend()
	return rec
}

// AppendAt appends a record that already carries its sequence number (the
// replica's apply path). The sequence must be exactly the log's next;
// anything else is ErrSeqGap.
func (l *Log) AppendAt(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.Seq != l.last+1 {
		return fmt.Errorf("%w: record %d after %d", ErrSeqGap, rec.Seq, l.last)
	}
	l.recs = append(l.recs, rec)
	l.last = rec.Seq
	l.noteAppend()
	return nil
}

// noteAppend runs the automatic flush cadence. Called with mu held.
func (l *Log) noteAppend() {
	l.dirty++
	if l.flushEvery > 0 && l.dirty >= l.flushEvery {
		if err := l.flushLocked(); err != nil {
			l.flushErrs++
		}
	}
}

// LastSeq returns the newest sequence number ever appended (0 if none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// FlushedSeq returns the newest sequence number the durable image covers
// — what a Reload after power loss would come back with. A volatile
// (nil-store) log reports its in-memory tail, since reload cannot lose it.
func (l *Log) FlushedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// Unflushed returns how many appended records the durable image does not
// yet cover — the write-behind a crash right now would replay or lose.
// Zero for a volatile (nil-store) log, whose flushed watermark tracks the
// tail.
func (l *Log) Unflushed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last - l.flushed
}

// BaseSeq returns the oldest retained sequence number (0 when the log
// holds no records).
func (l *Log) BaseSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 {
		return 0
	}
	return l.recs[0].Seq
}

// Len returns how many records the log retains.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Bytes returns the retained records' size in bytes.
func (l *Log) Bytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.recs)) * RecordSize
}

// Since returns a copy of up to max retained records with Seq > seq (all
// of them when max <= 0), including any not-yet-flushed tail — the local
// replay read. Log shipping must use SinceDurable instead.
func (l *Log) Since(seq uint64, max int) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceLocked(seq, max, l.last)
}

// SinceDurable is the log-shipping read: it first flushes any pending
// appends (so shipping is prompt), then returns up to max records with
// Seq > seq — but never past the durable watermark. A record a replica
// receives is therefore guaranteed to survive this log's crash-reload,
// which is what makes an in-place primary recovery unable to regress
// below (and so reuse sequence numbers of) anything its replica has
// already applied. If the flush fails (counted in FlushErrors), only the
// already-durable prefix is served and lag grows visibly instead of
// durability silently weakening.
func (l *Log) SinceDurable(seq uint64, max int) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last > l.flushed {
		if err := l.flushLocked(); err != nil {
			l.flushErrs++
		}
	}
	return l.sinceLocked(seq, max, l.flushed)
}

// sinceLocked copies up to max retained records with seq < Seq <= through.
// Called with mu held.
func (l *Log) sinceLocked(seq uint64, max int, through uint64) []Record {
	recs := l.recs
	if len(recs) == 0 {
		return nil
	}
	base := recs[0].Seq
	if through < base {
		return nil
	}
	if keep := through - base + 1; keep < uint64(len(recs)) {
		recs = recs[:keep]
	}
	if seq >= base {
		skip := seq - base + 1
		if skip >= uint64(len(recs)) {
			return nil
		}
		recs = recs[skip:]
	}
	if max > 0 && len(recs) > max {
		recs = recs[:max]
	}
	out := make([]Record, len(recs))
	copy(out, recs)
	return out
}

// TruncateThrough drops every retained record with Seq <= seq and flushes
// the survivor image — the checkpoint path: once a pool snapshot covers a
// prefix of the log, that prefix is garbage (but a primary must keep
// records its replica has not acknowledged, so its callers pass
// min(checkpointed, replica-acked)).
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	drop := 0
	for drop < len(l.recs) && l.recs[drop].Seq <= seq {
		drop++
	}
	if drop > 0 {
		l.truncated += uint64(drop)
		l.recs = append(l.recs[:0], l.recs[drop:]...)
	}
	if err := l.flushLocked(); err != nil {
		l.flushErrs++
		return err
	}
	return nil
}

// ResetTo drops every retained record, restarts the sequence space at seq
// (the next AppendAt must carry seq+1), and flushes the emptied image —
// the re-seed path: a replica wiping its copy to re-adopt a primary
// snapshot taken at watermark seq.
func (l *Log) ResetTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.truncated += uint64(len(l.recs))
	l.recs = l.recs[:0]
	l.last = seq
	if err := l.flushLocked(); err != nil {
		l.flushErrs++
		return err
	}
	return nil
}

// Flush durably saves the log image.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		l.flushErrs++
		return err
	}
	return nil
}

func (l *Log) flushLocked() error {
	if l.store == nil {
		l.dirty = 0
		l.flushed = l.last
		return nil
	}
	data := l.encodeLocked()
	meta := pmem.Meta{
		ID:   crc32.ChecksumIEEE([]byte(l.name)),
		Name: l.name,
		Size: uint64(len(data)),
		Sum:  pmem.ImageChecksum(data),
	}
	if err := l.store.Save(meta, data); err != nil {
		return err
	}
	l.flushes++
	l.dirty = 0
	l.flushed = l.last
	return nil
}

func (l *Log) encodeLocked() []byte {
	buf := make([]byte, 0, logHeaderSize+len(l.recs)*RecordSize)
	buf = append(buf, logMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, l.last)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.recs)))
	for _, r := range l.recs {
		buf = AppendRecord(buf, r)
	}
	return buf
}

// Reload discards in-memory state and re-adopts the durable image — the
// crash-recovery path (and the constructor's load). A missing image is an
// empty log. Individually damaged records (CRC failure, sequence break)
// truncate the reload at the damage point and are counted in TornRecords;
// a damaged image header or store-level checksum mismatch is an error.
func (l *Log) Reload() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store == nil {
		return nil
	}
	meta, data, err := l.store.Load(l.name)
	if errors.Is(err, pmem.ErrStoreMissing) {
		l.recs, l.last, l.flushed, l.dirty = nil, 0, 0, 0
		return nil
	}
	if err != nil {
		return err
	}
	if meta.Sum != 0 && pmem.ImageChecksum(data) != meta.Sum {
		return fmt.Errorf("%w: log image %q checksum mismatch", pmem.ErrCorrupt, l.name)
	}
	if len(data) < logHeaderSize || string(data[:len(logMagic)]) != logMagic {
		return fmt.Errorf("%w: log image %q: bad header", pmem.ErrCorrupt, l.name)
	}
	p := len(logMagic)
	last := binary.LittleEndian.Uint64(data[p:])
	p += 8
	count := uint64(binary.LittleEndian.Uint32(data[p:]))
	p += 4
	if uint64(len(data)-p) != count*RecordSize {
		return fmt.Errorf("%w: log image %q: %d bytes for %d records",
			pmem.ErrCorrupt, l.name, len(data)-p, count)
	}
	recs := make([]Record, 0, count)
	torn := uint64(0)
	for i := uint64(0); i < count; i++ {
		rec, err := DecodeRecord(data[p+int(i)*RecordSize:])
		if err != nil {
			torn = count - i
			break
		}
		if len(recs) > 0 && rec.Seq != recs[len(recs)-1].Seq+1 {
			torn = count - i
			break
		}
		recs = append(recs, rec)
	}
	l.recs = recs
	l.torn += torn
	if torn > 0 {
		// The image's last-seq header counted the dropped suffix.
		if len(recs) > 0 {
			l.last = recs[len(recs)-1].Seq
		} else {
			l.last = 0
		}
	} else {
		l.last = last
	}
	l.flushed = l.last
	l.dirty = 0
	return nil
}

// LogStats is a point-in-time summary of a log's state and lifetime
// counters, exported into metrics and STATS documents.
type LogStats struct {
	LastSeq     uint64 `json:"last_seq"`
	FlushedSeq  uint64 `json:"flushed_seq"`
	BaseSeq     uint64 `json:"base_seq"`
	Records     int    `json:"records"`
	Bytes       uint64 `json:"bytes"`
	Dirty       int    `json:"dirty"`
	Flushes     uint64 `json:"flushes"`
	FlushErrors uint64 `json:"flush_errors"`
	Truncated   uint64 `json:"truncated"`
	TornRecords uint64 `json:"torn_records"`
}

// Stats returns the log's current statistics.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LogStats{
		LastSeq:     l.last,
		FlushedSeq:  l.flushed,
		Records:     len(l.recs),
		Bytes:       uint64(len(l.recs)) * RecordSize,
		Dirty:       l.dirty,
		Flushes:     l.flushes,
		FlushErrors: l.flushErrs,
		Truncated:   l.truncated,
		TornRecords: l.torn,
	}
	if len(l.recs) > 0 {
		st.BaseSeq = l.recs[0].Seq
	}
	return st
}
