package repl

import (
	"encoding/binary"
	"errors"
	"testing"

	"nvref/internal/pmem"
)

func mustOpen(t *testing.T, store pmem.Store, name string, flushEvery int) *Log {
	t.Helper()
	l, err := OpenLog(store, name, flushEvery)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	return l
}

func TestLogAppendAndQuery(t *testing.T) {
	l := mustOpen(t, nil, "a", 0)
	if l.LastSeq() != 0 || l.BaseSeq() != 0 || l.Len() != 0 || l.Bytes() != 0 {
		t.Fatal("fresh log not empty")
	}
	for i := uint64(1); i <= 10; i++ {
		rec := l.Append(RecPut, i, i*2)
		if rec.Seq != i {
			t.Fatalf("append %d assigned seq %d", i, rec.Seq)
		}
	}
	if l.LastSeq() != 10 || l.BaseSeq() != 1 || l.Len() != 10 {
		t.Fatalf("after 10 appends: last=%d base=%d len=%d", l.LastSeq(), l.BaseSeq(), l.Len())
	}
	if l.Bytes() != 10*RecordSize {
		t.Fatalf("bytes = %d", l.Bytes())
	}

	// Since is exclusive of seq and respects max.
	if got := l.Since(0, 0); len(got) != 10 || got[0].Seq != 1 {
		t.Fatalf("Since(0): %d records", len(got))
	}
	if got := l.Since(7, 0); len(got) != 3 || got[0].Seq != 8 {
		t.Fatalf("Since(7): %+v", got)
	}
	if got := l.Since(0, 4); len(got) != 4 || got[3].Seq != 4 {
		t.Fatalf("Since(0, 4): %+v", got)
	}
	if got := l.Since(10, 0); got != nil {
		t.Fatalf("Since(last): %+v", got)
	}
	if got := l.Since(99, 0); got != nil {
		t.Fatalf("Since(beyond): %+v", got)
	}
}

func TestLogAppendAt(t *testing.T) {
	l := mustOpen(t, nil, "a", 0)
	if err := l.AppendAt(Record{Seq: 1, Key: 1, Op: RecPut}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAt(Record{Seq: 3, Key: 3, Op: RecPut}); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap: %v", err)
	}
	if err := l.AppendAt(Record{Seq: 1, Key: 1, Op: RecPut}); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := l.AppendAt(Record{Seq: 2, Key: 2, Op: RecPut}); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 2 {
		t.Fatalf("last = %d", l.LastSeq())
	}
}

func TestLogTruncate(t *testing.T) {
	l := mustOpen(t, nil, "a", 0)
	for i := 0; i < 10; i++ {
		l.Append(RecPut, uint64(i), 0)
	}
	if err := l.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	if l.BaseSeq() != 7 || l.Len() != 4 || l.LastSeq() != 10 {
		t.Fatalf("after truncate: base=%d len=%d last=%d", l.BaseSeq(), l.Len(), l.LastSeq())
	}
	if got := l.Since(0, 0); len(got) != 4 || got[0].Seq != 7 {
		t.Fatalf("Since after truncate: %+v", got)
	}
	st := l.Stats()
	if st.Truncated != 6 {
		t.Fatalf("truncated = %d", st.Truncated)
	}
	// Truncating everything leaves an empty log that still knows its
	// last sequence, so appends continue densely.
	if err := l.TruncateThrough(10); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 || l.LastSeq() != 10 {
		t.Fatalf("after full truncate: len=%d last=%d", l.Len(), l.LastSeq())
	}
	if rec := l.Append(RecPut, 1, 1); rec.Seq != 11 {
		t.Fatalf("append after full truncate: seq %d", rec.Seq)
	}
}

func TestLogPersistence(t *testing.T) {
	store := pmem.NewMemStore()
	l := mustOpen(t, store, "shard-0", 0)
	for i := uint64(1); i <= 5; i++ {
		l.Append(RecPut, i, i+100)
	}
	l.Append(RecDelete, 3, 0)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	// A fresh open on the same store sees the identical log.
	l2 := mustOpen(t, store, "shard-0", 0)
	if l2.LastSeq() != 6 || l2.Len() != 6 {
		t.Fatalf("reopened: last=%d len=%d", l2.LastSeq(), l2.Len())
	}
	recs := l2.Since(0, 0)
	if recs[5].Op != RecDelete || recs[5].Key != 3 {
		t.Fatalf("reopened tail: %+v", recs[5])
	}

	// Unflushed appends are lost on reload — the documented durability
	// contract.
	l2.Append(RecPut, 99, 99)
	if err := l2.Reload(); err != nil {
		t.Fatal(err)
	}
	if l2.LastSeq() != 6 {
		t.Fatalf("reload kept unflushed tail: last=%d", l2.LastSeq())
	}
}

func TestLogFlushCadence(t *testing.T) {
	store := pmem.NewMemStore()
	l := mustOpen(t, store, "s", 2)
	l.Append(RecPut, 1, 1)
	if st := l.Stats(); st.Flushes != 0 || st.Dirty != 1 {
		t.Fatalf("after 1 append: %+v", st)
	}
	l.Append(RecPut, 2, 2)
	if st := l.Stats(); st.Flushes != 1 || st.Dirty != 0 {
		t.Fatalf("after 2 appends: %+v", st)
	}
	// The flushed image is already durable.
	l2 := mustOpen(t, store, "s", 2)
	if l2.LastSeq() != 2 {
		t.Fatalf("cadence flush not durable: last=%d", l2.LastSeq())
	}
}

func TestLogEmptyFlushAndMissing(t *testing.T) {
	store := pmem.NewMemStore()
	l := mustOpen(t, store, "empty", 0)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, store, "empty", 0)
	if l2.Len() != 0 || l2.LastSeq() != 0 {
		t.Fatal("empty image round trip failed")
	}
	// A name never saved is an empty log, not an error.
	l3 := mustOpen(t, store, "never-saved", 0)
	if l3.Len() != 0 {
		t.Fatal("missing image should open empty")
	}
}

// resave mutates the stored image bytes through fn and re-seals the
// store-level checksum, so only record-level validation can object.
func resave(t *testing.T, store pmem.Store, name string, fn func([]byte)) {
	t.Helper()
	meta, data, err := store.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	fn(data)
	meta.Sum = pmem.ImageChecksum(data)
	meta.Size = uint64(len(data))
	if err := store.Save(meta, data); err != nil {
		t.Fatal(err)
	}
}

func TestLogReloadTornTail(t *testing.T) {
	store := pmem.NewMemStore()
	l := mustOpen(t, store, "torn", 0)
	for i := uint64(1); i <= 8; i++ {
		l.Append(RecPut, i, i)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt record 5 (0-indexed) in place: reload must keep 1..5 and
	// drop the damaged suffix.
	resave(t, store, "torn", func(data []byte) {
		data[logHeaderSize+5*RecordSize+3] ^= 0xff
	})
	l2 := mustOpen(t, store, "torn", 0)
	if l2.Len() != 5 || l2.LastSeq() != 5 {
		t.Fatalf("torn reload: len=%d last=%d", l2.Len(), l2.LastSeq())
	}
	if st := l2.Stats(); st.TornRecords != 3 {
		t.Fatalf("torn records = %d, want 3", st.TornRecords)
	}
	// Appends continue from the surviving tail.
	if rec := l2.Append(RecPut, 9, 9); rec.Seq != 6 {
		t.Fatalf("append after torn reload: seq %d", rec.Seq)
	}
}

func TestLogReloadSeqBreak(t *testing.T) {
	store := pmem.NewMemStore()
	l := mustOpen(t, store, "gap", 0)
	for i := uint64(1); i <= 4; i++ {
		l.Append(RecPut, i, i)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Rewrite record 2 (0-indexed) with a jumped sequence number and a
	// valid CRC: contiguity checking must truncate there.
	resave(t, store, "gap", func(data []byte) {
		off := logHeaderSize + 2*RecordSize
		rec := AppendRecord(nil, Record{Seq: 9, Key: 1, Op: RecPut})
		copy(data[off:], rec)
	})
	l2 := mustOpen(t, store, "gap", 0)
	if l2.Len() != 2 || l2.LastSeq() != 2 {
		t.Fatalf("seq-break reload: len=%d last=%d", l2.Len(), l2.LastSeq())
	}
}

func TestLogReloadCorruptImage(t *testing.T) {
	store := pmem.NewMemStore()
	l := mustOpen(t, store, "x", 0)
	l.Append(RecPut, 1, 1)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	// Store-level checksum mismatch (flip a byte, keep the old Sum).
	meta, data, err := store.Load("x")
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := store.Save(meta, data); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(store, "x", 0); !errors.Is(err, pmem.ErrCorrupt) {
		t.Fatalf("checksum mismatch: %v", err)
	}

	// Bad magic with a re-sealed checksum.
	resave(t, store, "x", func(d []byte) { copy(d, "WRONGMAG") })
	if _, err := OpenLog(store, "x", 0); !errors.Is(err, pmem.ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}

	// Header record count that disagrees with the image length.
	l3 := mustOpen(t, store, "y", 0)
	l3.Append(RecPut, 1, 1)
	if err := l3.Flush(); err != nil {
		t.Fatal(err)
	}
	resave(t, store, "y", func(d []byte) {
		binary.LittleEndian.PutUint32(d[len(logMagic)+8:], 7)
	})
	if _, err := OpenLog(store, "y", 0); !errors.Is(err, pmem.ErrCorrupt) {
		t.Fatalf("count mismatch: %v", err)
	}

	// Truncated header.
	l4 := mustOpen(t, store, "z", 0)
	if err := l4.Flush(); err != nil {
		t.Fatal(err)
	}
	meta, _, err = store.Load("z")
	if err != nil {
		t.Fatal(err)
	}
	short := []byte(logMagic[:4])
	meta.Sum = pmem.ImageChecksum(short)
	meta.Size = uint64(len(short))
	if err := store.Save(meta, short); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(store, "z", 0); !errors.Is(err, pmem.ErrCorrupt) {
		t.Fatalf("short header: %v", err)
	}
}

func TestLogStats(t *testing.T) {
	l := mustOpen(t, nil, "s", 0)
	l.Append(RecPut, 1, 1)
	l.Append(RecPut, 2, 2)
	st := l.Stats()
	if st.LastSeq != 2 || st.BaseSeq != 1 || st.Records != 2 || st.Bytes != 2*RecordSize || st.Dirty != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if l.Name() != "s" {
		t.Fatalf("name = %q", l.Name())
	}
}

// failingStore wraps a Store with an injectable Save failure, modeling a
// log device that stops persisting.
type failingStore struct {
	pmem.Store
	fail bool
}

func (s *failingStore) Save(meta pmem.Meta, data []byte) error {
	if s.fail {
		return errors.New("injected save failure")
	}
	return s.Store.Save(meta, data)
}

// TestLogSinceDurable: shipping is durable-only. A pull flushes pending
// appends and serves them; when the store fails, only the already-durable
// prefix ships, so a reload after power loss always retains everything a
// replica has ever been sent.
func TestLogSinceDurable(t *testing.T) {
	fs := &failingStore{Store: pmem.NewMemStore()}
	l := mustOpen(t, fs, "s", 0) // no flush cadence: pulls drive durability
	for i := uint64(1); i <= 6; i++ {
		l.Append(RecPut, i, i)
	}
	if got := l.FlushedSeq(); got != 0 {
		t.Fatalf("flushed = %d before any flush", got)
	}
	// The local replay read serves the volatile tail; the shipping read
	// flushes first, then serves the (now durable) records.
	if got := l.Since(0, 0); len(got) != 6 {
		t.Fatalf("Since: %d records", len(got))
	}
	if got := l.SinceDurable(0, 0); len(got) != 6 {
		t.Fatalf("SinceDurable: %d records", len(got))
	}
	if l.FlushedSeq() != 6 {
		t.Fatalf("flushed = %d after shipping", l.FlushedSeq())
	}

	// With the store failing, new appends are withheld from shipping: a
	// replica must never apply a record a reload would lose.
	fs.fail = true
	l.Append(RecPut, 7, 7)
	l.Append(RecPut, 8, 8)
	if got := l.SinceDurable(6, 0); got != nil {
		t.Fatalf("shipped unflushable records: %+v", got)
	}
	if got := l.SinceDurable(0, 0); len(got) != 6 || got[5].Seq != 6 {
		t.Fatalf("durable prefix: %d records", len(got))
	}
	if l.Stats().FlushErrors == 0 {
		t.Fatal("failed flush not counted")
	}

	// The store heals: the tail ships on the next pull, and a reload comes
	// back exactly at the shipped watermark.
	fs.fail = false
	if got := l.SinceDurable(6, 0); len(got) != 2 || got[1].Seq != 8 {
		t.Fatalf("after heal: %+v", got)
	}
	if err := l.Reload(); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 8 || l.FlushedSeq() != 8 {
		t.Fatalf("reloaded: last=%d flushed=%d", l.LastSeq(), l.FlushedSeq())
	}
}

func TestLogResetTo(t *testing.T) {
	store := pmem.NewMemStore()
	l := mustOpen(t, store, "r", 0)
	for i := uint64(1); i <= 8; i++ {
		l.Append(RecPut, i, i)
	}
	if err := l.ResetTo(20); err != nil {
		t.Fatalf("ResetTo: %v", err)
	}
	if l.Len() != 0 || l.LastSeq() != 20 || l.BaseSeq() != 0 {
		t.Fatalf("after reset: len=%d last=%d base=%d", l.Len(), l.LastSeq(), l.BaseSeq())
	}
	// The sequence space restarts at the watermark: 21 is the only legal
	// next record.
	if err := l.AppendAt(Record{Seq: 22, Key: 1, Op: RecPut}); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap after reset: %v", err)
	}
	if err := l.AppendAt(Record{Seq: 21, Key: 1, Op: RecPut}); err != nil {
		t.Fatalf("append at watermark+1: %v", err)
	}
	// The emptied image is durable: a reload sees the reset, not the old
	// records.
	if err := l.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	l2 := mustOpen(t, store, "r", 0)
	if l2.Len() != 1 || l2.LastSeq() != 21 || l2.BaseSeq() != 21 {
		t.Fatalf("after reload: len=%d last=%d base=%d", l2.Len(), l2.LastSeq(), l2.BaseSeq())
	}
}
