package parity

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"reflect"
	"testing"
)

// fill produces deterministic pseudo-random content so corruption is
// guaranteed to change checksums (an all-zero image hides zeroing faults).
func fill(n int, seed uint64) []byte {
	buf := make([]byte, n)
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
	return buf
}

func testPolicy() Policy { return Policy{Enabled: true, PageSize: 64, RangeletPages: 4} }

func TestBuildGeometry(t *testing.T) {
	cases := []struct {
		size, wantPages, wantRangelets int
	}{
		{0, 0, 0},
		{1, 1, 1},
		{64, 1, 1},
		{65, 2, 1},
		{64 * 4, 4, 1},
		{64*4 + 1, 5, 2},
		{64 * 9, 9, 3},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("size=%d", tc.size), func(t *testing.T) {
			s := Build(fill(tc.size, 7), testPolicy())
			if s.Pages() != tc.wantPages || s.Rangelets() != tc.wantRangelets {
				t.Fatalf("size %d: got %d pages / %d rangelets, want %d / %d",
					tc.size, s.Pages(), s.Rangelets(), tc.wantPages, tc.wantRangelets)
			}
			if got := testPolicy().PagesFor(tc.size); got != tc.wantPages {
				t.Fatalf("PagesFor(%d) = %d, want %d", tc.size, got, tc.wantPages)
			}
		})
	}
}

func TestPolicyDefaults(t *testing.T) {
	d := Default()
	if !d.Enabled || d.PageSize != DefaultPageSize || d.RangeletPages != DefaultRangeletPages {
		t.Fatalf("unexpected default policy: %+v", d)
	}
	// Zero values normalize to the defaults.
	s := Build(fill(DefaultPageSize+1, 1), Policy{Enabled: true})
	if s.PageSize != DefaultPageSize || s.RangeletPages != DefaultRangeletPages {
		t.Fatalf("zero policy not normalized: %+v", s)
	}
}

func TestNames(t *testing.T) {
	sc := SidecarName("bench")
	if sc != "bench@parity" || !IsSidecar(sc) || IsSidecar("bench") {
		t.Fatalf("sidecar naming broken: %q", sc)
	}
	pool, ok := PoolName(sc)
	if !ok || pool != "bench" {
		t.Fatalf("PoolName(%q) = %q, %v", sc, pool, ok)
	}
	if _, ok := PoolName("bench"); ok {
		t.Fatalf("PoolName accepted a non-sidecar name")
	}
}

// Delta maintenance: an incremental Update must land in exactly the same
// state as a full rebuild of the new image, and its cost must be bounded
// by the number of dirty pages.
func TestUpdateDeltaMatchesRebuild(t *testing.T) {
	pol := testPolicy()
	cases := []struct {
		name       string
		dirty      []int // page indices to mutate
		wantDirty  int
		wantParity int // distinct rangelets touched
	}{
		{"single-page", []int{2}, 1, 1},
		{"two-pages-one-rangelet", []int{0, 3}, 2, 1},
		{"two-rangelets", []int{1, 6}, 2, 2},
		{"every-rangelet", []int{0, 4, 8}, 3, 3},
		{"partial-last-page", []int{9}, 1, 1},
		{"no-change", nil, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := fill(64*9+17, 3) // 10 pages (last partial), 3 rangelets
			s := Build(old, pol)
			next := append([]byte(nil), old...)
			for _, pg := range tc.dirty {
				next[pg*pol.PageSize] ^= 0xff
			}
			st := s.Update(old, next)
			if st.Rebuilt || st.DirtyPages != tc.wantDirty || st.ParityPageWrites != tc.wantParity {
				t.Fatalf("stats %+v, want dirty=%d parity=%d", st, tc.wantDirty, tc.wantParity)
			}
			want := Build(next, pol)
			if !reflect.DeepEqual(s, want) {
				t.Fatalf("delta update diverged from full rebuild")
			}
		})
	}
}

func TestUpdateSizeChangeRebuilds(t *testing.T) {
	pol := testPolicy()
	old := fill(64*8, 5)
	s := Build(old, pol)
	next := fill(64*12, 6)
	st := s.Update(old, next)
	if !st.Rebuilt {
		t.Fatalf("size change should force a rebuild, got %+v", st)
	}
	if !reflect.DeepEqual(s, Build(next, pol)) {
		t.Fatalf("rebuild state mismatch")
	}
}

// Rangelet reconstruction: corrupting any single data page — including
// the zero-padded partial tail page — must be repaired back to the
// original bytes, and a corrupted parity page must be rebuilt from data.
func TestRepairEverySinglePage(t *testing.T) {
	pol := testPolicy()
	orig := fill(64*9+17, 11) // 10 pages, 3 rangelets
	s0 := Build(orig, pol)
	for pg := 0; pg < s0.Pages(); pg++ {
		t.Run(fmt.Sprintf("data-page-%d", pg), func(t *testing.T) {
			s := Build(orig, pol)
			data := append([]byte(nil), orig...)
			lo := pg * pol.PageSize
			hi := lo + pol.PageSize
			if hi > len(data) {
				hi = len(data)
			}
			for i := lo; i < hi; i++ {
				data[i] ^= 0x5a
			}
			rep := s.Repair(data)
			if !rep.Recovered() || len(rep.Repaired) != 1 || rep.Repaired[0] != pg {
				t.Fatalf("page %d not repaired: %+v", pg, rep)
			}
			if !bytes.Equal(data, orig) {
				t.Fatalf("page %d: repaired image differs from original", pg)
			}
		})
	}
	for r := 0; r < s0.Rangelets(); r++ {
		t.Run(fmt.Sprintf("parity-page-%d", r), func(t *testing.T) {
			s := Build(orig, pol)
			data := append([]byte(nil), orig...)
			s.Parity[r][5] ^= 0x80
			rep := s.Repair(data)
			if !rep.Recovered() || len(rep.ParityRebuilt) != 1 || rep.ParityRebuilt[0] != r {
				t.Fatalf("parity %d not rebuilt: %+v", r, rep)
			}
			if !reflect.DeepEqual(s, Build(orig, pol)) {
				t.Fatalf("parity %d: rebuilt state differs from clean build", r)
			}
		})
	}
}

// Multiple bad pages in *different* rangelets are all repaired in one pass
// — the whole point of enumerating every bad region instead of stopping
// at the first mismatch.
func TestRepairAcrossRangelets(t *testing.T) {
	pol := testPolicy()
	orig := fill(64*12, 13) // 3 rangelets
	s := Build(orig, pol)
	data := append([]byte(nil), orig...)
	for _, pg := range []int{1, 5, 10} { // one per rangelet
		data[pg*pol.PageSize+3] ^= 0x01
	}
	if bad := s.Verify(data); len(bad) != 3 {
		t.Fatalf("Verify found %v, want 3 bad pages", bad)
	}
	rep := s.Repair(data)
	if !rep.Recovered() || len(rep.Repaired) != 3 {
		t.Fatalf("cross-rangelet repair failed: %+v", rep)
	}
	if !bytes.Equal(data, orig) {
		t.Fatalf("repaired image differs from original")
	}
}

// Data+parity overlap and multi-page damage inside one rangelet must be
// reported as explicit unrecoverable overlaps, and the pass must not
// scribble garbage into the image.
func TestRepairUnrecoverableOverlap(t *testing.T) {
	pol := testPolicy()
	cases := []struct {
		name      string
		dataPages []int
		parity    []int
		wantBad   []int
		wantPBad  bool
	}{
		{"two-data-pages-same-rangelet", []int{0, 2}, nil, []int{0, 2}, false},
		{"data-plus-parity", []int{5}, []int{1}, []int{5}, true},
		{"three-data-pages", []int{4, 5, 6}, nil, []int{4, 5, 6}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := fill(64*8, 17) // 2 rangelets
			s := Build(orig, pol)
			data := append([]byte(nil), orig...)
			for _, pg := range tc.dataPages {
				data[pg*pol.PageSize] ^= 0x42
			}
			for _, r := range tc.parity {
				s.Parity[r][0] ^= 0x42
			}
			rep := s.Repair(data)
			if rep.Recovered() || len(rep.Unrecoverable) != 1 {
				t.Fatalf("expected one unrecoverable rangelet, got %+v", rep)
			}
			ov := rep.Unrecoverable[0]
			if !reflect.DeepEqual(ov.BadPages, tc.wantBad) || ov.ParityBad != tc.wantPBad {
				t.Fatalf("overlap %+v, want pages %v parityBad=%v", ov, tc.wantBad, tc.wantPBad)
			}
			if ov.String() == "" {
				t.Fatalf("empty overlap description")
			}
		})
	}
}

// An unrecoverable rangelet must not block repair of a recoverable one in
// the same image.
func TestRepairMixedVerdicts(t *testing.T) {
	pol := testPolicy()
	orig := fill(64*8, 19) // 2 rangelets
	s := Build(orig, pol)
	data := append([]byte(nil), orig...)
	data[0] ^= 0x01                // rangelet 0, page 0
	data[1*pol.PageSize] ^= 0x01   // rangelet 0, page 1 -> unrecoverable
	data[5*pol.PageSize+7] ^= 0x01 // rangelet 1, single page -> repairable
	rep := s.Repair(data)
	if len(rep.Unrecoverable) != 1 || rep.Unrecoverable[0].Rangelet != 0 {
		t.Fatalf("rangelet 0 should be unrecoverable: %+v", rep)
	}
	if len(rep.Repaired) != 1 || rep.Repaired[0] != 5 {
		t.Fatalf("rangelet 1 page 5 should be repaired: %+v", rep)
	}
	if !bytes.Equal(data[5*pol.PageSize:6*pol.PageSize], orig[5*pol.PageSize:6*pol.PageSize]) {
		t.Fatalf("page 5 not restored")
	}
}

// A torn (truncated) image reads as zero-extended; pages that held
// content past the tear are flagged, and a single torn page repairs.
func TestRepairTornTail(t *testing.T) {
	pol := testPolicy()
	orig := fill(64*4, 23) // one rangelet
	s := Build(orig, pol)
	torn := append([]byte(nil), orig[:64*3+10]...) // page 3 torn mid-way
	if bad := s.Verify(torn); len(bad) != 1 || bad[0] != 3 {
		t.Fatalf("Verify(torn) = %v, want [3]", bad)
	}
	data := make([]byte, s.ImageSize) // zero-extend, as the pmem caller does
	copy(data, torn)
	rep := s.Repair(data)
	if !rep.Recovered() || !bytes.Equal(data, orig) {
		t.Fatalf("torn tail page not reconstructed: %+v", rep)
	}
}

func TestDescribes(t *testing.T) {
	data := fill(64*4, 29)
	s := Build(data, testPolicy())
	if !s.Describes(ImageSum(data), len(data)) {
		t.Fatalf("sidecar should describe its own image")
	}
	if s.Describes(ImageSum(data)+1, len(data)) || s.Describes(ImageSum(data), len(data)-1) {
		t.Fatalf("stale sidecar passed the staleness check")
	}
	var nilSC *Sidecar
	if nilSC.Describes(0, 0) {
		t.Fatalf("nil sidecar claims to describe an image")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 64 * 4, 64*9 + 17} {
		data := fill(size, 31)
		s := Build(data, testPolicy())
		got, err := Decode(s.Encode())
		if err != nil {
			t.Fatalf("size %d: decode: %v", size, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("size %d: round-trip mismatch", size)
		}
	}
}

// A damaged sidecar must fail Decode loudly — it is then treated as
// missing, never trusted for repair.
func TestDecodeRejectsDamage(t *testing.T) {
	blob := Build(fill(64*8, 37), testPolicy()).Encode()
	cases := []struct {
		name string
		blob []byte
	}{
		{"empty", nil},
		{"truncated-header", blob[:10]},
		{"truncated-body", blob[:len(blob)-5]},
		{"bad-magic", append([]byte("XXXXXXXX"), blob[8:]...)},
		{"flipped-bit", func() []byte {
			b := append([]byte(nil), blob...)
			b[len(b)/2] ^= 0x10
			return b
		}()},
		{"trailing-garbage", append(append([]byte(nil), blob...), 0)},
		{"bad-geometry", func() []byte {
			// Zero the page-size field and re-seal the checksum: the
			// geometry check itself must reject it.
			b := append([]byte(nil), blob...)
			for i := 8; i < 12; i++ {
				b[i] = 0
			}
			s2 := b[:len(b)-4]
			sum := crcOf(s2)
			b[len(b)-4] = byte(sum)
			b[len(b)-3] = byte(sum >> 8)
			b[len(b)-2] = byte(sum >> 16)
			b[len(b)-1] = byte(sum >> 24)
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.blob); err == nil {
				t.Fatalf("damaged sidecar decoded without error")
			}
		})
	}
}

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
