// Package parity is the media-fault-tolerance layer under pmem.
//
// A pool image is divided into fixed-size pages; each page carries a CRC32
// checksum, and every rangelet of N consecutive data pages shares one XOR
// parity page (the Pangolin layout). The checksum localizes a corrupted
// page; XOR-ing the rangelet's surviving pages with the parity page
// reconstructs it. One bad page per rangelet is recoverable; corruption
// that hits two pages of the same rangelet — including a data page and its
// parity page together — is reported as an explicit unrecoverable overlap.
//
// Parity is maintained incrementally: on flush the caller hands over the
// previous image and only the pages whose checksum changed are folded into
// their rangelet's parity via old XOR new, so write amplification stays
// bounded by ceil(dirty pages / rangelet) extra parity-page writes rather
// than a full-image rebuild.
//
// The whole table — geometry, per-page CRCs, parity pages — serializes
// into a self-checksummed sidecar blob stored next to the pool image. The
// sidecar records the CRC64 of the image it describes, so a sidecar left
// stale by a crash between the data flush and the parity flush is detected
// and never used for repair.
package parity

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"strings"
)

const (
	// DefaultPageSize is the repair granule. 4 KiB matches both the
	// pool mapping granule (mem.PageSize) and real PM media ECC blocks.
	DefaultPageSize = 4096
	// DefaultRangeletPages is the number of data pages sharing one
	// parity page: 1/8 space overhead, single-page reconstruction.
	DefaultRangeletPages = 8

	// SidecarSuffix marks a stored image as a parity sidecar rather
	// than a pool. '@' cannot appear in user pool names in practice and
	// keeps sidecars adjacent to their pool in sorted listings.
	SidecarSuffix = "@parity"

	sidecarMagic = "NVPARSC1"
)

var crc64Table = crc64.MakeTable(crc64.ECMA)

// Policy says whether and how parity is maintained for a registry's pools.
// The zero value disables parity entirely.
type Policy struct {
	Enabled       bool
	PageSize      int // repair granule in bytes; DefaultPageSize if 0
	RangeletPages int // data pages per parity page; DefaultRangeletPages if 0
}

// Default returns the standard enabled policy: 4 KiB pages, 8-page rangelets.
func Default() Policy {
	return Policy{Enabled: true, PageSize: DefaultPageSize, RangeletPages: DefaultRangeletPages}
}

func (p Policy) normalized() Policy {
	if p.PageSize <= 0 {
		p.PageSize = DefaultPageSize
	}
	if p.RangeletPages <= 0 {
		p.RangeletPages = DefaultRangeletPages
	}
	return p
}

// PagesFor returns how many data pages an image of the given size spans.
func (p Policy) PagesFor(size int) int {
	p = p.normalized()
	return (size + p.PageSize - 1) / p.PageSize
}

// SidecarName returns the store image name holding the parity sidecar for
// the named pool.
func SidecarName(pool string) string { return pool + SidecarSuffix }

// IsSidecar reports whether a stored image name is a parity sidecar.
func IsSidecar(name string) bool { return strings.HasSuffix(name, SidecarSuffix) }

// PoolName maps a sidecar image name back to its pool; ok is false when
// the name is not a sidecar.
func PoolName(sidecar string) (pool string, ok bool) {
	if !IsSidecar(sidecar) {
		return "", false
	}
	return strings.TrimSuffix(sidecar, SidecarSuffix), true
}

// ImageSum is the checksum a sidecar records for the image it describes.
// It matches pmem's whole-image checksum (CRC64/ECMA) so staleness checks
// compare directly against the image's stored metadata.
func ImageSum(data []byte) uint64 { return crc64.Checksum(data, crc64Table) }

// Sidecar is the in-memory parity table for one pool image.
type Sidecar struct {
	PageSize      int
	RangeletPages int
	ImageSize     int      // length of the described image in bytes
	Image         uint64   // ImageSum of the described image (staleness check)
	CRCs          []uint32 // per data page
	ParityCRCs    []uint32 // per parity page (self-check: parity can rot too)
	Parity        [][]byte // one PageSize buffer per rangelet
}

// UpdateStats reports the cost of one incremental Update call; the ratio
// ParityPageWrites/DirtyPages is the parity write amplification.
type UpdateStats struct {
	Rebuilt          bool // geometry changed; full rebuild instead of delta
	DirtyPages       int  // data pages whose checksum changed
	ParityPageWrites int  // parity pages rewritten (distinct rangelets touched)
}

// Report is the outcome of one Repair pass over an image.
type Report struct {
	BadPages      []int     // data pages that failed their CRC (all of them, one pass)
	BadParity     []int     // parity pages that failed their own CRC
	Repaired      []int     // data pages reconstructed from parity
	ParityRebuilt []int     // parity pages recomputed from intact data
	Unrecoverable []Overlap // rangelets where corruption exceeds parity's reach
}

// Overlap describes a rangelet that parity cannot repair: either two or
// more data pages are bad, or a bad data page overlaps a bad parity page.
type Overlap struct {
	Rangelet  int   // rangelet index
	BadPages  []int // corrupt data pages in the rangelet
	ParityBad bool  // the rangelet's parity page is corrupt too
}

func (o Overlap) String() string {
	if o.ParityBad {
		return fmt.Sprintf("rangelet %d: data pages %v and parity page both corrupt", o.Rangelet, o.BadPages)
	}
	return fmt.Sprintf("rangelet %d: %d data pages corrupt %v", o.Rangelet, len(o.BadPages), o.BadPages)
}

// Recovered reports whether the pass left the image fully consistent.
func (r *Report) Recovered() bool { return r != nil && len(r.Unrecoverable) == 0 }

func (s *Sidecar) policy() Policy {
	return Policy{Enabled: true, PageSize: s.PageSize, RangeletPages: s.RangeletPages}
}

// Pages returns the number of data pages the sidecar covers.
func (s *Sidecar) Pages() int { return len(s.CRCs) }

// Rangelets returns the number of parity pages the sidecar maintains.
func (s *Sidecar) Rangelets() int { return len(s.Parity) }

// Describes reports whether the sidecar was built against an image with
// the given checksum and size — the staleness check.
func (s *Sidecar) Describes(sum uint64, size int) bool {
	return s != nil && s.Image == sum && s.ImageSize == size
}

// page returns the i'th page of data, zero-padded to PageSize when the
// image does not divide evenly. padded is true when a copy was made.
func (s *Sidecar) page(data []byte, i int) (pg []byte, padded bool) {
	lo := i * s.PageSize
	hi := lo + s.PageSize
	if hi <= len(data) {
		return data[lo:hi], false
	}
	buf := make([]byte, s.PageSize)
	copy(buf, data[lo:])
	return buf, true
}

func xorInto(dst, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

// Build computes a full parity table for data under the given policy.
func Build(data []byte, pol Policy) *Sidecar {
	pol = pol.normalized()
	nPages := pol.PagesFor(len(data))
	nRange := (nPages + pol.RangeletPages - 1) / pol.RangeletPages
	s := &Sidecar{
		PageSize:      pol.PageSize,
		RangeletPages: pol.RangeletPages,
		ImageSize:     len(data),
		Image:         ImageSum(data),
		CRCs:          make([]uint32, nPages),
		ParityCRCs:    make([]uint32, nRange),
		Parity:        make([][]byte, nRange),
	}
	for r := range s.Parity {
		s.Parity[r] = make([]byte, pol.PageSize)
	}
	for i := 0; i < nPages; i++ {
		pg, _ := s.page(data, i)
		s.CRCs[i] = crc32.ChecksumIEEE(pg)
		xorInto(s.Parity[i/pol.RangeletPages], pg)
	}
	for r := range s.Parity {
		s.ParityCRCs[r] = crc32.ChecksumIEEE(s.Parity[r])
	}
	return s
}

// Update folds the difference between old (the image this sidecar
// currently describes) and next into the parity table incrementally:
// only pages whose checksum changed are XOR-ed (old then new) into their
// rangelet's parity page. If the image size changed the table is rebuilt
// from scratch instead.
func (s *Sidecar) Update(old, next []byte) UpdateStats {
	if len(old) != s.ImageSize || len(next) != s.ImageSize {
		*s = *Build(next, s.policy())
		return UpdateStats{Rebuilt: true}
	}
	var st UpdateStats
	touched := make(map[int]struct{})
	for i := range s.CRCs {
		pg, _ := s.page(next, i)
		c := crc32.ChecksumIEEE(pg)
		if c == s.CRCs[i] {
			continue
		}
		opg, _ := s.page(old, i)
		r := i / s.RangeletPages
		xorInto(s.Parity[r], opg)
		xorInto(s.Parity[r], pg)
		s.CRCs[i] = c
		st.DirtyPages++
		touched[r] = struct{}{}
	}
	for r := range touched {
		s.ParityCRCs[r] = crc32.ChecksumIEEE(s.Parity[r])
	}
	st.ParityPageWrites = len(touched)
	s.Image = ImageSum(next)
	return st
}

// Verify enumerates every data page whose checksum no longer matches —
// all bad regions in one pass, so a repair decision can be made per
// rangelet instead of stopping at the first mismatch. data shorter than
// ImageSize (a torn image) is treated as zero-extended.
func (s *Sidecar) Verify(data []byte) []int {
	var bad []int
	for i := range s.CRCs {
		pg := s.verifyPage(data, i)
		if crc32.ChecksumIEEE(pg) != s.CRCs[i] {
			bad = append(bad, i)
		}
	}
	return bad
}

// verifyPage is like page but tolerates data shorter than ImageSize.
func (s *Sidecar) verifyPage(data []byte, i int) []byte {
	lo := i * s.PageSize
	hi := lo + s.PageSize
	if hi <= len(data) {
		return data[lo:hi]
	}
	buf := make([]byte, s.PageSize)
	if lo < len(data) {
		copy(buf, data[lo:])
	}
	return buf
}

// BadParity enumerates parity pages that fail their own checksum.
func (s *Sidecar) BadParity() []int {
	var bad []int
	for r := range s.Parity {
		if crc32.ChecksumIEEE(s.Parity[r]) != s.ParityCRCs[r] {
			bad = append(bad, r)
		}
	}
	return bad
}

// Repair verifies data against the sidecar and reconstructs what parity
// can reach, in place. data must be ImageSize long (the caller normalizes
// torn images by zero-extension). Per rangelet:
//
//   - one bad data page, parity intact  -> reconstruct the page by XOR
//   - no bad data, parity bad           -> recompute the parity page
//   - anything more                     -> unrecoverable overlap, reported
//
// After reconstruction each repaired page is re-checked against its
// stored CRC; a mismatch (parity silently stale) demotes the rangelet to
// unrecoverable rather than writing garbage.
func (s *Sidecar) Repair(data []byte) *Report {
	rep := &Report{
		BadPages:  s.Verify(data),
		BadParity: s.BadParity(),
	}
	parityBad := make(map[int]bool, len(rep.BadParity))
	for _, r := range rep.BadParity {
		parityBad[r] = true
	}
	byRangelet := make(map[int][]int)
	for _, i := range rep.BadPages {
		r := i / s.RangeletPages
		byRangelet[r] = append(byRangelet[r], i)
	}

	for r := 0; r < s.Rangelets(); r++ {
		bad := byRangelet[r]
		switch {
		case len(bad) == 0 && !parityBad[r]:
			// clean rangelet
		case len(bad) == 0 && parityBad[r]:
			s.rebuildParity(data, r)
			rep.ParityRebuilt = append(rep.ParityRebuilt, r)
		case len(bad) == 1 && !parityBad[r]:
			if s.reconstruct(data, bad[0]) {
				rep.Repaired = append(rep.Repaired, bad[0])
			} else {
				rep.Unrecoverable = append(rep.Unrecoverable, Overlap{Rangelet: r, BadPages: bad})
			}
		default:
			rep.Unrecoverable = append(rep.Unrecoverable, Overlap{
				Rangelet: r, BadPages: bad, ParityBad: parityBad[r],
			})
		}
	}
	return rep
}

// reconstruct rebuilds data page i from its rangelet's parity and the
// other (intact) pages, writing the result in place. Returns false when
// the reconstructed bytes fail the stored CRC.
func (s *Sidecar) reconstruct(data []byte, i int) bool {
	r := i / s.RangeletPages
	buf := make([]byte, s.PageSize)
	copy(buf, s.Parity[r])
	lo := r * s.RangeletPages
	hi := lo + s.RangeletPages
	if hi > s.Pages() {
		hi = s.Pages()
	}
	for j := lo; j < hi; j++ {
		if j == i {
			continue
		}
		pg, _ := s.page(data, j)
		xorInto(buf, pg)
	}
	if crc32.ChecksumIEEE(buf) != s.CRCs[i] {
		return false
	}
	end := (i + 1) * s.PageSize
	if end > len(data) {
		end = len(data)
	}
	copy(data[i*s.PageSize:end], buf)
	return true
}

// rebuildParity recomputes rangelet r's parity page from (intact) data.
func (s *Sidecar) rebuildParity(data []byte, r int) {
	buf := make([]byte, s.PageSize)
	lo := r * s.RangeletPages
	hi := lo + s.RangeletPages
	if hi > s.Pages() {
		hi = s.Pages()
	}
	for j := lo; j < hi; j++ {
		pg, _ := s.page(data, j)
		xorInto(buf, pg)
	}
	s.Parity[r] = buf
	s.ParityCRCs[r] = crc32.ChecksumIEEE(buf)
}

// Encode serializes the sidecar into a self-checksummed blob:
//
//	magic | pageSize | rangeletPages | imageSize | imageSum |
//	nPages | nRangelets | page CRCs | parity CRCs | parity pages | blob CRC32
//
// all integers little-endian. The trailing CRC32 covers everything before
// it, so a torn or bit-flipped sidecar fails Decode and is treated as
// missing rather than trusted.
func (s *Sidecar) Encode() []byte {
	n := len(sidecarMagic) + 4 + 4 + 8 + 8 + 4 + 4 +
		4*len(s.CRCs) + 4*len(s.ParityCRCs) + s.PageSize*len(s.Parity) + 4
	buf := bytes.NewBuffer(make([]byte, 0, n))
	buf.WriteString(sidecarMagic)
	le := binary.LittleEndian
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) { le.PutUint32(u32[:], v); buf.Write(u32[:]) }
	put64 := func(v uint64) { le.PutUint64(u64[:], v); buf.Write(u64[:]) }
	put32(uint32(s.PageSize))
	put32(uint32(s.RangeletPages))
	put64(uint64(s.ImageSize))
	put64(s.Image)
	put32(uint32(len(s.CRCs)))
	put32(uint32(len(s.Parity)))
	for _, c := range s.CRCs {
		put32(c)
	}
	for _, c := range s.ParityCRCs {
		put32(c)
	}
	for _, p := range s.Parity {
		buf.Write(p)
	}
	put32(crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// maxSidecarDim bounds decoded geometry so a corrupt length field cannot
// drive an oversized allocation before the CRC check.
const maxSidecarDim = 1 << 24

// Decode parses a sidecar blob, rejecting anything that is truncated,
// oversized, internally inconsistent, or fails the trailing checksum.
func Decode(blob []byte) (*Sidecar, error) {
	head := len(sidecarMagic) + 4 + 4 + 8 + 8 + 4 + 4
	if len(blob) < head+4 {
		return nil, fmt.Errorf("parity: sidecar truncated (%d bytes)", len(blob))
	}
	if string(blob[:len(sidecarMagic)]) != sidecarMagic {
		return nil, fmt.Errorf("parity: bad sidecar magic")
	}
	le := binary.LittleEndian
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	if crc32.ChecksumIEEE(body) != le.Uint32(tail) {
		return nil, fmt.Errorf("parity: sidecar checksum mismatch")
	}
	off := len(sidecarMagic)
	pageSize := int(le.Uint32(blob[off:]))
	rangelet := int(le.Uint32(blob[off+4:]))
	imageSize := int(le.Uint64(blob[off+8:]))
	imageSum := le.Uint64(blob[off+16:])
	nPages := int(le.Uint32(blob[off+24:]))
	nRange := int(le.Uint32(blob[off+28:]))
	if pageSize <= 0 || pageSize > maxSidecarDim || rangelet <= 0 ||
		nPages < 0 || nPages > maxSidecarDim || nRange < 0 || nRange > maxSidecarDim {
		return nil, fmt.Errorf("parity: sidecar geometry out of range")
	}
	wantRange := (nPages + rangelet - 1) / rangelet
	if nRange != wantRange {
		return nil, fmt.Errorf("parity: sidecar rangelet count %d, want %d for %d pages", nRange, wantRange, nPages)
	}
	want := head + 4*nPages + 4*nRange + pageSize*nRange + 4
	if len(blob) != want {
		return nil, fmt.Errorf("parity: sidecar length %d, want %d", len(blob), want)
	}
	s := &Sidecar{
		PageSize:      pageSize,
		RangeletPages: rangelet,
		ImageSize:     imageSize,
		Image:         imageSum,
		CRCs:          make([]uint32, nPages),
		ParityCRCs:    make([]uint32, nRange),
		Parity:        make([][]byte, nRange),
	}
	off = head
	for i := range s.CRCs {
		s.CRCs[i] = le.Uint32(blob[off:])
		off += 4
	}
	for i := range s.ParityCRCs {
		s.ParityCRCs[i] = le.Uint32(blob[off:])
		off += 4
	}
	for i := range s.Parity {
		s.Parity[i] = append([]byte(nil), blob[off:off+pageSize]...)
		off += pageSize
	}
	return s, nil
}
