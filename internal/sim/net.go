package sim

import (
	"net"
	"sync"
)

// Net is the simulator's partitionable network. Nodes still talk over
// real loopback TCP (so the server's wire path is exercised unchanged),
// but every dial in the simulation goes through Net.Dialer, which maps
// the target address back to a node name and consults a directed
// link-blocking table. Blocking a link severs the live connections that
// were dialed across it and makes new dials fail with a refused-style
// error, which is exactly what the retry/fencing machinery sees during
// a real partition.
//
// Blocking is directed: Block("a","b") stops traffic on connections
// dialed from a to b while leaving b→a dials alone, which is how the
// asymmetric (one-way) partition schedules are built. A full partition
// blocks both directions.
type Net struct {
	mu    sync.Mutex
	addrs map[string]string // node name -> listen address
	nodes map[string]string // listen address -> node name
	// blocked holds directed edges "from\x00to".
	blocked map[string]bool
	// conns tracks live wrapped connections per directed edge so Block
	// can sever them.
	conns map[string]map[*simConn]bool
}

// NewNet returns an empty network registry.
func NewNet() *Net {
	return &Net{
		addrs:   make(map[string]string),
		nodes:   make(map[string]string),
		blocked: make(map[string]bool),
		conns:   make(map[string]map[*simConn]bool),
	}
}

func edgeKey(from, to string) string { return from + "\x00" + to }

// Register binds a node name to its listen address. Re-registering after
// a crash/restart (same name, possibly new address) replaces the old
// binding.
func (n *Net) Register(node, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.addrs[node]; ok {
		delete(n.nodes, old)
	}
	n.addrs[node] = addr
	n.nodes[addr] = node
}

// Addr returns the registered listen address for a node.
func (n *Net) Addr(node string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addrs[node]
}

// Block cuts the directed link from→to: live connections dialed across
// it are closed and new dials fail until Unblock.
func (n *Net) Block(from, to string) {
	n.mu.Lock()
	key := edgeKey(from, to)
	n.blocked[key] = true
	var sever []*simConn
	for c := range n.conns[key] {
		sever = append(sever, c)
	}
	n.mu.Unlock()
	for _, c := range sever {
		c.Conn.Close()
	}
}

// Unblock restores the directed link from→to.
func (n *Net) Unblock(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, edgeKey(from, to))
}

// Partition cuts both directions between a and b.
func (n *Net) Partition(a, b string) {
	n.Block(a, b)
	n.Block(b, a)
}

// Heal restores both directions between a and b.
func (n *Net) Heal(a, b string) {
	n.Unblock(a, b)
	n.Unblock(b, a)
}

// HealAll clears every blocked link.
func (n *Net) HealAll() {
	n.mu.Lock()
	n.blocked = make(map[string]bool)
	n.mu.Unlock()
}

// Blocked reports whether the directed link from→to is currently cut.
func (n *Net) Blocked(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.blocked[edgeKey(from, to)]
}

// Dialer returns a dial function that attributes outbound connections to
// the named node and enforces link blocking. It has the same signature
// the server's replication and cluster planes accept for dial injection.
func (n *Net) Dialer(from string) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		n.mu.Lock()
		to, known := n.nodes[addr]
		key := edgeKey(from, to)
		cut := known && n.blocked[key]
		n.mu.Unlock()
		if cut {
			return nil, &net.OpError{Op: "dial", Net: "tcp",
				Addr: &net.TCPAddr{}, Err: errLinkDown}
		}
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if !known {
			return raw, nil
		}
		c := &simConn{Conn: raw, net: n, key: key}
		n.mu.Lock()
		set := n.conns[key]
		if set == nil {
			set = make(map[*simConn]bool)
			n.conns[key] = set
		}
		set[c] = true
		n.mu.Unlock()
		return c, nil
	}
}

type linkDownError struct{}

func (linkDownError) Error() string   { return "sim: link down" }
func (linkDownError) Timeout() bool   { return false }
func (linkDownError) Temporary() bool { return true }

var errLinkDown = linkDownError{}

// simConn wraps a real TCP connection with a link-state check so a
// Block issued after the handshake still kills in-flight traffic.
type simConn struct {
	net.Conn
	net *Net
	key string
}

func (c *simConn) Read(p []byte) (int, error) {
	if c.cut() {
		return 0, errLinkDown
	}
	return c.Conn.Read(p)
}

func (c *simConn) Write(p []byte) (int, error) {
	if c.cut() {
		return 0, errLinkDown
	}
	return c.Conn.Write(p)
}

func (c *simConn) Close() error {
	c.net.mu.Lock()
	if set := c.net.conns[c.key]; set != nil {
		delete(set, c)
	}
	c.net.mu.Unlock()
	return c.Conn.Close()
}

func (c *simConn) cut() bool {
	c.net.mu.Lock()
	defer c.net.mu.Unlock()
	if c.net.blocked[c.key] {
		return true
	}
	return false
}
