package linz

import (
	"math/rand"
	"testing"
)

// op is a compact history-table constructor.
func op(k Kind, key string, v uint64, found bool, call, ret int, o Outcome) Op {
	return Op{Kind: k, Key: key, Value: v, Found: found, Call: call, Return: ret, Outcome: o}
}

func TestCheckTable(t *testing.T) {
	cases := []struct {
		name string
		h    History
		ok   bool
	}{
		{
			name: "sequential put then read",
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 1, Ok),
				op(Get, "x", 1, true, 2, 3, Ok),
			}},
			ok: true,
		},
		{
			name: "read of value never written",
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 1, Ok),
				op(Get, "x", 2, true, 2, 3, Ok),
			}},
			ok: false,
		},
		{
			name: "stale read after overwrite",
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 1, Ok),
				op(Put, "x", 2, false, 2, 3, Ok),
				op(Get, "x", 1, true, 4, 5, Ok),
			}},
			ok: false,
		},
		{
			name: "concurrent puts allow either order",
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 3, Ok),
				op(Put, "x", 2, false, 1, 2, Ok),
				op(Get, "x", 1, true, 4, 5, Ok),
			}},
			ok: true,
		},
		{
			name: "read before any write",
			h: History{Ops: []Op{
				op(Get, "x", 0, false, 0, 1, Ok),
				op(Put, "x", 1, false, 2, 3, Ok),
			}},
			ok: true,
		},
		{
			name: "durable: acked write lost across crash",
			h: History{
				Ops: []Op{
					op(Put, "x", 1, false, 0, 1, Ok),
					op(Get, "x", 0, false, 3, 4, Ok),
				},
				Crashes: []int{2},
			},
			ok: false,
		},
		{
			name: "durable: acked write survives crash",
			h: History{
				Ops: []Op{
					op(Put, "x", 1, false, 0, 1, Ok),
					op(Get, "x", 1, true, 3, 4, Ok),
				},
				Crashes: []int{2},
			},
			ok: true,
		},
		{
			name: "indeterminate write may vanish",
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 1, Info),
				op(Get, "x", 0, false, 2, 3, Ok),
			}},
			ok: true,
		},
		{
			name: "indeterminate write may take effect",
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 1, Info),
				op(Get, "x", 1, true, 2, 3, Ok),
			}},
			ok: true,
		},
		{
			name: "indeterminate write cannot act past its horizon",
			// To read 1 last, the Info put would have to linearize after
			// the Ok put of 2, whose call (event 2) is past the Info
			// op's horizon (its return, event 1).
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 1, Info),
				op(Put, "x", 2, false, 2, 3, Ok),
				op(Get, "x", 1, true, 4, 5, Ok),
			}},
			ok: false,
		},
		{
			name: "unreturned indeterminate write bounded by crash",
			// The Info put never returned; its horizon is the crash at
			// event 3. Reading 1 after a later write of 2 would need it
			// past that horizon.
			h: History{
				Ops: []Op{
					op(Put, "x", 1, false, 0, -1, Info),
					op(Put, "x", 2, false, 4, 5, Ok),
					op(Get, "x", 1, true, 6, 7, Ok),
				},
				Crashes: []int{3},
			},
			ok: false,
		},
		{
			name: "delete observes presence",
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 1, Ok),
				op(Delete, "x", 0, true, 2, 3, Ok),
				op(Get, "x", 0, false, 4, 5, Ok),
			}},
			ok: true,
		},
		{
			name: "delete claims key was absent after acked put",
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 1, Ok),
				op(Delete, "x", 0, false, 2, 3, Ok),
			}},
			ok: false,
		},
		{
			name: "indeterminate delete may or may not land",
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 1, Ok),
				op(Delete, "x", 0, false, 2, 3, Info),
				op(Get, "x", 1, true, 4, 5, Ok),
				op(Get, "x", 1, true, 6, 7, Ok),
			}},
			ok: true,
		},
		{
			name: "failed ops carry no constraints",
			h: History{Ops: []Op{
				op(Put, "x", 1, false, 0, 1, Ok),
				op(Put, "x", 9, false, 2, 3, Fail),
				op(Get, "x", 9, true, 4, 5, Fail),
				op(Get, "x", 1, true, 6, 7, Ok),
			}},
			ok: true,
		},
		{
			name: "keys are independent",
			h: History{Ops: []Op{
				op(Put, "a", 1, false, 0, 5, Ok),
				op(Put, "b", 2, false, 1, 2, Ok),
				op(Get, "b", 2, true, 3, 4, Ok),
				op(Get, "a", 1, true, 6, 7, Ok),
			}},
			ok: true,
		},
		{
			name: "empty history",
			h:    History{},
			ok:   true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Check(tc.h)
			if res.Exhausted {
				t.Fatalf("search exhausted: %v", res.Violations)
			}
			if res.Ok != tc.ok {
				t.Fatalf("Check = %v (violations %v), want ok=%v", res.Ok, res.Violations, tc.ok)
			}
		})
	}
}

// TestSequentialHistoriesAccepted is the checker's soundness property:
// any history produced by actually running ops one at a time against an
// in-memory register model must be accepted, including when a random
// subset of effects is downgraded to indeterminate.
func TestSequentialHistoriesAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := []string{"a", "b", "c"}
	for trial := 0; trial < 60; trial++ {
		model := make(map[string]uint64)
		var h History
		ev := 0
		nops := 40 + rng.Intn(80)
		for i := 0; i < nops; i++ {
			key := keys[rng.Intn(len(keys))]
			cur, present := model[key]
			var o Op
			switch rng.Intn(4) {
			case 0, 1: // put
				v := uint64(rng.Intn(50) + 1)
				model[key] = v
				o = op(Put, key, v, false, ev, ev+1, Ok)
				// Downgrading a write that really happened to Info must
				// stay accepted: Info ops are allowed to take effect.
				if rng.Intn(5) == 0 {
					o.Outcome = Info
				}
			case 2: // get
				o = op(Get, key, cur, present, ev, ev+1, Ok)
			default: // delete
				delete(model, key)
				o = op(Delete, key, 0, present, ev, ev+1, Ok)
				if rng.Intn(5) == 0 {
					o.Outcome = Info
					o.Found = false
				}
			}
			// Occasionally interleave a refused op: it must not matter.
			if rng.Intn(8) == 0 {
				h.Ops = append(h.Ops, op(Put, key, 999, false, ev, ev+1, Fail))
			}
			h.Ops = append(h.Ops, o)
			ev += 2
			if rng.Intn(20) == 0 {
				h.Crashes = append(h.Crashes, ev)
				ev++
			}
		}
		res := Check(h)
		if !res.Ok {
			t.Fatalf("trial %d: sequential history rejected: %v", trial, res.Violations)
		}
	}
}

func TestStateCapReported(t *testing.T) {
	// A pile of fully-concurrent indeterminate-capable ops with
	// identical windows maximizes branching; with distinct values the
	// register state keeps states apart. This should still finish, just
	// verifying Visited is populated.
	var h History
	for i := 0; i < 12; i++ {
		h.Ops = append(h.Ops, op(Put, "x", uint64(i+1), false, 0, 100, Ok))
	}
	h.Ops = append(h.Ops, op(Get, "x", 5, true, 101, 102, Ok))
	res := Check(h)
	if !res.Ok {
		t.Fatalf("concurrent puts + matching read should linearize: %v", res.Violations)
	}
	if res.Visited == 0 {
		t.Fatal("expected visited states to be counted")
	}
}
