// Package linz is a from-scratch durable-linearizability checker for
// key-value histories recorded by the simulator.
//
// The model is a register per key (keys are independent under
// linearizability, so the history is partitioned per key and each
// partition is checked alone). Within one key the checker runs a
// Wing & Gong style search: repeatedly pick an operation whose
// invocation precedes the return of every not-yet-linearized mandatory
// operation, apply its effect to the register, and backtrack on
// mismatch. Visited (linearized-set, register-state) pairs are memoized
// so the search revisits no state.
//
// Durable linearizability (Izraelevitz et al.) extends the condition
// across crashes: an operation acknowledged before a crash must remain
// visible after restart, while an operation whose acknowledgement was
// lost (outcome Info — "indeterminate") is free to either take effect
// or vanish. Both rules fall out of the encoding here:
//
//   - The register is never reset at a crash marker. Post-crash reads
//     are ordinary operations checked against the same register, so a
//     lost acked write shows up as an unlinearizable read.
//   - Ok operations are mandatory (the search must linearize all of
//     them); Info operations are optional (the search may skip them),
//     but if chosen, their effect must be placeable before the
//     operation's effect horizon — its recorded return if the client
//     observed one, else the first crash after its invocation. The
//     simulator's driver is synchronous (by the time a client call
//     returns, the server has either applied the request or will never
//     see it), which is what makes the recorded return a sound horizon.
//   - Fail operations are definite refusals that never reached the data
//     path; they are dropped before the search.
package linz

import "fmt"

// Kind is the operation type.
type Kind int

const (
	Put Kind = iota
	Get
	Delete
)

func (k Kind) String() string {
	switch k {
	case Put:
		return "put"
	case Get:
		return "get"
	default:
		return "delete"
	}
}

// Outcome classifies how the client observed an operation complete.
type Outcome int

const (
	// Ok: acknowledged success — the operation definitely took effect
	// and its response (Found/Value for reads) is binding.
	Ok Outcome = iota
	// Fail: definite refusal — the operation definitely did not take
	// effect and its response carries no information.
	Fail
	// Info: indeterminate — the request was sent but no acknowledgement
	// came back. It may or may not have taken effect.
	Info
)

// Op is one completed client operation.
type Op struct {
	Kind  Kind
	Key   string
	Value uint64 // Put: value written. Ok Get: value observed.
	Found bool   // Ok Get/Delete: whether the key was present.
	// Call and Return are logical timestamps (history event indices).
	// Return is -1 if the client never observed a response.
	Call    int
	Return  int
	Outcome Outcome
}

// History is a set of completed operations plus crash points, all on
// the same logical timeline.
type History struct {
	Ops []Op
	// Crashes are event indices at which a node holding the data
	// crashed. They bound the effect horizon of Info operations that
	// never returned.
	Crashes []int
}

// Result reports the verdict of a check.
type Result struct {
	Ok bool
	// Violations holds one message per key that failed, empty when Ok.
	Violations []string
	// Visited is the total number of distinct search states explored.
	Visited int
	// Exhausted is set when a per-key search hit the state cap before
	// reaching a verdict; the key is reported as a violation.
	Exhausted bool
}

// stateCap bounds the memoized states explored per key. Histories the
// simulator produces stay far below it; the cap exists so an
// adversarial hand-built history cannot hang the checker.
const stateCap = 4_000_000

// Check verifies the history is durably linearizable.
func Check(h History) Result {
	perKey := make(map[string][]Op)
	var keys []string
	for _, op := range h.Ops {
		if op.Outcome == Fail {
			continue // definite refusal: no effect, no information
		}
		if op.Outcome == Info && op.Kind == Get {
			continue // lost read: no effect, no information
		}
		if _, seen := perKey[op.Key]; !seen {
			keys = append(keys, op.Key)
		}
		perKey[op.Key] = append(perKey[op.Key], op)
	}
	res := Result{Ok: true}
	for _, key := range keys {
		ok, visited, exhausted := checkKey(perKey[key], h.Crashes)
		res.Visited += visited
		if exhausted {
			res.Exhausted = true
			res.Ok = false
			res.Violations = append(res.Violations,
				fmt.Sprintf("key %q: search exceeded %d states", key, stateCap))
			continue
		}
		if !ok {
			res.Ok = false
			res.Violations = append(res.Violations,
				fmt.Sprintf("key %q: no linearization of %d ops", key, len(perKey[key])))
		}
	}
	return res
}

// register is the sequential specification: a single key that is either
// absent or holds one value.
type register struct {
	present bool
	value   uint64
}

type memoKey struct {
	mask    string
	present bool
	value   uint64
}

// horizon returns the latest event index at which op's effect may be
// placed: its return if recorded, else the first crash after its call,
// else unbounded.
func horizon(op Op, crashes []int) int {
	if op.Return >= 0 {
		return op.Return
	}
	for _, c := range crashes {
		if c > op.Call {
			return c
		}
	}
	return int(^uint(0) >> 1) // max int
}

// checkKey runs the per-key search. Returns (linearizable, states
// visited, state cap hit).
func checkKey(ops []Op, crashes []int) (bool, int, bool) {
	n := len(ops)
	if n == 0 {
		return true, 0, false
	}
	horizons := make([]int, n)
	mandatory := 0
	for i, op := range ops {
		horizons[i] = horizon(op, crashes)
		if op.Outcome == Ok {
			mandatory++
		}
	}
	if mandatory == 0 {
		return true, 0, false // every op optional: skip them all
	}

	maskLen := (n + 7) / 8
	type frame struct {
		mask    []byte
		reg     register
		maxCall int // minimal placement bound: max Call over linearized set
		done    int // mandatory ops linearized so far
	}
	memo := make(map[memoKey]bool)
	stack := []frame{{mask: make([]byte, maskLen)}}
	memo[memoKey{mask: string(stack[0].mask)}] = true

	linearized := func(mask []byte, i int) bool { return mask[i/8]&(1<<(i%8)) != 0 }

	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		// minRet over unlinearized mandatory ops: the next linearization
		// point must precede it, or ordering with a mandatory op breaks.
		minRet := int(^uint(0) >> 1)
		for i, op := range ops {
			if op.Outcome == Ok && !linearized(f.mask, i) && op.Return < minRet {
				minRet = op.Return
			}
		}

		for i, op := range ops {
			if linearized(f.mask, i) || op.Call >= minRet {
				continue
			}
			// Semantics: does the op's observed response match the
			// register, and what does it leave behind?
			reg := f.reg
			switch op.Kind {
			case Put:
				reg = register{present: true, value: op.Value}
			case Get:
				if op.Found != f.reg.present || (op.Found && op.Value != f.reg.value) {
					continue
				}
			case Delete:
				if op.Outcome == Ok && op.Found != f.reg.present {
					continue
				}
				reg = register{}
			}
			// Effect horizon: the minimal placement of this op's
			// linearization point is max(maxCall so far, its own call);
			// that must not pass the horizon.
			maxCall := f.maxCall
			if op.Call > maxCall {
				maxCall = op.Call
			}
			if maxCall >= horizons[i] {
				continue
			}
			done := f.done
			if op.Outcome == Ok {
				done++
			}
			if done == mandatory {
				return true, len(memo), false
			}
			mask := make([]byte, maskLen)
			copy(mask, f.mask)
			mask[i/8] |= 1 << (i % 8)
			mk := memoKey{mask: string(mask), present: reg.present, value: reg.value}
			if memo[mk] {
				continue
			}
			if len(memo) >= stateCap {
				return false, len(memo), true
			}
			memo[mk] = true
			stack = append(stack, frame{mask: mask, reg: reg, maxCall: maxCall, done: done})
		}
	}
	return false, len(memo), false
}
