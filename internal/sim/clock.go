// Package sim is the deterministic whole-cluster simulation harness: a
// seeded virtual clock the server's correctness windows draw from, a
// partitionable in-process network, a nemesis plane that composes fault
// schedules over the existing hooks, a client-history recorder, and (in
// the linz subpackage) a durable-linearizability checker over those
// histories.
//
// The determinism model is deliberately simple: one sequential driver
// issues exactly one client operation at a time, the virtual clock only
// moves at driver-controlled points (per-op ticks, nemesis advances, and
// injected flaky delays), and histories are ordered by driver-assigned
// event indices. Wall-clock time still paces goroutines and sockets —
// liveness — but every window that decides *correctness* (fencing,
// promotion-by-silence, replica liveness, ack expiry, deadlines) reads
// the virtual clock, so a run's recorded history is a pure function of
// (schedule, seed).
package sim

import (
	"sync"
	"time"
)

// vclockEpoch is the virtual time origin. It is deliberately far from
// zero: the server stores "never" as a zero UnixNano, so virtual
// timestamps must not collide with it.
var vclockEpoch = time.Unix(1<<20, 0)

// VClock is the simulator's virtual clock: an explicit logical time that
// only moves when the driver advances it. It implements fault.Clock.
//
// Sleep self-advances the clock by the requested duration and returns
// immediately: the sum of advances is commutative, so concurrent sleeps
// (the flaky injector's delays) keep the clock value at every driver
// step deterministic even though goroutine interleaving is not.
type VClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []vwaiter
}

type vwaiter struct {
	at time.Time
	ch chan time.Time
}

// NewVClock returns a virtual clock at the simulation epoch.
func NewVClock() *VClock {
	return &VClock{now: vclockEpoch}
}

// Now implements fault.Clock.
func (c *VClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Elapsed returns how much virtual time has passed since the epoch.
func (c *VClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now.Sub(vclockEpoch)
}

// Advance moves the clock forward by d (never backward) and fires every
// waiter whose deadline the new time covers. It returns the new time.
func (c *VClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	now := c.now
	kept := c.waiters[:0]
	var due []vwaiter
	for _, w := range c.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	c.mu.Unlock()
	for _, w := range due {
		w.ch <- now // buffered, single-use: never blocks
	}
	return now
}

// Sleep implements fault.Clock: account the sleep as a self-advance and
// return immediately (see the type comment for why this is sound).
func (c *VClock) Sleep(d time.Duration) { c.Advance(d) }

// After implements fault.Clock: the returned channel fires on the first
// Advance that reaches now+d. If d is non-positive it fires immediately.
func (c *VClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	at := c.now.Add(d)
	if !at.After(c.now) {
		now := c.now
		c.mu.Unlock()
		ch <- now
		return ch
	}
	c.waiters = append(c.waiters, vwaiter{at: at, ch: ch})
	c.mu.Unlock()
	return ch
}

// Waiters returns how many After channels are still pending (test hook).
func (c *VClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
