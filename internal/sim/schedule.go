package sim

import (
	"fmt"
	"time"
)

// ActionKind enumerates the nemesis moves a schedule can make.
type ActionKind string

const (
	// ActPartition cuts both directions between Node and Peer.
	ActPartition ActionKind = "partition"
	// ActOneway cuts only the Node→Peer direction (asymmetric partition).
	ActOneway ActionKind = "oneway"
	// ActHeal restores both directions between Node and Peer.
	ActHeal ActionKind = "heal"
	// ActHealAll restores every link.
	ActHealAll ActionKind = "heal-all"
	// ActAdvance moves the virtual clock forward by D — this is how
	// fencing, promotion, liveness, and ack-expiry windows elapse.
	ActAdvance ActionKind = "advance"
	// ActCrash kills Node without ceremony (no final checkpoint) and
	// records a crash marker in the history.
	ActCrash ActionKind = "crash"
	// ActRestart brings a crashed Node back on its old address with its
	// retained stores; Role overrides the node's role ("replica" makes a
	// restarted old primary rejoin as a follower of Peer).
	ActRestart ActionKind = "restart"
	// ActWaitRole blocks until Node reports the Role ("primary").
	ActWaitRole ActionKind = "wait-role"
	// ActWaitConn blocks until Node's follower has pulled from its
	// primary at least once since restart.
	ActWaitConn ActionKind = "wait-conn"
	// ActRebalance starts (or re-runs, after an acceptor crash) slot
	// rebalance on Node — cluster topology only.
	ActRebalance ActionKind = "rebalance"
	// ActWaitRebalance blocks until the last ActRebalance finished.
	ActWaitRebalance ActionKind = "wait-rebalance"
	// ActCorrupt is the media nemesis: every checkpointed pool image in
	// Node's stores is damaged media-style (bytes change under an
	// unchanged checksum), alternating a single bit flip and a torn page
	// per firing. A fresh checkpoint is forced first, so the damage lands
	// on a current image and never races one being written. Requires a
	// schedule with Parity set; repair happens through the background
	// scrubber or through recovery-on-open after a later ActCrash.
	ActCorrupt ActionKind = "corrupt"
)

// Action is one nemesis move, fired when AfterOp client operations have
// completed. Actions sharing an AfterOp fire back-to-back with no client
// operation between them — schedules rely on that to, e.g., partition a
// link and elapse the fencing window atomically, so no operation ever
// runs against a half-applied fault.
type Action struct {
	AfterOp int
	Kind    ActionKind
	Node    string
	Peer    string
	D       time.Duration
	Role    string
}

// OpKind is a scripted client operation class.
type OpKind string

const (
	OpPut    OpKind = "put"
	OpGet    OpKind = "get"
	OpDelete OpKind = "delete"
)

// OpSpec is one scripted operation: kind plus the key index it targets.
type OpSpec struct {
	Kind OpKind
	Key  int
}

// Schedule declares one simulation: topology, workload, configuration
// knobs under test, and the nemesis script.
type Schedule struct {
	Name     string
	Topology string // "pair" (primary/replica) or "cluster" (2 primaries, slot migration)

	// Ops is the number of client operations when Script is nil; the
	// driver draws a seeded put/get/delete mix over Keys. Script, when
	// set, replaces the random mix with an exact operation sequence —
	// the split-brain gates use it so the stale read is forced to land
	// where the violation is observable.
	Ops    int
	Keys   int
	Script []OpSpec

	Clients int

	// DeleteFrac, per mille, is the share of deletes in the random mix.
	// Gated-read schedules keep it 0: read gates are advanced by
	// acknowledged put sequence numbers only, so a delete would let a
	// lagging replica serve the pre-delete value through the gate — a
	// true stale read the checker would (correctly) flag.
	DeleteFrac int

	// FenceAfter/PromoteAfter configure the failover windows (virtual
	// time). Pair topology only.
	FenceAfter   time.Duration
	PromoteAfter time.Duration

	// GatedReads makes the driver issue reads with the newest
	// acknowledged per-shard sequence token, so a lagging node refuses
	// (and the client rotates) instead of serving stale state. Required
	// for any pair schedule that lets clients read from the replica.
	GatedReads bool

	// Flaky wraps client connections with the seed-deterministic fault
	// injector (delays served by the virtual clock).
	Flaky      bool
	FlakyEvery int // one injected fault per that many conn I/O calls

	// Parity arms the media-fault layer on every node: checkpoints
	// maintain parity sidecars, the background scrubber (virtual-clock
	// cadence) repairs corrupt stored images, and recovery repairs them
	// on open. Required by schedules that fire ActCorrupt.
	Parity bool
	// CheckpointEvery overrides the per-shard checkpoint cadence (ops).
	// Zero keeps the sim default (-1: checkpoints only at barriers), so
	// crash recovery replays the full retained log. Media schedules set a
	// small positive cadence — ActCorrupt needs checkpointed images to
	// damage, and a crash then recovers from image plus log tail.
	CheckpointEvery int

	Actions []Action

	// ExpectViolation marks schedules constructed to corrupt history
	// (the unfenced split-brain gate): the run passes when the checker
	// DOES flag a durable-linearizability violation.
	ExpectViolation bool
}

// Window constants shared by the builtin schedules (virtual time).
const (
	simReplLive     = 200 * time.Millisecond
	simFenceAfter   = 300 * time.Millisecond
	simPromoteAfter = 500 * time.Millisecond
	simAckTimeout   = 2 * time.Second
)

// splitBrainScript builds the scripted gate workload on one key:
// warm-up writes and reads, a partition window with writes, then — after
// the old primary is crashed — reads only. The final reads must precede
// any fresh write: a write would overwrite the lost value and hide the
// loss from the reads that follow.
func splitBrainScript() []OpSpec {
	var s []OpSpec
	for i := 0; i < 6; i++ {
		s = append(s, OpSpec{Kind: OpPut})
	}
	s = append(s, OpSpec{Kind: OpGet}, OpSpec{Kind: OpGet})
	// ops 8..13: partition window (actions fire at AfterOp 8).
	for i := 0; i < 4; i++ {
		s = append(s, OpSpec{Kind: OpPut})
	}
	s = append(s, OpSpec{Kind: OpGet}, OpSpec{Kind: OpGet})
	// ops 14..19: old primary crashed (actions at AfterOp 14); reads only.
	for i := 0; i < 6; i++ {
		s = append(s, OpSpec{Kind: OpGet})
	}
	return s
}

// SplitBrain is the fencing gate: a primary⇄replica partition long
// enough for the replica to promote itself, writes during the window,
// then the old primary crashes and the survivors are read. With fencing
// disabled the partitioned primary keeps acknowledging writes the
// promoted replica never saw — a durable-linearizability violation the
// checker must flag. With FenceAfter below PromoteAfter the old primary
// fences itself first, clients rotate, and the same script is clean.
func SplitBrain(fenced bool) Schedule {
	s := Schedule{
		Name:         "split-brain-unfenced",
		Topology:     "pair",
		Keys:         1,
		Clients:      1,
		Script:       splitBrainScript(),
		PromoteAfter: simPromoteAfter,
		Actions: []Action{
			{AfterOp: 8, Kind: ActPartition, Node: "a", Peer: "b"},
			{AfterOp: 8, Kind: ActAdvance, D: simPromoteAfter + 50*time.Millisecond},
			{AfterOp: 8, Kind: ActWaitRole, Node: "b", Role: "primary"},
			{AfterOp: 14, Kind: ActCrash, Node: "a"},
		},
		ExpectViolation: true,
	}
	if fenced {
		s.Name = "split-brain-fenced"
		s.FenceAfter = simFenceAfter
		s.ExpectViolation = false
	}
	return s
}

// PartitionHeal is a sweep schedule: fenced pair, random workload with
// gated reads, a full partition that outlives both failover windows,
// then a heal. The promoted replica carries the traffic; the fenced old
// primary refuses writes and gated reads keep every read linearizable.
func PartitionHeal(ops int) Schedule {
	return Schedule{
		Name:         "partition-heal",
		Topology:     "pair",
		Ops:          ops,
		Keys:         8,
		Clients:      3,
		FenceAfter:   simFenceAfter,
		PromoteAfter: simPromoteAfter,
		GatedReads:   true,
		Actions: []Action{
			{AfterOp: ops / 4, Kind: ActPartition, Node: "a", Peer: "b"},
			{AfterOp: ops / 4, Kind: ActAdvance, D: simPromoteAfter + 50*time.Millisecond},
			{AfterOp: ops / 4, Kind: ActWaitRole, Node: "b", Role: "primary"},
			{AfterOp: ops / 2, Kind: ActHeal, Node: "a", Peer: "b"},
		},
	}
}

// CrashRestartReplica is a sweep schedule: the replica crashes without
// warning and later rejoins with its retained stores, recovering from
// its own log and catching up from the primary. The advance past the
// replica-liveness window is load-bearing: without it the primary would
// hold every write ack for a replica that can never answer.
func CrashRestartReplica(ops int) Schedule {
	return Schedule{
		Name:         "crash-restart-replica",
		Topology:     "pair",
		Ops:          ops,
		Keys:         8,
		Clients:      3,
		FenceAfter:   0, // a lone primary must keep serving after replica loss
		PromoteAfter: simPromoteAfter,
		GatedReads:   true,
		Actions: []Action{
			{AfterOp: ops / 3, Kind: ActCrash, Node: "b"},
			{AfterOp: ops / 3, Kind: ActAdvance, D: simReplLive + 50*time.Millisecond},
			{AfterOp: 2 * ops / 3, Kind: ActRestart, Node: "b", Role: "replica", Peer: "a"},
			{AfterOp: 2 * ops / 3, Kind: ActWaitConn, Node: "b"},
		},
	}
}

// CrashFailoverRestart is a sweep schedule: the primary crashes, the
// replica promotes itself after the silence window, and the old primary
// later rejoins as a replica following the new primary.
func CrashFailoverRestart(ops int) Schedule {
	return Schedule{
		Name:         "crash-failover-restart",
		Topology:     "pair",
		Ops:          ops,
		Keys:         8,
		Clients:      3,
		FenceAfter:   simFenceAfter,
		PromoteAfter: simPromoteAfter,
		GatedReads:   true,
		Actions: []Action{
			{AfterOp: ops / 3, Kind: ActCrash, Node: "a"},
			{AfterOp: ops / 3, Kind: ActAdvance, D: simPromoteAfter + 50*time.Millisecond},
			{AfterOp: ops / 3, Kind: ActWaitRole, Node: "b", Role: "primary"},
			{AfterOp: 2 * ops / 3, Kind: ActRestart, Node: "a", Role: "replica", Peer: "b"},
		},
	}
}

// MigrationKill is the cluster sweep schedule: node a owns every slot,
// node b joins empty and starts pulling slots over; mid-migration the
// acceptor is killed and restarted, and the rebalance is re-run to
// completion (slot fencing on the donor is idempotent for the same
// acceptor, so the re-run finishes the half-done handover).
func MigrationKill(ops int) Schedule {
	return Schedule{
		Name:     "migration-kill",
		Topology: "cluster",
		Ops:      ops,
		Keys:     16,
		Clients:  3,
		Actions: []Action{
			{AfterOp: ops / 4, Kind: ActRebalance, Node: "b"},
			{AfterOp: ops / 3, Kind: ActCrash, Node: "b"},
			{AfterOp: ops / 2, Kind: ActRestart, Node: "b"},
			{AfterOp: ops / 2, Kind: ActRebalance, Node: "b"},
			{AfterOp: 3 * ops / 4, Kind: ActWaitRebalance},
		},
	}
}

// CorruptUnderLoad is the media sweep schedule: a fenced pair with the
// parity layer armed, random gated-read workload, and three media-fault
// episodes — one repaired at rest (scrubber or checkpoint rewrite), one
// driven through primary crash recovery (corrupt, power-loss, and restart
// at the same op index, so the virtual clock never advances and the
// replica cannot promote meanwhile), and one through replica crash
// recovery. The durable-linearizability checker gates the result: media
// damage plus repair must never surface as lost or resurrected writes.
func CorruptUnderLoad(ops int) Schedule {
	return Schedule{
		Name:            "corrupt-under-load",
		Topology:        "pair",
		Ops:             ops,
		Keys:            8,
		Clients:         3,
		FenceAfter:      simFenceAfter,
		PromoteAfter:    simPromoteAfter,
		GatedReads:      true,
		Parity:          true,
		CheckpointEvery: 8,
		Actions: []Action{
			// At-rest repair: damage the primary's stored images mid-load
			// and leave them to the scrubber (or a checkpoint rewrite).
			{AfterOp: ops / 4, Kind: ActCorrupt, Node: "a"},
			// Primary recovery repair: corrupt, crash, restart back-to-back.
			{AfterOp: ops / 2, Kind: ActCorrupt, Node: "a"},
			{AfterOp: ops / 2, Kind: ActCrash, Node: "a"},
			{AfterOp: ops / 2, Kind: ActRestart, Node: "a"},
			{AfterOp: ops / 2, Kind: ActWaitConn, Node: "b"},
			// Replica recovery repair: corrupt and crash b, advance past the
			// liveness window so the lone primary keeps acking (degraded),
			// then rejoin as a follower.
			{AfterOp: 2 * ops / 3, Kind: ActCorrupt, Node: "b"},
			{AfterOp: 2 * ops / 3, Kind: ActCrash, Node: "b"},
			{AfterOp: 2 * ops / 3, Kind: ActAdvance, D: simReplLive + 50*time.Millisecond},
			{AfterOp: 5 * ops / 6, Kind: ActRestart, Node: "b", Role: "replica", Peer: "a"},
			{AfterOp: 5 * ops / 6, Kind: ActWaitConn, Node: "b"},
		},
	}
}

// Steady is the no-fault baseline: a healthy pair, deletes included.
// Its history is the byte-identical determinism gate.
func Steady(ops int) Schedule {
	return Schedule{
		Name:         "steady",
		Topology:     "pair",
		Ops:          ops,
		Keys:         8,
		Clients:      3,
		DeleteFrac:   150,
		FenceAfter:   simFenceAfter,
		PromoteAfter: simPromoteAfter,
	}
}

// FlakySteady is the fault-injector determinism exercise: same healthy
// pair, but every client connection runs behind the seeded flaky
// wrapper, with injected delays served by the virtual clock.
func FlakySteady(ops int) Schedule {
	s := Steady(ops)
	s.Name = "flaky-steady"
	// Injected conn faults make clients rotate onto the replica, so
	// reads must carry gates — and gates don't cover deletes.
	s.DeleteFrac = 0
	s.GatedReads = true
	s.Flaky = true
	s.FlakyEvery = 40
	return s
}

// Schedules returns the named builtin, for CLI selection.
func Schedules(name string, ops int) (Schedule, error) {
	switch name {
	case "steady":
		return Steady(ops), nil
	case "flaky-steady":
		return FlakySteady(ops), nil
	case "split-brain-unfenced":
		return SplitBrain(false), nil
	case "split-brain-fenced":
		return SplitBrain(true), nil
	case "partition-heal":
		return PartitionHeal(ops), nil
	case "crash-restart-replica":
		return CrashRestartReplica(ops), nil
	case "crash-failover-restart":
		return CrashFailoverRestart(ops), nil
	case "migration-kill":
		return MigrationKill(ops), nil
	case "corrupt-under-load":
		return CorruptUnderLoad(ops), nil
	}
	return Schedule{}, fmt.Errorf("sim: unknown schedule %q", name)
}
