package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nvref/internal/cluster"
	"nvref/internal/fault"
	"nvref/internal/fault/flaky"
	"nvref/internal/fault/inject"
	"nvref/internal/parity"
	"nvref/internal/pmem"
	"nvref/internal/rt"
	"nvref/internal/server"
	"nvref/internal/sim/linz"
)

// Fixed simulation sizes. Small shard/pool counts keep a run cheap; the
// schedules, not the data volume, are what exercise the machinery.
const (
	simShards   = 2
	simSlots    = 16
	simPoolSize = 4 << 20

	// opTick is the virtual time the driver charges per client
	// operation — the only per-op clock movement.
	opTick = time.Millisecond

	// clientWallTimeout is the per-operation I/O deadline on sim client
	// connections. It is the liveness safety net: if a schedule ever
	// wedges a node in a state where a reply cannot come (e.g. an ack
	// held for a dead replica with no clock advance), the operation
	// resolves as indeterminate instead of hanging the run.
	clientWallTimeout = 3 * time.Second

	// settleWall is a small real-time pause after each nemesis action so
	// goroutines woken by it (virtual timers, severed connections) act
	// before the next client operation. It never moves the virtual
	// clock, so it cannot perturb the recorded history.
	settleWall = 10 * time.Millisecond

	barrierWait = 5 * time.Second
)

// RunConfig parameterizes one simulation run.
type RunConfig struct {
	Schedule Schedule
	Seed     int64
	// HistoryDir, when set, receives the run's history as
	// <schedule>-seed<seed>.jsonl for offline replay and inspection.
	HistoryDir string
}

// RunResult is the verdict of one run.
type RunResult struct {
	Schedule string `json:"schedule"`
	Seed     int64  `json:"seed"`
	Events   int    `json:"events"`
	OpsOK    int    `json:"ops_ok"`
	OpsFail  int    `json:"ops_fail"`
	OpsInfo  int    `json:"ops_info"`
	Crashes  int    `json:"crashes"`
	// Media-fault layer totals, summed over the nodes still up at the end
	// of the run (Parity schedules; a counter dies with its incarnation,
	// so repairs made by a later-crashed process are not re-counted).
	PagesRepaired      uint64   `json:"pages_repaired,omitempty"`
	MediaUnrecoverable uint64   `json:"media_unrecoverable,omitempty"`
	LinzOK             bool     `json:"linz_ok"`
	Violations         []string `json:"violations,omitempty"`
	StatesVisited      int      `json:"states_visited"`
	ExpectViolation    bool     `json:"expect_violation"`
	// Ok means the checker's verdict matched the schedule's expectation
	// and the run moved real traffic.
	Ok          bool   `json:"ok"`
	Detail      string `json:"detail,omitempty"`
	HistoryPath string `json:"history_path,omitempty"`
	History     []byte `json:"-"`
}

// node is one simulated server process: its identity, its retained
// stores (which survive crashes, as pmem does), and the live instance.
type node struct {
	name        string
	roleReplica bool
	follow      string // node name this replica follows
	addr        string
	stores      []pmem.Store
	logStores   []pmem.Store
	// cluster topology only:
	clusterStore pmem.Store
	bootstrap    *cluster.Map

	srv *server.Server
	up  bool
}

type sim struct {
	sched Schedule
	seed  int64
	vc    *VClock
	net   *Net
	hist  *History
	rng   *rand.Rand

	nodes map[string]*node
	order []string // client rotation order

	val uint64 // global write-value sequencer

	// Read gates (GatedReads schedules): newest acknowledged per-shard
	// sequence, and which shard each key hashed to. Driver-thread only.
	gateShard map[uint64]uint32
	gateMax   map[uint32]uint64

	flaky      *flaky.Config
	flakyConns uint64

	// corruptN counts ActCorrupt firings: it alternates the fault class
	// and salts the per-firing corruption RNG, so every firing is
	// deterministic in (seed, firing index) alone.
	corruptN uint64

	rebalWG  sync.WaitGroup
	rebalMu  sync.Mutex
	rebalErr string
}

// Run executes one schedule under one seed and checks the recorded
// history for durable linearizability.
func Run(rc RunConfig) (*RunResult, error) {
	sched := rc.Schedule
	if sched.Clients <= 0 {
		sched.Clients = 1
	}
	if sched.Keys <= 0 {
		sched.Keys = 1
	}
	if sched.Script == nil && sched.Ops <= 0 {
		return nil, errors.New("sim: schedule has no operations")
	}
	s := &sim{
		sched:     sched,
		seed:      rc.Seed,
		vc:        NewVClock(),
		net:       NewNet(),
		rng:       rand.New(rand.NewSource(rc.Seed)),
		nodes:     make(map[string]*node),
		gateShard: make(map[uint64]uint32),
		gateMax:   make(map[uint32]uint64),
	}
	s.hist = NewHistory(s.vc)
	if sched.Flaky {
		every := sched.FlakyEvery
		if every <= 0 {
			every = 40
		}
		s.flaky = &flaky.Config{
			Sched: fault.NewPeriodic("", every),
			Seed:  uint64(rc.Seed) | 1,
			Clock: s.vc,
		}
	}
	defer s.teardown()

	var err error
	if sched.Topology == "cluster" {
		err = s.setupCluster()
	} else {
		err = s.setupPair()
	}
	if err != nil {
		return nil, err
	}

	clients := make([]*simClient, sched.Clients)
	for i := range clients {
		clients[i] = &simClient{s: s, id: i}
	}
	defer func() {
		for _, c := range clients {
			c.close()
		}
	}()

	ops := sched.Script
	if ops == nil {
		ops = s.generateOps()
	}
	acts := append([]Action(nil), sched.Actions...)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].AfterOp < acts[j].AfterOp })

	var detail []string
	ai := 0
	for i, op := range ops {
		for ai < len(acts) && acts[ai].AfterOp <= i {
			if msg := s.fire(acts[ai]); msg != "" {
				detail = append(detail, msg)
			}
			ai++
		}
		s.step(clients[s.rng.Intn(len(clients))], op)
	}
	for ai < len(acts) {
		if msg := s.fire(acts[ai]); msg != "" {
			detail = append(detail, msg)
		}
		ai++
	}

	res := &RunResult{
		Schedule:        sched.Name,
		Seed:            rc.Seed,
		ExpectViolation: sched.ExpectViolation,
		History:         s.hist.JSONL(),
	}
	for _, e := range s.hist.Events() {
		res.Events++
		switch e.Type {
		case "crash":
			res.Crashes++
		case "ret":
			switch e.Outcome {
			case "ok":
				res.OpsOK++
			case "fail":
				res.OpsFail++
			case "info":
				res.OpsInfo++
			}
		}
	}
	for _, n := range s.nodes {
		if !n.up {
			continue
		}
		for _, sh := range n.srv.CollectStats().PerShard {
			res.PagesRepaired += sh.PagesRepaired
			res.MediaUnrecoverable += sh.MediaUnrecoverable
		}
	}
	if rc.HistoryDir != "" {
		path := filepath.Join(rc.HistoryDir,
			fmt.Sprintf("%s-seed%d.jsonl", sched.Name, rc.Seed))
		if werr := os.WriteFile(path, res.History, 0o644); werr == nil {
			res.HistoryPath = path
		} else {
			detail = append(detail, fmt.Sprintf("history write: %v", werr))
		}
	}

	s.rebalMu.Lock()
	if s.rebalErr != "" {
		detail = append(detail, s.rebalErr)
	}
	s.rebalMu.Unlock()

	lh, err := s.hist.ToLinz()
	if err != nil {
		return nil, fmt.Errorf("sim: malformed history: %w", err)
	}
	check := linz.Check(lh)
	res.LinzOK = check.Ok
	res.Violations = check.Violations
	res.StatesVisited = check.Visited

	res.Ok = res.OpsOK > 0 && !check.Exhausted && check.Ok == !sched.ExpectViolation
	if !res.Ok {
		switch {
		case res.OpsOK == 0:
			detail = append(detail, "no operation succeeded")
		case check.Exhausted:
			detail = append(detail, "checker state cap exceeded")
		case sched.ExpectViolation:
			detail = append(detail, "expected a durable-linearizability violation; history checked clean")
		default:
			detail = append(detail, "history is not durably linearizable")
		}
	}
	res.Detail = strings.Join(detail, "; ")
	return res, nil
}

func (s *sim) teardown() {
	for _, n := range s.nodes {
		if n.up {
			n.srv.Abort()
			n.up = false
		}
	}
}

// --- topology setup ---

func (s *sim) newNode(name string) *node {
	n := &node{name: name}
	for i := 0; i < simShards; i++ {
		n.stores = append(n.stores, pmem.NewMemStore())
		n.logStores = append(n.logStores, pmem.NewMemStore())
	}
	s.nodes[name] = n
	s.order = append(s.order, name)
	return n
}

// config builds a node's server configuration. Crash-survival posture:
// checkpoints off (CheckpointEvery -1) and the log image flushed on
// every append, so a kill -9 recovers by replaying the full retained
// log — and the primary's log is never truncated, which is also what
// lets a rejoining follower pull a contiguous tail.
func (s *sim) config(n *node) server.Config {
	cfg := server.Config{
		Shards:          simShards,
		Mode:            rt.HW,
		PoolSize:        simPoolSize,
		CheckpointEvery: -1,
		LogFlushEvery:   1,
		Clock:           s.vc,
		AckTimeout:      simAckTimeout,
		ReplLiveWindow:  simReplLive,
		StoreFor:        func(i int) pmem.Store { return n.stores[i] },
		LogStoreFor:     func(i int) pmem.Store { return n.logStores[i] },
	}
	if s.sched.CheckpointEvery != 0 {
		cfg.CheckpointEvery = s.sched.CheckpointEvery
	}
	if s.sched.Parity {
		// Media schedules: parity sidecars on every checkpoint, plus the
		// background scrubber on a virtual-clock cadence (opTick is 1ms,
		// so a scrub pass becomes eligible roughly every ten client ops).
		cfg.Parity = parity.Default()
		cfg.ScrubEvery = 10 * time.Millisecond
	}
	switch {
	case n.clusterStore != nil:
		cfg.ClusterSelf = n.addr
		cfg.ClusterMap = n.bootstrap
		cfg.ClusterStore = n.clusterStore
	case n.roleReplica:
		cfg.Role = server.RoleReplica
		cfg.FollowAddr = s.net.Addr(n.follow)
		cfg.FollowDial = s.net.Dialer(n.name)
		cfg.FollowPoll = time.Millisecond
		cfg.PromoteAfter = s.sched.PromoteAfter
		cfg.FenceAfter = s.sched.FenceAfter
	default:
		cfg.Role = server.RolePrimary
		cfg.FenceAfter = s.sched.FenceAfter
	}
	return cfg
}

// start boots (or reboots) a node. A restart reuses the node's previous
// address, so peers and clients reach it where they always did.
func (s *sim) start(n *node) error {
	srv, err := server.New(s.config(n))
	if err != nil {
		return fmt.Errorf("sim: node %s: %w", n.name, err)
	}
	if n.clusterStore != nil {
		l, err := net.Listen("tcp", n.addr)
		if err != nil {
			return fmt.Errorf("sim: node %s rebind %s: %w", n.name, n.addr, err)
		}
		go srv.Serve(l)
	} else {
		bind := n.addr
		if bind == "" {
			bind = "127.0.0.1:0"
		}
		addr, err := srv.Start(bind)
		if err != nil {
			return fmt.Errorf("sim: node %s bind %s: %w", n.name, bind, err)
		}
		n.addr = addr.String()
	}
	s.net.Register(n.name, n.addr)
	n.srv = srv
	n.up = true
	return nil
}

func (s *sim) setupPair() error {
	a := s.newNode("a")
	b := s.newNode("b")
	b.roleReplica = true
	b.follow = "a"
	if err := s.start(a); err != nil {
		return err
	}
	if err := s.start(b); err != nil {
		return err
	}
	// Acks must be held against replica durability from the first write.
	return waitUntil(barrierWait, func() bool {
		fs := b.srv.CollectStats().Follower
		return fs != nil && fs.Pulls > 0
	})
}

func (s *sim) setupCluster() error {
	a := s.newNode("a")
	b := s.newNode("b")
	a.clusterStore = pmem.NewMemStore()
	b.clusterStore = pmem.NewMemStore()
	// The bootstrap map needs a's address before its server exists:
	// bind first, boot after, exactly like production config would pin
	// a known host:port.
	la, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	lb, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		la.Close()
		return err
	}
	a.addr, b.addr = la.Addr().String(), lb.Addr().String()
	m, err := cluster.New(simSlots, []string{a.addr})
	if err != nil {
		la.Close()
		lb.Close()
		return err
	}
	a.bootstrap = m
	s.net.Register("a", a.addr)
	s.net.Register("b", b.addr)
	if err := s.bootCluster(a, la); err != nil {
		lb.Close()
		return err
	}
	if err := s.bootCluster(b, lb); err != nil {
		return err
	}
	return b.srv.JoinCluster(a.addr, s.net.Dialer("b"))
}

func (s *sim) bootCluster(n *node, l net.Listener) error {
	srv, err := server.New(s.config(n))
	if err != nil {
		l.Close()
		return fmt.Errorf("sim: node %s: %w", n.name, err)
	}
	go srv.Serve(l)
	n.srv = srv
	n.up = true
	return nil
}

// --- nemesis execution ---

func (s *sim) fire(a Action) string {
	switch a.Kind {
	case ActPartition:
		s.hist.Nemesis(a.Node, "partition "+a.Node+"<->"+a.Peer)
		s.net.Partition(a.Node, a.Peer)
		time.Sleep(settleWall)
	case ActOneway:
		s.hist.Nemesis(a.Node, "block "+a.Node+"->"+a.Peer)
		s.net.Block(a.Node, a.Peer)
		time.Sleep(settleWall)
	case ActHeal:
		s.hist.Nemesis(a.Node, "heal "+a.Node+"<->"+a.Peer)
		s.net.Heal(a.Node, a.Peer)
		time.Sleep(settleWall)
	case ActHealAll:
		s.hist.Nemesis("", "heal-all")
		s.net.HealAll()
		time.Sleep(settleWall)
	case ActAdvance:
		s.hist.Nemesis("", "advance "+a.D.String())
		s.vc.Advance(a.D)
		time.Sleep(settleWall)
	case ActCrash:
		n := s.nodes[a.Node]
		if n == nil || !n.up {
			return "crash: node " + a.Node + " not up"
		}
		s.hist.Crash(n.name)
		n.srv.Abort()
		n.up = false
		time.Sleep(settleWall)
	case ActRestart:
		n := s.nodes[a.Node]
		if n == nil || n.up {
			return "restart: node " + a.Node + " not crashed"
		}
		if s.sched.Topology == "cluster" {
			// A rebalance racing the crash must fully die before the
			// node returns on the same port.
			s.waitRebalance(barrierWait)
		}
		switch a.Role {
		case "replica":
			n.roleReplica = true
			n.follow = a.Peer
		case "primary":
			n.roleReplica = false
		}
		if err := s.start(n); err != nil {
			return err.Error()
		}
		s.hist.Nemesis(n.name, "restart")
		time.Sleep(settleWall)
	case ActCorrupt:
		n := s.nodes[a.Node]
		if n == nil || !n.up {
			return "corrupt: node " + a.Node + " not up"
		}
		// Force a fresh checkpoint first: it guarantees a current image
		// exists to damage, and — because the driver is the only thread
		// issuing ops — no further checkpoint can race the injection and
		// strand a half-written image behind corrupt metadata.
		if err := n.srv.Checkpoint(); err != nil {
			return "corrupt " + a.Node + ": checkpoint: " + err.Error()
		}
		class, label := fault.BitFlip, "bitflip"
		if s.corruptN%2 == 1 {
			class, label = fault.Torn, "torn-page"
		}
		rng := fault.NewRand(uint64(s.seed)<<8 ^ 0xC0FFEE ^ s.corruptN)
		s.corruptN++
		hit := 0
		for _, st := range n.stores {
			names, err := st.List()
			if err != nil {
				return "corrupt " + a.Node + ": " + err.Error()
			}
			for _, name := range names {
				if parity.IsSidecar(name) {
					continue
				}
				if _, err := inject.CorruptStored(st, name, class, parity.DefaultPageSize, rng); err != nil {
					return "corrupt " + a.Node + " " + name + ": " + err.Error()
				}
				hit++
			}
		}
		if hit == 0 {
			return "corrupt " + a.Node + ": no checkpointed image to damage"
		}
		s.hist.Nemesis(n.name, fmt.Sprintf("corrupt %s x%d", label, hit))
		time.Sleep(settleWall)
	case ActWaitRole:
		n := s.nodes[a.Node]
		if err := waitUntil(barrierWait, func() bool {
			return n.up && n.srv.Role() == server.RolePrimary
		}); err != nil {
			return "wait-role " + a.Node + ": " + err.Error()
		}
	case ActWaitConn:
		n := s.nodes[a.Node]
		if err := waitUntil(barrierWait, func() bool {
			if !n.up {
				return false
			}
			fs := n.srv.CollectStats().Follower
			return fs != nil && fs.Pulls > 0
		}); err != nil {
			return "wait-conn " + a.Node + ": " + err.Error()
		}
	case ActRebalance:
		n := s.nodes[a.Node]
		if n == nil || !n.up {
			return "rebalance: node " + a.Node + " not up"
		}
		s.hist.Nemesis(n.name, "rebalance")
		srv := n.srv
		s.rebalWG.Add(1)
		go func() {
			defer func() {
				// A crash action can abort this node mid-rebalance;
				// dying with the node is the simulated outcome, not a
				// harness failure.
				if r := recover(); r != nil {
					s.noteRebal(fmt.Sprintf("rebalance died: %v", r))
				}
				s.rebalWG.Done()
			}()
			if _, err := srv.Rebalance(s.net.Dialer(n.name)); err != nil {
				s.noteRebal(fmt.Sprintf("rebalance: %v", err))
			}
		}()
	case ActWaitRebalance:
		if !s.waitRebalance(2 * barrierWait) {
			return "wait-rebalance: timed out"
		}
	}
	return ""
}

func (s *sim) noteRebal(msg string) {
	s.rebalMu.Lock()
	s.rebalErr = msg
	s.rebalMu.Unlock()
}

func (s *sim) waitRebalance(d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		s.rebalWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// --- workload ---

func (s *sim) generateOps() []OpSpec {
	ops := make([]OpSpec, 0, s.sched.Ops)
	for i := 0; i < s.sched.Ops; i++ {
		r := s.rng.Intn(1000)
		k := s.rng.Intn(s.sched.Keys)
		switch {
		case r < 500:
			ops = append(ops, OpSpec{Kind: OpPut, Key: k})
		case r < 1000-s.sched.DeleteFrac:
			ops = append(ops, OpSpec{Kind: OpGet, Key: k})
		default:
			ops = append(ops, OpSpec{Kind: OpDelete, Key: k})
		}
	}
	return ops
}

func keyFor(idx int) uint64 { return uint64(1000 + idx) }

func (s *sim) step(cl *simClient, op OpSpec) {
	key := keyFor(op.Key)
	keyStr := strconv.Itoa(op.Key)
	switch op.Kind {
	case OpPut:
		s.val++
		v := s.val
		s.hist.Invoke(cl.id, "put", keyStr, v)
		outcome := cl.put(key, v)
		s.hist.Return(cl.id, "put", keyStr, v, false, outcome)
	case OpDelete:
		s.hist.Invoke(cl.id, "delete", keyStr, 0)
		found, outcome := cl.del(key)
		s.hist.Return(cl.id, "delete", keyStr, 0, found, outcome)
	default:
		s.hist.Invoke(cl.id, "get", keyStr, 0)
		v, found, outcome := cl.get(key)
		s.hist.Return(cl.id, "get", keyStr, v, found, outcome)
	}
	s.vc.Advance(opTick)
}

func (s *sim) noteGate(key uint64, shard uint32, seq uint64) {
	s.gateShard[key] = shard
	if seq > s.gateMax[shard] {
		s.gateMax[shard] = seq
	}
}

func (s *sim) gateFor(key uint64) uint64 {
	sh, ok := s.gateShard[key]
	if !ok {
		return 0
	}
	return s.gateMax[sh]
}

// --- sim client ---

// simClient issues one operation at a time and classifies every attempt
// itself — deliberately NOT the production resilient client, whose
// internal retries would hide indeterminate attempts from the history.
// It is sticky: it stays on its current node until that node refuses or
// disappears, then rotates through the node order deterministically.
type simClient struct {
	s        *sim
	id       int
	cur      int
	conn     *server.Client
	connNode string
	cc       *server.ClusterClient
}

func (c *simClient) close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if c.cc != nil {
		c.cc.Close()
		c.cc = nil
	}
}

func (c *simClient) rotate() { c.cur = (c.cur + 1) % len(c.s.order) }

func (c *simClient) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.connNode = ""
	}
}

// ensure returns a connection to the client's current node, or nil when
// the node is down or unreachable (a definite refusal: nothing was sent).
func (c *simClient) ensure() *server.Client {
	n := c.s.nodes[c.s.order[c.cur]]
	if !n.up {
		c.drop()
		return nil
	}
	if c.conn != nil && c.connNode == n.name {
		return c.conn
	}
	c.drop()
	nc, err := c.s.dialFrom("c"+strconv.Itoa(c.id), n.addr)
	if err != nil {
		return nil
	}
	cl := server.NewClient(nc)
	cl.SetTimeout(clientWallTimeout)
	c.conn, c.connNode = cl, n.name
	return cl
}

func (s *sim) dialFrom(from, addr string) (net.Conn, error) {
	nc, err := s.net.Dialer(from)(addr)
	if err != nil {
		return nil, err
	}
	if s.flaky != nil {
		sub := *s.flaky
		s.flakyConns++
		sub.Seed = s.flaky.Seed + 0x9e3779b97f4a7c15*s.flakyConns
		return flaky.Wrap(nc, sub), nil
	}
	return nc, nil
}

// isRefusal reports errors that mean the operation definitely did not
// take effect: the server named a reason and refused before touching the
// data path. Everything else — severed connections, timeouts, and
// StatusUnavailable (which a primary also returns for a write it APPLIED
// but could not confirm on the replica) — is indeterminate.
func isRefusal(err error) bool {
	return errors.Is(err, server.ErrReadOnly) || errors.Is(err, server.ErrLagging) ||
		errors.Is(err, server.ErrMoved) || errors.Is(err, server.ErrWrongEpoch) ||
		errors.Is(err, server.ErrShed) || errors.Is(err, server.ErrDeadline) ||
		errors.Is(err, server.ErrProto)
}

func (c *simClient) attempts() int { return 2*len(c.s.order) + 2 }

func (c *simClient) put(key, val uint64) string {
	if c.s.sched.Topology == "cluster" {
		cc := c.ensureCluster()
		if cc == nil {
			return "fail"
		}
		if err := cc.Put(key, val); err != nil {
			// The routing client may have sent the write before the
			// error surfaced: indeterminate.
			return "info"
		}
		return "ok"
	}
	sawInfo := false
	for a := 0; a < c.attempts(); a++ {
		cl := c.ensure()
		if cl == nil {
			c.rotate()
			continue
		}
		var err error
		if c.s.sched.GatedReads {
			sh, seq, e := cl.PutSeq(key, val)
			if e == nil {
				c.s.noteGate(key, sh, seq)
			}
			err = e
		} else {
			err = cl.Put(key, val)
		}
		if err == nil {
			return "ok"
		}
		if isRefusal(err) {
			c.rotate()
			continue
		}
		sawInfo = true
		c.drop()
		c.rotate()
	}
	if sawInfo {
		return "info"
	}
	return "fail"
}

func (c *simClient) del(key uint64) (bool, string) {
	if c.s.sched.Topology == "cluster" {
		cc := c.ensureCluster()
		if cc == nil {
			return false, "fail"
		}
		found, err := cc.Delete(key)
		if err != nil {
			return false, "info"
		}
		return found, "ok"
	}
	sawInfo := false
	for a := 0; a < c.attempts(); a++ {
		cl := c.ensure()
		if cl == nil {
			c.rotate()
			continue
		}
		found, err := cl.Delete(key)
		if err == nil {
			return found, "ok"
		}
		if isRefusal(err) {
			c.rotate()
			continue
		}
		sawInfo = true
		c.drop()
		c.rotate()
	}
	if sawInfo {
		return false, "info"
	}
	return false, "fail"
}

// get classifies every read error as a definite failure: a read has no
// side effect, so a lost response carries no durability obligation and
// the checker simply drops it.
func (c *simClient) get(key uint64) (uint64, bool, string) {
	if c.s.sched.Topology == "cluster" {
		cc := c.ensureCluster()
		if cc == nil {
			return 0, false, "fail"
		}
		v, f, err := cc.Get(key)
		if err != nil {
			return 0, false, "fail"
		}
		return v, f, "ok"
	}
	for a := 0; a < c.attempts(); a++ {
		cl := c.ensure()
		if cl == nil {
			c.rotate()
			continue
		}
		var (
			v   uint64
			f   bool
			err error
		)
		if c.s.sched.GatedReads {
			v, f, err = cl.GetAt(key, c.s.gateFor(key))
		} else {
			v, f, err = cl.Get(key)
		}
		if err == nil {
			return v, f, "ok"
		}
		if !isRefusal(err) {
			c.drop()
		}
		c.rotate()
	}
	return 0, false, "fail"
}

func (c *simClient) ensureCluster() *server.ClusterClient {
	if c.cc != nil {
		return c.cc
	}
	seeds := make([]string, 0, len(c.s.order))
	for _, name := range c.s.order {
		seeds = append(seeds, c.s.nodes[name].addr)
	}
	cc, err := server.DialCluster(seeds, server.RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		Timeout:     2 * time.Second,
		Seed:        uint64(c.s.seed) + uint64(c.id)*977,
	}, c.s.dialClusterFrom("c"+strconv.Itoa(c.id)))
	if err != nil {
		return nil
	}
	c.cc = cc
	return cc
}

func (s *sim) dialClusterFrom(from string) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) { return s.dialFrom(from, addr) }
}

// waitUntil polls cond every millisecond until it holds or the budget
// runs out (wall time: barriers are liveness, not history).
func waitUntil(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not reached within %s", d)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}
