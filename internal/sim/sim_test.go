package sim

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestVClock(t *testing.T) {
	c := NewVClock()
	t0 := c.Now()
	if c.Elapsed() != 0 {
		t.Fatalf("fresh clock elapsed %v", c.Elapsed())
	}
	ch := c.After(10 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("After fired before any advance")
	default:
	}
	c.Advance(5 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("After fired early")
	default:
	}
	if c.Waiters() != 1 {
		t.Fatalf("waiters = %d, want 1", c.Waiters())
	}
	c.Advance(5 * time.Millisecond)
	select {
	case at := <-ch:
		if got := at.Sub(t0); got != 10*time.Millisecond {
			t.Fatalf("fired at +%v, want +10ms", got)
		}
	case <-time.After(time.Second):
		t.Fatal("After never fired despite due advance")
	}
	// Sleep self-advances.
	c.Sleep(3 * time.Millisecond)
	if got := c.Elapsed(); got != 13*time.Millisecond {
		t.Fatalf("elapsed = %v, want 13ms", got)
	}
	// Non-positive After fires immediately.
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestNetPartition(t *testing.T) {
	n := NewNet()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 1)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
					if _, err := c.Write(buf); err != nil {
						c.Close()
						return
					}
				}
			}(c)
		}
	}()
	n.Register("srv", l.Addr().String())
	if got := n.Addr("srv"); got != l.Addr().String() {
		t.Fatalf("Addr = %q", got)
	}

	dial := n.Dialer("cli")
	c, err := dial(n.Addr("srv"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}

	// Block severs the live conn and refuses new dials.
	n.Block("cli", "srv")
	if !n.Blocked("cli", "srv") {
		t.Fatal("link should report blocked")
	}
	if _, err := c.Write([]byte{1}); err == nil {
		t.Fatal("write over blocked link succeeded")
	}
	if _, err := dial(n.Addr("srv")); err == nil {
		t.Fatal("dial over blocked link succeeded")
	}
	// Directed: the reverse direction is unaffected.
	if n.Blocked("srv", "cli") {
		t.Fatal("reverse link blocked by directed Block")
	}

	n.Unblock("cli", "srv")
	c2, err := dial(n.Addr("srv"))
	if err != nil {
		t.Fatalf("dial after unblock: %v", err)
	}
	c2.Close()

	n.Partition("cli", "srv")
	if !n.Blocked("cli", "srv") || !n.Blocked("srv", "cli") {
		t.Fatal("partition should block both directions")
	}
	n.Heal("cli", "srv")
	if n.Blocked("cli", "srv") || n.Blocked("srv", "cli") {
		t.Fatal("heal should clear both directions")
	}
	n.Block("cli", "srv")
	n.HealAll()
	if n.Blocked("cli", "srv") {
		t.Fatal("heal-all should clear everything")
	}
	// Dials to unregistered addresses pass through unwrapped.
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	c3, err := dial(l2.Addr().String())
	if err != nil {
		t.Fatalf("dial unregistered: %v", err)
	}
	c3.Close()
}

func TestHistoryToLinz(t *testing.T) {
	vc := NewVClock()
	h := NewHistory(vc)
	h.Invoke(0, "put", "k", 7)
	h.Return(0, "put", "k", 7, false, "ok")
	h.Invoke(1, "get", "k", 0)
	h.Crash("a")
	h.Return(1, "get", "k", 7, true, "ok")
	h.Invoke(0, "delete", "k", 0)
	h.Return(0, "delete", "k", 0, true, "info")
	h.Nemesis("a", "something")

	lh, err := h.ToLinz()
	if err != nil {
		t.Fatal(err)
	}
	if len(lh.Ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(lh.Ops))
	}
	if len(lh.Crashes) != 1 || lh.Crashes[0] != 3 {
		t.Fatalf("crashes = %v, want [3]", lh.Crashes)
	}
	if lh.Ops[1].Value != 7 || !lh.Ops[1].Found {
		t.Fatalf("get not carried: %+v", lh.Ops[1])
	}
	if got := len(bytes.Split(bytes.TrimSpace(h.JSONL()), []byte("\n"))); got != 8 {
		t.Fatalf("JSONL lines = %d, want 8", got)
	}

	// Overlapping invocations from one client are a harness bug.
	bad := NewHistory(vc)
	bad.Invoke(0, "put", "k", 1)
	bad.Invoke(0, "put", "k", 2)
	if _, err := bad.ToLinz(); err == nil {
		t.Fatal("overlapping invocations not rejected")
	}
	// A return with no invocation is too.
	bad2 := NewHistory(vc)
	bad2.Return(0, "put", "k", 1, false, "ok")
	if _, err := bad2.ToLinz(); err == nil {
		t.Fatal("orphan return not rejected")
	}
}

func TestSchedulesByName(t *testing.T) {
	for _, name := range []string{
		"steady", "flaky-steady", "split-brain-unfenced", "split-brain-fenced",
		"partition-heal", "crash-restart-replica", "crash-failover-restart",
		"migration-kill", "corrupt-under-load",
	} {
		s, err := Schedules(name, 60)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("Schedules(%q).Name = %q", name, s.Name)
		}
	}
	if _, err := Schedules("no-such", 60); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

// TestDeterminism is the reproducibility gate: the same (schedule, seed)
// must produce a byte-identical history, from a totally separate stack
// of servers on different ports.
func TestDeterminism(t *testing.T) {
	run := func() *RunResult {
		r, err := Run(RunConfig{Schedule: Steady(60), Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if !r1.Ok || !r2.Ok {
		t.Fatalf("steady runs not ok: %s / %s", r1.Detail, r2.Detail)
	}
	if !bytes.Equal(r1.History, r2.History) {
		t.Fatalf("same-seed histories differ:\n--- run1 ---\n%s--- run2 ---\n%s",
			r1.History, r2.History)
	}
	r3, err := Run(RunConfig{Schedule: Steady(60), Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(r1.History, r3.History) {
		t.Fatal("different seeds produced identical histories")
	}
}

// TestFenceGate is the headline safety result: with fencing off, the
// partitioned primary keeps acknowledging writes the promoted replica
// never saw, and the checker must flag the durable-linearizability
// violation. Same script with fencing on checks clean.
func TestFenceGate(t *testing.T) {
	unfenced, err := Run(RunConfig{Schedule: SplitBrain(false), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if unfenced.LinzOK {
		t.Fatalf("unfenced split-brain checked clean; history:\n%s", unfenced.History)
	}
	if !unfenced.Ok {
		t.Fatalf("unfenced gate run failed: %s", unfenced.Detail)
	}

	fenced, err := Run(RunConfig{Schedule: SplitBrain(true), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !fenced.LinzOK {
		t.Fatalf("fenced split-brain flagged: %v\nhistory:\n%s", fenced.Violations, fenced.History)
	}
	if !fenced.Ok {
		t.Fatalf("fenced gate run failed: %s", fenced.Detail)
	}
}

func TestSweepSchedules(t *testing.T) {
	scheds := []Schedule{
		PartitionHeal(90),
		CrashRestartReplica(90),
		CrashFailoverRestart(90),
	}
	for _, sched := range scheds {
		for _, seed := range []int64{1, 2} {
			r, err := Run(RunConfig{Schedule: sched, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", sched.Name, seed, err)
			}
			if !r.Ok {
				t.Fatalf("%s seed %d: %s; violations %v\nhistory:\n%s",
					sched.Name, seed, r.Detail, r.Violations, r.History)
			}
			if r.Crashes == 0 && sched.Name != "partition-heal" {
				t.Fatalf("%s seed %d: no crash recorded", sched.Name, seed)
			}
		}
	}
}

func TestMigrationKill(t *testing.T) {
	r, err := Run(RunConfig{Schedule: MigrationKill(80), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ok {
		t.Fatalf("migration-kill: %s; violations %v\nhistory:\n%s",
			r.Detail, r.Violations, r.History)
	}
	if r.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", r.Crashes)
	}
}

// TestCorruptUnderLoad drives the media nemesis: stored pool images are
// damaged under live load — once left to the at-rest repair path and
// twice driven through crash recovery, on the primary and on the replica.
// The history must stay durably linearizable (repairs happen in place;
// corruption never surfaces as lost or resurrected writes), and at least
// one page must actually have been reconstructed from parity by a node
// that survived to the end of the run.
func TestCorruptUnderLoad(t *testing.T) {
	for _, seed := range []int64{1, 4} {
		r, err := Run(RunConfig{Schedule: CorruptUnderLoad(90), Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.Ok {
			t.Fatalf("seed %d: %s; violations %v\nhistory:\n%s",
				seed, r.Detail, r.Violations, r.History)
		}
		if r.Crashes != 2 {
			t.Errorf("seed %d: crashes = %d, want 2", seed, r.Crashes)
		}
		if r.PagesRepaired == 0 {
			t.Errorf("seed %d: no page reconstructed from parity", seed)
		}
		if r.MediaUnrecoverable != 0 {
			t.Errorf("seed %d: %d unrecoverable rangelet(s); single-page damage must stay within parity's reach",
				seed, r.MediaUnrecoverable)
		}
	}
}

func TestFlakySteady(t *testing.T) {
	r, err := Run(RunConfig{Schedule: FlakySteady(80), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ok {
		t.Fatalf("flaky-steady: %s; violations %v", r.Detail, r.Violations)
	}
}

func TestRunHistoryDir(t *testing.T) {
	dir := t.TempDir()
	r, err := Run(RunConfig{Schedule: Steady(30), Seed: 9, HistoryDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if r.HistoryPath == "" {
		t.Fatal("no history path recorded")
	}
}

func TestRunRejectsEmptySchedule(t *testing.T) {
	if _, err := Run(RunConfig{Schedule: Schedule{Name: "x", Topology: "pair"}}); err == nil {
		t.Fatal("empty schedule accepted")
	}
}
