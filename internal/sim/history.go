package sim

import (
	"encoding/json"
	"fmt"
	"sync"

	"nvref/internal/sim/linz"
)

// Event is one line of the recorded history. Ordering is by Idx — the
// driver-assigned logical sequence number — which is the real timebase
// of the simulation; VUS (virtual microseconds since the sim epoch) is
// carried for window debugging and crash attribution.
type Event struct {
	Idx    int    `json:"i"`
	Type   string `json:"type"` // "inv", "ret", "crash", "nemesis"
	VUS    int64  `json:"vus"`
	Client int    `json:"client,omitempty"`
	Op     string `json:"op,omitempty"` // "put", "get", "delete"
	Key    string `json:"key,omitempty"`
	Value  uint64 `json:"value,omitempty"`
	Found  bool   `json:"found,omitempty"`
	// Outcome on a "ret": "ok", "fail", or "info" (indeterminate — the
	// request was sent but no acknowledgement came back; it may or may
	// not have taken effect).
	Outcome string `json:"outcome,omitempty"`
	Node    string `json:"node,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// History records the events of one simulation run. It is safe for use
// from the driver plus nemesis goroutine.
type History struct {
	mu     sync.Mutex
	clock  *VClock
	events []Event
}

// NewHistory returns a recorder stamping events from the given clock.
func NewHistory(clock *VClock) *History {
	return &History{clock: clock}
}

func (h *History) append(e Event) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	e.Idx = len(h.events)
	e.VUS = h.clock.Elapsed().Microseconds()
	h.events = append(h.events, e)
	return e.Idx
}

// Invoke records a client invocation and returns its event index.
func (h *History) Invoke(client int, op, key string, value uint64) int {
	return h.append(Event{Type: "inv", Client: client, Op: op, Key: key, Value: value})
}

// Return records the response paired with a prior Invoke from the same
// client. outcome is "ok", "fail", or "info".
func (h *History) Return(client int, op, key string, value uint64, found bool, outcome string) {
	h.append(Event{Type: "ret", Client: client, Op: op, Key: key,
		Value: value, Found: found, Outcome: outcome})
}

// Crash records a node crash marker. Every operation acknowledged before
// this point must survive it (durable linearizability); indeterminate
// operations invoked before it may be cut off by it.
func (h *History) Crash(node string) {
	h.append(Event{Type: "crash", Node: node})
}

// Nemesis records a non-crash nemesis action for trace readability.
func (h *History) Nemesis(node, detail string) {
	h.append(Event{Type: "nemesis", Node: node, Detail: detail})
}

// Events returns a snapshot copy of the recorded events.
func (h *History) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Event, len(h.events))
	copy(out, h.events)
	return out
}

// JSONL renders the history one event per line, suitable for writing to
// a .jsonl file and for the byte-identical determinism comparison.
func (h *History) JSONL() []byte {
	var buf []byte
	for _, e := range h.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			panic(err) // Event has no unmarshalable fields
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	return buf
}

// ToLinz converts the recorded event stream into the checker's history
// form: invocations matched to returns per client (the driver keeps at
// most one operation in flight per client), crash markers translated to
// op-index positions.
func (h *History) ToLinz() (linz.History, error) {
	events := h.Events()
	var lh linz.History
	// pending[client] -> index into lh.Ops of the open invocation.
	pending := make(map[int]int)
	for _, e := range events {
		switch e.Type {
		case "inv":
			if _, open := pending[e.Client]; open {
				return lh, fmt.Errorf("client %d: overlapping invocations at event %d", e.Client, e.Idx)
			}
			var kind linz.Kind
			switch e.Op {
			case "put":
				kind = linz.Put
			case "get":
				kind = linz.Get
			case "delete":
				kind = linz.Delete
			default:
				return lh, fmt.Errorf("event %d: unknown op %q", e.Idx, e.Op)
			}
			pending[e.Client] = len(lh.Ops)
			lh.Ops = append(lh.Ops, linz.Op{
				Kind: kind, Key: e.Key, Value: e.Value,
				Call: e.Idx, Return: -1, Outcome: linz.Info,
			})
		case "ret":
			oi, open := pending[e.Client]
			if !open {
				return lh, fmt.Errorf("client %d: return without invocation at event %d", e.Client, e.Idx)
			}
			delete(pending, e.Client)
			op := &lh.Ops[oi]
			op.Return = e.Idx
			op.Found = e.Found
			if op.Kind == linz.Get {
				op.Value = e.Value
			}
			switch e.Outcome {
			case "ok":
				op.Outcome = linz.Ok
			case "fail":
				op.Outcome = linz.Fail
			case "info":
				op.Outcome = linz.Info
			default:
				return lh, fmt.Errorf("event %d: unknown outcome %q", e.Idx, e.Outcome)
			}
		case "crash":
			lh.Crashes = append(lh.Crashes, e.Idx)
		}
	}
	return lh, nil
}
