package minc

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders the typed, inference-annotated program: each function with
// its parameter properties and each statement with its expressions; every
// pointer expression carries its inferred property, and sites where the SW
// build keeps a dynamic check are marked `!chk`. This is the tooling view
// of the paper's Figure 9: it shows exactly which checks the compiler
// could not eliminate.
func Dump(prog *Program) string {
	var b strings.Builder

	names := make([]string, 0, len(prog.Funcs))
	for name := range prog.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)

	if len(prog.Globals) > 0 {
		b.WriteString("globals:\n")
		for _, g := range prog.Globals {
			fmt.Fprintf(&b, "  %s %s", g.Ty, g.Name)
			if g.Ty.IsPtr() {
				fmt.Fprintf(&b, " [%s]", g.Prop)
			}
			b.WriteString("\n")
		}
	}

	for _, name := range names {
		fn := prog.Funcs[name]
		fmt.Fprintf(&b, "func %s %s(", fn.Ret, fn.Name)
		for i, prm := range fn.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", prm.Ty, prm.Name)
			if prm.Ty.IsPtr() && i < len(fn.Locals) {
				fmt.Fprintf(&b, " [%s]", fn.Locals[i].Prop)
			}
		}
		b.WriteString(")\n")
		dumpStmt(&b, fn.Body, 1)
	}
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func dumpStmt(b *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *DeclStmt:
		indent(b, depth)
		fmt.Fprintf(b, "decl %s %s", st.Ty, st.Name)
		if st.Init != nil {
			fmt.Fprintf(b, " = %s", dumpExpr(st.Init))
		}
		b.WriteString("\n")
	case *ExprStmt:
		indent(b, depth)
		fmt.Fprintf(b, "%s\n", dumpExpr(st.E))
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "if %s\n", dumpExpr(st.Cond))
		dumpStmt(b, st.Then, depth+1)
		if st.Else != nil {
			indent(b, depth)
			b.WriteString("else\n")
			dumpStmt(b, st.Else, depth+1)
		}
	case *WhileStmt:
		indent(b, depth)
		fmt.Fprintf(b, "while %s\n", dumpExpr(st.Cond))
		dumpStmt(b, st.Body, depth+1)
	case *DoWhileStmt:
		indent(b, depth)
		b.WriteString("do\n")
		dumpStmt(b, st.Body, depth+1)
		indent(b, depth)
		fmt.Fprintf(b, "while %s\n", dumpExpr(st.Cond))
	case *ForStmt:
		indent(b, depth)
		b.WriteString("for\n")
		if st.Init != nil {
			dumpStmt(b, st.Init, depth+1)
		}
		if st.Cond != nil {
			indent(b, depth+1)
			fmt.Fprintf(b, "cond %s\n", dumpExpr(st.Cond))
		}
		if st.Post != nil {
			indent(b, depth+1)
			fmt.Fprintf(b, "post %s\n", dumpExpr(st.Post))
		}
		dumpStmt(b, st.Body, depth+1)
	case *ReturnStmt:
		indent(b, depth)
		if st.E != nil {
			fmt.Fprintf(b, "return %s\n", dumpExpr(st.E))
		} else {
			b.WriteString("return\n")
		}
	case *Block:
		for _, inner := range st.Stmts {
			dumpStmt(b, inner, depth)
		}
	case *SwitchStmt:
		indent(b, depth)
		fmt.Fprintf(b, "switch %s\n", dumpExpr(st.Cond))
		for _, cs := range st.Cases {
			indent(b, depth+1)
			if cs.Default {
				b.WriteString("default:\n")
			} else {
				fmt.Fprintf(b, "case %v:\n", cs.Vals)
			}
			for _, inner := range cs.Body {
				dumpStmt(b, inner, depth+2)
			}
		}
	case *BreakStmt:
		indent(b, depth)
		b.WriteString("break\n")
	case *ContinueStmt:
		indent(b, depth)
		b.WriteString("continue\n")
	}
}

// dumpExpr renders an expression with inference annotations.
func dumpExpr(e Expr) string {
	if e == nil {
		return "<nil>"
	}
	info := e.exprBase()
	var body string
	switch ex := e.(type) {
	case *NumLit:
		body = fmt.Sprintf("%d", ex.V)
	case *NullLit:
		body = "NULL"
	case *VarRef:
		body = ex.Name
	case *Unary:
		body = fmt.Sprintf("(%s%s)", ex.Op, dumpExpr(ex.X))
	case *PostIncDec:
		body = fmt.Sprintf("(%s%s)", dumpExpr(ex.X), ex.Op)
	case *Binary:
		body = fmt.Sprintf("(%s %s %s)", dumpExpr(ex.X), ex.Op, dumpExpr(ex.Y))
	case *Assign:
		body = fmt.Sprintf("(%s %s %s)", dumpExpr(ex.LHS), ex.Op, dumpExpr(ex.RHS))
	case *Cond:
		body = fmt.Sprintf("(%s ? %s : %s)", dumpExpr(ex.C), dumpExpr(ex.T), dumpExpr(ex.F))
	case *Call:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = dumpExpr(a)
		}
		callee := ex.Name
		if ex.Sym != nil {
			callee = "*" + ex.Name
		}
		body = fmt.Sprintf("%s(%s)", callee, strings.Join(args, ", "))
	case *Index:
		body = fmt.Sprintf("%s[%s]", dumpExpr(ex.X), dumpExpr(ex.I))
	case *Member:
		sep := "."
		if ex.Arrow {
			sep = "->"
		}
		body = fmt.Sprintf("%s%s%s", dumpExpr(ex.X), sep, ex.Name)
	case *Cast:
		body = fmt.Sprintf("(%s)%s", ex.To, dumpExpr(ex.X))
	case *SizeofType:
		if ex.Of != nil {
			body = fmt.Sprintf("sizeof(%s)", dumpExpr(ex.Of))
		} else {
			body = fmt.Sprintf("sizeof(%s)", ex.T)
		}
	default:
		body = fmt.Sprintf("<%T>", e)
	}

	var ann []string
	if info.Ty != nil && info.Ty.IsPtr() && info.Prop != PropNone {
		ann = append(ann, info.Prop.String())
	}
	if info.NeedsCheck {
		ann = append(ann, "!chk")
	}
	if len(ann) > 0 {
		return fmt.Sprintf("%s[%s]", body, strings.Join(ann, " "))
	}
	return body
}
