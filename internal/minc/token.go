// Package minc is a compiler and interpreter for a small C subset, built
// to reproduce the paper's compiler-based method (Section V-B) and its
// soundness methodology (Sections IV and VII-B).
//
// The pipeline is: lexer → parser → typechecker → pointer-property
// inference → interpretation over an rt.Context. The inference pass is the
// paper's backward/forward dataflow: starting from functions known to
// return or accept relative addresses (pmalloc, pfree) and from
// stack/volatile sources (malloc, address-of), it resolves the
// persistence property of as many pointer expressions as possible; every
// pointer operation whose operand property stays unknown gets a dynamic
// check when executed under the SW model. Because the interpreter runs
// over rt.Context, the same minc program executes under the Volatile,
// Explicit, SW, and HW models with full timing.
//
// Types are ILP64: char, int, long and pointers are all 8 bytes, which
// keeps the memory model word-granular without affecting pointer
// semantics, the property under test.
package minc

import (
	"fmt"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Num  int64
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "<eof>"
	}
	return t.Text
}

var keywords = map[string]bool{
	"int": true, "char": true, "long": true, "void": true,
	"struct": true, "if": true, "else": true, "while": true,
	"for": true, "return": true, "sizeof": true, "break": true,
	"continue": true, "NULL": true, "do": true,
	"switch": true, "case": true, "default": true,
}

// Multi-character operators, longest first.
var punctuators = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "->", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

// LexError reports a lexical problem with position.
type LexError struct {
	Line, Col int
	Msg       string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("minc: lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenizes source text.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)

	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}

	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			advance(1)

		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}

		case c == '/' && i+1 < n && src[i+1] == '*':
			advance(2)
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				advance(1)
			}
			if i+1 >= n {
				return nil, &LexError{line, col, "unterminated block comment"}
			}
			advance(2)

		case unicode.IsDigit(rune(c)):
			startLine, startCol := line, col
			j := i
			base := int64(10)
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				j += 2
			}
			for j < n && isNumChar(src[j], base) {
				j++
			}
			text := src[i:j]
			var v int64
			var err error
			if base == 16 {
				_, err = fmt.Sscanf(text, "0x%x", &v)
				if err != nil {
					_, err = fmt.Sscanf(text, "0X%x", &v)
				}
			} else {
				_, err = fmt.Sscanf(text, "%d", &v)
			}
			if err != nil {
				return nil, &LexError{startLine, startCol, "bad number " + text}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: text, Num: v, Line: startLine, Col: startCol})
			advance(j - i)

		case c == '\'':
			startLine, startCol := line, col
			if i+2 < n && src[i+1] == '\\' && src[i+3] == '\'' {
				v := escapeChar(src[i+2])
				toks = append(toks, Token{Kind: TokNumber, Text: src[i : i+4], Num: int64(v), Line: startLine, Col: startCol})
				advance(4)
			} else if i+2 < n && src[i+2] == '\'' {
				toks = append(toks, Token{Kind: TokNumber, Text: src[i : i+3], Num: int64(src[i+1]), Line: startLine, Col: startCol})
				advance(3)
			} else {
				return nil, &LexError{startLine, startCol, "bad character literal"}
			}

		case unicode.IsLetter(rune(c)) || c == '_':
			startLine, startCol := line, col
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			text := src[i:j]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})
			advance(j - i)

		default:
			matched := false
			for _, p := range punctuators {
				if len(src)-i >= len(p) && src[i:i+len(p)] == p {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line, Col: col})
					advance(len(p))
					matched = true
					break
				}
			}
			if !matched {
				return nil, &LexError{line, col, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isNumChar(c byte, base int64) bool {
	if base == 16 {
		return unicode.IsDigit(rune(c)) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c == 'x' || c == 'X'
	}
	return unicode.IsDigit(rune(c))
}

func escapeChar(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	}
	return c
}
