package minc

// The soundness corpus: the reproduction of the paper's Section VII-B
// methodology. OperationTests covers every row of the Figure 4 semantic
// table with persistent (pmalloc) and volatile (malloc/stack) operands;
// RegressionTests are small complete programs in the style of the
// gcc-torture suite the paper ran. Every program must produce identical
// output under the Volatile, Explicit, SW, and HW models.

// CorpusProgram is one soundness test.
type CorpusProgram struct {
	Name   string
	Source string
	// Expect is the required print output; nil means cross-mode agreement
	// is the only requirement.
	Expect []int64
}

// OperationTests exercises each pointer-operation row of Figure 4.
var OperationTests = []CorpusProgram{
	{
		Name: "cast-ptr-to-ptr",
		Source: `
int main() {
    long* p = (long*)pmalloc(8);
    *p = 77;
    char* q = (char*)p;      // (T*)p keeps the value
    long* r = (long*)q;
    print(*r);
    return 0;
}`,
		Expect: []int64{77},
	},
	{
		Name: "cast-int-to-ptr-roundtrip",
		Source: `
int main() {
    long* p = (long*)pmalloc(8);
    *p = 5;
    long a = (long)p;        // (I)pxr: yields the virtual address
    long* q = (long*)a;      // (T*)i: reinterpret back
    print(*q);
    return 0;
}`,
		Expect: []int64{5},
	},
	{
		Name: "cast-int-of-volatile-ptr",
		Source: `
int main() {
    long* p = (long*)malloc(8);
    *p = 9;
    long a = (long)p;
    long* q = (long*)a;
    print(*q);
    return 0;
}`,
		Expect: []int64{9},
	},
	{
		Name: "deref-both-kinds",
		Source: `
int main() {
    long* v = (long*)malloc(8);
    long* n = (long*)pmalloc(8);
    *v = 1; *n = 2;          // *pxv and *pxr stores
    print(*v + *n);
    return 0;
}`,
		Expect: []int64{3},
	},
	{
		Name: "address-of-local",
		Source: `
int main() {
    long x = 40;
    long* p = &x;            // &p: stack address (virtual)
    *p = *p + 2;
    print(x);
    return 0;
}`,
		Expect: []int64{42},
	},
	{
		Name: "address-of-field",
		Source: `
struct Pair { long a; long b; };
int main() {
    struct Pair* p = (struct Pair*)pmalloc(sizeof(struct Pair));
    p->a = 10; p->b = 20;
    long* pb = &p->b;        // member address keeps the base's form
    print(*pb);
    return 0;
}`,
		Expect: []int64{20},
	},
	{
		Name: "sizeof-and-alignment",
		Source: `
struct Node { long v; struct Node* next; };
int main() {
    print(sizeof(long));
    print(sizeof(struct Node));
    print(sizeof(struct Node*));
    long x = 3;
    print(sizeof x);
    return 0;
}`,
		Expect: []int64{8, 16, 8, 8},
	},
	{
		Name: "assignment-pny-pxv",
		Source: `
struct Box { long* slot; };
int main() {
    struct Box* b = (struct Box*)pmalloc(sizeof(struct Box));
    long* v = (long*)pmalloc(8);
    *v = 88;
    b->slot = v;             // store into NVM: becomes relative
    print(*(b->slot));
    return 0;
}`,
		Expect: []int64{88},
	},
	{
		Name: "assignment-pdy-pxr",
		Source: `
struct Box { long* slot; };
int main() {
    struct Box* b = (struct Box*)pmalloc(sizeof(struct Box));
    long* v = (long*)pmalloc(8);
    *v = 31;
    b->slot = v;
    long* local = b->slot;   // load into DRAM local: virtual form
    print(*local);
    return 0;
}`,
		Expect: []int64{31},
	},
	{
		Name: "assignment-volatile-into-nvm",
		Source: `
struct Box { long* slot; };
int main() {
    struct Box* b = (struct Box*)pmalloc(sizeof(struct Box));
    long* v = (long*)malloc(8);
    *v = 64;
    b->slot = v;             // volatile pointer stored in NVM
    print(*(b->slot));
    return 0;
}`,
		Expect: []int64{64},
	},
	{
		Name: "assignment-null",
		Source: `
struct Box { long* slot; };
int main() {
    struct Box* b = (struct Box*)pmalloc(sizeof(struct Box));
    b->slot = NULL;
    if (b->slot == NULL) print(1); else print(0);
    return 0;
}`,
		Expect: []int64{1},
	},
	{
		Name: "pointer-plus-minus-int",
		Source: `
int main() {
    long* a = (long*)pmalloc(80);
    int i = 0;
    while (i < 10) { a[i] = i * i; i = i + 1; }
    long* p = a + 7;         // pxy + i keeps representation
    print(*p);
    p = p - 3;               // pxy - i
    print(*p);
    p += 2;                  // pxy += i
    print(*p);
    p -= 6;                  // pxy -= i
    print(*p);
    return 0;
}`,
		Expect: []int64{49, 16, 36, 0},
	},
	{
		Name: "int-plus-pointer",
		Source: `
int main() {
    long* a = (long*)pmalloc(40);
    a[0] = 1; a[1] = 2; a[2] = 3;
    long* p = 2 + a;         // i + pxy
    print(*p);
    return 0;
}`,
		Expect: []int64{3},
	},
	{
		Name: "pointer-difference-same-pool",
		Source: `
int main() {
    long* a = (long*)pmalloc(80);
    long* p = a + 9;
    print(p - a);            // pxr - pxr': offset arithmetic
    print(a - p);
    return 0;
}`,
		Expect: []int64{9, -9},
	},
	{
		Name: "pointer-difference-volatile",
		Source: `
int main() {
    long* a = (long*)malloc(80);
    long* p = a + 4;
    print(p - a);
    return 0;
}`,
		Expect: []int64{4},
	},
	{
		Name: "increment-decrement",
		Source: `
int main() {
    long* a = (long*)pmalloc(48);
    int i = 0;
    for (i = 0; i < 6; i++) a[i] = i + 100;
    long* p = a;
    ++p;                     // ++p
    print(*p);
    p++;                     // p++
    print(*p);
    --p;                     // --p
    print(*p);
    p--;                     // p--
    print(*p);
    return 0;
}`,
		Expect: []int64{101, 102, 101, 100},
	},
	{
		Name: "relational-operators",
		Source: `
int main() {
    long* a = (long*)pmalloc(80);
    long* p = a + 3;
    long* q = a + 5;
    if (p < q) print(1); else print(0);
    if (q > p) print(1); else print(0);
    if (p <= p) print(1); else print(0);
    if (q >= p) print(1); else print(0);
    if (p == a + 3) print(1); else print(0);
    if (p != q) print(1); else print(0);
    return 0;
}`,
		Expect: []int64{1, 1, 1, 1, 1, 1},
	},
	{
		Name: "equality-mixed-heaps",
		Source: `
int main() {
    long* n = (long*)pmalloc(8);
    long* v = (long*)malloc(8);
    if (n == v) print(1); else print(0);   // distinct objects never equal
    long* n2 = n;
    if (n == n2) print(1); else print(0);
    return 0;
}`,
		Expect: []int64{0, 1},
	},
	{
		Name: "logical-operators-on-pointers",
		Source: `
int main() {
    long* p = (long*)pmalloc(8);
    long* q = NULL;
    if (p && !q) print(1); else print(0);  // (I)p truthiness
    if (p || q) print(1); else print(0);
    if (q && p) print(1); else print(0);
    return 0;
}`,
		Expect: []int64{1, 1, 0},
	},
	{
		Name: "conditional-operator-on-pointers",
		Source: `
int main() {
    long* a = (long*)pmalloc(8);
    long* b = (long*)malloc(8);
    *a = 10; *b = 20;
    int pick = 1;
    long* p = pick ? a : b;  // p ? expr : expr
    print(*p);
    p = 0 ? a : b;
    print(*p);
    return 0;
}`,
		Expect: []int64{10, 20},
	},
	{
		Name: "index-operator",
		Source: `
int main() {
    long* a = (long*)pmalloc(64);
    int i;
    for (i = 0; i < 8; i++) a[i] = 8 - i;
    long s = 0;
    for (i = 0; i < 8; i++) s += a[i];     // p[i] loads
    print(s);
    a[3] = 99;                              // p[i] store
    print(a[3]);
    return 0;
}`,
		Expect: []int64{36, 99},
	},
	{
		Name: "member-dot-and-arrow",
		Source: `
struct P { long x; long y; };
int main() {
    struct P* h = (struct P*)pmalloc(sizeof(struct P));
    h->x = 3; h->y = 4;                    // p->identifier
    print(h->x * h->x + h->y * h->y);
    return 0;
}`,
		Expect: []int64{25},
	},
	{
		Name: "null-comparisons",
		Source: `
int main() {
    long* p = (long*)pmalloc(8);
    if (p == NULL) print(1); else print(0);  // p op NULL
    if (p != NULL) print(1); else print(0);
    long* q = NULL;
    if (q == NULL) print(1); else print(0);
    return 0;
}`,
		Expect: []int64{0, 1, 1},
	},
	{
		Name: "pointer-to-pointer",
		Source: `
int main() {
    long** pp = (long**)pmalloc(8);
    long* p = (long*)pmalloc(8);
    *p = 123;
    *pp = p;                 // pointer stored in NVM slot
    long* got = *pp;         // loaded back
    print(*got);
    print(**pp);
    return 0;
}`,
		Expect: []int64{123, 123},
	},
	{
		Name: "free-via-either-form",
		Source: `
int main() {
    long* p = (long*)pmalloc(8);
    *p = 1;
    pfree(p);
    long* q = (long*)pmalloc(8);   // reuses the freed block
    *q = 2;
    print(*q);
    long* v = (long*)malloc(16);
    free(v);
    print(3);
    return 0;
}`,
		Expect: []int64{2, 3},
	},
	{
		Name: "mixed-pool-and-heap-array",
		Source: `
int main() {
    long** table = (long**)pmalloc(32);
    int i;
    for (i = 0; i < 4; i++) {
        long* cell;
        if (i % 2 == 0) cell = (long*)pmalloc(8);
        else cell = (long*)malloc(8);
        *cell = i * 11;
        table[i] = cell;     // NVM slots hold both kinds of pointers
    }
    long s = 0;
    for (i = 0; i < 4; i++) s += *(table[i]);
    print(s);
    return 0;
}`,
		Expect: []int64{66},
	},
}

// RegressionTests are complete programs in the gcc-torture style.
var RegressionTests = []CorpusProgram{
	{
		Name: "fib-recursive",
		Source: `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { print(fib(15)); return 0; }`,
		Expect: []int64{610},
	},
	{
		Name: "linked-list-append",
		Source: `
struct Node { long value; struct Node* next; };
struct Node* push(struct Node* head, long v) {
    struct Node* n = (struct Node*)pmalloc(sizeof(struct Node));
    n->value = v;
    n->next = head;
    return n;
}
int main() {
    struct Node* head = NULL;
    int i;
    for (i = 1; i <= 10; i++) head = push(head, i);
    long sum = 0;
    struct Node* p = head;
    while (p != NULL) { sum += p->value; p = p->next; }
    print(sum);
    return 0;
}`,
		Expect: []int64{55},
	},
	{
		Name: "list-reverse-in-place",
		Source: `
struct Node { long v; struct Node* next; };
int main() {
    struct Node* head = NULL;
    int i;
    for (i = 0; i < 5; i++) {
        struct Node* n = (struct Node*)pmalloc(sizeof(struct Node));
        n->v = i; n->next = head; head = n;
    }
    struct Node* prev = NULL;
    struct Node* cur = head;
    while (cur != NULL) {
        struct Node* nxt = cur->next;
        cur->next = prev;
        prev = cur;
        cur = nxt;
    }
    struct Node* p = prev;
    while (p != NULL) { print(p->v); p = p->next; }
    return 0;
}`,
		Expect: []int64{0, 1, 2, 3, 4},
	},
	{
		Name: "bubble-sort-persistent-array",
		Source: `
int main() {
    int n = 12;
    long* a = (long*)pmalloc(n * 8);
    int i; int j;
    for (i = 0; i < n; i++) a[i] = (i * 37 + 11) % 23;
    for (i = 0; i < n; i++) {
        for (j = 0; j + 1 < n - i; j++) {
            if (a[j] > a[j + 1]) {
                long t = a[j]; a[j] = a[j + 1]; a[j + 1] = t;
            }
        }
    }
    for (i = 1; i < n; i++) if (a[i - 1] > a[i]) print(-1);
    print(a[0]); print(a[n - 1]);
    return 0;
}`,
	},
	{
		Name: "binary-tree-insert-search",
		Source: `
struct T { long k; struct T* l; struct T* r; };
struct T* insert(struct T* t, long k) {
    if (t == NULL) {
        struct T* n = (struct T*)pmalloc(sizeof(struct T));
        n->k = k; n->l = NULL; n->r = NULL;
        return n;
    }
    if (k < t->k) t->l = insert(t->l, k);
    else if (k > t->k) t->r = insert(t->r, k);
    return t;
}
int contains(struct T* t, long k) {
    while (t != NULL) {
        if (t->k == k) return 1;
        if (k < t->k) t = t->l; else t = t->r;
    }
    return 0;
}
int main() {
    struct T* root = NULL;
    int i;
    for (i = 0; i < 30; i++) root = insert(root, (i * 17) % 31);
    print(contains(root, 17));
    print(contains(root, 29));
    print(contains(root, 99));
    return 0;
}`,
		Expect: []int64{1, 1, 0},
	},
	{
		Name: "string-ops-char-array",
		Source: `
int mylen(char* s) {
    int n = 0;
    while (s[n] != 0) n++;
    return n;
}
int main() {
    char* s = (char*)pmalloc(64);
    int i;
    for (i = 0; i < 5; i++) s[i] = 'a' + i;
    s[5] = 0;
    print(mylen(s));
    print(s[0]); print(s[4]);
    return 0;
}`,
		Expect: []int64{5, 97, 101},
	},
	{
		Name: "matrix-multiply",
		Source: `
int main() {
    int n = 4;
    long* a = (long*)pmalloc(n * n * 8);
    long* b = (long*)malloc(n * n * 8);
    long* c = (long*)pmalloc(n * n * 8);
    int i; int j; int k;
    for (i = 0; i < n * n; i++) { a[i] = i; b[i] = i % 3; }
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            long s = 0;
            for (k = 0; k < n; k++) s += a[i * n + k] * b[k * n + j];
            c[i * n + j] = s;
        }
    }
    long trace = 0;
    for (i = 0; i < n; i++) trace += c[i * n + i];
    print(trace);
    return 0;
}`,
	},
	{
		Name: "function-pointer-free-args",
		Source: `
long apply2(long a, long b) { return a * 10 + b; }
int main() {
    print(apply2(3, 4));
    print(apply2(apply2(1, 2), 5));
    return 0;
}`,
		Expect: []int64{34, 125},
	},
	{
		Name: "shadowing-and-scopes",
		Source: `
int main() {
    long x = 1;
    {
        long x = 2;
        print(x);
        {
            long x = 3;
            print(x);
        }
        print(x);
    }
    print(x);
    return 0;
}`,
		Expect: []int64{2, 3, 2, 1},
	},
	{
		Name: "do-while-and-break-continue",
		Source: `
int main() {
    int i = 0;
    long s = 0;
    do {
        i++;
        if (i % 2 == 0) continue;
        if (i > 9) break;
        s += i;
    } while (i < 100);
    print(s);
    return 0;
}`,
		Expect: []int64{25},
	},
	{
		Name: "globals",
		Source: `
long counter;
long* cell;
void bump() { counter = counter + 1; }
int main() {
    bump(); bump(); bump();
    print(counter);
    cell = (long*)pmalloc(8);
    *cell = counter * 2;
    print(*cell);
    return 0;
}`,
		Expect: []int64{3, 6},
	},
	{
		Name: "swap-through-pointers",
		Source: `
void swap(long* a, long* b) {
    long t = *a;
    *a = *b;
    *b = t;
}
int main() {
    long* x = (long*)pmalloc(8);
    long* y = (long*)malloc(8);
    *x = 1; *y = 2;
    swap(x, y);              // one persistent, one volatile argument
    print(*x); print(*y);
    long u = 7; long v = 9;
    swap(&u, &v);
    print(u); print(v);
    return 0;
}`,
		Expect: []int64{2, 1, 9, 7},
	},
	{
		Name: "hash-table-chained",
		Source: `
struct E { long k; long v; struct E* next; };
int main() {
    int nb = 8;
    struct E** buckets = (struct E**)pmalloc(nb * 8);
    int i;
    for (i = 0; i < nb; i++) buckets[i] = NULL;
    for (i = 0; i < 40; i++) {
        struct E* e = (struct E*)pmalloc(sizeof(struct E));
        e->k = i; e->v = i * i;
        e->next = buckets[i % nb];
        buckets[i % nb] = e;
    }
    long s = 0;
    for (i = 0; i < nb; i++) {
        struct E* p = buckets[i];
        while (p) { s += p->v; p = p->next; }
    }
    print(s);
    return 0;
}`,
		Expect: []int64{20540},
	},
	{
		Name: "collatz",
		Source: `
int main() {
    long n = 27;
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
    }
    print(steps);
    return 0;
}`,
		Expect: []int64{111},
	},
	{
		Name: "bit-ops",
		Source: `
int main() {
    long a = 0x0f0f;
    long b = 0x00ff;
    print(a & b);
    print(a | b);
    print(a ^ b);
    print(~a & 0xffff);
    print(a << 4);
    print(a >> 4);
    return 0;
}`,
		Expect: []int64{0x000f, 0x0fff, 0x0ff0, 0xf0f0, 0xf0f0, 0x00f0},
	},
	{
		Name: "ackermann-small",
		Source: `
int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int main() { print(ack(2, 3)); return 0; }`,
		Expect: []int64{9},
	},
	{
		Name: "paper-figure9-append",
		Source: `
struct Node { long value; struct Node* next; };
void Append(struct Node* p, struct Node* n) {
    if (p != n) p->next = n;
}
int main() {
    struct Node* a = (struct Node*)pmalloc(sizeof(struct Node));
    struct Node* b = (struct Node*)pmalloc(sizeof(struct Node));
    a->value = 1; a->next = NULL;
    b->value = 2; b->next = NULL;
    Append(a, b);
    Append(b, b);            // p == n: no self-append
    print(a->next->value);
    if (b->next == NULL) print(1); else print(0);
    return 0;
}`,
		Expect: []int64{2, 1},
	},
	{
		Name: "gcd-iterative",
		Source: `
int main() {
    long a = 252; long b = 105;
    while (b != 0) {
        long t = a % b;
        a = b;
        b = t;
    }
    print(a);
    return 0;
}`,
		Expect: []int64{21},
	},
	{
		Name: "sieve-of-eratosthenes",
		Source: `
int main() {
    int n = 100;
    long* is = (long*)pmalloc((n + 1) * 8);
    int i; int j;
    for (i = 0; i <= n; i++) is[i] = 1;
    is[0] = 0; is[1] = 0;
    for (i = 2; i * i <= n; i++)
        if (is[i])
            for (j = i * i; j <= n; j += i) is[j] = 0;
    int count = 0;
    for (i = 0; i <= n; i++) if (is[i]) count++;
    print(count);
    return 0;
}`,
		Expect: []int64{25},
	},
	{
		Name: "ternary-chains",
		Source: `
int main() {
    int x = 7;
    print(x < 5 ? 1 : x < 10 ? 2 : 3);
    print(x > 5 ? x > 6 ? 4 : 5 : 6);
    return 0;
}`,
		Expect: []int64{2, 4},
	},
}

// Corpus returns every soundness program: the hand-written operation and
// regression tests plus the generated cross-product sweep.
func Corpus() []CorpusProgram {
	gen := GeneratedCorpus()
	out := make([]CorpusProgram, 0, len(OperationTests)+len(RegressionTests)+len(gen))
	out = append(out, OperationTests...)
	out = append(out, RegressionTests...)
	out = append(out, gen...)
	return out
}
