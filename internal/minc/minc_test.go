package minc

import (
	"errors"
	"strings"
	"testing"

	"nvref/internal/rt"
)

func mustRun(t *testing.T, src string, mode rt.Mode) RunResult {
	t.Helper()
	res, _, err := RunSource(src, mode)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return res
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int main() { return 0x10 + 'a'; } // comment`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != TokEOF {
			texts = append(texts, tok.Text)
		}
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "0x10") || !strings.Contains(joined, "'a'") {
		t.Errorf("tokens = %s", joined)
	}
	// Number values.
	for _, tok := range toks {
		if tok.Text == "0x10" && tok.Num != 16 {
			t.Errorf("0x10 lexed as %d", tok.Num)
		}
		if tok.Text == "'a'" && tok.Num != 97 {
			t.Errorf("'a' lexed as %d", tok.Num)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("int @"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int main( { return 0; }",
		"int main() { return 0 }",
		"int main() { int; }",
		"struct S { int }; int main() { return 0; }",
		"int main() { x +; }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parsed invalid program: %s", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	bad := map[string]string{
		"undefined variable": `int main() { return x; }`,
		"undefined function": `int main() { return f(); }`,
		"no main":            `int f() { return 0; }`,
		"deref non-pointer":  `int main() { int x = 1; return *x; }`,
		"bad member":         `struct S { int a; }; int main() { struct S* s = (struct S*)malloc(8); return s->b; }`,
		"arg count":          `int f(int a) { return a; } int main() { return f(1, 2); }`,
		"void var":           `int main() { void v; return 0; }`,
	}
	for name, src := range bad {
		prog, err := Parse(src)
		if err != nil {
			continue // also acceptable: rejected earlier
		}
		if err := Check(prog); err == nil {
			t.Errorf("%s: invalid program checked OK", name)
		}
	}
}

func TestBasicExecution(t *testing.T) {
	res := mustRun(t, `int main() { return 6 * 7; }`, rt.Volatile)
	if res.Exit != 42 {
		t.Errorf("exit = %d", res.Exit)
	}
}

func TestPrintOutput(t *testing.T) {
	res := mustRun(t, `int main() { print(1); print(2); print(3); return 0; }`, rt.HW)
	if len(res.Output) != 3 || res.Output[0] != 1 || res.Output[2] != 3 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestDivisionByZero(t *testing.T) {
	_, _, err := RunSource(`int main() { int z = 0; return 1 / z; }`, rt.Volatile)
	if !errors.Is(err, ErrDivZero) {
		t.Errorf("err = %v", err)
	}
}

func TestInfiniteLoopFuel(t *testing.T) {
	t.Skip("fuel test is slow; covered by maxSteps constant")
}

func TestStackOverflow(t *testing.T) {
	_, _, err := RunSource(`int f(int n) { return f(n + 1); } int main() { return f(0); }`, rt.Volatile)
	if !errors.Is(err, ErrStackDepth) {
		t.Errorf("err = %v", err)
	}
}

// TestCorpusExpectedOutputs verifies programs with known outputs under the
// Volatile model.
func TestCorpusExpectedOutputs(t *testing.T) {
	for _, p := range Corpus() {
		if p.Expect == nil {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res := mustRun(t, p.Source, rt.Volatile)
			if len(res.Output) != len(p.Expect) {
				t.Fatalf("output = %v, want %v", res.Output, p.Expect)
			}
			for i := range p.Expect {
				if res.Output[i] != p.Expect[i] {
					t.Fatalf("output[%d] = %d, want %d (full: %v)", i, res.Output[i], p.Expect[i], res.Output)
				}
			}
		})
	}
}

// TestCorpusSoundnessAllModes is the Section VII-B reproduction: every
// corpus program produces identical results under all four models.
func TestCorpusSoundnessAllModes(t *testing.T) {
	for _, p := range Corpus() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if _, err := VerifyAllModes(p.Source); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestStoredPointersAreRelative verifies the second soundness property:
// pointers held in persistent objects are in relative format throughout.
func TestStoredPointersAreRelative(t *testing.T) {
	src := `
struct Node { long v; struct Node* next; };
int main() {
    struct Node* a = (struct Node*)pmalloc(sizeof(struct Node));
    struct Node* b = (struct Node*)pmalloc(sizeof(struct Node));
    a->next = b;
    b->next = NULL;
    return 0;
}`
	prog, _, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []rt.Mode{rt.SW, rt.HW} {
		ctx, err := rt.New(rt.Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachine(prog, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		// Scan the pool heap for stored pointer words: the next field of
		// node a (first allocation) is at pool offset HeapStart+16+8.
		va := ctx.Pool.Base() + 128 + 16 + 8
		raw, err := ctx.AS.Load64(va)
		if err != nil {
			t.Fatal(err)
		}
		if raw>>63 != 1 {
			t.Errorf("%s: pointer stored in NVM has virtual form %#x", mode, raw)
		}
	}
}

func TestInferenceAnchors(t *testing.T) {
	src := `
int main() {
    long* p = (long*)pmalloc(8);
    long* v = (long*)malloc(8);
    *p = 1;
    *v = 2;
    return 0;
}`
	prog, report, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Both derefs operate on statically known pointers: no checks remain.
	if report.Checked != 0 {
		t.Errorf("checked sites = %d, want 0 (anchored locals)", report.Checked)
	}
	if report.PtrSites == 0 {
		t.Error("no pointer sites counted")
	}
	_ = prog
}

func TestInferenceUnknownParameters(t *testing.T) {
	// The paper's Figure 9 scenario: library function parameters have
	// unknown properties, so its pointer ops keep their checks.
	src := `
struct Node { long value; struct Node* next; };
void Append(struct Node* p, struct Node* n) {
    if (p != n) p->next = n;
}
int main() {
    struct Node* a = (struct Node*)pmalloc(sizeof(struct Node));
    struct Node* b = (struct Node*)malloc(sizeof(struct Node));
    Append(a, b);
    Append(b, a);
    return 0;
}`
	_, report, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if report.Checked == 0 {
		t.Error("mixed-provenance parameters produced no residual checks")
	}
	frac := report.CheckedFraction()
	if frac <= 0 || frac > 1 {
		t.Errorf("checked fraction = %f", frac)
	}
}

func TestInferencePropagatesThroughLocals(t *testing.T) {
	src := `
int main() {
    long* p = (long*)pmalloc(8);
    long* q = p;
    long* r = q;
    *r = 5;
    return (int)*r;
}`
	prog, report, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if report.Checked != 0 {
		t.Errorf("copy chain lost the property: %d residual checks", report.Checked)
	}
	res, _, err := Run(prog, rt.SW)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 5 {
		t.Errorf("exit = %d", res.Exit)
	}
}

// TestSWChecksFollowInference runs the same program twice and confirms the
// SW build executes checks only at residual sites.
func TestSWChecksFollowInference(t *testing.T) {
	anchored := `
int main() {
    long* p = (long*)pmalloc(80);
    int i;
    long s = 0;
    for (i = 0; i < 10; i++) { p[i] = i; }
    for (i = 0; i < 10; i++) { s += p[i]; }
    return (int)s;
}`
	prog, report, err := Compile(anchored)
	if err != nil {
		t.Fatal(err)
	}
	if report.Checked != 0 {
		t.Fatalf("anchored program has %d residual checks", report.Checked)
	}
	_, ctx, err := Run(prog, rt.SW)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.SWCheckBranches != 0 {
		t.Errorf("SW executed %d checks on a fully inferred program", ctx.Stats.SWCheckBranches)
	}
}

func TestModesDifferInCostNotResult(t *testing.T) {
	src := RegressionTests[1].Source // linked-list-append
	var exits []int64
	var cycles []uint64
	for _, mode := range rt.Modes {
		res, ctx, err := RunSource(src, mode)
		if err != nil {
			t.Fatal(err)
		}
		exits = append(exits, res.Exit)
		cycles = append(cycles, ctx.CPU.Stats.Cycles)
	}
	for i := 1; i < len(exits); i++ {
		if exits[i] != exits[0] {
			t.Errorf("exit codes differ: %v", exits)
		}
	}
	// SW must cost more than Volatile on a pointer workload.
	if cycles[2] <= cycles[0] {
		t.Errorf("SW (%d cycles) not slower than Volatile (%d)", cycles[2], cycles[0])
	}
}
