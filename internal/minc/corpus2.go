package minc

// Extended soundness corpus: harder pointer-manipulation patterns (the
// "largest freedom (and hence complexity) in pointer manipulations" the
// paper's Section IV analyzes) plus more torture-style regressions.

// ExtendedOperationTests stresses pointer-operation corners.
var ExtendedOperationTests = []CorpusProgram{
	{
		Name: "xor-linked-traversal",
		Source: `
// Pointers round-tripped through integers (the (I)p and (T*)i rows) in
// the classic xor-linked-list trick, across persistent nodes.
struct N { long v; long link; };
int main() {
    struct N* a = (struct N*)pmalloc(sizeof(struct N));
    struct N* b = (struct N*)pmalloc(sizeof(struct N));
    struct N* c = (struct N*)pmalloc(sizeof(struct N));
    a->v = 1; b->v = 2; c->v = 3;
    a->link = 0 ^ (long)b;
    b->link = (long)a ^ (long)c;
    c->link = (long)b ^ 0;

    long prev = 0;
    struct N* cur = a;
    long sum = 0;
    while (cur != NULL) {
        sum += cur->v;
        long next = prev ^ cur->link;
        prev = (long)cur;
        cur = (struct N*)next;
    }
    print(sum);
    return 0;
}`,
		Expect: []int64{6},
	},
	{
		Name: "pointer-in-integer-array",
		Source: `
int main() {
    long* slots = (long*)pmalloc(32);
    long* x = (long*)pmalloc(8);
    *x = 99;
    slots[2] = (long)x;          // address laundered through an integer
    long* back = (long*)slots[2];
    print(*back);
    return 0;
}`,
		Expect: []int64{99},
	},
	{
		Name: "triple-indirection",
		Source: `
int main() {
    long*** ppp = (long***)pmalloc(8);
    long** pp = (long**)pmalloc(8);
    long* p = (long*)pmalloc(8);
    *p = 321;
    *pp = p;
    *ppp = pp;
    print(***ppp);
    return 0;
}`,
		Expect: []int64{321},
	},
	{
		Name: "interior-pointers",
		Source: `
struct Big { long a; long b; long c; long d; };
int main() {
    struct Big* s = (struct Big*)pmalloc(sizeof(struct Big));
    s->a = 1; s->b = 2; s->c = 3; s->d = 4;
    long* mid = &s->b;           // interior pointer, relative form
    print(mid[0]);
    print(mid[1]);
    print(*(mid + 2));
    long* back = mid - 1;        // back to the first field
    print(*back);
    return 0;
}`,
		Expect: []int64{2, 3, 4, 1},
	},
	{
		Name: "cross-heap-pointer-table",
		Source: `
int main() {
    // A volatile table of pointers into NVM and a persistent table of
    // pointers into DRAM, both traversed by common code.
    long** vtab = (long**)malloc(24);
    long** ptab = (long**)pmalloc(24);
    int i;
    for (i = 0; i < 3; i++) {
        long* n = (long*)pmalloc(8);
        *n = i + 1;
        vtab[i] = n;
        long* v = (long*)malloc(8);
        *v = (i + 1) * 10;
        ptab[i] = v;
    }
    long s = 0;
    for (i = 0; i < 3; i++) s += *(vtab[i]) + *(ptab[i]);
    print(s);
    return 0;
}`,
		Expect: []int64{66},
	},
	{
		Name: "comparison-after-arithmetic",
		Source: `
int main() {
    long* a = (long*)pmalloc(160);
    long* end = a + 20;
    long* p = a;
    long n = 0;
    while (p < end) {            // relational on advanced pointers
        n++;
        p += 4;
    }
    print(n);
    print(end - a);
    return 0;
}`,
		Expect: []int64{5, 20},
	},
	{
		Name: "conditional-assignment-forms",
		Source: `
struct Box { long* slot; };
int main() {
    struct Box* b = (struct Box*)pmalloc(sizeof(struct Box));
    long* p = (long*)pmalloc(8);
    long* v = (long*)malloc(8);
    *p = 5; *v = 6;
    int i;
    long s = 0;
    for (i = 0; i < 4; i++) {
        b->slot = (i % 2 == 0) ? p : v;   // alternating forms into NVM
        s += *(b->slot);
    }
    print(s);
    return 0;
}`,
		Expect: []int64{22},
	},
	{
		Name: "sizeof-in-arithmetic",
		Source: `
struct Pair { long a; long b; };
int main() {
    long n = 5;
    struct Pair* arr = (struct Pair*)pmalloc(n * sizeof(struct Pair));
    int i;
    for (i = 0; i < n; i++) { arr[i].a = i; arr[i].b = i * i; }
    long s = 0;
    for (i = 0; i < n; i++) s += arr[i].b;
    print(s);
    print(sizeof(struct Pair) * n);
    return 0;
}`,
		Expect: []int64{30, 80},
	},
	{
		Name: "negative-indexing",
		Source: `
int main() {
    long* a = (long*)pmalloc(80);
    int i;
    for (i = 0; i < 10; i++) a[i] = i * 2;
    long* p = a + 9;
    print(p[-3]);                // p[i] with negative i
    print(*(p - 9));
    return 0;
}`,
		Expect: []int64{12, 0},
	},
	{
		Name: "null-propagation-through-structs",
		Source: `
struct N { long v; struct N* next; };
int main() {
    struct N* n = (struct N*)pmalloc(sizeof(struct N));
    n->v = 1;
    n->next = NULL;
    struct N* loaded = n->next;  // null loaded from NVM
    if (loaded == NULL) print(1); else print(0);
    if (!loaded) print(1); else print(0);
    print(loaded ? 5 : 7);
    return 0;
}`,
		Expect: []int64{1, 1, 7},
	},
	{
		Name: "pointer-swap-in-memory",
		Source: `
struct Cell { long* p; };
int main() {
    struct Cell* x = (struct Cell*)pmalloc(sizeof(struct Cell));
    struct Cell* y = (struct Cell*)pmalloc(sizeof(struct Cell));
    long* a = (long*)pmalloc(8);
    long* b = (long*)malloc(8);
    *a = 100; *b = 200;
    x->p = a; y->p = b;
    // Swap the pointers through NVM cells.
    long* t = x->p;
    x->p = y->p;
    y->p = t;
    print(*(x->p));
    print(*(y->p));
    return 0;
}`,
		Expect: []int64{200, 100},
	},
	{
		Name: "compound-assignment-on-pointer-field",
		Source: `
struct W { long* cursor; };
int main() {
    struct W* w = (struct W*)pmalloc(sizeof(struct W));
    long* a = (long*)pmalloc(64);
    int i;
    for (i = 0; i < 8; i++) a[i] = 100 + i;
    w->cursor = a;
    w->cursor += 3;              // compound assignment on an NVM field
    print(*(w->cursor));
    w->cursor -= 2;
    print(*(w->cursor));
    return 0;
}`,
		Expect: []int64{103, 101},
	},
}

// ExtendedRegressionTests: more gcc-torture-style programs.
var ExtendedRegressionTests = []CorpusProgram{
	{
		Name: "merge-sorted-lists",
		Source: `
struct N { long v; struct N* next; };
struct N* mk(long v, struct N* next) {
    struct N* n = (struct N*)pmalloc(sizeof(struct N));
    n->v = v; n->next = next;
    return n;
}
struct N* merge(struct N* a, struct N* b) {
    if (a == NULL) return b;
    if (b == NULL) return a;
    if (a->v <= b->v) { a->next = merge(a->next, b); return a; }
    b->next = merge(a, b->next);
    return b;
}
int main() {
    struct N* a = mk(1, mk(4, mk(7, NULL)));
    struct N* b = mk(2, mk(3, mk(9, NULL)));
    struct N* m = merge(a, b);
    while (m != NULL) { print(m->v); m = m->next; }
    return 0;
}`,
		Expect: []int64{1, 2, 3, 4, 7, 9},
	},
	{
		Name: "queue-ring-buffer",
		Source: `
int main() {
    int cap = 4;
    long* ring = (long*)pmalloc(cap * 8);
    int head = 0; int tail = 0; int count = 0;
    int i;
    long drained = 0;
    for (i = 1; i <= 10; i++) {
        if (count == cap) {
            drained += ring[head % cap];
            head++;
            count--;
        }
        ring[tail % cap] = i;
        tail++;
        count++;
    }
    while (count > 0) {
        drained += ring[head % cap];
        head++;
        count--;
    }
    print(drained);
    return 0;
}`,
		Expect: []int64{55},
	},
	{
		Name: "binary-search",
		Source: `
int bsearch(long* a, int n, long key) {
    int lo = 0; int hi = n - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (a[mid] == key) return mid;
        if (a[mid] < key) lo = mid + 1;
        else hi = mid - 1;
    }
    return -1;
}
int main() {
    int n = 16;
    long* a = (long*)pmalloc(n * 8);
    int i;
    for (i = 0; i < n; i++) a[i] = i * 3;
    print(bsearch(a, n, 21));
    print(bsearch(a, n, 22));
    print(bsearch(a, n, 0));
    print(bsearch(a, n, 45));
    return 0;
}`,
		Expect: []int64{7, -1, 0, 15},
	},
	{
		Name: "tree-sum-iterative-with-stack",
		Source: `
struct T { long v; struct T* l; struct T* r; };
struct T* node(long v, struct T* l, struct T* r) {
    struct T* t = (struct T*)pmalloc(sizeof(struct T));
    t->v = v; t->l = l; t->r = r;
    return t;
}
int main() {
    struct T* root = node(1,
        node(2, node(4, NULL, NULL), node(5, NULL, NULL)),
        node(3, NULL, node(6, NULL, NULL)));
    // Explicit stack of pointers in volatile memory.
    struct T** stack = (struct T**)malloc(64 * 8);
    int sp = 0;
    stack[sp] = root; sp++;
    long sum = 0;
    while (sp > 0) {
        sp--;
        struct T* t = stack[sp];
        sum += t->v;
        if (t->l != NULL) { stack[sp] = t->l; sp++; }
        if (t->r != NULL) { stack[sp] = t->r; sp++; }
    }
    print(sum);
    return 0;
}`,
		Expect: []int64{21},
	},
	{
		Name: "string-reverse",
		Source: `
int main() {
    char* s = (char*)pmalloc(16);
    int n = 6;
    int i;
    for (i = 0; i < n; i++) s[i] = 'a' + i;
    // Reverse in place with two pointers.
    char* lo = s;
    char* hi = s + n - 1;
    while (lo < hi) {
        char t = *lo;
        *lo = *hi;
        *hi = t;
        lo++;
        hi--;
    }
    for (i = 0; i < n; i++) print(s[i]);
    return 0;
}`,
		Expect: []int64{'f', 'e', 'd', 'c', 'b', 'a'},
	},
	{
		Name: "mutual-recursion",
		Source: `
int isEven(int n) {
    if (n == 0) return 1;
    return isOdd(n - 1);
}
int isOdd(int n) {
    if (n == 0) return 0;
    return isEven(n - 1);
}
int main() {
    print(isEven(10));
    print(isOdd(7));
    print(isEven(3));
    return 0;
}`,
		Expect: []int64{1, 1, 0},
	},
	{
		Name: "union-find",
		Source: `
long find(long* parent, long x) {
    while (parent[x] != x) {
        parent[x] = parent[parent[x]];  // path halving
        x = parent[x];
    }
    return x;
}
int main() {
    int n = 10;
    long* parent = (long*)pmalloc(n * 8);
    int i;
    for (i = 0; i < n; i++) parent[i] = i;
    // Union pairs (0,1) (1,2) (5,6) (6,7).
    parent[find(parent, 0)] = find(parent, 1);
    parent[find(parent, 1)] = find(parent, 2);
    parent[find(parent, 5)] = find(parent, 6);
    parent[find(parent, 6)] = find(parent, 7);
    print(find(parent, 0) == find(parent, 2));
    print(find(parent, 5) == find(parent, 7));
    print(find(parent, 0) == find(parent, 5));
    return 0;
}`,
		Expect: []int64{1, 1, 0},
	},
	{
		Name: "fnv-hash-over-bytes",
		Source: `
int main() {
    char* data = (char*)pmalloc(8);
    int i;
    for (i = 0; i < 8; i++) data[i] = i * 31 % 256;
    long h = 1469598103934665603;
    for (i = 0; i < 8; i++) {
        h = h ^ data[i];
        h = h * 1099511628211;
    }
    print(h % 1000003);
    return 0;
}`,
	},
	{
		Name: "shell-sort",
		Source: `
int main() {
    int n = 20;
    long* a = (long*)pmalloc(n * 8);
    int i;
    for (i = 0; i < n; i++) a[i] = (i * 7919 + 13) % 101;
    int gap;
    for (gap = n / 2; gap > 0; gap = gap / 2) {
        for (i = gap; i < n; i++) {
            long t = a[i];
            int j = i;
            while (j >= gap && a[j - gap] > t) {
                a[j] = a[j - gap];
                j -= gap;
            }
            a[j] = t;
        }
    }
    for (i = 1; i < n; i++) if (a[i - 1] > a[i]) print(-1);
    print(a[0]);
    print(a[n - 1]);
    return 0;
}`,
	},
	{
		Name: "stack-of-frames-pointer-params",
		Source: `
long sumThrough(long* acc, long* vals, int n) {
    if (n == 0) return *acc;
    *acc += vals[n - 1];
    return sumThrough(acc, vals, n - 1);
}
int main() {
    long* vals = (long*)pmalloc(40);
    int i;
    for (i = 0; i < 5; i++) vals[i] = i + 1;
    long acc = 0;
    print(sumThrough(&acc, vals, 5));  // stack pointer + NVM pointer args
    return 0;
}`,
		Expect: []int64{15},
	},
	{
		Name: "doubly-linked-delete",
		Source: `
struct D { long v; struct D* prev; struct D* next; };
int main() {
    struct D* head = NULL;
    struct D* tail = NULL;
    int i;
    for (i = 1; i <= 5; i++) {
        struct D* n = (struct D*)pmalloc(sizeof(struct D));
        n->v = i; n->next = NULL; n->prev = tail;
        if (tail != NULL) tail->next = n; else head = n;
        tail = n;
    }
    // Delete the node with v == 3.
    struct D* p = head;
    while (p != NULL && p->v != 3) p = p->next;
    if (p != NULL) {
        if (p->prev != NULL) p->prev->next = p->next;
        if (p->next != NULL) p->next->prev = p->prev;
        pfree(p);
    }
    long fwd = 0;
    for (p = head; p != NULL; p = p->next) fwd = fwd * 10 + p->v;
    print(fwd);
    long bwd = 0;
    for (p = tail; p != NULL; p = p->prev) bwd = bwd * 10 + p->v;
    print(bwd);
    return 0;
}`,
		Expect: []int64{1245, 5421},
	},
	{
		Name: "power-table-memoized",
		Source: `
long* cache;
long pow2(int n) {
    if (n == 0) return 1;
    if (cache[n] != 0) return cache[n];
    cache[n] = 2 * pow2(n - 1);
    return cache[n];
}
int main() {
    cache = (long*)pmalloc(64 * 8);
    int i;
    for (i = 0; i < 64; i++) cache[i] = 0;
    print(pow2(10));
    print(pow2(20));
    print(pow2(10));
    return 0;
}`,
		Expect: []int64{1024, 1048576, 1024},
	},
	{
		Name: "matrix-transpose-in-place",
		Source: `
int main() {
    int n = 4;
    long* m = (long*)pmalloc(n * n * 8);
    int i; int j;
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            m[i * n + j] = i * 10 + j;
    for (i = 0; i < n; i++) {
        for (j = i + 1; j < n; j++) {
            long t = m[i * n + j];
            m[i * n + j] = m[j * n + i];
            m[j * n + i] = t;
        }
    }
    print(m[1 * n + 0]);
    print(m[0 * n + 1]);
    print(m[3 * n + 2]);
    return 0;
}`,
		Expect: []int64{1, 10, 23},
	},
	{
		Name: "free-list-reuse-pattern",
		Source: `
struct N { long v; struct N* next; };
int main() {
    // Allocate, free in reverse, reallocate: the pool's free list must
    // hand back usable blocks.
    struct N** nodes = (struct N**)malloc(8);
    struct N* a = (struct N*)pmalloc(sizeof(struct N));
    struct N* b = (struct N*)pmalloc(sizeof(struct N));
    struct N* c = (struct N*)pmalloc(sizeof(struct N));
    a->v = 1; b->v = 2; c->v = 3;
    pfree(c); pfree(b); pfree(a);
    struct N* x = (struct N*)pmalloc(sizeof(struct N));
    struct N* y = (struct N*)pmalloc(sizeof(struct N));
    x->v = 10; y->v = 20;
    print(x->v + y->v);
    nodes[0] = x;
    print(nodes[0]->v);
    pfree(x); pfree(y);
    return 0;
}`,
		Expect: []int64{30, 10},
	},
	{
		Name: "long-chain-deep-load",
		Source: `
struct N { long v; struct N* next; };
int main() {
    struct N* head = NULL;
    int i;
    for (i = 0; i < 100; i++) {
        struct N* n = (struct N*)pmalloc(sizeof(struct N));
        n->v = i; n->next = head; head = n;
    }
    // Walk to the 50th node and read it.
    struct N* p = head;
    for (i = 0; i < 50; i++) p = p->next;
    print(p->v);
    return 0;
}`,
		Expect: []int64{49},
	},
	{
		Name: "char-arithmetic",
		Source: `
int main() {
    char c = 'A';
    print(c + 1);
    print('z' - 'a');
    char* s = (char*)pmalloc(4);
    s[0] = c + 2;
    print(s[0]);
    return 0;
}`,
		Expect: []int64{66, 25, 67},
	},
	{
		Name: "modulo-edge-cases",
		Source: `
int main() {
    print(-7 % 3);
    print(7 % -3);
    print(-7 / 2);
    print(1 << 10);
    print(-8 >> 1);
    return 0;
}`,
		Expect: []int64{-1, 1, -3, 1024, -4},
	},
}

func init() {
	// Fold the extended programs into the main corpus groups so every
	// consumer (tests, nvbench, inference statistics) sees them.
	OperationTests = append(OperationTests, ExtendedOperationTests...)
	RegressionTests = append(RegressionTests, ExtendedRegressionTests...)
}
