package minc

// Third corpus group: stack/global arrays, arrays embedded in persistent
// structs, and switch statements — the features most gcc-torture programs
// lean on.

// ArrayAndSwitchTests exercises the extended language surface.
var ArrayAndSwitchTests = []CorpusProgram{
	{
		Name: "local-array-basics",
		Source: `
int main() {
    long a[8];
    int i;
    for (i = 0; i < 8; i++) a[i] = i * i;
    long s = 0;
    for (i = 0; i < 8; i++) s += a[i];
    print(s);
    print(sizeof(a) / sizeof(long));
    return 0;
}`,
		Expect: []int64{140, 8},
	},
	{
		Name: "array-decay-to-function",
		Source: `
long sum(long* p, int n) {
    long s = 0;
    int i;
    for (i = 0; i < n; i++) s += p[i];
    return s;
}
int main() {
    long a[5];
    int i;
    for (i = 0; i < 5; i++) a[i] = i + 1;
    print(sum(a, 5));          // array decays to pointer at the call
    print(sum(a + 1, 3));      // decayed arithmetic
    return 0;
}`,
		Expect: []int64{15, 9},
	},
	{
		Name: "array-inside-persistent-struct",
		Source: `
struct Rec { long id; long data[4]; long tail; };
int main() {
    struct Rec* r = (struct Rec*)pmalloc(sizeof(struct Rec));
    r->id = 7;
    int i;
    for (i = 0; i < 4; i++) r->data[i] = i * 10;
    r->tail = 99;
    print(sizeof(struct Rec));
    long s = 0;
    for (i = 0; i < 4; i++) s += r->data[i];
    print(s);
    print(r->tail);
    // Interior pointer into the embedded array keeps the relative form.
    long* p = &r->data[2];
    print(*p);
    return 0;
}`,
		Expect: []int64{48, 60, 99, 20},
	},
	{
		Name: "global-array-histogram",
		Source: `
long hist[10];
int main() {
    int i;
    for (i = 0; i < 10; i++) hist[i] = 0;
    for (i = 0; i < 100; i++) hist[(i * 7) % 10]++;
    long s = 0;
    for (i = 0; i < 10; i++) s += hist[i];
    print(s);
    print(hist[3]);
    return 0;
}`,
		Expect: []int64{100, 10},
	},
	{
		Name: "pointer-walk-over-array",
		Source: `
int main() {
    long a[6];
    int i;
    for (i = 0; i < 6; i++) a[i] = i;
    long* p = a;               // decay into a pointer variable
    long* end = a + 6;
    long s = 0;
    while (p < end) {
        s += *p;
        p++;
    }
    print(s);
    return 0;
}`,
		Expect: []int64{15},
	},
	{
		Name: "switch-basic",
		Source: `
long classify(long x) {
    switch (x) {
    case 0: return 100;
    case 1: return 200;
    case 2:
    case 3: return 300;        // stacked labels
    default: return -1;
    }
}
int main() {
    print(classify(0));
    print(classify(1));
    print(classify(2));
    print(classify(3));
    print(classify(9));
    return 0;
}`,
		Expect: []int64{100, 200, 300, 300, -1},
	},
	{
		Name: "switch-fallthrough",
		Source: `
int main() {
    int x = 2;
    long acc = 0;
    switch (x) {
    case 1:
        acc += 1;
    case 2:
        acc += 2;              // matched here, falls through
    case 3:
        acc += 4;
        break;
    case 4:
        acc += 8;
    }
    print(acc);
    return 0;
}`,
		Expect: []int64{6},
	},
	{
		Name: "switch-no-default-no-match",
		Source: `
int main() {
    long acc = 5;
    switch (42) {
    case 1: acc = 1; break;
    case 2: acc = 2; break;
    }
    print(acc);
    return 0;
}`,
		Expect: []int64{5},
	},
	{
		Name: "switch-in-loop-state-machine",
		Source: `
int main() {
    // A tiny DFA: states 0,1,2; input bits from a pattern.
    long input[8];
    int i;
    for (i = 0; i < 8; i++) input[i] = (i * 3) % 2;
    int state = 0;
    for (i = 0; i < 8; i++) {
        switch (state) {
        case 0:
            if (input[i]) state = 1; else state = 0;
            break;
        case 1:
            if (input[i]) state = 2; else state = 0;
            break;
        case 2:
            state = 2;
            break;
        }
    }
    print(state);
    return 0;
}`,
	},
	{
		Name: "switch-negative-labels",
		Source: `
long sign(long x) {
    switch (x) {
    case -1: return -100;
    case 0: return 0;
    case 1: return 100;
    default: return 999;
    }
}
int main() {
    print(sign(-1));
    print(sign(0));
    print(sign(1));
    print(sign(5));
    return 0;
}`,
		Expect: []int64{-100, 0, 100, 999},
	},
	{
		Name: "matrix-as-2d-array",
		Source: `
int main() {
    long m[12];                // 3x4 matrix, manual indexing
    int i; int j;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            m[i * 4 + j] = i * 4 + j;
    long trace = 0;
    for (i = 0; i < 3; i++) trace += m[i * 4 + i];
    print(trace);
    return 0;
}`,
		Expect: []int64{15},
	},
	{
		Name: "insertion-sort-local-array",
		Source: `
int main() {
    long a[10];
    int i;
    for (i = 0; i < 10; i++) a[i] = (i * 13 + 5) % 17;
    for (i = 1; i < 10; i++) {
        long key = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > key) {
            a[j + 1] = a[j];
            j--;
        }
        a[j + 1] = key;
    }
    for (i = 1; i < 10; i++) if (a[i - 1] > a[i]) print(-1);
    print(a[0]);
    print(a[9]);
    return 0;
}`,
	},
	{
		Name: "struct-array-of-pairs-in-nvm",
		Source: `
struct Pt { long x; long y; };
struct Path { long n; struct Pt pts[3]; };
int main() {
    struct Path* p = (struct Path*)pmalloc(sizeof(struct Path));
    p->n = 3;
    int i;
    for (i = 0; i < 3; i++) {
        p->pts[i].x = i;
        p->pts[i].y = i * 2;
    }
    long len = 0;
    for (i = 0; i < 3; i++) len += p->pts[i].x + p->pts[i].y;
    print(len);
    print(sizeof(struct Path));
    return 0;
}`,
		Expect: []int64{9, 56},
	},
	{
		Name: "opcode-dispatcher",
		Source: `
int main() {
    // A bytecode interpreter over a persistent program array — switch
    // dispatch driving pointer-free arithmetic.
    long prog[12];
    int pc = 0;
    prog[0] = 1; prog[1] = 10;   // PUSH 10
    prog[2] = 1; prog[3] = 32;   // PUSH 32
    prog[4] = 2;                 // ADD
    prog[5] = 1; prog[6] = 2;    // PUSH 2
    prog[7] = 3;                 // MUL
    prog[8] = 0;                 // HALT
    long stack[8];
    int sp = 0;
    int running = 1;
    while (running) {
        switch (prog[pc]) {
        case 0:
            running = 0;
            break;
        case 1:
            stack[sp] = prog[pc + 1];
            sp++;
            pc += 2;
            break;
        case 2:
            stack[sp - 2] = stack[sp - 2] + stack[sp - 1];
            sp--;
            pc++;
            break;
        case 3:
            stack[sp - 2] = stack[sp - 2] * stack[sp - 1];
            sp--;
            pc++;
            break;
        }
    }
    print(stack[0]);
    return 0;
}`,
		Expect: []int64{84},
	},
}

func init() {
	RegressionTests = append(RegressionTests, ArrayAndSwitchTests...)
}

// controlFlowEdgeTests pin the switch/loop interaction semantics.
var controlFlowEdgeTests = []CorpusProgram{
	{
		Name: "continue-inside-switch",
		Source: `
int main() {
    long s = 0;
    int i;
    for (i = 0; i < 10; i++) {
        switch (i % 3) {
        case 0:
            continue;          // must continue the for loop
        case 1:
            s += 10;
            break;
        default:
            s += 1;
        }
        s += 100;              // skipped when case 0 hit
    }
    print(s);
    return 0;
}`,
		// i in 0..9: case0 {0,3,6,9}; case1 {1,4,7}: +110 each; default {2,5,8}: +101 each.
		Expect: []int64{633},
	},
	{
		Name: "loop-inside-switch-break",
		Source: `
int main() {
    long s = 0;
    switch (1) {
    case 1: {
        int i;
        for (i = 0; i < 5; i++) {
            if (i == 3) break; // breaks the loop, not the switch
            s += i;
        }
        s += 1000;             // still inside case 1
        break;
    }
    case 2:
        s += 9999;
    }
    print(s);
    return 0;
}`,
		Expect: []int64{1003},
	},
	{
		Name: "nested-switch",
		Source: `
long pick(long a, long b) {
    switch (a) {
    case 0:
        switch (b) {
        case 0: return 1;
        default: return 2;
        }
    default:
        switch (b) {
        case 0: return 3;
        default: return 4;
        }
    }
}
int main() {
    print(pick(0, 0));
    print(pick(0, 5));
    print(pick(7, 0));
    print(pick(7, 5));
    return 0;
}`,
		Expect: []int64{1, 2, 3, 4},
	},
	{
		Name: "switch-fallthrough-into-default",
		Source: `
int main() {
    long s = 0;
    switch (2) {
    case 2:
        s += 1;                // matched, falls through
    default:
        s += 2;
    }
    print(s);
    return 0;
}`,
		Expect: []int64{3},
	},
}

func init() {
	RegressionTests = append(RegressionTests, controlFlowEdgeTests...)
}
