package minc

import "fmt"

// Generated soundness programs: a systematic cross-product in the spirit
// of the paper's 1,785-test LLVM/gcc-torture sweep. Each template is
// instantiated for every combination of allocation kinds, so the same
// pointer operation is exercised with purely persistent, purely volatile,
// and mixed operands. Expected outputs are computed by the host-side
// mirror of each template, making every generated program a ground-truth
// test rather than only a cross-model agreement test.

// allocKind selects where a template's objects live.
type allocKind struct {
	name  string
	alloc string // allocator call text
}

var allocKinds = []allocKind{
	{"p", "pmalloc"},
	{"v", "malloc"},
}

// GeneratedCorpus instantiates every template × operand-placement
// combination.
func GeneratedCorpus() []CorpusProgram {
	var out []CorpusProgram
	out = append(out, genChainWalks()...)
	out = append(out, genArraySweeps()...)
	out = append(out, genPointerArith()...)
	out = append(out, genSwapChains()...)
	out = append(out, genCondSelects()...)
	return out
}

// genChainWalks: build a singly linked chain of length n with nodes
// alternating between the two heaps per a placement mask, then fold the
// values.
func genChainWalks() []CorpusProgram {
	var out []CorpusProgram
	for _, n := range []int{1, 5, 16} {
		for mask := 0; mask < 4; mask++ {
			// mask bit 0: even nodes persistent; bit 1: odd nodes persistent.
			evenAlloc, oddAlloc := "malloc", "malloc"
			if mask&1 != 0 {
				evenAlloc = "pmalloc"
			}
			if mask&2 != 0 {
				oddAlloc = "pmalloc"
			}
			want := int64(0)
			for i := 0; i < n; i++ {
				want += int64(i*i + 3)
			}
			src := fmt.Sprintf(`
struct N { long v; struct N* next; };
int main() {
    struct N* head = NULL;
    int i;
    for (i = %d - 1; i >= 0; i--) {
        struct N* node;
        if (i %% 2 == 0) node = (struct N*)%s(sizeof(struct N));
        else node = (struct N*)%s(sizeof(struct N));
        node->v = i * i + 3;
        node->next = head;
        head = node;
    }
    long sum = 0;
    struct N* p = head;
    while (p != NULL) { sum += p->v; p = p->next; }
    print(sum);
    return 0;
}`, n, evenAlloc, oddAlloc)
			out = append(out, CorpusProgram{
				Name:   fmt.Sprintf("gen-chain-n%d-mask%d", n, mask),
				Source: src,
				Expect: []int64{want},
			})
		}
	}
	return out
}

// genArraySweeps: fill an array on one heap with f(i), read it back with
// strided pointer walks.
func genArraySweeps() []CorpusProgram {
	var out []CorpusProgram
	for _, ak := range allocKinds {
		for _, stride := range []int{1, 2, 3} {
			n := 24
			want := int64(0)
			for i := 0; i < n; i += stride {
				want += int64(5*i + 1)
			}
			src := fmt.Sprintf(`
int main() {
    long* a = (long*)%s(%d * 8);
    int i;
    for (i = 0; i < %d; i++) a[i] = 5 * i + 1;
    long sum = 0;
    long* p = a;
    long* end = a + %d;
    while (p < end) {
        sum += *p;
        p += %d;
    }
    print(sum);
    return 0;
}`, ak.alloc, n, n, n, stride)
			out = append(out, CorpusProgram{
				Name:   fmt.Sprintf("gen-sweep-%s-s%d", ak.name, stride),
				Source: src,
				Expect: []int64{want},
			})
		}
	}
	return out
}

// genPointerArith: p + i, p - i, p[i], diff, comparisons — one program
// per heap per offset.
func genPointerArith() []CorpusProgram {
	var out []CorpusProgram
	for _, ak := range allocKinds {
		for _, off := range []int{0, 3, 9} {
			n := 12
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(i*7 + 2)
			}
			diff := int64(n - 1 - off)
			src := fmt.Sprintf(`
int main() {
    long* a = (long*)%s(%d * 8);
    int i;
    for (i = 0; i < %d; i++) a[i] = i * 7 + 2;
    long* p = a + %d;
    print(*p);
    print(p[1]);
    long* q = a + %d - 1;
    print(q - p);
    if (p <= q) print(1); else print(0);
    if (q - %d == a) print(1); else print(0);
    return 0;
}`, ak.alloc, n, n, off, n, n-1)
			le := int64(0)
			if off <= n-1 {
				le = 1
			}
			out = append(out, CorpusProgram{
				Name:   fmt.Sprintf("gen-arith-%s-o%d", ak.name, off),
				Source: src,
				Expect: []int64{vals[off], vals[off+1], diff, le, 1},
			})
		}
	}
	return out
}

// genSwapChains: k rounds of pointer swapping through cells on each heap
// combination; the final configuration is computed host-side.
func genSwapChains() []CorpusProgram {
	var out []CorpusProgram
	for _, cellsKind := range allocKinds {
		for _, objsKind := range allocKinds {
			for _, rounds := range []int{1, 4, 7} {
				// Host mirror: cells hold object indices 0..2; each round
				// rotates (0,1) then (1,2).
				idx := []int{0, 1, 2}
				for r := 0; r < rounds; r++ {
					idx[0], idx[1] = idx[1], idx[0]
					idx[1], idx[2] = idx[2], idx[1]
				}
				expect := []int64{int64(idx[0]*10 + 1), int64(idx[1]*10 + 1), int64(idx[2]*10 + 1)}
				src := fmt.Sprintf(`
struct Cell { long* p; };
int main() {
    struct Cell* cells = (struct Cell*)%s(3 * sizeof(struct Cell));
    int i;
    for (i = 0; i < 3; i++) {
        long* obj = (long*)%s(8);
        *obj = i * 10 + 1;
        cells[i].p = obj;
    }
    int r;
    for (r = 0; r < %d; r++) {
        long* t = cells[0].p;
        cells[0].p = cells[1].p;
        cells[1].p = t;
        t = cells[1].p;
        cells[1].p = cells[2].p;
        cells[2].p = t;
    }
    for (i = 0; i < 3; i++) print(*(cells[i].p));
    return 0;
}`, cellsKind.alloc, objsKind.alloc, rounds)
				out = append(out, CorpusProgram{
					Name:   fmt.Sprintf("gen-swap-c%s-o%s-r%d", cellsKind.name, objsKind.name, rounds),
					Source: src,
					Expect: expect,
				})
			}
		}
	}
	return out
}

// genCondSelects: ternary selection between pointers of differing
// provenance, folded over a range of selectors.
func genCondSelects() []CorpusProgram {
	var out []CorpusProgram
	for _, mod := range []int{2, 3, 5} {
		want := int64(0)
		for i := 0; i < 20; i++ {
			if i%mod == 0 {
				want += 111
			} else {
				want += 222
			}
		}
		src := fmt.Sprintf(`
int main() {
    long* a = (long*)pmalloc(8);
    long* b = (long*)malloc(8);
    *a = 111;
    *b = 222;
    long sum = 0;
    int i;
    for (i = 0; i < 20; i++) {
        long* pick = (i %% %d == 0) ? a : b;
        sum += *pick;
    }
    print(sum);
    return 0;
}`, mod)
		out = append(out, CorpusProgram{
			Name:   fmt.Sprintf("gen-select-m%d", mod),
			Source: src,
			Expect: []int64{want},
		})
	}
	return out
}
