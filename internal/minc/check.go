package minc

import "fmt"

// CheckError reports a semantic problem.
type CheckError struct {
	Line int
	Msg  string
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("minc: check error at line %d: %s", e.Line, e.Msg)
}

// Builtin signatures. pmalloc returns a relative address per its
// definition; malloc returns a virtual (DRAM) address — the anchors of the
// inference pass.
var builtins = map[string]*Type{
	"malloc":  {Kind: TypeFunc, Ret: PtrTo(VoidType), Params: []*Type{IntType}},
	"free":    {Kind: TypeFunc, Ret: VoidType, Params: []*Type{PtrTo(VoidType)}},
	"pmalloc": {Kind: TypeFunc, Ret: PtrTo(VoidType), Params: []*Type{IntType}},
	"pfree":   {Kind: TypeFunc, Ret: VoidType, Params: []*Type{PtrTo(VoidType)}},
	"print":   {Kind: TypeFunc, Ret: VoidType, Params: []*Type{IntType}},
}

type checker struct {
	prog   *Program
	fn     *Func
	scopes []map[string]*Symbol
}

// Check resolves names, lays out frames, and types every expression.
func Check(prog *Program) error {
	c := &checker{prog: prog}

	// Lay out the global data segment.
	off := int64(0)
	globals := map[string]*Symbol{}
	for _, g := range prog.Globals {
		if g.Ty.Size() == 0 {
			return &CheckError{0, fmt.Sprintf("global %q has incomplete type %s", g.Name, g.Ty)}
		}
		if _, dup := globals[g.Name]; dup {
			return &CheckError{0, "duplicate global " + g.Name}
		}
		g.Offset = off
		off += g.Ty.Size()
		globals[g.Name] = g
	}
	prog.GlobalSize = off

	for _, fn := range prog.Funcs {
		c.fn = fn
		c.scopes = []map[string]*Symbol{globals, {}}
		frame := int64(0)
		for _, prm := range fn.Params {
			sym := &Symbol{Name: prm.Name, Ty: prm.Ty, Offset: frame}
			frame += 8
			fn.Locals = append(fn.Locals, sym)
			c.scopes[1][prm.Name] = sym
		}
		if err := c.checkBlock(fn.Body, &frame); err != nil {
			return err
		}
		fn.FrameSize = frame
	}

	if _, ok := prog.Funcs["main"]; !ok {
		return &CheckError{0, "program has no main function"}
	}
	return nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) checkBlock(b *Block, frame *int64) error {
	c.scopes = append(c.scopes, map[string]*Symbol{})
	defer func() { c.scopes = c.scopes[:len(c.scopes)-1] }()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s, frame); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt, frame *int64) error {
	switch st := s.(type) {
	case *DeclStmt:
		if st.Ty.Size() == 0 && st.Ty.Kind != TypeVoid {
			return &CheckError{0, fmt.Sprintf("variable %q has incomplete type", st.Name)}
		}
		if st.Ty.Kind == TypeVoid {
			return &CheckError{0, fmt.Sprintf("variable %q has void type", st.Name)}
		}
		sym := &Symbol{Name: st.Name, Ty: st.Ty, Offset: *frame}
		*frame += st.Ty.Size()
		st.Sym = sym
		c.fn.Locals = append(c.fn.Locals, sym)
		if st.Init != nil {
			if st.Ty.IsArray() {
				return &CheckError{0, fmt.Sprintf("array %q cannot have an initializer", st.Name)}
			}
			ity, err := c.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if !compatible(st.Ty, ity) {
				return &CheckError{0, fmt.Sprintf("cannot initialize %s with %s", st.Ty, ity)}
			}
		}
		c.scopes[len(c.scopes)-1][st.Name] = sym
		return nil

	case *ExprStmt:
		_, err := c.checkExpr(st.E)
		return err

	case *IfStmt:
		if _, err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then, frame); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else, frame)
		}
		return nil

	case *WhileStmt:
		if _, err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		return c.checkStmt(st.Body, frame)

	case *DoWhileStmt:
		if err := c.checkStmt(st.Body, frame); err != nil {
			return err
		}
		_, err := c.checkExpr(st.Cond)
		return err

	case *ForStmt:
		c.scopes = append(c.scopes, map[string]*Symbol{})
		defer func() { c.scopes = c.scopes[:len(c.scopes)-1] }()
		if st.Init != nil {
			if err := c.checkStmt(st.Init, frame); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if _, err := c.checkExpr(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := c.checkExpr(st.Post); err != nil {
				return err
			}
		}
		return c.checkStmt(st.Body, frame)

	case *ReturnStmt:
		if st.E != nil {
			ty, err := c.checkExpr(st.E)
			if err != nil {
				return err
			}
			if c.fn.Ret.Kind == TypeVoid {
				return &CheckError{0, "return with value in void function " + c.fn.Name}
			}
			if !compatible(c.fn.Ret, ty) {
				return &CheckError{0, fmt.Sprintf("cannot return %s from %s()", ty, c.fn.Name)}
			}
		}
		return nil

	case *Block:
		return c.checkBlock(st, frame)

	case *SwitchStmt:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if !ct.IsInteger() {
			return &CheckError{0, "switch condition must be an integer"}
		}
		seen := map[int64]bool{}
		defaults := 0
		for _, cs := range st.Cases {
			if cs.Default {
				defaults++
				if defaults > 1 {
					return &CheckError{0, "multiple default labels in switch"}
				}
			}
			for _, v := range cs.Vals {
				if seen[v] {
					return &CheckError{0, fmt.Sprintf("duplicate case label %d", v)}
				}
				seen[v] = true
			}
			for _, inner := range cs.Body {
				if err := c.checkStmt(inner, frame); err != nil {
					return err
				}
			}
		}
		return nil

	case *BreakStmt, *ContinueStmt:
		return nil
	}
	return &CheckError{0, fmt.Sprintf("unknown statement %T", s)}
}

func (c *checker) checkExpr(e Expr) (*Type, error) {
	info := e.exprBase()
	switch ex := e.(type) {
	case *NumLit:
		info.Ty = IntType

	case *NullLit:
		info.Ty = PtrTo(VoidType)

	case *VarRef:
		sym := c.lookup(ex.Name)
		if sym == nil {
			// A bare function name evaluates to its address.
			if fn, ok := c.prog.Funcs[ex.Name]; ok {
				ex.IsFunc = true
				var params []*Type
				for _, prm := range fn.Params {
					params = append(params, prm.Ty)
				}
				info.Ty = PtrTo(FuncType(fn.Ret, params))
				break
			}
			return nil, &CheckError{info.Line, "undefined variable " + ex.Name}
		}
		ex.Sym = sym
		info.Ty = sym.Ty

	case *Unary:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "*":
			xt = xt.Decayed()
			if !xt.IsPtr() {
				return nil, &CheckError{info.Line, "dereference of non-pointer " + xt.String()}
			}
			if xt.Elem.Kind == TypeVoid {
				return nil, &CheckError{info.Line, "dereference of void*"}
			}
			info.Ty = xt.Elem
		case "&":
			if !isLValue(ex.X) {
				return nil, &CheckError{info.Line, "address of non-lvalue"}
			}
			info.Ty = PtrTo(xt)
		case "-", "~":
			if !xt.IsInteger() {
				return nil, &CheckError{info.Line, ex.Op + " on non-integer"}
			}
			info.Ty = IntType
		case "!":
			info.Ty = IntType
		case "++", "--":
			if !isLValue(ex.X) {
				return nil, &CheckError{info.Line, ex.Op + " on non-lvalue"}
			}
			info.Ty = xt
		}

	case *PostIncDec:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		if !isLValue(ex.X) {
			return nil, &CheckError{info.Line, ex.Op + " on non-lvalue"}
		}
		info.Ty = xt

	case *Binary:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		yt, err := c.checkExpr(ex.Y)
		if err != nil {
			return nil, err
		}
		xt, yt = xt.Decayed(), yt.Decayed()
		switch ex.Op {
		case "+":
			switch {
			case xt.IsPtr() && yt.IsInteger():
				info.Ty = xt
			case xt.IsInteger() && yt.IsPtr():
				info.Ty = yt
			case xt.IsInteger() && yt.IsInteger():
				info.Ty = IntType
			default:
				return nil, &CheckError{info.Line, fmt.Sprintf("invalid operands %s + %s", xt, yt)}
			}
		case "-":
			switch {
			case xt.IsPtr() && yt.IsPtr():
				info.Ty = IntType
			case xt.IsPtr() && yt.IsInteger():
				info.Ty = xt
			case xt.IsInteger() && yt.IsInteger():
				info.Ty = IntType
			default:
				return nil, &CheckError{info.Line, fmt.Sprintf("invalid operands %s - %s", xt, yt)}
			}
		case "==", "!=", "<", ">", "<=", ">=", "&&", "||":
			info.Ty = IntType
		default: // arithmetic/bitwise on integers
			if !xt.IsInteger() || !yt.IsInteger() {
				return nil, &CheckError{info.Line, fmt.Sprintf("invalid operands %s %s %s", xt, ex.Op, yt)}
			}
			info.Ty = IntType
		}

	case *Assign:
		lt, err := c.checkExpr(ex.LHS)
		if err != nil {
			return nil, err
		}
		if !isLValue(ex.LHS) {
			return nil, &CheckError{info.Line, "assignment to non-lvalue"}
		}
		if lt.IsArray() {
			return nil, &CheckError{info.Line, "cannot assign to an array"}
		}
		rt, err := c.checkExpr(ex.RHS)
		if err != nil {
			return nil, err
		}
		if ex.Op == "=" && !compatible(lt, rt) {
			return nil, &CheckError{info.Line, fmt.Sprintf("cannot assign %s to %s", rt, lt)}
		}
		info.Ty = lt

	case *Cond:
		if _, err := c.checkExpr(ex.C); err != nil {
			return nil, err
		}
		tt, err := c.checkExpr(ex.T)
		if err != nil {
			return nil, err
		}
		if _, err := c.checkExpr(ex.F); err != nil {
			return nil, err
		}
		info.Ty = tt

	case *Call:
		var sig *Type
		if sym := c.lookup(ex.Name); sym != nil && sym.Ty.IsFuncPtr() {
			// Indirect call through a function-pointer variable.
			ex.Sym = sym
			sig = sym.Ty.Elem
		} else if b, ok := builtins[ex.Name]; ok {
			sig = b
		} else if fn, ok := c.prog.Funcs[ex.Name]; ok {
			sig = &Type{Kind: TypeFunc, Ret: fn.Ret}
			for _, prm := range fn.Params {
				sig.Params = append(sig.Params, prm.Ty)
			}
		} else {
			return nil, &CheckError{info.Line, "call to undefined function " + ex.Name}
		}
		if len(ex.Args) != len(sig.Params) {
			return nil, &CheckError{info.Line, fmt.Sprintf("%s expects %d arguments, got %d", ex.Name, len(sig.Params), len(ex.Args))}
		}
		for i, a := range ex.Args {
			at, err := c.checkExpr(a)
			if err != nil {
				return nil, err
			}
			if !compatible(sig.Params[i], at) {
				return nil, &CheckError{info.Line, fmt.Sprintf("argument %d of %s: cannot pass %s as %s", i+1, ex.Name, at, sig.Params[i])}
			}
		}
		info.Ty = sig.Ret

	case *Index:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		if _, err := c.checkExpr(ex.I); err != nil {
			return nil, err
		}
		if !xt.IsPtr() && !xt.IsArray() {
			return nil, &CheckError{info.Line, "index of non-pointer " + xt.String()}
		}
		info.Ty = xt.Elem

	case *Member:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		base := xt
		if ex.Arrow {
			if !xt.IsPtr() {
				return nil, &CheckError{info.Line, "-> on non-pointer"}
			}
			base = xt.Elem
		}
		if base.Kind != TypeStruct {
			return nil, &CheckError{info.Line, "member access on non-struct " + base.String()}
		}
		f, ok := base.Field(ex.Name)
		if !ok {
			return nil, &CheckError{info.Line, fmt.Sprintf("struct %s has no field %q", base.StructName, ex.Name)}
		}
		ex.Field = f
		info.Ty = f.Type

	case *Cast:
		if _, err := c.checkExpr(ex.X); err != nil {
			return nil, err
		}
		info.Ty = ex.To

	case *SizeofType:
		if ex.Of != nil {
			t, err := c.checkExpr(ex.Of)
			if err != nil {
				return nil, err
			}
			ex.T = t
		}
		info.Ty = IntType

	default:
		return nil, &CheckError{info.Line, fmt.Sprintf("unknown expression %T", e)}
	}
	return info.Ty, nil
}

// isLValue reports whether e designates a storage location.
func isLValue(e Expr) bool {
	switch ex := e.(type) {
	case *VarRef:
		return true
	case *Unary:
		return ex.Op == "*"
	case *Index:
		return true
	case *Member:
		return true
	}
	return false
}
