package minc

import "fmt"

// TypeKind classifies minc types.
type TypeKind int

// Type kinds. All scalars are 8 bytes (ILP64), which keeps the simulated
// memory word-granular; pointer semantics, the property under study, are
// unaffected.
const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeChar
	TypeLong
	TypePtr
	TypeStruct
	TypeFunc
	TypeArray
)

// Type is a minc type.
type Type struct {
	Kind TypeKind
	// Elem is the pointee for TypePtr and the element type for TypeArray.
	Elem *Type
	// Len is the element count for TypeArray.
	Len int64
	// Struct fields.
	StructName string
	Fields     []Field
	fieldIdx   map[string]int
	// Func signature.
	Ret    *Type
	Params []*Type

	size int64
}

// Field is one struct member with its byte offset.
type Field struct {
	Name   string
	Type   *Type
	Offset int64
}

// Prebuilt scalar types.
var (
	VoidType = &Type{Kind: TypeVoid, size: 0}
	IntType  = &Type{Kind: TypeInt, size: 8}
	CharType = &Type{Kind: TypeChar, size: 8}
	LongType = &Type{Kind: TypeLong, size: 8}
)

// PtrTo returns the pointer type to elem.
func PtrTo(elem *Type) *Type {
	return &Type{Kind: TypePtr, Elem: elem, size: 8}
}

// FuncType builds a function signature type.
func FuncType(ret *Type, params []*Type) *Type {
	return &Type{Kind: TypeFunc, Ret: ret, Params: params, size: 8}
}

// IsFuncPtr reports whether the type is a pointer to a function.
func (t *Type) IsFuncPtr() bool {
	return t != nil && t.Kind == TypePtr && t.Elem != nil && t.Elem.Kind == TypeFunc
}

// ArrayOf returns the array type [n]elem.
func ArrayOf(elem *Type, n int64) *Type {
	return &Type{Kind: TypeArray, Elem: elem, Len: n, size: elem.Size() * n}
}

// Size returns the byte size of the type.
func (t *Type) Size() int64 {
	if t == nil {
		return 0
	}
	return t.size
}

// IsPtr reports whether the type is a pointer.
func (t *Type) IsPtr() bool { return t != nil && t.Kind == TypePtr }

// IsArray reports whether the type is an array.
func (t *Type) IsArray() bool { return t != nil && t.Kind == TypeArray }

// Decayed returns the pointer type an array decays to, or the type itself.
func (t *Type) Decayed() *Type {
	if t.IsArray() {
		return PtrTo(t.Elem)
	}
	return t
}

// IsInteger reports whether the type is an integer scalar.
func (t *Type) IsInteger() bool {
	return t != nil && (t.Kind == TypeInt || t.Kind == TypeChar || t.Kind == TypeLong)
}

// Field looks up a struct member.
func (t *Type) Field(name string) (Field, bool) {
	if t.Kind != TypeStruct {
		return Field{}, false
	}
	i, ok := t.fieldIdx[name]
	if !ok {
		return Field{}, false
	}
	return t.Fields[i], true
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypeLong:
		return "long"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeStruct:
		return "struct " + t.StructName
	case TypeFunc:
		return fmt.Sprintf("func(%d params) %s", len(t.Params), t.Ret)
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	}
	return "?"
}

// newStruct lays out a struct with 8-byte members.
func newStruct(name string, fields []Field) *Type {
	t := &Type{Kind: TypeStruct, StructName: name, fieldIdx: make(map[string]int)}
	off := int64(0)
	for i := range fields {
		fields[i].Offset = off
		off += fields[i].Type.Size()
		t.fieldIdx[fields[i].Name] = i
	}
	t.Fields = fields
	t.size = off
	return t
}

// compatible reports whether a value of type b can be assigned to a
// location of type a (C's loose rules for this subset: identical kinds,
// any pointer to/from any pointer or integer).
func compatible(a, b *Type) bool {
	if a == nil || b == nil {
		return false
	}
	if a.IsInteger() && b.IsInteger() {
		return true
	}
	if a.IsPtr() && (b.IsPtr() || b.IsInteger() || b.IsArray()) {
		return true
	}
	if a.IsInteger() && b.IsPtr() {
		return true
	}
	if a.Kind == TypeStruct && b.Kind == TypeStruct && a.StructName == b.StructName {
		return true
	}
	return false
}
