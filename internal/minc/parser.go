package minc

import "fmt"

// ParseError reports a syntax problem with position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("minc: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	toks   []Token
	pos    int
	prog   *Program
	nextID int
}

// Parse builds the AST for a compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks: toks,
		prog: &Program{
			Structs: make(map[string]*Type),
			Funcs:   make(map[string]*Func),
		},
	}
	if err := p.parseUnit(); err != nil {
		return nil, err
	}
	p.prog.exprCount = p.nextID
	return p.prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{t.Line, t.Col, fmt.Sprintf(format, args...)}
}

func (p *parser) accept(text string) bool {
	if p.cur().Text == text && p.cur().Kind != TokEOF {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errorf("expected %q, found %q", text, p.cur().Text)
	}
	return nil
}

func (p *parser) info(line int) ExprInfo {
	id := p.nextID
	p.nextID++
	return ExprInfo{ID: id, Line: line}
}

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "int", "char", "long", "void", "struct":
		return true
	}
	return false
}

// parseType parses a base type plus pointer stars.
func (p *parser) parseType() (*Type, error) {
	var base *Type
	switch {
	case p.accept("int"):
		base = IntType
	case p.accept("char"):
		base = CharType
	case p.accept("long"):
		base = LongType
	case p.accept("void"):
		base = VoidType
	case p.accept("struct"):
		name := p.cur().Text
		if p.cur().Kind != TokIdent {
			return nil, p.errorf("expected struct name")
		}
		p.pos++
		st, ok := p.prog.Structs[name]
		if !ok {
			// Forward reference: create a placeholder filled at definition.
			st = &Type{Kind: TypeStruct, StructName: name, fieldIdx: map[string]int{}}
			p.prog.Structs[name] = st
		}
		base = st
	default:
		return nil, p.errorf("expected type, found %q", p.cur().Text)
	}
	for p.accept("*") {
		base = PtrTo(base)
	}
	return base, nil
}

func (p *parser) parseUnit() error {
	for p.cur().Kind != TokEOF {
		if p.cur().Text == "struct" && p.peek().Kind == TokIdent && p.toks[min(p.pos+2, len(p.toks)-1)].Text == "{" {
			if err := p.parseStructDef(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseTopDecl(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseStructDef() error {
	p.pos++ // struct
	name := p.cur().Text
	p.pos++ // name
	if err := p.expect("{"); err != nil {
		return err
	}
	var fields []Field
	for !p.accept("}") {
		ft, err := p.parseType()
		if err != nil {
			return err
		}
		// Function-pointer field: ret (*name)(params);
		if p.cur().Text == "(" && p.peek().Text == "*" {
			fpt, fname, err := p.parseFuncPtrSuffix(ft)
			if err != nil {
				return err
			}
			fields = append(fields, Field{Name: fname, Type: fpt})
			if err := p.expect(";"); err != nil {
				return err
			}
			continue
		}
		for {
			fname := p.cur().Text
			if p.cur().Kind != TokIdent {
				return p.errorf("expected field name")
			}
			p.pos++
			fieldTy, err := p.parseArraySuffix(ft)
			if err != nil {
				return err
			}
			fields = append(fields, Field{Name: fname, Type: fieldTy})
			if !p.accept(",") {
				break
			}
			// Additional declarators may carry their own stars.
			for p.accept("*") {
				ft = PtrTo(ft)
			}
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	laid := newStruct(name, fields)
	if existing, ok := p.prog.Structs[name]; ok {
		// Fill the forward-declared placeholder in place.
		*existing = *laid
	} else {
		p.prog.Structs[name] = laid
	}
	return nil
}

// parseTopDecl parses a function definition or global variable.
func (p *parser) parseTopDecl() error {
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	if p.cur().Kind != TokIdent {
		return p.errorf("expected identifier after type")
	}
	name := p.cur().Text
	p.pos++

	if p.cur().Text == "(" {
		return p.parseFuncRest(ty, name)
	}
	// Global variable (no initializer in this subset).
	gty, err := p.parseArraySuffix(ty)
	if err != nil {
		return err
	}
	g := &Symbol{Name: name, Ty: gty, Global: true}
	p.prog.Globals = append(p.prog.Globals, g)
	for p.accept(",") {
		t2 := ty
		for p.accept("*") {
			t2 = PtrTo(t2)
		}
		if p.cur().Kind != TokIdent {
			return p.errorf("expected identifier in global declaration")
		}
		p.prog.Globals = append(p.prog.Globals, &Symbol{Name: p.cur().Text, Ty: t2, Global: true})
		p.pos++
	}
	return p.expect(";")
}

func (p *parser) parseFuncRest(ret *Type, name string) error {
	if err := p.expect("("); err != nil {
		return err
	}
	fn := &Func{Name: name, Ret: ret}
	if !p.accept(")") {
		if p.accept("void") && p.cur().Text == ")" {
			// f(void)
		} else {
			for {
				pt, err := p.parseType()
				if err != nil {
					return err
				}
				pname := ""
				if p.cur().Text == "(" && p.peek().Text == "*" {
					// Function-pointer parameter: ret (*name)(params).
					fpt, fpName, err := p.parseFuncPtrSuffix(pt)
					if err != nil {
						return err
					}
					pt, pname = fpt, fpName
				} else if p.cur().Kind == TokIdent {
					pname = p.cur().Text
					p.pos++
				}
				fn.Params = append(fn.Params, Param{Name: pname, Ty: pt})
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fn.Body = body
	if _, dup := p.prog.Funcs[name]; dup {
		return p.errorf("duplicate function %q", name)
	}
	p.prog.Funcs[name] = fn
	return nil
}

func (p *parser) parseBlock() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.cur().Text == "{":
		return p.parseBlock()

	case p.isTypeStart():
		return p.parseDecl()

	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept("else") {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil

	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil

	case p.accept("do"):
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond}, nil

	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.accept(";") {
			if p.isTypeStart() {
				d, err := p.parseDecl()
				if err != nil {
					return nil, err
				}
				init = d
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				init = &ExprStmt{E: e}
				if err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		}
		var cond Expr
		if !p.accept(";") {
			var err error
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		var post Expr
		if p.cur().Text != ")" {
			var err error
			post, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: init, Cond: cond, Post: post, Body: body}, nil

	case p.accept("switch"):
		return p.parseSwitch()

	case p.accept("return"):
		if p.accept(";") {
			return &ReturnStmt{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{E: e}, nil

	case p.accept("break"):
		return &BreakStmt{}, p.expect(";")

	case p.accept("continue"):
		return &ContinueStmt{}, p.expect(";")

	case p.accept(";"):
		return &Block{}, nil

	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{E: e}, nil
	}
}

// parseArraySuffix consumes an optional [N] declarator suffix.
func (p *parser) parseArraySuffix(ty *Type) (*Type, error) {
	for p.accept("[") {
		if p.cur().Kind != TokNumber {
			return nil, p.errorf("array length must be a constant")
		}
		n := p.cur().Num
		if n <= 0 {
			return nil, p.errorf("array length must be positive")
		}
		p.pos++
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		ty = ArrayOf(ty, n)
	}
	return ty, nil
}

func (p *parser) parseDecl() (Stmt, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	// Function-pointer declarator: ret (*name)(params).
	if p.cur().Text == "(" && p.peek().Text == "*" {
		return p.parseFuncPtrDecl(ty)
	}
	if p.cur().Kind != TokIdent {
		return nil, p.errorf("expected variable name")
	}
	name := p.cur().Text
	line := p.cur().Line
	p.pos++
	ty, err = p.parseArraySuffix(ty)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name, Ty: ty}
	if p.accept("=") {
		init, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	// Multiple declarators become nested blocks for simplicity.
	if p.cur().Text == "," {
		b := &Block{Stmts: []Stmt{d}}
		for p.accept(",") {
			t2 := ty
			for t2.IsPtr() {
				t2 = t2.Elem // strip stars; re-read below
			}
			t3 := t2
			for p.accept("*") {
				t3 = PtrTo(t3)
			}
			if p.cur().Kind != TokIdent {
				return nil, p.errorf("expected variable name at line %d", line)
			}
			d2 := &DeclStmt{Name: p.cur().Text, Ty: t3}
			p.pos++
			if p.accept("=") {
				init, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				d2.Init = init
			}
			b.Stmts = append(b.Stmts, d2)
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return b, nil
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

// parseFuncPtrSuffix parses (*name)(param types) after the return type,
// yielding the pointer-to-function type and the declared name.
func (p *parser) parseFuncPtrSuffix(ret *Type) (*Type, string, error) {
	p.pos++ // (
	p.pos++ // *
	if p.cur().Kind != TokIdent {
		return nil, "", p.errorf("expected function-pointer name")
	}
	name := p.cur().Text
	p.pos++
	if err := p.expect(")"); err != nil {
		return nil, "", err
	}
	if err := p.expect("("); err != nil {
		return nil, "", err
	}
	var params []*Type
	if !p.accept(")") {
		if p.accept("void") && p.cur().Text == ")" {
			// (void)
		} else {
			for {
				pt, err := p.parseType()
				if err != nil {
					return nil, "", err
				}
				if p.cur().Kind == TokIdent {
					p.pos++ // optional parameter name
				}
				params = append(params, pt)
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, "", err
		}
	}
	return PtrTo(FuncType(ret, params)), name, nil
}

// parseFuncPtrDecl parses ret (*name)(param types) [= init];
func (p *parser) parseFuncPtrDecl(ret *Type) (Stmt, error) {
	ty, name, err := p.parseFuncPtrSuffix(ret)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name, Ty: ty}
	if p.accept("=") {
		init, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

// parseSwitch parses switch (expr) { case N: ... default: ... }.
// Multiple labels may stack on one arm; bodies fall through as in C.
func (p *parser) parseSwitch() (Stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{Cond: cond}
	var cur *SwitchCase
	flush := func() {
		if cur != nil {
			sw.Cases = append(sw.Cases, *cur)
		}
	}
	for !p.accept("}") {
		switch {
		case p.accept("case"):
			// Stacked labels extend the previous (empty) arm.
			if cur != nil && len(cur.Body) == 0 && !cur.Default {
				// fallthrough labels: keep accumulating into cur
			} else {
				flush()
				cur = &SwitchCase{}
			}
			neg := p.accept("-")
			if p.cur().Kind != TokNumber {
				return nil, p.errorf("case label must be a constant")
			}
			v := p.cur().Num
			if neg {
				v = -v
			}
			cur.Vals = append(cur.Vals, v)
			p.pos++
			if err := p.expect(":"); err != nil {
				return nil, err
			}
		case p.accept("default"):
			flush()
			cur = &SwitchCase{Default: true}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
		case p.cur().Kind == TokEOF:
			return nil, p.errorf("unterminated switch")
		default:
			if cur == nil {
				return nil, p.errorf("statement before first case label")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			cur.Body = append(cur.Body, s)
		}
	}
	flush()
	return sw, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseComma() }

func (p *parser) parseComma() (Expr, error) {
	// The comma operator is omitted from this subset; commas separate
	// arguments only.
	return p.parseAssign()
}

func (p *parser) parseAssign() (Expr, error) {
	lhs, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	switch op := p.cur().Text; op {
	case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=":
		line := p.cur().Line
		p.pos++
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Assign{ExprInfo: p.info(line), Op: op, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseCond() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.cur().Text == "?" {
		line := p.cur().Line
		p.pos++
		t, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		f, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		return &Cond{ExprInfo: p.info(line), C: c, T: t, F: f}, nil
	}
	return c, nil
}

var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Text
		prec, ok := binaryPrec[op]
		if !ok || prec < minPrec || p.cur().Kind != TokPunct {
			return lhs, nil
		}
		line := p.cur().Line
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{ExprInfo: p.info(line), Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Text {
	case "-", "!", "~", "*", "&":
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{ExprInfo: p.info(t.Line), Op: t.Text, X: x}, nil
	case "+":
		p.pos++
		return p.parseUnary()
	case "++", "--":
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{ExprInfo: p.info(t.Line), Op: t.Text, X: x}, nil
	case "sizeof":
		p.pos++
		if p.cur().Text == "(" && p.typeAfterParen() {
			p.pos++ // (
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SizeofType{ExprInfo: p.info(t.Line), T: ty}, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &SizeofType{ExprInfo: p.info(t.Line), Of: x}, nil
	case "(":
		if p.typeAfterParen() {
			p.pos++ // (
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Cast{ExprInfo: p.info(t.Line), To: ty, X: x}, nil
		}
	}
	return p.parsePostfix()
}

// typeAfterParen reports whether "(" is followed by a type (cast/sizeof).
func (p *parser) typeAfterParen() bool {
	if p.cur().Text != "(" {
		return false
	}
	nxt := p.peek()
	if nxt.Kind != TokKeyword {
		return false
	}
	switch nxt.Text {
	case "int", "char", "long", "void", "struct":
		return true
	}
	return false
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Text {
		case "[":
			p.pos++
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{ExprInfo: p.info(t.Line), X: x, I: i}
		case ".", "->":
			p.pos++
			if p.cur().Kind != TokIdent {
				return nil, p.errorf("expected member name")
			}
			x = &Member{ExprInfo: p.info(t.Line), X: x, Name: p.cur().Text, Arrow: t.Text == "->"}
			p.pos++
		case "++", "--":
			p.pos++
			x = &PostIncDec{ExprInfo: p.info(t.Line), Op: t.Text, X: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		return &NumLit{ExprInfo: p.info(t.Line), V: t.Num}, nil
	case t.Text == "NULL":
		p.pos++
		return &NullLit{ExprInfo: p.info(t.Line)}, nil
	case t.Kind == TokIdent:
		p.pos++
		if p.cur().Text == "(" {
			p.pos++
			call := &Call{ExprInfo: p.info(t.Line), Name: t.Text}
			if !p.accept(")") {
				for {
					a, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &VarRef{ExprInfo: p.info(t.Line), Name: t.Text}, nil
	case t.Text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	}
	return nil, p.errorf("unexpected token %q", t.Text)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
