package minc

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvref/internal/obs"
	"nvref/internal/rt"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenTraceProg exercises every traced operation kind: persistent
// allocation, pointer stores/loads in both heaps, data access through a
// persistent pointer, and free. It is fixed — the simulator is
// deterministic, so its event sequence is too.
const goldenTraceProg = `
int main() {
  int *p = pmalloc(16);
  int *q = pmalloc(16);
  *p = 7;
  *q = *p + 35;
  p = q;
  print(*p);
  pfree(q);
  return 0;
}
`

// runGoldenTrace executes the fixed program under HW with a capturing
// tracer and returns the structured events alongside the text rendering
// the sink produced, line per event.
func runGoldenTrace(t *testing.T) ([]obs.Event, string) {
	t.Helper()
	prog, _, err := Compile(goldenTraceProg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := rt.New(rt.Config{Mode: rt.HW})
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	tr := obs.NewTracer(obs.DefaultTraceCapacity)
	tr.SetSink(func(e obs.Event) {
		text.WriteString(rt.FormatEvent(e))
		text.WriteByte('\n')
	})
	ctx.SetTracer(tr)
	m, err := NewMachine(prog, ctx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 0 || len(res.Output) != 1 || res.Output[0] != 42 {
		t.Fatalf("fixed program changed behaviour: exit=%d output=%v", res.Exit, res.Output)
	}
	return tr.Events(), text.String()
}

// TestTraceGolden pins the structured event sequence of a fixed program:
// the text the sink renders must match the checked-in golden file, and the
// compat formatter over the ring-buffered events must reproduce that text
// exactly — proving the structured trace subsumes the legacy one.
func TestTraceGolden(t *testing.T) {
	events, text := runGoldenTrace(t)
	if len(events) == 0 {
		t.Fatal("no events traced")
	}

	golden := filepath.Join("testdata", "trace_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if text != string(want) {
		t.Errorf("trace diverged from golden file (run with -update if intended)\n got:\n%s\nwant:\n%s", text, want)
	}

	// The ring holds the same events the sink saw, in order; re-rendering
	// them through the compat formatter must give the identical legacy text.
	var refmt strings.Builder
	for _, e := range events {
		refmt.WriteString(rt.FormatEvent(e))
		refmt.WriteByte('\n')
	}
	if refmt.String() != text {
		t.Errorf("FormatEvent over ring events != sink text\nring:\n%s\nsink:\n%s", refmt.String(), text)
	}
}

// TestTraceGoldenKinds asserts the fixed program covers every traced
// operation kind, so the golden file keeps exercising the full formatter.
func TestTraceGoldenKinds(t *testing.T) {
	events, _ := runGoldenTrace(t)
	seen := map[obs.EventKind]bool{}
	for _, e := range events {
		seen[e.Kind] = true
	}
	for _, k := range []obs.EventKind{
		obs.EvLoad, obs.EvStore, obs.EvLoadPtr, obs.EvStorePtr,
		obs.EvAlloc, obs.EvFree,
	} {
		if !seen[k] {
			t.Errorf("fixed program never produced %q events", k)
		}
	}
}

// TestTraceGoldenJSONLRoundTrip writes the golden events as JSONL, reads
// them back, and re-renders: byte-identical text both before and after the
// round trip.
func TestTraceGoldenJSONLRoundTrip(t *testing.T) {
	events, text := runGoldenTrace(t)

	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(back), len(events))
	}
	var refmt strings.Builder
	for i, e := range back {
		if e != events[i] {
			t.Errorf("event %d changed in round trip:\n got %+v\nwant %+v", i, e, events[i])
		}
		refmt.WriteString(rt.FormatEvent(e))
		refmt.WriteByte('\n')
	}
	if refmt.String() != text {
		t.Error("text rendering changed across JSONL round trip")
	}
}
