package minc

// Prop is the inferred persistence property of a pointer-valued
// expression: the lattice of the paper's compiler pass.
type Prop int

// Property lattice values.
const (
	PropNone    Prop = iota // not a pointer / not yet visited
	PropVA                  // statically known to hold a virtual address
	PropRA                  // statically known to hold a relative address
	PropUnknown             // could be either; dynamic check required
)

func (p Prop) String() string {
	switch p {
	case PropNone:
		return "none"
	case PropVA:
		return "VA"
	case PropRA:
		return "RA"
	case PropUnknown:
		return "unknown"
	}
	return "?"
}

// merge joins two lattice values.
func (p Prop) merge(q Prop) Prop {
	if p == PropNone {
		return q
	}
	if q == PropNone {
		return p
	}
	if p == q {
		return p
	}
	return PropUnknown
}

// Expr is a typed expression node. Every node carries the inference
// results: its own pointer property and whether each runtime check the
// node implies was eliminated.
type Expr interface {
	exprBase() *ExprInfo
}

// ExprInfo is the shared expression payload.
type ExprInfo struct {
	ID   int
	Line int
	Ty   *Type
	// Prop is the inferred property of this expression's pointer value.
	Prop Prop
	// NeedsCheck is set by the inference pass on expressions that must
	// dynamically dispatch on a pointer's format under the SW model.
	NeedsCheck bool
}

func (i *ExprInfo) exprBase() *ExprInfo { return i }

// Expression nodes.
type (
	// NumLit is an integer literal.
	NumLit struct {
		ExprInfo
		V int64
	}
	// NullLit is the NULL constant.
	NullLit struct{ ExprInfo }
	// VarRef references a local, parameter, or global by name — or, when
	// IsFunc is set, names a function whose value is its text address.
	VarRef struct {
		ExprInfo
		Name   string
		Sym    *Symbol
		IsFunc bool
	}
	// Unary is -x, !x, ~x, *x, &x, ++x, --x.
	Unary struct {
		ExprInfo
		Op string
		X  Expr
	}
	// PostIncDec is x++ or x--.
	PostIncDec struct {
		ExprInfo
		Op string
		X  Expr
	}
	// Binary is x op y for arithmetic, relational, logical operators.
	Binary struct {
		ExprInfo
		Op   string
		X, Y Expr
	}
	// Assign is lhs op rhs, where op is =, +=, -= etc.
	Assign struct {
		ExprInfo
		Op       string
		LHS, RHS Expr
	}
	// Cond is c ? t : f.
	Cond struct {
		ExprInfo
		C, T, F Expr
	}
	// Call invokes a named function or builtin — or, when Sym is set, an
	// indirect call through a function-pointer variable (the pxv/pxr
	// (argument list) rows of Figure 4).
	Call struct {
		ExprInfo
		Name string
		Args []Expr
		Sym  *Symbol
	}
	// Index is x[i].
	Index struct {
		ExprInfo
		X, I Expr
	}
	// Member is x.f or x->f.
	Member struct {
		ExprInfo
		X     Expr
		Name  string
		Arrow bool
		Field Field
	}
	// Cast is (T)x.
	Cast struct {
		ExprInfo
		To *Type
		X  Expr
	}
	// SizeofType is sizeof(T) or sizeof expr.
	SizeofType struct {
		ExprInfo
		T  *Type
		Of Expr
	}
)

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Statement nodes.
type (
	// DeclStmt declares a local variable with an optional initializer.
	DeclStmt struct {
		Name string
		Ty   *Type
		Init Expr
		Sym  *Symbol
	}
	// ExprStmt evaluates an expression for effect.
	ExprStmt struct{ E Expr }
	// IfStmt is the conditional statement.
	IfStmt struct {
		Cond       Expr
		Then, Else Stmt
	}
	// WhileStmt is the while loop.
	WhileStmt struct {
		Cond Expr
		Body Stmt
	}
	// DoWhileStmt is the do-while loop.
	DoWhileStmt struct {
		Body Stmt
		Cond Expr
	}
	// ForStmt is the for loop.
	ForStmt struct {
		Init Stmt
		Cond Expr
		Post Expr
		Body Stmt
	}
	// ReturnStmt returns from the current function.
	ReturnStmt struct{ E Expr }
	// Block is a brace-delimited statement list with its own scope.
	Block struct{ Stmts []Stmt }
	// SwitchStmt dispatches on an integer expression. Cases hold constant
	// values; execution falls through case boundaries until a break, as
	// in C.
	SwitchStmt struct {
		Cond Expr
		// Cases in source order; a case with Default true matches when
		// nothing else does.
		Cases []SwitchCase
	}
	// BreakStmt exits the innermost loop or switch.
	BreakStmt struct{}
	// ContinueStmt restarts the innermost loop.
	ContinueStmt struct{}
)

func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*Block) stmtNode()        {}
func (*SwitchStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Symbol is a resolved variable: a parameter, local, or global. Locals and
// parameters live in the simulated stack frame; globals in a data segment.
type Symbol struct {
	Name   string
	Ty     *Type
	Global bool
	// Offset is the byte offset within the frame (locals) or the data
	// segment (globals).
	Offset int64
	// Prop is the inferred property of the pointer the variable holds.
	Prop Prop
}

// SwitchCase is one case (or default) arm of a switch.
type SwitchCase struct {
	Vals    []int64 // constant labels; empty for default
	Default bool
	Body    []Stmt
}

// Param is a function parameter.
type Param struct {
	Name string
	Ty   *Type
}

// Func is one function definition.
type Func struct {
	Name   string
	Ret    *Type
	Params []Param
	Body   *Block

	// Symbols in frame order; FrameSize is the stack space needed.
	Locals    []*Symbol
	FrameSize int64
}

// Program is a parsed and checked compilation unit.
type Program struct {
	Structs map[string]*Type
	Funcs   map[string]*Func
	Globals []*Symbol
	// GlobalSize is the data-segment size.
	GlobalSize int64
	// exprCount is the number of expression nodes (site IDs).
	exprCount int
}
