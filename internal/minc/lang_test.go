package minc

import (
	"strings"
	"testing"

	"nvref/internal/rt"
)

func TestArrayDeclRejectsBadForms(t *testing.T) {
	bad := map[string]string{
		"zero length":       `int main() { long a[0]; return 0; }`,
		"negative length":   `int main() { long a[-1]; return 0; }`,
		"non-const length":  `int main() { int n = 3; long a[n]; return 0; }`,
		"array initializer": `int main() { long a[3] = 5; return 0; }`,
		"array assignment":  `int main() { long a[3]; long b[3]; a = b; return 0; }`,
	}
	for name, src := range bad {
		prog, err := Parse(src)
		if err != nil {
			continue
		}
		if err := Check(prog); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSwitchRejectsBadForms(t *testing.T) {
	bad := map[string]string{
		"duplicate labels": `int main() { switch (1) { case 1: break; case 1: break; } return 0; }`,
		"two defaults":     `int main() { switch (1) { default: break; default: break; } return 0; }`,
		"non-const label":  `int main() { int x = 1; switch (1) { case x: break; } return 0; }`,
		"stmt before case": `int main() { switch (1) { print(1); case 1: break; } return 0; }`,
	}
	for name, src := range bad {
		prog, err := Parse(src)
		if err != nil {
			continue
		}
		if err := Check(prog); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSwitchBranchEventsRecorded(t *testing.T) {
	src := `
int main() {
    int i;
    long s = 0;
    for (i = 0; i < 50; i++) {
        switch (i % 3) {
        case 0: s += 1; break;
        case 1: s += 2; break;
        default: s += 3; break;
        }
    }
    print(s);
    return 0;
}`
	res, ctx, err := RunSource(src, rt.Volatile)
	if err != nil {
		t.Fatal(err)
	}
	// 17 zeros, 17 ones, 16 twos: s = 17+34+48 = 99.
	if len(res.Output) != 1 || res.Output[0] != 99 {
		t.Fatalf("output = %v", res.Output)
	}
	if ctx.CPU.Stats.Branch.Branches < 100 {
		t.Errorf("switch dispatch recorded only %d branches", ctx.CPU.Stats.Branch.Branches)
	}
}

func TestArrayElementsLiveInFrame(t *testing.T) {
	// A local array must occupy frame (DRAM) storage: taking an element's
	// address and storing through it must not touch NVM.
	src := `
int main() {
    long a[4];
    long* p = &a[2];
    *p = 77;
    print(a[2]);
    return 0;
}`
	res, ctx, err := RunSource(src, rt.HW)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 77 {
		t.Fatalf("output = %v", res.Output)
	}
	if ctx.CPU.Stats.NVMAccesses != 0 {
		t.Errorf("stack-array program touched NVM %d times", ctx.CPU.Stats.NVMAccesses)
	}
}

func TestArrayInsideNVMStructUsesRelativeAddressing(t *testing.T) {
	// The embedded array's address inherits the struct's relative form,
	// so stores into it go through the persistent path.
	src := `
struct R { long data[4]; };
int main() {
    struct R* r = (struct R*)pmalloc(sizeof(struct R));
    int i;
    for (i = 0; i < 4; i++) r->data[i] = i;
    long s = 0;
    for (i = 0; i < 4; i++) s += r->data[i];
    print(s);
    return 0;
}`
	res, ctx, err := RunSource(src, rt.HW)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 6 {
		t.Fatalf("output = %v", res.Output)
	}
	if ctx.CPU.Stats.NVMAccesses == 0 && ctx.Stats.EATranslations == 0 {
		t.Error("NVM-struct array program never used persistent addressing")
	}
}

func TestSizeofArrayForms(t *testing.T) {
	src := `
struct S { long a[5]; long b; };
int main() {
    long local[7];
    print(sizeof(local));
    print(sizeof(struct S));
    struct S* s = (struct S*)malloc(sizeof(struct S));
    print(sizeof(s->a));
    return 0;
}`
	res, err := VerifyAllModes(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{56, 48, 40}
	for i, w := range want {
		if res.Output[i] != w {
			t.Errorf("output[%d] = %d, want %d", i, res.Output[i], w)
		}
	}
}

func TestParseSwitchSyntaxErrors(t *testing.T) {
	bad := []string{
		`int main() { switch (1) { case : break; } return 0; }`,
		`int main() { switch (1) { case 1 break; } return 0; }`,
		`int main() { switch 1 { case 1: break; } return 0; }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parsed invalid switch: %s", src)
		}
	}
}

func TestLexKeywordsForSwitch(t *testing.T) {
	toks, err := Lex("switch case default")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:3] {
		if tok.Kind != TokKeyword {
			t.Errorf("%q lexed as %v, want keyword", tok.Text, tok.Kind)
		}
	}
}

func TestGlobalArraySharedAcrossCalls(t *testing.T) {
	src := `
long buf[4];
void put(int i, long v) { buf[i] = v; }
long get(int i) { return buf[i]; }
int main() {
    put(0, 11);
    put(3, 44);
    print(get(0) + get(3));
    return 0;
}`
	res, err := VerifyAllModes(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 55 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestDecayedArrayComparesEqualToFirstElementAddress(t *testing.T) {
	src := `
int main() {
    long a[4];
    if (a == &a[0]) print(1); else print(0);
    if (a + 1 == &a[1]) print(1); else print(0);
    return 0;
}`
	res, err := VerifyAllModes(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 1 || res.Output[1] != 1 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestCorpusHasExpectedBreadth(t *testing.T) {
	all := Corpus()
	if len(all) < 80 {
		t.Errorf("corpus has %d programs; expected at least 80", len(all))
	}
	names := map[string]bool{}
	for _, p := range all {
		if names[p.Name] {
			t.Errorf("duplicate corpus program name %q", p.Name)
		}
		names[p.Name] = true
		if !strings.Contains(p.Source, "main") {
			t.Errorf("%s has no main", p.Name)
		}
	}
}
