package minc

// The pointer-property inference pass: the paper's compiler-based method
// (Section V-B). Starting from the functions defined to return or accept
// relative addresses (pmalloc, pfree) and from sources that are virtual by
// construction (malloc, address-of, NULL), the pass propagates properties
// through assignments, calls, and returns to a whole-program fixpoint.
// Every pointer operation whose operand property remains unknown keeps its
// dynamic check; operations on resolved pointers execute check-free.
//
// The lattice refines the paper's two pointer forms with the one static
// fact the pass can actually exploit: PropVA means "virtual address into
// DRAM" (stack, globals, malloc), because only that resolves both the
// determineY dispatch and the determineX destination test.

// InferenceReport summarizes the pass for the Section V-B statistics
// (the paper reports ~42% of checks survive inference).
type InferenceReport struct {
	// PtrSites is the number of expressions that imply a runtime format
	// dispatch when their operand property is unknown.
	PtrSites int
	// Checked is how many of those kept their dynamic check.
	Checked int
}

// CheckedFraction is Checked/PtrSites.
func (r InferenceReport) CheckedFraction() float64 {
	if r.PtrSites == 0 {
		return 0
	}
	return float64(r.Checked) / float64(r.PtrSites)
}

type inferencer struct {
	prog *Program
	// retProp is the merged property of each function's returned pointers.
	retProp map[string]Prop
	changed bool
}

// Infer runs the whole-program property analysis and annotates every
// expression with its property and check requirement.
func Infer(prog *Program) InferenceReport {
	inf := &inferencer{prog: prog, retProp: make(map[string]Prop)}

	// Seed: globals and parameters start at bottom and accumulate.
	for iter := 0; iter < 50; iter++ {
		inf.changed = false
		for _, fn := range prog.Funcs {
			inf.inferFunc(fn)
		}
		if !inf.changed {
			break
		}
	}
	// Functions never called keep parameter props at bottom; treat those
	// as unknown (library entry points can be called with anything).
	for _, fn := range prog.Funcs {
		for i := range fn.Params {
			sym := fn.Locals[i]
			if sym.Ty.IsPtr() && sym.Prop == PropNone {
				sym.Prop = PropUnknown
				inf.changed = true
			}
		}
	}
	for _, fn := range prog.Funcs {
		inf.inferFunc(fn)
	}

	// Final annotation pass: decide checks.
	report := InferenceReport{}
	for _, fn := range prog.Funcs {
		walkStmts(fn.Body, func(e Expr) {
			sites, checked := checkNeeds(e)
			report.PtrSites += sites
			report.Checked += checked
		})
	}
	return report
}

func (inf *inferencer) raiseSym(s *Symbol, p Prop) {
	if s == nil || p == PropNone {
		return
	}
	m := s.Prop.merge(p)
	if m != s.Prop {
		s.Prop = m
		inf.changed = true
	}
}

func (inf *inferencer) raiseRet(name string, p Prop) {
	m := inf.retProp[name].merge(p)
	if m != inf.retProp[name] {
		inf.retProp[name] = m
		inf.changed = true
	}
}

func (inf *inferencer) inferFunc(fn *Func) {
	var stmt func(s Stmt)
	stmt = func(s Stmt) {
		switch st := s.(type) {
		case *DeclStmt:
			if st.Init != nil {
				p := inf.exprProp(st.Init)
				if st.Ty.IsPtr() {
					inf.raiseSym(st.Sym, p)
				}
			}
		case *ExprStmt:
			inf.exprProp(st.E)
		case *IfStmt:
			inf.exprProp(st.Cond)
			stmt(st.Then)
			if st.Else != nil {
				stmt(st.Else)
			}
		case *WhileStmt:
			inf.exprProp(st.Cond)
			stmt(st.Body)
		case *DoWhileStmt:
			stmt(st.Body)
			inf.exprProp(st.Cond)
		case *ForStmt:
			if st.Init != nil {
				stmt(st.Init)
			}
			if st.Cond != nil {
				inf.exprProp(st.Cond)
			}
			if st.Post != nil {
				inf.exprProp(st.Post)
			}
			stmt(st.Body)
		case *ReturnStmt:
			if st.E != nil {
				p := inf.exprProp(st.E)
				if fn.Ret.IsPtr() {
					inf.raiseRet(fn.Name, p)
				}
			}
		case *SwitchStmt:
			inf.exprProp(st.Cond)
			for _, cs := range st.Cases {
				for _, inner := range cs.Body {
					stmt(inner)
				}
			}
		case *Block:
			for _, inner := range st.Stmts {
				stmt(inner)
			}
		}
	}
	stmt(fn.Body)
}

// exprProp computes (and records) the property of an expression's pointer
// value, propagating through assignments and calls.
func (inf *inferencer) exprProp(e Expr) Prop {
	info := e.exprBase()
	var p Prop
	switch ex := e.(type) {
	case *NumLit:
		p = PropNone
	case *NullLit:
		p = PropNone // null is form-neutral; merges without poisoning
	case *VarRef:
		if ex.IsFunc {
			p = PropVA // a function's text address is virtual
		} else if ex.Sym != nil && ex.Sym.Ty.IsPtr() {
			p = ex.Sym.Prop
		} else if ex.Sym != nil && ex.Sym.Ty.IsArray() {
			p = PropVA // decays to the address of stack/global storage
		}
	case *Unary:
		xp := inf.exprProp(ex.X)
		switch ex.Op {
		case "*":
			if info.Ty.IsPtr() {
				p = PropUnknown // loaded from memory: either form
			}
		case "&":
			p = PropVA // address of stack/global/field storage... see below
			// &p->f inherits p's property: the member address has the
			// same form as the base pointer.
			if m, ok := ex.X.(*Member); ok && m.Arrow {
				p = inf.exprProp(m.X)
			} else if idx, ok := ex.X.(*Index); ok {
				p = inf.exprProp(idx.X)
			} else if u, ok := ex.X.(*Unary); ok && u.Op == "*" {
				p = inf.exprProp(u.X)
			}
		case "++", "--":
			p = xp
		}
	case *PostIncDec:
		p = inf.exprProp(ex.X)
	case *Binary:
		xp := inf.exprProp(ex.X)
		yp := inf.exprProp(ex.Y)
		if info.Ty.IsPtr() {
			// Additive ops preserve the pointer operand's representation.
			if ex.X.exprBase().Ty.IsPtr() {
				p = xp
			} else {
				p = yp
			}
		}
	case *Assign:
		rp := inf.exprProp(ex.RHS)
		inf.exprProp(ex.LHS)
		if v, ok := ex.LHS.(*VarRef); ok && v.Sym != nil && v.Sym.Ty.IsPtr() {
			inf.raiseSym(v.Sym, rp)
		}
		if info.Ty.IsPtr() {
			p = rp
		}
	case *Cond:
		inf.exprProp(ex.C)
		tp := inf.exprProp(ex.T)
		fp := inf.exprProp(ex.F)
		p = tp.merge(fp)
	case *Call:
		for i, a := range ex.Args {
			ap := inf.exprProp(a)
			if fn, ok := inf.prog.Funcs[ex.Name]; ok && i < len(fn.Params) {
				if fn.Params[i].Ty.IsPtr() {
					inf.raiseSym(fn.Locals[i], ap)
				}
			}
		}
		if ex.Sym != nil && info.Ty != nil && info.Ty.IsPtr() {
			p = PropUnknown // indirect call's pointer result
			break
		}
		switch ex.Name {
		case "pmalloc":
			p = PropRA
		case "malloc":
			p = PropVA
		default:
			if _, ok := inf.prog.Funcs[ex.Name]; ok && info.Ty.IsPtr() {
				p = inf.retProp[ex.Name]
			} else if info.Ty.IsPtr() {
				p = PropUnknown
			}
		}
	case *Index:
		xp := inf.exprProp(ex.X)
		inf.exprProp(ex.I)
		if info.Ty.IsPtr() {
			p = PropUnknown // loaded from memory
		} else if info.Ty.IsArray() {
			p = xp
		}
	case *Member:
		xp := inf.exprProp(ex.X)
		if info.Ty.IsPtr() {
			p = PropUnknown // loaded from memory
		} else if info.Ty.IsArray() {
			p = xp // the array's address shares the base's form
		}
	case *Cast:
		xp := inf.exprProp(ex.X)
		if info.Ty.IsPtr() {
			if ex.X.exprBase().Ty != nil && ex.X.exprBase().Ty.IsPtr() {
				p = xp
			} else {
				p = PropUnknown // integer reinterpreted as pointer
			}
		}
	case *SizeofType:
		if ex.Of != nil {
			inf.exprProp(ex.Of)
		}
	}
	info.Prop = p
	return p
}

// checkNeeds decides, for one expression, how many dynamic-check sites it
// implies and how many remain after inference. It also sets NeedsCheck.
func checkNeeds(e Expr) (sites, checked int) {
	info := e.exprBase()
	known := func(x Expr) bool {
		p := x.exprBase().Prop
		return p == PropVA || p == PropRA || p == PropNone
	}
	ptr := func(x Expr) bool {
		t := x.exprBase().Ty
		return t != nil && t.IsPtr()
	}

	switch ex := e.(type) {
	case *Unary:
		if ex.Op == "*" {
			sites = 1
			if !known(ex.X) {
				checked = 1
			}
		}
	case *Index:
		sites = 1
		if !known(ex.X) {
			checked = 1
		}
	case *Member:
		if ex.Arrow {
			sites = 1
			if !known(ex.X) {
				checked = 1
			}
		}
	case *Assign:
		if ptr(e) && !isVarTarget(ex.LHS) {
			// Pointer store through memory: determineX on the location,
			// determineY on the value.
			sites = 2
			if !known(addrOf(ex.LHS)) {
				checked++
			}
			if !known(ex.RHS) {
				checked++
			}
		} else if ptr(e) {
			// Pointer store into a local/global: location is known DRAM;
			// only the value's form may need a check.
			sites = 1
			if !known(ex.RHS) {
				checked = 1
			}
		}
	case *Binary:
		if ptr(ex.X) && ptr(ex.Y) {
			switch ex.Op {
			case "==", "!=", "<", ">", "<=", ">=", "-":
				sites = 2
				if !known(ex.X) {
					checked++
				}
				if !known(ex.Y) {
					checked++
				}
			}
		}
	case *Cast:
		if ex.To.IsInteger() && ptr(ex.X) {
			sites = 1
			if !known(ex.X) {
				checked = 1
			}
		}
	case *Call:
		if ex.Sym != nil {
			// Indirect call: the target pointer's form must be resolved
			// before transfer (pxr(argument list)).
			sites = 1
			if ex.Sym.Prop == PropUnknown {
				checked = 1
			}
		}
	}
	info.NeedsCheck = checked > 0
	return sites, checked
}

// isVarTarget reports whether the lvalue is a plain variable (known DRAM
// storage) rather than a memory dereference.
func isVarTarget(e Expr) bool {
	_, ok := e.(*VarRef)
	return ok
}

// addrOf returns the expression whose value is the address written by the
// lvalue (the base pointer of a deref/index/member), or the lvalue itself.
func addrOf(lv Expr) Expr {
	switch ex := lv.(type) {
	case *Unary:
		if ex.Op == "*" {
			return ex.X
		}
	case *Index:
		return ex.X
	case *Member:
		if ex.Arrow {
			return ex.X
		}
	}
	return lv
}

// walkStmts applies f to every expression in a statement tree.
func walkStmts(s Stmt, f func(Expr)) {
	var expr func(e Expr)
	expr = func(e Expr) {
		if e == nil {
			return
		}
		f(e)
		switch ex := e.(type) {
		case *Unary:
			expr(ex.X)
		case *PostIncDec:
			expr(ex.X)
		case *Binary:
			expr(ex.X)
			expr(ex.Y)
		case *Assign:
			expr(ex.LHS)
			expr(ex.RHS)
		case *Cond:
			expr(ex.C)
			expr(ex.T)
			expr(ex.F)
		case *Call:
			for _, a := range ex.Args {
				expr(a)
			}
		case *Index:
			expr(ex.X)
			expr(ex.I)
		case *Member:
			expr(ex.X)
		case *Cast:
			expr(ex.X)
		case *SizeofType:
			expr(ex.Of)
		}
	}
	var stmt func(s Stmt)
	stmt = func(s Stmt) {
		switch st := s.(type) {
		case *DeclStmt:
			expr(st.Init)
		case *ExprStmt:
			expr(st.E)
		case *IfStmt:
			expr(st.Cond)
			stmt(st.Then)
			if st.Else != nil {
				stmt(st.Else)
			}
		case *WhileStmt:
			expr(st.Cond)
			stmt(st.Body)
		case *DoWhileStmt:
			stmt(st.Body)
			expr(st.Cond)
		case *ForStmt:
			if st.Init != nil {
				stmt(st.Init)
			}
			expr(st.Cond)
			expr(st.Post)
			stmt(st.Body)
		case *ReturnStmt:
			expr(st.E)
		case *SwitchStmt:
			expr(st.Cond)
			for _, cs := range st.Cases {
				for _, inner := range cs.Body {
					stmt(inner)
				}
			}
		case *Block:
			for _, inner := range st.Stmts {
				stmt(inner)
			}
		}
	}
	stmt(s)
}
