package minc

import (
	"fmt"

	"nvref/internal/rt"
)

// Compile parses, checks, and runs pointer-property inference on a source
// unit, returning the executable program and the inference statistics.
func Compile(src string) (*Program, InferenceReport, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, InferenceReport{}, err
	}
	if err := Check(prog); err != nil {
		return nil, InferenceReport{}, err
	}
	report := Infer(prog)
	return prog, report, nil
}

// Run executes a compiled program under the given model on a fresh
// context and returns the result together with the context (for metric
// extraction).
func Run(prog *Program, mode rt.Mode) (RunResult, *rt.Context, error) {
	ctx, err := rt.New(rt.Config{Mode: mode})
	if err != nil {
		return RunResult{}, nil, err
	}
	m, err := NewMachine(prog, ctx)
	if err != nil {
		return RunResult{}, nil, err
	}
	res, err := m.Run()
	return res, ctx, err
}

// RunSource compiles and runs in one step.
func RunSource(src string, mode rt.Mode) (RunResult, *rt.Context, error) {
	prog, _, err := Compile(src)
	if err != nil {
		return RunResult{}, nil, err
	}
	return Run(prog, mode)
}

// VerifyAllModes runs the program under every model and confirms the
// paper's Section VII-B soundness property: identical exit codes and
// identical printed output everywhere. It returns the Volatile result.
func VerifyAllModes(src string) (RunResult, error) {
	prog, _, err := Compile(src)
	if err != nil {
		return RunResult{}, err
	}
	var want RunResult
	for i, mode := range rt.Modes {
		got, _, err := Run(prog, mode)
		if err != nil {
			return RunResult{}, fmt.Errorf("minc: %s run failed: %w", mode, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got.Exit != want.Exit {
			return RunResult{}, fmt.Errorf("minc: %s exit = %d, Volatile exit = %d", mode, got.Exit, want.Exit)
		}
		if len(got.Output) != len(want.Output) {
			return RunResult{}, fmt.Errorf("minc: %s printed %d values, Volatile printed %d", mode, len(got.Output), len(want.Output))
		}
		for j := range got.Output {
			if got.Output[j] != want.Output[j] {
				return RunResult{}, fmt.Errorf("minc: %s output[%d] = %d, Volatile = %d", mode, j, got.Output[j], want.Output[j])
			}
		}
	}
	return want, nil
}
