package minc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDumpAnnotations(t *testing.T) {
	src := `
struct Node { long value; struct Node* next; };
void Append(struct Node* p, struct Node* n) {
    if (p != n) p->next = n;
}
int main() {
    struct Node* a = (struct Node*)pmalloc(sizeof(struct Node));
    struct Node* b = (struct Node*)malloc(sizeof(struct Node));
    Append(a, b);
    Append(b, a);
    return 0;
}`
	prog, _, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Dump(prog)
	for _, want := range []string{
		"func void Append",
		"[unknown]", // mixed-provenance parameters
		"!chk",      // residual checks inside Append
		"a[RA]",     // pmalloc result resolved to relative
		"b[VA]",     // malloc result resolved to virtual
		"func int main",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q in:\n%s", want, out)
		}
	}
}

func TestDumpCoversStatements(t *testing.T) {
	src := `
long g;
long f(long x) { return x; }
int main() {
    long a[3];
    int i = 0;
    do { i++; } while (i < 2);
    for (i = 0; i < 3; i++) a[i] = i;
    while (i > 0) { i--; if (i == 1) continue; }
    switch (i) {
    case 0: g = 1; break;
    default: g = 2;
    }
    long (*fp)(long) = f;
    print(fp(g) + a[0] ? 1 : 0);
    return 0;
}`
	prog, _, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Dump(prog)
	for _, want := range []string{"globals:", "do", "while", "for", "switch", "case", "default:", "break", "continue", "*fp("} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

// TestTestdataPrograms keeps the repository's example C programs compiling
// and sound under every model.
func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.c")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("found %d testdata programs, want >= 3", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := VerifyAllModes(string(src)); err != nil {
				t.Error(err)
			}
		})
	}
}
