package minc

// Fourth corpus group: function pointers — the pxv(argument list) and
// pxr(argument list) rows of Figure 4, including function pointers stored
// inside persistent objects and called back out.

// FuncPtrTests exercises indirect calls under the reference semantics.
var FuncPtrTests = []CorpusProgram{
	{
		Name: "funcptr-basic",
		Source: `
long add(long a, long b) { return a + b; }
long mul(long a, long b) { return a * b; }
int main() {
    long (*op)(long, long) = add;
    print(op(3, 4));
    op = mul;
    print(op(3, 4));
    return 0;
}`,
		Expect: []int64{7, 12},
	},
	{
		Name: "funcptr-in-persistent-struct",
		Source: `
struct Handler { long id; long (*fn)(long); };
long twice(long x) { return 2 * x; }
long square(long x) { return x * x; }
int main() {
    // A callback table in NVM: the function addresses are text-segment
    // virtual addresses, stored through pointerAssignment and loaded
    // back before the indirect transfer.
    struct Handler* h = (struct Handler*)pmalloc(2 * sizeof(struct Handler));
    h[0].id = 1; h[0].fn = twice;
    h[1].id = 2; h[1].fn = square;
    int i;
    for (i = 0; i < 2; i++) {
        long (*f)(long) = h[i].fn;
        print(f(6));
    }
    return 0;
}`,
		Expect: []int64{12, 36},
	},
	{
		Name: "funcptr-dispatch-table",
		Source: `
long inc(long x) { return x + 1; }
long dec(long x) { return x - 1; }
long neg(long x) { return -x; }
int main() {
    long (*ops0)(long) = inc;
    long (*ops1)(long) = dec;
    long (*ops2)(long) = neg;
    long** table = (long**)pmalloc(24);
    table[0] = (long*)(long)ops0;   // laundered through the table rows
    table[1] = (long*)(long)ops1;
    table[2] = (long*)(long)ops2;
    long x = 10;
    int i;
    for (i = 0; i < 3; i++) {
        long (*f)(long) = table[i];  // loose pointer compatibility, as C allows with a cast
        x = f(x);
    }
    print(x);
    return 0;
}`,
	},
	{
		Name: "funcptr-as-parameter",
		Source: `
long apply(long (*f)(long), long x) { return f(x); }
long triple(long x) { return 3 * x; }
int main() {
    print(apply(triple, 5));
    long (*g)(long) = triple;
    print(apply(g, 7));
    return 0;
}`,
		Expect: []int64{15, 21},
	},
	{
		Name: "funcptr-null-guard",
		Source: `
long one(long x) { return 1; }
int main() {
    long (*f)(long) = NULL;
    if (f == NULL) print(1); else print(0);
    f = one;
    if (f != NULL) print(1); else print(0);
    print(f(0));
    return 0;
}`,
		Expect: []int64{1, 1, 1},
	},
	{
		Name: "funcptr-recursive-target",
		Source: `
long fact(long n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
int main() {
    long (*f)(long) = fact;
    print(f(6));
    return 0;
}`,
		Expect: []int64{720},
	},
}

func init() {
	RegressionTests = append(RegressionTests, FuncPtrTests...)
}
