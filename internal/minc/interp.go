package minc

import (
	"errors"
	"fmt"
	"sort"

	"nvref/internal/core"
	"nvref/internal/rt"
)

// Interpreter limits.
const (
	maxSteps     = 100_000_000
	maxCallDepth = 4096
	stackBase    = uint64(0x4000_0000)
	stackSize    = uint64(8 << 20)
	globalBase   = uint64(0x3000_0000)
	// textBase is the simulated text segment: each function gets a slot
	// there so function pointers are ordinary virtual addresses.
	textBase   = uint64(0x2000_0000)
	textStride = uint64(16)
)

// Runtime errors.
var (
	ErrFuel       = errors.New("minc: step budget exhausted (infinite loop?)")
	ErrStackDepth = errors.New("minc: call stack overflow")
	ErrDivZero    = errors.New("minc: division by zero")
	ErrNoReturn   = errors.New("minc: non-void function fell off the end")
)

// RunResult is the outcome of executing a program.
type RunResult struct {
	Exit   int64
	Output []int64
}

// Machine executes a checked, inferred program over an rt.Context.
type Machine struct {
	ctx   *rt.Context
	prog  *Program
	sites []*rt.Site

	sp        uint64 // current stack pointer (grows up)
	depth     int
	steps     int
	allocSize map[uint64]uint64 // normalized object key -> size
	output    []int64

	// Function address assignment (text segment).
	funcAddr   map[string]uint64
	funcByAddr map[uint64]*Func
}

// NewMachine prepares a machine for the program over the context. The
// simulated stack and global segment are mapped into the context's DRAM.
func NewMachine(prog *Program, ctx *rt.Context) (*Machine, error) {
	if err := ctx.AS.Map(stackBase, stackSize, "minc-stack"); err != nil {
		return nil, err
	}
	gsize := (prog.GlobalSize + 4095) &^ 4095
	if gsize == 0 {
		gsize = 4096
	}
	if err := ctx.AS.Map(globalBase, uint64(gsize), "minc-globals"); err != nil {
		return nil, err
	}
	if err := ctx.AS.Map(textBase, 4096, "minc-text"); err != nil {
		return nil, err
	}
	m := &Machine{
		ctx:        ctx,
		prog:       prog,
		sites:      make([]*rt.Site, prog.exprCount+1),
		sp:         stackBase,
		allocSize:  make(map[uint64]uint64),
		funcAddr:   make(map[string]uint64),
		funcByAddr: make(map[uint64]*Func),
	}
	// Deterministic function addresses, ordered by name.
	names := make([]string, 0, len(prog.Funcs))
	for name := range prog.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		addr := textBase + uint64(i+1)*textStride
		m.funcAddr[name] = addr
		m.funcByAddr[addr] = prog.Funcs[name]
	}
	return m, nil
}

// Context returns the underlying runtime context (for statistics).
func (m *Machine) Context() *rt.Context { return m.ctx }

// site returns the rt.Site for an expression node, honoring the inference
// pass's check-elimination decision.
func (m *Machine) site(info *ExprInfo) *rt.Site {
	if m.sites[info.ID] == nil {
		m.sites[info.ID] = rt.NewSite(fmt.Sprintf("minc.%d", info.ID), !info.NeedsCheck)
	}
	return m.sites[info.ID]
}

// Run executes main and returns its result.
func (m *Machine) Run() (RunResult, error) {
	main := m.prog.Funcs["main"]
	v, err := m.call(main, nil)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{Exit: int64(v), Output: m.output}, nil
}

// control models break/continue/return unwinding.
type control int

const (
	ctrlNone control = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// frame is one activation record; locals live in simulated stack memory.
type frame struct {
	base core.Ptr // frame base address (DRAM)
	fn   *Func
}

func (m *Machine) call(fn *Func, args []uint64) (uint64, error) {
	if m.depth++; m.depth > maxCallDepth {
		return 0, ErrStackDepth
	}
	defer func() { m.depth-- }()

	size := uint64(fn.FrameSize)
	if size == 0 {
		size = 8
	}
	if m.sp+size > stackBase+stackSize {
		return 0, ErrStackDepth
	}
	f := &frame{base: core.FromVA(m.sp), fn: fn}
	m.sp += size
	defer func() { m.sp -= size }()

	// Spill arguments into parameter slots.
	for i := range fn.Params {
		sym := fn.Locals[i]
		m.storeVar(f, sym, siteForVar, args[i])
	}

	ctrl, ret, err := m.execStmt(f, fn.Body)
	if err != nil {
		return 0, err
	}
	if ctrl == ctrlReturn {
		return ret, nil
	}
	if fn.Ret.Kind != TypeVoid && fn.Name != "main" {
		return 0, fmt.Errorf("%w: %s", ErrNoReturn, fn.Name)
	}
	return 0, nil
}

// siteForVar is the shared inferred site for frame-slot traffic: the
// compiler statically knows the stack and globals are DRAM.
var siteForVar = rt.NewSite("minc.frame", true)

func (m *Machine) varLoc(f *frame, sym *Symbol) (core.Ptr, int64) {
	if sym.Global {
		return core.FromVA(globalBase), sym.Offset
	}
	return f.base, sym.Offset
}

func (m *Machine) loadVar(f *frame, sym *Symbol, site *rt.Site) uint64 {
	base, off := m.varLoc(f, sym)
	if sym.Ty.IsPtr() {
		return uint64(m.ctx.LoadPtr(site, base, off))
	}
	return m.ctx.LoadWord(site, base, off)
}

func (m *Machine) storeVar(f *frame, sym *Symbol, site *rt.Site, v uint64) {
	base, off := m.varLoc(f, sym)
	if sym.Ty.IsPtr() {
		m.ctx.StorePtr(site, base, off, core.Ptr(v))
	} else {
		m.ctx.StoreWord(site, base, off, v)
	}
}

func (m *Machine) fuel() error {
	m.steps++
	if m.steps > maxSteps {
		return ErrFuel
	}
	return nil
}

func (m *Machine) execStmt(f *frame, s Stmt) (control, uint64, error) {
	if err := m.fuel(); err != nil {
		return ctrlNone, 0, err
	}
	switch st := s.(type) {
	case *DeclStmt:
		if st.Init != nil {
			v, err := m.eval(f, st.Init)
			if err != nil {
				return ctrlNone, 0, err
			}
			m.storeVar(f, st.Sym, m.site(st.Init.exprBase()), v)
		} else {
			m.storeVar(f, st.Sym, siteForVar, 0)
		}
		return ctrlNone, 0, nil

	case *ExprStmt:
		_, err := m.eval(f, st.E)
		return ctrlNone, 0, err

	case *IfStmt:
		taken, err := m.evalCond(f, st.Cond)
		if err != nil {
			return ctrlNone, 0, err
		}
		if taken {
			return m.execStmt(f, st.Then)
		}
		if st.Else != nil {
			return m.execStmt(f, st.Else)
		}
		return ctrlNone, 0, nil

	case *WhileStmt:
		for {
			taken, err := m.evalCond(f, st.Cond)
			if err != nil {
				return ctrlNone, 0, err
			}
			if !taken {
				return ctrlNone, 0, nil
			}
			ctrl, v, err := m.execStmt(f, st.Body)
			if err != nil {
				return ctrlNone, 0, err
			}
			switch ctrl {
			case ctrlBreak:
				return ctrlNone, 0, nil
			case ctrlReturn:
				return ctrl, v, nil
			}
		}

	case *DoWhileStmt:
		for {
			ctrl, v, err := m.execStmt(f, st.Body)
			if err != nil {
				return ctrlNone, 0, err
			}
			switch ctrl {
			case ctrlBreak:
				return ctrlNone, 0, nil
			case ctrlReturn:
				return ctrl, v, nil
			}
			taken, err := m.evalCond(f, st.Cond)
			if err != nil {
				return ctrlNone, 0, err
			}
			if !taken {
				return ctrlNone, 0, nil
			}
		}

	case *ForStmt:
		if st.Init != nil {
			if _, _, err := m.execStmt(f, st.Init); err != nil {
				return ctrlNone, 0, err
			}
		}
		for {
			if st.Cond != nil {
				taken, err := m.evalCond(f, st.Cond)
				if err != nil {
					return ctrlNone, 0, err
				}
				if !taken {
					return ctrlNone, 0, nil
				}
			}
			ctrl, v, err := m.execStmt(f, st.Body)
			if err != nil {
				return ctrlNone, 0, err
			}
			if ctrl == ctrlBreak {
				return ctrlNone, 0, nil
			}
			if ctrl == ctrlReturn {
				return ctrl, v, nil
			}
			if st.Post != nil {
				if _, err := m.eval(f, st.Post); err != nil {
					return ctrlNone, 0, err
				}
			}
		}

	case *ReturnStmt:
		if st.E == nil {
			return ctrlReturn, 0, nil
		}
		v, err := m.eval(f, st.E)
		return ctrlReturn, v, err

	case *Block:
		for _, inner := range st.Stmts {
			ctrl, v, err := m.execStmt(f, inner)
			if err != nil {
				return ctrlNone, 0, err
			}
			if ctrl != ctrlNone {
				return ctrl, v, nil
			}
		}
		return ctrlNone, 0, nil

	case *SwitchStmt:
		v, err := m.eval(f, st.Cond)
		if err != nil {
			return ctrlNone, 0, err
		}
		condSite := m.site(st.Cond.exprBase())
		match := -1
		defaultIdx := -1
		for i, cs := range st.Cases {
			if cs.Default {
				defaultIdx = i
				continue
			}
			hit := false
			for _, label := range cs.Vals {
				if int64(v) == label {
					hit = true
				}
			}
			// Each evaluated case label is a compare-and-branch.
			m.ctx.Exec(1)
			m.ctx.Branch(condSite, hit)
			if hit && match < 0 {
				match = i
			}
			if match >= 0 {
				break
			}
		}
		if match < 0 {
			match = defaultIdx
		}
		if match < 0 {
			return ctrlNone, 0, nil
		}
		// Fall through subsequent arms until a break.
		for i := match; i < len(st.Cases); i++ {
			for _, inner := range st.Cases[i].Body {
				ctrl, rv, err := m.execStmt(f, inner)
				if err != nil {
					return ctrlNone, 0, err
				}
				switch ctrl {
				case ctrlBreak:
					return ctrlNone, 0, nil
				case ctrlReturn, ctrlContinue:
					return ctrl, rv, nil
				}
			}
		}
		return ctrlNone, 0, nil

	case *BreakStmt:
		return ctrlBreak, 0, nil
	case *ContinueStmt:
		return ctrlContinue, 0, nil
	}
	return ctrlNone, 0, fmt.Errorf("minc: unknown statement %T", s)
}

// evalCond evaluates a condition and replays its branch.
func (m *Machine) evalCond(f *frame, cond Expr) (bool, error) {
	v, err := m.eval(f, cond)
	if err != nil {
		return false, err
	}
	taken := v != 0
	m.ctx.Branch(m.site(cond.exprBase()), taken)
	return taken, nil
}

// location is a resolved lvalue: a base reference, byte offset, and the
// stored element type.
type location struct {
	base core.Ptr
	off  int64
	ty   *Type
	site *rt.Site
}

func (m *Machine) lvalue(f *frame, e Expr) (location, error) {
	switch ex := e.(type) {
	case *VarRef:
		base, off := m.varLoc(f, ex.Sym)
		return location{base: base, off: off, ty: ex.Sym.Ty, site: siteForVar}, nil

	case *Unary:
		if ex.Op != "*" {
			break
		}
		p, err := m.eval(f, ex.X)
		if err != nil {
			return location{}, err
		}
		return location{base: core.Ptr(p), off: 0, ty: ex.Ty, site: m.site(&ex.ExprInfo)}, nil

	case *Index:
		if xt := ex.X.exprBase().Ty; xt != nil && xt.IsArray() {
			// Indexing an array lvalue: no pointer load, just offset
			// arithmetic within the enclosing storage.
			loc, err := m.lvalue(f, ex.X)
			if err != nil {
				return location{}, err
			}
			i, err := m.eval(f, ex.I)
			if err != nil {
				return location{}, err
			}
			loc.off += int64(i) * ex.Ty.Size()
			loc.ty = ex.Ty
			loc.site = m.site(&ex.ExprInfo)
			return loc, nil
		}
		p, err := m.eval(f, ex.X)
		if err != nil {
			return location{}, err
		}
		i, err := m.eval(f, ex.I)
		if err != nil {
			return location{}, err
		}
		return location{
			base: core.Ptr(p),
			off:  int64(i) * ex.Ty.Size(),
			ty:   ex.Ty,
			site: m.site(&ex.ExprInfo),
		}, nil

	case *Member:
		if ex.Arrow {
			p, err := m.eval(f, ex.X)
			if err != nil {
				return location{}, err
			}
			return location{base: core.Ptr(p), off: ex.Field.Offset, ty: ex.Field.Type, site: m.site(&ex.ExprInfo)}, nil
		}
		// x.f: x must itself be an lvalue.
		loc, err := m.lvalue(f, ex.X)
		if err != nil {
			return location{}, err
		}
		loc.off += ex.Field.Offset
		loc.ty = ex.Field.Type
		return loc, nil
	}
	return location{}, fmt.Errorf("minc: not an lvalue: %T", e)
}

func (m *Machine) loadLoc(loc location) uint64 {
	if loc.ty.IsPtr() {
		return uint64(m.ctx.LoadPtr(loc.site, loc.base, loc.off))
	}
	return m.ctx.LoadWord(loc.site, loc.base, loc.off)
}

func (m *Machine) storeLoc(loc location, v uint64) {
	if loc.ty.IsPtr() {
		m.ctx.StorePtr(loc.site, loc.base, loc.off, core.Ptr(v))
	} else {
		m.ctx.StoreWord(loc.site, loc.base, loc.off, v)
	}
}

func (m *Machine) eval(f *frame, e Expr) (uint64, error) {
	if err := m.fuel(); err != nil {
		return 0, err
	}
	switch ex := e.(type) {
	case *NumLit:
		m.ctx.Exec(1)
		return uint64(ex.V), nil

	case *NullLit:
		m.ctx.Exec(1)
		return 0, nil

	case *VarRef:
		if ex.IsFunc {
			m.ctx.Exec(1)
			return m.funcAddr[ex.Name], nil
		}
		if ex.Sym.Ty.IsArray() {
			// Array-to-pointer decay: the value is the storage address.
			base, off := m.varLoc(f, ex.Sym)
			return uint64(m.ctx.PtrAdd(base, off, 1)), nil
		}
		return m.loadVar(f, ex.Sym, siteForVar), nil

	case *Unary:
		return m.evalUnary(f, ex)

	case *PostIncDec:
		loc, err := m.lvalue(f, ex.X)
		if err != nil {
			return 0, err
		}
		old := m.loadLoc(loc)
		var next uint64
		if ex.Ty.IsPtr() {
			delta := int64(1)
			if ex.Op == "--" {
				delta = -1
			}
			next = uint64(m.ctx.PtrAdd(core.Ptr(old), delta, ex.Ty.Elem.Size()))
		} else {
			m.ctx.Exec(1)
			if ex.Op == "++" {
				next = old + 1
			} else {
				next = old - 1
			}
		}
		m.storeLoc(loc, next)
		return old, nil

	case *Binary:
		return m.evalBinary(f, ex)

	case *Assign:
		return m.evalAssign(f, ex)

	case *Cond:
		taken, err := m.evalCond(f, ex.C)
		if err != nil {
			return 0, err
		}
		if taken {
			return m.eval(f, ex.T)
		}
		return m.eval(f, ex.F)

	case *Call:
		return m.evalCall(f, ex)

	case *Index:
		loc, err := m.lvalue(f, ex)
		if err != nil {
			return 0, err
		}
		if loc.ty.IsArray() {
			return uint64(m.ctx.PtrAdd(loc.base, loc.off, 1)), nil
		}
		return m.loadLoc(loc), nil

	case *Member:
		loc, err := m.lvalue(f, ex)
		if err != nil {
			return 0, err
		}
		if loc.ty.IsArray() {
			return uint64(m.ctx.PtrAdd(loc.base, loc.off, 1)), nil
		}
		return m.loadLoc(loc), nil

	case *Cast:
		v, err := m.eval(f, ex.X)
		if err != nil {
			return 0, err
		}
		from := ex.X.exprBase().Ty
		if ex.To.IsInteger() && from.IsPtr() {
			// (I)p: a relative pointer converts to its virtual address.
			return m.ctx.PtrToInt(m.site(&ex.ExprInfo), core.Ptr(v)), nil
		}
		m.ctx.Exec(1)
		return v, nil

	case *SizeofType:
		m.ctx.Exec(1)
		if ex.Of != nil {
			return uint64(ex.Of.exprBase().Ty.Size()), nil
		}
		return uint64(ex.T.Size()), nil
	}
	return 0, fmt.Errorf("minc: unknown expression %T", e)
}

func (m *Machine) evalUnary(f *frame, ex *Unary) (uint64, error) {
	switch ex.Op {
	case "*":
		loc, err := m.lvalue(f, ex)
		if err != nil {
			return 0, err
		}
		return m.loadLoc(loc), nil

	case "&":
		loc, err := m.lvalue(f, ex.X)
		if err != nil {
			return 0, err
		}
		// The address keeps the base's representation (additive rows).
		return uint64(m.ctx.PtrAdd(loc.base, loc.off, 1)), nil

	case "-":
		v, err := m.eval(f, ex.X)
		if err != nil {
			return 0, err
		}
		m.ctx.Exec(1)
		return uint64(-int64(v)), nil

	case "~":
		v, err := m.eval(f, ex.X)
		if err != nil {
			return 0, err
		}
		m.ctx.Exec(1)
		return ^v, nil

	case "!":
		v, err := m.eval(f, ex.X)
		if err != nil {
			return 0, err
		}
		m.ctx.Exec(1)
		if v == 0 {
			return 1, nil
		}
		return 0, nil

	case "++", "--":
		loc, err := m.lvalue(f, ex.X)
		if err != nil {
			return 0, err
		}
		old := m.loadLoc(loc)
		var next uint64
		if ex.Ty.IsPtr() {
			delta := int64(1)
			if ex.Op == "--" {
				delta = -1
			}
			next = uint64(m.ctx.PtrAdd(core.Ptr(old), delta, ex.Ty.Elem.Size()))
		} else {
			m.ctx.Exec(1)
			if ex.Op == "++" {
				next = old + 1
			} else {
				next = old - 1
			}
		}
		m.storeLoc(loc, next)
		return next, nil
	}
	return 0, fmt.Errorf("minc: unknown unary %q", ex.Op)
}

func (m *Machine) evalBinary(f *frame, ex *Binary) (uint64, error) {
	// Short-circuit logic first.
	if ex.Op == "&&" || ex.Op == "||" {
		l, err := m.evalCond(f, ex.X)
		if err != nil {
			return 0, err
		}
		if ex.Op == "&&" && !l {
			return 0, nil
		}
		if ex.Op == "||" && l {
			return 1, nil
		}
		r, err := m.evalCond(f, ex.Y)
		if err != nil {
			return 0, err
		}
		if r {
			return 1, nil
		}
		return 0, nil
	}

	x, err := m.eval(f, ex.X)
	if err != nil {
		return 0, err
	}
	y, err := m.eval(f, ex.Y)
	if err != nil {
		return 0, err
	}
	xt, yt := ex.X.exprBase().Ty.Decayed(), ex.Y.exprBase().Ty.Decayed()
	site := m.site(&ex.ExprInfo)

	// Pointer operations go through the reference semantics.
	if xt.IsPtr() || yt.IsPtr() {
		switch ex.Op {
		case "+":
			if xt.IsPtr() {
				return uint64(m.ctx.PtrAdd(core.Ptr(x), int64(y), xt.Elem.Size())), nil
			}
			return uint64(m.ctx.PtrAdd(core.Ptr(y), int64(x), yt.Elem.Size())), nil
		case "-":
			if xt.IsPtr() && yt.IsPtr() {
				return uint64(m.ctx.PtrDiff(site, core.Ptr(x), core.Ptr(y), xt.Elem.Size())), nil
			}
			return uint64(m.ctx.PtrAdd(core.Ptr(x), -int64(y), xt.Elem.Size())), nil
		case "==", "!=":
			eq := m.ctx.PtrEq(site, core.Ptr(x), core.Ptr(y))
			if ex.Op == "!=" {
				eq = !eq
			}
			return boolToWord(eq), nil
		case "<", ">", "<=", ">=":
			var r bool
			switch ex.Op {
			case "<":
				r = m.ctx.PtrLess(site, core.Ptr(x), core.Ptr(y))
			case ">":
				r = m.ctx.PtrLess(site, core.Ptr(y), core.Ptr(x))
			case "<=":
				r = !m.ctx.PtrLess(site, core.Ptr(y), core.Ptr(x))
			case ">=":
				r = !m.ctx.PtrLess(site, core.Ptr(x), core.Ptr(y))
			}
			return boolToWord(r), nil
		}
	}

	m.ctx.Exec(1)
	xi, yi := int64(x), int64(y)
	switch ex.Op {
	case "+":
		return uint64(xi + yi), nil
	case "-":
		return uint64(xi - yi), nil
	case "*":
		return uint64(xi * yi), nil
	case "/":
		if yi == 0 {
			return 0, ErrDivZero
		}
		return uint64(xi / yi), nil
	case "%":
		if yi == 0 {
			return 0, ErrDivZero
		}
		return uint64(xi % yi), nil
	case "&":
		return x & y, nil
	case "|":
		return x | y, nil
	case "^":
		return x ^ y, nil
	case "<<":
		return x << (y & 63), nil
	case ">>":
		return uint64(xi >> (y & 63)), nil
	case "==":
		return boolToWord(x == y), nil
	case "!=":
		return boolToWord(x != y), nil
	case "<":
		return boolToWord(xi < yi), nil
	case ">":
		return boolToWord(xi > yi), nil
	case "<=":
		return boolToWord(xi <= yi), nil
	case ">=":
		return boolToWord(xi >= yi), nil
	}
	return 0, fmt.Errorf("minc: unknown binary %q", ex.Op)
}

func (m *Machine) evalAssign(f *frame, ex *Assign) (uint64, error) {
	loc, err := m.lvalue(f, ex.LHS)
	if err != nil {
		return 0, err
	}
	rhs, err := m.eval(f, ex.RHS)
	if err != nil {
		return 0, err
	}

	if ex.Op == "=" {
		if loc.ty.Kind == TypeStruct {
			return rhs, fmt.Errorf("minc: struct assignment is not supported")
		}
		m.storeLoc(location{loc.base, loc.off, loc.ty, m.site(&ex.ExprInfo)}, rhs)
		return rhs, nil
	}

	// Compound assignment: load, combine, store.
	old := m.loadLoc(loc)
	var v uint64
	if loc.ty.IsPtr() {
		switch ex.Op {
		case "+=":
			v = uint64(m.ctx.PtrAdd(core.Ptr(old), int64(rhs), loc.ty.Elem.Size()))
		case "-=":
			v = uint64(m.ctx.PtrAdd(core.Ptr(old), -int64(rhs), loc.ty.Elem.Size()))
		default:
			return 0, fmt.Errorf("minc: %s on pointer", ex.Op)
		}
	} else {
		m.ctx.Exec(1)
		oi, ri := int64(old), int64(rhs)
		switch ex.Op {
		case "+=":
			v = uint64(oi + ri)
		case "-=":
			v = uint64(oi - ri)
		case "*=":
			v = uint64(oi * ri)
		case "/=":
			if ri == 0 {
				return 0, ErrDivZero
			}
			v = uint64(oi / ri)
		case "%=":
			if ri == 0 {
				return 0, ErrDivZero
			}
			v = uint64(oi % ri)
		case "&=":
			v = old & rhs
		case "|=":
			v = old | rhs
		case "^=":
			v = old ^ rhs
		default:
			return 0, fmt.Errorf("minc: unknown compound op %q", ex.Op)
		}
	}
	m.storeLoc(location{loc.base, loc.off, loc.ty, m.site(&ex.ExprInfo)}, v)
	return v, nil
}

func (m *Machine) evalCall(f *frame, ex *Call) (uint64, error) {
	args := make([]uint64, len(ex.Args))
	for i, a := range ex.Args {
		v, err := m.eval(f, a)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}

	switch ex.Name {
	case "malloc":
		p := m.ctx.Malloc(args[0])
		m.allocSize[m.objKey(p)] = args[0]
		return uint64(p), nil
	case "pmalloc":
		p := m.ctx.Pmalloc(args[0])
		m.allocSize[m.objKey(p)] = args[0]
		return uint64(p), nil
	case "free":
		p := core.Ptr(args[0])
		if p.IsNull() {
			return 0, nil
		}
		key := m.objKey(p)
		size := m.allocSize[key]
		delete(m.allocSize, key)
		m.ctx.FreeVolatile(p, size)
		return 0, nil
	case "pfree":
		p := core.Ptr(args[0])
		if p.IsNull() {
			return 0, nil
		}
		key := m.objKey(p)
		size := m.allocSize[key]
		delete(m.allocSize, key)
		m.ctx.Pfree(p, size)
		return 0, nil
	case "print":
		m.ctx.Exec(5)
		m.output = append(m.output, int64(args[0]))
		return 0, nil
	}

	if ex.Sym != nil {
		// Indirect call: resolve the target's virtual address, applying
		// the pxr(argument list) conversion if the stored form is
		// relative.
		raw := m.loadVar(f, ex.Sym, siteForVar)
		target := m.ctx.PtrToInt(m.site(&ex.ExprInfo), core.Ptr(raw))
		fn, ok := m.funcByAddr[target]
		if !ok {
			return 0, fmt.Errorf("minc: indirect call through %#x targets no function", target)
		}
		m.ctx.Exec(3) // indirect call/return overhead
		return m.call(fn, args)
	}
	fn := m.prog.Funcs[ex.Name]
	m.ctx.Exec(2) // call/return overhead
	return m.call(fn, args)
}

// objKey normalizes a reference so an object is tracked under one key no
// matter which form the program passes to free.
func (m *Machine) objKey(p core.Ptr) uint64 {
	if p.IsRelative() {
		return uint64(p)
	}
	if rel, ok := m.ctx.Reg.VA2RA(p.VA()); ok {
		return uint64(rel)
	}
	return uint64(p)
}

func boolToWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
