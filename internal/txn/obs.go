package txn

import "nvref/internal/obs"

// RegisterMetrics binds the manager's transaction counters into reg as
// collector series, read live at snapshot time.
func (m *Manager) RegisterMetrics(reg *obs.Registry) {
	ctr := func(name, help string, fn func() uint64) { reg.CounterFunc(name, help, fn) }
	ctr("txn_begins_total", "transactions opened", func() uint64 { return m.Stats.Begins })
	ctr("txn_commits_total", "transactions committed", func() uint64 { return m.Stats.Commits })
	ctr("txn_aborts_total", "transactions aborted", func() uint64 { return m.Stats.Aborts })
	ctr("txn_rollbacks_total", "rollback passes (aborts plus crash recoveries)", func() uint64 { return m.Stats.Rollbacks })
	ctr("txn_words_logged_total", "undo-log entries written", func() uint64 { return m.Stats.WordsLogged })
	ctr("txn_log_bytes_total", "undo-log bytes written", func() uint64 { return m.Stats.LogBytes() })
	reg.GaugeFunc("txn_active", "1 while a transaction is open", func() int64 {
		if m.active {
			return 1
		}
		return 0
	})
}
