package txn

import (
	"errors"
	"testing"

	"nvref/internal/mem"
	"nvref/internal/pmem"
)

func setup(t *testing.T) (*pmem.Registry, *pmem.Pool, *mem.AddressSpace, *pmem.MemStore) {
	t.Helper()
	store := pmem.NewMemStore()
	as := mem.New()
	reg := pmem.NewRegistry(as, store)
	pool, err := reg.Create("tx", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return reg, pool, as, store
}

func TestCommitKeepsWrites(t *testing.T) {
	_, pool, as, _ := setup(t)
	m, _, err := Install(pool, as, 16)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := pool.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(obj, 111); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(obj+8, 222); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _ := as.Load64(pool.Base() + obj)
	w, _ := as.Load64(pool.Base() + obj + 8)
	if v != 111 || w != 222 {
		t.Errorf("committed values = %d, %d", v, w)
	}
}

func TestAbortRollsBack(t *testing.T) {
	_, pool, as, _ := setup(t)
	m, _, err := Install(pool, as, 16)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := pool.Alloc(8)
	if err := as.Store64(pool.Base()+obj, 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(obj, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.Load64(pool.Base() + obj); v != 99 {
		t.Fatal("write not visible inside transaction")
	}
	if err := m.Abort(); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.Load64(pool.Base() + obj); v != 7 {
		t.Errorf("after abort value = %d, want 7", v)
	}
}

func TestCrashRecoveryAcrossRuns(t *testing.T) {
	store := pmem.NewMemStore()
	as := mem.New()
	reg := pmem.NewRegistry(as, store)
	pool, err := reg.Create("tx", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	m, logOff, err := Install(pool, as, 16)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := pool.Alloc(8)
	if err := as.Store64(pool.Base()+obj, 42); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(obj, 1000); err != nil {
		t.Fatal(err)
	}
	// "Crash": checkpoint mid-transaction, never commit.
	if err := reg.Checkpoint(pool); err != nil {
		t.Fatal(err)
	}

	// New run: reopen and recover.
	as2 := mem.New()
	reg2 := pmem.NewRegistry(as2, store, pmem.WithMapBase(mem.NVMBase+1<<30))
	pool2, err := reg2.Open("tx")
	if err != nil {
		t.Fatal(err)
	}
	m2, recovered, err := Attach(pool2, as2, logOff, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Error("crashed transaction not detected")
	}
	if v, _ := as2.Load64(pool2.Base() + obj); v != 42 {
		t.Errorf("after recovery value = %d, want 42 (pre-transaction)", v)
	}
	if m2.Active() {
		t.Error("manager active after recovery")
	}
}

func TestCleanReopenNoRollback(t *testing.T) {
	store := pmem.NewMemStore()
	as := mem.New()
	reg := pmem.NewRegistry(as, store)
	pool, _ := reg.Create("tx", 1<<20)
	m, logOff, err := Install(pool, as, 8)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := pool.Alloc(8)
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(obj, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Checkpoint(pool); err != nil {
		t.Fatal(err)
	}

	as2 := mem.New()
	reg2 := pmem.NewRegistry(as2, store)
	pool2, _ := reg2.Open("tx")
	_, recovered, err := Attach(pool2, as2, logOff, 8)
	if err != nil {
		t.Fatal(err)
	}
	if recovered {
		t.Error("clean log triggered rollback")
	}
	if v, _ := as2.Load64(pool2.Base() + obj); v != 5 {
		t.Errorf("committed value lost: %d", v)
	}
}

func TestErrors(t *testing.T) {
	_, pool, as, _ := setup(t)
	m, _, err := Install(pool, as, 2)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := pool.Alloc(64)
	if err := m.WriteWord(obj, 1); !errors.Is(err, ErrNotActive) {
		t.Errorf("write outside tx: %v", err)
	}
	if err := m.Commit(); !errors.Is(err, ErrNotActive) {
		t.Errorf("commit outside tx: %v", err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); !errors.Is(err, ErrActive) {
		t.Errorf("nested begin: %v", err)
	}
	// Log capacity is 2.
	if err := m.WriteWord(obj, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(obj+8, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(obj+16, 3); !errors.Is(err, ErrLogFull) {
		t.Errorf("overfull log: %v", err)
	}
	if err := m.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(); !errors.Is(err, ErrNotActive) {
		t.Errorf("double abort: %v", err)
	}
	// Attach to garbage offset fails.
	if _, _, err := Attach(pool, as, obj, 2); !errors.Is(err, ErrNoLog) {
		t.Errorf("attach to non-log: %v", err)
	}
}

func TestAbortRestoresMultipleWritesInOrder(t *testing.T) {
	_, pool, as, _ := setup(t)
	m, _, err := Install(pool, as, 16)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := pool.Alloc(8)
	if err := as.Store64(pool.Base()+obj, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	// Overwrite the same word twice; rollback must restore the original,
	// not the intermediate.
	if err := m.WriteWord(obj, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(obj, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.Load64(pool.Base() + obj); v != 1 {
		t.Errorf("value after abort = %d, want 1", v)
	}
}
