// Package txn provides undo-log persistent transactions over a pool — the
// crash-consistency mechanism the paper's Section VI assumes the
// application layer supplies around library calls. A transaction logs the
// prior value of every word it overwrites into a log region inside the
// pool; commit truncates the log, abort (or crash recovery on reopen)
// rolls the words back. Because the log lives in pool memory and records
// pool offsets, it survives remapping like everything else.
package txn

import (
	"errors"
	"fmt"

	"nvref/internal/fault"
	"nvref/internal/mem"
	"nvref/internal/pmem"
)

// Log layout, at a pool offset the caller reserves via Install:
//
//	+0  magic
//	+8  state (0 idle, 1 active)
//	+16 entry count
//	+24 entries: {pool offset, old value} pairs
const (
	logMagic   = uint64(0x4E56544F4C4F4731) // "NVTXLOG1"
	offLMagic  = 0
	offLState  = 8
	offLCount  = 16
	offLEntry0 = 24
	entrySize  = 16

	stateIdle   = 0
	stateActive = 1
)

// Errors.
var (
	ErrActive    = errors.New("txn: a transaction is already active")
	ErrNotActive = errors.New("txn: no active transaction")
	ErrLogFull   = errors.New("txn: undo log full")
	ErrNoLog     = errors.New("txn: pool has no installed log")
)

// Stats counts transaction outcomes and undo-log volume.
type Stats struct {
	Begins      uint64
	Commits     uint64
	Aborts      uint64
	Rollbacks   uint64 // rollback passes run (aborts plus crash recoveries)
	WordsLogged uint64 // undo entries written
}

// LogBytes returns the undo-log bytes written (entries are 16 bytes).
func (s Stats) LogBytes() uint64 { return s.WordsLogged * entrySize }

// Manager runs transactions against one pool.
type Manager struct {
	pool    *pmem.Pool
	as      *mem.AddressSpace
	logOff  uint64
	maxEnts uint64
	active  bool

	Stats Stats
}

// Install allocates an undo log with capacity for maxEntries word writes
// inside the pool and returns a Manager. Call once per pool lifetime; the
// log offset must be stored somewhere durable (for example next to the
// root) and reattached with Attach in later runs.
func Install(pool *pmem.Pool, as *mem.AddressSpace, maxEntries uint64) (*Manager, uint64, error) {
	size := offLEntry0 + maxEntries*entrySize
	off, err := pool.Alloc(size)
	if err != nil {
		return nil, 0, err
	}
	m := &Manager{pool: pool, as: as, logOff: off, maxEnts: maxEntries}
	m.store(offLMagic, logMagic)
	m.store(offLState, stateIdle)
	m.store(offLCount, 0)
	return m, off, nil
}

// Attach reconnects to a previously installed log (for example after the
// pool was reopened in a new run) and performs crash recovery: if the log
// is active, the transaction in flight when the crash happened is rolled
// back. It reports whether a rollback occurred.
func Attach(pool *pmem.Pool, as *mem.AddressSpace, logOff uint64, maxEntries uint64) (*Manager, bool, error) {
	m := &Manager{pool: pool, as: as, logOff: logOff, maxEnts: maxEntries}
	if m.load(offLMagic) != logMagic {
		return nil, false, fmt.Errorf("%w: bad magic at offset %#x", ErrNoLog, logOff)
	}
	if m.load(offLState) == stateActive {
		m.rollback()
		return m, true, nil
	}
	return m, false, nil
}

func (m *Manager) addr(rel uint64) uint64 { return m.pool.Base() + m.logOff + rel }

func (m *Manager) store(rel uint64, v uint64) {
	if err := m.as.Store64(m.addr(rel), v); err != nil {
		panic(fmt.Sprintf("txn: log store failed: %v", err))
	}
}

func (m *Manager) load(rel uint64) uint64 {
	v, err := m.as.Load64(m.addr(rel))
	if err != nil {
		panic(fmt.Sprintf("txn: log load failed: %v", err))
	}
	return v
}

// Begin opens a transaction. The fault.Crash calls (here and below) mark
// the log's persist points for the crash-consistency harness: at every one
// of them, a crash followed by Attach recovery leaves the pool with either
// the complete transaction or none of it.
func (m *Manager) Begin() error {
	if m.active {
		return ErrActive
	}
	m.store(offLCount, 0)
	fault.Crash("txn.begin.count-reset")
	m.store(offLState, stateActive)
	fault.Crash("txn.begin.armed")
	m.active = true
	m.Stats.Begins++
	return nil
}

// WriteWord transactionally writes a 64-bit word at a pool offset,
// logging the old value first (undo logging: log before data).
func (m *Manager) WriteWord(poolOff uint64, v uint64) error {
	if !m.active {
		return ErrNotActive
	}
	count := m.load(offLCount)
	if count >= m.maxEnts {
		return ErrLogFull
	}
	old, err := m.as.Load64(m.pool.Base() + poolOff)
	if err != nil {
		return err
	}
	ent := offLEntry0 + count*entrySize
	m.store(ent, poolOff)
	fault.Crash("txn.write.entry-offset")
	m.store(ent+8, old)
	fault.Crash("txn.write.entry-old")
	m.store(offLCount, count+1) // log persisted before the data write
	fault.Crash("txn.write.published")
	m.Stats.WordsLogged++
	if err := m.as.Store64(m.pool.Base()+poolOff, v); err != nil {
		return err
	}
	fault.Crash("txn.write.data")
	return nil
}

// Commit makes the transaction's writes permanent.
func (m *Manager) Commit() error {
	if !m.active {
		return ErrNotActive
	}
	m.store(offLState, stateIdle) // the commit marker: rollback disabled
	fault.Crash("txn.commit.marker")
	m.store(offLCount, 0)
	fault.Crash("txn.commit.done")
	m.active = false
	m.Stats.Commits++
	return nil
}

// Abort rolls back every write of the active transaction.
func (m *Manager) Abort() error {
	if !m.active {
		return ErrNotActive
	}
	m.rollback()
	m.active = false
	m.Stats.Aborts++
	return nil
}

// rollback undoes logged writes newest-first and idles the log. A crash
// mid-rollback (during Abort or during recovery itself) leaves the log
// active with its entries intact, so a later recovery re-runs the whole
// rollback; re-applying old values is idempotent.
func (m *Manager) rollback() {
	m.Stats.Rollbacks++
	count := m.load(offLCount)
	for i := count; i > 0; i-- {
		ent := offLEntry0 + (i-1)*entrySize
		off := m.load(ent)
		old := m.load(ent + 8)
		if err := m.as.Store64(m.pool.Base()+off, old); err != nil {
			panic(fmt.Sprintf("txn: rollback store failed: %v", err))
		}
		fault.Crash("txn.recover.undo-entry")
	}
	m.store(offLState, stateIdle)
	fault.Crash("txn.recover.marker")
	m.store(offLCount, 0)
	fault.Crash("txn.recover.done")
}

// Active reports whether a transaction is open.
func (m *Manager) Active() bool { return m.active }

// LogOffset returns the pool offset of the log (to persist near the root).
func (m *Manager) LogOffset() uint64 { return m.logOff }
