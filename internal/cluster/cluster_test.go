package cluster

import (
	"errors"
	"testing"

	"nvref/internal/pmem"
)

// TestNewDeals: the bootstrap map covers every slot, deals them evenly,
// and is identical for every node computing it from the same peer list.
func TestNewDeals(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1"}
	m, err := New(8, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 1 {
		t.Fatalf("bootstrap epoch = %d", m.Epoch)
	}
	total := 0
	for _, n := range nodes {
		owned := m.Owned(n)
		if owned < 2 || owned > 3 {
			t.Fatalf("node %s owns %d of 8 slots", n, owned)
		}
		total += owned
	}
	if total != 8 {
		t.Fatalf("owned total = %d", total)
	}
	m2, err := New(8, nodes)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 8; slot++ {
		if m.OwnerOf(slot) != m2.OwnerOf(slot) {
			t.Fatalf("slot %d: %s vs %s", slot, m.OwnerOf(slot), m2.OwnerOf(slot))
		}
	}
}

// TestNewBounds: out-of-range shapes are refused.
func TestNewBounds(t *testing.T) {
	if _, err := New(0, []string{"a"}); err == nil {
		t.Error("0 slots accepted")
	}
	if _, err := New(MaxSlots+1, []string{"a"}); err == nil {
		t.Error("oversized slot count accepted")
	}
	if _, err := New(4, nil); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := New(4, []string{""}); err == nil {
		t.Error("empty address accepted")
	}
}

// TestWithOwnerEpochMonotonic: every ownership edit advances the epoch by
// exactly one and leaves the receiver untouched — the property the
// install-side "reject epoch <= current" check relies on.
func TestWithOwnerEpochMonotonic(t *testing.T) {
	m, err := New(4, []string{"a:1", "b:1"})
	if err != nil {
		t.Fatal(err)
	}
	cur := m
	for i := 0; i < 5; i++ {
		next, err := cur.WithOwner(i%4, "c:1")
		if err != nil {
			t.Fatal(err)
		}
		if next.Epoch != cur.Epoch+1 {
			t.Fatalf("edit %d: epoch %d after %d", i, next.Epoch, cur.Epoch)
		}
		if next.OwnerOf(i%4) != "c:1" {
			t.Fatalf("edit %d: owner %s", i, next.OwnerOf(i%4))
		}
		cur = next
	}
	if m.Epoch != 1 {
		t.Fatalf("original mutated to epoch %d", m.Epoch)
	}
	if m.NodeIndex("c:1") != -1 {
		t.Fatal("original grew a node")
	}
	// The joining node was appended exactly once.
	if n := len(cur.Nodes); n != 3 {
		t.Fatalf("node list grew to %d", n)
	}
	if _, err := cur.WithOwner(99, "c:1"); err == nil {
		t.Error("out-of-range slot accepted")
	}
}

// TestEncodeDecodeRoundTrip: the image is bijective over representative
// maps.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	m, err := New(64, []string{"127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"})
	if err != nil {
		t.Fatal(err)
	}
	m, err = m.WithOwner(5, "127.0.0.1:7004")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.Slots != m.Slots || len(got.Nodes) != len(m.Nodes) {
		t.Fatalf("round trip: %+v vs %+v", got, m)
	}
	for slot := 0; slot < m.Slots; slot++ {
		if got.OwnerOf(slot) != m.OwnerOf(slot) {
			t.Fatalf("slot %d: %s vs %s", slot, got.OwnerOf(slot), m.OwnerOf(slot))
		}
	}
}

// TestDecodeHardening: corrupt or hostile images are ErrBadMap, never a
// panic.
func TestDecodeHardening(t *testing.T) {
	m, _ := New(8, []string{"a:1", "b:1"})
	good := m.Encode()

	if _, err := Decode(nil); !errors.Is(err, ErrBadMap) {
		t.Errorf("nil: %v", err)
	}
	if _, err := Decode([]byte("NVCLMAP1")); !errors.Is(err, ErrBadMap) {
		t.Errorf("short: %v", err)
	}
	// Flip one byte anywhere: the CRC must catch it.
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	// Truncations must be refused.
	for n := 0; n < len(good); n++ {
		if _, err := Decode(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestRebalancePlan: a fourth node joining a 3-node map is planned to
// within one slot of its fair share, moving only what it must.
func TestRebalancePlan(t *testing.T) {
	m, err := New(12, []string{"a:1", "b:1", "c:1"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := RebalanceTarget(m, "d:1")
	if err != nil {
		t.Fatal(err)
	}
	if target.Owned("d:1") != 3 {
		t.Fatalf("joiner owns %d of 12 slots", target.Owned("d:1"))
	}
	for _, n := range []string{"a:1", "b:1", "c:1"} {
		if o := target.Owned(n); o != 3 {
			t.Fatalf("node %s owns %d after rebalance", n, o)
		}
	}
	moves := PlanMoves(m, target)
	if len(moves) != 3 {
		t.Fatalf("planned %d moves (%v), want 3", len(moves), moves)
	}
	for _, mv := range moves {
		if mv.To != "d:1" {
			t.Fatalf("move %+v not toward the joiner", mv)
		}
		if m.OwnerOf(mv.Slot) != mv.From {
			t.Fatalf("move %+v: current owner %s", mv, m.OwnerOf(mv.Slot))
		}
	}
	// A balanced map plans nothing.
	if again := mustTarget(t, target, "d:1"); len(PlanMoves(target, again)) != 0 {
		t.Error("balanced map planned moves")
	}
}

func mustTarget(t *testing.T, m *Map, addr string) *Map {
	t.Helper()
	target, err := RebalanceTarget(m, addr)
	if err != nil {
		t.Fatal(err)
	}
	return target
}

// TestSaveLoad: the persistent image round-trips through a pmem store,
// a missing image is (nil, nil), and a corrupted image is refused.
func TestSaveLoad(t *testing.T) {
	store := pmem.NewMemStore()
	if m, err := Load(store); err != nil || m != nil {
		t.Fatalf("empty store: %v, %v", m, err)
	}
	m, err := New(16, []string{"a:1", "b:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(store, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(store)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Epoch != m.Epoch || got.Slots != m.Slots {
		t.Fatalf("load: %+v", got)
	}
	// Overwrite with a later epoch; the newest image wins.
	m2, err := m.WithOwner(0, "c:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(store, m2); err != nil {
		t.Fatal(err)
	}
	got, err = Load(store)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m2.Epoch {
		t.Fatalf("reloaded epoch %d, want %d", got.Epoch, m2.Epoch)
	}
}
