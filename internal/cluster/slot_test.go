package cluster

import "testing"

// TestSlotForRange: the slot index is always in [0, slots).
func TestSlotForRange(t *testing.T) {
	for _, n := range []int{1, 2, 16, 64, 1024} {
		for key := uint64(0); key < 1000; key++ {
			if s := SlotFor(key, n); s < 0 || s >= n {
				t.Fatalf("SlotFor(%d, %d) = %d", key, n, s)
			}
		}
	}
}

// TestSlotForDistribution: a chi-squared goodness-of-fit test over 1e5
// sequential keys, mirroring the shard router's ShardFor test. Sequential
// keys are the adversarial input for a weak spreader (the bench workloads
// use them); uniformity here means slot ownership counts translate into
// balanced per-node load. Critical values are chi-squared at p = 0.001
// for n-1 degrees of freedom.
func TestSlotForDistribution(t *testing.T) {
	const keys = 100_000
	// df → critical value at p = 0.001: df 3: 16.27, df 15: 37.70,
	// df 63: 103.4.
	critical := map[int]float64{4: 16.27, 16: 37.70, 64: 103.4}
	for _, n := range []int{4, 16, 64} {
		counts := make([]int, n)
		for key := uint64(0); key < keys; key++ {
			counts[SlotFor(key, n)]++
		}
		expected := float64(keys) / float64(n)
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		if limit := critical[n]; chi2 > limit {
			t.Errorf("n=%d: chi-squared %.2f exceeds %.2f", n, chi2, limit)
		}
	}
}

// TestSlotForStable: placement is a pure function — every node and client
// must agree with no shared state.
func TestSlotForStable(t *testing.T) {
	for key := uint64(0); key < 100; key++ {
		if SlotFor(key, 64) != SlotFor(key, 64) {
			t.Fatalf("SlotFor(%d, 64) unstable", key)
		}
	}
}
