package cluster

import (
	"errors"
	"hash/crc32"

	"nvref/internal/pmem"
)

// mapImageName is the image name a node's cluster map is stored under.
const mapImageName = "clustermap"

// Save durably stores the map image through a pmem.Store — the same
// NVM-device model the pool and op-log images use, so the image carries
// the store's CRC64 checksum on top of the map's own CRC32.
func Save(store pmem.Store, m *Map) error {
	data := m.Encode()
	meta := pmem.Meta{
		ID:   crc32.ChecksumIEEE([]byte(mapImageName)),
		Name: mapImageName,
		Size: uint64(len(data)),
		Sum:  pmem.ImageChecksum(data),
	}
	return store.Save(meta, data)
}

// Load reads the durable map image back, if any. A missing image returns
// (nil, nil) — the node has never been given a map — while a damaged one
// is an error: refusing to serve beats silently rejoining at a stale
// epoch with a guessed assignment.
func Load(store pmem.Store) (*Map, error) {
	meta, data, err := store.Load(mapImageName)
	if errors.Is(err, pmem.ErrStoreMissing) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if meta.Sum != 0 && pmem.ImageChecksum(data) != meta.Sum {
		return nil, errors.Join(ErrBadMap, pmem.ErrCorrupt)
	}
	return Decode(data)
}
