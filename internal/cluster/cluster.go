// Package cluster holds the data plane of the scale-out tier's control
// state: an epoch-versioned map assigning every key slot to an owning
// node, a CRC-protected wire/storage image for it, and the rebalance
// planner that turns "node N joined" into an explicit list of slot moves.
//
// The package is deliberately free of any server or network dependency —
// the serving tier (internal/server) imports it for routing and
// migration, never the other way around — so the map's semantics
// (epoch monotonicity, slot assignment, move planning) stay testable in
// isolation.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Slot-space bounds. The slot count is fixed for a cluster's lifetime
// (keys hash onto slots; slots move between nodes), so the bounds only
// have to be generous enough for the deployments the serving tier
// targets while keeping a hostile map image from forcing large
// allocations.
const (
	// MaxSlots bounds a map's slot count.
	MaxSlots = 16384
	// MaxNodes bounds a map's node list.
	MaxNodes = 1024
	// MaxNodeAddr bounds one node address string.
	MaxNodeAddr = 256
)

// mapMagic heads every encoded cluster map image.
const mapMagic = "NVCLMAP1"

// ErrBadMap reports a cluster map image that failed validation: bad
// magic, out-of-bounds counts, a dangling owner index, or a CRC
// mismatch.
var ErrBadMap = errors.New("cluster: bad map image")

// Map is one epoch of the cluster's slot assignment: every key hashes to
// a slot via SlotFor, and Owner[slot] indexes the node that serves it.
// Maps are immutable once built — WithOwner returns an edited copy at
// the next epoch — so readers may hold a *Map without locking.
type Map struct {
	// Epoch orders map versions: a node or client only ever replaces its
	// map with one of a strictly higher epoch.
	Epoch uint64
	// Slots is the fixed slot count keys hash onto.
	Slots int
	// Nodes lists the member addresses (as peers and clients dial them).
	Nodes []string
	// Owner maps slot -> index into Nodes.
	Owner []uint16
}

// SlotFor maps a key onto one of slots slots with the same splitmix64
// finalizer the shard router uses: sequential and clustered key patterns
// spread evenly, so slot load tracks key count.
func SlotFor(key uint64, slots int) int {
	x := key + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(slots))
}

// New builds the epoch-1 bootstrap map: slots dealt contiguously across
// nodes, so every node started with the same peer list computes the
// identical map.
func New(slots int, nodes []string) (*Map, error) {
	if slots < 1 || slots > MaxSlots {
		return nil, fmt.Errorf("cluster: slot count %d out of range [1, %d]", slots, MaxSlots)
	}
	if len(nodes) < 1 || len(nodes) > MaxNodes {
		return nil, fmt.Errorf("cluster: node count %d out of range [1, %d]", len(nodes), MaxNodes)
	}
	for _, n := range nodes {
		if n == "" || len(n) > MaxNodeAddr {
			return nil, fmt.Errorf("cluster: bad node address %q", n)
		}
	}
	m := &Map{
		Epoch: 1,
		Slots: slots,
		Nodes: append([]string(nil), nodes...),
		Owner: make([]uint16, slots),
	}
	per := slots / len(nodes)
	extra := slots % len(nodes)
	slot := 0
	for ni := range nodes {
		n := per
		if ni < extra {
			n++
		}
		for i := 0; i < n; i++ {
			m.Owner[slot] = uint16(ni)
			slot++
		}
	}
	return m, nil
}

// OwnerOf returns the address owning slot.
func (m *Map) OwnerOf(slot int) string { return m.Nodes[m.Owner[slot]] }

// NodeIndex returns the index of addr in Nodes, or -1.
func (m *Map) NodeIndex(addr string) int {
	for i, n := range m.Nodes {
		if n == addr {
			return i
		}
	}
	return -1
}

// Owned counts the slots assigned to addr.
func (m *Map) Owned(addr string) int {
	ni := m.NodeIndex(addr)
	if ni < 0 {
		return 0
	}
	owned := 0
	for _, o := range m.Owner {
		if int(o) == ni {
			owned++
		}
	}
	return owned
}

// Clone returns a deep copy at the same epoch.
func (m *Map) Clone() *Map {
	return &Map{
		Epoch: m.Epoch,
		Slots: m.Slots,
		Nodes: append([]string(nil), m.Nodes...),
		Owner: append([]uint16(nil), m.Owner...),
	}
}

// WithOwner returns a copy of the map at the next epoch with slot owned
// by addr — the handover commit. An addr not yet in Nodes is appended
// (how a joining node enters the map on its first migrated slot).
func (m *Map) WithOwner(slot int, addr string) (*Map, error) {
	if slot < 0 || slot >= m.Slots {
		return nil, fmt.Errorf("cluster: slot %d out of range [0, %d)", slot, m.Slots)
	}
	if addr == "" || len(addr) > MaxNodeAddr {
		return nil, fmt.Errorf("cluster: bad node address %q", addr)
	}
	next := m.Clone()
	next.Epoch++
	ni := next.NodeIndex(addr)
	if ni < 0 {
		if len(next.Nodes) >= MaxNodes {
			return nil, fmt.Errorf("cluster: node count %d at limit", len(next.Nodes))
		}
		ni = len(next.Nodes)
		next.Nodes = append(next.Nodes, addr)
	}
	next.Owner[slot] = uint16(ni)
	return next, nil
}

// Encode renders the map as a self-validating image:
//
//	"NVCLMAP1" | epoch u64 | slots u32 | nodes u16 |
//	per node: u16 len | addr bytes | per slot: owner u16 | crc32 u32
//
// The trailing CRC-32 (IEEE, over everything before it) makes a torn or
// bit-flipped image detectable on its own, independent of any store-level
// checksum.
func (m *Map) Encode() []byte {
	n := len(mapMagic) + 8 + 4 + 2
	for _, node := range m.Nodes {
		n += 2 + len(node)
	}
	n += 2*m.Slots + 4
	buf := make([]byte, 0, n)
	buf = append(buf, mapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Slots))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Nodes)))
	for _, node := range m.Nodes {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(node)))
		buf = append(buf, node...)
	}
	for _, o := range m.Owner {
		buf = binary.LittleEndian.AppendUint16(buf, o)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// Decode parses and validates an Encode image. Every count is
// bounds-checked before allocation and every owner index must land
// inside the node list, so a hostile image is an ErrBadMap, never a
// panic or an unbounded allocation.
func Decode(data []byte) (*Map, error) {
	if len(data) < len(mapMagic)+8+4+2+4 || string(data[:len(mapMagic)]) != mapMagic {
		return nil, fmt.Errorf("%w: bad header", ErrBadMap)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadMap)
	}
	p := len(mapMagic)
	epoch := binary.LittleEndian.Uint64(body[p:])
	p += 8
	slots := int(binary.LittleEndian.Uint32(body[p:]))
	p += 4
	nodes := int(binary.LittleEndian.Uint16(body[p:]))
	p += 2
	if slots < 1 || slots > MaxSlots {
		return nil, fmt.Errorf("%w: slot count %d", ErrBadMap, slots)
	}
	if nodes < 1 || nodes > MaxNodes {
		return nil, fmt.Errorf("%w: node count %d", ErrBadMap, nodes)
	}
	if epoch == 0 {
		return nil, fmt.Errorf("%w: epoch 0", ErrBadMap)
	}
	m := &Map{Epoch: epoch, Slots: slots, Nodes: make([]string, 0, nodes)}
	for i := 0; i < nodes; i++ {
		if len(body)-p < 2 {
			return nil, fmt.Errorf("%w: truncated node list", ErrBadMap)
		}
		n := int(binary.LittleEndian.Uint16(body[p:]))
		p += 2
		if n < 1 || n > MaxNodeAddr || len(body)-p < n {
			return nil, fmt.Errorf("%w: bad node address length %d", ErrBadMap, n)
		}
		m.Nodes = append(m.Nodes, string(body[p:p+n]))
		p += n
	}
	if len(body)-p != 2*slots {
		return nil, fmt.Errorf("%w: %d bytes for %d owners", ErrBadMap, len(body)-p, slots)
	}
	m.Owner = make([]uint16, slots)
	for i := range m.Owner {
		o := binary.LittleEndian.Uint16(body[p:])
		p += 2
		if int(o) >= nodes {
			return nil, fmt.Errorf("%w: slot %d owned by node %d of %d", ErrBadMap, i, o, nodes)
		}
		m.Owner[i] = o
	}
	return m, nil
}

// Move is one planned slot handover.
type Move struct {
	Slot int
	From string
	To   string
}

// RebalanceTarget computes the fair assignment after addr joins (or, if
// already a member, after its share is leveled): every node ends within
// one slot of slots/len(nodes), and slots that are already fairly placed
// do not move. The result is a target only — actual ownership changes
// happen one migrated slot at a time through WithOwner.
func RebalanceTarget(m *Map, addr string) (*Map, error) {
	if addr == "" || len(addr) > MaxNodeAddr {
		return nil, fmt.Errorf("cluster: bad node address %q", addr)
	}
	t := m.Clone()
	if t.NodeIndex(addr) < 0 {
		if len(t.Nodes) >= MaxNodes {
			return nil, fmt.Errorf("cluster: node count %d at limit", len(t.Nodes))
		}
		t.Nodes = append(t.Nodes, addr)
	}
	counts := make([]int, len(t.Nodes))
	for _, o := range t.Owner {
		counts[o]++
	}
	per := t.Slots / len(t.Nodes)
	extra := t.Slots % len(t.Nodes)
	quota := func(ni int) int {
		if ni < extra {
			return per + 1
		}
		return per
	}
	// Donors shed their highest-numbered surplus slots into deficit
	// nodes in node order: deterministic, minimal move count.
	var surplus []int
	for slot := t.Slots - 1; slot >= 0; slot-- {
		ni := int(t.Owner[slot])
		if counts[ni] > quota(ni) {
			counts[ni]--
			surplus = append(surplus, slot)
		}
	}
	sort.Ints(surplus)
	si := 0
	for ni := range t.Nodes {
		for counts[ni] < quota(ni) && si < len(surplus) {
			t.Owner[surplus[si]] = uint16(ni)
			counts[ni]++
			si++
		}
	}
	return t, nil
}

// PlanMoves diffs two assignments over the same slot space into the
// explicit handovers that turn cur into target.
func PlanMoves(cur, target *Map) []Move {
	var moves []Move
	for slot := 0; slot < cur.Slots && slot < target.Slots; slot++ {
		from, to := cur.OwnerOf(slot), target.OwnerOf(slot)
		if from != to {
			moves = append(moves, Move{Slot: slot, From: from, To: to})
		}
	}
	return moves
}
