package structures

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nvref/internal/core"
	"nvref/internal/rt"
)

// oracleTest drives an index with a random operation stream and checks it
// against a Go map at every step.
func oracleTest(t *testing.T, mode rt.Mode, newIndex IndexConstructor, seed int64, ops int) {
	t.Helper()
	ctx := rt.MustNew(mode)
	idx := newIndex(ctx)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(seed))

	for i := 0; i < ops; i++ {
		key := uint64(rng.Intn(ops / 2))
		switch rng.Intn(3) {
		case 0, 1: // lookup twice as often, like the read-heavy workload
			got, ok := idx.Lookup(key)
			want, wantOK := oracle[key]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("%s/%s op %d: Lookup(%d) = (%d,%v), want (%d,%v)",
					idx.Name(), mode, i, key, got, ok, want, wantOK)
			}
		case 2:
			val := rng.Uint64()
			idx.Insert(key, val)
			oracle[key] = val
		}
	}
	// Full sweep.
	for key, want := range oracle {
		got, ok := idx.Lookup(key)
		if !ok || got != want {
			t.Fatalf("%s/%s sweep: Lookup(%d) = (%d,%v), want %d",
				idx.Name(), mode, key, got, ok, want)
		}
	}
}

func TestIndexesAgainstOracleAllModes(t *testing.T) {
	for _, entry := range Indexes() {
		for _, mode := range rt.Modes {
			entry, mode := entry, mode
			t.Run(entry.Name+"/"+mode.String(), func(t *testing.T) {
				oracleTest(t, mode, entry.New, 42, 3000)
			})
		}
	}
}

func TestIndexNames(t *testing.T) {
	ctx := rt.MustNew(rt.Volatile)
	want := []string{"Hash", "RB", "Splay", "AVL", "SG"}
	for i, entry := range Indexes() {
		idx := entry.New(ctx)
		if idx.Name() != want[i] {
			t.Errorf("index %d Name = %q, want %q", i, idx.Name(), want[i])
		}
	}
}

func TestRBInvariants(t *testing.T) {
	ctx := rt.MustNew(rt.HW)
	tree := NewRB(ctx)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		tree.Insert(uint64(rng.Intn(5000)), uint64(i))
		if i%200 == 0 {
			if tree.validate() < 0 {
				t.Fatalf("red-black invariants violated after %d inserts", i+1)
			}
		}
	}
	if tree.validate() < 0 {
		t.Fatal("red-black invariants violated at end")
	}
}

func TestRBSequentialKeys(t *testing.T) {
	// Sequential insertion is the classic degenerate case; fixup must keep
	// the tree balanced.
	ctx := rt.MustNew(rt.SW)
	tree := NewRB(ctx)
	for i := uint64(0); i < 1000; i++ {
		tree.Insert(i, i*2)
	}
	if bh := tree.validate(); bh < 0 {
		t.Fatal("invariants violated on sequential keys")
	}
	for i := uint64(0); i < 1000; i++ {
		v, ok := tree.Lookup(i)
		if !ok || v != i*2 {
			t.Fatalf("Lookup(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestAVLInvariants(t *testing.T) {
	ctx := rt.MustNew(rt.HW)
	tree := NewAVL(ctx)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		tree.Insert(uint64(rng.Intn(5000)), uint64(i))
	}
	if !tree.validate() {
		t.Fatal("AVL invariants violated")
	}
	// Sequential worst case.
	ctx2 := rt.MustNew(rt.Volatile)
	tree2 := NewAVL(ctx2)
	for i := uint64(0); i < 1000; i++ {
		tree2.Insert(i, i)
	}
	if !tree2.validate() {
		t.Fatal("AVL invariants violated on sequential keys")
	}
}

func TestSplayMovesAccessedKeyToRoot(t *testing.T) {
	ctx := rt.MustNew(rt.Volatile)
	tree := NewSplay(ctx)
	for i := uint64(0); i < 200; i++ {
		tree.Insert(i, i)
	}
	if _, ok := tree.Lookup(57); !ok {
		t.Fatal("Lookup(57) missed")
	}
	// After the lookup the accessed key is at the root.
	rk := ctx.LoadWord(spSiteLoadKey, tree.root, spKey)
	if rk != 57 {
		t.Errorf("root key after splay = %d, want 57", rk)
	}
}

func TestSplayMiss(t *testing.T) {
	ctx := rt.MustNew(rt.HW)
	tree := NewSplay(ctx)
	for _, k := range []uint64{10, 20, 30, 40} {
		tree.Insert(k, k*10)
	}
	if _, ok := tree.Lookup(25); ok {
		t.Error("Lookup of absent key hit")
	}
	for _, k := range []uint64{10, 20, 30, 40} {
		v, ok := tree.Lookup(k)
		if !ok || v != k*10 {
			t.Errorf("Lookup(%d) = (%d,%v) after miss-splay", k, v, ok)
		}
	}
}

func TestSGDepthBounded(t *testing.T) {
	ctx := rt.MustNew(rt.Volatile)
	tree := NewSG(ctx)
	// Sequential keys force rebuilds.
	for i := uint64(0); i < 2000; i++ {
		tree.Insert(i, i)
	}
	depth := sgDepth(ctx, tree.root)
	// A scapegoat tree with alpha=0.7 keeps depth <= log_{1/0.7}(n)+1 ~ 22.
	if depth > 25 {
		t.Errorf("scapegoat depth = %d after sequential inserts; rebuilds not working", depth)
	}
	for i := uint64(0); i < 2000; i++ {
		if v, ok := tree.Lookup(i); !ok || v != i {
			t.Fatalf("Lookup(%d) = (%d,%v) after rebuilds", i, v, ok)
		}
	}
}

func sgDepth(ctx *rt.Context, p core.Ptr) int {
	if ctx.IsNull(p) {
		return 0
	}
	l := sgDepth(ctx, ctx.LoadPtr(sgSiteLoadChild, p, sgLeft))
	r := sgDepth(ctx, ctx.LoadPtr(sgSiteLoadChild, p, sgRight))
	if l > r {
		return l + 1
	}
	return r + 1
}

func TestListAppendAndSum(t *testing.T) {
	for _, mode := range rt.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			ctx := rt.MustNew(mode)
			l := NewList(ctx)
			want := uint64(0)
			for i := uint64(1); i <= 500; i++ {
				l.Append(i, i*3)
				want += i + i*3
			}
			if l.Len() != 500 {
				t.Errorf("Len = %d", l.Len())
			}
			if got := l.Sum(); got != want {
				t.Errorf("Sum = %d, want %d", got, want)
			}
			if got := l.SumReverse(); got != want {
				t.Errorf("SumReverse = %d, want %d", got, want)
			}
		})
	}
}

func TestHashUpdatesExistingKey(t *testing.T) {
	ctx := rt.MustNew(rt.HW)
	h := NewHash(ctx, 64)
	h.Insert(5, 10)
	h.Insert(5, 20)
	if h.Len() != 1 {
		t.Errorf("Len after update = %d", h.Len())
	}
	if v, _ := h.Lookup(5); v != 20 {
		t.Errorf("Lookup = %d, want 20", v)
	}
}

func TestHashCollisions(t *testing.T) {
	// A 1-bucket table forces every key onto one chain.
	ctx := rt.MustNew(rt.SW)
	h := NewHash(ctx, 1)
	for i := uint64(0); i < 100; i++ {
		h.Insert(i, i+1000)
	}
	for i := uint64(0); i < 100; i++ {
		if v, ok := h.Lookup(i); !ok || v != i+1000 {
			t.Fatalf("chained Lookup(%d) = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := h.Lookup(999); ok {
		t.Error("absent key found")
	}
}

func TestHashRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHash(3) did not panic")
		}
	}()
	NewHash(rt.MustNew(rt.Volatile), 3)
}

func TestLinesOfCode(t *testing.T) {
	loc := LinesOfCode()
	for _, f := range []string{"list.go", "hash.go", "rbtree.go", "splay.go", "avl.go", "scapegoat.go"} {
		if loc[f] == 0 {
			t.Errorf("LinesOfCode missing %s", f)
		}
	}
	if TotalLines() < 500 {
		t.Errorf("TotalLines = %d, implausibly small", TotalLines())
	}
	if len(SourceFiles()) < 6 {
		t.Errorf("SourceFiles = %v", SourceFiles())
	}
}

// Property: for every mode, an index agrees with the oracle on random
// streams with different seeds.
func TestQuickRBAllModesAgree(t *testing.T) {
	f := func(seed int64) bool {
		results := make([]uint64, 0, 4)
		for _, mode := range rt.Modes {
			ctx := rt.MustNew(mode)
			tree := NewRB(ctx)
			rng := rand.New(rand.NewSource(seed))
			sum := uint64(0)
			for i := 0; i < 300; i++ {
				k := uint64(rng.Intn(100))
				if rng.Intn(2) == 0 {
					tree.Insert(k, k*7)
				} else if v, ok := tree.Lookup(k); ok {
					sum += v
				}
			}
			results = append(results, sum)
		}
		return results[0] == results[1] && results[1] == results[2] && results[2] == results[3]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
