package structures

import (
	"nvref/internal/core"
	"nvref/internal/rt"
)

// RB is a red-black tree with parent pointers and the classic insert
// fixup. Node layout (48 bytes):
//
//	+0  key
//	+8  value
//	+16 left
//	+24 right
//	+32 parent
//	+40 color (0 = black, 1 = red)
const (
	rbKey    = 0
	rbVal    = 8
	rbLeft   = 16
	rbRight  = 24
	rbParent = 32
	rbColor  = 40
	rbNode   = 48

	rbBlack = 0
	rbRed   = 1
)

var (
	rbSiteLoadChild  = rt.NewSite("rb.load.child", false)
	rbSiteLoadParent = rt.NewSite("rb.load.parent", false)
	rbSiteLoadKey    = rt.NewSite("rb.load.key", false)
	rbSiteStoreNew   = rt.NewSite("rb.store.new", true)
	rbSiteStoreLink  = rt.NewSite("rb.store.link", false)
	rbSiteStoreColor = rt.NewSite("rb.store.color", false)
	rbSiteCmpKey     = rt.NewSite("rb.cmp.key", false)
	rbSiteCmpNode    = rt.NewSite("rb.cmp.node", false)
	rbSiteDescend    = rt.NewSite("rb.descend", false)
)

// RB is a persistent red-black tree.
type RB struct {
	ctx  *rt.Context
	root core.Ptr
	n    uint64
}

// NewRB returns an empty tree.
func NewRB(ctx *rt.Context) *RB {
	return &RB{ctx: ctx, root: core.Null}
}

// Name implements Index.
func (t *RB) Name() string { return "RB" }

// Len returns the number of keys.
func (t *RB) Len() uint64 { return t.n }

// Root exposes the root reference for persistence tests.
func (t *RB) Root() core.Ptr { return t.root }

// SetRootRef re-seats the tree on a reference loaded from a pool root.
func (t *RB) SetRootRef(r core.Ptr, n uint64) { t.root, t.n = r, n }

func (t *RB) left(p core.Ptr) core.Ptr   { return t.ctx.LoadPtr(rbSiteLoadChild, p, rbLeft) }
func (t *RB) right(p core.Ptr) core.Ptr  { return t.ctx.LoadPtr(rbSiteLoadChild, p, rbRight) }
func (t *RB) parent(p core.Ptr) core.Ptr { return t.ctx.LoadPtr(rbSiteLoadParent, p, rbParent) }
func (t *RB) key(p core.Ptr) uint64      { return t.ctx.LoadWord(rbSiteLoadKey, p, rbKey) }
func (t *RB) color(p core.Ptr) uint64 {
	if t.ctx.IsNull(p) {
		return rbBlack // nil leaves are black
	}
	return t.ctx.LoadWord(rbSiteLoadKey, p, rbColor)
}
func (t *RB) setColor(p core.Ptr, col uint64) { t.ctx.StoreWord(rbSiteStoreColor, p, rbColor, col) }

// Lookup implements Index.
func (t *RB) Lookup(key uint64) (uint64, bool) {
	c := t.ctx
	p := t.root
	for {
		done := c.IsNull(p)
		c.Branch(rbSiteDescend, done)
		if done {
			return 0, false
		}
		k := t.key(p)
		eq := k == key
		c.Branch(rbSiteCmpKey, eq)
		if eq {
			return c.LoadWord(rbSiteLoadKey, p, rbVal), true
		}
		goLeft := key < k
		c.Branch(rbSiteCmpKey, goLeft)
		if goLeft {
			p = t.left(p)
		} else {
			p = t.right(p)
		}
	}
}

// Insert implements Index.
func (t *RB) Insert(key, value uint64) {
	c := t.ctx

	// Standard BST descent, tracking the parent.
	var parent core.Ptr = core.Null
	wentLeft := false
	p := t.root
	for {
		done := c.IsNull(p)
		c.Branch(rbSiteDescend, done)
		if done {
			break
		}
		k := t.key(p)
		eq := k == key
		c.Branch(rbSiteCmpKey, eq)
		if eq {
			c.StoreWord(rbSiteStoreLink, p, rbVal, value)
			return
		}
		parent = p
		wentLeft = key < k
		c.Branch(rbSiteCmpKey, wentLeft)
		if wentLeft {
			p = t.left(p)
		} else {
			p = t.right(p)
		}
	}

	node := c.Pmalloc(rbNode)
	c.StoreWord(rbSiteStoreNew, node, rbKey, key)
	c.StoreWord(rbSiteStoreNew, node, rbVal, value)
	c.StorePtr(rbSiteStoreNew, node, rbLeft, core.Null)
	c.StorePtr(rbSiteStoreNew, node, rbRight, core.Null)
	c.StorePtr(rbSiteStoreNew, node, rbParent, parent)
	c.StoreWord(rbSiteStoreNew, node, rbColor, rbRed)
	if c.IsNull(parent) {
		t.root = node
	} else if wentLeft {
		c.StorePtr(rbSiteStoreLink, parent, rbLeft, node)
	} else {
		c.StorePtr(rbSiteStoreLink, parent, rbRight, node)
	}
	t.n++
	t.insertFixup(node)
}

func (t *RB) insertFixup(z core.Ptr) {
	c := t.ctx
	for {
		p := t.parent(z)
		red := !c.IsNull(p) && t.color(p) == rbRed
		c.Branch(rbSiteDescend, red)
		if !red {
			break
		}
		g := t.parent(p)
		isLeft := c.PtrEq(rbSiteCmpNode, p, t.left(g))
		c.Branch(rbSiteCmpNode, isLeft)
		if isLeft {
			y := t.right(g) // uncle
			if t.color(y) == rbRed {
				t.setColor(p, rbBlack)
				t.setColor(y, rbBlack)
				t.setColor(g, rbRed)
				z = g
				continue
			}
			if c.PtrEq(rbSiteCmpNode, z, t.right(p)) {
				z = p
				t.rotateLeft(z)
				p = t.parent(z)
				g = t.parent(p)
			}
			t.setColor(p, rbBlack)
			t.setColor(g, rbRed)
			t.rotateRight(g)
		} else {
			y := t.left(g)
			if t.color(y) == rbRed {
				t.setColor(p, rbBlack)
				t.setColor(y, rbBlack)
				t.setColor(g, rbRed)
				z = g
				continue
			}
			if c.PtrEq(rbSiteCmpNode, z, t.left(p)) {
				z = p
				t.rotateRight(z)
				p = t.parent(z)
				g = t.parent(p)
			}
			t.setColor(p, rbBlack)
			t.setColor(g, rbRed)
			t.rotateLeft(g)
		}
	}
	t.setColor(t.root, rbBlack)
}

func (t *RB) rotateLeft(x core.Ptr) {
	c := t.ctx
	y := t.right(x)
	yl := t.left(y)
	c.StorePtr(rbSiteStoreLink, x, rbRight, yl)
	if !c.IsNull(yl) {
		c.StorePtr(rbSiteStoreLink, yl, rbParent, x)
	}
	xp := t.parent(x)
	c.StorePtr(rbSiteStoreLink, y, rbParent, xp)
	if c.IsNull(xp) {
		t.root = y
	} else if c.PtrEq(rbSiteCmpNode, x, t.left(xp)) {
		c.StorePtr(rbSiteStoreLink, xp, rbLeft, y)
	} else {
		c.StorePtr(rbSiteStoreLink, xp, rbRight, y)
	}
	c.StorePtr(rbSiteStoreLink, y, rbLeft, x)
	c.StorePtr(rbSiteStoreLink, x, rbParent, y)
}

func (t *RB) rotateRight(x core.Ptr) {
	c := t.ctx
	y := t.left(x)
	yr := t.right(y)
	c.StorePtr(rbSiteStoreLink, x, rbLeft, yr)
	if !c.IsNull(yr) {
		c.StorePtr(rbSiteStoreLink, yr, rbParent, x)
	}
	xp := t.parent(x)
	c.StorePtr(rbSiteStoreLink, y, rbParent, xp)
	if c.IsNull(xp) {
		t.root = y
	} else if c.PtrEq(rbSiteCmpNode, x, t.left(xp)) {
		c.StorePtr(rbSiteStoreLink, xp, rbLeft, y)
	} else {
		c.StorePtr(rbSiteStoreLink, xp, rbRight, y)
	}
	c.StorePtr(rbSiteStoreLink, y, rbRight, x)
	c.StorePtr(rbSiteStoreLink, x, rbParent, y)
}

// validate checks the red-black invariants, returning the black height or
// -1 on violation. Used by tests.
func (t *RB) validate() int {
	var check func(p core.Ptr) int
	check = func(p core.Ptr) int {
		if t.ctx.IsNull(p) {
			return 1
		}
		l, r := t.left(p), t.right(p)
		if t.color(p) == rbRed && (t.color(l) == rbRed || t.color(r) == rbRed) {
			return -1 // red node with red child
		}
		lh := check(l)
		rh := check(r)
		if lh < 0 || rh < 0 || lh != rh {
			return -1
		}
		if t.color(p) == rbBlack {
			return lh + 1
		}
		return lh
	}
	if t.color(t.root) == rbRed {
		return -1
	}
	return check(t.root)
}
