package structures

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nvref/internal/mem"
	"nvref/internal/pmem"
	"nvref/internal/rt"
)

var (
	tpStore = rt.NewSite("ptest.store", false)
	tpLoad  = rt.NewSite("ptest.load", false)
	tpRoot  = rt.NewSite("ptest.root", false)
)

// TestRBSurvivesRestart builds a red-black tree in one run, persists it,
// reopens the pool at a different base address in a second run, and
// verifies every key — the end-to-end relocation property the pointer
// format exists for.
func TestRBSurvivesRestart(t *testing.T) {
	for _, mode := range []rt.Mode{rt.HW, rt.SW, rt.Explicit} {
		t.Run(mode.String(), func(t *testing.T) {
			store := pmem.NewMemStore()
			run1, err := rt.New(rt.Config{Mode: mode, Store: store})
			if err != nil {
				t.Fatal(err)
			}
			tree1 := NewRB(run1)
			want := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 500; i++ {
				k := uint64(rng.Intn(2000))
				v := rng.Uint64()
				tree1.Insert(k, v)
				want[k] = v
			}
			run1.SetRoot(tpRoot, tree1.Root())
			if err := run1.Persist(); err != nil {
				t.Fatal(err)
			}
			base1 := run1.Pool.Base()

			run2, err := rt.New(rt.Config{
				Mode:        mode,
				Store:       store,
				PoolMapBase: mem.NVMBase + (3 << 30),
			})
			if err != nil {
				t.Fatal(err)
			}
			if run2.Pool.Base() == base1 {
				t.Fatal("second run mapped the pool at the same base")
			}
			tree2 := NewRB(run2)
			tree2.SetRootRef(run2.Root(tpRoot), uint64(len(want)))
			for k, v := range want {
				got, ok := tree2.Lookup(k)
				if !ok || got != v {
					t.Fatalf("after restart Lookup(%d) = (%d,%v), want %d", k, got, ok, v)
				}
			}
			// Absent keys still miss.
			if _, ok := tree2.Lookup(999999); ok {
				t.Error("absent key found after restart")
			}
			// The tree is still usable: insert and find new keys.
			tree2.Insert(777777, 42)
			if v, ok := tree2.Lookup(777777); !ok || v != 42 {
				t.Error("insert after restart failed")
			}
		})
	}
}

// TestListSurvivesRestart does the same for the doubly-linked list,
// walking it forward through raw next links from the persisted root.
func TestListSurvivesRestart(t *testing.T) {
	store := pmem.NewMemStore()
	run1, err := rt.New(rt.Config{Mode: rt.HW, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	l := NewList(run1)
	want := uint64(0)
	for i := uint64(1); i <= 200; i++ {
		l.Append(i, i*7)
		want += i + i*7
	}
	run1.SetRoot(tpRoot, l.Head())
	if err := run1.Persist(); err != nil {
		t.Fatal(err)
	}

	run2, err := rt.New(rt.Config{Mode: rt.HW, Store: store, PoolMapBase: mem.NVMBase + (5 << 30)})
	if err != nil {
		t.Fatal(err)
	}
	got := uint64(0)
	for p := run2.Root(tpRoot); !run2.IsNull(p); p = run2.LoadPtr(tpLoad, p, llNext) {
		got += run2.LoadWord(tpLoad, p, llVal0)
		got += run2.LoadWord(tpLoad, p, llVal1)
	}
	if got != want {
		t.Errorf("sum after restart = %d, want %d", got, want)
	}
}

// Property: any random insert sequence into an RB tree survives a restart
// at a randomized mapping base.
func TestQuickRelocationFuzz(t *testing.T) {
	f := func(seed int64, baseSel uint8) bool {
		store := pmem.NewMemStore()
		run1, err := rt.New(rt.Config{Mode: rt.HW, Store: store, PoolSize: 16 << 20})
		if err != nil {
			return false
		}
		tree := NewRB(run1)
		rng := rand.New(rand.NewSource(seed))
		want := map[uint64]uint64{}
		for i := 0; i < 120; i++ {
			k, v := uint64(rng.Intn(400)), rng.Uint64()
			tree.Insert(k, v)
			want[k] = v
		}
		run1.SetRoot(tpRoot, tree.Root())
		if err := run1.Persist(); err != nil {
			return false
		}

		// Randomized but page-aligned remap base in the NVM half.
		base := mem.NVMBase + (uint64(baseSel%32)+1)<<28
		run2, err := rt.New(rt.Config{Mode: rt.HW, Store: store, PoolSize: 16 << 20, PoolMapBase: base})
		if err != nil {
			return false
		}
		tree2 := NewRB(run2)
		tree2.SetRootRef(run2.Root(tpRoot), uint64(len(want)))
		for k, v := range want {
			got, ok := tree2.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
