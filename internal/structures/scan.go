package structures

import (
	"nvref/internal/core"
	"nvref/internal/rt"
)

// Range-scan support: YCSB's workload E reads short ordered ranges, which
// needs ordered traversal from a seek key. The red-black tree provides it
// through parent-pointer successor walking; the hash table cannot (and in
// YCSB deployments is likewise excluded from scan workloads).

var (
	scanSiteLoad = rt.NewSite("scan.load", false)
	scanSiteIter = rt.NewSite("scan.iter", false)
	scanSiteCmp  = rt.NewSite("scan.cmp", false)
)

// Seek returns the node with the smallest key >= key, or null.
func (t *RB) seek(key uint64) core.Ptr {
	c := t.ctx
	var candidate core.Ptr = core.Null
	p := t.root
	for {
		done := c.IsNull(p)
		c.Branch(scanSiteIter, done)
		if done {
			return candidate
		}
		k := c.LoadWord(scanSiteLoad, p, rbKey)
		if k >= key {
			candidate = p
			if k == key {
				return p
			}
			p = c.LoadPtr(scanSiteLoad, p, rbLeft)
		} else {
			p = c.LoadPtr(scanSiteLoad, p, rbRight)
		}
		c.Branch(scanSiteCmp, k >= key)
	}
}

// successor returns the next node in key order.
func (t *RB) successor(p core.Ptr) core.Ptr {
	c := t.ctx
	right := c.LoadPtr(scanSiteLoad, p, rbRight)
	if !c.IsNull(right) {
		// Leftmost of the right subtree.
		q := right
		for {
			l := c.LoadPtr(scanSiteLoad, q, rbLeft)
			done := c.IsNull(l)
			c.Branch(scanSiteIter, done)
			if done {
				return q
			}
			q = l
		}
	}
	// Climb until coming up from a left child.
	q := p
	parent := c.LoadPtr(scanSiteLoad, q, rbParent)
	for {
		done := c.IsNull(parent)
		c.Branch(scanSiteIter, done)
		if done {
			return core.Null
		}
		if c.PtrEq(scanSiteCmp, q, c.LoadPtr(scanSiteLoad, parent, rbLeft)) {
			return parent
		}
		q = parent
		parent = c.LoadPtr(scanSiteLoad, q, rbParent)
	}
}

// Scan visits up to limit key/value pairs in ascending key order starting
// at the smallest key >= start, returning the number visited.
func (t *RB) Scan(start uint64, limit int, visit func(key, value uint64)) int {
	c := t.ctx
	n := 0
	p := t.seek(start)
	for n < limit {
		done := c.IsNull(p)
		c.Branch(scanSiteIter, done)
		if done {
			break
		}
		k := c.LoadWord(scanSiteLoad, p, rbKey)
		v := c.LoadWord(scanSiteLoad, p, rbVal)
		visit(k, v)
		n++
		p = t.successor(p)
	}
	return n
}
