package structures

import (
	"nvref/internal/core"
	"nvref/internal/rt"
)

// Hash is a chained hash table: a persistent bucket array of references
// plus singly-linked chain nodes.
//
// Chain node layout (32 bytes):
//
//	+0  key
//	+8  value
//	+16 next
const (
	hashKey  = 0
	hashVal  = 8
	hashNext = 16
	hashNode = 32
)

// DefaultHashBuckets is the bucket count used by the benchmarks.
const DefaultHashBuckets = 4096

var (
	hSiteLoadBucket = rt.NewSite("hash.load.bucket", false)
	hSiteLoadNode   = rt.NewSite("hash.load.node", false)
	hSiteLoadNext   = rt.NewSite("hash.load.next", false)
	hSiteStoreNew   = rt.NewSite("hash.store.new", true)
	hSiteStoreLink  = rt.NewSite("hash.store.link", false)
	hSiteChainIter  = rt.NewSite("hash.chain.iter", false)
	hSiteKeyEq      = rt.NewSite("hash.key.eq", false)
)

// Hash is a persistent chained hash table.
type Hash struct {
	ctx     *rt.Context
	buckets core.Ptr // array of nBuckets references
	n       uint64
	mask    uint64
}

// NewHash returns a table with the given power-of-two bucket count.
func NewHash(ctx *rt.Context, buckets int) *Hash {
	if buckets&(buckets-1) != 0 || buckets <= 0 {
		panic("structures: bucket count must be a power of two")
	}
	arr := ctx.Pmalloc(uint64(buckets) * 8)
	// Bucket slots start zeroed (null) by pool construction, but make the
	// initialization explicit: these are pointer stores into NVM.
	for i := 0; i < buckets; i++ {
		ctx.StorePtr(hSiteStoreNew, arr, int64(i)*8, core.Null)
	}
	return &Hash{ctx: ctx, buckets: arr, mask: uint64(buckets - 1)}
}

// Name implements Index.
func (h *Hash) Name() string { return "Hash" }

// Len returns the number of keys.
func (h *Hash) Len() uint64 { return h.n }

func hashMix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Insert implements Index.
func (h *Hash) Insert(key, value uint64) {
	c := h.ctx
	c.Exec(6) // hash computation
	slot := int64(hashMix(key)&h.mask) * 8

	// Search the chain for an existing key.
	p := c.LoadPtr(hSiteLoadBucket, h.buckets, slot)
	for {
		done := c.IsNull(p)
		c.Branch(hSiteChainIter, done)
		if done {
			break
		}
		k := c.LoadWord(hSiteLoadNode, p, hashKey)
		eq := k == key
		c.Branch(hSiteKeyEq, eq)
		if eq {
			c.StoreWord(hSiteStoreLink, p, hashVal, value)
			return
		}
		p = c.LoadPtr(hSiteLoadNext, p, hashNext)
	}

	// Prepend a new node.
	node := c.Pmalloc(hashNode)
	c.StoreWord(hSiteStoreNew, node, hashKey, key)
	c.StoreWord(hSiteStoreNew, node, hashVal, value)
	head := c.LoadPtr(hSiteLoadBucket, h.buckets, slot)
	c.StorePtr(hSiteStoreNew, node, hashNext, head)
	c.StorePtr(hSiteStoreLink, h.buckets, slot, node)
	h.n++
}

// Lookup implements Index.
func (h *Hash) Lookup(key uint64) (uint64, bool) {
	c := h.ctx
	c.Exec(6)
	slot := int64(hashMix(key)&h.mask) * 8
	p := c.LoadPtr(hSiteLoadBucket, h.buckets, slot)
	for {
		done := c.IsNull(p)
		c.Branch(hSiteChainIter, done)
		if done {
			return 0, false
		}
		k := c.LoadWord(hSiteLoadNode, p, hashKey)
		eq := k == key
		c.Branch(hSiteKeyEq, eq)
		if eq {
			return c.LoadWord(hSiteLoadNode, p, hashVal), true
		}
		p = c.LoadPtr(hSiteLoadNext, p, hashNext)
	}
}
