package structures

import (
	"math"

	"nvref/internal/core"
	"nvref/internal/rt"
)

// SG is a scapegoat tree: an unbalanced BST that rebuilds a subtree from
// scratch whenever an insertion lands too deep. The rebuild flattens the
// scapegoat's subtree into a volatile scratch array and relinks it
// perfectly balanced — a burst of pointer stores into NVM. Node layout
// (32 bytes):
//
//	+0  key
//	+8  value
//	+16 left
//	+24 right
const (
	sgKey   = 0
	sgVal   = 8
	sgLeft  = 16
	sgRight = 24
	sgNode  = 32
)

// sgAlpha is the weight-balance parameter; inserts deeper than
// log_{1/alpha}(n) trigger a rebuild.
const sgAlpha = 0.7

var (
	sgSiteLoadChild = rt.NewSite("sg.load.child", false)
	sgSiteLoadKey   = rt.NewSite("sg.load.key", false)
	sgSiteStoreNew  = rt.NewSite("sg.store.new", true)
	sgSiteStoreLink = rt.NewSite("sg.store.link", false)
	sgSiteCmpKey    = rt.NewSite("sg.cmp.key", false)
	sgSiteDescend   = rt.NewSite("sg.descend", false)
	sgSiteRebuild   = rt.NewSite("sg.rebuild", false)
)

// SG is a persistent scapegoat tree.
type SG struct {
	ctx     *rt.Context
	root    core.Ptr
	n       uint64
	maxSize uint64
}

// NewSG returns an empty tree.
func NewSG(ctx *rt.Context) *SG {
	return &SG{ctx: ctx, root: core.Null}
}

// Name implements Index.
func (t *SG) Name() string { return "SG" }

// Len returns the number of keys.
func (t *SG) Len() uint64 { return t.n }

// Lookup implements Index.
func (t *SG) Lookup(key uint64) (uint64, bool) {
	c := t.ctx
	p := t.root
	for {
		done := c.IsNull(p)
		c.Branch(sgSiteDescend, done)
		if done {
			return 0, false
		}
		k := c.LoadWord(sgSiteLoadKey, p, sgKey)
		eq := k == key
		c.Branch(sgSiteCmpKey, eq)
		if eq {
			return c.LoadWord(sgSiteLoadKey, p, sgVal), true
		}
		goLeft := key < k
		c.Branch(sgSiteCmpKey, goLeft)
		if goLeft {
			p = c.LoadPtr(sgSiteLoadChild, p, sgLeft)
		} else {
			p = c.LoadPtr(sgSiteLoadChild, p, sgRight)
		}
	}
}

// Insert implements Index.
func (t *SG) Insert(key, value uint64) {
	c := t.ctx

	// Descend, recording the path so a scapegoat can be found.
	path := make([]core.Ptr, 0, 64)
	p := t.root
	for {
		done := c.IsNull(p)
		c.Branch(sgSiteDescend, done)
		if done {
			break
		}
		k := c.LoadWord(sgSiteLoadKey, p, sgKey)
		eq := k == key
		c.Branch(sgSiteCmpKey, eq)
		if eq {
			c.StoreWord(sgSiteStoreLink, p, sgVal, value)
			return
		}
		path = append(path, p)
		goLeft := key < k
		c.Branch(sgSiteCmpKey, goLeft)
		if goLeft {
			p = c.LoadPtr(sgSiteLoadChild, p, sgLeft)
		} else {
			p = c.LoadPtr(sgSiteLoadChild, p, sgRight)
		}
	}

	node := c.Pmalloc(sgNode)
	c.StoreWord(sgSiteStoreNew, node, sgKey, key)
	c.StoreWord(sgSiteStoreNew, node, sgVal, value)
	c.StorePtr(sgSiteStoreNew, node, sgLeft, core.Null)
	c.StorePtr(sgSiteStoreNew, node, sgRight, core.Null)
	t.n++
	if t.n > t.maxSize {
		t.maxSize = t.n
	}

	if len(path) == 0 {
		t.root = node
		return
	}
	parent := path[len(path)-1]
	pk := c.LoadWord(sgSiteLoadKey, parent, sgKey)
	if key < pk {
		c.StorePtr(sgSiteStoreLink, parent, sgLeft, node)
	} else {
		c.StorePtr(sgSiteStoreLink, parent, sgRight, node)
	}

	// Depth check: too deep means some ancestor is a scapegoat.
	depth := len(path) + 1
	limit := int(math.Floor(math.Log(float64(t.n))/math.Log(1/sgAlpha))) + 1
	c.Exec(8) // depth bound computation
	tooDeep := depth > limit
	c.Branch(sgSiteRebuild, tooDeep)
	if !tooDeep {
		return
	}

	// Walk up the path until the scapegoat: the first ancestor whose
	// subtree is alpha-weight-unbalanced.
	child := node
	childSize := uint64(1)
	for i := len(path) - 1; i >= 0; i-- {
		anc := path[i]
		ancSize := t.subtreeSize(anc)
		if float64(childSize) > sgAlpha*float64(ancSize) {
			// anc is the scapegoat: rebuild its subtree.
			rebuilt := t.rebuild(anc, ancSize)
			if i == 0 {
				t.root = rebuilt
			} else {
				gp := path[i-1]
				gk := c.LoadWord(sgSiteLoadKey, gp, sgKey)
				ak := c.LoadWord(sgSiteLoadKey, rebuilt, sgKey)
				if ak < gk {
					c.StorePtr(sgSiteStoreLink, gp, sgLeft, rebuilt)
				} else {
					c.StorePtr(sgSiteStoreLink, gp, sgRight, rebuilt)
				}
			}
			return
		}
		child = anc
		childSize = ancSize
	}
	_ = child
}

func (t *SG) subtreeSize(p core.Ptr) uint64 {
	c := t.ctx
	if c.IsNull(p) {
		return 0
	}
	return 1 + t.subtreeSize(c.LoadPtr(sgSiteLoadChild, p, sgLeft)) +
		t.subtreeSize(c.LoadPtr(sgSiteLoadChild, p, sgRight))
}

// rebuild flattens the subtree at p into a volatile scratch array (the
// rebuild uses DRAM working memory, as library code would) and relinks it
// perfectly balanced.
func (t *SG) rebuild(p core.Ptr, size uint64) core.Ptr {
	c := t.ctx
	nodes := make([]core.Ptr, 0, size)
	var flatten func(q core.Ptr)
	flatten = func(q core.Ptr) {
		if c.IsNull(q) {
			return
		}
		flatten(c.LoadPtr(sgSiteLoadChild, q, sgLeft))
		nodes = append(nodes, q)
		flatten(c.LoadPtr(sgSiteLoadChild, q, sgRight))
	}
	flatten(p)

	// Model the scratch array traffic: one volatile store and load per node.
	scratch := c.Malloc(uint64(len(nodes)) * 8)
	for i := range nodes {
		c.StoreWord(sgSiteRebuildStoreSite(), scratch, int64(i)*8, uint64(nodes[i]))
	}

	var build func(lo, hi int) core.Ptr
	build = func(lo, hi int) core.Ptr {
		if lo > hi {
			return core.Null
		}
		mid := (lo + hi) / 2
		q := nodes[mid]
		c.Exec(4)
		c.StorePtr(sgSiteStoreLink, q, sgLeft, build(lo, mid-1))
		c.StorePtr(sgSiteStoreLink, q, sgRight, build(mid+1, hi))
		return q
	}
	rebuilt := build(0, len(nodes)-1)
	c.FreeVolatile(scratch, uint64(len(nodes))*8)
	return rebuilt
}

var sgScratchSite = rt.NewSite("sg.rebuild.scratch", true)

func sgSiteRebuildStoreSite() *rt.Site { return sgScratchSite }
