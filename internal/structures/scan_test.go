package structures

import (
	"math/rand"
	"sort"
	"testing"

	"nvref/internal/rt"
)

func TestRBScanOrdered(t *testing.T) {
	for _, mode := range rt.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			ctx := rt.MustNew(mode)
			tree := NewRB(ctx)
			rng := rand.New(rand.NewSource(31))
			keys := map[uint64]uint64{}
			for i := 0; i < 800; i++ {
				k := uint64(rng.Intn(5000))
				tree.Insert(k, k*2)
				keys[k] = k * 2
			}
			var got []uint64
			n := tree.Scan(0, len(keys)+10, func(k, v uint64) {
				got = append(got, k)
				if v != keys[k] {
					t.Fatalf("Scan visited (%d,%d), want value %d", k, v, keys[k])
				}
			})
			if n != len(keys) {
				t.Fatalf("Scan visited %d keys, tree has %d", n, len(keys))
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Error("Scan order not ascending")
			}
		})
	}
}

func TestRBScanFromSeekKey(t *testing.T) {
	ctx := rt.MustNew(rt.HW)
	tree := NewRB(ctx)
	for k := uint64(0); k < 100; k += 2 { // even keys only
		tree.Insert(k, k)
	}
	var got []uint64
	n := tree.Scan(31, 5, func(k, v uint64) { got = append(got, k) })
	if n != 5 {
		t.Fatalf("Scan returned %d items", n)
	}
	want := []uint64{32, 34, 36, 38, 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan = %v, want %v", got, want)
		}
	}
	// Seek past the end.
	if n := tree.Scan(999, 5, func(k, v uint64) {}); n != 0 {
		t.Errorf("Scan past end visited %d", n)
	}
	// Limit larger than remainder.
	if n := tree.Scan(96, 10, func(k, v uint64) {}); n != 2 {
		t.Errorf("tail Scan visited %d, want 2", n)
	}
}

func TestRBScanEmptyTree(t *testing.T) {
	ctx := rt.MustNew(rt.SW)
	tree := NewRB(ctx)
	if n := tree.Scan(0, 10, func(k, v uint64) { t.Fatal("visited on empty tree") }); n != 0 {
		t.Errorf("empty Scan = %d", n)
	}
}

func TestRBScanAfterChurn(t *testing.T) {
	ctx := rt.MustNew(rt.Volatile)
	tree := NewRB(ctx)
	live := map[uint64]bool{}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(300))
		if rng.Intn(2) == 0 {
			tree.Insert(k, k)
			live[k] = true
		} else {
			tree.Delete(k)
			delete(live, k)
		}
	}
	count := 0
	prev := int64(-1)
	tree.Scan(0, 1000, func(k, v uint64) {
		count++
		if int64(k) <= prev {
			t.Fatalf("out-of-order key %d after %d", k, prev)
		}
		prev = int64(k)
		if !live[k] {
			t.Fatalf("Scan visited deleted key %d", k)
		}
	})
	if count != len(live) {
		t.Errorf("Scan visited %d keys, %d live", count, len(live))
	}
}
