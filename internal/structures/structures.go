// Package structures implements the six pointer-based containers the
// paper's evaluation runs (its Table III): a doubly-linked list (LL), a
// chained hash table (Hash), a red-black tree (RB), a splay tree (Splay),
// an AVL tree (AVL), and a scapegoat tree (SG). The five keyed containers
// plug into the key-value harness as its index; the linked list has its own
// iteration harness, as in the paper.
//
// All six are written once against the rt.Context operations, so the same
// container code runs under the Volatile, Explicit, SW, and HW models —
// which is precisely the user-transparency property under evaluation.
package structures

import (
	"embed"
	"sort"
	"strings"

	"nvref/internal/rt"
)

//go:embed *.go
var sourceFS embed.FS

// Index is a key→value mapping over persistent memory.
type Index interface {
	// Name is the benchmark identifier (Table III naming).
	Name() string
	// Insert adds or updates a key.
	Insert(key, value uint64)
	// Lookup finds a key.
	Lookup(key uint64) (uint64, bool)
}

// IndexConstructor builds an index over a context.
type IndexConstructor func(*rt.Context) Index

// Indexes lists the five keyed containers in the paper's figure order
// (Hash, RB, Splay, AVL, SG).
func Indexes() []struct {
	Name string
	New  IndexConstructor
} {
	return []struct {
		Name string
		New  IndexConstructor
	}{
		{"Hash", func(c *rt.Context) Index { return NewHash(c, DefaultHashBuckets) }},
		{"RB", func(c *rt.Context) Index { return NewRB(c) }},
		{"Splay", func(c *rt.Context) Index { return NewSplay(c) }},
		{"AVL", func(c *rt.Context) Index { return NewAVL(c) }},
		{"SG", func(c *rt.Context) Index { return NewSG(c) }},
	}
}

// LinesOfCode reports the source line count of each container file, the
// package's contribution to a Table III-style inventory. Counts include
// comments and blank lines, matching how the paper counts library code.
func LinesOfCode() map[string]int {
	entries, err := sourceFS.ReadDir(".")
	if err != nil {
		return nil
	}
	out := make(map[string]int)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := sourceFS.ReadFile(e.Name())
		if err != nil {
			continue
		}
		out[e.Name()] = strings.Count(string(data), "\n")
	}
	return out
}

// TotalLines sums LinesOfCode.
func TotalLines() int {
	t := 0
	for _, n := range LinesOfCode() {
		t += n
	}
	return t
}

// SourceFiles returns the non-test source file names, sorted.
func SourceFiles() []string {
	var names []string
	for name := range LinesOfCode() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
