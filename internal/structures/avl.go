package structures

import (
	"nvref/internal/core"
	"nvref/internal/rt"
)

// AVL is a height-balanced binary search tree with recursive insertion and
// single/double rotations. Node layout (40 bytes):
//
//	+0  key
//	+8  value
//	+16 left
//	+24 right
//	+32 height
const (
	avlKey    = 0
	avlVal    = 8
	avlLeft   = 16
	avlRight  = 24
	avlHeight = 32
	avlNode   = 40
)

var (
	avlSiteLoadChild  = rt.NewSite("avl.load.child", false)
	avlSiteLoadKey    = rt.NewSite("avl.load.key", false)
	avlSiteLoadHeight = rt.NewSite("avl.load.height", false)
	avlSiteStoreNew   = rt.NewSite("avl.store.new", true)
	avlSiteStoreLink  = rt.NewSite("avl.store.link", false)
	avlSiteCmpKey     = rt.NewSite("avl.cmp.key", false)
	avlSiteDescend    = rt.NewSite("avl.descend", false)
	avlSiteBalance    = rt.NewSite("avl.balance", false)
)

// AVL is a persistent AVL tree.
type AVL struct {
	ctx  *rt.Context
	root core.Ptr
	n    uint64
}

// NewAVL returns an empty tree.
func NewAVL(ctx *rt.Context) *AVL {
	return &AVL{ctx: ctx, root: core.Null}
}

// Name implements Index.
func (t *AVL) Name() string { return "AVL" }

// Len returns the number of keys.
func (t *AVL) Len() uint64 { return t.n }

func (t *AVL) height(p core.Ptr) int64 {
	if t.ctx.IsNull(p) {
		return 0
	}
	return int64(t.ctx.LoadWord(avlSiteLoadHeight, p, avlHeight))
}

func (t *AVL) updateHeight(p core.Ptr) {
	lh := t.height(t.ctx.LoadPtr(avlSiteLoadChild, p, avlLeft))
	rh := t.height(t.ctx.LoadPtr(avlSiteLoadChild, p, avlRight))
	h := lh
	if rh > lh {
		h = rh
	}
	t.ctx.Exec(2)
	t.ctx.StoreWord(avlSiteStoreLink, p, avlHeight, uint64(h+1))
}

func (t *AVL) balanceFactor(p core.Ptr) int64 {
	return t.height(t.ctx.LoadPtr(avlSiteLoadChild, p, avlLeft)) -
		t.height(t.ctx.LoadPtr(avlSiteLoadChild, p, avlRight))
}

// Lookup implements Index.
func (t *AVL) Lookup(key uint64) (uint64, bool) {
	c := t.ctx
	p := t.root
	for {
		done := c.IsNull(p)
		c.Branch(avlSiteDescend, done)
		if done {
			return 0, false
		}
		k := c.LoadWord(avlSiteLoadKey, p, avlKey)
		eq := k == key
		c.Branch(avlSiteCmpKey, eq)
		if eq {
			return c.LoadWord(avlSiteLoadKey, p, avlVal), true
		}
		goLeft := key < k
		c.Branch(avlSiteCmpKey, goLeft)
		if goLeft {
			p = c.LoadPtr(avlSiteLoadChild, p, avlLeft)
		} else {
			p = c.LoadPtr(avlSiteLoadChild, p, avlRight)
		}
	}
}

// Insert implements Index.
func (t *AVL) Insert(key, value uint64) {
	t.root = t.insert(t.root, key, value)
}

func (t *AVL) insert(p core.Ptr, key, value uint64) core.Ptr {
	c := t.ctx
	if empty := c.IsNull(p); empty {
		c.Branch(avlSiteDescend, true)
		node := c.Pmalloc(avlNode)
		c.StoreWord(avlSiteStoreNew, node, avlKey, key)
		c.StoreWord(avlSiteStoreNew, node, avlVal, value)
		c.StorePtr(avlSiteStoreNew, node, avlLeft, core.Null)
		c.StorePtr(avlSiteStoreNew, node, avlRight, core.Null)
		c.StoreWord(avlSiteStoreNew, node, avlHeight, 1)
		t.n++
		return node
	}
	c.Branch(avlSiteDescend, false)

	k := c.LoadWord(avlSiteLoadKey, p, avlKey)
	eq := k == key
	c.Branch(avlSiteCmpKey, eq)
	if eq {
		c.StoreWord(avlSiteStoreLink, p, avlVal, value)
		return p
	}
	goLeft := key < k
	c.Branch(avlSiteCmpKey, goLeft)
	if goLeft {
		child := t.insert(c.LoadPtr(avlSiteLoadChild, p, avlLeft), key, value)
		c.StorePtr(avlSiteStoreLink, p, avlLeft, child)
	} else {
		child := t.insert(c.LoadPtr(avlSiteLoadChild, p, avlRight), key, value)
		c.StorePtr(avlSiteStoreLink, p, avlRight, child)
	}
	t.updateHeight(p)
	return t.rebalance(p)
}

func (t *AVL) rebalance(p core.Ptr) core.Ptr {
	c := t.ctx
	bf := t.balanceFactor(p)
	c.Exec(2)
	heavy := bf > 1 || bf < -1
	c.Branch(avlSiteBalance, heavy)
	if !heavy {
		return p
	}
	if bf > 1 {
		l := c.LoadPtr(avlSiteLoadChild, p, avlLeft)
		if t.balanceFactor(l) < 0 {
			c.StorePtr(avlSiteStoreLink, p, avlLeft, t.rotateLeft(l))
		}
		return t.rotateRight(p)
	}
	r := c.LoadPtr(avlSiteLoadChild, p, avlRight)
	if t.balanceFactor(r) > 0 {
		c.StorePtr(avlSiteStoreLink, p, avlRight, t.rotateRight(r))
	}
	return t.rotateLeft(p)
}

func (t *AVL) rotateLeft(x core.Ptr) core.Ptr {
	c := t.ctx
	y := c.LoadPtr(avlSiteLoadChild, x, avlRight)
	yl := c.LoadPtr(avlSiteLoadChild, y, avlLeft)
	c.StorePtr(avlSiteStoreLink, x, avlRight, yl)
	c.StorePtr(avlSiteStoreLink, y, avlLeft, x)
	t.updateHeight(x)
	t.updateHeight(y)
	return y
}

func (t *AVL) rotateRight(x core.Ptr) core.Ptr {
	c := t.ctx
	y := c.LoadPtr(avlSiteLoadChild, x, avlLeft)
	yr := c.LoadPtr(avlSiteLoadChild, y, avlRight)
	c.StorePtr(avlSiteStoreLink, x, avlLeft, yr)
	c.StorePtr(avlSiteStoreLink, y, avlRight, x)
	t.updateHeight(x)
	t.updateHeight(y)
	return y
}

// validate checks the AVL balance invariant and BST ordering; it returns
// false on any violation. Used by tests.
func (t *AVL) validate() bool {
	ok := true
	var check func(p core.Ptr, lo, hi uint64, loSet, hiSet bool) int64
	check = func(p core.Ptr, lo, hi uint64, loSet, hiSet bool) int64 {
		if t.ctx.IsNull(p) {
			return 0
		}
		k := t.ctx.LoadWord(avlSiteLoadKey, p, avlKey)
		if (loSet && k <= lo) || (hiSet && k >= hi) {
			ok = false
		}
		lh := check(t.ctx.LoadPtr(avlSiteLoadChild, p, avlLeft), lo, k, loSet, true)
		rh := check(t.ctx.LoadPtr(avlSiteLoadChild, p, avlRight), k, hi, true, hiSet)
		if lh-rh > 1 || rh-lh > 1 {
			ok = false
		}
		h := lh
		if rh > h {
			h = rh
		}
		if int64(t.ctx.LoadWord(avlSiteLoadHeight, p, avlHeight)) != h+1 {
			ok = false
		}
		return h + 1
	}
	check(t.root, 0, 0, false, false)
	return ok
}
