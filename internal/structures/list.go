package structures

import (
	"nvref/internal/core"
	"nvref/internal/rt"
)

// List is the LL benchmark: a doubly-linked list whose nodes carry two
// pointers and a 16-byte value (two 64-bit words), iterated to accumulate
// the values, as in the paper's separate linked-list harness.
//
// Node layout (32 bytes):
//
//	+0  value word 0
//	+8  value word 1
//	+16 next
//	+24 prev
const (
	llVal0 = 0
	llVal1 = 8
	llNext = 16
	llPrev = 24
	llSize = 32
)

// Static sites. Pointer loads and stores inside the list code read
// pointers of unknown provenance, so the SW build checks them; the
// allocation result is inferred.
var (
	llSiteLoadNext  = rt.NewSite("ll.load.next", false)
	llSiteLoadVal   = rt.NewSite("ll.load.val", false)
	llSiteStoreLink = rt.NewSite("ll.store.link", false)
	llSiteStoreVal  = rt.NewSite("ll.store.val", true) // through fresh node
	llSiteIter      = rt.NewSite("ll.iter", false)
)

// List is a persistent doubly-linked list.
type List struct {
	ctx  *rt.Context
	head core.Ptr
	tail core.Ptr
	n    int
}

// NewList returns an empty list over the context.
func NewList(ctx *rt.Context) *List {
	return &List{ctx: ctx, head: core.Null, tail: core.Null}
}

// Name implements the benchmark naming.
func (l *List) Name() string { return "LL" }

// Len returns the number of nodes.
func (l *List) Len() int { return l.n }

// Head returns the first node reference.
func (l *List) Head() core.Ptr { return l.head }

// Append adds a node carrying the two value words at the tail.
func (l *List) Append(v0, v1 uint64) {
	c := l.ctx
	node := c.Pmalloc(llSize)
	c.StoreWord(llSiteStoreVal, node, llVal0, v0)
	c.StoreWord(llSiteStoreVal, node, llVal1, v1)
	c.StorePtr(llSiteStoreLink, node, llNext, core.Null)
	c.StorePtr(llSiteStoreLink, node, llPrev, l.tail)
	if c.IsNull(l.head) {
		l.head = node
	} else {
		c.StorePtr(llSiteStoreLink, l.tail, llNext, node)
	}
	l.tail = node
	l.n++
}

// Sum iterates the list, accumulating both value words of every node — the
// LL harness's measured operation.
func (l *List) Sum() uint64 {
	c := l.ctx
	total := uint64(0)
	p := l.head
	for {
		done := c.IsNull(p)
		c.Branch(llSiteIter, done)
		if done {
			break
		}
		total += c.LoadWord(llSiteLoadVal, p, llVal0)
		total += c.LoadWord(llSiteLoadVal, p, llVal1)
		p = c.LoadPtr(llSiteLoadNext, p, llNext)
	}
	return total
}

// SumReverse iterates backward through the prev links.
func (l *List) SumReverse() uint64 {
	c := l.ctx
	total := uint64(0)
	p := l.tail
	for {
		done := c.IsNull(p)
		c.Branch(llSiteIter, done)
		if done {
			break
		}
		total += c.LoadWord(llSiteLoadVal, p, llVal0)
		total += c.LoadWord(llSiteLoadVal, p, llVal1)
		p = c.LoadPtr(llSiteLoadNext, p, llPrev)
	}
	return total
}
