package structures

import (
	"nvref/internal/core"
	"nvref/internal/rt"
)

// Splay is a top-down splay tree. Every Insert and Lookup splays the
// accessed key to the root, restructuring the tree with many pointer
// stores — which is why the paper measures its largest HW-mode overhead on
// this container. Node layout (32 bytes):
//
//	+0  key
//	+8  value
//	+16 left
//	+24 right
const (
	spKey   = 0
	spVal   = 8
	spLeft  = 16
	spRight = 24
	spNode  = 32
)

var (
	spSiteLoadChild = rt.NewSite("splay.load.child", false)
	spSiteLoadKey   = rt.NewSite("splay.load.key", false)
	spSiteStoreNew  = rt.NewSite("splay.store.new", true)
	spSiteStoreLink = rt.NewSite("splay.store.link", false)
	spSiteCmpKey    = rt.NewSite("splay.cmp.key", false)
	spSiteDescend   = rt.NewSite("splay.descend", false)
)

// Splay is a persistent top-down splay tree.
type Splay struct {
	ctx  *rt.Context
	root core.Ptr
	n    uint64
	// scratch is a preallocated header node used by the top-down splay.
	scratch core.Ptr
}

// NewSplay returns an empty tree.
func NewSplay(ctx *rt.Context) *Splay {
	return &Splay{ctx: ctx, root: core.Null, scratch: ctx.Pmalloc(spNode)}
}

// Name implements Index.
func (t *Splay) Name() string { return "Splay" }

// Len returns the number of keys.
func (t *Splay) Len() uint64 { return t.n }

func (t *Splay) load(p core.Ptr, off int64) core.Ptr {
	return t.ctx.LoadPtr(spSiteLoadChild, p, off)
}

func (t *Splay) store(p core.Ptr, off int64, q core.Ptr) {
	t.ctx.StorePtr(spSiteStoreLink, p, off, q)
}

// splay performs the classic top-down splay of key over the tree rooted at
// t.root, leaving the closest node at the root.
func (t *Splay) splay(key uint64) {
	c := t.ctx
	if c.IsNull(t.root) {
		return
	}
	header := t.scratch
	t.store(header, spLeft, core.Null)
	t.store(header, spRight, core.Null)
	var l, r core.Ptr = header, header
	p := t.root

	for {
		k := c.LoadWord(spSiteLoadKey, p, spKey)
		goLeft := key < k
		eq := key == k
		c.Branch(spSiteCmpKey, goLeft)
		if eq {
			break
		}
		if goLeft {
			child := t.load(p, spLeft)
			stop := c.IsNull(child)
			c.Branch(spSiteDescend, stop)
			if stop {
				break
			}
			ck := c.LoadWord(spSiteLoadKey, child, spKey)
			zig := key < ck
			c.Branch(spSiteCmpKey, zig)
			if zig {
				// Rotate right.
				t.store(p, spLeft, t.load(child, spRight))
				t.store(child, spRight, p)
				p = child
				next := t.load(p, spLeft)
				stop2 := c.IsNull(next)
				c.Branch(spSiteDescend, stop2)
				if stop2 {
					break
				}
			}
			// Link right.
			t.store(r, spLeft, p)
			r = p
			p = t.load(p, spLeft)
		} else {
			child := t.load(p, spRight)
			stop := c.IsNull(child)
			c.Branch(spSiteDescend, stop)
			if stop {
				break
			}
			ck := c.LoadWord(spSiteLoadKey, child, spKey)
			zag := key >= ck && key != ck
			c.Branch(spSiteCmpKey, zag)
			if zag {
				// Rotate left.
				t.store(p, spRight, t.load(child, spLeft))
				t.store(child, spLeft, p)
				p = child
				next := t.load(p, spRight)
				stop2 := c.IsNull(next)
				c.Branch(spSiteDescend, stop2)
				if stop2 {
					break
				}
			}
			// Link left.
			t.store(l, spRight, p)
			l = p
			p = t.load(p, spRight)
		}
	}

	// Assemble.
	t.store(l, spRight, t.load(p, spLeft))
	t.store(r, spLeft, t.load(p, spRight))
	t.store(p, spLeft, t.load(header, spRight))
	t.store(p, spRight, t.load(header, spLeft))
	t.root = p
}

// Insert implements Index.
func (t *Splay) Insert(key, value uint64) {
	c := t.ctx
	if c.IsNull(t.root) {
		node := t.newNode(key, value, core.Null, core.Null)
		t.root = node
		t.n++
		return
	}
	t.splay(key)
	rk := c.LoadWord(spSiteLoadKey, t.root, spKey)
	eq := rk == key
	c.Branch(spSiteCmpKey, eq)
	if eq {
		c.StoreWord(spSiteStoreLink, t.root, spVal, value)
		return
	}
	if key < rk {
		node := t.newNode(key, value, t.load(t.root, spLeft), t.root)
		t.store(t.root, spLeft, core.Null)
		t.root = node
	} else {
		node := t.newNode(key, value, t.root, t.load(t.root, spRight))
		t.store(t.root, spRight, core.Null)
		t.root = node
	}
	t.n++
}

func (t *Splay) newNode(key, value uint64, left, right core.Ptr) core.Ptr {
	c := t.ctx
	node := c.Pmalloc(spNode)
	c.StoreWord(spSiteStoreNew, node, spKey, key)
	c.StoreWord(spSiteStoreNew, node, spVal, value)
	c.StorePtr(spSiteStoreNew, node, spLeft, left)
	c.StorePtr(spSiteStoreNew, node, spRight, right)
	return node
}

// Lookup implements Index. A hit splays the key to the root, as splay
// trees do — the restructuring is the point of the container.
func (t *Splay) Lookup(key uint64) (uint64, bool) {
	c := t.ctx
	if c.IsNull(t.root) {
		return 0, false
	}
	t.splay(key)
	rk := c.LoadWord(spSiteLoadKey, t.root, spKey)
	hit := rk == key
	c.Branch(spSiteCmpKey, hit)
	if hit {
		return c.LoadWord(spSiteLoadKey, t.root, spVal), true
	}
	return 0, false
}
