package structures

import (
	"nvref/internal/core"
	"nvref/internal/rt"
)

// Deletion support. The paper's harness only inserts and looks up, but a
// container library that legacy applications would adopt needs removal;
// each structure gets its canonical deletion algorithm, running over the
// same transparent-reference operations as everything else.

var (
	delSiteLoad  = rt.NewSite("del.load", false)
	delSiteStore = rt.NewSite("del.store", false)
	delSiteCmp   = rt.NewSite("del.cmp", false)
	delSiteIter  = rt.NewSite("del.iter", false)
)

// ---- Hash ------------------------------------------------------------

// Delete removes a key from the table, returning whether it was present.
func (h *Hash) Delete(key uint64) bool {
	c := h.ctx
	c.Exec(6)
	slot := int64(hashMix(key)&h.mask) * 8
	var prev core.Ptr = core.Null
	p := c.LoadPtr(hSiteLoadBucket, h.buckets, slot)
	for {
		done := c.IsNull(p)
		c.Branch(delSiteIter, done)
		if done {
			return false
		}
		k := c.LoadWord(delSiteLoad, p, hashKey)
		eq := k == key
		c.Branch(delSiteCmp, eq)
		if eq {
			next := c.LoadPtr(delSiteLoad, p, hashNext)
			if c.IsNull(prev) {
				c.StorePtr(delSiteStore, h.buckets, slot, next)
			} else {
				c.StorePtr(delSiteStore, prev, hashNext, next)
			}
			c.Pfree(p, hashNode)
			h.n--
			return true
		}
		prev = p
		p = c.LoadPtr(delSiteLoad, p, hashNext)
	}
}

// ---- List ------------------------------------------------------------

// Remove unlinks and frees the first node whose first value word equals
// v0, returning whether one was found.
func (l *List) Remove(v0 uint64) bool {
	c := l.ctx
	p := l.head
	for {
		done := c.IsNull(p)
		c.Branch(delSiteIter, done)
		if done {
			return false
		}
		hit := c.LoadWord(delSiteLoad, p, llVal0) == v0
		c.Branch(delSiteCmp, hit)
		if hit {
			prev := c.LoadPtr(delSiteLoad, p, llPrev)
			next := c.LoadPtr(delSiteLoad, p, llNext)
			if c.IsNull(prev) {
				l.head = next
			} else {
				c.StorePtr(delSiteStore, prev, llNext, next)
			}
			if c.IsNull(next) {
				l.tail = prev
			} else {
				c.StorePtr(delSiteStore, next, llPrev, prev)
			}
			c.Pfree(p, llSize)
			l.n--
			return true
		}
		p = c.LoadPtr(delSiteLoad, p, llNext)
	}
}

// ---- Splay -----------------------------------------------------------

// Delete removes a key using the classic splay deletion: splay the key to
// the root, then join the subtrees.
func (t *Splay) Delete(key uint64) bool {
	c := t.ctx
	if c.IsNull(t.root) {
		return false
	}
	t.splay(key)
	rk := c.LoadWord(spSiteLoadKey, t.root, spKey)
	hit := rk == key
	c.Branch(delSiteCmp, hit)
	if !hit {
		return false
	}
	victim := t.root
	left := t.load(victim, spLeft)
	right := t.load(victim, spRight)
	if c.IsNull(left) {
		t.root = right
	} else {
		// Splay the predecessor of key to the top of the left subtree;
		// it then has no right child and adopts the right subtree.
		t.root = left
		t.splay(key)
		t.store(t.root, spRight, right)
	}
	c.Pfree(victim, spNode)
	t.n--
	return true
}

// ---- SG (scapegoat) ----------------------------------------------------

// Delete removes a key lazily by unlinking it BST-style; when more than
// half the maximum size has been deleted, the whole tree is rebuilt —
// the standard scapegoat deletion strategy.
func (t *SG) Delete(key uint64) bool {
	c := t.ctx
	var parent core.Ptr = core.Null
	wentLeft := false
	p := t.root
	for {
		done := c.IsNull(p)
		c.Branch(delSiteIter, done)
		if done {
			return false
		}
		k := c.LoadWord(delSiteLoad, p, sgKey)
		eq := k == key
		c.Branch(delSiteCmp, eq)
		if eq {
			break
		}
		parent = p
		wentLeft = key < k
		c.Branch(delSiteCmp, wentLeft)
		if wentLeft {
			p = c.LoadPtr(delSiteLoad, p, sgLeft)
		} else {
			p = c.LoadPtr(delSiteLoad, p, sgRight)
		}
	}

	// Standard BST removal; two-child case swaps in the successor.
	left := c.LoadPtr(delSiteLoad, p, sgLeft)
	right := c.LoadPtr(delSiteLoad, p, sgRight)
	var replacement core.Ptr
	switch {
	case c.IsNull(left):
		replacement = right
	case c.IsNull(right):
		replacement = left
	default:
		// Find the successor (leftmost of right subtree) and its parent.
		sParent := p
		s := right
		for {
			sl := c.LoadPtr(delSiteLoad, s, sgLeft)
			done := c.IsNull(sl)
			c.Branch(delSiteIter, done)
			if done {
				break
			}
			sParent = s
			s = sl
		}
		// Move successor's key/value into p; delete the successor node.
		c.StoreWord(delSiteStore, p, sgKey, c.LoadWord(delSiteLoad, s, sgKey))
		c.StoreWord(delSiteStore, p, sgVal, c.LoadWord(delSiteLoad, s, sgVal))
		sRight := c.LoadPtr(delSiteLoad, s, sgRight)
		if c.PtrEq(delSiteCmp, sParent, p) {
			c.StorePtr(delSiteStore, p, sgRight, sRight)
		} else {
			c.StorePtr(delSiteStore, sParent, sgLeft, sRight)
		}
		c.Pfree(s, sgNode)
		t.n--
		t.maybeRebuildAll()
		return true
	}
	if c.IsNull(parent) {
		t.root = replacement
	} else if wentLeft {
		c.StorePtr(delSiteStore, parent, sgLeft, replacement)
	} else {
		c.StorePtr(delSiteStore, parent, sgRight, replacement)
	}
	c.Pfree(p, sgNode)
	t.n--
	t.maybeRebuildAll()
	return true
}

// maybeRebuildAll rebuilds the whole tree when deletions have shrunk it
// below alpha * maxSize.
func (t *SG) maybeRebuildAll() {
	t.ctx.Exec(4)
	if t.n > 0 && float64(t.n) < sgAlpha*float64(t.maxSize) {
		t.root = t.rebuild(t.root, t.n)
		t.maxSize = t.n
	}
	if t.n == 0 {
		t.root = core.Null
		t.maxSize = 0
	}
}

// ---- AVL ---------------------------------------------------------------

// Delete removes a key, rebalancing on the way back up.
func (t *AVL) Delete(key uint64) bool {
	found := false
	t.root = t.remove(t.root, key, &found)
	if found {
		t.n--
	}
	return found
}

func (t *AVL) remove(p core.Ptr, key uint64, found *bool) core.Ptr {
	c := t.ctx
	if empty := c.IsNull(p); empty {
		c.Branch(delSiteIter, true)
		return core.Null
	}
	c.Branch(delSiteIter, false)

	k := c.LoadWord(delSiteLoad, p, avlKey)
	eq := k == key
	c.Branch(delSiteCmp, eq)
	if eq {
		*found = true
		left := c.LoadPtr(delSiteLoad, p, avlLeft)
		right := c.LoadPtr(delSiteLoad, p, avlRight)
		switch {
		case c.IsNull(left):
			c.Pfree(p, avlNode)
			return right
		case c.IsNull(right):
			c.Pfree(p, avlNode)
			return left
		default:
			// Replace with the in-order successor's payload, then delete
			// the successor from the right subtree.
			s := right
			for {
				sl := c.LoadPtr(delSiteLoad, s, avlLeft)
				done := c.IsNull(sl)
				c.Branch(delSiteIter, done)
				if done {
					break
				}
				s = sl
			}
			sk := c.LoadWord(delSiteLoad, s, avlKey)
			sv := c.LoadWord(delSiteLoad, s, avlVal)
			c.StoreWord(delSiteStore, p, avlKey, sk)
			c.StoreWord(delSiteStore, p, avlVal, sv)
			dummy := false
			newRight := t.remove(right, sk, &dummy)
			c.StorePtr(delSiteStore, p, avlRight, newRight)
		}
		t.updateHeight(p)
		return t.rebalance(p)
	}
	goLeft := key < k
	c.Branch(delSiteCmp, goLeft)
	if goLeft {
		child := t.remove(c.LoadPtr(delSiteLoad, p, avlLeft), key, found)
		c.StorePtr(delSiteStore, p, avlLeft, child)
	} else {
		child := t.remove(c.LoadPtr(delSiteLoad, p, avlRight), key, found)
		c.StorePtr(delSiteStore, p, avlRight, child)
	}
	t.updateHeight(p)
	return t.rebalance(p)
}

// ---- RB ----------------------------------------------------------------

// Delete removes a key with the CLRS red-black deletion and fixup.
func (t *RB) Delete(key uint64) bool {
	c := t.ctx

	// Find the node.
	z := t.root
	for {
		done := c.IsNull(z)
		c.Branch(delSiteIter, done)
		if done {
			return false
		}
		k := t.key(z)
		eq := k == key
		c.Branch(delSiteCmp, eq)
		if eq {
			break
		}
		if key < k {
			z = t.left(z)
		} else {
			z = t.right(z)
		}
	}

	// CLRS delete. x may be null; xParent tracks its parent for fixup.
	y := z
	yColor := t.color(y)
	var x, xParent core.Ptr

	if c.IsNull(t.left(z)) {
		x = t.right(z)
		xParent = t.parent(z)
		t.transplant(z, x)
	} else if c.IsNull(t.right(z)) {
		x = t.left(z)
		xParent = t.parent(z)
		t.transplant(z, x)
	} else {
		// y = minimum of right subtree.
		y = t.right(z)
		for {
			yl := t.left(y)
			done := c.IsNull(yl)
			c.Branch(delSiteIter, done)
			if done {
				break
			}
			y = yl
		}
		yColor = t.color(y)
		x = t.right(y)
		if c.PtrEq(delSiteCmp, t.parent(y), z) {
			xParent = y
		} else {
			xParent = t.parent(y)
			t.transplant(y, x)
			c.StorePtr(delSiteStore, y, rbRight, t.right(z))
			c.StorePtr(delSiteStore, t.right(y), rbParent, y)
		}
		t.transplant(z, y)
		c.StorePtr(delSiteStore, y, rbLeft, t.left(z))
		c.StorePtr(delSiteStore, t.left(y), rbParent, y)
		t.setColor(y, t.color(z))
	}
	c.Pfree(z, rbNode)
	t.n--

	if yColor == rbBlack {
		t.deleteFixup(x, xParent)
	}
	return true
}

// transplant replaces subtree u with subtree v (v may be null).
func (t *RB) transplant(u, v core.Ptr) {
	c := t.ctx
	up := t.parent(u)
	if c.IsNull(up) {
		t.root = v
	} else if c.PtrEq(delSiteCmp, u, t.left(up)) {
		c.StorePtr(delSiteStore, up, rbLeft, v)
	} else {
		c.StorePtr(delSiteStore, up, rbRight, v)
	}
	if !c.IsNull(v) {
		c.StorePtr(delSiteStore, v, rbParent, up)
	}
}

// deleteFixup restores the red-black invariants after removing a black
// node; x is the doubly-black node (possibly null), parent its parent.
func (t *RB) deleteFixup(x, parent core.Ptr) {
	c := t.ctx
	for {
		atRoot := c.IsNull(parent)
		done := atRoot || (!c.IsNull(x) && t.color(x) == rbRed)
		c.Branch(delSiteIter, done)
		if done {
			break
		}
		if sameNode(c, x, t.left(parent)) {
			w := t.right(parent)
			if t.color(w) == rbRed {
				t.setColor(w, rbBlack)
				t.setColor(parent, rbRed)
				t.rotateLeft(parent)
				w = t.right(parent)
			}
			if t.color(t.left(w)) == rbBlack && t.color(t.right(w)) == rbBlack {
				t.setColor(w, rbRed)
				x = parent
				parent = t.parent(x)
			} else {
				if t.color(t.right(w)) == rbBlack {
					t.setColor(t.left(w), rbBlack)
					t.setColor(w, rbRed)
					t.rotateRight(w)
					w = t.right(parent)
				}
				t.setColor(w, t.color(parent))
				t.setColor(parent, rbBlack)
				t.setColor(t.right(w), rbBlack)
				t.rotateLeft(parent)
				x = t.root
				parent = core.Null
			}
		} else {
			w := t.left(parent)
			if t.color(w) == rbRed {
				t.setColor(w, rbBlack)
				t.setColor(parent, rbRed)
				t.rotateRight(parent)
				w = t.left(parent)
			}
			if t.color(t.right(w)) == rbBlack && t.color(t.left(w)) == rbBlack {
				t.setColor(w, rbRed)
				x = parent
				parent = t.parent(x)
			} else {
				if t.color(t.left(w)) == rbBlack {
					t.setColor(t.right(w), rbBlack)
					t.setColor(w, rbRed)
					t.rotateLeft(w)
					w = t.left(parent)
				}
				t.setColor(w, t.color(parent))
				t.setColor(parent, rbBlack)
				t.setColor(t.left(w), rbBlack)
				t.rotateRight(parent)
				x = t.root
				parent = core.Null
			}
		}
	}
	if !c.IsNull(x) {
		t.setColor(x, rbBlack)
	}
}

// sameNode compares a possibly-null x against a child slot.
func sameNode(c *rt.Context, x, y core.Ptr) bool {
	if c.IsNull(x) && c.IsNull(y) {
		return true
	}
	if c.IsNull(x) || c.IsNull(y) {
		return false
	}
	return c.PtrEq(delSiteCmp, x, y)
}
