package structures

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nvref/internal/rt"
)

// deleter is an index with removal.
type deleter interface {
	Index
	Delete(key uint64) bool
}

// deleteOracleTest drives insert/lookup/delete against a map oracle.
func deleteOracleTest(t *testing.T, name string, mk func(*rt.Context) deleter, mode rt.Mode, seed int64, ops int) {
	t.Helper()
	ctx := rt.MustNew(mode)
	idx := mk(ctx)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(seed))

	for i := 0; i < ops; i++ {
		key := uint64(rng.Intn(ops / 4))
		switch rng.Intn(4) {
		case 0, 1:
			got, ok := idx.Lookup(key)
			want, wantOK := oracle[key]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("%s/%s op %d: Lookup(%d) = (%d,%v), want (%d,%v)",
					name, mode, i, key, got, ok, want, wantOK)
			}
		case 2:
			val := rng.Uint64()
			idx.Insert(key, val)
			oracle[key] = val
		case 3:
			got := idx.Delete(key)
			_, want := oracle[key]
			if got != want {
				t.Fatalf("%s/%s op %d: Delete(%d) = %v, want %v", name, mode, i, key, got, want)
			}
			delete(oracle, key)
		}
	}
	for key, want := range oracle {
		got, ok := idx.Lookup(key)
		if !ok || got != want {
			t.Fatalf("%s/%s sweep: Lookup(%d) = (%d,%v), want %d", name, mode, key, got, ok, want)
		}
	}
}

func deleters() map[string]func(*rt.Context) deleter {
	return map[string]func(*rt.Context) deleter{
		"Hash":  func(c *rt.Context) deleter { return NewHash(c, 256) },
		"RB":    func(c *rt.Context) deleter { return NewRB(c) },
		"Splay": func(c *rt.Context) deleter { return NewSplay(c) },
		"AVL":   func(c *rt.Context) deleter { return NewAVL(c) },
		"SG":    func(c *rt.Context) deleter { return NewSG(c) },
	}
}

func TestDeleteAgainstOracleAllModes(t *testing.T) {
	for name, mk := range deleters() {
		for _, mode := range rt.Modes {
			name, mk, mode := name, mk, mode
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				deleteOracleTest(t, name, mk, mode, 99, 2400)
			})
		}
	}
}

func TestRBInvariantsUnderChurn(t *testing.T) {
	ctx := rt.MustNew(rt.HW)
	tree := NewRB(ctx)
	rng := rand.New(rand.NewSource(17))
	live := map[uint64]bool{}
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(600))
		if rng.Intn(2) == 0 {
			tree.Insert(k, k)
			live[k] = true
		} else {
			got := tree.Delete(k)
			if got != live[k] {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, live[k])
			}
			delete(live, k)
		}
		if i%250 == 0 {
			if tree.validate() < 0 {
				t.Fatalf("red-black invariants violated after %d churn ops", i+1)
			}
		}
	}
	if tree.validate() < 0 {
		t.Fatal("red-black invariants violated at end of churn")
	}
	if int(tree.Len()) != len(live) {
		t.Errorf("Len = %d, oracle has %d", tree.Len(), len(live))
	}
}

func TestAVLInvariantsUnderChurn(t *testing.T) {
	ctx := rt.MustNew(rt.SW)
	tree := NewAVL(ctx)
	rng := rand.New(rand.NewSource(23))
	live := map[uint64]bool{}
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(600))
		if rng.Intn(2) == 0 {
			tree.Insert(k, k*3)
			live[k] = true
		} else {
			if got := tree.Delete(k); got != live[k] {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, live[k])
			}
			delete(live, k)
		}
		if i%500 == 0 && !tree.validate() {
			t.Fatalf("AVL invariants violated after %d churn ops", i+1)
		}
	}
	if !tree.validate() {
		t.Fatal("AVL invariants violated at end of churn")
	}
}

func TestSGShrinkRebuild(t *testing.T) {
	ctx := rt.MustNew(rt.Volatile)
	tree := NewSG(ctx)
	for i := uint64(0); i < 1000; i++ {
		tree.Insert(i, i)
	}
	// Delete most keys: the shrink rule must trigger a full rebuild and
	// keep the survivors reachable.
	for i := uint64(0); i < 900; i++ {
		if !tree.Delete(i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tree.Len() != 100 {
		t.Fatalf("Len = %d", tree.Len())
	}
	for i := uint64(900); i < 1000; i++ {
		if v, ok := tree.Lookup(i); !ok || v != i {
			t.Fatalf("survivor %d lost after shrink rebuild", i)
		}
	}
	depth := sgDepth(ctx, tree.root)
	if depth > 12 {
		t.Errorf("post-shrink depth = %d; rebuild did not rebalance", depth)
	}
}

func TestListRemove(t *testing.T) {
	ctx := rt.MustNew(rt.HW)
	l := NewList(ctx)
	for i := uint64(1); i <= 5; i++ {
		l.Append(i, i)
	}
	if !l.Remove(3) {
		t.Fatal("Remove(3) missed")
	}
	if l.Remove(3) {
		t.Fatal("Remove(3) hit twice")
	}
	if l.Len() != 4 {
		t.Errorf("Len = %d", l.Len())
	}
	// Forward and backward sums agree after surgery.
	if l.Sum() != l.SumReverse() {
		t.Errorf("Sum %d != SumReverse %d after removal", l.Sum(), l.SumReverse())
	}
	// Remove head and tail.
	if !l.Remove(1) || !l.Remove(5) {
		t.Fatal("head/tail removal missed")
	}
	if l.Sum() != 2+2+4+4 {
		t.Errorf("Sum after head/tail removal = %d", l.Sum())
	}
}

func TestDeleteFreesMemory(t *testing.T) {
	ctx := rt.MustNew(rt.HW)
	tree := NewRB(ctx)
	for i := uint64(0); i < 100; i++ {
		tree.Insert(i, i)
	}
	liveBefore := ctx.Pool.AllocCount()
	for i := uint64(0); i < 100; i++ {
		tree.Delete(i)
	}
	liveAfter := ctx.Pool.AllocCount()
	if liveAfter != liveBefore-100 {
		t.Errorf("allocations %d -> %d; deletion leaked nodes", liveBefore, liveAfter)
	}
}

// Property: random churn leaves every structure agreeing with the oracle.
func TestQuickChurnAllStructures(t *testing.T) {
	f := func(seed int64) bool {
		for _, mk := range deleters() {
			ctx := rt.MustNew(rt.Volatile)
			idx := mk(ctx)
			oracle := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				k := uint64(rng.Intn(80))
				switch rng.Intn(3) {
				case 0:
					v := rng.Uint64()
					idx.Insert(k, v)
					oracle[k] = v
				case 1:
					if got := idx.Delete(k); got != (func() bool { _, ok := oracle[k]; return ok })() {
						return false
					}
					delete(oracle, k)
				case 2:
					got, ok := idx.Lookup(k)
					want, wantOK := oracle[k]
					if ok != wantOK || (ok && got != want) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
