package fault

import "time"

// Clock abstracts the time source the fault-adjacent correctness windows
// read: held-ack expiry, replica liveness, fencing, promotion-by-silence,
// breaker cooldowns, watchdog wedge windows, request deadlines, and the
// flaky injector's delays. Production code runs on Wall; the deterministic
// simulator (internal/sim) substitutes a seeded virtual clock so every
// window fires at an exactly reproducible point in the run.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time. A virtual clock
	// may instead account the sleep and return immediately.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once at
	// least d has elapsed. Unlike time.After the returned channel may be
	// re-armed lazily (fired on the next advance of a virtual clock), so
	// callers must treat the delivery time, not the wall instant of
	// receipt, as "now".
	After(d time.Duration) <-chan time.Time
}

// Wall is the production Clock: the real time package.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Wall) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Wall) After(d time.Duration) <-chan time.Time { return time.After(d) }

// OrWall returns c, or the wall clock when c is nil — the default-filling
// helper every Clock consumer uses.
func OrWall(c Clock) Clock {
	if c == nil {
		return Wall{}
	}
	return c
}
