package fault

// Rand is a small deterministic PRNG (splitmix64) so every injected fault
// is reproducible from a seed, independent of math/rand's global state.
type Rand struct{ state uint64 }

// NewRand returns a Rand seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("fault: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Tear returns a copy of data truncated at a seed-chosen point strictly
// inside it, modelling a write torn by power failure. Images of one byte or
// less tear to empty.
func Tear(data []byte, r *Rand) []byte {
	if len(data) <= 1 {
		return nil
	}
	cut := r.Intn(len(data)-1) + 1 // at least 1 byte kept, at least 1 lost
	out := make([]byte, cut)
	copy(out, data[:cut])
	return out
}

// TearPage overwrites the tail of one seed-chosen page with garbage in
// place, modelling a page-granular write torn by power failure: the head
// of the page holds the old contents, the tail holds whatever the media
// left behind. Unlike Tear this damages exactly one page, which is the
// media-fault class an intra-pool parity stripe can repair. Returns the
// page index (-1 when data is empty or pageSize is not positive).
func TearPage(data []byte, pageSize int, r *Rand) int {
	if len(data) == 0 || pageSize <= 0 {
		return -1
	}
	pages := (len(data) + pageSize - 1) / pageSize
	pg := r.Intn(pages)
	lo := pg * pageSize
	hi := lo + pageSize
	if hi > len(data) {
		hi = len(data)
	}
	page := data[lo:hi]
	cut := 0
	if len(page) > 1 {
		cut = r.Intn(len(page) - 1)
	}
	for i := cut; i < len(page); i++ {
		page[i] = byte(r.Uint64())
	}
	return pg
}

// FlipBit flips one seed-chosen bit of data in place and returns its bit
// index (-1 when data is empty).
func FlipBit(data []byte, r *Rand) int {
	if len(data) == 0 {
		return -1
	}
	bit := r.Intn(len(data) * 8)
	data[bit/8] ^= 1 << (bit % 8)
	return bit
}
