// Package fault is the injectable fault plane of the persistence stack. It
// provides three things the recovery machinery is verified against:
//
//   - Named crash points: pmem and txn call Crash(label) after every
//     durable store that publishes state ("persist points"). With no
//     scheduler armed the call is a no-op costing one atomic load; a test
//     harness arms a Scheduler that kills the simulated run at a chosen
//     point by panicking with *CrashPanic, which the harness recovers.
//
//   - Fault classes and a transient-error convention: stores signal
//     retryable device faults by wrapping ErrTransient, and RetryPolicy
//     bounds how callers (the pmem Registry's snapshot/open paths) retry
//     them.
//
//   - Deterministic, seed-driven corruption primitives (Tear, FlipBit)
//     used by the injecting store wrapper to model torn writes and media
//     bit flips.
//
// The package sits below pmem and txn in the import graph so those layers
// can be instrumented directly; the pieces that need the pool types live in
// the subpackages fault/inject (the Store wrapper) and fault/harness (the
// crash-point enumerator).
package fault

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Scheduler decides, at each crash point, whether the run crashes there.
// Implementations must be safe for use from a single goroutine at a time
// (the simulator is single-threaded per run) but the armed/disarmed
// transition itself is atomic.
type Scheduler interface {
	// Hit records one execution of the crash point and reports whether the
	// run must crash now.
	Hit(label string) bool
}

// schedHolder wraps the scheduler so an atomic pointer can represent the
// disarmed state as nil.
type schedHolder struct{ s Scheduler }

var active atomic.Pointer[schedHolder]

// SetScheduler arms s as the process-wide crash scheduler; nil disarms.
func SetScheduler(s Scheduler) {
	if s == nil {
		active.Store(nil)
		return
	}
	active.Store(&schedHolder{s: s})
}

// CrashPanic is the value Crash panics with when the scheduler fires. It
// models the machine losing power at that persist point: everything not yet
// stored to the simulated NVM is gone.
type CrashPanic struct {
	// Label names the crash point that fired.
	Label string
}

func (c *CrashPanic) String() string { return "crash at " + c.Label }

// Crash marks a persist point. Instrumented code calls it immediately after
// each durable store that publishes state; with no scheduler armed it is a
// no-op.
func Crash(label string) {
	h := active.Load()
	if h == nil {
		return
	}
	crashPointsHit.Add(1)
	if h.s.Hit(label) {
		crashesFired.Add(1)
		panic(&CrashPanic{Label: label})
	}
}

// AsCrash extracts the *CrashPanic from a recover() value, if it is one.
func AsCrash(r any) (*CrashPanic, bool) {
	c, ok := r.(*CrashPanic)
	return c, ok
}

// Run executes f with s armed as the crash scheduler, disarming it again on
// return. If f crashes at a scheduled point, Run recovers the CrashPanic
// and returns it; any other panic propagates.
func Run(s Scheduler, f func() error) (crashed *CrashPanic, err error) {
	SetScheduler(s)
	defer SetScheduler(nil)
	defer func() {
		if r := recover(); r != nil {
			if c, ok := AsCrash(r); ok {
				crashed = c
				return
			}
			panic(r)
		}
	}()
	return nil, f()
}

// Recorder is a Scheduler that never crashes; it counts how often each
// crash point executes, which is how the harness enumerates the persist
// points a workload reaches.
type Recorder struct {
	mu     sync.Mutex
	counts map[string]int
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{counts: make(map[string]int)}
}

// Hit implements Scheduler.
func (r *Recorder) Hit(label string) bool {
	r.mu.Lock()
	r.counts[label]++
	r.mu.Unlock()
	return false
}

// Counts returns a copy of the per-label hit counts.
func (r *Recorder) Counts() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// Labels returns the recorded crash-point labels, sorted.
func (r *Recorder) Labels() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counts))
	for k := range r.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Trigger is a Scheduler that crashes the run at the Nth execution of one
// labeled crash point and ignores every other point.
type Trigger struct {
	mu    sync.Mutex
	label string
	n     int
	hits  int
}

// NewTrigger returns a Trigger firing at the nth (1-based) hit of label.
func NewTrigger(label string, nth int) *Trigger {
	if nth < 1 {
		nth = 1
	}
	return &Trigger{label: label, n: nth}
}

// Hit implements Scheduler.
func (t *Trigger) Hit(label string) bool {
	if label != t.label {
		return false
	}
	t.mu.Lock()
	t.hits++
	fire := t.hits == t.n
	t.mu.Unlock()
	return fire
}

// Fired reports whether the trigger's crash point was reached often enough
// to fire.
func (t *Trigger) Fired() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits >= t.n
}

// Periodic is a goroutine-safe Scheduler that fires on every nth execution
// of one labeled crash point — the recurring sibling of Trigger. The
// flaky-network wrapper uses it to fault a steady fraction of I/O calls;
// an empty label matches every point, so one Periodic can drive both the
// read and write points at once.
type Periodic struct {
	label string
	every uint64
	hits  atomic.Uint64
	fired atomic.Uint64
}

// NewPeriodic returns a Periodic firing at every nth (1-based) hit of
// label; an empty label matches all points.
func NewPeriodic(label string, every int) *Periodic {
	if every < 1 {
		every = 1
	}
	return &Periodic{label: label, every: uint64(every)}
}

// Hit implements Scheduler.
func (p *Periodic) Hit(label string) bool {
	if p.label != "" && label != p.label {
		return false
	}
	if p.hits.Add(1)%p.every != 0 {
		return false
	}
	p.fired.Add(1)
	return true
}

// Fired returns how many times the scheduler has fired.
func (p *Periodic) Fired() uint64 { return p.fired.Load() }
