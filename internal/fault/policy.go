package fault

import (
	"errors"
	"fmt"
)

// Policy selects how the runtime surfaces the paper's Table I translation
// faults (storing an unconvertible NVM virtual address through storeP or
// pointerAssignment). The zero value is Permissive, matching the default
// behaviour of both models before the policy existed.
type Policy int

const (
	// Permissive stores the virtual address unchanged: the reference is a
	// volatile one that legitimately does not survive remapping.
	Permissive Policy = iota
	// Strict raises the Table I fault as an error.
	Strict
)

func (p Policy) String() string {
	switch p {
	case Permissive:
		return "permissive"
	case Strict:
		return "strict"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Class enumerates the injectable fault classes of the store layer.
type Class int

const (
	// Transient is a retryable device error: the operation failed but the
	// medium is intact.
	Transient Class = iota
	// Torn persists only a prefix of the image, modelling a write cut off
	// by power failure.
	Torn
	// BitFlip corrupts a single bit of the image, modelling a media error.
	BitFlip
	// Stale silently drops the write, leaving the previous image in place,
	// modelling a lost update that rolls the pool back to its last
	// checkpoint.
	Stale
)

func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Torn:
		return "torn-write"
	case BitFlip:
		return "bit-flip"
	case Stale:
		return "stale-image"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ErrTransient marks retryable device errors. Stores wrap it so callers can
// distinguish faults worth retrying from corruption and programming errors.
var ErrTransient = errors.New("fault: transient device error")

// Transientf builds a transient error with context.
func Transientf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTransient, fmt.Sprintf(format, args...))
}

// IsTransient reports whether err is (or wraps) a transient device error.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// RetryPolicy bounds how an operation prone to transient faults is retried.
type RetryPolicy struct {
	// Attempts is the total number of tries (minimum 1).
	Attempts int
	// Backoff, when non-nil, runs before each retry with the 1-based retry
	// number; it is where a real deployment would sleep. The simulator's
	// default leaves it nil so tests stay fast.
	Backoff func(retry int)
}

// DefaultRetry is the Registry's default policy: three attempts, no delay.
var DefaultRetry = RetryPolicy{Attempts: 3}

// Retry runs op until it succeeds, fails with a non-transient error, or the
// attempt budget is exhausted; the last error is returned in that case.
func (p RetryPolicy) Retry(op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			transientRetries.Add(1)
			if p.Backoff != nil {
				p.Backoff(try)
			}
		}
		err = op()
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}
