package inject

import (
	"fmt"

	"nvref/internal/fault"
	"nvref/internal/pmem"
)

// CorruptStored damages the stored image of name in place: it loads the
// image, mutates the bytes with the given corruptor class, and saves the
// result back under the SAME metadata. The stored checksum goes stale —
// exactly what a media fault (bit rot, a torn page program) looks like to
// the next reader, as opposed to the Save/Load-path faults Store injects.
//
// Supported classes: fault.BitFlip (one bit) and fault.Torn (one torn
// page of pageSize bytes, via fault.TearPage). The mutation is retried a
// few times if it happens to leave the image checksum-clean (garbage can
// land on identical bytes), so a successful return means the image is
// really corrupt. Returns a description of the damage for logs.
func CorruptStored(st pmem.Store, name string, class fault.Class, pageSize int, rng *fault.Rand) (string, error) {
	meta, data, err := st.Load(name)
	if err != nil {
		return "", err
	}
	desc := ""
	for attempt := 0; ; attempt++ {
		switch class {
		case fault.BitFlip:
			bit := fault.FlipBit(data, rng)
			desc = fmt.Sprintf("bit %d flipped in %q", bit, name)
		case fault.Torn:
			pg := fault.TearPage(data, pageSize, rng)
			desc = fmt.Sprintf("page %d torn in %q", pg, name)
		default:
			return "", fmt.Errorf("inject: class %v cannot corrupt a stored image", class)
		}
		if pmem.ImageChecksum(data) != meta.Sum || attempt >= 8 {
			break
		}
	}
	if err := st.Save(meta, data); err != nil {
		return "", err
	}
	return desc, nil
}
