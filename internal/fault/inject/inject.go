// Package inject wraps a pmem.Store with deterministic, seed-driven fault
// injection. A wrapped store misbehaves on scheduled occurrences of Save or
// Load — transient errors, torn writes, single-bit flips, silently dropped
// saves — so tests and the nvbench fault matrix can prove the registry's
// retry and integrity checks catch each class (Table I's storeP faults at
// the device level rather than the instruction level).
package inject

import (
	"fmt"

	"nvref/internal/fault"
	"nvref/internal/obs"
	"nvref/internal/pmem"
)

// Op selects which store operation a fault applies to.
type Op int

const (
	// OpSave faults a Registry checkpoint (or any other image write).
	OpSave Op = iota
	// OpLoad faults an image read on open or reattach.
	OpLoad
)

func (o Op) String() string {
	if o == OpLoad {
		return "load"
	}
	return "save"
}

// Fault schedules one fault: the Nth occurrence (1-based) of Op suffers
// Class. Occurrences are counted per operation across the store's lifetime,
// so retried attempts count separately — a Transient fault at Nth=1 is
// absorbed by a retry budget of two or more attempts.
type Fault struct {
	Class fault.Class
	Op    Op
	Nth   int
}

func (f Fault) String() string {
	return fmt.Sprintf("%s on %s #%d", f.Class, f.Op, f.Nth)
}

// Event records one fault that actually fired.
type Event struct {
	Fault Fault
	Name  string // pool name the operation targeted
}

// Store is a pmem.Store that injects the scheduled faults and otherwise
// delegates to the wrapped store. List and Delete always pass through.
type Store struct {
	inner  pmem.Store
	rng    *fault.Rand
	faults []Fault
	saves  int
	loads  int

	// Events lists the faults that fired, in order.
	Events []Event
}

// New wraps inner. The seed drives where torn writes cut and which bits
// flip; the same seed and schedule reproduce the same corruption.
func New(inner pmem.Store, seed uint64, faults ...Fault) *Store {
	return &Store{inner: inner, rng: fault.NewRand(seed), faults: faults}
}

func (s *Store) scheduled(op Op, n int) (Fault, bool) {
	for _, f := range s.faults {
		if f.Op == op && f.Nth == n {
			return f, true
		}
	}
	return Fault{}, false
}

// Save implements pmem.Store.
func (s *Store) Save(meta pmem.Meta, data []byte) error {
	s.saves++
	f, ok := s.scheduled(OpSave, s.saves)
	if !ok {
		return s.inner.Save(meta, data)
	}
	s.Events = append(s.Events, Event{Fault: f, Name: meta.Name})
	switch f.Class {
	case fault.Transient:
		return fault.Transientf("inject: save %q attempt %d", meta.Name, s.saves)
	case fault.Torn:
		return s.inner.Save(meta, fault.Tear(data, s.rng))
	case fault.BitFlip:
		cp := make([]byte, len(data))
		copy(cp, data)
		fault.FlipBit(cp, s.rng)
		return s.inner.Save(meta, cp)
	case fault.Stale:
		// The write is acknowledged but never reaches the device; the
		// previous image remains current.
		return nil
	}
	return fmt.Errorf("inject: unknown fault class %d", f.Class)
}

// Load implements pmem.Store. A Stale fault on load passes through
// unchanged: staleness is a property of lost writes, not of reads.
func (s *Store) Load(name string) (pmem.Meta, []byte, error) {
	s.loads++
	f, ok := s.scheduled(OpLoad, s.loads)
	if !ok {
		return s.inner.Load(name)
	}
	s.Events = append(s.Events, Event{Fault: f, Name: name})
	if f.Class == fault.Transient {
		return pmem.Meta{}, nil, fault.Transientf("inject: load %q attempt %d", name, s.loads)
	}
	meta, data, err := s.inner.Load(name)
	if err != nil {
		return meta, data, err
	}
	switch f.Class {
	case fault.Torn:
		data = fault.Tear(data, s.rng)
	case fault.BitFlip:
		fault.FlipBit(data, s.rng)
	}
	return meta, data, nil
}

// CountsByClass tallies the fired faults per class.
func (s *Store) CountsByClass() map[fault.Class]uint64 {
	out := make(map[fault.Class]uint64)
	for _, e := range s.Events {
		out[e.Fault.Class]++
	}
	return out
}

// RegisterMetrics binds per-class fired-fault counters into reg, one series
// per fault class so injections are attributable in exported snapshots.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	for _, class := range []fault.Class{fault.Transient, fault.Torn, fault.BitFlip, fault.Stale} {
		class := class
		reg.CounterFunc("inject_faults_fired_total_"+obs.SanitizeName(class.String()),
			"injected "+class.String()+" faults that fired",
			func() uint64 {
				var n uint64
				for _, e := range s.Events {
					if e.Fault.Class == class {
						n++
					}
				}
				return n
			})
	}
}

// List implements pmem.Store.
func (s *Store) List() ([]string, error) { return s.inner.List() }

// Delete implements pmem.Store.
func (s *Store) Delete(name string) error { return s.inner.Delete(name) }

var _ pmem.Store = (*Store)(nil)
