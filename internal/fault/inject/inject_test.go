package inject

import (
	"errors"
	"testing"

	"nvref/internal/fault"
	"nvref/internal/mem"
	"nvref/internal/pmem"
)

// newPool builds a registry over an injecting store with one checkpointed
// pool holding a single allocation. Store op counters at return: the
// Create existence check was load #1 and the checkpoint was save #1.
func newPool(t *testing.T, inj *Store) (*pmem.Registry, *pmem.Pool) {
	t.Helper()
	reg := pmem.NewRegistry(mem.New(), inj)
	pool, err := reg.Create("img", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if err := reg.Checkpoint(pool); err != nil {
		t.Fatal(err)
	}
	return reg, pool
}

func open(inj *Store) (*pmem.Pool, error) {
	reg := pmem.NewRegistry(mem.New(), inj, pmem.WithMapBase(mem.NVMBase+256*mem.PageSize))
	return reg.Open("img")
}

func TestTransientSaveAbsorbedByRetry(t *testing.T) {
	inj := New(pmem.NewMemStore(), 1, Fault{Class: fault.Transient, Op: OpSave, Nth: 1})
	newPool(t, inj) // the checkpoint inside must survive the faulted attempt
	if len(inj.Events) != 1 {
		t.Errorf("events = %v, want exactly the scheduled transient", inj.Events)
	}
	if _, err := open(inj); err != nil {
		t.Errorf("open after retried save: %v", err)
	}
}

func TestTransientLoadAbsorbedByRetry(t *testing.T) {
	inj := New(pmem.NewMemStore(), 1, Fault{Class: fault.Transient, Op: OpLoad, Nth: 2})
	newPool(t, inj)
	if _, err := open(inj); err != nil { // open is load #2
		t.Errorf("open with one transient load fault: %v", err)
	}
}

func TestTornSaveDetectedOnOpen(t *testing.T) {
	inj := New(pmem.NewMemStore(), 2, Fault{Class: fault.Torn, Op: OpSave, Nth: 1})
	newPool(t, inj)
	if _, err := open(inj); !errors.Is(err, pmem.ErrCorrupt) {
		t.Errorf("open of torn image: err = %v, want ErrCorrupt", err)
	}
}

func TestBitFlipSaveDetectedOnOpen(t *testing.T) {
	inj := New(pmem.NewMemStore(), 3, Fault{Class: fault.BitFlip, Op: OpSave, Nth: 1})
	newPool(t, inj)
	if _, err := open(inj); !errors.Is(err, pmem.ErrCorrupt) {
		t.Errorf("open of bit-flipped image: err = %v, want ErrCorrupt", err)
	}
}

func TestTornLoadDetected(t *testing.T) {
	inj := New(pmem.NewMemStore(), 4, Fault{Class: fault.Torn, Op: OpLoad, Nth: 2})
	newPool(t, inj)
	if _, err := open(inj); !errors.Is(err, pmem.ErrCorrupt) {
		t.Errorf("torn load: err = %v, want ErrCorrupt", err)
	}
}

func TestBitFlipLoadDetected(t *testing.T) {
	inj := New(pmem.NewMemStore(), 5, Fault{Class: fault.BitFlip, Op: OpLoad, Nth: 2})
	newPool(t, inj)
	if _, err := open(inj); !errors.Is(err, pmem.ErrCorrupt) {
		t.Errorf("bit-flipped load: err = %v, want ErrCorrupt", err)
	}
}

func TestStaleSaveServesPreviousImage(t *testing.T) {
	inj := New(pmem.NewMemStore(), 6, Fault{Class: fault.Stale, Op: OpSave, Nth: 2})
	reg, pool := newPool(t, inj) // save #1: one allocation
	if _, err := pool.Alloc(128); err != nil {
		t.Fatal(err)
	}
	if err := reg.Checkpoint(pool); err != nil { // save #2: silently dropped
		t.Fatal(err)
	}
	reopened, err := open(inj)
	if err != nil {
		t.Fatalf("open after stale save: %v", err)
	}
	// The second allocation never reached the device: the image is the
	// first checkpoint, valid but old.
	if got := reopened.AllocCount(); got != 1 {
		t.Errorf("reopened pool has %d allocations, want the stale image's 1", got)
	}
}

func TestPassThroughWithoutSchedule(t *testing.T) {
	inner := pmem.NewMemStore()
	inj := New(inner, 7)
	newPool(t, inj)
	names, err := inj.List()
	if err != nil || len(names) != 1 || names[0] != "img" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := inj.Delete("img"); err != nil {
		t.Fatal(err)
	}
	if names, _ := inner.List(); len(names) != 0 {
		t.Errorf("delete did not reach inner store: %v", names)
	}
	if len(inj.Events) != 0 {
		t.Errorf("unscheduled store logged events: %v", inj.Events)
	}
}
