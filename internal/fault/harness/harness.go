// Package harness is the crash-consistency verifier: it runs a workload
// that exercises every instrumented persist point in the allocator and the
// transaction manager, kills the run at each point in turn, reopens the
// surviving image in a fresh "process" (new address space, different map
// base), lets txn.Attach recover, and asserts the recovery invariants:
//
//   - pmem.Fsck finds no structural corruption, and Repair clears any
//     crash residue (leaked blocks, stale statistics);
//   - the pool stays relocatable (VerifyRelocatable is empty) and the
//     root pointer resolves after the remap;
//   - the transactional data is atomic: every word holds the same
//     generation, one of the states the undo log guarantees.
//
// This is the executable form of the crash-safety argument each persist
// point's ordering comment makes in prose.
package harness

import (
	"fmt"
	"sort"

	"nvref/internal/core"
	"nvref/internal/fault"
	"nvref/internal/mem"
	"nvref/internal/pmem"
	"nvref/internal/txn"
)

const (
	poolName = "crash"
	poolSize = 1 << 20
	nWords   = 8
	maxEnts  = 64

	// Reopen bases, distinct from the default so every recovery also
	// exercises pointer relocation.
	reopenBase  = mem.NVMBase + 1024*mem.PageSize
	reopenBase2 = mem.NVMBase + 2048*mem.PageSize
)

// wordValue encodes (generation, index) so recovered state is self-describing.
func wordValue(gen, i uint64) uint64 { return gen<<32 | i }

// run is one simulated process: an address space with the pool mapped, a
// transaction manager, and a block of transactional words hung off the root.
type run struct {
	as       *mem.AddressSpace
	reg      *pmem.Registry
	pool     *pmem.Pool
	mgr      *txn.Manager
	logOff   uint64
	wordsOff uint64
}

// newRun builds the initial durable state before any fault is armed: pool,
// installed undo log, and nWords generation-0 words published via the root.
func newRun() (*run, error) {
	as := mem.New()
	reg := pmem.NewRegistry(as, pmem.NewMemStore())
	pool, err := reg.Create(poolName, poolSize)
	if err != nil {
		return nil, err
	}
	mgr, logOff, err := txn.Install(pool, as, maxEnts)
	if err != nil {
		return nil, err
	}
	wordsOff, err := pool.Alloc(nWords * 8)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nWords; i++ {
		if err := as.Store64(pool.Base()+wordsOff+8*i, wordValue(0, i)); err != nil {
			return nil, err
		}
	}
	pool.SetRoot(core.MakeRelative(pool.ID(), uint32(wordsOff)))
	return &run{as: as, reg: reg, pool: pool, mgr: mgr, logOff: logOff, wordsOff: wordsOff}, nil
}

// mutate is the instrumented workload. The allocator phase drives every
// Alloc/Free path (bump, split, exact fit, plain insert, next-, prev- and
// both-side coalescing); the transaction phase commits generations 1 and 2
// over the word block and aborts a generation-3 attempt, so the abort
// exercises the recovery persist points in-run as well.
func (r *run) mutate() error {
	sizes := []uint64{48, 160, 80, 224, 64, 112}
	offs := make([]uint64, len(sizes))
	for i, s := range sizes {
		off, err := r.pool.Alloc(s)
		if err != nil {
			return err
		}
		offs[i] = off
	}
	for _, i := range []int{1, 3, 2} { // freeing 2 last coalesces both sides
		if err := r.pool.Free(offs[i]); err != nil {
			return err
		}
	}
	a, err := r.pool.Alloc(32) // splits the coalesced 512-byte run
	if err != nil {
		return err
	}
	b, err := r.pool.Alloc(448) // exact fit for the 464-byte remainder
	if err != nil {
		return err
	}
	if err := r.pool.Free(a); err != nil { // plain insert, no neighbors free
		return err
	}
	if err := r.pool.Free(b); err != nil { // merges into the preceding block
		return err
	}

	for gen := uint64(1); gen <= 2; gen++ {
		if err := r.writeGeneration(gen); err != nil {
			return err
		}
		if err := r.mgr.Commit(); err != nil {
			return err
		}
	}
	if err := r.writeGeneration(3); err != nil {
		return err
	}
	return r.mgr.Abort()
}

func (r *run) writeGeneration(gen uint64) error {
	if err := r.mgr.Begin(); err != nil {
		return err
	}
	for i := uint64(0); i < nWords; i++ {
		if err := r.mgr.WriteWord(r.wordsOff+8*i, wordValue(gen, i)); err != nil {
			return err
		}
	}
	return nil
}

// image snapshots the pool exactly as the NVM device would retain it.
func (r *run) image() (pmem.Meta, []byte, error) {
	data, err := r.as.Snapshot(r.pool.Base(), r.pool.Size())
	if err != nil {
		return pmem.Meta{}, nil, err
	}
	meta := pmem.Meta{
		ID:   r.pool.ID(),
		Name: poolName,
		Size: uint64(len(data)),
		Sum:  pmem.ImageChecksum(data),
	}
	return meta, data, nil
}

// reopen maps an image into a fresh address space at base, modeling the
// next process run attaching to the surviving NVM state.
func reopen(meta pmem.Meta, data []byte, base uint64) (*pmem.Pool, *mem.AddressSpace, error) {
	store := pmem.NewMemStore()
	if err := store.Save(meta, data); err != nil {
		return nil, nil, err
	}
	as := mem.New()
	reg := pmem.NewRegistry(as, store, pmem.WithMapBase(base))
	pool, err := reg.Open(poolName)
	if err != nil {
		return nil, nil, err
	}
	return pool, as, nil
}

// Outcome describes one crash/recover/verify cycle.
type Outcome struct {
	Crashed    bool   // the trigger fired; false means the point was exhausted
	RolledBack bool   // txn.Attach found an active log and rolled back
	Repaired   bool   // Fsck warned and Repair was needed
	Gen        uint64 // uniform word generation after recovery
}

// CrashAt runs the workload, crashes it at the nth hit of the named persist
// point, recovers in a fresh run, and checks every invariant. An error
// means an invariant failed; Outcome.Crashed false means the workload
// finished before the nth hit.
func CrashAt(label string, nth int) (*Outcome, error) {
	r, err := newRun()
	if err != nil {
		return nil, err
	}
	crashed, err := fault.Run(fault.NewTrigger(label, nth), r.mutate)
	if err != nil {
		return nil, fmt.Errorf("%s #%d: workload: %w", label, nth, err)
	}
	if crashed == nil {
		return &Outcome{}, nil
	}
	meta, data, err := r.image()
	if err != nil {
		return nil, err
	}
	out, err := recoverAndVerify(meta, data, r.logOff, r.wordsOff, reopenBase)
	if err != nil {
		return nil, fmt.Errorf("%s #%d: %w", label, nth, err)
	}
	out.Crashed = true
	return out, nil
}

// recoverAndVerify attaches to a crashed image and asserts the invariants.
func recoverAndVerify(meta pmem.Meta, data []byte, logOff, wordsOff, base uint64) (*Outcome, error) {
	pool, as, err := reopen(meta, data, base)
	if err != nil {
		return nil, fmt.Errorf("reopen: %w", err)
	}
	_, rolledBack, err := txn.Attach(pool, as, logOff, maxEnts)
	if err != nil {
		return nil, fmt.Errorf("attach: %w", err)
	}
	out := &Outcome{RolledBack: rolledBack}

	rep := pmem.Fsck(pool)
	if !rep.Consistent() {
		return nil, fmt.Errorf("fsck: structural corruption: %v", rep.Errors())
	}
	if !rep.Clean() {
		out.Repaired = true
		after, err := pmem.Repair(pool)
		if err != nil {
			return nil, fmt.Errorf("repair: %w", err)
		}
		if !after.Clean() {
			return nil, fmt.Errorf("repair left issues: %v", after.Issues)
		}
	}
	if bad := pmem.VerifyRelocatable(pool, as); len(bad) != 0 {
		return nil, fmt.Errorf("non-relocatable words at offsets %#x", bad)
	}

	root := pool.Root()
	if !root.IsRelative() || uint64(root.Offset()) != wordsOff {
		return nil, fmt.Errorf("root %v does not resolve to the word block at %#x", root, wordsOff)
	}
	gen, err := uniformGeneration(pool, as, wordsOff)
	if err != nil {
		return nil, err
	}
	if gen > 2 {
		return nil, fmt.Errorf("recovered generation %d was never committed", gen)
	}
	out.Gen = gen
	return out, nil
}

// uniformGeneration checks word-level atomicity: every word must carry its
// own index and the same generation as word 0.
func uniformGeneration(pool *pmem.Pool, as *mem.AddressSpace, wordsOff uint64) (uint64, error) {
	var gen uint64
	for i := uint64(0); i < nWords; i++ {
		v, err := as.Load64(pool.Base() + wordsOff + 8*i)
		if err != nil {
			return 0, err
		}
		if v&0xFFFFFFFF != i {
			return 0, fmt.Errorf("word %d holds %#x: index corrupted", i, v)
		}
		if i == 0 {
			gen = v >> 32
		} else if v>>32 != gen {
			return 0, fmt.Errorf("torn transaction: word 0 is generation %d, word %d is %d",
				gen, i, v>>32)
		}
	}
	return gen, nil
}

// PointResult summarizes the cycles run against one persist point.
type PointResult struct {
	Label     string
	Hits      int // occurrences during the recording run
	Tested    int // crash cycles actually executed
	Rollbacks int // recoveries that rolled back an in-flight transaction
	Repairs   int // recoveries that needed Repair for crash residue
}

// Report is the result of a full enumeration sweep.
type Report struct {
	Points    []PointResult
	TotalRuns int
}

// DistinctPoints counts the persist points the workload reached.
func (r *Report) DistinctPoints() int { return len(r.Points) }

// Options tunes an enumeration sweep.
type Options struct {
	// MaxPerLabel caps the occurrences tested per point; 0 tests them all.
	MaxPerLabel int
}

// Enumerate discovers every persist point the workload hits, then crashes
// at each occurrence of each point and verifies recovery. It fails fast on
// the first invariant violation.
func Enumerate(opts Options) (*Report, error) {
	rec := fault.NewRecorder()
	r, err := newRun()
	if err != nil {
		return nil, err
	}
	if crashed, err := fault.Run(rec, r.mutate); crashed != nil || err != nil {
		return nil, fmt.Errorf("recording run: crash %v, err %v", crashed, err)
	}
	counts := rec.Counts()
	labels := rec.Labels()
	sort.Strings(labels)

	rep := &Report{}
	for _, label := range labels {
		pr := PointResult{Label: label, Hits: counts[label]}
		limit := pr.Hits
		if opts.MaxPerLabel > 0 && limit > opts.MaxPerLabel {
			limit = opts.MaxPerLabel
		}
		for nth := 1; nth <= limit; nth++ {
			out, err := CrashAt(label, nth)
			if err != nil {
				return nil, err
			}
			if !out.Crashed {
				return nil, fmt.Errorf("%s #%d: point not reached on replay", label, nth)
			}
			pr.Tested++
			rep.TotalRuns++
			if out.RolledBack {
				pr.Rollbacks++
			}
			if out.Repaired {
				pr.Repairs++
			}
		}
		rep.Points = append(rep.Points, pr)
	}
	return rep, nil
}

// DoubleRecovery crashes the workload mid-transaction, then crashes the
// recovery itself mid-rollback, and verifies that a second, uninterrupted
// recovery still restores the last committed generation — rollback must be
// idempotent under repeated failure.
func DoubleRecovery() error {
	r, err := newRun()
	if err != nil {
		return err
	}
	// Occurrence 12 of the post-data-write point lands in the middle of the
	// generation-2 transaction (generation 1 used occurrences 1-8).
	crashed, err := fault.Run(fault.NewTrigger("txn.write.data", 12), r.mutate)
	if err != nil {
		return err
	}
	if crashed == nil {
		return fmt.Errorf("workload finished without reaching txn.write.data #12")
	}
	meta, data, err := r.image()
	if err != nil {
		return err
	}

	// First recovery attempt: crash after the second undo store.
	pool, as, err := reopen(meta, data, reopenBase)
	if err != nil {
		return err
	}
	crashed, err = fault.Run(fault.NewTrigger("txn.recover.undo-entry", 2), func() error {
		_, _, err := txn.Attach(pool, as, r.logOff, maxEnts)
		return err
	})
	if err != nil {
		return fmt.Errorf("interrupted recovery: %w", err)
	}
	if crashed == nil {
		return fmt.Errorf("recovery finished without reaching txn.recover.undo-entry #2")
	}
	data2, err := as.Snapshot(pool.Base(), pool.Size())
	if err != nil {
		return err
	}
	meta2 := meta
	meta2.Sum = pmem.ImageChecksum(data2)

	// Second recovery must finish the rollback from the log's intact state.
	out, err := recoverAndVerify(meta2, data2, r.logOff, r.wordsOff, reopenBase2)
	if err != nil {
		return fmt.Errorf("second recovery: %w", err)
	}
	if !out.RolledBack {
		return fmt.Errorf("second recovery found the log idle; expected an active rollback")
	}
	if out.Gen != 1 {
		return fmt.Errorf("double recovery restored generation %d, want 1", out.Gen)
	}
	return nil
}
