package harness

import (
	"strings"
	"testing"
)

// TestEnumerateAllPersistPoints is the tentpole check: every persist point
// the workload reaches, at every occurrence, must recover to a consistent,
// relocatable pool with an atomic word generation.
func TestEnumerateAllPersistPoints(t *testing.T) {
	rep, err := Enumerate(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DistinctPoints() < 10 {
		t.Errorf("workload reached only %d persist points, want >= 10", rep.DistinctPoints())
	}
	var txnPoints, pmemPoints, rollbacks int
	for _, p := range rep.Points {
		if p.Tested != p.Hits {
			t.Errorf("%s: tested %d of %d occurrences", p.Label, p.Tested, p.Hits)
		}
		switch {
		case strings.HasPrefix(p.Label, "txn."):
			txnPoints++
		case strings.HasPrefix(p.Label, "pmem."):
			pmemPoints++
		default:
			t.Errorf("unexpected label namespace: %s", p.Label)
		}
		rollbacks += p.Rollbacks
	}
	if txnPoints == 0 || pmemPoints == 0 {
		t.Errorf("coverage spans %d txn and %d allocator points; want both layers", txnPoints, pmemPoints)
	}
	if rollbacks == 0 {
		t.Error("no crash cycle exercised an undo-log rollback")
	}
	t.Logf("verified %d crash cycles across %d persist points", rep.TotalRuns, rep.DistinctPoints())
}

// TestCommitMarkerCrash: once the commit marker (state=idle) is durable,
// recovery must keep the transaction even though the log entries linger.
func TestCommitMarkerCrash(t *testing.T) {
	out, err := CrashAt("txn.commit.marker", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed {
		t.Fatal("crash point not reached")
	}
	if out.RolledBack {
		t.Error("recovery rolled back a committed transaction")
	}
	if out.Gen != 1 {
		t.Errorf("recovered generation %d, want the committed 1", out.Gen)
	}
}

// TestPartialUndoEntryIgnored: an undo entry whose old value is durable but
// whose count was never published must not be replayed; the four published
// entries roll the words back to generation 0.
func TestPartialUndoEntryIgnored(t *testing.T) {
	out, err := CrashAt("txn.write.entry-old", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed {
		t.Fatal("crash point not reached")
	}
	if !out.RolledBack {
		t.Error("active log was not rolled back")
	}
	if out.Gen != 0 {
		t.Errorf("recovered generation %d, want 0", out.Gen)
	}
}

// TestEmptyActiveLog: crashing right after Begin arms the log leaves zero
// entries; recovery must be a no-op rollback.
func TestEmptyActiveLog(t *testing.T) {
	out, err := CrashAt("txn.begin.armed", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed || !out.RolledBack || out.Gen != 0 {
		t.Errorf("outcome %+v, want rolled-back generation 0", out)
	}
}

// TestMidTransactionCrash: a crash halfway through generation 2's writes
// must recover to the committed generation 1, never a mix.
func TestMidTransactionCrash(t *testing.T) {
	out, err := CrashAt("txn.write.data", 12)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed || !out.RolledBack {
		t.Fatalf("outcome %+v, want a rollback", out)
	}
	if out.Gen != 1 {
		t.Errorf("recovered generation %d, want 1", out.Gen)
	}
}

func TestDoubleRecovery(t *testing.T) {
	if err := DoubleRecovery(); err != nil {
		t.Fatal(err)
	}
}

// TestExhaustedPointReportsNoCrash: asking for an occurrence beyond what
// the workload produces is reported, not silently treated as success.
func TestExhaustedPointReportsNoCrash(t *testing.T) {
	out, err := CrashAt("txn.commit.marker", 99)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Error("occurrence 99 of a twice-hit point reported a crash")
	}
}
