package flaky

import (
	"net"
	"testing"
	"time"

	"nvref/internal/fault"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l
}

func dialEcho(t *testing.T, l net.Listener, cfg Config) *Conn {
	t.Helper()
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := Wrap(raw, cfg)
	t.Cleanup(func() { c.Close() })
	return c
}

// TestPassthrough: a zero schedule never faults; bytes flow unchanged.
func TestPassthrough(t *testing.T) {
	l := echoServer(t)
	c := dialEcho(t, l, Config{Seed: 1})
	msg := []byte("hello over a calm network")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo got %q, want %q", got, msg)
	}
	if c.Drops.Load()+c.Truncs.Load()+c.Delays.Load() != 0 {
		t.Fatal("faults fired with no scheduler armed")
	}
}

// TestEveryWriteFaults arms a fire-always scheduler on the write point and
// keeps writing until the connection dies: within a few writes a drop or
// truncation must sever it, and every write must have recorded a fault.
func TestEveryWriteFaults(t *testing.T) {
	l := echoServer(t)
	c := dialEcho(t, l, Config{Sched: fault.NewPeriodic(PointWrite, 1), Seed: 42})
	var sawError bool
	for i := 0; i < 64; i++ {
		if _, err := c.Write([]byte("payload payload payload")); err != nil {
			sawError = true
			break
		}
	}
	if !sawError {
		t.Fatal("64 always-faulting writes all succeeded; drop/truncate never fired")
	}
	total := c.Drops.Load() + c.Truncs.Load() + c.Delays.Load()
	if total == 0 {
		t.Fatal("no fault counters recorded")
	}
	if c.Drops.Load()+c.Truncs.Load() == 0 {
		t.Fatal("connection errored without a drop or truncation")
	}
}

// TestReadFaultSevers arms the read point: a scheduled read must either
// delay (data still arrives) or sever the conn (read fails) — and the
// same seed must reproduce the same class sequence.
func TestReadFaultSevers(t *testing.T) {
	classes := func(seed uint64) (drops, truncs, delays uint64) {
		l := echoServer(t)
		c := dialEcho(t, l, Config{Sched: fault.NewPeriodic(PointRead, 1), Seed: seed})
		buf := make([]byte, 16)
		for i := 0; i < 32; i++ {
			if _, err := c.Write([]byte("0123456789abcdef")); err != nil {
				break
			}
			c.SetReadDeadline(time.Now().Add(time.Second))
			if _, err := c.Read(buf); err != nil {
				break
			}
		}
		return c.Drops.Load(), c.Truncs.Load(), c.Delays.Load()
	}
	d1, t1, dl1 := classes(7)
	if d1+t1+dl1 == 0 {
		t.Fatal("no read faults fired")
	}
	d2, t2, dl2 := classes(7)
	if d1 != d2 || t1 != t2 || dl1 != dl2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", d1, t1, dl1, d2, t2, dl2)
	}
}

// TestDialerWrapsEveryConn: connections from the Dialer share the
// scheduler but carry their own rng streams.
func TestDialerWrapsEveryConn(t *testing.T) {
	l := echoServer(t)
	sched := fault.NewPeriodic("", 1)
	dial := Dialer(Config{Sched: sched, Seed: 9})
	for i := 0; i < 3; i++ {
		conn, err := dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte("x"))
		conn.Close()
	}
	if sched.Fired() == 0 {
		t.Fatal("shared scheduler never fired across dialed conns")
	}
}

func readFull(c net.Conn, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := c.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
