// Package flaky wraps a net.Conn with deterministic, seed-driven network
// fault injection: scheduled Read/Write calls are delayed, truncated, or
// severed outright. It is the network-level sibling of fault/inject (which
// faults the pmem store): the same fault.Scheduler decides *when* a fault
// fires and the same seeded fault.Rand decides *what* happens, so a given
// (schedule, seed) pair reproduces the same flaky network byte-for-byte.
//
// The wrapper injects faults the transport can really produce — a peer
// resetting the connection (drop), a frame cut mid-write (truncate), a
// congested link (delay) — so the serving tier's client resilience (retry,
// re-dial, deadlines) is exercised against realistic failures rather than
// synthetic error values: a severed conn yields the same *net.OpError a
// real reset does.
package flaky

import (
	"net"
	"sync/atomic"
	"time"

	"nvref/internal/fault"
)

// Crash-point labels the wrapper evaluates on the armed scheduler. Reads
// and writes are separate points so a schedule can fault only one
// direction.
const (
	PointRead  = "flaky.conn.read"
	PointWrite = "flaky.conn.write"
)

// Config parameterizes the wrapper.
type Config struct {
	// Sched decides which Read/Write calls fault. Nil never faults.
	Sched fault.Scheduler
	// Seed drives which fault class fires and where truncation cuts.
	Seed uint64
	// MaxDelay bounds an injected delay (default 2ms).
	MaxDelay time.Duration
	// Clock serves the injected delays. Nil uses the wall clock; the
	// deterministic simulator passes its virtual clock so a delay is an
	// exactly reproducible time advance instead of a real sleep.
	Clock fault.Clock
}

// Conn is a net.Conn with scheduled faults on Read and Write. Counters are
// atomics so tests and the bench can read them while traffic flows.
type Conn struct {
	net.Conn
	cfg Config
	rng *fault.Rand

	// Drops, Truncs, Delays count the injected faults by class.
	Drops, Truncs, Delays atomic.Uint64
}

// Wrap wraps c. The zero Config passes everything through.
func Wrap(c net.Conn, cfg Config) *Conn {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	cfg.Clock = fault.OrWall(cfg.Clock)
	return &Conn{Conn: c, cfg: cfg, rng: fault.NewRand(cfg.Seed | 1)}
}

// Dialer returns a dial function that wraps every new connection — plug it
// into server.DialResilientFunc to put the flaky network between the
// resilient client and the server. Each connection shares the scheduler
// (faults are scheduled across the client's lifetime, re-dials included)
// but derives its own rng stream.
func Dialer(cfg Config) func(addr string) (net.Conn, error) {
	var n atomic.Uint64
	return func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		sub := cfg
		sub.Seed = cfg.Seed + 0x9e3779b97f4a7c15*n.Add(1)
		return Wrap(c, sub), nil
	}
}

// fire picks and applies one fault class. It reports whether the
// connection was severed (the caller should fall through to the underlying
// op, which then fails with the transport's own error).
func (c *Conn) fire(p []byte, writing bool) (truncated int, severed bool) {
	switch c.rng.Intn(3) {
	case 0: // drop: sever the connection mid-operation
		c.Drops.Add(1)
		_ = c.Conn.Close()
		return 0, true
	case 1: // truncate: deliver only a prefix, then sever
		if writing && len(p) > 0 {
			c.Truncs.Add(1)
			n, _ := c.Conn.Write(p[:c.rng.Intn(len(p))])
			_ = c.Conn.Close()
			return n, true
		}
		// Truncating a read is the peer's write cut short: just sever.
		c.Truncs.Add(1)
		_ = c.Conn.Close()
		return 0, true
	default: // delay: a congested link, bounded by MaxDelay
		c.Delays.Add(1)
		c.cfg.Clock.Sleep(time.Duration(c.rng.Intn(int(c.cfg.MaxDelay))) + time.Microsecond)
		return 0, false
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.cfg.Sched != nil && c.cfg.Sched.Hit(PointRead) {
		if _, severed := c.fire(p, false); severed {
			// The closed conn produces the real transport error.
			return c.Conn.Read(p)
		}
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.cfg.Sched != nil && c.cfg.Sched.Hit(PointWrite) {
		if n, severed := c.fire(p, true); severed {
			if n > 0 {
				return n, net.ErrClosed
			}
			return c.Conn.Write(p)
		}
	}
	return c.Conn.Write(p)
}
