package fault

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestCrashIsNoOpWhenDisarmed(t *testing.T) {
	Crash("anything") // must not panic
}

func TestTriggerFiresAtNthHit(t *testing.T) {
	tr := NewTrigger("p", 3)
	hits := 0
	crashed, err := Run(tr, func() error {
		for i := 0; i < 10; i++ {
			Crash("other")
			Crash("p")
			hits++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if crashed == nil || crashed.Label != "p" {
		t.Fatalf("crashed = %v", crashed)
	}
	if hits != 2 {
		t.Errorf("survived %d hits before the crash, want 2", hits)
	}
	if !tr.Fired() {
		t.Error("Fired() = false after crash")
	}
	// The scheduler must be disarmed again after Run.
	Crash("p")
}

func TestRecorderCounts(t *testing.T) {
	rec := NewRecorder()
	crashed, err := Run(rec, func() error {
		Crash("a")
		Crash("a")
		Crash("b")
		return nil
	})
	if crashed != nil || err != nil {
		t.Fatalf("recording run: crashed=%v err=%v", crashed, err)
	}
	c := rec.Counts()
	if c["a"] != 2 || c["b"] != 1 {
		t.Errorf("counts = %v", c)
	}
	if labels := rec.Labels(); len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Errorf("labels = %v", labels)
	}
}

func TestRunPropagatesErrorsAndForeignPanics(t *testing.T) {
	wantErr := errors.New("boom")
	if _, err := Run(NewRecorder(), func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("foreign panic was swallowed")
		}
		SetScheduler(nil)
	}()
	_, _ = Run(NewRecorder(), func() error { panic("not a crash") })
}

func TestRetryPolicy(t *testing.T) {
	// Transient errors retry up to the attempt budget.
	calls := 0
	err := RetryPolicy{Attempts: 3}.Retry(func() error {
		calls++
		if calls < 3 {
			return Transientf("try %d", calls)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("retry: err=%v calls=%d", err, calls)
	}

	// Non-transient errors return immediately.
	calls = 0
	hard := errors.New("hard")
	err = RetryPolicy{Attempts: 5}.Retry(func() error { calls++; return hard })
	if !errors.Is(err, hard) || calls != 1 {
		t.Errorf("hard error: err=%v calls=%d", err, calls)
	}

	// Budget exhaustion surfaces the transient error.
	calls = 0
	backoffs := 0
	p := RetryPolicy{Attempts: 2, Backoff: func(int) { backoffs++ }}
	err = p.Retry(func() error { calls++; return Transientf("always") })
	if !IsTransient(err) || calls != 2 || backoffs != 1 {
		t.Errorf("exhausted: err=%v calls=%d backoffs=%d", err, calls, backoffs)
	}
}

func TestCorruptors(t *testing.T) {
	r := NewRand(42)
	data := bytes.Repeat([]byte{0xAA}, 256)

	torn := Tear(data, r)
	if len(torn) == 0 || len(torn) >= len(data) {
		t.Errorf("Tear length = %d of %d", len(torn), len(data))
	}

	cp := append([]byte(nil), data...)
	bit := FlipBit(cp, r)
	if bit < 0 || bit >= len(cp)*8 {
		t.Fatalf("bit = %d", bit)
	}
	diff := 0
	for i := range cp {
		if cp[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("FlipBit changed %d bytes, want 1", diff)
	}

	// Determinism: the same seed produces the same fault.
	r2 := NewRand(42)
	if got := Tear(data, r2); len(got) != len(torn) {
		t.Errorf("Tear not deterministic: %d vs %d", len(got), len(torn))
	}
	cp2 := append([]byte(nil), data...)
	if got := FlipBit(cp2, r2); got != bit {
		t.Errorf("FlipBit not deterministic: %d vs %d", got, bit)
	}
}

func TestPolicyAndClassStrings(t *testing.T) {
	for want, got := range map[string]fmt.Stringer{
		"permissive": Permissive, "strict": Strict,
		"transient": Transient, "torn-write": Torn,
		"bit-flip": BitFlip, "stale-image": Stale,
	} {
		if got.String() != want {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), want)
		}
	}
}
