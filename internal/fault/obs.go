package fault

import (
	"sync/atomic"

	"nvref/internal/obs"
)

// Process-wide fault-plane counters. Crash points are a package-level
// mechanism (Crash is called from pmem and txn without a handle), so their
// counters are too. The armed-scheduler check keeps the disarmed hot path
// at one atomic load; counting happens only while a harness is driving.
var (
	crashPointsHit   atomic.Uint64 // Crash calls observed while armed
	crashesFired     atomic.Uint64 // crashes the scheduler triggered
	transientRetries atomic.Uint64 // retry attempts after transient faults
)

// CrashPointsHit returns how many crash points executed while a scheduler
// was armed.
func CrashPointsHit() uint64 { return crashPointsHit.Load() }

// CrashesFired returns how many scheduled crashes actually triggered.
func CrashesFired() uint64 { return crashesFired.Load() }

// TransientRetries returns how many retry attempts ran after transient
// faults, across every RetryPolicy in the process.
func TransientRetries() uint64 { return transientRetries.Load() }

// ResetCounters zeroes the fault-plane counters (test isolation).
func ResetCounters() {
	crashPointsHit.Store(0)
	crashesFired.Store(0)
	transientRetries.Store(0)
}

// RegisterMetrics binds the fault-plane counters into reg.
func RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("fault_crash_points_hit_total",
		"crash points executed while a scheduler was armed", CrashPointsHit)
	reg.CounterFunc("fault_crashes_fired_total",
		"scheduled crashes triggered", CrashesFired)
	reg.CounterFunc("fault_transient_retries_total",
		"retry attempts after transient faults", TransientRetries)
}
