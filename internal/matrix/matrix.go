// Package matrix is an Armadillo-like dense matrix library over the
// simulated memory system, built for the paper's Section VII-E case study.
// As in Armadillo, a matrix is a compound object: a header holding the
// dimensions and layout metadata plus a pointer to a separate data array.
// Either part can live on DRAM or NVM; the header's data pointer is a
// user-transparent persistent reference, so the same library code works
// for every placement combination.
package matrix

import (
	"math"

	"nvref/internal/core"
	"nvref/internal/rt"
)

// Header layout (column-major flag kept for Armadillo fidelity).
const (
	offRows     = 0
	offCols     = 8
	offColMajor = 16
	offData     = 24
	headerSize  = 32
)

// Sites: matrix code is library code, so its pointer loads are unresolved
// (checked under SW); allocation-result stores are inferred.
var (
	siteNewHdr  = rt.NewSite("matrix.new.header", true)
	siteLoadHdr = rt.NewSite("matrix.load.header", false)
	siteData    = rt.NewSite("matrix.data", false)
	siteStore   = rt.NewSite("matrix.store", false)
)

// Matrix is a dense matrix of float64 values.
type Matrix struct {
	ctx *rt.Context
	hdr core.Ptr
	// Cached geometry; the authoritative copy lives in the header object.
	rows, cols int
}

// New allocates a rows×cols matrix. persistent selects pmalloc for both
// the header and the data array; otherwise both are volatile. Mixed
// placements use NewPlaced.
func New(ctx *rt.Context, rows, cols int, persistent bool) *Matrix {
	return NewPlaced(ctx, rows, cols, persistent, persistent)
}

// NewPlaced allocates with independent header and data placement: the 16
// placement combinations of the case study come from four matrices with
// two placements each.
func NewPlaced(ctx *rt.Context, rows, cols int, persistentHdr, persistentData bool) *Matrix {
	alloc := func(persistent bool, n uint64) core.Ptr {
		if persistent {
			return ctx.Pmalloc(n)
		}
		return ctx.Malloc(n)
	}
	hdr := alloc(persistentHdr, headerSize)
	data := alloc(persistentData, uint64(rows*cols)*8)
	ctx.StoreWord(siteNewHdr, hdr, offRows, uint64(rows))
	ctx.StoreWord(siteNewHdr, hdr, offCols, uint64(cols))
	ctx.StoreWord(siteNewHdr, hdr, offColMajor, 1)
	ctx.StorePtr(siteNewHdr, hdr, offData, data)
	return &Matrix{ctx: ctx, hdr: hdr, rows: rows, cols: cols}
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Header returns the header reference (for persistence roots).
func (m *Matrix) Header() core.Ptr { return m.hdr }

// Data loads the data-array pointer from the header, as library code does
// once per operation before streaming over elements.
func (m *Matrix) Data() core.Ptr {
	return m.ctx.LoadPtr(siteLoadHdr, m.hdr, offData)
}

// LoadDims reads the dimensions from the header object.
func (m *Matrix) LoadDims() (rows, cols int) {
	r := m.ctx.LoadWord(siteLoadHdr, m.hdr, offRows)
	c := m.ctx.LoadWord(siteLoadHdr, m.hdr, offCols)
	return int(r), int(c)
}

// index computes the column-major element offset.
func (m *Matrix) index(i, j int) int64 {
	return int64(j*m.rows+i) * 8
}

// At reads element (i, j) through the header's data pointer.
func (m *Matrix) At(i, j int) float64 {
	data := m.Data()
	m.ctx.Exec(2)
	return math.Float64frombits(m.ctx.LoadWord(siteData, data, m.index(i, j)))
}

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	data := m.Data()
	m.ctx.Exec(2)
	m.ctx.StoreWord(siteStore, data, m.index(i, j), math.Float64bits(v))
}

// AtData reads (i, j) through an already-loaded data pointer, the pattern
// inner loops use after hoisting the header load.
func (m *Matrix) AtData(data core.Ptr, i, j int) float64 {
	m.ctx.Exec(2)
	return math.Float64frombits(m.ctx.LoadWord(siteData, data, m.index(i, j)))
}

// SetData writes (i, j) through an already-loaded data pointer.
func (m *Matrix) SetData(data core.Ptr, i, j int, v float64) {
	m.ctx.Exec(2)
	m.ctx.StoreWord(siteStore, data, m.index(i, j), math.Float64bits(v))
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	data := m.Data()
	for j := 0; j < m.cols; j++ {
		for i := 0; i < m.rows; i++ {
			m.SetData(data, i, j, v)
		}
	}
}

// Col copies column j into dst (a Go-side buffer for host-side checks).
func (m *Matrix) Col(j int, dst []float64) {
	data := m.Data()
	for i := 0; i < m.rows && i < len(dst); i++ {
		dst[i] = m.AtData(data, i, j)
	}
}

// MulInto computes dst = a × b with the classic triple loop; all traffic
// flows through the simulated hierarchy.
func MulInto(dst, a, b *Matrix) {
	ctx := dst.ctx
	ad, bd, dd := a.Data(), b.Data(), dst.Data()
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			s := 0.0
			for k := 0; k < a.cols; k++ {
				s += a.AtData(ad, i, k) * b.AtData(bd, k, j)
				ctx.Exec(2)
			}
			dst.SetData(dd, i, j, s)
		}
	}
}
