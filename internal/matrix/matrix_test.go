package matrix

import (
	"testing"

	"nvref/internal/rt"
)

func TestSetAtRoundTrip(t *testing.T) {
	for _, mode := range rt.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			ctx := rt.MustNew(mode)
			m := New(ctx, 3, 4, true)
			for i := 0; i < 3; i++ {
				for j := 0; j < 4; j++ {
					m.Set(i, j, float64(i*10+j)+0.5)
				}
			}
			for i := 0; i < 3; i++ {
				for j := 0; j < 4; j++ {
					want := float64(i*10+j) + 0.5
					if got := m.At(i, j); got != want {
						t.Fatalf("At(%d,%d) = %v, want %v", i, j, got, want)
					}
				}
			}
		})
	}
}

func TestLoadDims(t *testing.T) {
	ctx := rt.MustNew(rt.HW)
	m := New(ctx, 7, 9, true)
	r, c := m.LoadDims()
	if r != 7 || c != 9 {
		t.Errorf("LoadDims = %d,%d", r, c)
	}
	if m.Rows() != 7 || m.Cols() != 9 {
		t.Error("cached dims wrong")
	}
}

func TestMixedPlacement(t *testing.T) {
	ctx := rt.MustNew(rt.HW)
	// Persistent header pointing at volatile data and vice versa.
	a := NewPlaced(ctx, 2, 2, true, false)
	b := NewPlaced(ctx, 2, 2, false, true)
	a.Set(1, 1, 3.25)
	b.Set(0, 1, 1.75)
	if a.At(1, 1) != 3.25 || b.At(0, 1) != 1.75 {
		t.Error("mixed placement round trip failed")
	}
	if a.Header().IsRelative() == false && ctx.Mode == rt.Explicit {
		t.Error("persistent header not relative in explicit mode")
	}
}

func TestFillAndCol(t *testing.T) {
	ctx := rt.MustNew(rt.SW)
	m := New(ctx, 4, 2, true)
	m.Fill(2.5)
	buf := make([]float64, 4)
	m.Col(1, buf)
	for _, v := range buf {
		if v != 2.5 {
			t.Fatalf("Col after Fill = %v", buf)
		}
	}
}

func TestMulInto(t *testing.T) {
	for _, mode := range rt.Modes {
		ctx := rt.MustNew(mode)
		a := New(ctx, 2, 3, true)
		b := New(ctx, 3, 2, false)
		c := New(ctx, 2, 2, true)
		// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
		vals := [][]float64{{1, 2, 3}, {4, 5, 6}}
		for i := range vals {
			for j := range vals[i] {
				a.Set(i, j, vals[i][j])
			}
		}
		bv := [][]float64{{7, 8}, {9, 10}, {11, 12}}
		for i := range bv {
			for j := range bv[i] {
				b.Set(i, j, bv[i][j])
			}
		}
		MulInto(c, a, b)
		want := [][]float64{{58, 64}, {139, 154}}
		for i := range want {
			for j := range want[i] {
				if got := c.At(i, j); got != want[i][j] {
					t.Fatalf("%s: c[%d][%d] = %v, want %v", mode, i, j, got, want[i][j])
				}
			}
		}
	}
}

func TestDataPointerRelocatable(t *testing.T) {
	// The header's data pointer must be stored in relative form when the
	// header is persistent, so the matrix survives pool remapping.
	ctx := rt.MustNew(rt.HW)
	m := New(ctx, 2, 2, true)
	hdr := m.Header()
	var hdrVA uint64
	if hdr.IsRelative() {
		var err error
		hdrVA, err = ctx.Reg.RA2VA(hdr)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		hdrVA = hdr.VA()
	}
	raw, err := ctx.AS.Load64(hdrVA + offData)
	if err != nil {
		t.Fatal(err)
	}
	if raw>>63 != 1 {
		t.Errorf("data pointer stored as %#x; want relative form", raw)
	}
}
